// Benchmarks: one per table and figure of the paper's evaluation, each
// regenerating the artifact at a reduced scale per iteration and reporting
// the headline metric alongside time/op. Run a single artifact with e.g.
//
//	go test -bench=BenchmarkFig16 -benchmem
//
// Paper-scale runs are the CLI's job (cmd/hbmrd -full); benchmarks exist to
// track the cost and the key output of every experiment kernel.
package hbmrd_test

import (
	"context"
	"fmt"
	"testing"

	"hbmrd"
)

func benchFleet(b *testing.B, indices ...int) []*hbmrd.TestChip {
	b.Helper()
	fleet, err := hbmrd.NewFleet(indices, hbmrd.WithIdentityMapping())
	if err != nil {
		b.Fatal(err)
	}
	return fleet
}

func BenchmarkTable1Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := hbmrd.RenderTable1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := hbmrd.RenderTable2(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3Temperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := hbmrd.SimulateTemperatures(1800, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4BERAcrossChips(b *testing.B) {
	fleet := benchFleet(b, 0, 5)
	cfg := hbmrd.BERConfig{
		Channels: []int{0, 7},
		Rows:     hbmrd.SampleRows(8),
		Reps:     1,
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunBER(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range recs {
			if r.WCDP {
				sum += r.BERPercent
				n++
			}
		}
		mean = sum / float64(n)
	}
	b.ReportMetric(mean, "meanWCDPBER%")
}

func BenchmarkFig5HCFirstAcrossChips(b *testing.B) {
	fleet := benchFleet(b, 5)
	cfg := hbmrd.HCFirstConfig{
		Channels: []int{0, 4},
		Rows:     hbmrd.SampleRows(4),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	minHC := 0.0
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunHCFirst(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		// Headline metric from the first iteration only: later iterations
		// re-run the sweep on a fleet whose row epochs have advanced, so
		// their minima drift with b.N and would make the recorded
		// BENCH_<date>.json trajectory depend on iteration count.
		for _, r := range recs {
			if r.Found && (minHC == 0 || float64(r.HCFirst) < minHC) {
				minHC = float64(r.HCFirst)
			}
		}
	}
	b.ReportMetric(minHC, "minHCfirst")
}

func BenchmarkFig6BERAcrossChannels(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.BERConfig{
		Rows:     hbmrd.SampleRows(6),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunBER(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7HCFirstAcrossChannels(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.HCFirstConfig{
		Rows:     hbmrd.SampleRows(2),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunHCFirst(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SpatialBER(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.BERConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(48),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunBER(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9BankVariation(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.BERConfig{
		Channels: []int{0},
		Pseudos:  []int{0, 1},
		Banks:    []int{0, 1, 2, 3},
		Rows:     hbmrd.RegionRows(2),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunBER(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Aging(b *testing.B) {
	fleet := benchFleet(b, 4)
	cfg := hbmrd.AgingConfig{
		BER: hbmrd.BERConfig{Channels: []int{0}, Rows: hbmrd.SampleRows(12), Reps: 1},
	}
	b.ResetTimer()
	var up int
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunAging(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		up = hbmrd.SummarizeAging(recs).RowsUp
	}
	b.ReportMetric(float64(up), "rowsUp")
}

func BenchmarkFig11HammerCountToNthFlip(b *testing.B) {
	fleet := benchFleet(b, 2)
	cfg := hbmrd.HCNthConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(4),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunHCNth(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12AdditionalHammers(b *testing.B) {
	fleet := benchFleet(b, 1)
	cfg := hbmrd.HCNthConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(10),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
	}
	b.ResetTimer()
	var pearson float64
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunHCNth(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := hbmrd.ComputeFig12(recs)
		if err != nil {
			b.Fatal(err)
		}
		if len(st) > 0 {
			pearson = st[0].Pearson
		}
	}
	b.ReportMetric(pearson, "pearson")
}

func BenchmarkFig13HCFirstVariation(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.VariabilityConfig{
		Rows:       hbmrd.SampleRows(3),
		Iterations: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunVariability(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14RowPressBER(b *testing.B) {
	fleet := benchFleet(b, 3)
	cfg := hbmrd.RowPressBERConfig{
		Channels: []int{0},
		Rows:     hbmrd.RegionRows(2),
	}
	b.ResetTimer()
	var saturated float64
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunRowPressBER(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		saturated = recs[len(recs)-1].BERPercent
	}
	b.ReportMetric(saturated, "BER%@35.1us")
}

func BenchmarkFig15RowPressHCFirst(b *testing.B) {
	fleet := benchFleet(b, 2)
	cfg := hbmrd.RowPressHCConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(3),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrd.RunRowPressHC(fleet, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16TRRBypass(b *testing.B) {
	fleet := benchFleet(b, 0)
	cfg := hbmrd.BypassConfig{
		Victims:     hbmrd.SampleRows(1),
		DummyCounts: []int{3, 4},
		AggActs:     []int{26},
		Windows:     8205,
	}
	b.ResetTimer()
	var bypassBER float64
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunBypass(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if r.Dummies == 4 {
				bypassBER = r.BERPercent
			}
		}
	}
	b.ReportMetric(bypassBER, "bypassBER%")
}

func BenchmarkFig17ECCWords(b *testing.B) {
	fleet := benchFleet(b, 4)
	cfg := hbmrd.BERConfig{
		Channels:     []int{0},
		Rows:         hbmrd.SampleRows(8),
		Patterns:     []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:         1,
		CollectMasks: true,
	}
	b.ResetTimer()
	var multi int
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunBER(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hists, err := hbmrd.WordFlipHistograms(recs)
		if err != nil {
			b.Fatal(err)
		}
		multi = 0
		for _, h := range hists {
			multi += h.MultiBit()
		}
	}
	b.ReportMetric(float64(multi), "multiBitWords")
}

func BenchmarkUTRRReveal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chip, err := hbmrd.NewChip(0)
		if err != nil {
			b.Fatal(err)
		}
		f, err := hbmrd.UncoverTRR(chip)
		if err != nil {
			b.Fatal(err)
		}
		if f.Period != 17 {
			b.Fatalf("period %d", f.Period)
		}
	}
}

// BenchmarkSweepJobsScaling measures how a cross-channel BER sweep scales
// with the worker pool. With the fault model's calibration sharded per
// bank (instead of one chip-global RWMutex), channel groups should scale
// near-linearly until they run out of channels or cores. On a single-core
// runner the series should instead be flat: identical times across jobs
// counts mean the sharded locks add no overhead over serial execution.
func BenchmarkSweepJobsScaling(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			fleet := benchFleet(b, 0)
			cfg := hbmrd.BERConfig{
				Rows:     hbmrd.SampleRows(2),
				Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
				Reps:     1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hbmrd.RunBERContext(context.Background(), fleet, cfg, hbmrd.WithJobs(jobs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHammerThroughput measures the device's batched hammer path: how
// fast the simulator applies paper-scale hammer counts.
func BenchmarkHammerThroughput(b *testing.B) {
	chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
	if err != nil {
		b.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{999, 1000, 1001} {
		fill := byte(0x55)
		if r != 1000 {
			fill = 0xAA
		}
		if err := ch.FillRow(0, 0, r, fill); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, hbmrd.RowBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.HammerDoubleSided(0, 0, 999, 1001, 256*1024, 0); err != nil {
			b.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*256*1024), "ACTs/op")
}

// benchPresets returns the organizations worth benchmarking separately:
// the three legacy presets (distinct row sizes and densities) plus one
// multi-rank entry of the ported HBM3 matrix. Benchmarking all ~20
// registry organizations would only repeat the same row-size buckets.
func benchPresets(b *testing.B) []hbmrd.GeometryPreset {
	b.Helper()
	ps := make([]hbmrd.GeometryPreset, 0, 4)
	for _, name := range []string{"HBM2_8Gb", "HBM2E_16Gb", "HBM3_16Gb", "HBM3_16Gb_4R"} {
		p, err := hbmrd.LookupPreset(name)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// BenchmarkStrictTimingRowOps pins the strict-timing fast path: the same
// bulk-column row workload (pattern fill + victim read-back) in auto and
// strict mode. Strict used to fall back to per-command issue and sat an
// order of magnitude behind; with the precomputed gate table it rides the
// same bulk path — one table probe for the ACT, forced-auto cadence for
// the interior bursts — and should stay within ~2x of auto. Both modes
// pay the same tRP wait between iterations (auto would jump the clock
// anyway) so the comparison isolates the gate-check cost.
func BenchmarkStrictTimingRowOps(b *testing.B) {
	for _, mode := range []string{"auto", "strict"} {
		b.Run(mode, func(b *testing.B) {
			opts := []hbmrd.ChipOption{hbmrd.WithIdentityMapping()}
			if mode == "strict" {
				opts = append(opts, hbmrd.WithStrictTiming())
			}
			chip, err := hbmrd.NewChip(0, opts...)
			if err != nil {
				b.Fatal(err)
			}
			ch, err := chip.Channel(0)
			if err != nil {
				b.Fatal(err)
			}
			trp := chip.Timing().TRP
			buf := make([]byte, hbmrd.RowBytes)
			if err := ch.FillRow(0, 0, 1000, 0); err != nil { // warm row state + scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Wait(trp)
				if err := ch.FillRow(0, 0, 1000, byte(i)); err != nil {
					b.Fatal(err)
				}
				ch.Wait(trp)
				if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRowInitReadHotPath measures the per-trial row traffic every
// experiment pays (pattern init via FillRow, victim read-back via ReadRow).
// Both paths stage data in per-channel buffers reused across calls, so the
// loop must not allocate per row regardless of the chip's row size — the
// benchmark asserts 0 allocs/op outright instead of just reporting it.
func BenchmarkRowInitReadHotPath(b *testing.B) {
	for _, preset := range benchPresets(b) {
		b.Run(preset.Name, func(b *testing.B) {
			chip, err := hbmrd.NewChip(0, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
			if err != nil {
				b.Fatal(err)
			}
			ch, err := chip.Channel(0)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, chip.Geometry().RowBytes)
			if err := ch.FillRow(0, 0, 1000, 0); err != nil { // warm row state + scratch
				b.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(10, func() {
				if err := ch.FillRow(0, 0, 1000, 0xA5); err != nil {
					b.Fatal(err)
				}
				if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
					b.Fatal(err)
				}
			}); allocs != 0 {
				b.Fatalf("row init+read allocates %.1f times per op, want 0", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ch.FillRow(0, 0, 1000, byte(i)); err != nil {
					b.Fatal(err)
				}
				if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHammerReadHotPath measures one experiment trial's device work
// after pattern init: a batched double-sided hammer burst plus the victim
// read-back that materializes the flip mask. Like the row init path, it
// must be allocation-free (the hammer's former per-call phys slice and
// exclude map now live on the channel), which the benchmark asserts.
func BenchmarkHammerReadHotPath(b *testing.B) {
	chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
	if err != nil {
		b.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{999, 1000, 1001} {
		fill := byte(0x55)
		if r != 1000 {
			fill = 0xAA
		}
		if err := ch.FillRow(0, 0, r, fill); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, hbmrd.RowBytes)
	const acts = 16 * 1024
	hammerRead := func() {
		if err := ch.HammerDoubleSided(0, 0, 999, 1001, acts, 0); err != nil {
			b.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
			b.Fatal(err)
		}
	}
	hammerRead() // warm row states, scratch and the model's cell cache
	if allocs := testing.AllocsPerRun(10, hammerRead); allocs != 0 {
		b.Fatalf("hammer+read allocates %.1f times per op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hammerRead()
	}
	b.ReportMetric(float64(2*acts), "ACTs/op")
}
