# Convenience targets; CI runs the same commands directly.

.PHONY: test short bench race

test:
	go build ./... && go test ./...

short:
	go test -short ./...

race:
	go test -race -short ./...

# bench records the hot-path benchmark trajectory in BENCH_<date>.json
# (op time, allocs/op, headline metrics). Run it before and after a perf
# change — repeated runs on one day append to the same file — so future
# PRs can see the curve. Tag data points with LABEL=..., e.g.
#   make bench LABEL=after-cellstate-cache
LABEL ?=
bench:
	go run ./tools/bench -label '$(LABEL)'
