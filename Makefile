# Convenience targets; CI runs the same commands directly.

.PHONY: test short bench race ci bench-check golden fabric-chaos metrics-smoke

test:
	go build ./... && go test ./...

short:
	go test -short ./...

race:
	go test -race -short ./...

# bench records the hot-path benchmark trajectory in BENCH_<date>.json
# (op time, allocs/op, headline metrics). Run it before and after a perf
# change — repeated runs on one day append to the same file — so future
# PRs can see the curve. Tag data points with LABEL=..., e.g.
#   make bench LABEL=after-cellstate-cache
LABEL ?=
bench:
	go run ./tools/bench -label '$(LABEL)'

# bench-check is the regression tripwire CI runs: re-measure the recorded
# benchmark set briefly and fail only on order-of-magnitude (>3x)
# regressions against the newest committed BENCH_*.json. Noise at this
# margin means a fast path got disabled, not that a run was unlucky.
bench-check:
	go run ./tools/bench -check -benchtime 200ms

# golden runs the byte-identity contract at full scale: the pinned sweep
# digests, the checkpoint/resume byte-identity tests, the decode layer's
# encode->decode->re-encode round trips - JSONL and the columnar
# artifact - for every record type on every preset (guards
# internal/core's DecodeRecords and the columnar codec against drift),
# and the sharded-execution golden (a sweep split across in-process
# workers must merge to the exact bytes of an uninterrupted local run).
golden:
	go test -count=1 -run 'TestGoldenSweepDigest|PresetMatrixGoldenDigest|ResumeByteIdentity|RoundTripByteIdentity|GoldenShardedByteIdentity' ./...

# fabric-chaos runs the distributed-sweep failure-injection suite under
# the race detector: dropped connections, injected 5xx, torn shard
# streams, hung workers, and drained-worker resume, all asserting
# byte-identity of the merged output.
fabric-chaos:
	go test -race -count=1 ./internal/fabric/ ./internal/serve/

# metrics-smoke boots a live hbmrdd, runs a tiny sweep through it, and
# asserts the /metrics Prometheus exposition is well-formed and moving
# (sweep/store/HTTP series with the expected values). CI runs it in the
# fabric-chaos job.
metrics-smoke:
	./tools/metrics-smoke.sh

# query-smoke runs a tiny sweep into a temp store, executes one query per
# aggregation reducer through the content-addressed query engine, and
# diffs the canonical output against the committed golden
# (tools/querysmoke/testdata/smoke.golden). Deliberate changes re-pin with
#   go run ./tools/querysmoke -update
query-smoke:
	go run ./tools/querysmoke

# ci mirrors the full CI gate locally.
ci:
	gofmt -l . | (! grep .) || (echo "gofmt needed" && exit 1)
	go vet ./...
	go build ./...
	go test -short ./...
	$(MAKE) golden
	$(MAKE) query-smoke
	$(MAKE) bench-check
