module hbmrd

go 1.21
