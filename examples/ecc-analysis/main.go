// ecc-analysis reproduces the §8 argument: RowHammer bitflips cluster so
// heavily within 64-bit words that SECDED ECC cannot contain them
// (Fig 17), and a Hamming(7,4) code that could would cost 75% storage.
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fleet, err := hbmrd.NewFleet([]int{4}) // Fig 17 analyzes Chip 4
	if err != nil {
		log.Fatal(err)
	}

	recs, err := hbmrd.RunBER(fleet, hbmrd.BERConfig{
		Channels:     []int{0, 1},
		Rows:         hbmrd.SampleRows(64),
		Reps:         1,
		CollectMasks: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	hists, err := hbmrd.WordFlipHistograms(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Word-level (64-bit) bitflip distribution on Chip 4 (Fig 17 mini):")
	fmt.Print(hbmrd.RenderFig17(hists))

	multi, flipped := 0, 0
	for _, h := range hists {
		multi += h.MultiBit()
		flipped += h.TotalFlipped()
	}
	fmt.Printf("\n%d of %d flipped words hold more than one bitflip: plain\n", multi, flipped)
	fmt.Println("SECDED corrects none of those, and words with 3+ flips escape")
	fmt.Println("detection entirely (§8: ECC alone is not a RowHammer defense).")
}
