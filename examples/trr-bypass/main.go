// trr-bypass crafts the paper's §7 specialized access pattern: with
// periodic refresh running, plain double-sided RowHammer is defeated by
// the chip's undocumented TRR mechanism, but activating at least four
// dummy rows first fills the TRR tracker and lets the real aggressors
// through (Fig 16).
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fleet, err := hbmrd.NewFleet([]int{0}) // the paper probes Chip 0
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TRR bypass sweep (one refresh window per configuration):")
	recs, err := hbmrd.RunBypass(fleet, hbmrd.BypassConfig{
		Victims:     hbmrd.SampleRows(3),
		DummyCounts: []int{1, 2, 3, 4, 5, 6, 8},
		AggActs:     []int{18, 26, 34},
		Windows:     8205, // one tREFW of back-to-back tREFI intervals
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hbmrd.RenderFig16(recs))

	fmt.Println("\nReading the sweep: BER stays 0 with up to 3 dummy rows (the")
	fmt.Println("tracker still catches an aggressor and preventively refreshes")
	fmt.Println("the victim); from 4 dummy rows on, the tracker holds only")
	fmt.Println("dummies and the aggressors hammer freely - and more aggressor")
	fmt.Println("activations per tREFI mean more bitflips (Takeaway 8).")
}
