// Command vrd-distribution runs a small Variable Read Disturbance sweep
// (arXiv 2502.13075) across the device generations: HCfirst measured
// once is not the number a mitigation can trust, so the vrd sweep
// repeats the measurement per row and records the distribution. The
// presets come from PresetsByFamily rather than a hard-coded list, so
// the example follows the registry as it grows.
package main

import (
	"fmt"
	"log"
	"strings"

	"hbmrd"
)

func main() {
	fmt.Println("HCfirst distributions over repeated trials (chip 0 profile, demo scale)")
	fmt.Println()
	fmt.Printf("%-18s %6s %7s %9s %9s %9s %7s\n",
		"preset", "rows", "trials", "minHC", "maxHC", "p90HC", "ratio")

	// One representative organization per family keeps the demo quick;
	// drop the [:1] to sweep every registered preset of each family.
	for _, family := range []string{hbmrd.FamilyHBM2, hbmrd.FamilyHBM2E, hbmrd.FamilyHBM3} {
		for _, preset := range hbmrd.PresetsByFamily(family)[:1] {
			report(preset)
		}
	}

	// The per-trial view for the paper's part: each row's trials as a
	// spread bar between its minimum and maximum HCfirst.
	preset, err := hbmrd.LookupPreset(hbmrd.PresetHBM2)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := runVRD(preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%s per-row trial spread (HCfirst, %d trials per row)\n", preset.Name, recs[0].Trials)
	fmt.Println()
	for _, r := range recs {
		if r.Found == 0 {
			fmt.Printf("  row %6d  no flips within the hammer budget\n", r.Row)
			continue
		}
		fmt.Printf("  row %6d  %8d %s %-8d  ratio %.3f\n",
			r.Row, r.MinHC, spreadBar(r), r.MaxHC, r.Ratio())
	}

	fmt.Println()
	fmt.Println("A mitigation threshold set at one measured HCfirst is unsafe by")
	fmt.Println("exactly these ratios: the same cell flips earlier on another trial.")
	fmt.Println("The figvrd query preset aggregates the stored ratio distribution.")
}

// runVRD sweeps a few rows of one preset with repeated HCfirst trials.
func runVRD(preset hbmrd.GeometryPreset) ([]hbmrd.VRDRecord, error) {
	fleet, err := hbmrd.NewFleet([]int{0},
		hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
	if err != nil {
		return nil, err
	}
	return hbmrd.RunVRD(fleet, hbmrd.VRDConfig{
		Rows:   hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), 4),
		Trials: 5,
	})
}

// report sweeps one preset and prints its aggregate distribution row.
func report(preset hbmrd.GeometryPreset) {
	recs, err := runVRD(preset)
	if err != nil {
		log.Fatalf("%s: %v", preset.Name, err)
	}
	minHC, maxHC, p90, trials, measured, worst := 0, 0, 0, 0, 0, 0.0
	for _, r := range recs {
		trials = r.Trials
		if r.Found == 0 {
			continue
		}
		measured++
		if minHC == 0 || r.MinHC < minHC {
			minHC = r.MinHC
		}
		if r.MaxHC > maxHC {
			maxHC = r.MaxHC
		}
		if r.PHC > p90 {
			p90 = r.PHC
		}
		if ratio := r.Ratio(); ratio > worst {
			worst = ratio
		}
	}
	fmt.Printf("%-18s %3d/%-2d %7d %9d %9d %9d %7.3f\n",
		preset.Name, measured, len(recs), trials, minHC, maxHC, p90, worst)
}

// spreadBar renders one row's trial positions between its min and max
// HCfirst as a fixed-width bar.
func spreadBar(r hbmrd.VRDRecord) string {
	const width = 24
	bar := []byte(strings.Repeat("-", width))
	span := r.MaxHC - r.MinHC
	for _, hc := range r.HCs {
		if hc == 0 {
			continue // not-found trial
		}
		pos := 0
		if span > 0 {
			pos = (hc - r.MinHC) * (width - 1) / span
		}
		bar[pos] = '*'
	}
	return string(bar)
}
