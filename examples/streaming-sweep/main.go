// Example streaming-sweep demonstrates the sweep engine's execution
// controls on a fleet-wide BER experiment: a context deadline bounds the
// run, -jobs style worker control pins determinism, live progress goes to
// stderr, and every record streams to a JSON Lines file while the sweep is
// still running - so even an interrupted run leaves a usable, plan-order
// prefix of the results on disk.
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"time"

	"hbmrd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	// All six chips of the study, swizzle disabled for clarity.
	fleet, err := hbmrd.NewFleet(hbmrd.AllChips(), hbmrd.WithIdentityMapping())
	if err != nil {
		return err
	}

	out, err := os.Create("ber.jsonl")
	if err != nil {
		return err
	}
	defer out.Close()
	w := bufio.NewWriter(out)
	defer w.Flush()

	jsonl := hbmrd.NewJSONLSink(w)
	sink := hbmrd.MultiSink(hbmrd.NewProgressSink(os.Stderr, "ber"), jsonl)

	// A generous deadline: if the sweep somehow outruns it, the engine
	// stops queued cells promptly and returns context.DeadlineExceeded -
	// with everything measured so far already persisted in ber.jsonl.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
		Channels: []int{0, 1},
		Rows:     hbmrd.SampleRows(8),
		Reps:     1,
	}, hbmrd.WithJobs(4), hbmrd.WithSink(sink))
	if err != nil {
		return err
	}
	if err := jsonl.Err(); err != nil {
		return err
	}

	wcdp := 0
	for _, r := range recs {
		if r.WCDP {
			wcdp++
		}
	}
	fmt.Printf("measured %d records (%d WCDP rows) across %d chips; streamed to ber.jsonl\n",
		len(recs), wcdp, len(fleet))
	return nil
}
