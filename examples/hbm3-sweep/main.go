// Command hbm3-sweep runs the same HCfirst characterization across the
// ported Ramulator2 preset matrix: every device generation (the paper's
// HBM2 part, the HBM2E rows, the twelve JESD238 HBM3 rank variants) and,
// for one HBM3 organization, every data rate of the HBM3 timing matrix
// (4.8-6.4 Gbps). It is the multi-generation counterpart of the
// quickstart example: identical methodology, swept chip organization and
// timing table.
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fmt.Println("HCfirst across device generations (chip 0 profile, demo scale)")
	fmt.Println()
	fmt.Printf("%-18s %4s %3s %6s %6s %6s %10s %8s\n",
		"preset", "Gbps", "rk", "banks", "rows/K", "tRC/ns", "minHC1st", "found")

	for _, family := range []string{hbmrd.FamilyHBM2, hbmrd.FamilyHBM2E, hbmrd.FamilyHBM3} {
		for _, preset := range hbmrd.PresetsByFamily(family) {
			report(preset)
		}
	}

	// Data-rate sensitivity: one HBM3 organization across its family's
	// full timing matrix. Faster interfaces shrink tRC, so an attacker
	// lands more activations per refresh interval on the same silicon.
	fmt.Println()
	fmt.Println("HBM3_16Gb_4R across the HBM3 data-rate matrix")
	fmt.Println()
	fmt.Printf("%-18s %4s %3s %6s %6s %6s %10s %8s\n",
		"preset", "Gbps", "rk", "banks", "rows/K", "tRC/ns", "minHC1st", "found")
	for _, rate := range hbmrd.FamilyRates(hbmrd.FamilyHBM3) {
		preset, err := hbmrd.PresetAtRate("HBM3_16Gb_4R", rate)
		if err != nil {
			log.Fatal(err)
		}
		report(preset)
	}

	fmt.Println()
	fmt.Println("Same fault-model profile, same methodology; only the chip")
	fmt.Println("organization and timing table change. Rows per bank, rank count,")
	fmt.Println("and the interface data rate all shift where the weakest rows sit")
	fmt.Println("and how fast an attacker reaches them.")
}

// report sweeps one preset and prints its result row.
func report(preset hbmrd.GeometryPreset) {
	minHC, found, err := sweepPreset(preset)
	if err != nil {
		log.Fatalf("%s: %v", preset.Name, err)
	}
	g := preset.Geometry
	rate := "-"
	if preset.DataRateMbps > 0 {
		rate = fmt.Sprintf("%.1f", float64(preset.DataRateMbps)/1000)
	}
	min := "-"
	if found > 0 {
		min = fmt.Sprintf("%d", minHC)
	}
	fmt.Printf("%-18s %4s %3d %6d %6d %6.1f %10s %8d\n",
		preset.Name, rate, g.NumRanks(), g.Banks, g.Rows/1024,
		float64(preset.Timing.TRC)/float64(hbmrd.NS), min, found)
}

// sweepPreset builds one chip with the preset and measures HCfirst on a
// small row sample of channel 0, returning the smallest HCfirst observed.
func sweepPreset(preset hbmrd.GeometryPreset) (minHC, found int, err error) {
	fleet, err := hbmrd.NewFleet([]int{0}, hbmrd.WithGeometry(preset))
	if err != nil {
		return 0, 0, err
	}
	recs, err := hbmrd.RunHCFirst(fleet, hbmrd.HCFirstConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), 6),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range recs {
		if !r.Found || r.WCDP {
			continue
		}
		found++
		if minHC == 0 || r.HCFirst < minHC {
			minHC = r.HCFirst
		}
	}
	return minHC, found, nil
}
