// Command hbm3-sweep runs the same HCfirst characterization against every
// geometry preset (the paper's HBM2 part plus the HBM2E- and HBM3-like
// organizations) and compares how the most vulnerable rows respond across
// device generations. It is the multi-generation counterpart of the
// quickstart example: identical methodology, swept chip organization.
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fmt.Println("HCfirst across device generations (chip 0 profile, demo scale)")
	fmt.Println()
	fmt.Printf("%-12s %8s %6s %6s %10s %10s %8s\n",
		"preset", "channels", "banks", "rows/K", "rowBytes", "minHC1st", "found")

	for _, preset := range hbmrd.Presets() {
		minHC, found, err := sweepPreset(preset)
		if err != nil {
			log.Fatalf("%s: %v", preset.Name, err)
		}
		g := preset.Geometry
		min := "-"
		if found > 0 {
			min = fmt.Sprintf("%d", minHC)
		}
		fmt.Printf("%-12s %8d %6d %6d %10d %10s %8d\n",
			preset.Name, g.Channels, g.Banks, g.Rows/1024, g.RowBytes, min, found)
	}

	fmt.Println()
	fmt.Println("Same fault-model profile, same methodology; only the chip")
	fmt.Println("organization and timing table change. Rows per bank, row size,")
	fmt.Println("and channel count all shift where the weakest rows sit and how")
	fmt.Println("fast an attacker reaches them.")
}

// sweepPreset builds one chip with the preset and measures HCfirst on a
// small row sample of channel 0, returning the smallest HCfirst observed.
func sweepPreset(preset hbmrd.GeometryPreset) (minHC, found int, err error) {
	fleet, err := hbmrd.NewFleet([]int{0}, hbmrd.WithGeometry(preset))
	if err != nil {
		return 0, 0, err
	}
	recs, err := hbmrd.RunHCFirst(fleet, hbmrd.HCFirstConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), 6),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range recs {
		if !r.Found || r.WCDP {
			continue
		}
		found++
		if minHC == 0 || r.HCFirst < minHC {
			minHC = r.HCFirst
		}
	}
	return minHC, found, nil
}
