// rowpress sweeps the aggressor row-on time (tAggON) and shows the §6
// result: keeping rows open longer amplifies read disturbance by orders of
// magnitude, down to a single 16 ms activation flipping bits (Fig 15).
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fleet, err := hbmrd.NewFleet([]int{5}) // the most RowHammer-vulnerable chip
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HCfirst vs tAggON (Fig 15 mini):")
	recs, err := hbmrd.RunRowPressHC(fleet, hbmrd.RowPressHCConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(6),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hbmrd.RenderFig15(recs))

	fmt.Println("\nBER at a fixed 150K hammers vs tAggON (Fig 14 mini):")
	ber, err := hbmrd.RunRowPressBER(fleet, hbmrd.RowPressBERConfig{
		Channels: []int{0},
		Rows:     hbmrd.RegionRows(3),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hbmrd.RenderFig14(ber))
	fmt.Println("\nNote the jump at tREFI and 9*tREFI, and the ~50% saturation")
	fmt.Println("(all charged cells of the checkered victim flip, Obsv 18).")
}
