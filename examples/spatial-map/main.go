// spatial-map profiles BER across the rows of a bank (Fig 8) and uses
// single-sided RowHammer to discover a subarray boundary the way the
// paper's footnote 4 does - without ever consulting the simulator's
// floorplan.
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fleet, err := hbmrd.NewFleet([]int{0})
	if err != nil {
		log.Fatal(err)
	}

	// Sample rows across the first three subarrays plus the bank's middle
	// and end (the resilient 832-row subarrays).
	var rows []int
	for r := 16; r < 2300; r += 64 {
		rows = append(rows, r)
	}
	for r := 7900; r < 8640; r += 64 {
		rows = append(rows, r) // middle 832-row subarray
	}
	for r := 15600; r < 16380; r += 64 {
		rows = append(rows, r) // last 832-row subarray
	}

	recs, err := hbmrd.RunBER(fleet, hbmrd.BERConfig{
		Channels: []int{0, 1, 2},
		Rows:     rows,
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Discovering a subarray boundary with single-sided hammering...")
	bounds, err := hbmrd.ScanSubarrayBoundaries(fleet[0], hbmrd.SubarrayScanConfig{
		FromRow: 790, ToRow: 870,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(hbmrd.RenderFig8CSV(recs, bounds))
	fmt.Println("\nBER rises mid-subarray and collapses in the middle/last")
	fmt.Println("832-row subarrays (Obsv 10 and 11 / Takeaway 3).")
}
