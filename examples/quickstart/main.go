// Quickstart: induce and observe RowHammer bitflips on a simulated HBM2
// chip in a dozen lines - the double-sided access pattern of §3.1 against
// one victim row.
package main

import (
	"fmt"
	"log"
	"math/bits"

	"hbmrd"
)

func main() {
	// Chip 0 is the paper's temperature-controlled XUPVVH chip. Identity
	// mapping makes logical row numbers physically adjacent so we can skip
	// the reverse-engineering step for this demo.
	chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
	if err != nil {
		log.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		log.Fatal(err)
	}

	const victim = 4000
	// Table 1's Checkered0 layout: victim 0x55, aggressors 0xAA.
	for _, r := range []int{victim - 2, victim - 1, victim, victim + 1, victim + 2} {
		fill := byte(0x55)
		if r == victim-1 || r == victim+1 {
			fill = 0xAA
		}
		if err := ch.FillRow(0, 0, r, fill); err != nil {
			log.Fatal(err)
		}
	}

	for _, hammers := range []int{10_000, 50_000, 150_000, 300_000} {
		if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, hammers, 0); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, hbmrd.RowBytes)
		if err := ch.ReadRow(0, 0, victim, buf); err != nil {
			log.Fatal(err)
		}
		flips := 0
		for _, b := range buf {
			flips += bits.OnesCount8(b ^ 0x55)
		}
		fmt.Printf("%7d hammers per aggressor -> %3d bitflips (BER %.3f%%)\n",
			hammers, flips, float64(flips)/float64(hbmrd.RowBits)*100)

		// Re-initialize the victim for the next round.
		if err := ch.FillRow(0, 0, victim, 0x55); err != nil {
			log.Fatal(err)
		}
	}
}
