// Command query-figures walks the query subsystem end to end - the read
// side of the sweep store that makes one characterization run serve
// unlimited analysis traffic:
//
//  1. run a small HCfirst sweep once, streaming it to a JSONL file (the
//     `hbmrd -out` flow),
//  2. ingest the finished file into a content-addressed sweep store,
//  3. reproduce the paper's Fig 5 and Fig 7 aggregations from the stored
//     records alone - no re-execution - via predefined figure specs,
//  4. run a custom spec (per-channel HCfirst percentiles), and
//  5. re-run a query to show the derived-result cache answering it
//     without re-reading the raw records.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hbmrd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "query-figures-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. One small characterization run, streamed to disk as it measures.
	fleet, err := hbmrd.NewFleet([]int{0, 3}, hbmrd.WithIdentityMapping())
	if err != nil {
		return err
	}
	outPath := filepath.Join(dir, "hcfirst.jsonl")
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	sink := hbmrd.NewJSONLFileSink(f)
	_, err = hbmrd.RunHCFirstContext(context.Background(), fleet, hbmrd.HCFirstConfig{
		Channels: []int{0, 1, 2},
		Rows:     hbmrd.SampleRows(4),
		Reps:     1,
	}, hbmrd.WithSink(sink))
	if err == nil {
		err = sink.Err()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	// 2. Finalize the finished file into the store under its fingerprint.
	st, err := hbmrd.OpenSweepStore(filepath.Join(dir, "store"))
	if err != nil {
		return err
	}
	meta, err := hbmrd.IngestSweep(st, outPath)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %s sweep %s (%d records, %d bytes)\n\n",
		meta.Kind, meta.Fingerprint, meta.Records, meta.Bytes)

	// 3. Paper figures from stored data alone.
	eng := hbmrd.NewQueryEngine(st)
	for _, fig := range []string{"fig5", "fig7"} {
		spec, err := hbmrd.QueryFigureSpec(fig, meta.Fingerprint)
		if err != nil {
			return err
		}
		res, err := eng.Run(spec)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s from the store ====\n%s\n", fig, hbmrd.RenderAggregate(&res.Aggregate))
	}

	// 4. A custom spec: per-channel HCfirst tail percentiles of the
	// worst-case data pattern.
	custom := hbmrd.QuerySpec{
		Sweep:       meta.Fingerprint,
		GroupBy:     []string{"channel"},
		Metric:      "hcfirst",
		Where:       []hbmrd.QueryCond{{Dim: "wcdp", Value: "true"}, {Dim: "found", Value: "true"}},
		Reducers:    []string{"count", "median", "percentiles"},
		Percentiles: []float64{10, 50, 90},
	}
	res, err := eng.Run(custom)
	if err != nil {
		return err
	}
	fmt.Printf("==== per-channel WCDP HCfirst percentiles ====\n%s\n", hbmrd.RenderAggregate(&res.Aggregate))

	// 5. The identical spec again: a derived-cache hit, raw records unread.
	again, err := eng.Run(custom)
	if err != nil {
		return err
	}
	fmt.Printf("re-run: cache hit = %v, aggregate bytes identical = %v\n",
		again.CacheHit, string(again.JSON) == string(res.JSON))
	return nil
}
