// Command resume-and-serve walks the durability layer end to end, the
// same machinery `hbmrd -out/-resume` and the hbmrdd service run on:
//
//  1. stream a BER sweep to a JSONL file and cancel it partway through,
//  2. resume from the truncated file's valid prefix and finish it
//     byte-identically to an uninterrupted run,
//  3. finalize the finished sweep into a content-addressed store and
//     serve a repeat of the identical sweep spec from disk, without
//     re-executing anything.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"hbmrd"
)

// cancelAfter cancels a sweep once n cells have completed, standing in
// for the Ctrl-C (or SIGTERM) that interrupts a real campaign.
type cancelAfter struct {
	cancel context.CancelFunc
	after  int
}

func (s *cancelAfter) Start(int) {}
func (s *cancelAfter) Progress(done, _ int) {
	if done == s.after {
		s.cancel()
	}
}
func (s *cancelAfter) Record(any)   {}
func (s *cancelAfter) Finish(error) {}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "resume-and-serve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	newFleet := func() ([]*hbmrd.TestChip, error) {
		return hbmrd.NewFleet([]int{0, 1}, hbmrd.WithIdentityMapping())
	}
	cfg := hbmrd.BERConfig{
		Channels: []int{0, 1},
		Rows:     hbmrd.SampleRows(6),
		Patterns: []hbmrd.Pattern{hbmrd.Rowstripe0, hbmrd.Checkered0},
		Reps:     1,
	}

	// Reference: the same sweep, uninterrupted.
	fleet, err := newFleet()
	if err != nil {
		return err
	}
	refPath := filepath.Join(dir, "reference.jsonl")
	rf, err := os.Create(refPath)
	if err != nil {
		return err
	}
	refSink := hbmrd.NewJSONLFileSink(rf)
	if _, err := hbmrd.RunBERContext(context.Background(), fleet, cfg, hbmrd.WithSink(refSink)); err != nil {
		return err
	}
	if err := refSink.Err(); err != nil {
		return err
	}
	rf.Close()
	ref, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}
	fmt.Printf("uninterrupted run: %d bytes\n", len(ref))

	// 1. The interrupted campaign: cancel after 5 of 24 cells.
	outPath := filepath.Join(dir, "results.jsonl")
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fleet, err = newFleet()
	if err != nil {
		return err
	}
	_, err = hbmrd.RunBERContext(ctx, fleet, cfg, hbmrd.WithJobs(2),
		hbmrd.WithSink(hbmrd.MultiSink(hbmrd.NewJSONLFileSink(f), &cancelAfter{cancel: cancel, after: 5})))
	f.Close()
	fmt.Printf("interrupted run:   %v\n", err)

	// 2. Resume: read the valid prefix back, skip its cells, finish the
	// file. ResumeFrom validates the header; the runner validates that the
	// fingerprint still matches this config, chip set, and code build.
	f, err = os.OpenFile(outPath, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	cp, err := hbmrd.ResumeFrom(f)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint:        %d complete records (%d bytes valid)\n", cp.Records(), cp.ValidBytes())
	fleet, err = newFleet()
	if err != nil {
		return err
	}
	sink := hbmrd.NewJSONLFileSink(f)
	if _, err := hbmrd.RunBERContext(context.Background(), fleet, cfg,
		hbmrd.WithSink(sink), hbmrd.WithResume(cp)); err != nil {
		return err
	}
	if err := sink.Err(); err != nil {
		return err
	}
	f.Close()
	resumed, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("resumed run:       %d bytes, byte-identical: %v\n", len(resumed), bytes.Equal(resumed, ref))

	// 3. Durability: finalize into the content-addressed store, then
	// serve a repeat of the identical spec from disk - the same dedup
	// hbmrdd performs on every POST /sweeps.
	st, err := hbmrd.OpenSweepStore(filepath.Join(dir, "store"))
	if err != nil {
		return err
	}
	// ResumeFrom doubles as a validator: on the finished file it reports
	// the complete record count for the store metadata.
	done, err := hbmrd.ResumeFrom(bytes.NewReader(resumed))
	if err != nil {
		return err
	}
	fp := done.Header.Fingerprint
	if err := st.PutFile(hbmrd.SweepStoreMeta{
		Fingerprint: fp, Kind: done.Header.Kind, Cells: done.Header.Cells, Records: done.Records(),
	}, outPath); err != nil {
		return err
	}

	// "Would this exact sweep re-run?" is one fingerprint computation.
	fleet, err = newFleet()
	if err != nil {
		return err
	}
	again, err := hbmrd.SweepFingerprint(hbmrd.KindBER, fleet, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("repeat spec:       fingerprint match %v, store hit %v\n", again == fp, st.Has(again))
	rc, meta, err := st.Get(again)
	if err != nil {
		return err
	}
	defer rc.Close()
	served, err := io.ReadAll(rc)
	if err != nil {
		return err
	}
	fmt.Printf("served from store: %d records, %d bytes, byte-identical: %v\n",
		meta.Records, len(served), bytes.Equal(served, ref))
	return nil
}
