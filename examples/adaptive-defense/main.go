// adaptive-defense quantifies the paper's §8.2 implication: profile a
// chip's per-channel HCfirst (the Fig 7 measurement), then compare a
// uniform RowHammer defense - provisioned for the worst row anywhere -
// against one whose thresholds adapt to each channel's own vulnerability.
package main

import (
	"fmt"
	"log"

	"hbmrd"
)

func main() {
	fleet, err := hbmrd.NewFleet([]int{4}) // widest channel spread (Fig 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Profiling per-channel HCfirst on Chip 4 ...")
	recs, err := hbmrd.RunHCFirst(fleet, hbmrd.HCFirstConfig{
		Rows: hbmrd.SampleRows(8),
		Reps: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	regions := hbmrd.DefenseRegionsByChannel(recs)
	rep, err := hbmrd.CompareDefense(regions, hbmrd.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nUniform defense threshold (worst row anywhere): %.0f activations\n", rep.GlobalThreshold)
	fmt.Println("Per-channel adaptive thresholds:")
	for _, r := range rep.Regions {
		fmt.Printf("  %-4s threshold %6.0f  worst-case mitigations/window %8.0f\n",
			r.Label, r.Threshold, r.Rate)
	}
	fmt.Printf("\nWorst-case preventive refreshes per refresh window:\n")
	fmt.Printf("  uniform:  %.0f\n  adaptive: %.0f\n", rep.UniformRate, rep.AdaptiveRate)
	fmt.Printf("  adaptive saves %.1f%% (Takeaways 2 and 3)\n", rep.SavingsPercent)
}
