package hbmrd

import (
	"hbmrd/internal/attack"
	"hbmrd/internal/core"
	"hbmrd/internal/defense"
)

// The paper's §8 implications, quantifiable against the simulated chips:
// attackers accelerate memory templating by targeting the most vulnerable
// channel (§8.1), and defenses cut preventive-refresh cost by adapting to
// the heterogeneous vulnerability across channels and subarrays (§8.2).

// Attack-side re-exports.
type (
	// AttackStrategy orders a templating scan.
	AttackStrategy = attack.Strategy
	// TemplateConfig parameterizes a templating run.
	TemplateConfig = attack.Config
	// TemplateResult summarizes a templating run.
	TemplateResult = attack.Result
)

// Templating strategies.
const (
	NaiveScan       = attack.NaiveScan
	ChannelTargeted = attack.ChannelTargeted
)

// RunTemplating scans a chip for exploitable rows under the given strategy
// and budget (§8.1: memory templating).
func RunTemplating(chip *Chip, cfg TemplateConfig) (TemplateResult, error) {
	return attack.Template(chip, cfg)
}

// RetirementImpact returns the fraction of measured rows a
// retire-on-N-errors policy would retire (§8.1: RowHammer accelerates page
// retirement beyond design-time estimates). The BER-to-flip conversion
// assumes the default (paper HBM2) row size; use RetirementImpactIn for
// measurements taken on another geometry.
func RetirementImpact(berPercents []float64, retireAtFlips int) float64 {
	return attack.RetirementImpact(berPercents, retireAtFlips)
}

// RetirementImpactIn is RetirementImpact for BER measurements taken on
// chips of geometry g.
func RetirementImpactIn(g Geometry, berPercents []float64, retireAtFlips int) float64 {
	return attack.RetirementImpactIn(g, berPercents, retireAtFlips)
}

// Defense-side re-exports.
type (
	// DefenseRegion is one independently provisioned protection domain.
	DefenseRegion = defense.Region
	// DefenseConfig parameterizes the mitigation cost model.
	DefenseConfig = defense.Config
	// DefenseReport compares uniform and adaptive provisioning.
	DefenseReport = defense.CostReport
)

// CompareDefense computes uniform-vs-adaptive mitigation cost (§8.2).
func CompareDefense(regions []DefenseRegion, cfg DefenseConfig) (DefenseReport, error) {
	return defense.Compare(regions, cfg)
}

// DefenseRegionsByChannel derives per-channel protection domains from
// HCfirst experiment records.
func DefenseRegionsByChannel(recs []HCFirstRecord) []DefenseRegion {
	return defense.ProfileChannels(recs)
}

// DefenseRegionsBySubarray derives per-subarray protection domains from
// HCfirst records and discovered subarray boundaries.
func DefenseRegionsBySubarray(recs []HCFirstRecord, boundaries []int) []DefenseRegion {
	return defense.ProfileSubarrays(recs, boundaries)
}

// BERPercents extracts BER values from records (for RetirementImpact).
func BERPercents(recs []BERRecord) []float64 { return core.BERValues(recs) }
