package hbmrd_test

import (
	"testing"

	"hbmrd"
)

func TestImplicationTemplatingFacade(t *testing.T) {
	chip, err := hbmrd.NewChip(5, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbmrd.RunTemplating(chip, hbmrd.TemplateConfig{
		Strategy:    hbmrd.NaiveScan,
		TargetFlips: 2,
		Rows:        hbmrd.SampleRows(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TemplatesFound < 2 {
		t.Errorf("templating found %d rows", res.TemplatesFound)
	}
}

func TestImplicationDefenseFacade(t *testing.T) {
	regions := []hbmrd.DefenseRegion{
		{Label: "CH0", MinHCFirst: 15000},
		{Label: "CH4", MinHCFirst: 60000},
	}
	rep, err := hbmrd.CompareDefense(regions, hbmrd.DefenseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavingsPercent <= 0 {
		t.Errorf("no savings for 4x heterogeneity: %+v", rep)
	}
}

func TestRetirementImpactFacade(t *testing.T) {
	recs := []hbmrd.BERRecord{{BERPercent: 1.0}, {BERPercent: 0.0001}}
	got := hbmrd.RetirementImpact(hbmrd.BERPercents(recs), 10)
	if got != 0.5 {
		t.Errorf("retired fraction %v, want 0.5", got)
	}
}
