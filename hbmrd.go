// Package hbmrd is the public API of the HBM2 read-disturbance study
// reproduction: six simulated HBM2 chips calibrated to the paper's
// measurements, a DRAM-Bender-style test platform, the undocumented TRR
// mechanism, and the full characterization suite that regenerates every
// table and figure of the paper's evaluation.
//
// Quick start:
//
//	chip, _ := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
//	ch, _ := chip.Channel(0)
//	ch.FillRow(0, 0, 999, 0xAA)  // aggressor
//	ch.FillRow(0, 0, 1000, 0x55) // victim
//	ch.FillRow(0, 0, 1001, 0xAA) // aggressor
//	ch.HammerDoubleSided(0, 0, 999, 1001, 300_000, 0)
//	buf := make([]byte, hbmrd.RowBytes)
//	ch.ReadRow(0, 0, 1000, buf) // buf now contains RowHammer bitflips
//
// The experiment runners (RunBER, RunHCFirst, RunRowPressBER, RunBypass,
// UncoverTRR, ...) reproduce the paper's Figs 4-17; the Render* helpers
// print them in the shape of the corresponding table or figure. Every
// runner also has a Run*Context form that adds cancellation, worker-count
// control (WithJobs), and live streaming of progress and records
// (WithSink) on the shared sweep engine; results are deterministic - plan
// order - regardless of worker count.
package hbmrd

import (
	"context"
	"encoding/json"
	"io"
	"os"

	"hbmrd/internal/bender"
	"hbmrd/internal/core"
	"hbmrd/internal/disturb"
	"hbmrd/internal/ecc"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/query"
	"hbmrd/internal/report"
	"hbmrd/internal/retention"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
	"hbmrd/internal/thermal"
	"hbmrd/internal/trr"
	"hbmrd/internal/utrr"
)

// Re-exported device types.
type (
	// Chip is one simulated HBM2 stack.
	Chip = hbm.Chip
	// Channel is one independently operating HBM2 channel.
	Channel = hbm.Channel
	// ChipOption configures chip construction.
	ChipOption = hbm.Option
	// Geometry describes a chip organization (channels, pseudo channels,
	// banks, rows, row size).
	Geometry = hbm.Geometry
	// GeometryPreset bundles an organization with its timing table
	// (HBM2_8Gb, HBM2E_16Gb, HBM3_16Gb).
	GeometryPreset = hbm.Preset
	// Addr identifies a row through the command interface.
	Addr = hbm.Addr
	// Timing holds the JEDEC timing parameters.
	Timing = hbm.Timing
	// TimePS is simulated time in picoseconds.
	TimePS = hbm.TimePS
	// Profile is a chip fault-model calibration profile.
	Profile = disturb.Profile
	// Pattern is a Table 1 data pattern.
	Pattern = pattern.Pattern
	// TestChip couples a chip with its study index.
	TestChip = core.TestChip
	// Program is a MemBender test program.
	Program = bender.Program
	// Platform executes MemBender programs against a chip.
	Platform = bender.Platform
	// TRRFindings is the outcome of the U-TRR methodology.
	TRRFindings = utrr.Findings
	// FlipHistogram buckets 64-bit words by bitflip count (Fig 17).
	FlipHistogram = ecc.FlipHistogram
)

// Re-exported experiment configurations and records.
type (
	BERConfig          = core.BERConfig
	BERRecord          = core.BERRecord
	HCFirstConfig      = core.HCFirstConfig
	HCFirstRecord      = core.HCFirstRecord
	HCNthConfig        = core.HCNthConfig
	HCNthRecord        = core.HCNthRecord
	Fig12Stats         = core.Fig12Stats
	VariabilityConfig  = core.VariabilityConfig
	VariabilityRecord  = core.VariabilityRecord
	RowPressBERConfig  = core.RowPressBERConfig
	RowPressBERRecord  = core.RowPressBERRecord
	RowPressHCConfig   = core.RowPressHCConfig
	RowPressHCRecord   = core.RowPressHCRecord
	BypassConfig       = core.BypassConfig
	BypassRecord       = core.BypassRecord
	AgingConfig        = core.AgingConfig
	AgingRecord        = core.AgingRecord
	AgingSummary       = core.AgingSummary
	VRDConfig          = core.VRDConfig
	VRDRecord          = core.VRDRecord
	ColDisturbConfig   = core.ColDisturbConfig
	ColDisturbRecord   = core.ColDisturbRecord
	SubarrayScanConfig = core.SubarrayScanConfig
)

// Sweep-engine execution types: every Run*Context entry point accepts
// RunOptions, and a Sink observes a sweep while it runs (progress in
// completion order, records streamed strictly in plan order).
type (
	RunOption     = core.RunOption
	Sink          = core.Sink
	JSONLSink     = core.JSONLSink
	JSONLFileSink = core.JSONLFileSink
	ProgressSink  = core.ProgressSink
)

// Checkpoint/resume and sweep-identity types: every streamed sweep file
// starts with a SweepHeader whose fingerprint is a stable content hash of
// (experiment kind, canonical config, geometry, timing, chip set, code
// generation); ResumeFrom reads the valid prefix of a partial file back
// as a Checkpoint, and WithResume warm-starts the identical sweep from
// it. SweepKind names an experiment runner in headers, fingerprints, and
// hbmrdd sweep specs.
type (
	SweepHeader = core.SweepHeader
	Checkpoint  = core.Checkpoint
	SweepKind   = core.Kind
)

// The experiment kinds, one per sweep-shaped runner.
const (
	KindBER         = core.KindBER
	KindHCFirst     = core.KindHCFirst
	KindHCNth       = core.KindHCNth
	KindVariability = core.KindVariability
	KindRowPressBER = core.KindRowPressBER
	KindRowPressHC  = core.KindRowPressHC
	KindBypass      = core.KindBypass
	KindAging       = core.KindAging
	KindVRD         = core.KindVRD
	KindColDisturb  = core.KindColDisturb
)

// CodeGeneration is the fault-model behaviour generation stamped into
// every sweep fingerprint; it is bumped whenever the golden sweep digests
// are deliberately re-pinned, invalidating stored and checkpointed
// results from the old behaviour.
const CodeGeneration = core.CodeGeneration

// WithJobs bounds a sweep's worker pool at n concurrently executing
// channel groups (default GOMAXPROCS; 1 runs fully serial).
func WithJobs(n int) RunOption { return core.WithJobs(n) }

// WithSink streams a sweep's progress and records to s while it runs.
func WithSink(s Sink) RunOption { return core.WithSink(s) }

// WithResume warm-starts a sweep from a checkpoint read by ResumeFrom:
// the checkpointed cells' records pre-fill the result set, only the
// remainder executes, and a file-backed sink continues the stream
// byte-identically to an uninterrupted run. The runner rejects
// checkpoints whose fingerprint does not match its own sweep.
func WithResume(cp *Checkpoint) RunOption { return core.WithResume(cp) }

// ResumeFrom reads the valid prefix (fingerprint header plus complete
// record lines) of a partially written sweep file.
func ResumeFrom(r io.Reader) (*Checkpoint, error) { return core.ResumeFrom(r) }

// Tracer streams sweep-lifecycle spans (plan → cells → finalize) as
// JSON Lines, one object per completed span, keyed by the sweep's
// fingerprint. Tracing is strictly out-of-band of the record stream:
// it never changes a sweep's records, fingerprints, or sink bytes.
// `hbmrd -trace-out FILE` wires one up for CLI sweeps.
type Tracer = telemetry.Tracer

// NewTracer returns a Tracer writing JSONL spans to w (the caller
// owns w and closes it after the sweep).
func NewTracer(w io.Writer) *Tracer { return telemetry.NewTracer(w) }

// WithTracer attaches a span tracer to a sweep run.
func WithTracer(t *Tracer) RunOption { return core.WithTracer(t) }

// SweepFingerprint computes the fingerprint a Run*Context call with this
// kind, fleet, and config would stamp into its header, without running
// anything - the key for deduplicating finished sweeps.
func SweepFingerprint(kind SweepKind, fleet []*TestChip, cfg any) (string, error) {
	return core.FingerprintFor(kind, fleet, cfg)
}

// ShardRange is a contiguous [Start, End) range of a sweep's plan cells,
// the unit the distributed fabric splits sweeps into.
type ShardRange = core.ShardRange

// WithShard restricts a sweep run to the plan cells in r: the stream's
// header carries the parent fingerprint plus the range, its fingerprint
// is the shard's sub-fingerprint, and its records are exactly the
// parent's record lines for that range - so concatenating contiguous
// shard payloads under the parent header reproduces the whole-sweep file
// byte for byte. Aging sweeps cannot shard.
func WithShard(r ShardRange) RunOption { return core.WithShard(r) }

// ShardFingerprint derives the deterministic sub-fingerprint of the
// [start, end) shard of the sweep fingerprinted by parent.
func ShardFingerprint(parent string, start, end int) string {
	return core.ShardFingerprint(parent, start, end)
}

// SweepPlanSize reports how many plan cells a Run*Context call with this
// kind, fleet, and config would execute - the bound shard ranges are
// validated against. Aging sweeps compose two inner sweeps and have no
// single plan; they return an error.
func SweepPlanSize(kind SweepKind, fleet []*TestChip, cfg any) (int, error) {
	return core.PlanSize(kind, fleet, cfg)
}

// NewJSONLSink streams every record to w as one JSON object per line -
// the sweep's fingerprint header first, then records in plan order, so a
// truncated file is a valid prefix of the full result set and a
// resumable checkpoint.
func NewJSONLSink(w io.Writer) *JSONLSink { return core.NewJSONLSink(w) }

// NewJSONLFileSink is NewJSONLSink over a file, adding the resume
// contract: on a resumed sweep the file is truncated to the checkpoint
// boundary and appended from there. The caller closes f after checking
// Err.
func NewJSONLFileSink(f *os.File) *JSONLFileSink { return core.NewJSONLFileSink(f) }

// SweepStore is a content-addressed, on-disk store of finished sweeps:
// the fingerprint is the address, the completed JSONL stream the value.
// Since equal fingerprints mean byte-identical record streams, a hit can
// be served in place of re-running the sweep - this is the durability
// layer under the hbmrdd service.
type SweepStore = store.Store

// SweepStoreMeta describes one stored sweep.
type SweepStoreMeta = store.Meta

// ErrSweepNotFound reports a fingerprint with no finished sweep stored.
var ErrSweepNotFound = store.ErrNotFound

// OpenSweepStore opens (creating if needed) a sweep store rooted at dir.
func OpenSweepStore(dir string) (*SweepStore, error) { return store.Open(dir) }

// Query subsystem: decode stored sweeps back into typed records, catalog
// what a store holds, and run aggregation pipelines (group-by over the
// sweep's dimensions with reducers built on the study's statistics) whose
// results are content-addressed into the store's derived cache - so every
// paper figure is reproducible from stored data without re-execution, and
// repeated identical queries never re-read the raw records.
type (
	// QuerySpec is one aggregation query over one stored sweep.
	QuerySpec = query.Spec
	// QueryCond is one record filter of a query spec.
	QueryCond = query.Cond
	// QueryAggregate is the typed result of one query.
	QueryAggregate = query.Aggregate
	// QueryResult is one executed query: aggregate, canonical JSON, and
	// the path that answered it (cache, columnar artifact, or raw JSONL).
	QueryResult = query.Result
	// QueryEngine executes query specs against a sweep store. Cache
	// misses prefer the sweep's columnar artifact and fall back to the
	// JSONL records (backfilling the artifact) for pre-format objects.
	QueryEngine = query.Engine
	// SweepCatalog indexes the finished sweeps a store holds.
	SweepCatalog = query.Catalog
	// CatalogFilter is one catalog predicate for SweepCatalog.Find.
	CatalogFilter = query.Filter
)

// QueryResult.Source values: which path produced the aggregate.
const (
	QuerySourceCache    = query.SourceCache
	QuerySourceColumnar = query.SourceColumnar
	QuerySourceJSONL    = query.SourceJSONL
)

// NewQueryEngine builds a query engine over a sweep store.
func NewQueryEngine(s *SweepStore) *QueryEngine { return query.NewEngine(s) }

// NewSweepCatalog indexes a store's finished sweeps.
func NewSweepCatalog(s *SweepStore) (*SweepCatalog, error) { return query.NewCatalog(s) }

// Catalog filters for SweepCatalog.Find.
func CatalogByKind(kind string) CatalogFilter       { return query.ByKind(kind) }
func CatalogByGeometry(preset string) CatalogFilter { return query.ByGeometry(preset) }
func CatalogByChips(chips ...int) CatalogFilter     { return query.ByChips(chips...) }
func CatalogByConfig(pred func(json.RawMessage) bool) CatalogFilter {
	return query.ByConfig(pred)
}

// QueryFigureSpec returns the predefined spec reproducing one of the
// paper's figure aggregations (fig4 fig5 fig6 fig7 fig9 fig13 fig14 fig15
// fig16, plus figrank for multi-rank organizations, figvrd for the VRD
// trial-distribution view, and figcoldist for flips versus column-read
// distance) from the stored sweep at the fingerprint.
func QueryFigureSpec(fig, sweep string) (QuerySpec, error) { return query.FigureSpec(fig, sweep) }

// QueryDimensions and QueryMetrics list a kind's group-by/filter and
// aggregation vocabularies.
func QueryDimensions(kind SweepKind) []string { return query.Dimensions(kind) }
func QueryMetrics(kind SweepKind) []string    { return query.Metrics(kind) }

// IngestSweep finalizes a completed `-out` sweep JSONL file into the
// store under its header fingerprint. Torn or incomplete files are
// rejected (resume them instead).
func IngestSweep(s *SweepStore, path string) (SweepStoreMeta, error) { return query.Ingest(s, path) }

// DecodeSweepRecords parses a stored sweep stream back into its kind's
// concrete record type ([]BERRecord, []HCFirstRecord, ...), the exact
// inverse of the JSONL sink encoding. Pass kind "" to accept whatever the
// header declares.
func DecodeSweepRecords(kind SweepKind, r io.Reader) (SweepHeader, any, error) {
	return core.DecodeRecords(kind, r)
}

// EncodeSweepRecords writes a sweep stream exactly as a live JSONL sink
// would; composed with DecodeSweepRecords it reproduces the input byte
// for byte.
func EncodeSweepRecords(w io.Writer, h SweepHeader, records any) error {
	return core.EncodeRecords(w, h, records)
}

// RenderAggregate prints a query aggregate as an aligned text table, the
// same presentation the figure renderers use.
func RenderAggregate(a *QueryAggregate) string { return report.AggregateTable(a) }

// NewProgressSink reports whole-percent sweep progress for the labelled
// experiment to w.
func NewProgressSink(w io.Writer, label string) *ProgressSink {
	return core.NewProgressSink(w, label)
}

// MultiSink fans sink callbacks out to several sinks in order.
func MultiSink(sinks ...Sink) Sink { return core.MultiSink(sinks...) }

// Geometry constants of the default (paper HBM2) organization, and time
// units. Chips built with a non-default preset report their organization
// through Chip.Geometry instead.
const (
	NumChannels       = hbm.NumChannels
	NumPseudoChannels = hbm.NumPseudoChannels
	NumBanks          = hbm.NumBanks
	NumRows           = hbm.NumRows
	RowBytes          = hbm.RowBytes
	RowBits           = hbm.RowBits

	NS  = hbm.NS
	US  = hbm.US
	MS  = hbm.MS
	SEC = hbm.SEC
)

// Geometry preset names and device families.
const (
	PresetHBM2  = hbm.PresetHBM2
	PresetHBM2E = hbm.PresetHBM2E
	PresetHBM3  = hbm.PresetHBM3

	FamilyHBM2  = hbm.FamilyHBM2
	FamilyHBM2E = hbm.FamilyHBM2E
	FamilyHBM3  = hbm.FamilyHBM3
)

// Presets returns the geometry preset registry: the paper's HBM2 part
// first, then the legacy HBM2E/HBM3 organizations and the ported
// Ramulator2 matrix (HBM2/HBM2E data-rate rows, the twelve JESD238 HBM3
// rank variants).
func Presets() []GeometryPreset { return hbm.Presets() }

// PresetsByFamily returns the registered presets of one device family
// ("HBM2", "HBM2E", "HBM3").
func PresetsByFamily(family string) []GeometryPreset { return hbm.PresetsByFamily(family) }

// LookupPreset finds a geometry preset by name (case-insensitive).
func LookupPreset(name string) (GeometryPreset, error) { return hbm.LookupPreset(name) }

// PresetAtRate returns a ported preset rebound to another data rate of
// its family's timing matrix (see FamilyRates).
func PresetAtRate(name string, rateMbps int) (GeometryPreset, error) {
	return hbm.PresetAtRate(name, rateMbps)
}

// FamilyRates returns the data rates (Mbps) a device family's ported
// timing matrix covers.
func FamilyRates(family string) []int { return hbm.FamilyRates(family) }

// DefaultGeometry returns the paper's HBM2 organization.
func DefaultGeometry() Geometry { return hbm.DefaultGeometry() }

// WithGeometry builds a chip with a preset's organization and timing table.
// An explicit WithTiming still overrides the preset's timing.
func WithGeometry(p GeometryPreset) ChipOption { return hbm.WithGeometry(p) }

// Data patterns (Table 1).
const (
	Rowstripe0 = pattern.Rowstripe0
	Rowstripe1 = pattern.Rowstripe1
	Checkered0 = pattern.Checkered0
	Checkered1 = pattern.Checkered1
)

// AllPatterns lists the four Table 1 patterns.
func AllPatterns() []Pattern { return pattern.All() }

// NewChip builds one of the paper's six chips (index 0-5).
func NewChip(index int, opts ...ChipOption) (*Chip, error) {
	return hbm.NewBuiltin(index, opts...)
}

// NewCustomChip builds a chip from a custom fault-model profile.
func NewCustomChip(p Profile, opts ...ChipOption) (*Chip, error) {
	return hbm.New(p, opts...)
}

// BuiltinProfiles returns the six calibrated chip profiles.
func BuiltinProfiles() []Profile { return disturb.BuiltinProfiles() }

// DefaultTiming returns the study's HBM2 timing parameters.
func DefaultTiming() Timing { return hbm.DefaultTiming() }

// WithIdentityMapping disables the vendor row swizzle (useful when an
// experiment wants logical adjacency to equal physical adjacency without
// reverse engineering first). It adapts to the chip's geometry, so it
// composes with WithGeometry in any option order.
func WithIdentityMapping() ChipOption {
	return hbm.WithIdentityMapping()
}

// WithoutTRR disables the undocumented on-die TRR mechanism.
func WithoutTRR() ChipOption {
	return hbm.WithTRRConfig(trr.Config{Enabled: false})
}

// WithTiming overrides the chip's timing parameters.
func WithTiming(t Timing) ChipOption { return hbm.WithTiming(t) }

// WithStrictTiming makes early commands fail instead of auto-delaying.
func WithStrictTiming() ChipOption { return hbm.WithStrictTiming() }

// NewFleet builds the given subset of the study's chips (ECC disabled, as
// in every experiment of the paper).
func NewFleet(indices []int, opts ...ChipOption) ([]*TestChip, error) {
	return core.NewFleet(indices, opts...)
}

// NewFullFleet builds all six chips.
func NewFullFleet(opts ...ChipOption) ([]*TestChip, error) {
	return core.NewFullFleet(opts...)
}

// AllChips lists the paper's six chip indices.
func AllChips() []int { return core.AllChips() }

// SampleRows spreads n victim rows evenly across a bank of the default
// geometry.
func SampleRows(n int) []int { return core.SampleRows(n) }

// SampleRowsIn spreads n victim rows evenly across a bank of geometry g.
func SampleRowsIn(g Geometry, n int) []int { return core.SampleRowsIn(g, n) }

// RegionRows samples count rows from the beginning, middle, and end of a
// bank of the default geometry.
func RegionRows(count int) []int { return core.RegionRows(count) }

// RegionRowsIn samples count rows from the beginning, middle, and end of a
// bank of geometry g.
func RegionRowsIn(g Geometry, count int) []int { return core.RegionRowsIn(g, count) }

// Experiment runners (one per paper artifact; see DESIGN.md §5). Each
// runner has two entry points: the plain form runs to completion on a
// background context, while the Context form adds cancellation and
// execution options (WithJobs, WithSink). All of them execute on the
// shared sweep engine, so results are deterministic - plan order -
// regardless of worker count.
func RunBER(fleet []*TestChip, cfg BERConfig) ([]BERRecord, error) { return core.RunBER(fleet, cfg) }

func RunBERContext(ctx context.Context, fleet []*TestChip, cfg BERConfig, opts ...RunOption) ([]BERRecord, error) {
	return core.RunBERContext(ctx, fleet, cfg, opts...)
}

func RunHCFirst(fleet []*TestChip, cfg HCFirstConfig) ([]HCFirstRecord, error) {
	return core.RunHCFirst(fleet, cfg)
}

func RunHCFirstContext(ctx context.Context, fleet []*TestChip, cfg HCFirstConfig, opts ...RunOption) ([]HCFirstRecord, error) {
	return core.RunHCFirstContext(ctx, fleet, cfg, opts...)
}

func RunHCNth(fleet []*TestChip, cfg HCNthConfig) ([]HCNthRecord, error) {
	return core.RunHCNth(fleet, cfg)
}

func RunHCNthContext(ctx context.Context, fleet []*TestChip, cfg HCNthConfig, opts ...RunOption) ([]HCNthRecord, error) {
	return core.RunHCNthContext(ctx, fleet, cfg, opts...)
}

func ComputeFig12(recs []HCNthRecord) ([]Fig12Stats, error) { return core.ComputeFig12(recs) }

func RunVariability(fleet []*TestChip, cfg VariabilityConfig) ([]VariabilityRecord, error) {
	return core.RunVariability(fleet, cfg)
}

func RunVariabilityContext(ctx context.Context, fleet []*TestChip, cfg VariabilityConfig, opts ...RunOption) ([]VariabilityRecord, error) {
	return core.RunVariabilityContext(ctx, fleet, cfg, opts...)
}

func RunRowPressBER(fleet []*TestChip, cfg RowPressBERConfig) ([]RowPressBERRecord, error) {
	return core.RunRowPressBER(fleet, cfg)
}

func RunRowPressBERContext(ctx context.Context, fleet []*TestChip, cfg RowPressBERConfig, opts ...RunOption) ([]RowPressBERRecord, error) {
	return core.RunRowPressBERContext(ctx, fleet, cfg, opts...)
}

func RunRowPressHC(fleet []*TestChip, cfg RowPressHCConfig) ([]RowPressHCRecord, error) {
	return core.RunRowPressHC(fleet, cfg)
}

func RunRowPressHCContext(ctx context.Context, fleet []*TestChip, cfg RowPressHCConfig, opts ...RunOption) ([]RowPressHCRecord, error) {
	return core.RunRowPressHCContext(ctx, fleet, cfg, opts...)
}

func RunBypass(fleet []*TestChip, cfg BypassConfig) ([]BypassRecord, error) {
	return core.RunBypass(fleet, cfg)
}

func RunBypassContext(ctx context.Context, fleet []*TestChip, cfg BypassConfig, opts ...RunOption) ([]BypassRecord, error) {
	return core.RunBypassContext(ctx, fleet, cfg, opts...)
}

func RunAging(fleet []*TestChip, cfg AgingConfig) ([]AgingRecord, error) {
	return core.RunAging(fleet, cfg)
}

func RunAgingContext(ctx context.Context, fleet []*TestChip, cfg AgingConfig, opts ...RunOption) ([]AgingRecord, error) {
	return core.RunAgingContext(ctx, fleet, cfg, opts...)
}

func SummarizeAging(recs []AgingRecord) AgingSummary { return core.SummarizeAging(recs) }

func RunVRD(fleet []*TestChip, cfg VRDConfig) ([]VRDRecord, error) {
	return core.RunVRD(fleet, cfg)
}

func RunVRDContext(ctx context.Context, fleet []*TestChip, cfg VRDConfig, opts ...RunOption) ([]VRDRecord, error) {
	return core.RunVRDContext(ctx, fleet, cfg, opts...)
}

func RunColDisturb(fleet []*TestChip, cfg ColDisturbConfig) ([]ColDisturbRecord, error) {
	return core.RunColDisturb(fleet, cfg)
}

func RunColDisturbContext(ctx context.Context, fleet []*TestChip, cfg ColDisturbConfig, opts ...RunOption) ([]ColDisturbRecord, error) {
	return core.RunColDisturbContext(ctx, fleet, cfg, opts...)
}

func ScanSubarrayBoundaries(tc *TestChip, cfg SubarrayScanConfig) ([]int, error) {
	return core.ScanSubarrayBoundaries(tc, cfg)
}

func ReverseEngineerMapping(tc *TestChip, cfg SubarrayScanConfig, logicalRows []int) ([][]int, error) {
	return core.ReverseEngineerMapping(tc, cfg, logicalRows)
}

// UncoverTRR runs the U-TRR retention-side-channel methodology against a
// freshly built chip (no REFs may have been issued yet) and returns the
// uncovered mechanism parameters.
func UncoverTRR(chip *Chip) (TRRFindings, error) {
	ch, err := chip.Channel(0)
	if err != nil {
		return TRRFindings{}, err
	}
	p := &utrr.Prober{Chan: ch, Mapper: chip.Mapper(), Fill: 0x55}
	return p.Uncover(3000, 128*MS, 4*SEC)
}

// NewPlatform attaches a MemBender platform to a chip.
func NewPlatform(chip *Chip) *Platform { return bender.NewPlatform(chip) }

// ParseProgram assembles a MemBender text program.
func ParseProgram(r io.Reader) (*Program, error) { return bender.Parse(r) }

// ThermalSample is one point of a Fig 3 temperature trace.
type ThermalSample = thermal.Sample

// SimulateTemperatures regenerates the Fig 3 traces for all six chips.
func SimulateTemperatures(durationSec, sampleEverySec float64) (names []string, traces [][]ThermalSample, err error) {
	for _, setup := range thermal.PaperSetups() {
		tr, err := thermal.Simulate(setup, durationSec, sampleEverySec)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, setup.Name)
		traces = append(traces, tr)
	}
	return names, traces, nil
}

// WordFlipHistograms aggregates the Fig 17 word-level flip histograms per
// pattern from mask-collecting BER records.
func WordFlipHistograms(recs []BERRecord) (map[Pattern]*FlipHistogram, error) {
	hists := make(map[Pattern]*FlipHistogram)
	for _, r := range recs {
		if r.WCDP || r.Mask == nil {
			continue
		}
		h, ok := hists[r.Pattern]
		if !ok {
			h = &FlipHistogram{}
			hists[r.Pattern] = h
		}
		if err := h.AccumulateWordFlips(r.Mask); err != nil {
			return nil, err
		}
	}
	return hists, nil
}

// Renderers: print results in the shape of the paper's artifacts.
func RenderTable1() string                                       { return report.Table1() }
func RenderTable2() string                                       { return report.Table2() }
func RenderFig3(names []string, traces [][]ThermalSample) string { return report.Fig3(names, traces) }
func RenderFig4(recs []BERRecord) string                         { return report.Fig4(recs) }
func RenderFig5(recs []HCFirstRecord) string                     { return report.Fig5(recs) }
func RenderFig6(recs []BERRecord) string                         { return report.Fig6(recs) }
func RenderFig7(recs []HCFirstRecord) string                     { return report.Fig7(recs) }
func RenderFig8CSV(recs []BERRecord, boundaries []int) string {
	return report.Fig8CSV(recs, boundaries)
}
func RenderFig9(recs []BERRecord) string                  { return report.Fig9(recs) }
func RenderFig10(s AgingSummary) string                   { return report.Fig10(s) }
func RenderFig11(recs []HCNthRecord) string               { return report.Fig11(recs) }
func RenderFig12(s []Fig12Stats) string                   { return report.Fig12(s) }
func RenderFig13(recs []VariabilityRecord) string         { return report.Fig13(recs) }
func RenderFig14(recs []RowPressBERRecord) string         { return report.Fig14(recs) }
func RenderFig15(recs []RowPressHCRecord) string          { return report.Fig15(recs) }
func RenderFig16(recs []BypassRecord) string              { return report.Fig16(recs) }
func RenderFig17(hists map[Pattern]*FlipHistogram) string { return report.Fig17(hists) }
func RenderTRRFindings(f TRRFindings) string              { return report.UTRR(f) }

// MeasureRetentionBaselines reproduces the §6 retention measurements: the
// aggregate retention BER of `rows` rows on one bank after each wait.
func MeasureRetentionBaselines(chip *Chip, channel, rows int, waits []TimePS) ([]float64, error) {
	ch, err := chip.Channel(channel)
	if err != nil {
		return nil, err
	}
	prof := &retention.Profiler{Chan: ch, PC: 0, Bank: 0, Fill: 0x55}
	out := make([]float64, 0, len(waits))
	for _, w := range waits {
		ber, err := prof.MeasureRetentionBER(1000, rows, w)
		if err != nil {
			return nil, err
		}
		out = append(out, ber)
	}
	return out, nil
}

// RenderRetention prints the §6 retention baselines.
func RenderRetention(waits []TimePS, bers []float64) string {
	return report.Retention(waits, bers)
}

// RenderTemplating prints the §8.1 naive-vs-targeted templating comparison.
func RenderTemplating(naive, targeted TemplateResult) string {
	return report.Templating(naive, targeted)
}

// RenderDefense prints the §8.2 uniform-vs-adaptive mitigation comparison.
func RenderDefense(rep DefenseReport) string { return report.Defense(rep) }
