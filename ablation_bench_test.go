// Ablation benchmarks for the design choices DESIGN.md calls out: the TRR
// tracker size (which sets the Fig 16 bypass threshold), the attack's
// channel-targeting advantage, and the adaptive defense's savings. Each
// reports its headline quantity as a custom metric.
package hbmrd_test

import (
	"testing"

	"hbmrd"
)

func BenchmarkAblationDefenseAdaptivity(b *testing.B) {
	fleet := benchFleet(b, 4)
	cfg := hbmrd.HCFirstConfig{
		Rows:     hbmrd.SampleRows(4),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}
	b.ResetTimer()
	var savings float64
	for i := 0; i < b.N; i++ {
		recs, err := hbmrd.RunHCFirst(fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := hbmrd.CompareDefense(hbmrd.DefenseRegionsByChannel(recs), hbmrd.DefenseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		savings = rep.SavingsPercent
	}
	b.ReportMetric(savings, "savings%")
}

func BenchmarkAblationChannelTargetedTemplating(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		chipA, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
		if err != nil {
			b.Fatal(err)
		}
		chipB, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
		if err != nil {
			b.Fatal(err)
		}
		rows := hbmrd.SampleRows(48)
		naive, err := hbmrd.RunTemplating(chipA, hbmrd.TemplateConfig{
			Strategy: hbmrd.NaiveScan, TargetFlips: 8, HammerBudget: 40_000, Rows: rows,
		})
		if err != nil {
			b.Fatal(err)
		}
		targeted, err := hbmrd.RunTemplating(chipB, hbmrd.TemplateConfig{
			Strategy: hbmrd.ChannelTargeted, TargetFlips: 8, HammerBudget: 40_000, Rows: rows,
		})
		if err != nil {
			b.Fatal(err)
		}
		if naive.HammersSpent > 0 {
			saved = (1 - float64(targeted.DrainHammers)/float64(naive.HammersSpent)) * 100
		}
	}
	b.ReportMetric(saved, "drainSaved%")
}

// BenchmarkAblationBlastRadius quantifies the distance-2 coupling: flips in
// the +-2 neighbour relative to the +-1 victim at an extreme probe dose.
func BenchmarkAblationBlastRadius(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
		if err != nil {
			b.Fatal(err)
		}
		ch, err := chip.Channel(0)
		if err != nil {
			b.Fatal(err)
		}
		const agg = 5000
		for d := -2; d <= 2; d++ {
			fill := byte(0x55)
			if d == 0 {
				fill = 0xAA
			}
			if err := ch.FillRow(0, 0, agg+d, fill); err != nil {
				b.Fatal(err)
			}
		}
		if err := ch.HammerSingleSided(0, 0, agg, 3000, 9*3_900_000); err != nil {
			b.Fatal(err)
		}
		near := make([]byte, hbmrd.RowBytes)
		far := make([]byte, hbmrd.RowBytes)
		if err := ch.ReadRow(0, 0, agg+1, near); err != nil {
			b.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, agg+2, far); err != nil {
			b.Fatal(err)
		}
		nNear, nFar := countFlips(near, 0x55), countFlips(far, 0x55)
		if nNear > 0 {
			ratio = float64(nFar) / float64(nNear)
		}
	}
	b.ReportMetric(ratio, "dist2/dist1")
}

func countFlips(buf []byte, expect byte) int {
	n := 0
	for _, v := range buf {
		for x := v ^ expect; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}
