package hbmrd_test

import (
	"bytes"
	"math/bits"
	"strings"
	"testing"

	"hbmrd"
)

// TestFacadeQuickstartFlow exercises the doc-comment quick start verbatim.
func TestFacadeQuickstartFlow(t *testing.T) {
	chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 999, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 1000, 0x55); err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 1001, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := ch.HammerDoubleSided(0, 0, 999, 1001, 300_000, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, hbmrd.RowBytes)
	if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, b := range buf {
		flips += bits.OnesCount8(b ^ 0x55)
	}
	if flips == 0 {
		t.Error("quick start produced no bitflips")
	}
}

func TestFacadeProfilesAndPatterns(t *testing.T) {
	if len(hbmrd.BuiltinProfiles()) != 6 {
		t.Error("six chips expected")
	}
	if len(hbmrd.AllPatterns()) != 4 {
		t.Error("four Table 1 patterns expected")
	}
	if hbmrd.DefaultTiming().ActBudgetPerREFI() != 78 {
		t.Error("ACT budget per tREFI must be 78")
	}
}

func TestFacadeExperimentAndRender(t *testing.T) {
	fleet, err := hbmrd.NewFleet([]int{5}, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := hbmrd.RunBER(fleet, hbmrd.BERConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(4),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := hbmrd.RenderFig4(recs)
	if !strings.Contains(out, "Chip 5") || !strings.Contains(out, "WCDP") {
		t.Errorf("render output malformed:\n%s", out)
	}
}

func TestFacadeMemBenderProgram(t *testing.T) {
	prog, err := hbmrd.ParseProgram(strings.NewReader(`
FILLROW 0 0 100 0x55
READROW 0 0 100
`))
	if err != nil {
		t.Fatal(err)
	}
	chip, err := hbmrd.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbmrd.NewPlatform(chip).Run(0, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 || !bytes.Equal(res.Reads[0].Data[:4], []byte{0x55, 0x55, 0x55, 0x55}) {
		t.Error("program read-back wrong")
	}
}

func TestFacadeThermal(t *testing.T) {
	names, traces, err := hbmrd.SimulateTemperatures(600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 || len(traces) != 6 {
		t.Fatalf("%d traces", len(traces))
	}
	out := hbmrd.RenderFig3(names, traces)
	if !strings.Contains(out, "Chip 0") {
		t.Error("fig3 render malformed")
	}
}

func TestFacadeUncoverTRR(t *testing.T) {
	if testing.Short() {
		t.Skip("side-channel probing takes a few seconds")
	}
	chip, err := hbmrd.NewChip(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := hbmrd.UncoverTRR(chip)
	if err != nil {
		t.Fatal(err)
	}
	if f.Period != 17 || f.IdentifyThreshold != 5 {
		t.Errorf("findings %+v diverge from the paper's mechanism", f)
	}
}
