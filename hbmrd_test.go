package hbmrd_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/bits"
	"reflect"
	"strings"
	"testing"

	"hbmrd"
)

// TestFacadeQuickstartFlow exercises the doc-comment quick start verbatim.
func TestFacadeQuickstartFlow(t *testing.T) {
	chip, err := hbmrd.NewChip(0, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 999, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 1000, 0x55); err != nil {
		t.Fatal(err)
	}
	if err := ch.FillRow(0, 0, 1001, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := ch.HammerDoubleSided(0, 0, 999, 1001, 300_000, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, hbmrd.RowBytes)
	if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, b := range buf {
		flips += bits.OnesCount8(b ^ 0x55)
	}
	if flips == 0 {
		t.Error("quick start produced no bitflips")
	}
}

func TestFacadeProfilesAndPatterns(t *testing.T) {
	if len(hbmrd.BuiltinProfiles()) != 6 {
		t.Error("six chips expected")
	}
	if len(hbmrd.AllPatterns()) != 4 {
		t.Error("four Table 1 patterns expected")
	}
	if hbmrd.DefaultTiming().ActBudgetPerREFI() != 78 {
		t.Error("ACT budget per tREFI must be 78")
	}
}

func TestFacadeExperimentAndRender(t *testing.T) {
	fleet, err := hbmrd.NewFleet([]int{5}, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := hbmrd.RunBER(fleet, hbmrd.BERConfig{
		Channels: []int{0},
		Rows:     hbmrd.SampleRows(4),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := hbmrd.RenderFig4(recs)
	if !strings.Contains(out, "Chip 5") || !strings.Contains(out, "WCDP") {
		t.Errorf("render output malformed:\n%s", out)
	}
}

// TestFacadeStreamingSweep drives the sweep engine through the public API:
// AllChips, a context-aware runner, worker-count control, and a JSONL sink
// whose stream must match the returned records line for line.
func TestFacadeStreamingSweep(t *testing.T) {
	if got := hbmrd.AllChips(); len(got) != 6 || got[0] != 0 || got[5] != 5 {
		t.Fatalf("AllChips() = %v", got)
	}
	fleet, err := hbmrd.NewFleet([]int{3}, hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jsonl := hbmrd.NewJSONLSink(&buf)
	recs, err := hbmrd.RunBERContext(context.Background(), fleet, hbmrd.BERConfig{
		Channels: []int{0, 1},
		Rows:     hbmrd.SampleRows(3),
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
		Reps:     1,
	}, hbmrd.WithJobs(2), hbmrd.WithSink(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	// The stream opens with the sweep's fingerprint header line.
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty stream")
	}
	var header hbmrd.SweepHeader
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Format == 0 {
		t.Fatalf("first line is not a sweep header: %s (err %v)", sc.Bytes(), err)
	}
	if header.Kind != string(hbmrd.KindBER) || header.Fingerprint == "" || header.Cells != 2*3 {
		t.Fatalf("header = %+v", header)
	}
	lines := 0
	for sc.Scan() {
		var rec hbmrd.BERRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if !reflect.DeepEqual(rec, recs[lines]) {
			t.Fatalf("line %d diverges from returned record", lines)
		}
		if !rec.WCDP && rec.Pattern != hbmrd.Checkered0 {
			t.Fatalf("line %d: pattern %v did not round-trip", lines, rec.Pattern)
		}
		lines++
	}
	if lines != len(recs) {
		t.Fatalf("streamed %d lines, returned %d records", lines, len(recs))
	}
}

func TestFacadeMemBenderProgram(t *testing.T) {
	prog, err := hbmrd.ParseProgram(strings.NewReader(`
FILLROW 0 0 100 0x55
READROW 0 0 100
`))
	if err != nil {
		t.Fatal(err)
	}
	chip, err := hbmrd.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbmrd.NewPlatform(chip).Run(0, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 || !bytes.Equal(res.Reads[0].Data[:4], []byte{0x55, 0x55, 0x55, 0x55}) {
		t.Error("program read-back wrong")
	}
}

func TestFacadeThermal(t *testing.T) {
	names, traces, err := hbmrd.SimulateTemperatures(600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 || len(traces) != 6 {
		t.Fatalf("%d traces", len(traces))
	}
	out := hbmrd.RenderFig3(names, traces)
	if !strings.Contains(out, "Chip 0") {
		t.Error("fig3 render malformed")
	}
}

func TestFacadeUncoverTRR(t *testing.T) {
	if testing.Short() {
		t.Skip("side-channel probing takes a few seconds")
	}
	chip, err := hbmrd.NewChip(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := hbmrd.UncoverTRR(chip)
	if err != nil {
		t.Fatal(err)
	}
	if f.Period != 17 || f.IdentifyThreshold != 5 {
		t.Errorf("findings %+v diverge from the paper's mechanism", f)
	}
}

// TestFacadeGeometryPresets runs the HCfirst experiment across every
// geometry preset through the public API: at least three organizations are
// selectable and every one of them yields measurable read disturbance.
func TestFacadeGeometryPresets(t *testing.T) {
	presets := hbmrd.Presets()
	if len(presets) < 3 {
		t.Fatalf("%d presets, want at least 3", len(presets))
	}
	for _, want := range []string{hbmrd.PresetHBM2, hbmrd.PresetHBM2E, hbmrd.PresetHBM3} {
		if _, err := hbmrd.LookupPreset(want); err != nil {
			t.Fatalf("preset %s missing: %v", want, err)
		}
	}
	for _, preset := range presets {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			fleet, err := hbmrd.NewFleet([]int{0}, hbmrd.WithGeometry(preset))
			if err != nil {
				t.Fatal(err)
			}
			g := fleet[0].Chip.Geometry()
			if g.Name != preset.Name {
				t.Fatalf("chip geometry %q, want %q", g.Name, preset.Name)
			}
			recs, err := hbmrd.RunHCFirst(fleet, hbmrd.HCFirstConfig{
				Channels: []int{g.Channels - 1},
				Rows:     hbmrd.SampleRowsIn(g, 2),
				Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
				Reps:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			found := 0
			for _, r := range recs {
				if r.Found && !r.WCDP {
					found++
					if r.HCFirst <= 0 {
						t.Errorf("row %d: non-positive HCfirst %d", r.Row, r.HCFirst)
					}
				}
			}
			if found == 0 {
				t.Errorf("%s: no row flipped within the search bound", preset.Name)
			}
		})
	}
}

// TestFacadeDefaultGeometryConstantsAgree pins the re-exported constants to
// the default geometry.
func TestFacadeDefaultGeometryConstantsAgree(t *testing.T) {
	g := hbmrd.DefaultGeometry()
	if g.Channels != hbmrd.NumChannels || g.PseudoChannels != hbmrd.NumPseudoChannels ||
		g.Banks != hbmrd.NumBanks || g.Rows != hbmrd.NumRows ||
		g.RowBytes != hbmrd.RowBytes || g.RowBits() != hbmrd.RowBits {
		t.Errorf("DefaultGeometry %+v disagrees with package constants", g)
	}
}
