package disturb

import (
	"math"
	"sync"
)

// This file implements the model's per-row state cache: the derived
// calibration parameters plus the materialized per-cell randomness
// (per-cell hash draws, orientation bitmask, word-cluster factors) that
// FlipMask and calibration previously both recomputed from scratch on
// every call. The cache is sharded by bank so concurrent sweep workers on
// different channels never contend on one lock, and the bulky per-cell
// arrays sit behind a per-model byte budget with LRU eviction (the tiny
// per-row calibration stays cached forever, exactly like the old
// map[RowLoc]rowCalib).
//
// Determinism contract: the per-cell hash stream (splitmix64 of
// rowSeed + cellIndex*cellStride, plus the documented salts) is the spec.
// Cached values are pure functions of that stream, so materializing them
// once — or evicting and rebuilding them — can never change a flip mask.

const (
	// cacheShards is the number of independent lock domains. Shards are
	// selected by (channel, pseudo, bank), so all rows of one bank share a
	// shard while different banks — and in particular different channels,
	// the sweep engine's unit of parallelism — almost always use different
	// locks.
	cacheShards = 64

	// defaultCellCacheBytes bounds the materialized per-cell arrays per
	// model. At the paper's 1 KiB rows one row costs ~68 KiB (8 B/cell of
	// hash draws plus four per-word arrays), so the default keeps ~960
	// rows' cell state live; evicted rows rebuild deterministically on
	// next touch.
	defaultCellCacheBytes = 64 << 20

	// cacheMinRowsPerShard keeps eviction from thrashing the active
	// working set (a double-sided hammer touches a victim and four
	// neighbours) even under an adversarially small budget.
	cacheMinRowsPerShard = 8
)

// cellArrays is the materialized per-cell randomness of one row. All
// fields are immutable once built (builds happen under the shard lock;
// readers that observed the build under the same lock may use the arrays
// lock-free afterwards).
type cellArrays struct {
	// h holds the per-cell splitmix64 draw h(idx) the model derives every
	// per-cell quantity from: the threshold uniform u = (h>>11 + 0.5)/2^53,
	// the orientation bit h&0x7FF, and the retention uniform
	// unit(splitmix64(h ^ saltRetention)).
	h []uint64
	// wf is the per-64-bit-word cluster factor (mean-one log-normal).
	wf []float64
	// maxWF is max(wf), used for the conservative word-skip ceiling.
	maxWF float64
	// wordMinU is the minimum threshold uniform of each word: a whole word
	// provably produces no hammer flips when its minimum u is at or above
	// the call's effective-probability ceiling.
	wordMinU []float64
	// orient is the orientation bitmask (bit set = true cell, stores
	// charge for logical 1). Built lazily because the true-cell fraction
	// comes from the row's calibration; it never depends on temperature or
	// age, so it survives calibration invalidation.
	orient   []uint64
	orientOK bool
	// retMinU is the per-word minimum retention uniform, built lazily on
	// the first retention-active evaluation of the row.
	retMinU []float64
	retOK   bool
	// bytes is the cache charge for this row (all arrays, including the
	// lazily built ones, so eviction accounting never moves).
	bytes int64
}

// rowEntry is the cached state of one row. The entry itself (seed, trial
// sigma, weakest-cell quantile, calibration) is small and lives forever;
// only the cellArrays behind it are subject to the LRU byte budget.
type rowEntry struct {
	loc        RowLoc
	rowSeed    uint64
	trialSigma float64

	// minU is the row's realized minimum threshold uniform, the anchor of
	// the calibration curve. It is derived during the first cell build and
	// kept after eviction so re-calibration (e.g. a temperature sweep)
	// never pays the full-row scan again.
	minU     float64
	haveMinU bool

	calib rowCalib
	// calibGen is model.gen+1 when calib is valid for the model's current
	// temperature/age generation; 0 means never computed.
	calibGen uint64

	cells      *cellArrays
	prev, next *rowEntry // LRU links, meaningful only while cells != nil
}

// calibShard is one lock domain of the row cache.
type calibShard struct {
	mu   sync.Mutex
	rows map[RowLoc]*rowEntry

	// Intrusive LRU over entries with live cell arrays, most recent first.
	lruHead, lruTail *rowEntry
	liveBytes        int64
	liveCount        int
}

func (s *calibShard) lruUnlink(e *rowEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *calibShard) lruPushFront(e *rowEntry) {
	e.prev, e.next = nil, s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *calibShard) lruTouch(e *rowEntry) {
	if s.lruHead == e {
		return
	}
	s.lruUnlink(e)
	s.lruPushFront(e)
}

// evictShardLocked drops the shard's least-recently-used cell arrays
// until it fits its budget share (but never below the working-set
// floor). The byte budget is divided among the shards that have ever
// held live arrays — not statically by shard count — so a sweep
// concentrated on one bank can use the entire budget while an all-bank
// sweep splits it evenly. A shard never returns to inactive (the floor
// keeps its hottest rows resident), so the share only shrinks as the
// workload touches more banks. Evicted rows keep their calibration and
// minU; the arrays rebuild deterministically.
func (m *Model) evictShardLocked(s *calibShard) {
	active := m.activeShards.Load()
	if active < 1 {
		active = 1
	}
	budget := m.cacheBudget / active
	for s.liveBytes > budget && s.liveCount > cacheMinRowsPerShard && s.lruTail != nil {
		e := s.lruTail
		s.lruUnlink(e)
		s.liveBytes -= e.cells.bytes
		s.liveCount--
		e.cells = nil
	}
}

// shardOf selects the lock domain for a row's bank.
func (m *Model) shardOf(loc RowLoc) *calibShard {
	h := splitmix64(uint64(loc.Channel)<<40 ^ uint64(loc.Pseudo)<<32 ^ uint64(loc.Bank))
	return &m.shards[h&(cacheShards-1)]
}

// lockEntry returns the row's cache entry with its shard lock held,
// creating the entry (seed + trial-jitter spread, both cheap) on first
// touch. The caller must unlock the returned shard.
func (m *Model) lockEntry(loc RowLoc) (*calibShard, *rowEntry) {
	s := m.shardOf(loc)
	s.mu.Lock()
	e := s.rows[loc]
	if e == nil {
		rowSeed := hashN(m.prof.Seed, saltRow, uint64(loc.Channel), uint64(loc.Pseudo), uint64(loc.Bank), uint64(loc.Row))
		sigma := trialTightSigma
		if u := unit(mix(rowSeed, saltTrial)); u >= 0.9 {
			sigma = trialLooseBase + (u-0.9)/0.1*trialLooseSpan
		}
		e = &rowEntry{loc: loc, rowSeed: rowSeed, trialSigma: sigma}
		s.rows[loc] = e
	}
	return s, e
}

// ensureCellsLocked materializes (or LRU-refreshes) the row's cell
// arrays: one pass over the per-cell hash stream filling h, the per-word
// minima, and the word-cluster factors. Also derives the row's minU
// anchor the first time.
func (m *Model) ensureCellsLocked(s *calibShard, e *rowEntry) *cellArrays {
	if e.cells != nil {
		s.lruTouch(e)
		return e.cells
	}
	words := (m.rowBits + 63) / 64
	ca := &cellArrays{
		h:        make([]uint64, m.rowBits),
		wf:       make([]float64, words),
		wordMinU: make([]float64, words),
		bytes:    int64(m.rowBits)*8 + int64(words)*8*4,
	}
	for w := range ca.wordMinU {
		ca.wordMinU[w] = 1
	}
	minU := 1.0
	for idx := 0; idx < m.rowBits; idx++ {
		h := splitmix64(e.rowSeed + uint64(idx)*cellStride)
		ca.h[idx] = h
		u := (float64(h>>11) + 0.5) / (1 << 53)
		if u < ca.wordMinU[idx>>6] {
			ca.wordMinU[idx>>6] = u
		}
		if u < minU {
			minU = u
		}
	}
	for w := 0; w < words; w++ {
		wf := math.Exp(wordClusterSigma*normal(hashN(e.rowSeed, saltWord, uint64(w))) - wordClusterSigma*wordClusterSigma/2)
		ca.wf[w] = wf
		if wf > ca.maxWF {
			ca.maxWF = wf
		}
	}
	if !e.haveMinU {
		e.minU, e.haveMinU = minU, true
	}
	e.cells = ca
	s.lruPushFront(e)
	s.liveBytes += ca.bytes
	if s.liveCount++; s.liveCount == 1 {
		m.activeShards.Add(1)
	}
	m.evictShardLocked(s)
	return ca
}

// ensureCalibLocked returns the row's calibration for the model's current
// temperature/age generation, recomputing it from the cached minU anchor
// when stale. The full-row scan is only ever paid once per row (inside
// ensureCellsLocked), no matter how often temperature or age changes.
func (m *Model) ensureCalibLocked(s *calibShard, e *rowEntry) rowCalib {
	if e.calibGen == m.gen+1 {
		return e.calib
	}
	if !e.haveMinU {
		m.ensureCellsLocked(s, e)
	}
	e.calib = m.computeCalib(e.loc, e.rowSeed, e.minU)
	e.calibGen = m.gen + 1
	return e.calib
}

// ensureOrientLocked builds the orientation bitmask from the cached hash
// draws. The true-cell cut depends only on the chip seed and the row's
// die (never on temperature or age), so the mask is built at most once
// per cellArrays.
func ensureOrientLocked(ca *cellArrays, rc rowCalib) {
	if ca.orientOK {
		return
	}
	cut := uint64(rc.pTrue * (1 << 11))
	orient := make([]uint64, len(ca.wordMinU))
	for idx, h := range ca.h {
		if h&0x7FF < cut {
			orient[idx>>6] |= 1 << (uint(idx) & 63)
		}
	}
	ca.orient = orient
	ca.orientOK = true
}

// ensureRetMinsLocked builds the per-word minimum retention uniforms,
// letting retention-active evaluations skip whole words the same way the
// hammer path does.
func ensureRetMinsLocked(ca *cellArrays) {
	if ca.retOK {
		return
	}
	rm := make([]float64, len(ca.wordMinU))
	for w := range rm {
		rm[w] = 1
	}
	for idx, h := range ca.h {
		if u := unit(splitmix64(h ^ saltRetention)); u < rm[idx>>6] {
			rm[idx>>6] = u
		}
	}
	ca.retMinU = rm
	ca.retOK = true
}

// prepareRow returns everything FlipMask's fast path needs in one trip
// through the shard lock: a current calibration and the row's immutable
// cell arrays (with orientation, and retention minima when needed).
func (m *Model) prepareRow(loc RowLoc, needRet bool) (rowCalib, *cellArrays) {
	s, e := m.lockEntry(loc)
	ca := m.ensureCellsLocked(s, e)
	rc := m.ensureCalibLocked(s, e)
	ensureOrientLocked(ca, rc)
	if needRet {
		ensureRetMinsLocked(ca)
	}
	s.mu.Unlock()
	return rc, ca
}

// SetCellCacheBytes bounds the memory the model spends on materialized
// per-cell state (default 64 MiB). The bound is approximate (the budget
// is shared among the shards currently holding live arrays, each with a
// small working-set floor); rows beyond it are evicted LRU and rebuilt
// deterministically on next touch, so the setting trades memory for
// rebuild time and can never change results. Not safe concurrently with
// evaluation.
func (m *Model) SetCellCacheBytes(n int64) {
	if n < 0 {
		n = 0
	}
	m.cacheBudget = n
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if s.liveCount > 0 {
			m.evictShardLocked(s)
		}
		s.mu.Unlock()
	}
}
