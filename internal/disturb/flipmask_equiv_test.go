package disturb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// These tests enforce the determinism contract stated in the package doc:
// the per-cell hash stream is the spec, evaluation order is not. The
// word-level fast path in FlipMask must produce byte-identical masks (and
// identical new-flip counts) to the scalar reference for every
// combination of images, doses and retention times — including after
// cache eviction, temperature changes, and under concurrency.

// prng is a tiny deterministic byte stream for building test images.
type prng struct{ s uint64 }

func (p *prng) next() uint64 { p.s = splitmix64(p.s + 0x9E3779B97F4A7C15); return p.s }

func (p *prng) fill(buf []byte) {
	for i := range buf {
		buf[i] = byte(p.next())
	}
}

func equivImages(kind string, r *prng) []byte {
	buf := make([]byte, RowBytes)
	switch kind {
	case "nil":
		return nil
	case "zero":
	case "ones":
		for i := range buf {
			buf[i] = 0xFF
		}
	case "checkered":
		for i := range buf {
			buf[i] = 0x55
		}
	case "random":
		r.fill(buf)
	}
	return buf
}

func TestFlipMaskMatchesScalar(t *testing.T) {
	r := &prng{s: 0xC0FFEE}
	doses := []Dose{
		{},
		{Above: 900},
		{Below: 1200},
		{Above: 8_000, Below: 8_000},
		{Above: 16_000, Below: 48_000},
		{Above: 256 * 1024, Below: 256 * 1024},
		{Above: 3e6, Below: 1e5},
		{Above: 1e12, Below: 1e12},
	}
	rets := []float64{0, 0.010, 0.031, 0.5, 30, 600}
	for _, chip := range []int{0, 5} {
		p, err := BuiltinProfile(chip)
		if err != nil {
			t.Fatal(err)
		}
		mFast, err := NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
		mRef, err := NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
		caseIdx := 0
		for _, victimKind := range []string{"checkered", "zero", "ones", "random"} {
			for _, aggrKind := range []string{"nil", "checkered", "random"} {
				victim := equivImages(victimKind, r)
				above := equivImages(aggrKind, r)
				below := equivImages(aggrKind, r)
				for _, dose := range doses {
					for _, ret := range rets {
						caseIdx++
						loc := RowLoc{
							Channel: caseIdx % 8, Pseudo: caseIdx % 2,
							Bank: caseIdx % 16, Row: (caseIdx * 977) % RowsPerBank,
						}
						pre := make([]byte, RowBytes)
						if caseIdx%3 == 0 {
							r.fill(pre) // exercise the OR-into-dst semantics
						}
						dstFast := append([]byte(nil), pre...)
						dstRef := append([]byte(nil), pre...)
						nFast, err := mFast.FlipMask(loc, victim, above, below, dose, ret, dstFast)
						if err != nil {
							t.Fatal(err)
						}
						nRef, err := mRef.flipMaskScalar(mRef.calibRow(loc), victim, above, below, dose, ret, dstRef)
						if err != nil {
							t.Fatal(err)
						}
						if nFast != nRef || !bytes.Equal(dstFast, dstRef) {
							t.Fatalf("chip %d loc %+v victim=%s aggr=%s dose=%+v ret=%v: fast (%d flips) != scalar (%d flips)",
								chip, loc, victimKind, aggrKind, dose, ret, nFast, nRef)
						}
					}
				}
			}
		}
	}
}

// TestFlipMaskMatchesScalarAcrossTempAndAge checks that generation-based
// calibration invalidation (instead of the old full map reset) yields the
// same masks as a freshly built model at the new operating point.
func TestFlipMaskMatchesScalarAcrossTempAndAge(t *testing.T) {
	p, err := BuiltinProfile(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	victim := fillRow(0x55)
	aggr := fillRow(0xAA)
	loc := RowLoc{Channel: 1, Pseudo: 1, Bank: 3, Row: 700}
	dose := Dose{Above: 200_000, Below: 200_000}

	// Touch the row at the initial operating point so the cached
	// calibration is demonstrably stale afterwards.
	warm := make([]byte, RowBytes)
	if _, err := m.FlipMask(loc, victim, aggr, aggr, dose, 0, warm); err != nil {
		t.Fatal(err)
	}

	mutations := []func(*Model){
		func(mm *Model) { mm.SetTempC(85) },
		func(mm *Model) { mm.SetAgeMonths(mm.Profile().AgeMonthsAtStart + 9) },
		func(mm *Model) { mm.SetTempC(p.OperatingTempC) },
	}
	for i, mutate := range mutations {
		mutate(m)
		// The fresh model replays every mutation so far: it must land at
		// the same operating point without ever having cached stale state.
		fresh, err := NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, mm := range mutations[:i+1] {
			mm(fresh)
		}
		dstM := make([]byte, RowBytes)
		dstF := make([]byte, RowBytes)
		nM, err := m.FlipMask(loc, victim, aggr, aggr, dose, 40, dstM)
		if err != nil {
			t.Fatal(err)
		}
		nF, err := fresh.flipMaskScalar(fresh.calibRow(loc), victim, aggr, aggr, dose, 40, dstF)
		if err != nil {
			t.Fatal(err)
		}
		if nM != nF || !bytes.Equal(dstM, dstF) {
			t.Fatalf("step %d: cached model (%d flips) != fresh model (%d flips)", i, nM, nF)
		}
	}
}

// TestFlipMaskEvictionIsInvisible shrinks the cell cache far below the
// touched working set and checks masks stay identical to an uncapped
// model: eviction may cost rebuild time, never correctness.
func TestFlipMaskEvictionIsInvisible(t *testing.T) {
	p, err := BuiltinProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	capped.SetCellCacheBytes(0) // floor of cacheMinRowsPerShard rows per shard
	free, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	victim := fillRow(0xAA)
	aggr := fillRow(0x55)
	dose := Dose{Above: 220_000, Below: 220_000}
	// Two interleaved passes over many rows of one bank (same shard) so
	// the capped model must evict and rebuild.
	for pass := 0; pass < 2; pass++ {
		for row := 100; row < 100+40; row++ {
			loc := RowLoc{Channel: 2, Pseudo: 0, Bank: 4, Row: row * 13}
			a := make([]byte, RowBytes)
			b := make([]byte, RowBytes)
			nA, err := capped.FlipMask(loc, victim, aggr, aggr, dose, 0, a)
			if err != nil {
				t.Fatal(err)
			}
			nB, err := free.FlipMask(loc, victim, aggr, aggr, dose, 0, b)
			if err != nil {
				t.Fatal(err)
			}
			if nA != nB || !bytes.Equal(a, b) {
				t.Fatalf("pass %d row %d: capped model diverged from uncapped (%d vs %d flips)", pass, loc.Row, nA, nB)
			}
		}
	}
	// The budget floor must actually bound live arrays.
	for i := range capped.shards {
		s := &capped.shards[i]
		s.mu.Lock()
		if s.liveCount > cacheMinRowsPerShard {
			t.Errorf("shard %d holds %d live rows, want <= %d", i, s.liveCount, cacheMinRowsPerShard)
		}
		s.mu.Unlock()
	}
}

// TestFlipMaskConcurrent drives FlipMask and TrialJitter from many
// goroutines over overlapping rows (same bank = same shard, plus spread
// banks) and checks every result against a serial reference. Run with
// -race in CI.
func TestFlipMaskConcurrent(t *testing.T) {
	p, err := BuiltinProfile(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	victim := fillRow(0x55)
	aggr := fillRow(0xAA)
	dose := Dose{Above: 180_000, Below: 180_000}

	type job struct {
		loc  RowLoc
		want []byte
	}
	var jobs []job
	for i := 0; i < 48; i++ {
		loc := RowLoc{Channel: i % 4, Pseudo: 0, Bank: i % 3, Row: 500 + (i%12)*7}
		want := make([]byte, RowBytes)
		if _, err := ref.FlipMask(loc, victim, aggr, aggr, dose, 50, want); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{loc, want})
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*2)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, j := range jobs {
				got := make([]byte, RowBytes)
				if _, err := m.FlipMask(j.loc, victim, aggr, aggr, dose, 50, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, j.want) {
					errs <- fmt.Errorf("worker %d job %d: concurrent mask differs from serial reference", w, i)
					return
				}
				m.TrialJitter(j.loc, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFlipMaskScalarFallbackLengths covers the non-word-aligned entry
// conditions (short rows, short neighbour images) that route through the
// scalar path.
func TestFlipMaskScalarFallbackLengths(t *testing.T) {
	m := newTestModel(t, 0)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 42}
	for _, n := range []int{0, 5, 64, 1000} {
		victim := make([]byte, n)
		for i := range victim {
			victim[i] = 0x55
		}
		dst := make([]byte, n)
		if _, err := m.FlipMask(loc, victim, nil, nil, Dose{Above: 1e5, Below: 1e5}, 0, dst); err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
	}
	// Short neighbour image: must not panic, must match a scalar run.
	victim := fillRow(0x55)
	short := make([]byte, 100)
	for i := range short {
		short[i] = 0xAA
	}
	dFast := make([]byte, RowBytes)
	dRef := make([]byte, RowBytes)
	if _, err := m.FlipMask(loc, victim, short, nil, Dose{Above: 2e5, Below: 2e5}, 0, dFast); err != nil {
		t.Fatal(err)
	}
	ref := newTestModel(t, 0)
	if _, err := ref.flipMaskScalar(ref.calibRow(loc), victim, short, nil, Dose{Above: 2e5, Below: 2e5}, 0, dRef); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dFast, dRef) {
		t.Fatal("short-neighbour call diverged from scalar reference")
	}
}
