package disturb

import (
	"math"
	"testing"

	"hbmrd/internal/stats"
)

func newTestModel(t *testing.T, chip int) *Model {
	t.Helper()
	p, err := BuiltinProfile(chip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fillRow(b byte) []byte {
	buf := make([]byte, RowBytes)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// flipCount evaluates the model for a symmetric double-sided dose with the
// given victim/aggressor fill bytes and returns the number of flipped bits.
func flipCount(t *testing.T, m *Model, loc RowLoc, victimByte, aggrByte byte, dose float64) int {
	t.Helper()
	victim := fillRow(victimByte)
	aggr := fillRow(aggrByte)
	dst := make([]byte, RowBytes)
	n, err := m.FlipMask(loc, victim, aggr, aggr, Dose{Above: dose, Below: dose}, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// hcForFlips binary-searches the smallest symmetric per-side dose that
// produces at least k bitflips.
func hcForFlips(t *testing.T, m *Model, loc RowLoc, victimByte, aggrByte byte, k int) float64 {
	t.Helper()
	lo, hi := 1.0, 4e6
	if flipCount(t, m, loc, victimByte, aggrByte, hi) < k {
		return math.Inf(1)
	}
	for hi/lo > 1.001 {
		mid := math.Sqrt(lo * hi)
		if flipCount(t, m, loc, victimByte, aggrByte, mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

func TestFlipMaskDeterministic(t *testing.T) {
	m := newTestModel(t, 0)
	loc := RowLoc{Channel: 3, Pseudo: 1, Bank: 5, Row: 4000}
	a := flipCount(t, m, loc, 0x55, 0xAA, 200_000)
	b := flipCount(t, m, loc, 0x55, 0xAA, 200_000)
	if a != b {
		t.Errorf("flip count not deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("expected bitflips at a 200K double-sided dose")
	}
}

func TestFlipMaskDoseMonotone(t *testing.T) {
	m := newTestModel(t, 2)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 1234}
	prev := 0
	for _, dose := range []float64{1e3, 1e4, 5e4, 1e5, 2e5, 1e6, 1e7} {
		n := flipCount(t, m, loc, 0x55, 0xAA, dose)
		if n < prev {
			t.Errorf("flip count decreased with dose: %d -> %d at %v", prev, n, dose)
		}
		prev = n
	}
}

func TestFlipMaskSubsetMonotone(t *testing.T) {
	m := newTestModel(t, 1)
	loc := RowLoc{Channel: 4, Pseudo: 0, Bank: 7, Row: 900}
	victim := fillRow(0xAA)
	aggr := fillRow(0x55)
	small := make([]byte, RowBytes)
	large := make([]byte, RowBytes)
	if _, err := m.FlipMask(loc, victim, aggr, aggr, Dose{Above: 8e4, Below: 8e4}, 0, small); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FlipMask(loc, victim, aggr, aggr, Dose{Above: 3e5, Below: 3e5}, 0, large); err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if small[i]&^large[i] != 0 {
			t.Fatalf("byte %d: cell flipped at small dose but not at large dose", i)
		}
	}
}

func TestFlipMaskZeroDoseNoFlips(t *testing.T) {
	m := newTestModel(t, 0)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 0}
	dst := make([]byte, RowBytes)
	n, err := m.FlipMask(loc, fillRow(0x55), nil, nil, Dose{}, 0, dst)
	if err != nil || n != 0 {
		t.Errorf("zero dose produced %d flips, err=%v", n, err)
	}
}

func TestFlipMaskLengthMismatch(t *testing.T) {
	m := newTestModel(t, 0)
	loc := RowLoc{}
	_, err := m.FlipMask(loc, fillRow(0x55), nil, nil, Dose{Above: 1e5}, 0, make([]byte, 8))
	if err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFlipDirectionsDisjointByStoredValue(t *testing.T) {
	// A cell can only flip away from its charged state, so the flip sets of
	// an all-0 and an all-1 victim must be disjoint.
	m := newTestModel(t, 3)
	loc := RowLoc{Channel: 2, Pseudo: 1, Bank: 3, Row: 2500}
	mask0 := make([]byte, RowBytes)
	mask1 := make([]byte, RowBytes)
	if _, err := m.FlipMask(loc, fillRow(0x00), fillRow(0xFF), fillRow(0xFF), Dose{Above: 3e5, Below: 3e5}, 0, mask0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FlipMask(loc, fillRow(0xFF), fillRow(0x00), fillRow(0x00), Dose{Above: 3e5, Below: 3e5}, 0, mask1); err != nil {
		t.Fatal(err)
	}
	for i := range mask0 {
		if mask0[i]&mask1[i] != 0 {
			t.Fatalf("byte %d: cell flipped for both stored polarities", i)
		}
	}
}

func TestBERCalibrationBallpark(t *testing.T) {
	// Measured mean BER at the reference 256K hammer count, checkered data,
	// across a spread of rows should land in the chip's calibrated
	// neighbourhood (the paper's chip means are 0.66%..1.28%).
	for chip := 0; chip < 6; chip++ {
		m := newTestModel(t, chip)
		var bers []float64
		for row := 100; row < RowsPerBank; row += 997 {
			n := flipCount(t, m, RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: row}, 0x55, 0xAA, refHammer)
			bers = append(bers, float64(n)/RowBits*100)
		}
		mean := stats.Mean(bers)
		if mean < 0.25 || mean > 3.0 {
			t.Errorf("%s: mean checkered BER %.3f%% far from calibration", m.Profile().Name, mean)
		}
		if mx := stats.Max(bers); mx > 6.5 {
			t.Errorf("%s: max BER %.3f%% exceeds paper-scale maximum (~3.02%%)", m.Profile().Name, mx)
		}
	}
}

func TestResilientSubarraysLowerBER(t *testing.T) {
	m := newTestModel(t, 0)
	berAt := func(row int) float64 {
		n := flipCount(t, m, RowLoc{Channel: 1, Pseudo: 0, Bank: 2, Row: row}, 0x55, 0xAA, refHammer)
		return float64(n) / RowBits
	}
	var normal, resilient float64
	for i := 0; i < 16; i++ {
		normal += berAt(SubarrayStart(6) + 300 + i)
		resilient += berAt(SubarrayStart(20) + 300 + i)
	}
	if resilient >= normal*0.75 {
		t.Errorf("last subarray BER (%v) not clearly below regular subarray BER (%v)", resilient, normal)
	}
}

func TestHCFirstFloorBallpark(t *testing.T) {
	// The minimum HCfirst across sampled rows should sit near the chip's
	// calibrated floor (paper: 14531..18087 depending on chip).
	for _, chip := range []int{0, 5} {
		m := newTestModel(t, chip)
		p := m.Profile()
		minHC := math.Inf(1)
		for row := 50; row < RowsPerBank; row += 397 {
			for ch := 0; ch < 8; ch += 3 {
				hc := hcForFlips(t, m, RowLoc{Channel: ch, Pseudo: 0, Bank: 0, Row: row}, 0x55, 0xAA, 1)
				if hc < minHC {
					minHC = hc
				}
			}
		}
		if minHC < p.HCFloor*0.45 || minHC > p.HCFloor*2.5 {
			t.Errorf("%s: min HCfirst %v too far from floor %v", p.Name, minHC, p.HCFloor)
		}
	}
}

func TestHC10thOverHC1stRange(t *testing.T) {
	// Paper Obsv 14: HC10th/HC1st between ~1.15x and ~5.22x, mean < 2.
	m := newTestModel(t, 2)
	var ratios []float64
	for row := 200; row < 3000; row += 137 {
		loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: row}
		hc1 := hcForFlips(t, m, loc, 0x55, 0xAA, 1)
		hc10 := hcForFlips(t, m, loc, 0x55, 0xAA, 10)
		if math.IsInf(hc1, 1) || math.IsInf(hc10, 1) {
			continue
		}
		ratios = append(ratios, hc10/hc1)
	}
	if len(ratios) < 10 {
		t.Fatalf("too few measurable rows: %d", len(ratios))
	}
	mean := stats.Mean(ratios)
	if mean < 1.2 || mean > 2.6 {
		t.Errorf("mean HC10/HC1 = %v, want roughly 1.7 (paper: <2)", mean)
	}
	if stats.Max(ratios) > 7 {
		t.Errorf("max HC10/HC1 = %v, paper's max is ~5.22", stats.Max(ratios))
	}
	if stats.Min(ratios) < 1.0 {
		t.Errorf("HC10/HC1 below 1 is impossible: %v", stats.Min(ratios))
	}
}

func TestAdditionalHammersNegativelyCorrelated(t *testing.T) {
	// Paper Fig 12: additional hammers to the 10th bitflip fall with
	// HCfirst (Pearson -0.34..-0.45).
	m := newTestModel(t, 1)
	var hc1s, extras []float64
	for row := 100; row < 6000; row += 61 {
		loc := RowLoc{Channel: 3, Pseudo: 0, Bank: 1, Row: row}
		hc1 := hcForFlips(t, m, loc, 0x55, 0xAA, 1)
		hc10 := hcForFlips(t, m, loc, 0x55, 0xAA, 10)
		if math.IsInf(hc10, 1) {
			continue
		}
		hc1s = append(hc1s, hc1)
		extras = append(extras, hc10-hc1)
	}
	r, err := stats.Pearson(hc1s, extras)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.10 || r < -0.75 {
		t.Errorf("Pearson(HCfirst, additional-to-10th) = %v, want moderately negative (paper: -0.34..-0.45)", r)
	}
}

func TestCheckeredStrongerThanRowstripeOnAverage(t *testing.T) {
	// Paper Obsv 2: checkered patterns beat rowstripe patterns on mean BER
	// (0.76% vs 0.67%).
	m := newTestModel(t, 4)
	var ck, rs float64
	rows := 0
	for row := 64; row < RowsPerBank; row += 499 {
		loc := RowLoc{Channel: 2, Pseudo: 0, Bank: 0, Row: row}
		ck += float64(flipCount(t, m, loc, 0x55, 0xAA, refHammer))
		ck += float64(flipCount(t, m, loc, 0xAA, 0x55, refHammer))
		rs += float64(flipCount(t, m, loc, 0x00, 0xFF, refHammer))
		rs += float64(flipCount(t, m, loc, 0xFF, 0x00, refHammer))
		rows++
	}
	if ck <= rs {
		t.Errorf("checkered total flips %v not above rowstripe %v over %d rows", ck, rs, rows)
	}
	if ck > rs*1.6 {
		t.Errorf("checkered/rowstripe ratio %v too large (paper ~1.13)", ck/rs)
	}
}

func TestNoPatternUniversallyWins(t *testing.T) {
	// Paper Obsv 9: testing multiple patterns is necessary; no single
	// pattern always yields the smallest HCfirst.
	m := newTestModel(t, 0)
	checkWins, stripeWins := 0, 0
	for row := 128; row < 4000; row += 173 {
		loc := RowLoc{Channel: 5, Pseudo: 1, Bank: 9, Row: row}
		hcCk := hcForFlips(t, m, loc, 0x55, 0xAA, 1)
		hcRs := hcForFlips(t, m, loc, 0x00, 0xFF, 1)
		if math.IsInf(hcCk, 1) || math.IsInf(hcRs, 1) {
			continue
		}
		if hcCk < hcRs {
			checkWins++
		} else {
			stripeWins++
		}
	}
	if checkWins == 0 || stripeWins == 0 {
		t.Errorf("one pattern universally wins (checkered %d, rowstripe %d)", checkWins, stripeWins)
	}
}

func TestRetentionFlips(t *testing.T) {
	m := newTestModel(t, 0) // 82C chip: weakest retention
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 77}
	dst := make([]byte, RowBytes)
	n, err := m.FlipMask(loc, fillRow(0x55), nil, nil, Dose{}, 0.010, dst)
	if err != nil || n != 0 {
		t.Errorf("10 ms retention produced %d flips, err=%v (guaranteed window)", n, err)
	}
	// Very long unrefreshed intervals must produce retention failures.
	total := 0
	for row := 0; row < 512; row++ {
		dst := make([]byte, RowBytes)
		n, err := m.FlipMask(RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: row}, fillRow(0x55), nil, nil, Dose{}, 600, dst)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		t.Error("no retention failures after 600 s unrefreshed at 82C")
	}
}

func TestRetentionWorsensWithTemperature(t *testing.T) {
	m := newTestModel(t, 2)
	count := func(temp float64) int {
		m.SetTempC(temp)
		total := 0
		for row := 0; row < 256; row++ {
			dst := make([]byte, RowBytes)
			n, err := m.FlipMask(RowLoc{Channel: 1, Pseudo: 0, Bank: 0, Row: row}, fillRow(0xAA), nil, nil, Dose{}, 120, dst)
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		return total
	}
	cold := count(40)
	hot := count(90)
	if hot <= cold {
		t.Errorf("retention failures at 90C (%d) not above 40C (%d)", hot, cold)
	}
}

func TestAgingDriftsBERBothWays(t *testing.T) {
	// Paper Obsv 13: after 7 months, slightly more rows increase in BER
	// than decrease.
	m := newTestModel(t, 4)
	type pair struct{ old, new int }
	var up, down int
	for row := 32; row < RowsPerBank; row += 401 {
		loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: row}
		m.SetAgeMonths(m.Profile().AgeMonthsAtStart)
		oldN := flipCount(t, m, loc, 0xAA, 0x55, refHammer)
		m.SetAgeMonths(m.Profile().AgeMonthsAtStart + 7)
		newN := flipCount(t, m, loc, 0xAA, 0x55, refHammer)
		if newN > oldN {
			up++
		} else if newN < oldN {
			down++
		}
	}
	m.SetAgeMonths(m.Profile().AgeMonthsAtStart)
	if up == 0 || down == 0 {
		t.Errorf("aging should move BER both ways (up=%d down=%d)", up, down)
	}
	if up <= down {
		t.Errorf("aging should skew toward higher BER (up=%d down=%d)", up, down)
	}
}

func TestTrialJitterDistribution(t *testing.T) {
	m := newTestModel(t, 0)
	tight := 0
	rows := 0
	for row := 0; row < 4000; row += 13 {
		loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: row}
		lo, hi := math.Inf(1), math.Inf(-1)
		for epoch := uint64(0); epoch < 50; epoch++ {
			j := m.TrialJitter(loc, epoch)
			lo = math.Min(lo, j)
			hi = math.Max(hi, j)
		}
		if hi/lo < 1.0 {
			t.Fatalf("max/min jitter below 1 for row %d", row)
		}
		if hi/lo < 1.09 {
			tight++
		}
		if hi/lo > 2.6 {
			t.Errorf("row %d: jitter range %v exceeds paper's ~2.23 max", row, hi/lo)
		}
		rows++
	}
	frac := float64(tight) / float64(rows)
	if frac < 0.80 || frac > 0.99 {
		t.Errorf("fraction of tight rows = %v, paper: ~90%% below 1.09x", frac)
	}
}

func TestRowPressSaturationAtHalf(t *testing.T) {
	// At extreme dose, all charged cells flip; with a checkered victim that
	// is ~50% of the row (Obsv 18: BER converges to ~50%).
	m := newTestModel(t, 3)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 5000}
	n := flipCount(t, m, loc, 0x55, 0xAA, 1e12)
	ber := float64(n) / RowBits
	if ber < 0.40 || ber > 0.60 {
		t.Errorf("saturation BER = %v, want ~0.5", ber)
	}
}

func TestDieOfPairs(t *testing.T) {
	pairs := map[int]int{0: 0, 7: 0, 1: 1, 6: 1, 2: 2, 5: 2, 3: 3, 4: 3}
	for ch, die := range pairs {
		if DieOf(ch) != die {
			t.Errorf("DieOf(%d) = %d, want %d", ch, DieOf(ch), die)
		}
	}
	if DieOf(-1) != 0 || DieOf(8) != 0 {
		t.Error("out-of-range channels should clamp to die 0")
	}
}

func TestChannelPairsShareVulnerability(t *testing.T) {
	// Obsv 6: channels come in pairs with similar BER. Verify paired
	// channels are closer to each other than the max cross-pair gap.
	m := newTestModel(t, 0)
	chBER := make([]float64, 8)
	for ch := 0; ch < 8; ch++ {
		total := 0
		for row := 1000; row < 4000; row += 211 {
			total += flipCount(t, m, RowLoc{Channel: ch, Pseudo: 0, Bank: 0, Row: row}, 0x55, 0xAA, refHammer)
		}
		chBER[ch] = float64(total)
	}
	pairGap := math.Abs(chBER[0]-chBER[7]) + math.Abs(chBER[1]-chBER[6]) +
		math.Abs(chBER[2]-chBER[5]) + math.Abs(chBER[3]-chBER[4])
	crossGap := math.Abs(chBER[0] - chBER[3]) // die 0 (hot) vs die 3 (cool) on chip 0
	if pairGap/4 >= crossGap {
		t.Errorf("paired channels differ (avg %v) as much as cross-die channels (%v)", pairGap/4, crossGap)
	}
}

func TestProfileValidation(t *testing.T) {
	good, _ := BuiltinProfile(0)
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BaseBERPercent = 0 },
		func(p *Profile) { p.BaseBERPercent = 99 },
		func(p *Profile) { p.HCFloor = 10 },
		func(p *Profile) { p.HCGammaTheta = 0 },
		func(p *Profile) { p.DieBERFactor[2] = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile passed validation", i)
		}
		if _, err := NewModel(p); err == nil {
			t.Errorf("case %d: NewModel accepted invalid profile", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("builtin profile invalid: %v", err)
	}
}

func TestBuiltinProfileIndexRange(t *testing.T) {
	if _, err := BuiltinProfile(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := BuiltinProfile(6); err == nil {
		t.Error("index 6 should error")
	}
	for i := 0; i < 6; i++ {
		p, err := BuiltinProfile(i)
		if err != nil {
			t.Fatalf("BuiltinProfile(%d): %v", i, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin profile %d invalid: %v", i, err)
		}
	}
}

func TestChipsDiffer(t *testing.T) {
	// Different chips must behave like different specimens.
	m0 := newTestModel(t, 0)
	m5 := newTestModel(t, 5)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 3333}
	if flipCount(t, m0, loc, 0x55, 0xAA, refHammer) == flipCount(t, m5, loc, 0x55, 0xAA, refHammer) {
		// Equal counts can coincide; compare masks for a stronger check.
		d0 := make([]byte, RowBytes)
		d5 := make([]byte, RowBytes)
		v, a := fillRow(0x55), fillRow(0xAA)
		if _, err := m0.FlipMask(loc, v, a, a, Dose{Above: refHammer, Below: refHammer}, 0, d0); err != nil {
			t.Fatal(err)
		}
		if _, err := m5.FlipMask(loc, v, a, a, Dose{Above: refHammer, Below: refHammer}, 0, d5); err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range d0 {
			if d0[i] != d5[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two different chips produced identical flip masks")
		}
	}
}
