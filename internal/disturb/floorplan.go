package disturb

import "math"

// The paper reverse-engineers (footnote 4) that a bank in the tested HBM2
// chips is built from subarrays of either 832 or 768 rows, and that the
// middle and the last subarrays (both 832 rows) are markedly more
// RowHammer-resilient than the rest. This floorplan encodes that layout:
// 21 subarrays per 16384-row bank, 4 of 832 rows and 17 of 768 rows, with
// the 832-row subarrays placed so that one covers the exact middle of the
// bank and one covers the end.
const (
	// RowsPerBank is the number of rows in every bank of every tested chip.
	RowsPerBank = 16384
	// SubarraysPerBank is the number of subarrays the floorplan divides a
	// bank into.
	SubarraysPerBank = 21
)

// subarraySizes lists the row count of each subarray in physical order.
// Index 10 is the middle subarray and index 20 the last; both are 832-row
// "edge design" subarrays per the paper's Obsv 11 hypothesis. 4*832 +
// 17*768 = 16384.
var subarraySizes = [SubarraysPerBank]int{
	832, 768, 768, 768, 768,
	832, 768, 768, 768, 768,
	832, 768, 768, 768, 768,
	768, 768, 768, 768, 768,
	832,
}

// subarrayStarts[i] is the first physical row of subarray i; computed once
// at package load from subarraySizes.
var subarrayStarts = func() [SubarraysPerBank]int {
	var starts [SubarraysPerBank]int
	row := 0
	for i, sz := range subarraySizes {
		starts[i] = row
		row += sz
	}
	if row != RowsPerBank {
		panic("disturb: subarray layout does not cover the bank")
	}
	return starts
}()

// resilientSubarrays marks the subarrays the paper found to be strongly
// suppressed in BER (the middle and the last 832-row subarrays).
var resilientSubarrays = map[int]bool{10: true, 20: true}

// Subarray returns the index of the subarray containing the physical row,
// and the row's zero-based offset within that subarray. Rows outside
// [0, RowsPerBank) are clamped.
func Subarray(physRow int) (index, offset int) {
	if physRow < 0 {
		physRow = 0
	}
	if physRow >= RowsPerBank {
		physRow = RowsPerBank - 1
	}
	for i := SubarraysPerBank - 1; i >= 0; i-- {
		if physRow >= subarrayStarts[i] {
			return i, physRow - subarrayStarts[i]
		}
	}
	return 0, physRow
}

// SubarraySize returns the number of rows in subarray index.
func SubarraySize(index int) int {
	if index < 0 || index >= SubarraysPerBank {
		return 0
	}
	return subarraySizes[index]
}

// SubarrayStart returns the first physical row of subarray index.
func SubarrayStart(index int) int {
	if index < 0 || index >= SubarraysPerBank {
		return 0
	}
	return subarrayStarts[index]
}

// SameSubarray reports whether two physical rows live in the same subarray.
// Aggressor coupling does not cross subarray boundaries (each subarray has
// its own row buffer and sense amplifiers), which is exactly the property
// the paper exploits to discover subarray boundaries with single-sided
// RowHammer.
func SameSubarray(rowA, rowB int) bool {
	if rowA < 0 || rowB < 0 || rowA >= RowsPerBank || rowB >= RowsPerBank {
		return false
	}
	ia, _ := Subarray(rowA)
	ib, _ := Subarray(rowB)
	return ia == ib
}

// SubarrayShape returns the spatial BER modulation factor for a physical
// row: a half-sine bump that peaks mid-subarray (Obsv 10: BER periodically
// increases and decreases across rows, higher in the middle of a subarray),
// additionally suppressed by 0.42x in the resilient middle/last subarrays
// (Obsv 11 / Takeaway 3).
func SubarrayShape(physRow int) float64 {
	idx, off := Subarray(physRow)
	size := subarraySizes[idx]
	pos := (float64(off) + 0.5) / float64(size)
	shape := 0.72 + 0.46*math.Sin(pos*math.Pi)
	if resilientSubarrays[idx] {
		shape *= 0.42
	}
	return shape
}
