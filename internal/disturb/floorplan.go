package disturb

import "math"

// The paper reverse-engineers (footnote 4) that a bank in the tested HBM2
// chips is built from subarrays of either 832 or 768 rows, and that the
// middle and the last subarrays (both 832 rows) are markedly more
// RowHammer-resilient than the rest. This floorplan encodes that layout:
// 21 subarrays per 16384-row bank, 4 of 832 rows and 17 of 768 rows, with
// the 832-row subarrays placed so that one covers the exact middle of the
// bank and one covers the end. Other bank sizes (the HBM2E/HBM3 presets)
// get a generated floorplan that extends the same structural pattern.
const (
	// RowsPerBank is the number of rows in every bank of the paper's tested
	// chips (the default floorplan; other geometries build their own).
	RowsPerBank = 16384
	// SubarraysPerBank is the number of subarrays the default floorplan
	// divides a bank into.
	SubarraysPerBank = 21
)

// paperSubarraySizes lists the row count of each subarray of the paper's
// 16384-row bank in physical order. Index 10 is the middle subarray and
// index 20 the last; both are 832-row "edge design" subarrays per the
// paper's Obsv 11 hypothesis. 4*832 + 17*768 = 16384.
var paperSubarraySizes = []int{
	832, 768, 768, 768, 768,
	832, 768, 768, 768, 768,
	832, 768, 768, 768, 768,
	768, 768, 768, 768, 768,
	832,
}

// Floorplan is the subarray layout of one bank: the sizes and start rows of
// its subarrays and which of them are RowHammer-resilient. Floorplans are
// immutable after construction and safe for concurrent use.
type Floorplan struct {
	rows      int
	sizes     []int
	starts    []int
	resilient map[int]bool
}

// defaultFloorplan is the paper's reverse-engineered 16384-row layout, used
// by the package-level convenience functions below.
var defaultFloorplan = newPaperFloorplan()

func newPaperFloorplan() *Floorplan {
	f := &Floorplan{
		rows:      RowsPerBank,
		sizes:     paperSubarraySizes,
		resilient: map[int]bool{10: true, 20: true},
	}
	f.computeStarts()
	return f
}

// DefaultFloorplan returns the paper's 16384-row bank layout.
func DefaultFloorplan() *Floorplan { return defaultFloorplan }

// NewFloorplan builds the subarray layout for a bank of rowsPerBank rows.
// For the paper's 16384-row bank it returns the exact reverse-engineered
// layout; for other sizes it extends the same structural pattern (832-row
// "edge design" subarrays every fifth position among 768-row subarrays,
// with the layout adjusted so the middle and last subarrays are resilient).
func NewFloorplan(rowsPerBank int) *Floorplan {
	if rowsPerBank <= 0 {
		rowsPerBank = RowsPerBank
	}
	if rowsPerBank == RowsPerBank {
		return defaultFloorplan
	}
	f := &Floorplan{rows: rowsPerBank, resilient: make(map[int]bool)}
	remaining := rowsPerBank
	for i := 0; remaining > 0; i++ {
		size := 768
		if i%5 == 0 {
			size = 832
		}
		if remaining < size+256 {
			// Too little left for another full subarray after this one:
			// absorb the remainder so the layout covers the bank exactly.
			size = remaining
		}
		f.sizes = append(f.sizes, size)
		remaining -= size
	}
	f.computeStarts()
	// Resilient subarrays mirror the paper's: the one covering the bank's
	// middle row and the last one.
	mid, _ := f.Subarray(rowsPerBank / 2)
	f.resilient[mid] = true
	f.resilient[len(f.sizes)-1] = true
	return f
}

func (f *Floorplan) computeStarts() {
	f.starts = make([]int, len(f.sizes))
	row := 0
	for i, sz := range f.sizes {
		f.starts[i] = row
		row += sz
	}
	if row != f.rows {
		panic("disturb: subarray layout does not cover the bank")
	}
}

// Rows returns the number of rows per bank the floorplan covers.
func (f *Floorplan) Rows() int { return f.rows }

// NumSubarrays returns the number of subarrays in the layout.
func (f *Floorplan) NumSubarrays() int { return len(f.sizes) }

// Subarray returns the index of the subarray containing the physical row,
// and the row's zero-based offset within that subarray. Rows outside
// [0, Rows()) are clamped.
func (f *Floorplan) Subarray(physRow int) (index, offset int) {
	if physRow < 0 {
		physRow = 0
	}
	if physRow >= f.rows {
		physRow = f.rows - 1
	}
	for i := len(f.starts) - 1; i >= 0; i-- {
		if physRow >= f.starts[i] {
			return i, physRow - f.starts[i]
		}
	}
	return 0, physRow
}

// SubarraySize returns the number of rows in subarray index.
func (f *Floorplan) SubarraySize(index int) int {
	if index < 0 || index >= len(f.sizes) {
		return 0
	}
	return f.sizes[index]
}

// SubarrayStart returns the first physical row of subarray index.
func (f *Floorplan) SubarrayStart(index int) int {
	if index < 0 || index >= len(f.starts) {
		return 0
	}
	return f.starts[index]
}

// SameSubarray reports whether two physical rows live in the same subarray.
// Aggressor coupling does not cross subarray boundaries (each subarray has
// its own row buffer and sense amplifiers), which is exactly the property
// the paper exploits to discover subarray boundaries with single-sided
// RowHammer.
func (f *Floorplan) SameSubarray(rowA, rowB int) bool {
	if rowA < 0 || rowB < 0 || rowA >= f.rows || rowB >= f.rows {
		return false
	}
	ia, _ := f.Subarray(rowA)
	ib, _ := f.Subarray(rowB)
	return ia == ib
}

// Shape returns the spatial BER modulation factor for a physical row: a
// half-sine bump that peaks mid-subarray (Obsv 10: BER periodically
// increases and decreases across rows, higher in the middle of a subarray),
// additionally suppressed by 0.42x in the resilient middle/last subarrays
// (Obsv 11 / Takeaway 3).
func (f *Floorplan) Shape(physRow int) float64 {
	idx, off := f.Subarray(physRow)
	size := f.sizes[idx]
	pos := (float64(off) + 0.5) / float64(size)
	shape := 0.72 + 0.46*math.Sin(pos*math.Pi)
	if f.resilient[idx] {
		shape *= 0.42
	}
	return shape
}

// Subarray returns the index of the subarray containing the physical row in
// the default (paper) floorplan, and the row's offset within it.
func Subarray(physRow int) (index, offset int) { return defaultFloorplan.Subarray(physRow) }

// SubarraySize returns the number of rows in subarray index of the default
// floorplan.
func SubarraySize(index int) int { return defaultFloorplan.SubarraySize(index) }

// SubarrayStart returns the first physical row of subarray index of the
// default floorplan.
func SubarrayStart(index int) int { return defaultFloorplan.SubarrayStart(index) }

// SameSubarray reports whether two physical rows live in the same subarray
// of the default floorplan.
func SameSubarray(rowA, rowB int) bool { return defaultFloorplan.SameSubarray(rowA, rowB) }

// SubarrayShape returns the spatial BER modulation factor for a physical
// row of the default floorplan.
func SubarrayShape(physRow int) float64 { return defaultFloorplan.Shape(physRow) }
