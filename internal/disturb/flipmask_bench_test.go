package disturb

import (
	"testing"
)

// Benchmarks for the fault-model hot path. Every experiment in the study
// funnels through FlipMask (one call per activation of a disturbed or
// stale row) and calibRow (once per touched row), so these two kernels
// bound the throughput of paper-scale sweeps. `make bench` records their
// trajectory in BENCH_<date>.json.

func benchFlipModel(b *testing.B) *Model {
	b.Helper()
	p, err := BuiltinProfile(0)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewModel(p)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchFillRow(fill byte) []byte {
	buf := make([]byte, RowBytes)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// BenchmarkFlipMaskHot measures FlipMask in the regime the experiment
// runners exercise it: a warmed row (HCfirst searches re-hammer the same
// victim dozens of times) under a checkered pattern. The sub-benchmarks
// cover the two doses that dominate real sweeps: searchDose sits near the
// HCfirst threshold (almost no flips, the common case inside a binary
// search) and refDose is the paper's 256K-hammer BER measurement point
// (plenty of flips).
func BenchmarkFlipMaskHot(b *testing.B) {
	for _, bc := range []struct {
		name string
		dose float64
	}{
		{"searchDose16K", 16 * 1024},
		{"refDose256K", 256 * 1024},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := benchFlipModel(b)
			victim := benchFillRow(0x55)
			aggr := benchFillRow(0xAA)
			dst := make([]byte, RowBytes)
			locs := [4]RowLoc{
				{Channel: 0, Pseudo: 0, Bank: 0, Row: 1000},
				{Channel: 0, Pseudo: 0, Bank: 0, Row: 1002},
				{Channel: 3, Pseudo: 1, Bank: 5, Row: 4000},
				{Channel: 3, Pseudo: 1, Bank: 5, Row: 4002},
			}
			dose := Dose{Above: bc.dose, Below: bc.dose}
			// Warm the per-row state so the loop measures the steady-state
			// kernel, not first-touch calibration.
			for _, loc := range locs {
				if _, err := m.FlipMask(loc, victim, aggr, aggr, dose, 0, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				for j := range dst {
					dst[j] = 0
				}
				n, err := m.FlipMask(locs[i&3], victim, aggr, aggr, dose, 0, dst)
				if err != nil {
					b.Fatal(err)
				}
				total += n
			}
			b.ReportMetric(float64(total)/float64(b.N), "flips/op")
		})
	}
}

// BenchmarkFlipMaskRetention measures the retention-only evaluation path
// (no hammer dose, a stale row past the guaranteed window).
func BenchmarkFlipMaskRetention(b *testing.B) {
	m := benchFlipModel(b)
	victim := benchFillRow(0x55)
	dst := make([]byte, RowBytes)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 2000}
	if _, err := m.FlipMask(loc, victim, nil, nil, Dose{}, 1.0, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = 0
		}
		if _, err := m.FlipMask(loc, victim, nil, nil, Dose{}, 1.0, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibFirstTouch measures the per-row calibration cost paid on
// the first activation of every row an experiment touches.
func BenchmarkCalibFirstTouch(b *testing.B) {
	m := benchFlipModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.calibRow(RowLoc{Channel: i & 7, Pseudo: 0, Bank: (i >> 3) & 15, Row: (i >> 7) % RowsPerBank})
	}
}

// BenchmarkTrialJitter measures the per-epoch dose-jitter draw issued on
// every row restore.
func BenchmarkTrialJitter(b *testing.B) {
	m := benchFlipModel(b)
	loc := RowLoc{Channel: 2, Pseudo: 1, Bank: 7, Row: 1234}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrialJitter(loc, uint64(i))
	}
}
