package disturb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"hbmrd/internal/stats"
)

// RowBytes and RowBits give the size of one DRAM row in the tested HBM2
// chips (1 KiB rows, §3).
const (
	RowBytes = 1024
	RowBits  = RowBytes * 8
)

// Calibration constants. These are the model's single source of truth; all
// of them trace back to a specific number or observation in the paper (see
// the comment on each).
const (
	// refHammer is the per-aggressor hammer count at which per-row BER
	// targets are calibrated. The paper measures BER (and breaks WCDP
	// ties) at 256K.
	refHammer = 256 * 1024

	// doseSides folds the two sides of the paper's double-sided access
	// pattern into calibration dose space: at a hammer count of N, the
	// victim receives dose from both aggressors.
	doseSides = 2.0

	// eligibleFrac is the nominal fraction of cells stored in their charged
	// state under the Table 1 patterns (true-/anti-cell mix), used when
	// translating row-level BER targets into per-cell quantiles.
	eligibleFrac = 0.5

	// Dose-coupling multipliers. An aggressor bit opposite to the victim
	// bit couples more strongly than an identical bit; a victim bit whose
	// intra-row neighbours differ couples more strongly than one inside a
	// uniform run. Checkered/rowstripe mean BER ratio in the paper is
	// 0.76/0.67 = 1.13, which the intraDiff/intraSame ratio reproduces.
	coupleAggrOpp   = 1.06
	coupleAggrSame  = 0.82
	coupleIntraDiff = 1.07
	coupleIntraSame = 0.94

	// calibCouple is the reference coupling product for the worst-case data
	// pattern (aggrOpp * intraDiff), in whose dose-space the per-row BER
	// and HCfirst targets are specified.
	calibCouple = coupleAggrOpp * coupleIntraDiff

	// patJitterSigma adds a per-(row, victim fill byte) log-normal wobble so
	// no single data pattern wins on every row (Obsv 9: "no data pattern
	// individually achieves the smallest HCfirst").
	patJitterSigma = 0.06

	// wordClusterSigma spreads vulnerability between 64-bit words within a
	// row (mean-one log-normal scaling of the per-cell flip probability).
	// Real DRAM weak cells cluster spatially; the paper's Fig 17 finds
	// that most words with any bitflip hold more than one. Without this
	// term i.i.d. cells under-produce multi-bit words.
	wordClusterSigma = 0.55

	// orientCoupleSigma spreads vulnerability between true and anti cells
	// per die, which is what makes Rowstripe0 and Rowstripe1 differ within
	// a channel (the paper sees median HCfirst ratios up to ~1.37).
	orientCoupleSigma = 0.08

	// Tail-regime parameters. The tail spread is chosen so that the
	// *additional* hammers from the 1st to the 10th bitflip shrink as the
	// row's HCfirst multiplier m grows: extra ~ tailExtraB*HCfloor/m^0.5,
	// i.e. sigTail = ln(1 + tailExtraB/m^1.5)/gap. This reproduces Fig 12's
	// negative Pearson correlation (-0.34..-0.45 in the paper) and keeps
	// the HC10th/HC1st ratio within the paper's observed 1.15..5.22 range
	// with a mean of ~1.7 (Obsv 14).
	tailExtraB     = 6.0
	tailExtraExp   = 1.5
	tailJitterSig  = 0.35
	sigTailMin     = 0.222
	sigTailMax     = 2.6
	bulkSigmaFloor = 0.50
	bulkSigmaDflt  = 0.60

	// Retention model: per-cell log-normal retention time with median
	// retMedianSec at retRefTempC, halving every +10 C. Calibrated against
	// the paper's retention BER measurements (0%, 0.013%, 0.134% at
	// 34.8 ms, 1.17 s, 10.53 s).
	retMedianSec = 2.7e5
	retSigma     = 3.3
	retRefTempC  = 55.0
	// retMinElapsedSec is the shortest disarmed interval: below this no
	// retention failures are possible (manufacturer-guaranteed window).
	retMinElapsedSec = 0.030

	// Trial-to-trial jitter (Fig 13): ~90% of rows are tight (max/min
	// HCfirst over 50 trials below ~1.09x), the rest progressively looser
	// (the paper's loosest row reaches 2.23x).
	trialTightSigma = 0.015
	trialLooseBase  = 0.03
	trialLooseSpan  = 0.15

	// Aging drift (Fig 10): per-row vulnerability drift rate in ln-dose
	// units per sqrt(month), slightly biased toward more vulnerable
	// (paper: 18713 rows up vs 17973 rows down after 7 months).
	agingDriftMu    = 0.02
	agingDriftSigma = 0.105

	// tempHCSlope makes chips marginally more vulnerable when hot.
	tempHCSlope = 0.002

	// wcdpHeadroom compensates the HCfirst calibration for the worst-case
	// composition the WCDP selection applies on top of the reference
	// coupling: the best of four patterns rides the upper tail of the
	// pattern jitter, orientation coupling, and trial jitter (together
	// ~x0.85 on the realized minimum). Without this factor the measured
	// per-chip minimum HCfirst lands well below the paper's values.
	wcdpHeadroom = 1.18
)

// Org is the minimal chip organization the fault model needs: enough to
// derive per-die factors, the subarray floorplan, and the quantile anchors
// that calibrate row-level targets to the number of cells per row.
type Org struct {
	// Channels is the stack's channel count (die mapping folds channel
	// pairs onto the four stacked dies).
	Channels int
	// Ranks is the number of ranks per pseudo channel (0 means 1). Rank
	// only widens the flat bank address space the per-bank salts already
	// cover, so it does not change any derived factor — it is carried for
	// validation and so multi-rank organizations are explicit here too.
	Ranks int
	// RowsPerBank is the number of rows per bank (sizes the floorplan).
	RowsPerBank int
	// RowBytes is the size of one row.
	RowBytes int
}

// DefaultOrg returns the paper's HBM2 organization.
func DefaultOrg() Org {
	return Org{Channels: 8, Ranks: 1, RowsPerBank: RowsPerBank, RowBytes: RowBytes}
}

// Validate reports an unusable organization.
func (o Org) Validate() error {
	if o.Channels <= 0 || o.RowsPerBank <= 0 || o.RowBytes <= 0 {
		return fmt.Errorf("disturb: org fields must be positive: %+v", o)
	}
	if o.Ranks < 0 {
		return fmt.Errorf("disturb: org Ranks must be non-negative (0 means 1): %+v", o)
	}
	return nil
}

// Hash salts, one per independent random field of the model.
const (
	saltRow     uint64 = 0xA1
	saltPC      uint64 = 0xA2
	saltBank    uint64 = 0xA3
	saltBERJit  uint64 = 0xA4
	saltHCMult  uint64 = 0xA5
	saltAging   uint64 = 0xA6
	saltTailJit uint64 = 0xA7
	saltOrientP uint64 = 0xA8
	saltOrientC uint64 = 0xA9
	saltTrial   uint64 = 0xAA
	saltEpoch   uint64 = 0xAB
	saltPatJit  uint64 = 0xAC
	saltWord    uint64 = 0xAD
	// saltCol feeds the column-disturb (bitline) fields: the per-row
	// threshold jitter and the per-cell flip draw (see coldisturb.go).
	saltCol uint64 = 0xAE
	// saltRetention decorrelates the retention draw from the threshold
	// draw of the same cell.
	saltRetention uint64 = 0x52455453414C54
)

// cellStride spreads consecutive cell indices across the hash space.
const cellStride = 0x9E3779B97F4A7C15

// RowLoc addresses one physical row inside a chip. Index ranges follow the
// chip's organization (for the paper's HBM2 part: channel 0-7, pseudo
// channel 0-1, bank 0-15, row 0-16383).
type RowLoc struct {
	Channel int
	Pseudo  int
	Bank    int
	Row     int
}

// Dose is the accumulated, amplification- and jitter-scaled disturbance a
// victim row has received from each side since it was last restored,
// measured in reference (minimum-tRAS) aggressor activations.
type Dose struct {
	Above float64 // from physical row Victim+1 (and a small share of +2)
	Below float64 // from physical row Victim-1 (and a small share of -2)
}

// Total returns the summed dose from both sides.
func (d Dose) Total() float64 { return d.Above + d.Below }

// Model evaluates the read-disturbance fault physics of one chip.
// Evaluation methods are safe for concurrent use; the Set* configuration
// methods must not be called concurrently with evaluation.
type Model struct {
	prof      Profile
	org       Org
	fp        *Floorplan
	rowBits   int
	tempC     float64
	ageMonths float64

	// Quantile anchors in probit space, derived from the organization's
	// cells-per-row count: zJunction is the tail/bulk regime boundary (the
	// expected quantile of the ~50th weakest eligible cell); zEligGap
	// corrects the realized all-cell minimum quantile to the expected
	// eligible-cell minimum; zTenthGap is the expected quantile gap between
	// the weakest and the 10th weakest eligible cell.
	zJunction, zEligGap, zTenthGap float64

	// gen is the calibration generation, bumped by SetTempC/SetAgeMonths;
	// cached per-row calibrations are lazily recomputed when stale. The
	// per-cell state (hash draws, orientation, word factors) never depends
	// on temperature or age and survives generation bumps.
	gen uint64

	// Per-bank sharded row cache (see cellstate.go): calibration plus the
	// materialized per-cell randomness behind cacheBudget bytes of LRU,
	// split among the shards that currently hold live arrays.
	cacheBudget  int64
	activeShards atomic.Int64
	shards       [cacheShards]calibShard
}

// NewModel validates the profile and builds a fault model for it with the
// paper's HBM2 organization. The model starts at the profile's operating
// temperature and starting age.
func NewModel(p Profile) (*Model, error) {
	return NewModelFor(p, DefaultOrg())
}

// NewModelFor builds a fault model for a profile under an arbitrary chip
// organization: the subarray floorplan scales to the bank's row count and
// the quantile anchors to the row's cell count. With DefaultOrg the model
// is identical to NewModel's.
func NewModelFor(p Profile, org Org) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := org.Validate(); err != nil {
		return nil, err
	}
	rowBits := org.RowBytes * 8
	m := &Model{
		prof:      p,
		org:       org,
		fp:        NewFloorplan(org.RowsPerBank),
		rowBits:   rowBits,
		tempC:     p.OperatingTempC,
		ageMonths: p.AgeMonthsAtStart,
		zJunction: stats.Probit(50.0 / (float64(rowBits)*eligibleFrac + 1)),
		zEligGap: stats.Probit(1.0/(float64(rowBits)*eligibleFrac+1)) -
			stats.Probit(1.0/(float64(rowBits)+1)),
		zTenthGap: stats.Probit(10.0/(float64(rowBits)*eligibleFrac+1)) -
			stats.Probit(1.0/(float64(rowBits)*eligibleFrac+1)),
		cacheBudget: defaultCellCacheBytes,
	}
	for i := range m.shards {
		m.shards[i].rows = make(map[RowLoc]*rowEntry)
	}
	return m, nil
}

// Floorplan returns the model's subarray layout.
func (m *Model) Floorplan() *Floorplan { return m.fp }

// Profile returns the profile the model was built from.
func (m *Model) Profile() Profile { return m.prof }

// TempC returns the current chip temperature in Celsius.
func (m *Model) TempC() float64 { return m.tempC }

// SetTempC changes the chip temperature (affects retention and, mildly,
// hammer vulnerability). Not safe concurrently with evaluation.
func (m *Model) SetTempC(c float64) {
	m.tempC = c
	m.resetCalib()
}

// AgeMonths returns the chip's current powered-on age in months.
func (m *Model) AgeMonths() float64 { return m.ageMonths }

// SetAgeMonths advances (or rewinds) the chip's age, drifting per-row
// vulnerability per the aging model. Not safe concurrently with evaluation.
func (m *Model) SetAgeMonths(months float64) {
	if months < 0 {
		months = 0
	}
	m.ageMonths = months
	m.resetCalib()
}

// resetCalib invalidates every cached per-row calibration by bumping the
// generation; entries recalibrate lazily from their cached minU anchor on
// next touch (no full-row rescan, no cache clear).
func (m *Model) resetCalib() {
	m.gen++
}

// rowCalib holds the derived per-row threshold-curve parameters.
type rowCalib struct {
	rowSeed uint64
	zAnchor float64 // realized weakest-cell quantile (eligible-corrected)
	lnHC1   float64 // ln threshold at zAnchor (dose space incl. both sides)
	sigTail float64
	lnTJ    float64 // ln threshold at the tail/bulk junction
	lnM     float64 // bulk log-normal location
	sigBulk float64
	pTrue   float64    // fraction of true cells (charged state = 1)
	orientC [2]float64 // coupling multiplier per orientation (0=anti, 1=true)
	lnRet   float64    // ln median cell retention (seconds) at current temp
}

func (m *Model) calibRow(loc RowLoc) rowCalib {
	s, e := m.lockEntry(loc)
	rc := m.ensureCalibLocked(s, e)
	s.mu.Unlock()
	return rc
}

// computeCalib derives the row's threshold-curve parameters. minU is the
// row's realized weakest-cell uniform (the minimum of the per-cell hash
// stream, materialized once by the cell cache).
func (m *Model) computeCalib(loc RowLoc, rowSeed uint64, minU float64) rowCalib {
	seed := m.prof.Seed
	die := dieOfN(loc.Channel, m.org.Channels)

	// ---- Realized weakest-cell quantile. Anchoring the threshold curve
	// at the row's actual minimum keeps the realized HCfirst pinned to the
	// calibration target instead of drifting with extreme-value noise. ----
	zAnchor := stats.Probit(minU) + m.zEligGap
	if zAnchor > m.zJunction-0.3 {
		zAnchor = m.zJunction - 0.3
	}

	// ---- BER target (fraction of the row's 8192 bits at refHammer). ----
	berT := m.prof.BaseBERPercent / 100
	berT *= m.prof.DieBERFactor[die]
	berT *= lognormal(hashN(seed, saltPC, uint64(loc.Channel), uint64(loc.Pseudo)), 0, 0.03)
	berT *= lognormal(hashN(seed, saltBank, uint64(loc.Channel), uint64(loc.Pseudo), uint64(loc.Bank)), 0, 0.06)
	berT *= m.fp.Shape(loc.Row)
	berT *= lognormal(mix(rowSeed, saltBERJit), 0, 0.18)
	// The floor guarantees Obsv 1 (bitflips in every tested row at the
	// reference hammer count): ~6 expected flips even in the most
	// resilient rows.
	if berT < 0.0008 {
		berT = 0.0008
	}
	if berT > 0.026 {
		berT = 0.026
	}

	// ---- HCfirst target. ----
	hcMult := 1 + gamma2(mix(rowSeed, saltHCMult), m.prof.HCGammaTheta)
	dieHC := dieHCFactor(m.prof, die)
	shapeHC := math.Pow(m.fp.Shape(loc.Row), -0.3)
	tempHC := 1 - tempHCSlope*(m.tempC-retRefTempC)
	hc1 := m.prof.HCFloor * wcdpHeadroom * dieHC * hcMult * shapeHC * tempHC

	// ---- Aging drift shifts the whole threshold curve in ln space,
	// relative to the age at which the chip was calibrated (the profile's
	// starting age: the paper measured the chips then). ----
	drift := agingDriftMu + agingDriftSigma*normal(mix(rowSeed, saltAging))
	shift := drift * (math.Sqrt(m.ageMonths) - math.Sqrt(m.prof.AgeMonthsAtStart))

	// ---- Tail regime. ----
	sigTail := math.Log(1+tailExtraB/math.Pow(hcMult, tailExtraExp)) / m.zTenthGap
	sigTail *= lognormal(mix(rowSeed, saltTailJit), 0, tailJitterSig)
	if sigTail < sigTailMin {
		sigTail = sigTailMin
	}
	if sigTail > sigTailMax {
		sigTail = sigTailMax
	}
	lnHC1 := math.Log(doseSides*hc1*calibCouple) - shift
	lnTJ := lnHC1 + sigTail*(m.zJunction-zAnchor)

	// ---- Bulk regime, anchored at the junction and hitting the BER
	// target at refHammer. ----
	z256 := stats.Probit(math.Min(berT/eligibleFrac, 0.9999))
	lnRef := math.Log(doseSides*refHammer*calibCouple) - shift
	var sigBulk, lnM float64
	if z256 > m.zJunction+0.05 && lnRef > lnTJ {
		sigBulk = (lnRef - lnTJ) / (z256 - m.zJunction)
		// The floor keeps the bulk curve from degenerating into a step at
		// the reference dose (a step would let coupling noise saturate the
		// row); floored rows undershoot their BER target slightly.
		if sigBulk < bulkSigmaFloor {
			sigBulk = bulkSigmaFloor
		}
		lnM = lnTJ - sigBulk*m.zJunction
	} else {
		// BER target unreachable above the junction (very resilient row or
		// very strong tail): continue with a default spread; the max()
		// against the junction threshold keeps the curve monotone.
		sigBulk = bulkSigmaDflt
		lnM = lnRef - sigBulk*z256
		if jm := lnTJ - sigBulk*m.zJunction; jm > lnM {
			lnM = jm
		}
	}

	// ---- Orientation. ----
	pTrue := 0.5 + 0.16*(unit(hashN(seed, saltOrientP, uint64(die)))-0.5)
	var orientC [2]float64
	orientC[0] = lognormal(hashN(seed, saltOrientC, uint64(die), 0), 0, orientCoupleSigma)
	orientC[1] = lognormal(hashN(seed, saltOrientC, uint64(die), 1), 0, orientCoupleSigma)

	// ---- Retention (temperature-scaled). ----
	lnRet := math.Log(retMedianSec) + math.Ln2*(retRefTempC-m.tempC)/10

	return rowCalib{
		rowSeed: rowSeed,
		zAnchor: zAnchor,
		lnHC1:   lnHC1,
		sigTail: sigTail,
		lnTJ:    lnTJ,
		lnM:     lnM,
		sigBulk: sigBulk,
		pTrue:   pTrue,
		orientC: orientC,
		lnRet:   lnRet,
	}
}

// dieHCFactor converts a die's BER factor into an HCfirst factor, normalized
// so the most vulnerable die sits exactly at the chip's HC floor.
func dieHCFactor(p Profile, die int) float64 {
	maxBER := p.DieBERFactor[0]
	for _, f := range p.DieBERFactor[1:] {
		if f > maxBER {
			maxBER = f
		}
	}
	return math.Pow(maxBER/p.DieBERFactor[die], 0.35)
}

// thresholdCDF returns the probability that a cell's threshold quantile lies
// below the effective ln dose, i.e. the per-cell flip probability cutoff.
func (m *Model) thresholdCDF(rc rowCalib, lnDc float64) float64 {
	if math.IsInf(lnDc, -1) {
		return 0
	}
	if lnDc <= rc.lnTJ {
		z := rc.zAnchor + (lnDc-rc.lnHC1)/rc.sigTail
		return stats.NormalCDF(z)
	}
	z := (lnDc - rc.lnM) / rc.sigBulk
	if z < m.zJunction {
		z = m.zJunction
	}
	return stats.NormalCDF(z)
}

// TrialJitter returns the dose-effectiveness multiplier for the given
// restore epoch of a row. The paper observes (Fig 13) that a row's HCfirst
// varies across repeated experiments: most rows stay within ~9%, a minority
// swings up to ~2.2x.
func (m *Model) TrialJitter(loc RowLoc, epoch uint64) float64 {
	s, e := m.lockEntry(loc)
	rowSeed, sigma := e.rowSeed, e.trialSigma
	s.mu.Unlock()
	return lognormal(hashN(rowSeed, saltEpoch, epoch), 0, sigma)
}

// FlipMask evaluates which bits of the victim row flip given the
// accumulated dose and the time elapsed since the row was last restored.
// victim is the row's stored image; above and below are the current images
// of the physically adjacent rows (nil means never written, treated as
// all-zero). The flip mask is OR-ed into dst (which must have len(victim)
// bytes) and the number of newly set mask bits is returned.
//
// Determinism contract: the flip decision of every cell is a fixed
// function of the per-cell hash stream (see cellstate.go); evaluation
// order is unspecified. The word-level fast path below and the scalar
// fallback produce byte-identical masks (enforced by TestFlipMaskMatchesScalar
// and the repo-level golden-digest test).
func (m *Model) FlipMask(loc RowLoc, victim, above, below []byte, dose Dose, retElapsedSec float64, dst []byte) (int, error) {
	if len(dst) != len(victim) {
		return 0, fmt.Errorf("disturb: dst length %d != victim length %d", len(dst), len(victim))
	}
	hammer := dose.Above > 0 || dose.Below > 0
	retention := retElapsedSec > retMinElapsedSec
	if !hammer && !retention {
		return 0, nil
	}
	// The word-at-a-time path wants whole 64-bit words of the organization's
	// row size, with neighbour images that cover the victim; anything else
	// (odd buffer lengths, short neighbours) takes the scalar path.
	if len(victim) != m.org.RowBytes || m.rowBits&63 != 0 ||
		(above != nil && len(above) < len(victim)) ||
		(below != nil && len(below) < len(victim)) {
		return m.flipMaskScalar(m.calibRow(loc), victim, above, below, dose, retElapsedSec, dst)
	}

	rc, ca := m.prepareRow(loc, retention)

	// Per-combo flip-probability cutoffs. Combo index bits:
	// bit0 aggressor-above opposite, bit1 aggressor-below opposite,
	// bit2 intra-row neighbour differs, bit3 orientation (1 = true cell).
	var pcrit [16]float64
	maxP := 0.0
	if hammer {
		patJit := lognormal(hashN(rc.rowSeed, saltPatJit, uint64(victim[0])), 0, patJitterSigma)
		aggF := [2]float64{coupleAggrSame, coupleAggrOpp}
		intraF := [2]float64{coupleIntraSame, coupleIntraDiff}
		for combo := 0; combo < 16; combo++ {
			deff := dose.Above*aggF[combo&1] + dose.Below*aggF[(combo>>1)&1]
			if deff <= 0 {
				continue
			}
			couple := intraF[(combo>>2)&1] * rc.orientC[(combo>>3)&1] * patJit
			p := m.thresholdCDF(rc, math.Log(deff*couple))
			pcrit[combo] = p
			if p > maxP {
				maxP = p
			}
		}
	}

	var pRet float64
	if retention {
		pRet = stats.NormalCDF((math.Log(retElapsedSec) - rc.lnRet) / retSigma)
		if pRet <= 0 {
			retention = false
		}
	}
	// Early exit when every combo cutoff underflowed to zero (doses far
	// below the row's tail regime) and retention is inactive: no cell can
	// flip, so skip the row entirely.
	if !retention && maxP <= 0 {
		return 0, nil
	}

	// Conservative ceiling on any cell's effective flip probability this
	// call: pEff = 1-(1-p)^wf is increasing in both p and wf, so
	// 1-(1-maxP)^maxWF bounds every (combo, word) pair. Nudged up a few
	// ulps so math.Pow rounding can never rank a word's exact pEff above
	// the ceiling used to skip it.
	pEffCeil := 0.0
	if maxP > 0 {
		if maxP >= 1 {
			pEffCeil = 1
		} else {
			pEffCeil = 1 - math.Pow(1-maxP, ca.maxWF)
			for i := 0; i < 4; i++ {
				pEffCeil = math.Nextafter(pEffCeil, 2)
			}
		}
	}

	words := len(victim) >> 3
	flips := 0
	var pEff [16]float64
	var pEffOK [16]bool
	for w := 0; w < words; w++ {
		// Whole-word skips: a word provably holds no hammer flip when its
		// minimum uniform clears the probability ceiling, and no retention
		// flip when it clears pRet. In near-threshold sweeps (HCfirst
		// searches) virtually every word skips, making the row O(words).
		hamW := pEffCeil > 0 && ca.wordMinU[w] < pEffCeil
		retW := retention && pRet > ca.retMinU[w]
		if !hamW && !retW {
			continue
		}
		off := w << 3
		v := binary.LittleEndian.Uint64(victim[off:])
		orient := ca.orient[w]
		// Eligible: only a cell stored in its charged state can lose
		// charge. True cells (orient bit 1) store charge for logical 1.
		elig := ^(v ^ orient)
		if elig == 0 {
			continue
		}
		var oppA, oppB, intra uint64
		if hamW {
			var a, bw uint64
			if above != nil {
				a = binary.LittleEndian.Uint64(above[off:])
			}
			if below != nil {
				bw = binary.LittleEndian.Uint64(below[off:])
			}
			oppA = v ^ a
			oppB = v ^ bw
			// Intra-row neighbours: shifted victim images with row edges
			// patched to the cell's own bit (edge cells have one fewer
			// neighbour) and word edges patched from the adjacent word.
			left := v << 1
			if w > 0 {
				left |= binary.LittleEndian.Uint64(victim[off-8:]) >> 63
			} else {
				left |= v & 1
			}
			right := v >> 1
			if w < words-1 {
				right |= binary.LittleEndian.Uint64(victim[off+8:]) << 63
			} else {
				right |= v & (1 << 63)
			}
			intra = (left ^ v) | (right ^ v)
			pEffOK = [16]bool{}
		}
		wfW := ca.wf[w]
		var maskW uint64
		for e := elig; e != 0; e &= e - 1 {
			k := uint(bits.TrailingZeros64(e))
			flip := false
			if hamW {
				combo := int(((oppA >> k) & 1) | ((oppB>>k)&1)<<1 | ((intra>>k)&1)<<2 | ((orient>>k)&1)<<3)
				if !pEffOK[combo] {
					// Word-vulnerability transform p -> 1-(1-p)^wf preserves
					// small-probability scaling (~p*wf) and saturation.
					switch p := pcrit[combo]; {
					case p <= 0:
						pEff[combo] = 0
					case p >= 1:
						pEff[combo] = 1
					default:
						pEff[combo] = 1 - math.Pow(1-p, wfW)
					}
					pEffOK[combo] = true
				}
				if pe := pEff[combo]; pe > 0 {
					u := (float64(ca.h[w<<6|int(k)]>>11) + 0.5) / (1 << 53)
					flip = u < pe
				}
			}
			if !flip && retW {
				flip = unit(splitmix64(ca.h[w<<6|int(k)]^saltRetention)) < pRet
			}
			if flip {
				maskW |= 1 << k
			}
		}
		if maskW != 0 {
			old := binary.LittleEndian.Uint64(dst[off:])
			flips += bits.OnesCount64(maskW &^ old)
			binary.LittleEndian.PutUint64(dst[off:], old|maskW)
		}
	}
	return flips, nil
}

// flipMaskScalar is the reference per-cell evaluation: one hash, one
// classification and one compare per bit, in index order. It handles any
// buffer length and is the executable specification the word-level fast
// path must match bit-for-bit.
func (m *Model) flipMaskScalar(rc rowCalib, victim, above, below []byte, dose Dose, retElapsedSec float64, dst []byte) (int, error) {
	hammer := dose.Above > 0 || dose.Below > 0
	retention := retElapsedSec > retMinElapsedSec

	// Per-combo flip-probability cutoffs. Combo index bits:
	// bit0 aggressor-above opposite, bit1 aggressor-below opposite,
	// bit2 intra-row neighbour differs, bit3 orientation (1 = true cell).
	var pcrit [16]float64
	if hammer {
		victimByte := byte(0)
		if len(victim) > 0 {
			victimByte = victim[0]
		}
		patJit := lognormal(hashN(rc.rowSeed, saltPatJit, uint64(victimByte)), 0, patJitterSigma)
		aggF := [2]float64{coupleAggrSame, coupleAggrOpp}
		intraF := [2]float64{coupleIntraSame, coupleIntraDiff}
		for combo := 0; combo < 16; combo++ {
			oppA := combo & 1
			oppB := (combo >> 1) & 1
			intra := (combo >> 2) & 1
			orient := (combo >> 3) & 1
			deff := dose.Above*aggF[oppA] + dose.Below*aggF[oppB]
			if deff <= 0 {
				continue
			}
			couple := intraF[intra] * rc.orientC[orient] * patJit
			pcrit[combo] = m.thresholdCDF(rc, math.Log(deff*couple))
		}
	}

	var pRet float64
	if retention {
		pRet = stats.NormalCDF((math.Log(retElapsedSec) - rc.lnRet) / retSigma)
		if pRet <= 0 {
			retention = false
		}
	}
	if !retention && !hammer {
		return 0, nil
	}

	pTrueCut := uint64(rc.pTrue * (1 << 11))
	flips := 0
	n := len(victim)
	// Per-word flip probabilities: pcrit transformed by the mean-one
	// word-vulnerability factor via p -> 1-(1-p)^wf, which preserves both
	// small-probability scaling (~p*wf) and saturation (p=1 stays 1).
	// Cached lazily per (word, combo).
	wordFactor := 1.0
	var pEff [16]float64
	var pEffOK [16]bool
	for i := 0; i < n; i++ {
		if hammer && i%8 == 0 {
			h := hashN(rc.rowSeed, saltWord, uint64(i/8))
			wordFactor = math.Exp(wordClusterSigma*normal(h) - wordClusterSigma*wordClusterSigma/2)
			pEffOK = [16]bool{}
		}
		vb := victim[i]
		ab := byteAt(above, i)
		bb := byteAt(below, i)
		prevB := byteAt(victim, i-1)
		nextB := byteAt(victim, i+1)
		var maskByte byte
		for j := 0; j < 8; j++ {
			bit := (vb >> j) & 1
			h := splitmix64(rc.rowSeed + uint64(i*8+j)*cellStride)
			orient := byte(0)
			if h&0x7FF < pTrueCut {
				orient = 1
			}
			// Eligible: only a cell stored in its charged state can lose
			// charge. True cells (orient=1) store charge for logical 1.
			if bit != orient {
				continue
			}
			flip := false
			if hammer {
				// Intra-row neighbours (handle row edges).
				left := bit
				if i > 0 || j > 0 {
					left = bitAt(vb, prevB, j-1)
				}
				right := bit
				if i < n-1 || j < 7 {
					right = bitAt(vb, nextB, j+1)
				}
				intra := 0
				if left != bit || right != bit {
					intra = 1
				}
				oppA := 0
				if (ab>>j)&1 != bit {
					oppA = 1
				}
				oppB := 0
				if (bb>>j)&1 != bit {
					oppB = 1
				}
				combo := oppA | oppB<<1 | intra<<2 | int(orient)<<3
				if !pEffOK[combo] {
					switch p := pcrit[combo]; {
					case p <= 0:
						pEff[combo] = 0
					case p >= 1:
						pEff[combo] = 1
					default:
						pEff[combo] = 1 - math.Pow(1-p, wordFactor)
					}
					pEffOK[combo] = true
				}
				u := (float64(h>>11) + 0.5) / (1 << 53)
				flip = u < pEff[combo]
			}
			if !flip && retention {
				uRet := unit(splitmix64(h ^ saltRetention))
				flip = uRet < pRet
			}
			if flip {
				maskByte |= 1 << j
			}
		}
		if maskByte != 0 {
			newBits := maskByte &^ dst[i]
			flips += bits.OnesCount8(newBits)
			dst[i] |= maskByte
		}
	}
	return flips, nil
}

// byteAt returns buf[i] or 0 when buf is nil or i out of range (unwritten
// rows read as zero).
func byteAt(buf []byte, i int) byte {
	if buf == nil || i < 0 || i >= len(buf) {
		return 0
	}
	return buf[i]
}

// bitAt returns bit j of cur when 0<=j<8, else the wrapped bit of the
// adjacent byte (j=-1 -> adjacent bit 7; j=8 -> adjacent bit 0).
func bitAt(cur, adjacent byte, j int) byte {
	switch {
	case j < 0:
		return (adjacent >> 7) & 1
	case j > 7:
		return adjacent & 1
	default:
		return (cur >> j) & 1
	}
}
