package disturb

import (
	"testing"
	"testing/quick"
)

func TestSubarrayLayoutCoversBank(t *testing.T) {
	total := 0
	n832, n768 := 0, 0
	for i := 0; i < SubarraysPerBank; i++ {
		sz := SubarraySize(i)
		switch sz {
		case 832:
			n832++
		case 768:
			n768++
		default:
			t.Errorf("subarray %d has unexpected size %d", i, sz)
		}
		total += sz
	}
	if total != RowsPerBank {
		t.Errorf("subarrays cover %d rows, want %d", total, RowsPerBank)
	}
	if n832 != 4 || n768 != 17 {
		t.Errorf("layout has %d x832 and %d x768 subarrays, want 4 and 17", n832, n768)
	}
}

func TestMiddleAndLastSubarraysAre832(t *testing.T) {
	midIdx, _ := Subarray(RowsPerBank / 2)
	if SubarraySize(midIdx) != 832 {
		t.Errorf("middle row's subarray %d has size %d, want 832", midIdx, SubarraySize(midIdx))
	}
	lastIdx, _ := Subarray(RowsPerBank - 1)
	if lastIdx != SubarraysPerBank-1 || SubarraySize(lastIdx) != 832 {
		t.Errorf("last subarray %d size %d, want index %d size 832", lastIdx, SubarraySize(lastIdx), SubarraysPerBank-1)
	}
}

func TestSubarrayOffsets(t *testing.T) {
	for i := 0; i < SubarraysPerBank; i++ {
		start := SubarrayStart(i)
		idx, off := Subarray(start)
		if idx != i || off != 0 {
			t.Errorf("Subarray(start of %d) = %d,%d", i, idx, off)
		}
		end := start + SubarraySize(i) - 1
		idx, off = Subarray(end)
		if idx != i || off != SubarraySize(i)-1 {
			t.Errorf("Subarray(end of %d) = %d,%d", i, idx, off)
		}
	}
}

func TestSameSubarray(t *testing.T) {
	if !SameSubarray(0, 831) {
		t.Error("rows 0 and 831 should share the first 832-row subarray")
	}
	if SameSubarray(831, 832) {
		t.Error("rows 831 and 832 straddle a subarray boundary")
	}
	if SameSubarray(-1, 0) || SameSubarray(0, RowsPerBank) {
		t.Error("out-of-range rows are never in the same subarray")
	}
}

func TestSubarrayShapeSuppressedInResilientSubarrays(t *testing.T) {
	// Compare mid-subarray shape in a regular subarray vs the middle/last.
	regular := SubarrayShape(SubarrayStart(6) + 384)
	middle := SubarrayShape(SubarrayStart(10) + 416)
	last := SubarrayShape(SubarrayStart(20) + 416)
	if middle >= regular*0.6 || last >= regular*0.6 {
		t.Errorf("resilient subarrays not suppressed: regular=%v middle=%v last=%v", regular, middle, last)
	}
}

func TestSubarrayShapePeaksMidSubarray(t *testing.T) {
	start := SubarrayStart(2)
	size := SubarraySize(2)
	edge := SubarrayShape(start)
	mid := SubarrayShape(start + size/2)
	if mid <= edge {
		t.Errorf("shape should peak mid-subarray: edge=%v mid=%v", edge, mid)
	}
}

func TestSubarrayClampProperty(t *testing.T) {
	f := func(r int16) bool {
		idx, off := Subarray(int(r))
		return idx >= 0 && idx < SubarraysPerBank && off >= 0 && off < SubarraySize(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubarrayShapePositive(t *testing.T) {
	for r := 0; r < RowsPerBank; r += 97 {
		if s := SubarrayShape(r); s <= 0 || s > 1.3 {
			t.Fatalf("SubarrayShape(%d) = %v out of (0, 1.3]", r, s)
		}
	}
}

func TestNewFloorplanDefaultIsPaperLayout(t *testing.T) {
	f := NewFloorplan(RowsPerBank)
	if f.NumSubarrays() != SubarraysPerBank || f.Rows() != RowsPerBank {
		t.Fatalf("16384-row floorplan: %d subarrays over %d rows", f.NumSubarrays(), f.Rows())
	}
	for i := 0; i < SubarraysPerBank; i++ {
		if f.SubarraySize(i) != SubarraySize(i) || f.SubarrayStart(i) != SubarrayStart(i) {
			t.Errorf("subarray %d: size %d start %d, want %d/%d",
				i, f.SubarraySize(i), f.SubarrayStart(i), SubarraySize(i), SubarrayStart(i))
		}
	}
}

func TestNewFloorplanGeneratedLayouts(t *testing.T) {
	for _, rows := range []int{8192, 16384, 32768, 65536} {
		f := NewFloorplan(rows)
		total := 0
		for i := 0; i < f.NumSubarrays(); i++ {
			sz := f.SubarraySize(i)
			if sz <= 0 {
				t.Fatalf("rows=%d: subarray %d has size %d", rows, i, sz)
			}
			if start := f.SubarrayStart(i); start != total {
				t.Fatalf("rows=%d: subarray %d starts at %d, want %d", rows, i, start, total)
			}
			total += sz
		}
		if total != rows {
			t.Errorf("rows=%d: layout covers %d rows", rows, total)
		}
		// Middle and last subarrays are resilient: suppressed shape.
		midIdx, _ := f.Subarray(rows / 2)
		regIdx := 1 // generated layouts always have a regular subarray at 1
		regMid := f.SubarrayStart(regIdx) + f.SubarraySize(regIdx)/2
		if f.Shape(rows/2) >= f.Shape(regMid) {
			t.Errorf("rows=%d: middle subarray %d not suppressed", rows, midIdx)
		}
		if f.Shape(rows-1-f.SubarraySize(f.NumSubarrays()-1)/2) >= f.Shape(regMid) {
			t.Errorf("rows=%d: last subarray not suppressed", rows)
		}
		// Coupling never crosses a boundary.
		b := f.SubarrayStart(1)
		if f.SameSubarray(b-1, b) {
			t.Errorf("rows=%d: rows %d and %d straddle a boundary", rows, b-1, b)
		}
		if !f.SameSubarray(b, b+1) {
			t.Errorf("rows=%d: rows %d and %d share a subarray", rows, b, b+1)
		}
		if f.SameSubarray(-1, 0) || f.SameSubarray(0, rows) {
			t.Errorf("rows=%d: out-of-range rows grouped", rows)
		}
	}
}
