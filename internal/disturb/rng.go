// Package disturb implements the calibrated read-disturbance fault model
// that stands in for the DRAM cell physics of the six HBM2 chips the paper
// characterizes.
//
// Every quantity in the model is a deterministic function of a chip seed and
// a cell/row coordinate, derived through splitmix64 hashing. This gives the
// simulated chips the two properties the methodology depends on: behaviour
// is stable across repeated experiments (like silicon), yet every chip,
// die, bank, row, and cell differs (like process variation).
//
// Two disturbance channels share that machinery. The wordline model
// (FlipMask, model.go) covers row hammer, RowPress, and retention as a
// function of activation count and aggressor-on time; the bitline model
// (ColFlipMask, coldisturb.go) covers column-read disturbance, where
// streaming reads through one open row stress cells sharing its bitlines
// many rows away. Both draw from the same per-cell hash stream,
// decorrelated through distinct salts.
//
// # Determinism contract
//
// The per-cell hash stream is the specification: cell idx of a row draws
// h(idx) = splitmix64(rowSeed + idx*cellStride), and every per-cell
// quantity (threshold uniform, orientation, retention uniform) is a fixed
// pure function of that draw and the documented salts. Evaluation order is
// NOT part of the contract — FlipMask may visit cells in any order, skip
// whole words it can prove flip-free, or consult cached intermediates, but
// the resulting mask must be byte-identical to a naive per-cell sweep.
// TestFlipMaskMatchesScalar and the repository-level golden-digest test
// enforce this.
//
// # Cell-state cache
//
// Model caches, per touched row and sharded by bank (so concurrent sweep
// workers on different channels never share a lock): the derived
// calibration curve, and the materialized per-cell randomness — hash
// draws, orientation bitmask, per-word cluster factors and per-word
// minimum uniforms — that FlipMask's word-at-a-time fast path consumes.
// Calibrations are tiny and cached forever; the per-cell arrays
// (~8 B/cell, ~68 KiB per 1 KiB row) are bounded by a per-model byte
// budget (default 64 MiB, see Model.SetCellCacheBytes) with LRU eviction.
// Eviction only costs a deterministic rebuild on next touch; it can never
// change results.
package disturb

import (
	"math"

	"hbmrd/internal/stats"
)

// splitmix64 is the 64-bit finalizer from Vigna's splitmix64 generator. It
// is used as a hash: statistically strong, branch-free, and fast enough to
// run once per DRAM cell on every row read.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// mix folds v into h, producing a new hash state.
func mix(h, v uint64) uint64 {
	return splitmix64(h ^ (v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)))
}

// hashN chains an arbitrary number of values into one hash.
func hashN(vs ...uint64) uint64 {
	h := uint64(0x8445D61A4E774912)
	for _, v := range vs {
		h = mix(h, v)
	}
	return h
}

// unit converts a hash to a uniform float64 in the half-open interval (0, 1).
// The lower bound is open so the value can safely feed Probit and Log.
func unit(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// normal returns a deterministic standard normal variate derived from h.
func normal(h uint64) float64 {
	return stats.Probit(unit(h))
}

// lognormal returns exp(sigma*N + mu) derived deterministically from h.
func lognormal(h uint64, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*normal(h))
}

// expvar returns a deterministic Exp(1) variate derived from h.
func expvar(h uint64) float64 {
	return -math.Log(unit(h))
}

// gamma2 returns a deterministic Gamma(shape=2, scale=theta) variate: the
// sum of two independent exponentials. It shapes the per-row HCfirst
// multiplier distribution (minimum pinned near 1, long right tail).
func gamma2(h uint64, theta float64) float64 {
	return theta * (expvar(mix(h, 1)) + expvar(mix(h, 2)))
}
