package disturb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggOnAmpAnchors(t *testing.T) {
	cases := []struct {
		ns   float64
		want float64
	}{
		{29.0, 1.0},
		{3_900.0, 55.0},     // tREFI: paper's HCfirst shrinks ~55x
		{35_100.0, 222.6},   // 9*tREFI: paper's 222.57x headline
		{16_000_000, 240e3}, // 16 ms: a single activation must flip
	}
	for _, c := range cases {
		got := AggOnAmp(c.ns)
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("AggOnAmp(%v ns) = %v, want %v", c.ns, got, c.want)
		}
	}
}

func TestAggOnAmpClampsBelowTRAS(t *testing.T) {
	for _, ns := range []float64{-5, 0, 10, 29} {
		if got := AggOnAmp(ns); got != 1.0 {
			t.Errorf("AggOnAmp(%v) = %v, want 1.0", ns, got)
		}
	}
	if got := AggOnAmp(math.NaN()); got != 1.0 {
		t.Errorf("AggOnAmp(NaN) = %v, want 1.0", got)
	}
}

func TestAggOnAmpMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		// Map to [29 ns, 100 ms].
		ta := 29 + float64(a)/float64(math.MaxUint32)*1e8
		tb := 29 + float64(b)/float64(math.MaxUint32)*1e8
		if ta > tb {
			ta, tb = tb, ta
		}
		return AggOnAmp(ta) <= AggOnAmp(tb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestAggOnAmpExtrapolates(t *testing.T) {
	if AggOnAmp(64e6) <= AggOnAmp(16e6) {
		t.Error("amplification should keep growing past the last anchor")
	}
}

// TestAggOnAmpPaperRatios checks the derived HCfirst reduction ratios the
// paper reports in Obsv 19 (83689 -> 1519 -> 376 average HCfirst).
func TestAggOnAmpPaperRatios(t *testing.T) {
	r1 := AggOnAmp(3_900) / AggOnAmp(29)
	r2 := AggOnAmp(35_100) / AggOnAmp(29)
	if r1 < 45 || r1 > 65 {
		t.Errorf("tREFI amplification %v outside paper's ~55x", r1)
	}
	if r2 < 200 || r2 > 245 {
		t.Errorf("9*tREFI amplification %v outside paper's ~222.6x", r2)
	}
}
