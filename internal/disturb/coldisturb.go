package disturb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"hbmrd/internal/stats"
)

// Column-disturb model (ColumnDisturb, arXiv 2510.14750): read disturbance
// propagates along bitlines, not just wordlines. Keeping a row open while
// streaming column reads through it stresses every cell that shares the
// aggressor's bitlines inside the same subarray, and with enough reads the
// weakest of those cells lose charge - a disturbance mechanism orthogonal
// to row hammer (no repeated activations) and to RowPress (the victims are
// arbitrarily many rows away, not physical neighbours).
//
// The model mirrors the row-hammer threshold machinery in ln-dose space,
// with column reads as the dose: a victim row at |distance| rows from the
// open aggressor has a per-row median ln read threshold that grows with
// ln(distance) (bitline attenuation), each cell draws its threshold
// quantile from the same per-cell hash stream FlipMask uses (decorrelated
// through saltCol), and the effective reads are boosted when the
// aggressor's cell on the same bitline stores the opposite bit (the
// paper's data-pattern dependence). Only cells stored in their charged
// state can flip, reusing the orientation bitmask, and the per-word
// cluster factors give columns the same spatial texture hammer flips have.
//
// Determinism contract: like FlipMask, the flip decision of every cell is
// a fixed function of the per-cell hash stream and the documented salts;
// evaluation order is unspecified.

const (
	// colLnBase is the ln of the median per-cell column-read threshold at
	// distance 1 (~80k reads), before row jitter and per-cell spread.
	colLnBase = 11.29
	// colDistAlpha grows the threshold with ln(distance): bitline stress
	// attenuates as the victim sits further from the open aggressor.
	colDistAlpha = 0.7
	// colRowSigma is the row-to-row lognormal jitter of the threshold.
	colRowSigma = 0.3
	// colCellSigma is the per-cell threshold spread in ln space. With
	// ~8k cells per row the weakest cell sits ~3.6 sigma below the
	// median, so first disturbances appear well before the median reads.
	colCellSigma = 0.9
	// colOppCouple multiplies the effective reads when the aggressor's
	// cell on the same bitline stores the opposite bit.
	colOppCouple = 2.2
)

// ColFlipMask evaluates which bits of a victim row flip after `reads`
// column reads through an open aggressor row `dist` rows away (signed;
// only |dist| matters). victim is the row's stored image; agg is the
// aggressor's image at the time of the reads (nil means never written,
// treated as all-zero). The flip mask is OR-ed into dst (len(victim)
// bytes) and the number of newly set mask bits is returned.
//
// The caller (internal/hbm) gates on subarray membership and blast
// radius; the model only prices the coupling.
func (m *Model) ColFlipMask(loc RowLoc, victim, agg []byte, dist, reads int, dst []byte) (int, error) {
	if len(dst) != len(victim) {
		return 0, fmt.Errorf("disturb: dst length %d != victim length %d", len(dst), len(victim))
	}
	if len(victim) != m.org.RowBytes || m.rowBits&63 != 0 {
		return 0, fmt.Errorf("disturb: column disturb wants a full %d-byte row, got %d bytes", m.org.RowBytes, len(victim))
	}
	if agg != nil && len(agg) < len(victim) {
		return 0, fmt.Errorf("disturb: aggressor image %d bytes, victim %d", len(agg), len(victim))
	}
	if reads <= 0 || dist == 0 {
		return 0, nil
	}
	if dist < 0 {
		dist = -dist
	}

	rc, ca := m.prepareRow(loc, false)
	lnRow := colLnBase + colDistAlpha*math.Log(float64(dist)) + colRowSigma*normal(mix(rc.rowSeed, saltCol))
	lnReads := math.Log(float64(reads))

	// Per-combo flip-probability cutoffs. Combo index bits:
	// bit0 aggressor bitline cell opposite, bit1 orientation (1 = true cell).
	oppF := [2]float64{1, colOppCouple}
	var pcrit [4]float64
	maxP := 0.0
	for combo := 0; combo < 4; combo++ {
		couple := oppF[combo&1] * rc.orientC[(combo>>1)&1]
		p := stats.NormalCDF((lnReads + math.Log(couple) - lnRow) / colCellSigma)
		pcrit[combo] = p
		if p > maxP {
			maxP = p
		}
	}
	if maxP <= 0 {
		return 0, nil
	}
	// Conservative per-word ceiling, mirroring FlipMask's word skip: the
	// vulnerability transform p -> 1-(1-p)^wf is increasing in both terms.
	pEffCeil := 1.0
	if maxP < 1 {
		pEffCeil = 1 - math.Pow(1-maxP, ca.maxWF)
		for i := 0; i < 4; i++ {
			pEffCeil = math.Nextafter(pEffCeil, 2)
		}
	}
	if pEffCeil <= 0 {
		return 0, nil
	}

	words := len(victim) >> 3
	flips := 0
	var pEff [4]float64
	var pEffOK [4]bool
	for w := 0; w < words; w++ {
		off := w << 3
		v := binary.LittleEndian.Uint64(victim[off:])
		orient := ca.orient[w]
		// Eligible: only a cell stored in its charged state can lose charge.
		elig := ^(v ^ orient)
		if elig == 0 {
			continue
		}
		var a uint64
		if agg != nil {
			a = binary.LittleEndian.Uint64(agg[off:])
		}
		opp := v ^ a
		wfW := ca.wf[w]
		pEffOK = [4]bool{}
		var maskW uint64
		for e := elig; e != 0; e &= e - 1 {
			k := uint(bits.TrailingZeros64(e))
			combo := int(((opp >> k) & 1) | ((orient>>k)&1)<<1)
			if !pEffOK[combo] {
				switch p := pcrit[combo]; {
				case p <= 0:
					pEff[combo] = 0
				case p >= 1:
					pEff[combo] = 1
				default:
					pEff[combo] = 1 - math.Pow(1-p, wfW)
				}
				pEffOK[combo] = true
			}
			if pe := pEff[combo]; pe > 0 {
				// saltCol decorrelates the column draw from the hammer
				// threshold uniform (h>>11) and the retention draw
				// (h^saltRetention) of the same cell.
				if unit(splitmix64(ca.h[w<<6|int(k)]^saltCol)) < pe {
					maskW |= 1 << k
				}
			}
		}
		if maskW != 0 {
			old := binary.LittleEndian.Uint64(dst[off:])
			flips += bits.OnesCount64(maskW &^ old)
			binary.LittleEndian.PutUint64(dst[off:], old|maskW)
		}
	}
	return flips, nil
}
