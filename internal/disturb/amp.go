package disturb

import "math"

// ampAnchor is one calibration point of the aggressor-row-on-time
// amplification curve: keeping a row open for OnTime nanoseconds makes each
// activation Amp times as disturbing as a minimum-tRAS (29.0 ns) activation.
type ampAnchor struct {
	onTimeNS float64
	amp      float64
}

// ampAnchors is fit to the paper's measurements (§6):
//   - Fig 14: BER at a hammer count of 150K grows from 0.08% at 29 ns to
//     0.73% at 116 ns (the sub-tRC regime).
//   - Fig 15 / Obsv 19: average HCfirst shrinks from 83689 at 29 ns to 1519
//     at tREFI (3.9 µs, amp ≈ 55x) and 376 at 9*tREFI (35.1 µs, amp ≈ 222.6x,
//     the paper's "222.57x smaller" headline), and a single activation kept
//     open for 16 ms flips cells in every chip (amp must exceed the largest
//     per-row HCfirst, hence >= 2.4e5).
//
// Between anchors the curve is interpolated linearly in log-log space;
// beyond the last anchor it extrapolates with the final segment's slope.
var ampAnchors = []ampAnchor{
	{29.0, 1.0},
	{58.0, 2.05},
	{87.0, 3.10},
	{116.0, 4.20},
	{3_900.0, 55.0},
	{35_100.0, 222.6},
	{16_000_000.0, 240_000.0},
}

// AggOnAmp returns the read-disturbance amplification factor for an
// activation that keeps the aggressor row open for onTimeNS nanoseconds.
// Times at or below the minimum tRAS of 29.0 ns return 1.0.
func AggOnAmp(onTimeNS float64) float64 {
	if onTimeNS <= ampAnchors[0].onTimeNS || math.IsNaN(onTimeNS) {
		return 1.0
	}
	last := len(ampAnchors) - 1
	for i := 1; i <= last; i++ {
		if onTimeNS <= ampAnchors[i].onTimeNS {
			return logLogInterp(ampAnchors[i-1], ampAnchors[i], onTimeNS)
		}
	}
	// Extrapolate past 16 ms with the slope of the final segment.
	return logLogInterp(ampAnchors[last-1], ampAnchors[last], onTimeNS)
}

func logLogInterp(a, b ampAnchor, t float64) float64 {
	slope := math.Log(b.amp/a.amp) / math.Log(b.onTimeNS/a.onTimeNS)
	return a.amp * math.Exp(slope*math.Log(t/a.onTimeNS))
}
