package disturb

import "fmt"

// Board identifies the FPGA board a chip is mounted on. The paper tests one
// Bittware XUPVVH board (Chip 0, temperature-controlled at 82 C) and five
// AMD Xilinx Alveo U50 boards (Chips 1-5, passively stable).
type Board int

// Supported boards.
const (
	BoardXUPVVH Board = iota + 1
	BoardAlveoU50
)

// String implements fmt.Stringer.
func (b Board) String() string {
	switch b {
	case BoardXUPVVH:
		return "Bittware XUPVVH"
	case BoardAlveoU50:
		return "AMD Xilinx Alveo U50"
	default:
		return fmt.Sprintf("Board(%d)", int(b))
	}
}

// Profile captures everything that distinguishes one simulated HBM2 chip
// from another. The six built-in profiles are calibrated to the per-chip
// statistics the paper reports; custom profiles can model hypothetical
// chips.
type Profile struct {
	// Name labels the chip ("Chip 0" .. "Chip 5").
	Name string
	// Board the chip is mounted on.
	Board Board
	// AgeMonthsAtStart is the chip's estimated age when experiments began
	// (Chip 0: 33 months, Chip 1: 8 months, Chips 2-5: 3 months).
	AgeMonthsAtStart float64
	// OperatingTempC is the steady-state chip temperature during the main
	// experiments (82 C for the temperature-controlled Chip 0).
	OperatingTempC float64

	// BaseBERPercent is the calibration target for the chip-level mean
	// RowHammer BER (percent of a row's 8192 bits) for the worst-case data
	// pattern at a hammer count of 256K.
	BaseBERPercent float64
	// HCFloor is the calibration target for the chip-level minimum HCfirst
	// (the most vulnerable row's first-bitflip hammer count).
	HCFloor float64
	// HCGammaTheta is the scale of the Gamma(2) multiplier that spreads
	// per-row HCfirst values above the floor; larger values raise the
	// chip's mean HCfirst without moving its minimum.
	HCGammaTheta float64

	// DieBERFactor scales the BER target of each of the four channel-pair
	// dies. HBM2 channels {0,7}, {1,6}, {2,5}, {3,4} share dies 0..3
	// (Obsv 6: channels group in pairs with matching vulnerability).
	DieBERFactor [4]float64

	// HasTRR enables the undocumented on-die TRR engine. The paper
	// demonstrates the mechanism on Chip 0; we enable it on every chip
	// since it is dormant while periodic refresh is disabled.
	HasTRR bool

	// Seed is the process-variation seed. Two chips with identical
	// parameters but different seeds behave like two different specimens
	// of the same part.
	Seed uint64
}

// DieOf maps an HBM2 channel (0-7) to its 3D-stacked die index (0-3).
// Channel pairs {0,7}, {1,6}, {2,5}, {3,4} share a die.
func DieOf(channel int) int { return dieOfN(channel, 8) }

// dieOfN generalizes the die mapping to organizations with other channel
// counts: channel ch pairs with channel numChannels-1-ch (HBM routes
// mirrored channels through the same die), and stacks with more than eight
// channels fold pairs onto the four dies. For numChannels == 8 this is
// exactly DieOf.
func dieOfN(channel, numChannels int) int {
	if channel < 0 || channel >= numChannels {
		return 0
	}
	pair := channel
	if mirror := numChannels - 1 - channel; mirror < pair {
		pair = mirror
	}
	return pair % 4
}

// BuiltinProfiles returns the six chip profiles calibrated to the paper.
// BaseBERPercent values are pre-compensated for the systematic undershoot
// of rows whose bulk sigma saturates at its floor, so the *measured* mean
// WCDP BER at 256K hammers lands on the paper's numbers:
//
//	             minHCfirst  meanBER(WCDP)  notes
//	Chip 0        18087       1.28%         XUPVVH, 82C, CH0/CH7 die ~2x CH3/CH4
//	Chip 1        16611       1.02%         CH3/CH4 die most vulnerable
//	Chip 2        15500       1.10%
//	Chip 3        17164       0.98%
//	Chip 4        15500       1.17%         widest channel spread (~0.88pp)
//	Chip 5        14531       0.80%         global min HCfirst, ~10.6% higher mean HC than Chip 2
func BuiltinProfiles() []Profile {
	return []Profile{
		{
			Name: "Chip 0", Board: BoardXUPVVH, AgeMonthsAtStart: 33, OperatingTempC: 82,
			BaseBERPercent: 2.25, HCFloor: 18087, HCGammaTheta: 2.30,
			DieBERFactor: [4]float64{1.45, 0.95, 0.85, 0.73},
			HasTRR:       true, Seed: 0xA11CE0,
		},
		{
			Name: "Chip 1", Board: BoardAlveoU50, AgeMonthsAtStart: 8, OperatingTempC: 58,
			BaseBERPercent: 1.88, HCFloor: 16611, HCGammaTheta: 2.30,
			DieBERFactor: [4]float64{0.80, 0.95, 1.00, 1.30},
			HasTRR:       true, Seed: 0xA11CE1,
		},
		{
			Name: "Chip 2", Board: BoardAlveoU50, AgeMonthsAtStart: 3, OperatingTempC: 55,
			BaseBERPercent: 1.29, HCFloor: 15500, HCGammaTheta: 2.20,
			DieBERFactor: [4]float64{1.10, 0.90, 1.05, 0.95},
			HasTRR:       true, Seed: 0xA11CE2,
		},
		{
			Name: "Chip 3", Board: BoardAlveoU50, AgeMonthsAtStart: 3, OperatingTempC: 56,
			BaseBERPercent: 1.59, HCFloor: 17164, HCGammaTheta: 2.30,
			DieBERFactor: [4]float64{0.95, 1.25, 0.85, 1.00},
			HasTRR:       true, Seed: 0xA11CE3,
		},
		{
			Name: "Chip 4", Board: BoardAlveoU50, AgeMonthsAtStart: 3, OperatingTempC: 54,
			BaseBERPercent: 1.56, HCFloor: 15500, HCGammaTheta: 2.25,
			DieBERFactor: [4]float64{1.55, 1.00, 0.80, 0.87},
			HasTRR:       true, Seed: 0xA11CE4,
		},
		{
			Name: "Chip 5", Board: BoardAlveoU50, AgeMonthsAtStart: 3, OperatingTempC: 57,
			BaseBERPercent: 0.97, HCFloor: 14531, HCGammaTheta: 2.65,
			DieBERFactor: [4]float64{1.03, 0.97, 1.00, 1.01},
			HasTRR:       true, Seed: 0xA11CE5,
		},
	}
}

// BuiltinProfile returns the calibrated profile of chip index 0-5.
func BuiltinProfile(index int) (Profile, error) {
	ps := BuiltinProfiles()
	if index < 0 || index >= len(ps) {
		return Profile{}, fmt.Errorf("disturb: no builtin profile for chip %d (have 0-%d)", index, len(ps)-1)
	}
	return ps[index], nil
}

// Validate reports configuration errors in a custom profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("disturb: profile needs a name")
	}
	if p.BaseBERPercent <= 0 || p.BaseBERPercent > 50 {
		return fmt.Errorf("disturb: profile %s: BaseBERPercent %v out of (0, 50]", p.Name, p.BaseBERPercent)
	}
	if p.HCFloor < 1000 {
		return fmt.Errorf("disturb: profile %s: HCFloor %v implausibly small", p.Name, p.HCFloor)
	}
	if p.HCGammaTheta <= 0 {
		return fmt.Errorf("disturb: profile %s: HCGammaTheta must be positive", p.Name)
	}
	for i, f := range p.DieBERFactor {
		if f <= 0 {
			return fmt.Errorf("disturb: profile %s: DieBERFactor[%d] must be positive", p.Name, i)
		}
	}
	return nil
}
