package disturb

import (
	"testing"
	"time"

	"hbmrd/internal/telemetry"
)

// BenchmarkTelemetryOverheadFlipMask prices telemetry against the
// fault-model hot kernel under a deliberately harsher contract than
// production: one counter update, one histogram observation, and one
// timestamp per FlipMask call, where the engine actually pays that once
// per cell (thousands of kernel calls). Disabled is the gate-checked
// no-op path. Both sub-benchmarks must stay at 0 allocs/op - the kernel
// allocates nothing and telemetry may not change that.
func BenchmarkTelemetryOverheadFlipMask(b *testing.B) {
	flips := telemetry.Default.Counter("bench_flipmask_flips_total")
	seconds := telemetry.Default.Histogram("bench_flipmask_seconds", telemetry.DurationBuckets)
	run := func(b *testing.B) {
		m := benchFlipModel(b)
		victim := benchFillRow(0x55)
		aggr := benchFillRow(0xAA)
		dst := make([]byte, RowBytes)
		locs := [4]RowLoc{
			{Channel: 0, Pseudo: 0, Bank: 0, Row: 1000},
			{Channel: 0, Pseudo: 0, Bank: 0, Row: 1002},
			{Channel: 3, Pseudo: 1, Bank: 5, Row: 4000},
			{Channel: 3, Pseudo: 1, Bank: 5, Row: 4002},
		}
		dose := Dose{Above: 16 * 1024, Below: 16 * 1024}
		for _, loc := range locs {
			if _, err := m.FlipMask(loc, victim, aggr, aggr, dose, 0, dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var start time.Time
			if telemetry.Enabled() {
				start = time.Now()
			}
			n, err := m.FlipMask(locs[i&3], victim, aggr, aggr, dose, 0, dst)
			if err != nil {
				b.Fatal(err)
			}
			if telemetry.Enabled() {
				flips.Add(int64(n))
				seconds.Observe(time.Since(start).Seconds())
			}
		}
	}
	b.Run("enabled", run)
	b.Run("disabled", func(b *testing.B) {
		telemetry.SetEnabled(false)
		defer telemetry.SetEnabled(true)
		run(b)
	})
}

// TestFlipMaskTelemetryZeroAlloc pins the acceptance budget directly:
// wrapping the fault-model hot kernel in telemetry - enabled or not -
// performs zero allocations per call.
func TestFlipMaskTelemetryZeroAlloc(t *testing.T) {
	flips := telemetry.Default.Counter("bench_flipmask_flips_total")
	seconds := telemetry.Default.Histogram("bench_flipmask_seconds", telemetry.DurationBuckets)
	m, err := NewModel(mustProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	victim := benchFillRowT(t, 0x55)
	aggr := benchFillRowT(t, 0xAA)
	dst := make([]byte, RowBytes)
	loc := RowLoc{Channel: 0, Pseudo: 0, Bank: 0, Row: 1000}
	dose := Dose{Above: 16 * 1024, Below: 16 * 1024}
	if _, err := m.FlipMask(loc, victim, aggr, aggr, dose, 0, dst); err != nil {
		t.Fatal(err)
	}

	kernel := func() {
		var start time.Time
		if telemetry.Enabled() {
			start = time.Now()
		}
		n, err := m.FlipMask(loc, victim, aggr, aggr, dose, 0, dst)
		if err != nil {
			t.Fatal(err)
		}
		if telemetry.Enabled() {
			flips.Add(int64(n))
			seconds.Observe(time.Since(start).Seconds())
		}
	}
	for _, state := range []struct {
		name string
		on   bool
	}{{"enabled", true}, {"disabled", false}} {
		telemetry.SetEnabled(state.on)
		if allocs := testing.AllocsPerRun(100, kernel); allocs != 0 {
			t.Errorf("%s: %.0f allocs/op on the instrumented kernel, want 0", state.name, allocs)
		}
	}
	telemetry.SetEnabled(true)
}

func mustProfile(t *testing.T) Profile {
	t.Helper()
	p, err := BuiltinProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func benchFillRowT(t *testing.T, fill byte) []byte {
	t.Helper()
	buf := make([]byte, RowBytes)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}
