package pattern

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestTable1Bytes pins the exact fill bytes of Table 1 in the paper.
func TestTable1Bytes(t *testing.T) {
	cases := []struct {
		p        Pattern
		victim   byte
		aggestor byte
	}{
		{Rowstripe0, 0x00, 0xFF},
		{Rowstripe1, 0xFF, 0x00},
		{Checkered0, 0x55, 0xAA},
		{Checkered1, 0xAA, 0x55},
	}
	for _, c := range cases {
		if got := c.p.VictimByte(); got != c.victim {
			t.Errorf("%s victim byte = %#02x, want %#02x", c.p, got, c.victim)
		}
		if got := c.p.AggressorByte(); got != c.aggestor {
			t.Errorf("%s aggressor byte = %#02x, want %#02x", c.p, got, c.aggestor)
		}
	}
}

func TestAggressorIsComplement(t *testing.T) {
	for _, p := range All() {
		if p.VictimByte()^p.AggressorByte() != 0xFF {
			t.Errorf("%s: aggressor byte is not the complement of the victim byte", p)
		}
	}
}

func TestAllOrderAndValidity(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d patterns, want 4", len(all))
	}
	want := []Pattern{Rowstripe0, Rowstripe1, Checkered0, Checkered1}
	for i, p := range all {
		if p != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, p, want[i])
		}
		if !p.Valid() {
			t.Errorf("%s: Valid() = false", p)
		}
	}
	if Pattern(0).Valid() || Pattern(5).Valid() {
		t.Error("out-of-range patterns reported valid")
	}
}

func TestRowImages(t *testing.T) {
	const n = 1024
	for _, p := range All() {
		v := p.VictimRow(n)
		a := p.AggressorRow(n)
		if len(v) != n || len(a) != n {
			t.Fatalf("%s: row image length mismatch", p)
		}
		for i := 0; i < n; i++ {
			if v[i] != p.VictimByte() {
				t.Fatalf("%s: victim image byte %d = %#02x", p, i, v[i])
			}
			if a[i] != p.AggressorByte() {
				t.Fatalf("%s: aggressor image byte %d = %#02x", p, i, a[i])
			}
		}
	}
}

func TestFillProperty(t *testing.T) {
	f := func(b byte, n uint8) bool {
		buf := Fill(int(n), b)
		if len(buf) != int(n) {
			return false
		}
		for _, x := range buf {
			if x != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringUnknown(t *testing.T) {
	if got := Pattern(42).String(); got != "Pattern(42)" {
		t.Errorf("Pattern(42).String() = %q", got)
	}
}

// TestJSONRoundTrip: patterns marshal as their figure-axis labels and
// unmarshal back, so streamed JSONL records are self-describing.
func TestJSONRoundTrip(t *testing.T) {
	for _, p := range All() {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + p.String() + `"`; string(data) != want {
			t.Errorf("marshal %s = %s, want %s", p, data, want)
		}
		var back Pattern
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("round trip %s -> %s", p, back)
		}
	}
	var p Pattern
	if err := json.Unmarshal([]byte(`"Plaid"`), &p); err == nil {
		t.Error("unknown pattern name accepted")
	}
}
