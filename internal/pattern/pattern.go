// Package pattern defines the memory-test data patterns of Table 1 of the
// paper and the worst-case data pattern (WCDP) selection rule used
// throughout the characterization study.
//
// Every pattern assigns one fill byte to the victim row, the complementary
// byte to the two aggressor rows (V±1), and the victim byte again to the
// surrounding rows V±[2:8], exactly as Table 1 specifies.
package pattern

import (
	"encoding/json"
	"fmt"
)

// Pattern identifies one of the four data patterns from Table 1. WCDP is a
// per-row derived pattern, not a fill on its own; see the core package for
// the selection rule.
type Pattern int

// The four concrete data patterns of Table 1.
const (
	Rowstripe0 Pattern = iota + 1
	Rowstripe1
	Checkered0
	Checkered1
)

// All lists the concrete (non-derived) patterns in Table 1 order.
func All() []Pattern {
	return []Pattern{Rowstripe0, Rowstripe1, Checkered0, Checkered1}
}

// String implements fmt.Stringer with the paper's figure-axis labels.
func (p Pattern) String() string {
	switch p {
	case Rowstripe0:
		return "Rowstripe0"
	case Rowstripe1:
		return "Rowstripe1"
	case Checkered0:
		return "Checkered0"
	case Checkered1:
		return "Checkered1"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// MarshalJSON emits the pattern's figure-axis label, so streamed JSONL
// records are self-describing instead of carrying a bare enum number.
func (p Pattern) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON accepts the labels MarshalJSON emits.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, cand := range All() {
		if cand.String() == name {
			*p = cand
			return nil
		}
	}
	return fmt.Errorf("pattern: unknown pattern %q", name)
}

// VictimByte returns the fill byte written to the victim row (and to
// V±[2:8]) for the pattern, per Table 1.
func (p Pattern) VictimByte() byte {
	switch p {
	case Rowstripe0:
		return 0x00
	case Rowstripe1:
		return 0xFF
	case Checkered0:
		return 0x55
	case Checkered1:
		return 0xAA
	default:
		return 0x00
	}
}

// AggressorByte returns the fill byte written to the aggressor rows (V±1)
// for the pattern, per Table 1. For all four patterns this is the bitwise
// complement of the victim byte.
func (p Pattern) AggressorByte() byte {
	return ^p.VictimByte()
}

// Fill returns a freshly allocated buffer of n bytes filled with b.
func Fill(n int, b byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// VictimRow returns the victim-row image of n bytes for the pattern.
func (p Pattern) VictimRow(n int) []byte { return Fill(n, p.VictimByte()) }

// AggressorRow returns the aggressor-row image of n bytes for the pattern.
func (p Pattern) AggressorRow(n int) []byte { return Fill(n, p.AggressorByte()) }

// Valid reports whether p is one of the four Table 1 patterns.
func (p Pattern) Valid() bool {
	return p >= Rowstripe0 && p <= Checkered1
}
