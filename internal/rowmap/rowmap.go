// Package rowmap models DRAM logical-to-physical row address mapping and
// the paper's methodology for reverse-engineering it (§3.1).
//
// DRAM vendors remap memory-controller-visible (logical) row addresses to
// physical rows for routing and repair reasons. Read-disturbance
// experiments must hammer rows that are *physically* adjacent to the
// victim, so the paper reverse-engineers the mapping by hammering a row and
// observing which logical rows exhibit bitflips. This package provides the
// mapping schemes used by the simulated chips and the pure reconstruction
// algorithms driven by such probes.
package rowmap

import (
	"fmt"
	"sort"
)

// Mapper translates between logical (controller-visible) and physical row
// addresses within a bank. Implementations must be bijections over
// [0, Rows()).
type Mapper interface {
	// ToPhysical maps a logical row to its physical row.
	ToPhysical(logical int) int
	// ToLogical maps a physical row back to its logical row.
	ToLogical(physical int) int
	// Rows returns the number of rows the mapper covers.
	Rows() int
}

// Identity maps every logical row to the same physical row.
type Identity struct {
	// NumRows is the bank's row count.
	NumRows int
}

// ToPhysical implements Mapper.
func (m Identity) ToPhysical(logical int) int { return clampRow(logical, m.NumRows) }

// ToLogical implements Mapper.
func (m Identity) ToLogical(physical int) int { return clampRow(physical, m.NumRows) }

// Rows implements Mapper.
func (m Identity) Rows() int { return m.NumRows }

// BitSwizzle models the remapping commonly found in real DRAM: within each
// aligned block of eight rows, the low address bits are XOR-scrambled by a
// block-dependent constant. The transform is its own inverse.
type BitSwizzle struct {
	// NumRows is the bank's row count (must be a multiple of 8).
	NumRows int
	// Salt varies the scramble constant per chip so different specimens
	// have different mappings.
	Salt uint64
}

// ToPhysical implements Mapper.
func (m BitSwizzle) ToPhysical(logical int) int { return m.swizzle(clampRow(logical, m.NumRows)) }

// ToLogical implements Mapper.
func (m BitSwizzle) ToLogical(physical int) int { return m.swizzle(clampRow(physical, m.NumRows)) }

// Rows implements Mapper.
func (m BitSwizzle) Rows() int { return m.NumRows }

func (m BitSwizzle) swizzle(row int) int {
	block := row >> 3
	// Only blocks whose bit0 is set get scrambled, mirroring the
	// "odd groups are remapped" structure reported for real chips. The
	// XOR constant (1..3 over the low two bits) depends on the salt.
	if block&1 == 0 {
		return row
	}
	c := int((m.Salt^uint64(block>>1))%3) + 1 // 1, 2 or 3
	return (row &^ 3) | ((row & 3) ^ c)
}

// Verify checks that mapper m is a bijection with a consistent inverse over
// its full row range.
func Verify(m Mapper) error {
	n := m.Rows()
	if n <= 0 {
		return fmt.Errorf("rowmap: mapper covers %d rows", n)
	}
	seen := make([]bool, n)
	for l := 0; l < n; l++ {
		p := m.ToPhysical(l)
		if p < 0 || p >= n {
			return fmt.Errorf("rowmap: logical %d maps to out-of-range physical %d", l, p)
		}
		if seen[p] {
			return fmt.Errorf("rowmap: physical %d reached from two logical rows", p)
		}
		seen[p] = true
		if back := m.ToLogical(p); back != l {
			return fmt.Errorf("rowmap: inverse mismatch: logical %d -> physical %d -> logical %d", l, p, back)
		}
	}
	return nil
}

// NeighborProbe reports the logical rows observed to take disturbance
// bitflips when the given logical row is hammered single-sided. This is the
// experimental primitive behind the paper's reverse engineering: in the
// simulator it is implemented by actually hammering the chip and scanning
// nearby rows.
type NeighborProbe func(logical int) ([]int, error)

// Adjacency is an undirected physical-adjacency graph over logical row
// numbers: Adjacency[l] lists the logical rows physically adjacent to l.
type Adjacency map[int][]int

// BuildAdjacency probes each logical row in rows and assembles the
// symmetric adjacency graph.
func BuildAdjacency(probe NeighborProbe, rows []int) (Adjacency, error) {
	adj := make(Adjacency, len(rows))
	for _, l := range rows {
		ns, err := probe(l)
		if err != nil {
			return nil, fmt.Errorf("rowmap: probing row %d: %w", l, err)
		}
		for _, n := range ns {
			addEdge(adj, l, n)
		}
	}
	return adj, nil
}

func addEdge(adj Adjacency, a, b int) {
	if !contains(adj[a], b) {
		adj[a] = append(adj[a], b)
	}
	if !contains(adj[b], a) {
		adj[b] = append(adj[b], a)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Paths decomposes the adjacency graph into simple paths. Aggressor
// coupling does not cross subarray boundaries, so a fully probed bank
// decomposes into one path per subarray; each path lists logical rows in
// physical order (orientation is arbitrary). An error is returned if any
// row has more than two neighbours (not a path graph).
func Paths(adj Adjacency) ([][]int, error) {
	visited := make(map[int]bool, len(adj))
	var starts []int
	for row, ns := range adj {
		if len(ns) > 2 {
			return nil, fmt.Errorf("rowmap: row %d has %d physical neighbours", row, len(ns))
		}
		if len(ns) <= 1 {
			starts = append(starts, row)
		}
	}
	sort.Ints(starts)
	var paths [][]int
	for _, s := range starts {
		if visited[s] {
			continue
		}
		path := walk(adj, s, visited)
		paths = append(paths, path)
	}
	// Cycles (should not occur in DRAM banks) would leave unvisited rows.
	for row := range adj {
		if !visited[row] {
			return nil, fmt.Errorf("rowmap: row %d is part of a cycle", row)
		}
	}
	return paths, nil
}

func walk(adj Adjacency, start int, visited map[int]bool) []int {
	path := []int{start}
	visited[start] = true
	cur := start
	for {
		next := -1
		for _, n := range adj[cur] {
			if !visited[n] {
				next = n
				break
			}
		}
		if next < 0 {
			return path
		}
		visited[next] = true
		path = append(path, next)
		cur = next
	}
}

// SubarraySizes returns the lengths of the discovered paths in descending
// start order of their smallest logical row, matching how the paper reports
// reverse-engineered subarray sizes (832- or 768-row groups, §4.2 fn. 4).
func SubarraySizes(paths [][]int) []int {
	sizes := make([]int, len(paths))
	for i, p := range paths {
		sizes[i] = len(p)
	}
	return sizes
}

// MappingFromPath reconstructs a logical->physical assignment for one path
// given the physical row index of its first element and its direction. It
// returns a map from logical row to physical row.
func MappingFromPath(path []int, firstPhysical int, reversed bool) map[int]int {
	out := make(map[int]int, len(path))
	for i, logical := range path {
		idx := i
		if reversed {
			idx = len(path) - 1 - i
		}
		out[logical] = firstPhysical + idx
	}
	return out
}

func clampRow(row, n int) int {
	if row < 0 {
		return 0
	}
	if row >= n {
		return n - 1
	}
	return row
}
