package rowmap

import (
	"testing"
	"testing/quick"
)

func TestIdentityIsBijection(t *testing.T) {
	if err := Verify(Identity{NumRows: 1024}); err != nil {
		t.Error(err)
	}
}

func TestBitSwizzleIsBijection(t *testing.T) {
	for _, salt := range []uint64{0, 1, 0xDEADBEEF, 42} {
		if err := Verify(BitSwizzle{NumRows: 2048, Salt: salt}); err != nil {
			t.Errorf("salt %#x: %v", salt, err)
		}
	}
}

func TestBitSwizzleSelfInverseProperty(t *testing.T) {
	m := BitSwizzle{NumRows: 16384, Salt: 0xA11CE}
	f := func(r uint16) bool {
		row := int(r) % m.NumRows
		return m.ToLogical(m.ToPhysical(row)) == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitSwizzleActuallyRemapsSomething(t *testing.T) {
	m := BitSwizzle{NumRows: 256, Salt: 7}
	moved := 0
	for r := 0; r < 256; r++ {
		if m.ToPhysical(r) != r {
			moved++
		}
	}
	if moved == 0 {
		t.Error("swizzle mapper is the identity")
	}
}

func TestVerifyCatchesBrokenMapper(t *testing.T) {
	if err := Verify(brokenMapper{}); err == nil {
		t.Error("broken mapper passed verification")
	}
	if err := Verify(Identity{NumRows: 0}); err == nil {
		t.Error("empty mapper passed verification")
	}
}

type brokenMapper struct{}

func (brokenMapper) ToPhysical(l int) int { return 0 } // everything collides
func (brokenMapper) ToLogical(p int) int  { return 0 }
func (brokenMapper) Rows() int            { return 4 }

// probeFor builds a NeighborProbe backed by a known mapper with subarray
// boundaries every saSize physical rows: hammering logical L disturbs the
// logical rows whose physical index is phys(L)+-1 within the same subarray.
func probeFor(m Mapper, saSize int) NeighborProbe {
	return func(logical int) ([]int, error) {
		p := m.ToPhysical(logical)
		var ns []int
		for _, q := range []int{p - 1, p + 1} {
			if q < 0 || q >= m.Rows() {
				continue
			}
			if q/saSize != p/saSize {
				continue // no coupling across subarray boundaries
			}
			ns = append(ns, m.ToLogical(q))
		}
		return ns, nil
	}
}

func TestReverseEngineerRecoversPhysicalOrder(t *testing.T) {
	const saSize = 64
	m := BitSwizzle{NumRows: 256, Salt: 3}
	probe := probeFor(m, saSize)
	rows := make([]int, m.NumRows)
	for i := range rows {
		rows[i] = i
	}
	adj, err := BuildAdjacency(probe, rows)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := Paths(adj)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != m.NumRows/saSize {
		t.Fatalf("recovered %d subarrays, want %d", len(paths), m.NumRows/saSize)
	}
	for _, p := range paths {
		if len(p) != saSize {
			t.Errorf("subarray of size %d, want %d", len(p), saSize)
		}
		// Consecutive path entries must be physically adjacent.
		for i := 1; i < len(p); i++ {
			a, b := m.ToPhysical(p[i-1]), m.ToPhysical(p[i])
			if a-b != 1 && b-a != 1 {
				t.Fatalf("path entries %d,%d are physically %d,%d (not adjacent)", p[i-1], p[i], a, b)
			}
		}
	}
}

func TestSubarraySizes(t *testing.T) {
	paths := [][]int{make([]int, 832), make([]int, 768)}
	sizes := SubarraySizes(paths)
	if sizes[0] != 832 || sizes[1] != 768 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestMappingFromPath(t *testing.T) {
	path := []int{10, 11, 9} // logical rows in physical order
	fwd := MappingFromPath(path, 100, false)
	if fwd[10] != 100 || fwd[11] != 101 || fwd[9] != 102 {
		t.Errorf("forward mapping = %v", fwd)
	}
	rev := MappingFromPath(path, 100, true)
	if rev[10] != 102 || rev[11] != 101 || rev[9] != 100 {
		t.Errorf("reversed mapping = %v", rev)
	}
}

func TestPathsRejectsNonPathGraphs(t *testing.T) {
	adj := Adjacency{0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
	if _, err := Paths(adj); err == nil {
		t.Error("star graph accepted as path decomposition")
	}
}

func TestPathsRejectsCycles(t *testing.T) {
	adj := Adjacency{0: {1, 2}, 1: {0, 2}, 2: {1, 0}}
	if _, err := Paths(adj); err == nil {
		t.Error("cycle accepted as path decomposition")
	}
}

func TestBuildAdjacencySymmetric(t *testing.T) {
	probe := func(l int) ([]int, error) {
		// Asymmetric raw observations: only row 0 reports row 1.
		if l == 0 {
			return []int{1}, nil
		}
		return nil, nil
	}
	adj, err := BuildAdjacency(probe, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(adj[1], 0) {
		t.Error("adjacency not symmetrized")
	}
}

func TestClampRow(t *testing.T) {
	m := Identity{NumRows: 8}
	if m.ToPhysical(-3) != 0 || m.ToPhysical(99) != 7 {
		t.Error("row clamping broken")
	}
}
