package query

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/store"
)

// equivRecords hand-builds one record set per kind with the awkward
// cases both compute paths must agree on: WCDP folding, not-found rows,
// sparse metrics (empty HC lists), MinHC zero, nil-vs-present masks,
// and bank addresses spanning multiple ranks.
func equivRecords() map[core.Kind]any {
	return map[core.Kind]any{
		core.KindBER: []core.BERRecord{
			{Chip: 0, Channel: 0, Pseudo: 0, Bank: 0, Row: 10, Pattern: pattern.Rowstripe0, BERPercent: 0.5},
			{Chip: 0, Channel: 0, Pseudo: 1, Bank: 15, Row: 10, Pattern: pattern.Checkered0, BERPercent: 1.25, Mask: []byte{0xAA}},
			{Chip: 0, Channel: 1, Pseudo: 0, Bank: 16, Row: 11, Pattern: pattern.Rowstripe0, WCDP: true, BERPercent: 2},
			{Chip: 3, Channel: 0, Pseudo: 0, Bank: 47, Row: 10, Pattern: pattern.Rowstripe1, BERPercent: 0},
			{Chip: 3, Channel: 7, Pseudo: 1, Bank: 31, Row: 12, Pattern: pattern.Checkered1, WCDP: true, BERPercent: 0.125},
		},
		core.KindHCFirst: []core.HCFirstRecord{
			{Chip: 0, Channel: 0, Pseudo: 0, Bank: 0, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 20000, Found: true},
			{Chip: 0, Channel: 0, Pseudo: 0, Bank: 15, Row: 10, Pattern: pattern.Checkered0, HCFirst: 30000, Found: true},
			{Chip: 0, Channel: 1, Pseudo: 1, Bank: 16, Row: 11, Pattern: pattern.Rowstripe0, WCDP: true, HCFirst: 18000, Found: true},
			{Chip: 0, Channel: 1, Pseudo: 0, Bank: 17, Row: 11, Pattern: pattern.Checkered0, Found: false},
			{Chip: 3, Channel: 0, Pseudo: 0, Bank: 47, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 40000, Found: true},
			{Chip: 3, Channel: 0, Pseudo: 1, Bank: 32, Row: 12, Pattern: pattern.Rowstripe0, WCDP: true, HCFirst: 39000, Found: true},
		},
		core.KindHCNth: []core.HCNthRecord{
			{Chip: 0, Channel: 0, Row: 10, Pattern: pattern.Rowstripe0, HC: []int{10000, 10250, 11000}, Found: true},
			{Chip: 0, Channel: 0, Row: 11, Pattern: pattern.Checkered0, HC: nil, Found: false},
			{Chip: 0, Channel: 1, Row: 10, Pattern: pattern.Rowstripe0, HC: []int{}, Found: false},
			{Chip: 3, Channel: 0, Row: 12, Pattern: pattern.Rowstripe0, HC: []int{25000}, Found: true},
		},
		core.KindVariability: []core.VariabilityRecord{
			{Chip: 0, Row: 10, MinHC: 10000, MaxHC: 24000, Iterations: 5, MeasuredRatios: true},
			{Chip: 0, Row: 11, MinHC: 0, MaxHC: 0, Iterations: 5, MeasuredRatios: false},
			{Chip: 3, Row: 10, MinHC: 16000, MaxHC: 16000, Iterations: 5, MeasuredRatios: true},
		},
		core.KindRowPressBER: []core.RowPressBERRecord{
			{Chip: 0, Channel: 0, TAggON: 29 * hbm.NS, BERPercent: 0.5, RetentionBERPercent: 0.01, Rows: 32},
			{Chip: 0, Channel: 0, TAggON: 3900 * hbm.NS, BERPercent: 2.5, RetentionBERPercent: 0.25, Rows: 32},
			{Chip: 3, Channel: 1, TAggON: 29 * hbm.NS, BERPercent: 0.75, RetentionBERPercent: 0, Rows: 16},
		},
		core.KindRowPressHC: []core.RowPressHCRecord{
			{Chip: 0, Channel: 0, Row: 10, TAggON: 29 * hbm.NS, HCFirst: 20000, Found: true, WithinWindow: true},
			{Chip: 0, Channel: 0, Row: 10, TAggON: 3900 * hbm.NS, HCFirst: 4000, Found: true, WithinWindow: false},
			{Chip: 3, Channel: 1, Row: 11, TAggON: 29 * hbm.NS, Found: false, WithinWindow: true},
		},
		core.KindBypass: []core.BypassRecord{
			{Chip: 0, Row: 10, Dummies: 1, AggActs: 18, BERPercent: 0.5},
			{Chip: 0, Row: 10, Dummies: 4, AggActs: 36, BERPercent: 1.5},
			{Chip: 3, Row: 11, Dummies: 1, AggActs: 18, BERPercent: 0},
		},
		core.KindAging: []core.AgingRecord{
			{Chip: 0, Channel: 0, Row: 10, OldBERPercent: 0.5, NewBERPercent: 0.75},
			{Chip: 0, Channel: 1, Row: 11, OldBERPercent: 1, NewBERPercent: 0.5},
			{Chip: 3, Channel: 0, Row: 10, OldBERPercent: 0, NewBERPercent: 0},
		},
	}
}

// equivSpecs returns every query both paths must answer identically for
// a kind: the figure presets that apply to it, plus hand specs covering
// sparse metrics, metric-threshold filters, every comparison op, and the
// parameterized reducers.
func equivSpecs(t *testing.T, kind core.Kind, sweep string) []Spec {
	t.Helper()
	figsByKind := map[core.Kind][]string{
		core.KindBER:         {"fig4", "fig6", "fig9"},
		core.KindHCFirst:     {"fig5", "fig7", "figrank"},
		core.KindVariability: {"fig13"},
		core.KindRowPressBER: {"fig14"},
		core.KindRowPressHC:  {"fig15"},
		core.KindBypass:      {"fig16"},
	}
	var specs []Spec
	for _, fig := range figsByKind[kind] {
		s, err := FigureSpec(fig, sweep)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	// Ungrouped aggregation over the kind's first metric, with the
	// parameterized reducers.
	metric := Metrics(kind)[0]
	specs = append(specs, Spec{
		Sweep: sweep, Metric: metric,
		Reducers:    []string{"count", "mean", "stddev", "cv", "min", "max", "median", "percentiles", "histogram"},
		Percentiles: []float64{50, 90},
		Edges:       []float64{0, 10000, 1e12},
	})
	// Group by every dimension at once (exercises each accessor), with a
	// metric-threshold filter and a ne-op dimension filter.
	specs = append(specs, Spec{
		Sweep: sweep, GroupBy: Dimensions(kind), Metric: metric,
		Where: []Cond{
			{Dim: metric, Op: "ge", Value: "0"},
			{Dim: "chip", Op: "ne", Value: "7"},
		},
	})
	// Sparse-metric coverage: every metric as both aggregate and filter.
	for _, m := range Metrics(kind) {
		specs = append(specs, Spec{
			Sweep: sweep, GroupBy: []string{"chip"}, Metric: m,
			Where: []Cond{{Dim: m, Op: "gt", Value: "0.4"}},
		})
	}
	// Comparison-op sweep on a string-ish dimension and a numeric one.
	for _, op := range []string{"eq", "ne", "lt", "le", "gt", "ge"} {
		specs = append(specs, Spec{
			Sweep: sweep, GroupBy: []string{"chip"}, Metric: metric,
			Where: []Cond{{Dim: "chip", Op: op, Value: "3"}},
		})
	}
	return specs
}

// TestColumnarComputeEquivalence pins the tentpole's correctness claim:
// ComputeColumnar over the encoded artifact produces Aggregate JSON
// byte-identical to the flatten reference (ComputeEnv) for every figure
// preset applicable to each kind, under every preset geometry's rank
// environment. The flatten path is the oracle; any divergence is a bug
// in the columnar path.
func TestColumnarComputeEquivalence(t *testing.T) {
	t.Parallel()
	envs := []Env{{}}
	for _, name := range []string{hbm.PresetHBM2, hbm.PresetHBM2E, hbm.PresetHBM3, "HBM3_16Gb_4R"} {
		p, err := hbm.LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, Env{BanksPerRank: p.Geometry.Banks})
	}
	sweep := "sha256:" + strings.Repeat("ef", 32)
	for kind, recs := range equivRecords() {
		kind, recs := kind, recs
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			h := core.SweepHeader{Format: 1, Kind: string(kind), Fingerprint: sweep, Cells: core.RecordCount(recs), Generation: 1}
			var art bytes.Buffer
			if err := core.EncodeColumnar(&art, h, recs); err != nil {
				t.Fatal(err)
			}
			cs, err := core.DecodeColumnar(bytes.NewReader(art.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, env := range envs {
				for _, spec := range equivSpecs(t, kind, sweep) {
					ref, err := ComputeEnv(kind, recs, spec, env)
					if err != nil {
						t.Fatalf("ComputeEnv(%+v): %v", spec, err)
					}
					col, err := ComputeColumnar(cs, spec, env)
					if err != nil {
						t.Fatalf("ComputeColumnar(%+v): %v", spec, err)
					}
					refJSON, err := json.Marshal(ref)
					if err != nil {
						t.Fatal(err)
					}
					colJSON, err := json.Marshal(col)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(refJSON, colJSON) {
						t.Fatalf("paths diverge for env %+v spec %+v:\nflatten:  %s\ncolumnar: %s",
							env, spec, refJSON, colJSON)
					}
				}
			}
		})
	}
}

// twinPath locates a stored sweep's columnar artifact on disk.
func twinPath(t *testing.T, st *store.Store, fp string) string {
	t.Helper()
	jsonl, _, err := st.Path(fp)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(filepath.Dir(jsonl), "results.hbmc")
}

// TestEngineColumnarPreference: a cache miss is answered from the
// columnar artifact when present, falls back to JSONL (and backfills the
// artifact) when not, and both cold paths produce byte-identical
// aggregates for the same spec.
func TestEngineColumnarPreference(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "hcfirst.jsonl")
	runTinyHCFirstToFile(t, path)
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := Ingest(st, path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasColumnar(meta.Fingerprint) {
		t.Fatal("ingest finalized no columnar artifact")
	}

	spec, err := FigureSpec("fig5", meta.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	first, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceColumnar {
		t.Errorf("cold miss source = %q, want %q", first.Source, SourceColumnar)
	}
	if eng.RawReads() != 1 || eng.ColumnarReads() != 1 {
		t.Errorf("raw/columnar reads = %d/%d, want 1/1", eng.RawReads(), eng.ColumnarReads())
	}
	hit, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Source != SourceCache {
		t.Errorf("second run: hit=%v source=%q", hit.CacheHit, hit.Source)
	}

	// Both forced cold paths bypass the cache and agree byte-for-byte
	// with each other and with the cached aggregate.
	colCold, err := eng.RunCold(spec, SourceColumnar)
	if err != nil {
		t.Fatal(err)
	}
	jsonlCold, err := eng.RunCold(spec, SourceJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if colCold.CacheHit || jsonlCold.CacheHit {
		t.Error("RunCold reported a cache hit")
	}
	if colCold.Source != SourceColumnar || jsonlCold.Source != SourceJSONL {
		t.Errorf("cold sources = %q/%q", colCold.Source, jsonlCold.Source)
	}
	if !bytes.Equal(colCold.JSON, jsonlCold.JSON) || !bytes.Equal(colCold.JSON, first.JSON) {
		t.Error("cold paths disagree on aggregate bytes")
	}
	if _, err := eng.RunCold(spec, "tape"); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown cold path: %v", err)
	}

	// Strip the artifact: the next cold query (a new spec, so no cached
	// aggregate) falls back to JSONL and backfills the artifact.
	if err := os.Remove(twinPath(t, st, meta.Fingerprint)); err != nil {
		t.Fatal(err)
	}
	fallback, err := eng.Run(Spec{Sweep: meta.Fingerprint, GroupBy: []string{"channel"}, Metric: "hcfirst"})
	if err != nil {
		t.Fatal(err)
	}
	if fallback.Source != SourceJSONL {
		t.Errorf("twin-less miss source = %q, want %q", fallback.Source, SourceJSONL)
	}
	if !st.HasColumnar(meta.Fingerprint) {
		t.Error("JSONL fallback did not backfill the columnar artifact")
	}
	restored, err := eng.Run(Spec{Sweep: meta.Fingerprint, GroupBy: []string{"row"}, Metric: "hcfirst"})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Source != SourceColumnar {
		t.Errorf("post-backfill miss source = %q, want %q", restored.Source, SourceColumnar)
	}

	// A forced-columnar cold run on a twin-less object errors instead of
	// silently falling back.
	if err := os.Remove(twinPath(t, st, meta.Fingerprint)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunCold(spec, SourceColumnar); !errors.Is(err, store.ErrNoColumnar) {
		t.Errorf("forced columnar without artifact: %v, want ErrNoColumnar", err)
	}
	// A corrupt artifact is a fallback, not a failure.
	if err := os.WriteFile(twinPath(t, st, meta.Fingerprint), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt, err := eng.Run(Spec{Sweep: meta.Fingerprint, GroupBy: []string{"pattern"}, Metric: "hcfirst"})
	if err != nil {
		t.Fatal(err)
	}
	if corrupt.Source != SourceJSONL {
		t.Errorf("corrupt-artifact miss source = %q, want %q", corrupt.Source, SourceJSONL)
	}
}

// TestRankDimension: rank derives from the bank address via the env's
// BanksPerRank, the zero Env collapses everything to rank 0, and the
// figrank preset reproduces the per-(chip, rank) grouping end to end
// through the engine on a multi-rank geometry.
func TestRankDimension(t *testing.T) {
	t.Parallel()
	for _, kind := range []core.Kind{core.KindBER, core.KindHCFirst} {
		if !hasName(Dimensions(kind), "rank") {
			t.Errorf("kind %s lacks the rank dimension", kind)
		}
	}

	recs := []core.HCFirstRecord{
		{Chip: 0, Bank: 0, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 20000, Found: true},
		{Chip: 0, Bank: 15, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 21000, Found: true},
		{Chip: 0, Bank: 16, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 30000, Found: true},
		{Chip: 0, Bank: 47, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 44000, Found: true},
	}
	spec := Spec{Sweep: "sha256:x", GroupBy: []string{"rank"}, Metric: "hcfirst"}
	agg, err := ComputeEnv(core.KindHCFirst, recs, spec, Env{BanksPerRank: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Groups) != 3 ||
		agg.Groups[0].Key[0] != "0" || agg.Groups[0].Count != 2 ||
		agg.Groups[1].Key[0] != "1" || agg.Groups[1].Count != 1 ||
		agg.Groups[2].Key[0] != "2" || agg.Groups[2].Count != 1 {
		t.Errorf("rank groups = %+v", agg.Groups)
	}
	flat, err := ComputeEnv(core.KindHCFirst, recs, spec, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Groups) != 1 || flat.Groups[0].Key[0] != "0" || flat.Groups[0].Count != 4 {
		t.Errorf("zero-env rank groups = %+v", flat.Groups)
	}

	// End to end: a stored multi-rank sweep queried through the engine
	// with the figrank preset splits by rank because the stored geometry
	// names a 4-rank organization.
	fp := "sha256:" + strings.Repeat("4a", 32)
	h := core.SweepHeader{Format: 1, Kind: string(core.KindHCFirst), Fingerprint: fp, Cells: len(recs), Generation: 1}
	var buf bytes.Buffer
	if err := core.EncodeRecords(&buf, h, recs); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.Meta{Fingerprint: fp, Kind: string(core.KindHCFirst), Cells: len(recs), Geometry: "HBM3_16Gb_4R"}, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	figSpec, err := FigureSpec("figrank", fp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(st).Run(figSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceColumnar {
		t.Errorf("figrank source = %q, want %q", res.Source, SourceColumnar)
	}
	var ranks []string
	for _, g := range res.Aggregate.Groups {
		ranks = append(ranks, g.Key[1])
	}
	if len(ranks) != 3 || ranks[0] != "0" || ranks[1] != "1" || ranks[2] != "2" {
		t.Errorf("figrank rank keys = %v", ranks)
	}
}
