package query

import (
	"bytes"
	"testing"

	"hbmrd/internal/core"
	"hbmrd/internal/pattern"
	"hbmrd/internal/store"
)

const benchSweepFP = "sha256:" + "beefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeefbeef"

// benchHCFirstRecords synthesizes a deterministic Fig5-shaped HCFirst
// sweep: 2 chips x 2 channels x 4 patterns (+WCDP folding) over enough
// rows to make the per-record decode cost visible.
func benchHCFirstRecords(n int) []core.HCFirstRecord {
	pats := pattern.All()
	recs := make([]core.HCFirstRecord, 0, n)
	for i := 0; len(recs) < n; i++ {
		chip := (i / 2048) * 3 % 7
		recs = append(recs, core.HCFirstRecord{
			Chip:    chip,
			Channel: i / 1024 % 2,
			Pseudo:  i % 2,
			Bank:    i % 32,
			Row:     64 + i%512,
			Pattern: pats[i%len(pats)],
			WCDP:    i%5 == 4,
			HCFirst: 10_000 + (i*37)%40_000,
			Found:   i%11 != 0,
		})
	}
	return recs
}

// benchEngine finalizes the synthetic sweep into a fresh store (JSONL
// plus columnar artifact) and returns an engine plus the Fig5 spec.
func benchEngine(b *testing.B, n int) (*Engine, Spec) {
	b.Helper()
	recs := benchHCFirstRecords(n)
	h := core.SweepHeader{Format: 1, Kind: string(core.KindHCFirst), Fingerprint: benchSweepFP, Cells: n, Generation: 1}
	var buf bytes.Buffer
	if err := core.EncodeRecords(&buf, h, recs); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put(store.Meta{Fingerprint: benchSweepFP, Kind: h.Kind, Cells: n}, bytes.NewReader(buf.Bytes())); err != nil {
		b.Fatal(err)
	}
	if !st.HasColumnar(benchSweepFP) {
		b.Fatal("benchmark sweep finalized without a columnar artifact")
	}
	spec, err := FigureSpec("fig5", benchSweepFP)
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(st), spec
}

// BenchmarkQueryFig5ColdMiss measures the derived-cache miss path end to
// end - store read, decode, filter/group/reduce - once per stored
// representation. The jsonl sub-benchmark is the pre-columnar baseline;
// the columnar one is what Engine.Run actually pays on a miss.
func BenchmarkQueryFig5ColdMiss(b *testing.B) {
	for _, src := range []string{SourceJSONL, SourceColumnar} {
		b.Run(src, func(b *testing.B) {
			eng, spec := benchEngine(b, 16*1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.RunCold(spec, src)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Aggregate.Groups) == 0 {
					b.Fatal("empty aggregate")
				}
			}
		})
	}
}

// BenchmarkColumnarDecode isolates the artifact decode from the query on
// top of it: bytes in memory to a ColumnSet ready for ComputeColumnar.
func BenchmarkColumnarDecode(b *testing.B) {
	n := 16 * 1024
	recs := benchHCFirstRecords(n)
	h := core.SweepHeader{Format: 1, Kind: string(core.KindHCFirst), Fingerprint: benchSweepFP, Cells: n, Generation: 1}
	var art bytes.Buffer
	if err := core.EncodeColumnar(&art, h, recs); err != nil {
		b.Fatal(err)
	}
	data := art.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := core.DecodeColumnar(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if cs.Len() != n {
			b.Fatal("short decode")
		}
	}
}
