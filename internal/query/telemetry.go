package query

import (
	"time"

	"hbmrd/internal/telemetry"
)

// Query-engine metrics. Run (the served path) is instrumented;
// RunCold is the equivalence harness's explicit-path entry and stays
// out of the series so test traffic does not pollute hit-rate math.
var (
	mQueryRuns      = telemetry.Default.Counter("hbmrd_query_runs_total")
	mCacheHits      = telemetry.Default.Counter("hbmrd_query_cache_hits_total")
	mCacheMisses    = telemetry.Default.Counter("hbmrd_query_cache_misses_total")
	mSourceCache    = telemetry.Default.Counter("hbmrd_query_source_total", telemetry.L("source", SourceCache))
	mSourceColumnar = telemetry.Default.Counter("hbmrd_query_source_total", telemetry.L("source", SourceColumnar))
	mSourceJSONL    = telemetry.Default.Counter("hbmrd_query_source_total", telemetry.L("source", SourceJSONL))
	mColumnarDrops  = telemetry.Default.Counter("hbmrd_query_columnar_quarantines_total")
	mQuerySeconds   = telemetry.Default.Histogram("hbmrd_query_seconds", telemetry.DurationBuckets)
)

func init() {
	telemetry.Default.Help("hbmrd_query_runs_total", "Queries answered by Engine.Run (cache hits and misses).")
	telemetry.Default.Help("hbmrd_query_cache_hits_total", "Queries answered from the derived cache.")
	telemetry.Default.Help("hbmrd_query_cache_misses_total", "Queries that recomputed from stored sweep bytes.")
	telemetry.Default.Help("hbmrd_query_source_total", "Queries by answering source: cache, columnar, or jsonl.")
	telemetry.Default.Help("hbmrd_query_columnar_quarantines_total", "Corrupt columnar twins dropped on the query cold path.")
	telemetry.Default.Help("hbmrd_query_seconds", "Engine.Run wall time, hits and misses together.")
}

// observe records one completed Run.
func (e *Engine) observe(start time.Time, cspec Spec, res *Result) {
	mQueryRuns.Inc()
	if res.CacheHit {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	switch res.Source {
	case SourceCache:
		mSourceCache.Inc()
	case SourceColumnar:
		mSourceColumnar.Inc()
	case SourceJSONL:
		mSourceJSONL.Inc()
	}
	mQuerySeconds.Observe(time.Since(start).Seconds())
	if e.Trace != nil {
		e.Trace.Emit(cspec.Sweep, "query", start,
			"source", res.Source, "cache_hit", res.CacheHit)
	}
}
