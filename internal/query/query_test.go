package query

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/stats"
	"hbmrd/internal/store"
)

func TestCanonicalSpec(t *testing.T) {
	t.Parallel()
	c, err := Spec{
		Sweep:    " sha256:abc ",
		GroupBy:  []string{" Chip ", "PATTERN_LABEL"},
		Metric:   " HCFirst ",
		Where:    []Cond{{Dim: "Found", Value: "true"}},
		Reducers: []string{"Box", "box", "COUNT"},
		// Unused reducer parameters must be stripped from the canonical
		// form so they cannot fragment the cache key.
		Percentiles: []float64{50},
		Edges:       []float64{0, 1},
	}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Sweep:    "sha256:abc",
		GroupBy:  []string{"chip", "pattern_label"},
		Metric:   "hcfirst",
		Where:    []Cond{{Dim: "found", Op: "eq", Value: "true"}},
		Reducers: []string{"box", "count"},
	}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("canonical = %+v, want %+v", c, want)
	}

	// Two spellings of the same query share one derived key; a different
	// query gets a different key.
	k1, err := DerivedKey(Spec{Sweep: "sha256:abc", Metric: "HCFirst", GroupBy: []string{"Chip"}})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := DerivedKey(Spec{Sweep: "sha256:abc", Metric: "hcfirst", GroupBy: []string{"chip"}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent specs keyed differently: %s vs %s", k1, k2)
	}
	k3, err := DerivedKey(Spec{Sweep: "sha256:abc", Metric: "hcfirst", GroupBy: []string{"channel"}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different specs share a derived key")
	}

	for _, bad := range []Spec{
		{}, // no metric
		{Metric: "hcfirst", Reducers: []string{"avg"}},                               // unknown reducer
		{Metric: "hcfirst", Where: []Cond{{Dim: "chip", Op: "like", Value: "1"}}},    // unknown op
		{Metric: "hcfirst", Reducers: []string{"percentiles"}},                       // missing ps
		{Metric: "hcfirst", Reducers: []string{"histogram"}, Edges: []float64{3, 1}}, // bad edges
	} {
		if _, err := bad.Canonical(); !errors.Is(err, ErrSpec) {
			t.Errorf("spec %+v: err = %v, want ErrSpec", bad, err)
		}
	}
}

// fig5Records is a hand-built HCFirst record set with known structure:
// two chips, two patterns plus a WCDP record, one not-found row.
func fig5Records() []core.HCFirstRecord {
	return []core.HCFirstRecord{
		{Chip: 0, Channel: 0, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 20000, Found: true},
		{Chip: 0, Channel: 0, Row: 10, Pattern: pattern.Checkered0, HCFirst: 30000, Found: true},
		{Chip: 0, Channel: 0, Row: 10, Pattern: pattern.Rowstripe0, WCDP: true, HCFirst: 20000, Found: true},
		{Chip: 0, Channel: 1, Row: 11, Pattern: pattern.Rowstripe0, HCFirst: 26000, Found: true},
		{Chip: 0, Channel: 1, Row: 11, Pattern: pattern.Checkered0, Found: false},
		{Chip: 0, Channel: 1, Row: 11, Pattern: pattern.Rowstripe0, WCDP: true, HCFirst: 26000, Found: true},
		{Chip: 3, Channel: 0, Row: 10, Pattern: pattern.Rowstripe0, HCFirst: 40000, Found: true},
		{Chip: 3, Channel: 0, Row: 10, Pattern: pattern.Rowstripe0, WCDP: true, HCFirst: 40000, Found: true},
	}
}

func TestComputeFig5Aggregation(t *testing.T) {
	t.Parallel()
	spec, err := FigureSpec("fig5", "sha256:test")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Compute(core.KindHCFirst, fig5Records(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Records != 8 || agg.Matched != 7 {
		t.Errorf("records/matched = %d/%d, want 8/7 (one not-found row filtered)", agg.Records, agg.Matched)
	}
	// Groups sort chip-numerically, then by label.
	wantKeys := [][]string{
		{"0", "Checkered0"}, {"0", "Rowstripe0"}, {"0", "WCDP"},
		{"3", "Rowstripe0"}, {"3", "WCDP"},
	}
	if len(agg.Groups) != len(wantKeys) {
		t.Fatalf("%d groups, want %d", len(agg.Groups), len(wantKeys))
	}
	for i, g := range agg.Groups {
		if !reflect.DeepEqual(g.Key, wantKeys[i]) {
			t.Errorf("group %d key = %v, want %v", i, g.Key, wantKeys[i])
		}
	}
	// Chip 0 / Rowstripe0 box over {20000, 26000} must equal stats.Box.
	g := agg.Groups[1]
	want := stats.Box([]float64{20000, 26000})
	if g.Count != 2 || g.Box == nil ||
		g.Box.Min != want.Min || g.Box.Median != want.Median || g.Box.Max != want.Max || g.Box.Mean != want.Mean {
		t.Errorf("chip0/Rowstripe0 box = %+v, want %+v", g.Box, want)
	}
}

func TestComputeFilterAndReducers(t *testing.T) {
	t.Parallel()
	recs := fig5Records()
	agg, err := Compute(core.KindHCFirst, recs, Spec{
		Sweep:  "sha256:test",
		Metric: "hcfirst",
		Where: []Cond{
			{Dim: "wcdp", Value: "false"},
			{Dim: "found", Value: "true"},
			{Dim: "hcfirst", Op: "ge", Value: "26000"},
		},
		Reducers:    []string{"count", "mean", "min", "max", "median", "stddev", "cv", "percentiles", "histogram"},
		Percentiles: []float64{50, 90},
		Edges:       []float64{0, 35000, 50000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three non-WCDP found records at >= 26000: 30000, 26000, 40000.
	if len(agg.Groups) != 1 {
		t.Fatalf("%d groups, want 1 (no group-by)", len(agg.Groups))
	}
	g := agg.Groups[0]
	if g.Count != 3 || g.Mean == nil || *g.Mean != 32000 {
		t.Errorf("count/mean = %d/%v", g.Count, g.Mean)
	}
	if *g.Min != 26000 || *g.Max != 40000 || *g.Median != 30000 {
		t.Errorf("min/median/max = %v/%v/%v", *g.Min, *g.Median, *g.Max)
	}
	if len(g.Percentiles) != 2 || g.Percentiles[0].P != 50 || *g.Percentiles[0].Value != 30000 {
		t.Errorf("percentiles = %+v", g.Percentiles)
	}
	if len(g.Histogram) != 2 || g.Histogram[0].Count != 2 || g.Histogram[1].Count != 1 {
		t.Errorf("histogram = %+v", g.Histogram)
	}

	// Unknown dimension and metric are spec errors naming the kind.
	if _, err := Compute(core.KindHCFirst, recs, Spec{Metric: "ber_percent"}); !errors.Is(err, ErrSpec) {
		t.Errorf("wrong metric: %v", err)
	}
	if _, err := Compute(core.KindHCFirst, recs, Spec{Metric: "hcfirst", GroupBy: []string{"dummies"}}); !errors.Is(err, ErrSpec) {
		t.Errorf("wrong dim: %v", err)
	}
}

// runTinyHCFirstToFile performs the `hbmrd -out` flow: a small HCFirst
// sweep streamed to a JSONL file through a file sink.
func runTinyHCFirstToFile(t *testing.T, path string) {
	t.Helper()
	fleet, err := core.NewFleet([]int{0, 3}, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sink := core.NewJSONLFileSink(f)
	if _, err := core.RunHCFirstContext(context.Background(), fleet, core.HCFirstConfig{
		Channels: []int{0, 1}, Rows: core.SampleRows(2),
		Patterns: []pattern.Pattern{pattern.Rowstripe0, pattern.Checkered0}, Reps: 1,
	}, core.WithSink(sink)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFig5CacheByteIdentity is the acceptance flow: a sweep
// produced by the -out file sink, ingested into the store, reproduces the
// Fig 5 aggregation; running the identical spec again is served from the
// derived cache byte-identically without re-reading the raw records - and
// an independent engine over the same store (the CLI against a store the
// service populated) returns the same bytes with zero raw reads.
func TestEngineFig5CacheByteIdentity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "hcfirst.jsonl")
	runTinyHCFirstToFile(t, path)

	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := Ingest(st, path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "hcfirst" || meta.Records == 0 || meta.Bytes == 0 {
		t.Fatalf("ingested meta = %+v", meta)
	}

	spec, err := FigureSpec("fig5", meta.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st)
	first, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first run reported a cache hit")
	}
	if eng.RawReads() != 1 {
		t.Errorf("first run made %d raw reads, want 1", eng.RawReads())
	}
	if len(first.Aggregate.Groups) == 0 {
		t.Fatal("fig5 aggregate has no groups")
	}

	second, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical spec missed the derived cache")
	}
	if eng.RawReads() != 1 {
		t.Errorf("cache hit re-read the raw records (%d raw reads)", eng.RawReads())
	}
	if !bytes.Equal(first.JSON, second.JSON) {
		t.Error("cache hit returned different aggregate bytes")
	}

	// A fresh engine (the CLI path over the same store) serves the same
	// bytes from the cache without touching the raw records at all.
	cli := NewEngine(st)
	third, err := cli.Run(Spec{
		Sweep:    meta.Fingerprint,
		GroupBy:  []string{"CHIP", "Pattern_Label"}, // equivalent spelling
		Metric:   "HCFIRST",
		Where:    []Cond{{Dim: "found", Value: "true"}},
		Reducers: []string{"box"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit || cli.RawReads() != 0 {
		t.Errorf("fresh engine: hit=%v rawReads=%d, want hit with 0 raw reads", third.CacheHit, cli.RawReads())
	}
	if !bytes.Equal(first.JSON, third.JSON) {
		t.Error("CLI-path aggregate bytes differ from the service-path bytes")
	}

	// The rendered forms are deterministic functions of the aggregate.
	if first.Aggregate.CSV() != third.Aggregate.CSV() {
		t.Error("CSV renders differ between cache paths")
	}
	header, rows := first.Aggregate.Table()
	if len(header) == 0 || len(rows) != len(first.Aggregate.Groups) {
		t.Errorf("table form: %d header cols, %d rows", len(header), len(rows))
	}

	// Unknown sweep maps to the store's not-found error.
	if _, err := eng.Run(Spec{Sweep: "sha256:" + strings.Repeat("ab", 32), Metric: "hcfirst"}); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown sweep: %v, want ErrNotFound", err)
	}
}

func TestIngestRejectsPartialSweeps(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "hcfirst.jsonl")
	runTinyHCFirstToFile(t, path)
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: the final line lost its newline.
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, torn); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Errorf("torn file ingested: %v", err)
	}

	// Whole lines, but fewer records than the plan has cells.
	headerEnd := bytes.IndexByte(full, '\n') + 1
	cut := bytes.IndexByte(full[headerEnd:], '\n') + headerEnd + 1
	short := filepath.Join(dir, "short.jsonl")
	if err := os.WriteFile(short, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, short); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("short file ingested: %v", err)
	}

	// Not a sweep file at all.
	junk := filepath.Join(dir, "junk.jsonl")
	if err := os.WriteFile(junk, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, junk); err == nil {
		t.Error("junk file ingested")
	}
}

// TestIngestRejectsCellBoundaryTruncation is the regression test for the
// multi-record-per-cell gap: a BER sweep cancelled at a cell boundary
// leaves only clean, WCDP-terminated runs - its record count can exceed
// its cell count even though most cells never ran - and must still be
// rejected. Completeness comes from counting covered cells against the
// header's plan, not from comparing records to cells.
func TestIngestRejectsCellBoundaryTruncation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fleet, err := core.NewFleet([]int{0}, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ber.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := core.NewJSONLFileSink(f)
	// 8 cells (2 channels x 4 rows), 5 records per cell (4 patterns+WCDP):
	// two whole cells already exceed the plan's cell count in records.
	if _, err := core.RunBERContext(context.Background(), fleet, core.BERConfig{
		Channels: []int{0, 1}, Rows: core.SampleRows(4), Reps: 1,
	}, core.WithSink(sink)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	// Header + two whole cells (10 records > 8 cells), cut on a boundary.
	cut := bytes.Join(lines[:1+2*5], nil)
	part := filepath.Join(dir, "part.jsonl")
	if err := os.WriteFile(part, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, part); err == nil || !strings.Contains(err.Error(), "2 of 8") {
		t.Errorf("cell-boundary truncation ingested: %v", err)
	}
	// Mid-cell cut (whole lines, WCDP missing) is also rejected.
	midCut := bytes.Join(lines[:1+2*5+3], nil)
	mid := filepath.Join(dir, "mid.jsonl")
	if err := os.WriteFile(mid, midCut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, mid); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("mid-cell truncation ingested: %v", err)
	}
	// The whole file still ingests.
	if _, err := Ingest(st, path); err != nil {
		t.Errorf("complete sweep rejected: %v", err)
	}
	// Aging files cannot prove completeness and are rejected outright.
	agingPath := filepath.Join(dir, "aging.jsonl")
	af, err := os.Create(agingPath)
	if err != nil {
		t.Fatal(err)
	}
	asink := core.NewJSONLFileSink(af)
	if _, err := core.RunAgingContext(context.Background(), fleet, core.AgingConfig{
		BER: core.BERConfig{Channels: []int{0}, Rows: core.SampleRows(1), Reps: 1,
			Patterns: []pattern.Pattern{pattern.Checkered1}},
	}, core.WithSink(asink)); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Ingest(st, agingPath); err == nil || !strings.Contains(err.Error(), "aging") {
		t.Errorf("aging file ingested: %v", err)
	}
}

func TestCatalogFind(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	content := func(fp string) string {
		return `{"hbmrd_sweep":1,"kind":"ber","fingerprint":"` + fp + `","cells":1,"generation":1}` + "\n" + `{"Chip":0}` + "\n"
	}
	put := func(fp string, m store.Meta) {
		m.Fingerprint, m.Cells = fp, 1
		if err := st.Put(m, strings.NewReader(content(fp))); err != nil {
			t.Fatal(err)
		}
	}
	fpA := "sha256:" + strings.Repeat("aa", 32)
	fpB := "sha256:" + strings.Repeat("bb", 32)
	fpC := "sha256:" + strings.Repeat("cc", 32)
	put(fpA, store.Meta{Kind: "ber", Geometry: "HBM2_8Gb", Chips: []int{0, 5}, Config: []byte(`{"Reps":1}`)})
	put(fpB, store.Meta{Kind: "hcfirst", Geometry: "HBM3_16Gb", Chips: []int{0}})
	put(fpC, store.Meta{Kind: "ber"}) // ingested bare: no catalog metadata

	cat, err := NewCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 3 {
		t.Fatalf("catalog holds %d sweeps, want 3", cat.Len())
	}
	if got := cat.Find(ByKind("ber")); len(got) != 2 {
		t.Errorf("ByKind(ber) = %d entries, want 2", len(got))
	}
	if got := cat.Find(ByGeometry("HBM3_16Gb")); len(got) != 1 || got[0].Fingerprint != fpB {
		t.Errorf("ByGeometry = %+v", got)
	}
	if got := cat.Find(ByChips(5, 0)); len(got) != 1 || got[0].Fingerprint != fpA {
		t.Errorf("ByChips(5,0) = %+v", got)
	}
	if got := cat.Find(ByConfig(func(raw json.RawMessage) bool { return strings.Contains(string(raw), "Reps") })); len(got) != 1 {
		t.Errorf("ByConfig = %d entries, want 1", len(got))
	}
	if got := cat.Find(ByKind("ber"), ByGeometry("HBM2_8Gb")); len(got) != 1 || got[0].Fingerprint != fpA {
		t.Errorf("conjunction = %+v", got)
	}
}

func TestFigureSpecUnknown(t *testing.T) {
	t.Parallel()
	if _, err := FigureSpec("fig999", "sha256:x"); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown figure: %v", err)
	}
}
