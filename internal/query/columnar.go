package query

import (
	"fmt"

	"hbmrd/internal/core"
)

// ComputeColumnar runs one aggregation directly over a sweep's columnar
// artifact: filters evaluate as column scans, group keys read the
// dimension arrays, and reducers consume the metric arrays - no typed
// record slice and no per-record row maps are ever materialized. It
// feeds the same computeOver pipeline as Compute, so for the same
// records and Env the two produce byte-identical Aggregates; Compute
// over the decoded JSONL stays the reference oracle.
func ComputeColumnar(cs *core.ColumnSet, spec Spec, env Env) (*Aggregate, error) {
	cspec, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	src, err := columnarSource(cs, env)
	if err != nil {
		return nil, err
	}
	return computeOver(core.Kind(cs.Header.Kind), src, cspec)
}

// columnarSource builds the per-kind dimension and metric accessors over
// a decoded column set. The formatting of every dimension value matches
// flatten exactly - dInt/dInt64/dBool/dStr over the same inputs - which
// is what keeps group keys, sort order, and aggregate bytes identical
// across the two paths.
func columnarSource(cs *core.ColumnSet, env Env) (rowSource, error) {
	kind := core.Kind(cs.Header.Kind)
	dims := map[string]func(i int) dimVal{}
	mets := map[string]func(i int) (float64, bool){}

	var missing []string
	need := func(name string) *core.Column {
		c := cs.Col(name)
		if c == nil {
			missing = append(missing, name)
		}
		return c
	}
	intDim := func(c *core.Column) func(int) dimVal {
		return func(i int) dimVal { return dInt(int(c.Int(i))) }
	}
	int64Dim := func(c *core.Column) func(int) dimVal {
		return func(i int) dimVal { return dInt64(c.Int(i)) }
	}
	boolDim := func(c *core.Column) func(int) dimVal {
		return func(i int) dimVal { return dBool(c.Bool(i)) }
	}
	floatMet := func(c *core.Column) func(int) (float64, bool) {
		return func(i int) (float64, bool) { return c.Float(i), true }
	}
	intMet := func(c *core.Column) func(int) (float64, bool) {
		return func(i int) (float64, bool) { return float64(c.Int(i)), true }
	}
	// patternCols wires the shared (pattern, pattern_label, wcdp) triple;
	// wcdp is nil for kinds whose records carry no WCDP flag (the label
	// then always equals the pattern, as flatten's wcdp=false does).
	patternCols := func(pat, wcdp *core.Column) {
		dims["pattern"] = func(i int) dimVal { return dStr(pat.Label(i)) }
		dims["pattern_label"] = func(i int) dimVal {
			if wcdp != nil && wcdp.Bool(i) {
				return dStr("WCDP")
			}
			return dStr(pat.Label(i))
		}
		if wcdp != nil {
			dims["wcdp"] = boolDim(wcdp)
		}
	}
	rankDim := func(bank *core.Column) func(int) dimVal {
		return func(i int) dimVal { return dInt(env.rankOf(int(bank.Int(i)))) }
	}

	switch kind {
	case core.KindBER:
		bank := need("Bank")
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["pseudo"] = intDim(need("Pseudo"))
		dims["bank"] = intDim(bank)
		dims["rank"] = rankDim(bank)
		dims["row"] = intDim(need("Row"))
		patternCols(need("Pattern"), need("WCDP"))
		mets["ber_percent"] = floatMet(need("BERPercent"))
	case core.KindHCFirst:
		bank := need("Bank")
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["pseudo"] = intDim(need("Pseudo"))
		dims["bank"] = intDim(bank)
		dims["rank"] = rankDim(bank)
		dims["row"] = intDim(need("Row"))
		dims["found"] = boolDim(need("Found"))
		patternCols(need("Pattern"), need("WCDP"))
		mets["hcfirst"] = intMet(need("HCFirst"))
	case core.KindHCNth:
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["row"] = intDim(need("Row"))
		dims["found"] = boolDim(need("Found"))
		patternCols(need("Pattern"), nil)
		hc := need("HC")
		mets["flips"] = func(i int) (float64, bool) { return float64(len(hc.IntLists[i])), true }
		mets["hc_first"] = func(i int) (float64, bool) {
			l := hc.IntLists[i]
			if len(l) == 0 {
				return 0, false
			}
			return float64(l[0]), true
		}
		mets["hc_last"] = func(i int) (float64, bool) {
			l := hc.IntLists[i]
			if len(l) == 0 {
				return 0, false
			}
			return float64(l[len(l)-1]), true
		}
		mets["additional"] = func(i int) (float64, bool) {
			l := hc.IntLists[i]
			if len(l) == 0 {
				return 0, false
			}
			return float64(l[len(l)-1] - l[0]), true
		}
	case core.KindVariability:
		dims["chip"] = intDim(need("Chip"))
		dims["row"] = intDim(need("Row"))
		dims["measured"] = boolDim(need("MeasuredRatios"))
		minHC, maxHC := need("MinHC"), need("MaxHC")
		mets["min_hc"] = intMet(minHC)
		mets["max_hc"] = intMet(maxHC)
		mets["ratio"] = func(i int) (float64, bool) {
			mn := minHC.Int(i)
			if mn == 0 {
				return 0, true
			}
			return float64(maxHC.Int(i)) / float64(mn), true
		}
	case core.KindRowPressBER:
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["tagg_on"] = int64Dim(need("TAggON"))
		mets["ber_percent"] = floatMet(need("BERPercent"))
		mets["retention_ber_percent"] = floatMet(need("RetentionBERPercent"))
		mets["rows"] = intMet(need("Rows"))
	case core.KindRowPressHC:
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["row"] = intDim(need("Row"))
		dims["tagg_on"] = int64Dim(need("TAggON"))
		dims["found"] = boolDim(need("Found"))
		dims["within_window"] = boolDim(need("WithinWindow"))
		mets["hcfirst"] = intMet(need("HCFirst"))
	case core.KindBypass:
		dims["chip"] = intDim(need("Chip"))
		dims["row"] = intDim(need("Row"))
		dims["dummies"] = intDim(need("Dummies"))
		dims["agg_acts"] = intDim(need("AggActs"))
		mets["ber_percent"] = floatMet(need("BERPercent"))
	case core.KindAging:
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["row"] = intDim(need("Row"))
		oldBER, newBER := need("OldBERPercent"), need("NewBERPercent")
		mets["old_ber_percent"] = floatMet(oldBER)
		mets["new_ber_percent"] = floatMet(newBER)
		mets["delta_ber_percent"] = func(i int) (float64, bool) {
			return newBER.Float(i) - oldBER.Float(i), true
		}
	case core.KindVRD:
		bank := need("Bank")
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["pseudo"] = intDim(need("Pseudo"))
		dims["bank"] = intDim(bank)
		dims["rank"] = rankDim(bank)
		dims["row"] = intDim(need("Row"))
		patternCols(need("Pattern"), nil)
		found := need("Found")
		dims["measured"] = func(i int) dimVal { return dBool(found.Int(i) > 0) }
		minHC, maxHC := need("MinHC"), need("MaxHC")
		mets["min_hc"] = intMet(minHC)
		mets["max_hc"] = intMet(maxHC)
		mets["mean_hc"] = floatMet(need("MeanHC"))
		mets["phc"] = intMet(need("PHC"))
		mets["ratio"] = func(i int) (float64, bool) {
			mn := minHC.Int(i)
			if mn == 0 {
				return 0, true
			}
			return float64(maxHC.Int(i)) / float64(mn), true
		}
		mets["found"] = intMet(found)
		mets["trials"] = intMet(need("Trials"))
	case core.KindColDisturb:
		bank := need("Bank")
		dims["chip"] = intDim(need("Chip"))
		dims["channel"] = intDim(need("Channel"))
		dims["pseudo"] = intDim(need("Pseudo"))
		dims["bank"] = intDim(bank)
		dims["rank"] = rankDim(bank)
		dims["row"] = intDim(need("Row"))
		dims["distance"] = intDim(need("Distance"))
		dims["stripe"] = intDim(need("Stripe"))
		dims["found"] = boolDim(need("Found"))
		mets["flips"] = intMet(need("Flips"))
		mets["first_disturb"] = intMet(need("FirstDisturb"))
		mets["reads"] = intMet(need("Reads"))
	default:
		return rowSource{}, fmt.Errorf("query: unsupported columnar sweep kind %q", cs.Header.Kind)
	}
	if len(missing) > 0 {
		return rowSource{}, fmt.Errorf("query: columnar %s sweep lacks columns %v", kind, missing)
	}

	return rowSource{
		n:      cs.Len(),
		dim:    func(name string) func(i int) dimVal { return dims[name] },
		metric: func(name string) func(i int) (float64, bool) { return mets[name] },
	}, nil
}
