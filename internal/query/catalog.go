package query

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"hbmrd/internal/core"
	"hbmrd/internal/store"
)

// Catalog is an index over every finished sweep a store holds: the header
// metadata (kind, cells, records, bytes, generation) plus whatever spec
// metadata the producer recorded (geometry preset, chip set, raw config).
// Build one with NewCatalog; it is a point-in-time snapshot - rebuild to
// see sweeps finished since.
type Catalog struct {
	entries []store.Meta
}

// NewCatalog indexes the store's finished sweeps, sorted by fingerprint.
func NewCatalog(s *store.Store) (*Catalog, error) {
	metas, err := s.List()
	if err != nil {
		return nil, err
	}
	return &Catalog{entries: metas}, nil
}

// Len reports how many sweeps the catalog indexes.
func (c *Catalog) Len() int { return len(c.entries) }

// List returns every indexed sweep.
func (c *Catalog) List() []store.Meta {
	return append([]store.Meta(nil), c.entries...)
}

// Filter is one catalog predicate; Find keeps entries matching all of its
// filters.
type Filter func(store.Meta) bool

// ByKind keeps sweeps of one experiment kind.
func ByKind(kind string) Filter {
	return func(m store.Meta) bool { return m.Kind == kind }
}

// ByGeometry keeps sweeps run on one chip organization preset. Sweeps
// ingested from bare JSONL files carry no geometry metadata and never
// match.
func ByGeometry(preset string) Filter {
	return func(m store.Meta) bool { return m.Geometry == preset }
}

// ByRanks keeps sweeps run on organizations with the given rank count per
// pseudo channel. Sweeps stored before the rank dimension existed carry 0
// and are treated as single-rank.
func ByRanks(ranks int) Filter {
	return func(m store.Meta) bool {
		got := m.Ranks
		if got == 0 {
			got = 1
		}
		return got == ranks
	}
}

// ByMinDataRate keeps sweeps whose geometry preset carries a per-pin data
// rate of at least min Mbps. Hand-rolled presets record no rate and never
// match.
func ByMinDataRate(min int) Filter {
	return func(m store.Meta) bool { return m.DataRateMbps >= min && m.DataRateMbps > 0 }
}

// ByChips keeps sweeps whose chip set is exactly the given indices
// (order-insensitive).
func ByChips(chips ...int) Filter {
	want := append([]int(nil), chips...)
	sort.Ints(want)
	return func(m store.Meta) bool {
		if len(m.Chips) != len(want) {
			return false
		}
		got := append([]int(nil), m.Chips...)
		sort.Ints(got)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
}

// ByConfig keeps sweeps whose recorded raw config satisfies the
// predicate. Sweeps without recorded configs never match.
func ByConfig(pred func(json.RawMessage) bool) Filter {
	return func(m store.Meta) bool { return len(m.Config) > 0 && pred(m.Config) }
}

// Find returns the entries matching every filter, in fingerprint order.
func (c *Catalog) Find(filters ...Filter) []store.Meta {
	var out []store.Meta
entryLoop:
	for _, m := range c.entries {
		for _, f := range filters {
			if !f(m) {
				continue entryLoop
			}
		}
		out = append(out, m)
	}
	return out
}

// Ingest finalizes a completed sweep JSONL file - typically one written by
// `hbmrd -out` - into the store under its header fingerprint, and returns
// the stored metadata. The file must be provably whole: it is decoded
// through the kind's record type (rejecting torn tails and malformed
// lines) and checked against the header's plan via core.VerifyComplete,
// so an interrupted sweep - which should be resumed with `hbmrd -resume`,
// not served as finished data - can never poison its fingerprint in the
// store. Aging sweeps cannot prove completeness from the file alone and
// are rejected; they enter a store through hbmrdd, which witnesses the
// run finish.
func Ingest(s *store.Store, path string) (store.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return store.Meta{}, err
	}
	defer f.Close()
	h, recs, err := core.DecodeRecords("", f)
	if err != nil {
		return store.Meta{}, fmt.Errorf("query: ingesting %s: %w", path, err)
	}
	if err := core.VerifyComplete(h, recs); err != nil {
		return store.Meta{}, fmt.Errorf("query: ingesting %s: %w (resume the sweep instead of ingesting it)", path, err)
	}
	meta := store.Meta{
		Fingerprint: h.Fingerprint,
		Kind:        h.Kind,
		Cells:       h.Cells,
		Generation:  h.Generation,
	}
	if err := s.PutFile(meta, path); err != nil {
		return store.Meta{}, err
	}
	// Backfill the columnar artifact for objects finalized before the
	// format existed (a no-op when the finalize above - or a past one -
	// already wrote it). Best-effort: the JSONL object is the contract,
	// the artifact only speeds up cold queries.
	_ = s.EnsureColumnar(meta.Fingerprint)
	// Read back the finalized metadata: Put computed Records and Bytes
	// (and an identical earlier object may have won the finalize race).
	_, stored, err := s.Path(meta.Fingerprint)
	if err != nil {
		return store.Meta{}, err
	}
	return *stored, nil
}
