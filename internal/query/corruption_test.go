package query

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// corruptTwin locates the store's single results.hbmc and rewrites it via
// mutate (bit-flip, truncation, ...).
func corruptTwin(t *testing.T, storeDir string, mutate func([]byte) []byte) {
	t.Helper()
	twins, err := filepath.Glob(filepath.Join(storeDir, "objects", "*", "*", "results.hbmc"))
	if err != nil || len(twins) != 1 {
		t.Fatalf("columnar twins = %v (err %v), want exactly one", twins, err)
	}
	b, err := os.ReadFile(twins[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(twins[0], mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptColumnarTwinFallsBackToJSONL is the store's graceful-
// degradation contract: a columnar twin that no longer decodes is a cache
// miss, not an error - the engine logs it, drops the corrupt artifact,
// answers byte-identically from the JSONL of record, and re-transcodes a
// fresh twin so the next cold query is fast again.
func TestCorruptColumnarTwinFallsBackToJSONL(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		// One flipped bit inside the embedded header's fingerprint: the
		// artifact either stops parsing or identifies the wrong sweep.
		{"bitflip", func(b []byte) []byte {
			i := bytes.Index(b, []byte("sha256:"))
			if i < 0 {
				t.Fatal("twin carries no fingerprint bytes")
			}
			b[i+len("sha256:")+3] ^= 0x10
			return b
		}},
		// A torn twin (crashed writer, partial disk): decode fails mid-
		// payload.
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			path := filepath.Join(dir, "hcfirst.jsonl")
			runTinyHCFirstToFile(t, path)
			st, err := store.Open(filepath.Join(dir, "store"))
			if err != nil {
				t.Fatal(err)
			}
			meta, err := Ingest(st, path)
			if err != nil {
				t.Fatal(err)
			}
			fp := meta.Fingerprint
			if !st.HasColumnar(fp) {
				t.Fatal("ingest wrote no columnar twin")
			}
			spec, err := FigureSpec("fig5", fp)
			if err != nil {
				t.Fatal(err)
			}
			// Reference aggregate straight from the JSONL of record,
			// bypassing the derived cache on both ends.
			ref, err := NewEngine(st).RunCold(spec, SourceJSONL)
			if err != nil {
				t.Fatal(err)
			}

			corruptTwin(t, filepath.Join(dir, "store"), tc.mutate)

			var logs strings.Builder
			eng := NewEngine(st)
			eng.Log = telemetry.NewLogger(func(format string, args ...any) { fmt.Fprintf(&logs, format+"\n", args...) })
			got, err := eng.Run(spec)
			if err != nil {
				t.Fatalf("query over corrupt twin errored: %v", err)
			}
			if got.Source != SourceJSONL {
				t.Errorf("Source = %s, want %s (JSONL fallback)", got.Source, SourceJSONL)
			}
			if !bytes.Equal(got.JSON, ref.JSON) {
				t.Error("fallback aggregate is not byte-identical to the JSONL reference")
			}
			if !strings.Contains(logs.String(), "unreadable") {
				t.Errorf("quarantine was not logged: %q", logs.String())
			}
			// The corrupt artifact was dropped and re-transcoded from the
			// JSONL; the fresh twin serves the same bytes on the fast path.
			if !st.HasColumnar(fp) {
				t.Fatal("twin was not re-transcoded after the drop")
			}
			again, err := NewEngine(st).RunCold(spec, SourceColumnar)
			if err != nil {
				t.Fatalf("re-transcoded twin does not decode: %v", err)
			}
			if !bytes.Equal(again.JSON, ref.JSON) {
				t.Error("re-transcoded twin's aggregate diverges from the JSONL reference")
			}
		})
	}
}

// TestRejectedSpecDoesNotQuarantineTwin pins the boundary of the
// quarantine heuristic: a spec the engine rejects (unknown metric here)
// fails on ANY representation, so it must surface as ErrSpec without
// evicting the healthy columnar twin - otherwise every typo'd query
// would silently push the store back onto the slow JSONL path.
func TestRejectedSpecDoesNotQuarantineTwin(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "hcfirst.jsonl")
	runTinyHCFirstToFile(t, path)
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := Ingest(st, path)
	if err != nil {
		t.Fatal(err)
	}
	fp := meta.Fingerprint
	if !st.HasColumnar(fp) {
		t.Fatal("ingest wrote no columnar twin")
	}

	var logs strings.Builder
	eng := NewEngine(st)
	eng.Log = telemetry.NewLogger(func(format string, args ...any) { fmt.Fprintf(&logs, format+"\n", args...) })
	bad := Spec{Sweep: fp, Metric: "no_such_metric", Reducers: []string{"mean"}}
	if _, err := eng.Run(bad); !errors.Is(err, ErrSpec) {
		t.Fatalf("Run(bad spec) = %v, want ErrSpec", err)
	}
	if !st.HasColumnar(fp) {
		t.Fatal("rejected spec evicted the columnar twin")
	}
	if strings.Contains(logs.String(), "unreadable") {
		t.Errorf("rejected spec was logged as twin corruption: %q", logs.String())
	}
	// The twin still serves valid queries on the fast path.
	good, err := FigureSpec("fig5", fp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceColumnar {
		t.Errorf("Source after rejected spec = %s, want %s", res.Source, SourceColumnar)
	}
}
