// Package query is the read side of the sweep store: it decodes stored
// sweeps back into typed records, catalogs what the store holds, and runs
// aggregation pipelines - composable group-by over the sweep's dimensions
// with reducers built on internal/stats - so every paper figure is
// reproducible from stored data without re-executing the experiment.
//
// # Determinism contract
//
// Derived results are content-addressed: the cache key of an aggregate is
// a hash over (FormatGeneration, canonical query spec), and the canonical
// spec embeds the sweep fingerprint - which itself embeds the fault
// model's CodeGeneration. For that key to be honest, everything on the
// path from stored bytes to aggregate bytes must be deterministic:
//
//   - records decode in stream order, which is plan order by the engine's
//     contract, so the flattened row set has one fixed order;
//   - groups are keyed and sorted by their formatted key values (numeric
//     dimensions compare numerically), never by map iteration order;
//   - reducers come from internal/stats, which is pure over its input
//     slice, and non-finite outputs (a CV at mean zero) are nulled rather
//     than left to vary by encoding;
//   - the aggregate serializes through encoding/json over structs with a
//     fixed field order.
//
// Equal (sweep, spec) pairs therefore produce byte-identical aggregate
// JSON, which is what lets repeated queries be served from the store's
// derived cache without re-reading the raw records. Any change to the
// aggregate's shape or the pipeline's semantics MUST bump
// FormatGeneration so stale cached aggregates stop matching.
//
// # Cold-path selection
//
// On a derived-cache miss the engine has two ways to compute an
// aggregate: decode the stored JSONL into records and flatten them
// (the reference path), or stream the store's columnar twin
// (results.hbmc) directly into the group-by/filter/reduce loop without
// materializing records. Both paths implement the same rowSource
// interface and feed the single computeOver pipeline, so they are
// byte-identical by construction (asserted per figure preset by
// TestColumnarComputeEquivalence and forced through both paths by the
// query-smoke CI gate). Engine.Run prefers the columnar artifact and
// falls back to JSONL when it is missing or unreadable, backfilling the
// twin afterwards; Result.Source reports which path answered. Dimensions
// derived from the sweep's recorded geometry (the rank axis,
// rank = bank/banksPerRank) resolve through the same Env on both paths.
package query

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/stats"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// Env carries geometry-derived context the records themselves do not
// embed. The engine fills it from the stored sweep's preset; callers of
// the pure Compute functions pass it explicitly (the zero Env means
// single-rank: every record lands in rank 0).
type Env struct {
	// BanksPerRank derives the rank dimension from the flat bank address:
	// rank = bank / BanksPerRank (see hbm.Geometry.RankOfBank). Zero or
	// negative disables the split.
	BanksPerRank int
}

func (e Env) rankOf(bank int) int {
	if e.BanksPerRank <= 0 {
		return 0
	}
	return bank / e.BanksPerRank
}

// FormatGeneration versions the aggregate output format and the pipeline
// semantics. It feeds every derived-result cache key; bump it whenever the
// Aggregate shape, a reducer's definition, or a dimension's meaning
// changes, so cached aggregates from the old behaviour stop matching.
const FormatGeneration = 1

// ErrSpec marks a query spec the engine rejects (unknown dimension,
// malformed filter, missing metric, ...). Servers map it to a client
// error; everything else is an execution failure.
var ErrSpec = errors.New("query: invalid spec")

func specErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
}

// Spec is one aggregation query over one stored sweep. The JSON form is
// the wire format of hbmrdd's POST /query and the hbmrd query CLI verb.
type Spec struct {
	// Sweep is the fingerprint of the stored sweep to query.
	Sweep string `json:"sweep"`
	// GroupBy lists the dimensions to group records by, in output column
	// order (see Dimensions for a kind's vocabulary). Empty aggregates
	// everything into one group.
	GroupBy []string `json:"group_by,omitempty"`
	// Metric is the record field the reducers aggregate (see Metrics).
	Metric string `json:"metric"`
	// Where filters records before grouping.
	Where []Cond `json:"where,omitempty"`
	// Reducers names the aggregations to compute (default: count, mean).
	Reducers []string `json:"reducers,omitempty"`
	// Percentiles parameterizes the "percentiles" reducer (0 < p <= 100).
	Percentiles []float64 `json:"percentiles,omitempty"`
	// Edges parameterizes the "histogram" reducer: ascending bin edges.
	Edges []float64 `json:"edges,omitempty"`
}

// Cond is one record filter: dimension (or metric) Dim compared to Value
// under Op. Comparisons are numeric when both sides parse as numbers,
// lexicographic otherwise; booleans compare against "true"/"false".
type Cond struct {
	Dim string `json:"dim"`
	// Op is eq, ne, lt, le, gt or ge (default eq).
	Op    string `json:"op,omitempty"`
	Value string `json:"value"`
}

// reducerNames is the vocabulary of Spec.Reducers, in the canonical
// column order renderers use.
var reducerNames = []string{"count", "mean", "stddev", "cv", "min", "max", "median", "percentiles", "histogram", "box"}

func knownReducer(name string) bool {
	for _, r := range reducerNames {
		if r == name {
			return true
		}
	}
	return false
}

// Canonical normalizes and validates the spec: names are trimmed and
// lowercased, defaults filled (reducers: count+mean; ops: eq), duplicate
// reducers dropped, and unused reducer parameters stripped - so every
// spec that means the same query serializes to the same bytes. The
// canonical JSON of the result is the spec's identity in derived-result
// cache keys.
func (s Spec) Canonical() (Spec, error) {
	c := Spec{Sweep: strings.TrimSpace(s.Sweep)}
	for _, g := range s.GroupBy {
		c.GroupBy = append(c.GroupBy, strings.ToLower(strings.TrimSpace(g)))
	}
	c.Metric = strings.ToLower(strings.TrimSpace(s.Metric))
	if c.Metric == "" {
		return Spec{}, specErr("metric is required")
	}
	for _, w := range s.Where {
		cond := Cond{
			Dim:   strings.ToLower(strings.TrimSpace(w.Dim)),
			Op:    strings.ToLower(strings.TrimSpace(w.Op)),
			Value: strings.TrimSpace(w.Value),
		}
		if cond.Op == "" {
			cond.Op = "eq"
		}
		switch cond.Op {
		case "eq", "ne", "lt", "le", "gt", "ge":
		default:
			return Spec{}, specErr("unknown filter op %q (have eq ne lt le gt ge)", w.Op)
		}
		if cond.Dim == "" {
			return Spec{}, specErr("filter needs a dim")
		}
		c.Where = append(c.Where, cond)
	}
	seen := map[string]bool{}
	for _, r := range s.Reducers {
		name := strings.ToLower(strings.TrimSpace(r))
		if !knownReducer(name) {
			return Spec{}, specErr("unknown reducer %q (have %s)", r, strings.Join(reducerNames, " "))
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		c.Reducers = append(c.Reducers, name)
	}
	if len(c.Reducers) == 0 {
		c.Reducers = []string{"count", "mean"}
		seen["count"], seen["mean"] = true, true
	}
	if seen["percentiles"] {
		if len(s.Percentiles) == 0 {
			return Spec{}, specErr("percentiles reducer needs the percentiles list")
		}
		for _, p := range s.Percentiles {
			if p <= 0 || p > 100 {
				return Spec{}, specErr("percentile %v out of (0, 100]", p)
			}
		}
		c.Percentiles = append([]float64(nil), s.Percentiles...)
	}
	if seen["histogram"] {
		if len(s.Edges) < 2 {
			return Spec{}, specErr("histogram reducer needs at least two ascending edges")
		}
		for i := 1; i < len(s.Edges); i++ {
			if s.Edges[i] <= s.Edges[i-1] {
				return Spec{}, specErr("histogram edges must ascend strictly")
			}
		}
		c.Edges = append([]float64(nil), s.Edges...)
	}
	return c, nil
}

// CanonicalJSON returns the canonical spec's serialized identity.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// DerivedKey is the content address a spec's aggregate is cached under:
// a hash over (FormatGeneration, canonical spec), where the canonical
// spec embeds the sweep fingerprint. Same shape as a sweep fingerprint so
// the store shards it identically.
func DerivedKey(s Spec) (string, error) {
	cj, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	payload := fmt.Sprintf(`{"hbmrd_query":%d,"spec":%s}`, FormatGeneration, cj)
	sum := sha256.Sum256([]byte(payload))
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// dimVal is one dimension value of a flattened record: formatted for
// grouping and output, numeric for ordering and comparisons.
type dimVal struct {
	str   string
	num   float64
	isNum bool
}

func dInt(v int) dimVal { return dimVal{str: strconv.Itoa(v), num: float64(v), isNum: true} }
func dInt64(v int64) dimVal {
	return dimVal{str: strconv.FormatInt(v, 10), num: float64(v), isNum: true}
}
func dBool(v bool) dimVal  { return dimVal{str: strconv.FormatBool(v)} }
func dStr(s string) dimVal { return dimVal{str: s} }

// row is one flattened record: named dimensions plus named metrics.
type row struct {
	dims    map[string]dimVal
	metrics map[string]float64
}

// patternDims is the shared (pattern, pattern_label, wcdp) triple of the
// BER-shaped records. pattern_label folds WCDP into the pattern axis the
// way the paper's figures label it.
func patternDims(d map[string]dimVal, p pattern.Pattern, wcdp bool) {
	d["pattern"] = dStr(p.String())
	label := p.String()
	if wcdp {
		label = "WCDP"
	}
	d["pattern_label"] = dStr(label)
	d["wcdp"] = dBool(wcdp)
}

// Dimensions lists the group-by/filter vocabulary of a kind's records,
// sorted. The plan's generic "point" axis appears here as the concrete
// dimensions it decodes to (row, tagg_on, dummies, agg_acts, ...).
func Dimensions(kind core.Kind) []string {
	var dims []string
	switch kind {
	case core.KindBER:
		dims = []string{"chip", "channel", "pseudo", "bank", "rank", "row", "pattern", "pattern_label", "wcdp"}
	case core.KindHCFirst:
		dims = []string{"chip", "channel", "pseudo", "bank", "rank", "row", "pattern", "pattern_label", "wcdp", "found"}
	case core.KindHCNth:
		dims = []string{"chip", "channel", "row", "pattern", "pattern_label", "found"}
	case core.KindVariability:
		dims = []string{"chip", "row", "measured"}
	case core.KindRowPressBER:
		dims = []string{"chip", "channel", "tagg_on"}
	case core.KindRowPressHC:
		dims = []string{"chip", "channel", "row", "tagg_on", "found", "within_window"}
	case core.KindBypass:
		dims = []string{"chip", "row", "dummies", "agg_acts"}
	case core.KindAging:
		dims = []string{"chip", "channel", "row"}
	case core.KindVRD:
		dims = []string{"chip", "channel", "pseudo", "bank", "rank", "row", "pattern", "pattern_label", "measured"}
	case core.KindColDisturb:
		dims = []string{"chip", "channel", "pseudo", "bank", "rank", "row", "distance", "stripe", "found"}
	}
	sort.Strings(dims)
	return dims
}

// Metrics lists the aggregatable value fields of a kind's records, sorted.
func Metrics(kind core.Kind) []string {
	var ms []string
	switch kind {
	case core.KindBER:
		ms = []string{"ber_percent"}
	case core.KindHCFirst:
		ms = []string{"hcfirst"}
	case core.KindHCNth:
		ms = []string{"hc_first", "hc_last", "additional", "flips"}
	case core.KindVariability:
		ms = []string{"min_hc", "max_hc", "ratio"}
	case core.KindRowPressBER:
		ms = []string{"ber_percent", "retention_ber_percent", "rows"}
	case core.KindRowPressHC:
		ms = []string{"hcfirst"}
	case core.KindBypass:
		ms = []string{"ber_percent"}
	case core.KindAging:
		ms = []string{"old_ber_percent", "new_ber_percent", "delta_ber_percent"}
	case core.KindVRD:
		ms = []string{"min_hc", "max_hc", "mean_hc", "phc", "ratio", "found", "trials"}
	case core.KindColDisturb:
		ms = []string{"flips", "first_disturb", "reads"}
	}
	sort.Strings(ms)
	return ms
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// flatten decodes a kind's typed record slice (the shape DecodeRecords
// returns) into the generic row model the pipeline groups and reduces.
// Row order is record order, which is plan order.
func flatten(kind core.Kind, records any, env Env) ([]row, error) {
	var rows []row
	add := func(dims map[string]dimVal, metrics map[string]float64) {
		rows = append(rows, row{dims: dims, metrics: metrics})
	}
	switch recs := records.(type) {
	case []core.BERRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "pseudo": dInt(r.Pseudo),
				"bank": dInt(r.Bank), "rank": dInt(env.rankOf(r.Bank)), "row": dInt(r.Row),
			}
			patternDims(d, r.Pattern, r.WCDP)
			add(d, map[string]float64{"ber_percent": r.BERPercent})
		}
	case []core.HCFirstRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "pseudo": dInt(r.Pseudo),
				"bank": dInt(r.Bank), "rank": dInt(env.rankOf(r.Bank)), "row": dInt(r.Row),
				"found": dBool(r.Found),
			}
			patternDims(d, r.Pattern, r.WCDP)
			add(d, map[string]float64{"hcfirst": float64(r.HCFirst)})
		}
	case []core.HCNthRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "row": dInt(r.Row),
				"found": dBool(r.Found),
			}
			patternDims(d, r.Pattern, false)
			m := map[string]float64{"flips": float64(len(r.HC))}
			if len(r.HC) > 0 {
				m["hc_first"] = float64(r.HC[0])
				m["hc_last"] = float64(r.HC[len(r.HC)-1])
				m["additional"] = float64(r.Additional())
			}
			add(d, m)
		}
	case []core.VariabilityRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "row": dInt(r.Row), "measured": dBool(r.MeasuredRatios),
			}
			add(d, map[string]float64{
				"min_hc": float64(r.MinHC), "max_hc": float64(r.MaxHC), "ratio": r.Ratio(),
			})
		}
	case []core.RowPressBERRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "tagg_on": dInt64(int64(r.TAggON)),
			}
			add(d, map[string]float64{
				"ber_percent": r.BERPercent, "retention_ber_percent": r.RetentionBERPercent,
				"rows": float64(r.Rows),
			})
		}
	case []core.RowPressHCRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "row": dInt(r.Row),
				"tagg_on": dInt64(int64(r.TAggON)), "found": dBool(r.Found),
				"within_window": dBool(r.WithinWindow),
			}
			add(d, map[string]float64{"hcfirst": float64(r.HCFirst)})
		}
	case []core.BypassRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "row": dInt(r.Row),
				"dummies": dInt(r.Dummies), "agg_acts": dInt(r.AggActs),
			}
			add(d, map[string]float64{"ber_percent": r.BERPercent})
		}
	case []core.AgingRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "row": dInt(r.Row),
			}
			add(d, map[string]float64{
				"old_ber_percent": r.OldBERPercent, "new_ber_percent": r.NewBERPercent,
				"delta_ber_percent": r.NewBERPercent - r.OldBERPercent,
			})
		}
	case []core.VRDRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "pseudo": dInt(r.Pseudo),
				"bank": dInt(r.Bank), "rank": dInt(env.rankOf(r.Bank)), "row": dInt(r.Row),
				"measured": dBool(r.Found > 0),
			}
			patternDims(d, r.Pattern, false)
			add(d, map[string]float64{
				"min_hc": float64(r.MinHC), "max_hc": float64(r.MaxHC), "mean_hc": r.MeanHC,
				"phc": float64(r.PHC), "ratio": r.Ratio(),
				"found": float64(r.Found), "trials": float64(r.Trials),
			})
		}
	case []core.ColDisturbRecord:
		for _, r := range recs {
			d := map[string]dimVal{
				"chip": dInt(r.Chip), "channel": dInt(r.Channel), "pseudo": dInt(r.Pseudo),
				"bank": dInt(r.Bank), "rank": dInt(env.rankOf(r.Bank)), "row": dInt(r.Row),
				"distance": dInt(r.Distance), "stripe": dInt(r.Stripe), "found": dBool(r.Found),
			}
			add(d, map[string]float64{
				"flips": float64(r.Flips), "first_disturb": float64(r.FirstDisturb),
				"reads": float64(r.Reads),
			})
		}
	default:
		return nil, fmt.Errorf("query: unsupported record slice %T for kind %s", records, kind)
	}
	return rows, nil
}

// rowSource feeds computeOver one record at a time without dictating the
// backing representation: the flatten path serves map lookups over []row,
// the columnar path serves typed array reads. dim and metric resolve a
// name to a per-row accessor once, so the hot loop does no map lookups by
// name; a metric accessor's second return is false when the record does
// not carry that metric (sparse metrics like hc_first of an HCNth record
// that never flipped).
type rowSource struct {
	n      int
	dim    func(name string) func(i int) dimVal
	metric func(name string) func(i int) (float64, bool)
}

// rowsSource adapts the flattened row model to the source interface.
func rowsSource(rows []row) rowSource {
	return rowSource{
		n: len(rows),
		dim: func(name string) func(i int) dimVal {
			return func(i int) dimVal { return rows[i].dims[name] }
		},
		metric: func(name string) func(i int) (float64, bool) {
			return func(i int) (float64, bool) {
				mv, ok := rows[i].metrics[name]
				return mv, ok
			}
		},
	}
}

// fmtNum formats a float the way keys and cells render: integers in full
// decimal (a tAggON of 16 ms is 16000000000 ps, not 1.6e+10), everything
// else in Go's shortest round-trip form.
func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fptr boxes a finite float for an omitempty JSON field; non-finite
// reductions (a CV at mean zero) become null so the aggregate always
// serializes.
func fptr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// PercentileValue is one point of the "percentiles" reducer's output.
type PercentileValue struct {
	P     float64  `json:"p"`
	Value *float64 `json:"value"`
}

// HistogramBin is one bin of the "histogram" reducer's output: count of
// values in [Lo, Hi).
type HistogramBin struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// BoxSummary is the "box" reducer's output, the five-number summary plus
// mean that the paper's box-and-whisker figures report.
type BoxSummary struct {
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// GroupResult is one group of an aggregate: its key (formatted group-by
// values, aligned with the spec's GroupBy) and the reducer outputs the
// spec asked for.
type GroupResult struct {
	Key         []string          `json:"key,omitempty"`
	Count       int               `json:"count"`
	Mean        *float64          `json:"mean,omitempty"`
	StdDev      *float64          `json:"stddev,omitempty"`
	CV          *float64          `json:"cv,omitempty"`
	Min         *float64          `json:"min,omitempty"`
	Max         *float64          `json:"max,omitempty"`
	Median      *float64          `json:"median,omitempty"`
	Percentiles []PercentileValue `json:"percentiles,omitempty"`
	Histogram   []HistogramBin    `json:"histogram,omitempty"`
	Box         *BoxSummary       `json:"box,omitempty"`
}

// Aggregate is the typed result of one query: the canonical spec it
// answers, provenance (sweep fingerprint, kind, format generation), and
// the reduced groups in deterministic key order. Its canonical JSON form
// is what the derived-result cache stores and what hbmrdd's POST /query
// returns.
type Aggregate struct {
	Format  int           `json:"hbmrd_query"`
	Sweep   string        `json:"sweep"`
	Kind    string        `json:"kind"`
	Spec    Spec          `json:"spec"`
	Records int           `json:"records"`
	Matched int           `json:"matched"`
	Groups  []GroupResult `json:"groups"`
}

// Compute runs one canonicalized aggregation over a kind's decoded record
// slice. It is the pure pipeline under Engine.Run - no store, no cache -
// and is deterministic per the package contract. It is also the reference
// oracle for the columnar path: ComputeColumnar must produce the same
// Aggregate bytes for the same records under the same Env.
func Compute(kind core.Kind, records any, spec Spec) (*Aggregate, error) {
	return ComputeEnv(kind, records, spec, Env{})
}

// ComputeEnv is Compute with explicit geometry context for the derived
// dimensions (rank).
func ComputeEnv(kind core.Kind, records any, spec Spec, env Env) (*Aggregate, error) {
	cspec, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	rows, err := flatten(kind, records, env)
	if err != nil {
		return nil, err
	}
	return computeOver(kind, rowsSource(rows), cspec)
}

// computeOver is the single filter/group/reduce pipeline both record
// representations feed. It pre-resolves every accessor the spec touches -
// filter operands, group-key dimensions, the metric - so the flatten and
// columnar paths share the loop below verbatim and cannot drift apart.
// cspec must already be canonical.
func computeOver(kind core.Kind, src rowSource, cspec Spec) (*Aggregate, error) {
	dims, metrics := Dimensions(kind), Metrics(kind)
	for _, g := range cspec.GroupBy {
		if !hasName(dims, g) {
			return nil, specErr("kind %s has no dimension %q (have %s)", kind, g, strings.Join(dims, " "))
		}
	}
	if !hasName(metrics, cspec.Metric) {
		return nil, specErr("kind %s has no metric %q (have %s)", kind, cspec.Metric, strings.Join(metrics, " "))
	}
	for _, w := range cspec.Where {
		if !hasName(dims, w.Dim) && !hasName(metrics, w.Dim) {
			return nil, specErr("kind %s has no dimension or metric %q to filter on", kind, w.Dim)
		}
	}

	// One filter evaluator per cond: a dimension operand resolves ahead of
	// a metric one (the vocabularies are disjoint per kind), the cond
	// value's numeric form parses once, and comparisons are numeric only
	// when both sides are (matching the row model's match semantics).
	type condEval struct {
		op        string
		value     string
		condNum   float64
		condIsNum bool
		dim       func(i int) dimVal
		met       func(i int) (float64, bool)
	}
	conds := make([]condEval, 0, len(cspec.Where))
	for _, w := range cspec.Where {
		ce := condEval{op: w.Op, value: w.Value}
		if n, err := strconv.ParseFloat(w.Value, 64); err == nil {
			ce.condNum, ce.condIsNum = n, true
		}
		if hasName(dims, w.Dim) {
			ce.dim = src.dim(w.Dim)
		} else {
			ce.met = src.metric(w.Dim)
		}
		conds = append(conds, ce)
	}
	keyGet := make([]func(i int) dimVal, len(cspec.GroupBy))
	for i, g := range cspec.GroupBy {
		keyGet[i] = src.dim(g)
	}
	metGet := src.metric(cspec.Metric)

	type groupAcc struct {
		key  []dimVal
		vals []float64
	}
	groups := map[string]*groupAcc{}
	var order []string
	matched := 0
rowLoop:
	for i := 0; i < src.n; i++ {
		for _, ce := range conds {
			var val dimVal
			if ce.dim != nil {
				val = ce.dim(i)
			} else {
				mv, ok := ce.met(i)
				if !ok {
					// A metric this record does not carry filters it out.
					continue rowLoop
				}
				val = dimVal{str: fmtNum(mv), num: mv, isNum: true}
			}
			var cmp int
			if ce.condIsNum && val.isNum {
				switch {
				case val.num < ce.condNum:
					cmp = -1
				case val.num > ce.condNum:
					cmp = 1
				}
			} else {
				cmp = strings.Compare(val.str, ce.value)
			}
			var ok bool
			switch ce.op {
			case "eq":
				ok = cmp == 0
			case "ne":
				ok = cmp != 0
			case "lt":
				ok = cmp < 0
			case "le":
				ok = cmp <= 0
			case "gt":
				ok = cmp > 0
			case "ge":
				ok = cmp >= 0
			default:
				return nil, specErr("unknown filter op %q", ce.op)
			}
			if !ok {
				continue rowLoop
			}
		}
		matched++
		mv, ok := metGet(i)
		if !ok {
			continue // sparse metric this record does not carry
		}
		key := make([]dimVal, len(keyGet))
		var kb strings.Builder
		for k, get := range keyGet {
			key[k] = get(i)
			kb.WriteString(key[k].str)
			kb.WriteByte(0x1f)
		}
		ks := kb.String()
		acc, ok := groups[ks]
		if !ok {
			acc = &groupAcc{key: key}
			groups[ks] = acc
			order = append(order, ks)
		}
		acc.vals = append(acc.vals, mv)
	}

	// Deterministic group order: element-wise on the key, numerically
	// where the dimension is numeric.
	sort.Slice(order, func(i, j int) bool {
		a, b := groups[order[i]].key, groups[order[j]].key
		for k := range a {
			if a[k].str == b[k].str {
				continue
			}
			if a[k].isNum && b[k].isNum {
				return a[k].num < b[k].num
			}
			return a[k].str < b[k].str
		}
		return false
	})

	agg := &Aggregate{
		Format: FormatGeneration, Sweep: cspec.Sweep, Kind: string(kind), Spec: cspec,
		Records: src.n, Matched: matched,
	}
	for _, ks := range order {
		acc := groups[ks]
		g := GroupResult{Count: len(acc.vals)}
		for _, kv := range acc.key {
			g.Key = append(g.Key, kv.str)
		}
		for _, red := range cspec.Reducers {
			switch red {
			case "count":
				// Count is always present.
			case "mean":
				g.Mean = fptr(stats.Mean(acc.vals))
			case "stddev":
				g.StdDev = fptr(stats.StdDev(acc.vals))
			case "cv":
				g.CV = fptr(stats.CV(acc.vals))
			case "min":
				g.Min = fptr(stats.Min(acc.vals))
			case "max":
				g.Max = fptr(stats.Max(acc.vals))
			case "median":
				g.Median = fptr(stats.Median(acc.vals))
			case "percentiles":
				vals := stats.Percentiles(acc.vals, cspec.Percentiles)
				for i, p := range cspec.Percentiles {
					g.Percentiles = append(g.Percentiles, PercentileValue{P: p, Value: fptr(vals[i])})
				}
			case "histogram":
				counts := stats.Histogram(acc.vals, cspec.Edges)
				for i, n := range counts {
					g.Histogram = append(g.Histogram, HistogramBin{Lo: cspec.Edges[i], Hi: cspec.Edges[i+1], Count: n})
				}
			case "box":
				b := stats.Box(acc.vals)
				g.Box = &BoxSummary{Min: b.Min, Q1: b.Q1, Median: b.Median, Q3: b.Q3, Max: b.Max, Mean: b.Mean}
			}
		}
		agg.Groups = append(agg.Groups, g)
	}
	return agg, nil
}

// Result.Source values: which path produced the aggregate bytes.
const (
	SourceCache    = "cache"    // served from the derived-result cache
	SourceColumnar = "columnar" // computed from the columnar artifact
	SourceJSONL    = "jsonl"    // computed from the raw JSONL records
)

// Result is one executed query: the typed aggregate, its canonical JSON
// serialization (byte-identical across repeated runs of the same spec,
// whichever path produced it), and the path that answered it.
type Result struct {
	Aggregate Aggregate
	JSON      []byte
	CacheHit  bool
	// Source is SourceCache, SourceColumnar or SourceJSONL.
	Source string
}

// Engine executes query specs against a sweep store, content-addressing
// every aggregate into the store's derived cache keyed on (sweep
// fingerprint, canonical spec): the first run of a spec decodes and
// reduces the raw records, every identical run after it is a cache hit
// that never re-reads them. On a miss the engine prefers the sweep's
// columnar artifact and falls back to the JSONL records for objects that
// predate the columnar format (backfilling their artifact as it goes).
type Engine struct {
	Store *store.Store

	// Log, when set, receives operational notes (e.g. a corrupt columnar
	// twin being quarantined). Nil discards them.
	Log *telemetry.Logger

	// Trace, when set, receives one span per Run (cache hit or full
	// compute) keyed by the sweep fingerprint, with the answering source
	// (cache, columnar, jsonl) as an attribute.
	Trace *telemetry.Tracer

	rawReads      atomic.Int64
	columnarReads atomic.Int64
}

// NewEngine builds a query engine over a store.
func NewEngine(s *store.Store) *Engine { return &Engine{Store: s} }

func (e *Engine) logf(format string, args ...any) {
	e.Log.Warnf(format, args...)
}

// RawReads reports how many times the engine has gone to the stored
// sweep bytes - either representation - instead of the derived cache.
// The counter cache-hit tests assert does not move.
func (e *Engine) RawReads() int64 { return e.rawReads.Load() }

// ColumnarReads reports how many of those reads were served by the
// columnar artifact rather than the JSONL records.
func (e *Engine) ColumnarReads() int64 { return e.columnarReads.Load() }

// envFor derives the query environment from the stored sweep's geometry
// preset: multi-rank organizations expose the rank dimension as
// bank/BanksPerRank. An unknown or absent preset means the zero Env.
func envFor(meta *store.Meta) Env {
	if meta == nil || meta.Geometry == "" {
		return Env{}
	}
	p, err := hbm.LookupPreset(meta.Geometry)
	if err != nil {
		return Env{}
	}
	return Env{BanksPerRank: p.Geometry.Banks}
}

// Run executes one spec: canonicalize, serve from the derived cache when
// the (sweep, spec) key is stored, otherwise aggregate the stored sweep -
// columnar artifact preferred, JSONL fallback - and cache the result.
func (e *Engine) Run(spec Spec) (*Result, error) {
	start := time.Now()
	cspec, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	if cspec.Sweep == "" {
		return nil, specErr("sweep fingerprint is required")
	}
	key, err := DerivedKey(cspec)
	if err != nil {
		return nil, err
	}
	if b, err := e.Store.GetDerived(key); err == nil {
		var agg Aggregate
		if err := json.Unmarshal(b, &agg); err == nil && agg.Format == FormatGeneration {
			res := &Result{Aggregate: agg, JSON: b, CacheHit: true, Source: SourceCache}
			e.observe(start, cspec, res)
			return res, nil
		}
		// A corrupt or stale cached aggregate falls through to recompute.
	} else if !errors.Is(err, store.ErrNotFound) {
		return nil, err
	}

	e.rawReads.Add(1)
	agg, source, err := e.computeCold(cspec, "")
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(agg)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	// Caching is best-effort, matching the read side's stance on a
	// read-only store: a failed cache write (full disk, read-only mount)
	// costs the next identical query a recompute, never this one its
	// answer.
	_ = e.Store.PutDerived(key, b)
	res := &Result{Aggregate: *agg, JSON: b, CacheHit: false, Source: source}
	e.observe(start, cspec, res)
	return res, nil
}

// RunCold executes one spec against the stored sweep bytes through one
// explicit path - SourceColumnar or SourceJSONL - bypassing the derived
// cache on both read and write. The harness equivalence checks use it to
// assert the two representations produce byte-identical aggregates.
func (e *Engine) RunCold(spec Spec, source string) (*Result, error) {
	cspec, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	if cspec.Sweep == "" {
		return nil, specErr("sweep fingerprint is required")
	}
	switch source {
	case SourceColumnar, SourceJSONL:
	default:
		return nil, specErr("unknown cold path %q (have %s %s)", source, SourceColumnar, SourceJSONL)
	}
	e.rawReads.Add(1)
	agg, got, err := e.computeCold(cspec, source)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(agg)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	return &Result{Aggregate: *agg, JSON: b, CacheHit: false, Source: got}, nil
}

// computeCold aggregates a stored sweep on a cache miss. forced pins the
// path (SourceColumnar errors hard, for the equivalence harness); empty
// prefers columnar and treats ANY columnar failure - no artifact on a
// pre-format object, torn file, decode error - as "take the JSONL
// contract path instead", because the artifact is an optimization and
// the JSONL is the format of record.
func (e *Engine) computeCold(cspec Spec, forced string) (*Aggregate, string, error) {
	if forced != SourceJSONL {
		agg, err := e.computeColumnar(cspec)
		if err == nil {
			return agg, SourceColumnar, nil
		}
		if forced == SourceColumnar {
			return nil, "", err
		}
		// A rejected spec is the caller's problem, not the twin's: the
		// JSONL path would refuse it identically, so surface it without
		// blaming (and evicting) a healthy artifact.
		if errors.Is(err, ErrSpec) {
			return nil, "", err
		}
		// A twin that exists but no longer decodes (or holds the wrong
		// sweep) is corruption, not absence: quarantine it by deletion so
		// every future cold query stops paying the failed decode, and let
		// the JSONL path below re-transcode a fresh one. A merely absent
		// twin (pre-format object) takes the same fallback without the
		// drop.
		if !errors.Is(err, store.ErrNoColumnar) && !errors.Is(err, store.ErrNotFound) {
			mColumnarDrops.Inc()
			e.logf("query: columnar twin of %s unreadable (%v); dropping it and answering from JSONL", cspec.Sweep, err)
			if derr := e.Store.DropColumnar(cspec.Sweep); derr != nil {
				e.logf("query: dropping columnar twin of %s: %v", cspec.Sweep, derr)
			}
		}
	}
	agg, err := e.computeJSONL(cspec)
	if err != nil {
		return nil, "", err
	}
	if forced == "" {
		// The sweep answered from JSONL: either it predates the columnar
		// format or its corrupt twin was just dropped. Re-transcode the
		// artifact from the JSONL of record (best-effort) so the next cold
		// query takes the fast path again.
		_ = e.Store.EnsureColumnar(cspec.Sweep)
	}
	return agg, SourceJSONL, nil
}

func (e *Engine) computeColumnar(cspec Spec) (*Aggregate, error) {
	rc, meta, err := e.Store.GetColumnar(cspec.Sweep)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	cs, err := core.DecodeColumnar(rc)
	if err != nil {
		return nil, err
	}
	if cs.Header.Fingerprint != cspec.Sweep {
		return nil, fmt.Errorf("query: store object %s holds sweep %s", cspec.Sweep, cs.Header.Fingerprint)
	}
	e.columnarReads.Add(1)
	return ComputeColumnar(cs, cspec, envFor(meta))
}

func (e *Engine) computeJSONL(cspec Spec) (*Aggregate, error) {
	rc, meta, err := e.Store.Get(cspec.Sweep)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	h, recs, err := core.DecodeRecords(core.Kind(meta.Kind), rc)
	if err != nil {
		return nil, err
	}
	if h.Fingerprint != cspec.Sweep {
		return nil, fmt.Errorf("query: store object %s holds sweep %s", cspec.Sweep, h.Fingerprint)
	}
	return ComputeEnv(core.Kind(meta.Kind), recs, cspec, envFor(meta))
}

// Table renders the aggregate as a header row plus one row of formatted
// cells per group: the group-by columns, then "count", then one column
// per scalar reducer output in spec order (percentiles expand to one
// column per p, histograms to one per bin, box to its six numbers).
// Null cells (non-finite reductions) render empty. Both the CSV form and
// internal/report's aligned-table renderer are thin layers over it.
func (a *Aggregate) Table() (header []string, rows [][]string) {
	header = append(header, a.Spec.GroupBy...)
	header = append(header, "count")
	for _, red := range a.Spec.Reducers {
		switch red {
		case "count":
		case "mean", "stddev", "cv", "min", "max", "median":
			header = append(header, red)
		case "percentiles":
			for _, p := range a.Spec.Percentiles {
				header = append(header, "p"+fmtNum(p))
			}
		case "histogram":
			for i := 1; i < len(a.Spec.Edges); i++ {
				header = append(header, fmt.Sprintf("hist[%s,%s)", fmtNum(a.Spec.Edges[i-1]), fmtNum(a.Spec.Edges[i])))
			}
		case "box":
			header = append(header, "box_min", "box_q1", "box_median", "box_q3", "box_max", "box_mean")
		}
	}
	cell := func(v *float64) string {
		if v == nil {
			return ""
		}
		return fmtNum(*v)
	}
	for _, g := range a.Groups {
		r := append([]string(nil), g.Key...)
		r = append(r, strconv.Itoa(g.Count))
		for _, red := range a.Spec.Reducers {
			switch red {
			case "count":
			case "mean":
				r = append(r, cell(g.Mean))
			case "stddev":
				r = append(r, cell(g.StdDev))
			case "cv":
				r = append(r, cell(g.CV))
			case "min":
				r = append(r, cell(g.Min))
			case "max":
				r = append(r, cell(g.Max))
			case "median":
				r = append(r, cell(g.Median))
			case "percentiles":
				for _, pv := range g.Percentiles {
					r = append(r, cell(pv.Value))
				}
			case "histogram":
				for _, hb := range g.Histogram {
					r = append(r, strconv.Itoa(hb.Count))
				}
			case "box":
				if g.Box == nil {
					r = append(r, "", "", "", "", "", "")
				} else {
					r = append(r, fmtNum(g.Box.Min), fmtNum(g.Box.Q1), fmtNum(g.Box.Median),
						fmtNum(g.Box.Q3), fmtNum(g.Box.Max), fmtNum(g.Box.Mean))
				}
			}
		}
		rows = append(rows, r)
	}
	return header, rows
}

// CSV renders the aggregate's table form as comma-separated lines.
func (a *Aggregate) CSV() string {
	header, rows := a.Table()
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ","))
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(strings.Join(r, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FigureSpec returns the predefined query spec that reproduces one of the
// paper's figure aggregations from a stored sweep of the matching kind.
func FigureSpec(fig, sweep string) (Spec, error) {
	s := Spec{Sweep: sweep}
	switch strings.ToLower(strings.TrimSpace(fig)) {
	case "fig4": // BER distribution per chip and pattern (kind ber)
		s.GroupBy = []string{"chip", "pattern_label"}
		s.Metric = "ber_percent"
		s.Reducers = []string{"box"}
	case "fig5": // HCfirst distribution per chip and pattern (kind hcfirst)
		s.GroupBy = []string{"chip", "pattern_label"}
		s.Metric = "hcfirst"
		s.Where = []Cond{{Dim: "found", Value: "true"}}
		s.Reducers = []string{"box"}
	case "fig6": // BER across channels within each chip (kind ber)
		s.GroupBy = []string{"chip", "channel"}
		s.Metric = "ber_percent"
		s.Where = []Cond{{Dim: "wcdp", Value: "true"}}
		s.Reducers = []string{"count", "mean", "min", "max"}
	case "fig7": // HCfirst across channels within each chip (kind hcfirst)
		s.GroupBy = []string{"chip", "channel"}
		s.Metric = "hcfirst"
		s.Where = []Cond{{Dim: "wcdp", Value: "true"}, {Dim: "found", Value: "true"}}
		s.Reducers = []string{"box"}
	case "fig9": // BER across pseudo channels and banks (kind ber)
		s.GroupBy = []string{"pseudo", "bank"}
		s.Metric = "ber_percent"
		s.Where = []Cond{{Dim: "wcdp", Value: "true"}}
		s.Reducers = []string{"count", "mean"}
	case "fig13": // HCfirst variability ratio per chip (kind variability)
		s.GroupBy = []string{"chip"}
		s.Metric = "ratio"
		s.Where = []Cond{{Dim: "measured", Value: "true"}}
		s.Reducers = []string{"box"}
	case "fig14": // RowPress BER vs tAggON (kind rowpress-ber)
		s.GroupBy = []string{"tagg_on"}
		s.Metric = "ber_percent"
		s.Reducers = []string{"count", "mean"}
	case "fig15": // RowPress HCfirst vs tAggON (kind rowpress-hc)
		s.GroupBy = []string{"chip", "tagg_on"}
		s.Metric = "hcfirst"
		s.Where = []Cond{{Dim: "found", Value: "true"}, {Dim: "within_window", Value: "true"}}
		s.Reducers = []string{"box"}
	case "fig16": // TRR bypass BER per (dummies, aggressor ACTs) (kind bypass)
		s.GroupBy = []string{"dummies", "agg_acts"}
		s.Metric = "ber_percent"
		s.Reducers = []string{"count", "mean", "max"}
	case "figrank": // HCfirst across ranks within each chip (kind hcfirst, multi-rank organizations)
		s.GroupBy = []string{"chip", "rank"}
		s.Metric = "hcfirst"
		s.Where = []Cond{{Dim: "found", Value: "true"}}
		s.Reducers = []string{"count", "mean", "min", "max"}
	case "figvrd": // per-row HCfirst spread across repeated trials (kind vrd)
		s.GroupBy = []string{"chip"}
		s.Metric = "ratio"
		s.Where = []Cond{{Dim: "measured", Value: "true"}}
		s.Reducers = []string{"box"}
	case "figcoldist": // column-disturb flips vs victim distance (kind coldist)
		s.GroupBy = []string{"distance"}
		s.Metric = "flips"
		s.Reducers = []string{"count", "mean", "max"}
	default:
		return Spec{}, specErr("no figure spec %q (have fig4 fig5 fig6 fig7 fig9 fig13 fig14 fig15 fig16 figrank figvrd figcoldist)", fig)
	}
	return s, nil
}
