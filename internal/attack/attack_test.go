package attack

import (
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

func newChip(t *testing.T, idx int) *hbm.Chip {
	t.Helper()
	c, err := hbm.NewBuiltin(idx, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTemplateFindsExploitableRows(t *testing.T) {
	chip := newChip(t, 0)
	res, err := Template(chip, Config{
		Strategy:    NaiveScan,
		TargetFlips: 4,
		Rows:        evenRows(hbm.DefaultGeometry(), 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TemplatesFound < 4 {
		t.Errorf("found only %d templates", res.TemplatesFound)
	}
	if res.RowsHammered == 0 || res.HammersSpent == 0 {
		t.Error("no work recorded")
	}
}

// TestChannelTargetingBeatsNaiveOnHeterogeneousChip reproduces the §8.1
// implication quantitatively: on Chip 0 (CH0/CH7 die ~2x more vulnerable
// than CH3/CH4), profiling channels first and draining the worst channel
// finds the same number of templates with fewer total hammers.
func TestChannelTargetingBeatsNaiveOnHeterogeneousChip(t *testing.T) {
	// A tight per-row hammer budget makes exploitable rows scarce - the
	// regime where channel targeting matters (~2x Chip 0's floor). The
	// target is large enough that channel statistics dominate per-row
	// luck.
	const (
		target = 16
		budget = 40_000
	)
	rows := evenRows(hbm.DefaultGeometry(), 96)

	naive, err := Template(newChip(t, 0), Config{
		Strategy:     NaiveScan,
		TargetFlips:  target,
		HammerBudget: budget,
		Rows:         rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := Template(newChip(t, 0), Config{
		Strategy:     ChannelTargeted,
		TargetFlips:  target,
		HammerBudget: budget,
		Rows:         rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if naive.TemplatesFound < target || targeted.TemplatesFound < target {
		t.Fatalf("scans did not reach the target: naive %d, targeted %d",
			naive.TemplatesFound, targeted.TemplatesFound)
	}
	// The one-time channel profiling amortizes across campaigns; the
	// per-campaign comparison is drain cost vs the naive scan (§8.1:
	// "reduce the time it spends preparing for an attack").
	if targeted.DrainHammers >= naive.HammersSpent {
		t.Errorf("targeted drain spent %d hammers, naive %d; targeting should accelerate (Takeaway 2)",
			targeted.DrainHammers, naive.HammersSpent)
	}
	t.Logf("hammers to %d templates: naive %d, targeted drain %d (%.1f%% saved; one-time pilot %d), best channel CH%d",
		target, naive.HammersSpent, targeted.DrainHammers,
		(1-float64(targeted.DrainHammers)/float64(naive.HammersSpent))*100,
		targeted.PilotHammers, targeted.BestChannel)
}

func TestTargetedPicksVulnerableChannel(t *testing.T) {
	res, err := Template(newChip(t, 0), Config{
		Strategy:    ChannelTargeted,
		TargetFlips: 2,
		Rows:        evenRows(hbm.DefaultGeometry(), 96),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chip 0's empirically hottest channels: the {CH0, CH7} die plus CH1,
	// whose realized rows run hot on this specimen.
	switch res.BestChannel {
	case 0, 1, 7:
	default:
		t.Errorf("targeted strategy ranked CH%d first; Chip 0's hot channels are {0, 1, 7}", res.BestChannel)
	}
}

func TestStrategyString(t *testing.T) {
	if NaiveScan.String() != "naive" || ChannelTargeted.String() != "channel-targeted" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}

func TestTemplateUnknownStrategy(t *testing.T) {
	if _, err := Template(newChip(t, 1), Config{Strategy: Strategy(9), Rows: evenRows(hbm.DefaultGeometry(), 4)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRetirementImpact(t *testing.T) {
	bers := []float64{0, 0.001, 0.5, 1.2} // percent of 8192 bits
	// retire at >= 10 flips: 0.5% = 41 flips, 1.2% = 98 flips qualify;
	// 0.001% = 0.08 flips does not.
	if got := RetirementImpact(bers, 10); got != 0.5 {
		t.Errorf("retired fraction %.3f, want 0.5", got)
	}
	if RetirementImpact(nil, 10) != 0 || RetirementImpact(bers, 0) != 0 {
		t.Error("degenerate inputs should retire nothing")
	}
}
