// Package attack quantifies the paper's §8.1 implication for read
// disturbance attacks: an attacker who first profiles a few rows per
// channel and then concentrates on the most vulnerable channel finds
// exploitable bitflips faster than one scanning the chip uniformly
// (memory templating acceleration, the paper's second implication).
//
// "Exploitable" follows the practical RowHammer attack literature the
// paper cites: a row whose first bitflip arrives within a hammer budget an
// attacker can spend inside one refresh window.
package attack

import (
	"fmt"
	"math/bits"
	"sort"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// Strategy selects how the templating scan orders its work.
type Strategy int

// Scan strategies.
const (
	// NaiveScan sweeps rows round-robin across all channels.
	NaiveScan Strategy = iota + 1
	// ChannelTargeted first profiles PilotRows rows on every channel,
	// ranks channels by observed flips, then scans the most vulnerable
	// channels first.
	ChannelTargeted
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case NaiveScan:
		return "naive"
	case ChannelTargeted:
		return "channel-targeted"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterizes a templating run.
type Config struct {
	// Strategy orders the scan.
	Strategy Strategy
	// HammerBudget is the per-aggressor activation count the attacker can
	// spend per candidate row (default 150K: well inside one refresh
	// window at minimum tRAS).
	HammerBudget int
	// TargetFlips stops the scan once this many rows with at least
	// MinFlips bitflips have been found (default 8).
	TargetFlips int
	// MinFlips is the per-row bitflip count that makes a row a usable
	// template (default 1).
	MinFlips int
	// PilotRows is the per-channel profiling sample of the targeted
	// strategy (default 4).
	PilotRows int
	// PilotBudget is the per-aggressor hammer count of pilot probes
	// (default 256K: a generous budget so pilot flip totals reflect each
	// channel's BER, giving a reliable vulnerability ranking).
	PilotBudget int
	// Rows are candidate physical victim rows per channel (default: an
	// even 96-row sample).
	Rows []int
	// Pattern is the templating data pattern (default Checkered0).
	Pattern pattern.Pattern
	// PC and Bank select the templated bank.
	PC, Bank int
}

func (c *Config) fill(g hbm.Geometry) {
	if c.Strategy == 0 {
		c.Strategy = NaiveScan
	}
	if c.HammerBudget == 0 {
		c.HammerBudget = 150_000
	}
	if c.TargetFlips == 0 {
		c.TargetFlips = 8
	}
	if c.MinFlips == 0 {
		c.MinFlips = 1
	}
	if c.PilotRows == 0 {
		c.PilotRows = 6
	}
	if c.PilotBudget == 0 {
		c.PilotBudget = 256 * 1024
	}
	if len(c.Rows) == 0 {
		c.Rows = evenRows(g, 96)
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Checkered0
	}
}

func evenRows(g hbm.Geometry, n int) []int {
	rows := make([]int, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, 2+(g.Rows-5)*i/(n-1))
	}
	return rows
}

// Result summarizes a templating run.
type Result struct {
	Strategy Strategy
	// TemplatesFound is the number of exploitable rows located.
	TemplatesFound int
	// RowsHammered counts candidate rows spent (pilot rows included).
	RowsHammered int
	// HammersSpent counts total per-aggressor activations issued
	// (PilotHammers + DrainHammers).
	HammersSpent int
	// PilotHammers is the one-time channel-profiling cost of the targeted
	// strategy; an attacker amortizes it across every subsequent
	// templating campaign on the same chip.
	PilotHammers int
	// DrainHammers is the per-campaign scanning cost.
	DrainHammers int
	// BestChannel is the channel the targeted strategy ranked first
	// (-1 for the naive strategy).
	BestChannel int
}

// Template runs the templating scan against a chip and reports how much
// work it took to find the requested number of exploitable rows.
func Template(chip *hbm.Chip, cfg Config) (Result, error) {
	g := chip.Geometry()
	cfg.fill(g)
	res := Result{Strategy: cfg.Strategy, BestChannel: -1}
	scratch := make([]byte, g.RowBytes)

	probe := func(ch, row int) (bool, error) {
		flips, err := hammerRow(chip, ch, cfg, cfg.HammerBudget, row, scratch)
		if err != nil {
			return false, err
		}
		res.RowsHammered++
		res.HammersSpent += cfg.HammerBudget
		res.DrainHammers += cfg.HammerBudget
		if flips >= cfg.MinFlips {
			res.TemplatesFound++
		}
		return res.TemplatesFound >= cfg.TargetFlips, nil
	}

	switch cfg.Strategy {
	case ChannelTargeted:
		// Pilot phase: probe the first PilotRows candidates on every
		// channel at the generous pilot budget; the flip totals rank the
		// channels by vulnerability. A flip found at the pilot budget is
		// NOT a template for the tight campaign budget, so pilots only
		// inform the ranking.
		pilot := cfg.PilotRows
		if pilot > len(cfg.Rows) {
			pilot = len(cfg.Rows)
		}
		flipsPerCh := make([]int, g.Channels)
		for ch := 0; ch < g.Channels; ch++ {
			for p := 0; p < pilot; p++ {
				// Stride across the candidate list so the pilot sees the
				// whole bank, not just its (atypical) first rows.
				row := cfg.Rows[p*len(cfg.Rows)/pilot]
				flips, err := hammerRow(chip, ch, cfg, cfg.PilotBudget, row, scratch)
				if err != nil {
					return res, err
				}
				flipsPerCh[ch] += flips
				res.RowsHammered++
				res.HammersSpent += cfg.PilotBudget
				res.PilotHammers += cfg.PilotBudget
			}
		}
		order := make([]int, g.Channels)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return flipsPerCh[order[i]] > flipsPerCh[order[j]]
		})
		res.BestChannel = order[0]
		// Drain phase: most vulnerable channels first.
		for _, ch := range order {
			for _, row := range cfg.Rows {
				done, err := probe(ch, row)
				if err != nil {
					return res, err
				}
				if done {
					return res, nil
				}
			}
		}
	case NaiveScan:
		// Round-robin channels, advancing the row cursor together.
		for _, row := range cfg.Rows {
			for ch := 0; ch < g.Channels; ch++ {
				done, err := probe(ch, row)
				if err != nil {
					return res, err
				}
				if done {
					return res, nil
				}
			}
		}
	default:
		return res, fmt.Errorf("attack: unknown strategy %d", int(cfg.Strategy))
	}
	return res, nil
}

// hammerRow runs one double-sided templating probe on a physical victim
// row at the given budget and returns the observed bitflip count.
func hammerRow(chip *hbm.Chip, chIdx int, cfg Config, budget, victimPhys int, buf []byte) (int, error) {
	ch, err := chip.Channel(chIdx)
	if err != nil {
		return 0, err
	}
	m := chip.Mapper()
	for d := -2; d <= 2; d++ {
		fillByte := cfg.Pattern.VictimByte()
		if d == -1 || d == 1 {
			fillByte = cfg.Pattern.AggressorByte()
		}
		if err := ch.FillRow(cfg.PC, cfg.Bank, m.ToLogical(victimPhys+d), fillByte); err != nil {
			return 0, err
		}
	}
	if err := ch.HammerDoubleSided(cfg.PC, cfg.Bank,
		m.ToLogical(victimPhys-1), m.ToLogical(victimPhys+1), budget, 0); err != nil {
		return 0, err
	}
	if err := ch.ReadRow(cfg.PC, cfg.Bank, m.ToLogical(victimPhys), buf); err != nil {
		return 0, err
	}
	flips := 0
	for _, b := range buf {
		flips += bits.OnesCount8(b ^ cfg.Pattern.VictimByte())
	}
	return flips, nil
}

// RetirementImpact models the paper's lifetime implication: RowHammer-
// induced correctable errors accelerate memory page retirement beyond
// design-time estimates. Given per-row BER measurements against the
// default (paper HBM2) row size, it returns the fraction of rows a
// retire-on-N-errors policy would retire; see RetirementImpactIn for
// other organizations.
func RetirementImpact(berPercents []float64, retireAtFlips int) float64 {
	return RetirementImpactIn(hbm.DefaultGeometry(), berPercents, retireAtFlips)
}

// RetirementImpactIn is RetirementImpact for BER measurements taken on
// chips of geometry g (the BER-to-flip-count conversion depends on the
// row's cell count).
func RetirementImpactIn(g hbm.Geometry, berPercents []float64, retireAtFlips int) float64 {
	if len(berPercents) == 0 || retireAtFlips <= 0 {
		return 0
	}
	retired := 0
	for _, ber := range berPercents {
		if ber/100*float64(g.RowBits()) >= float64(retireAtFlips) {
			retired++
		}
	}
	return float64(retired) / float64(len(berPercents))
}
