package ecc

import (
	"fmt"
	"math/bits"
)

// WordBytes is the analysis word size of Fig 17: non-overlapping
// consecutive 64-bit (8-byte) words.
const WordBytes = 8

// FlipHistogram buckets words by how many bitflips they contain, matching
// the x-axis of Fig 17: exactly 1, 2, ... 7, and more than 7 flips. Words
// with zero flips are counted separately in Clean.
type FlipHistogram struct {
	// PerCount[k-1] counts words with exactly k flips, k = 1..7.
	PerCount [7]int
	// Over7 counts words with more than 7 flips.
	Over7 int
	// Clean counts words with no flips.
	Clean int
	// MaxFlips is the largest flip count observed in any single word
	// (the paper reports up to 16 in Chip 4).
	MaxFlips int
}

// TotalFlipped returns the number of words with at least one flip.
func (h FlipHistogram) TotalFlipped() int {
	n := h.Over7
	for _, c := range h.PerCount {
		n += c
	}
	return n
}

// MultiBit returns the number of words with more than one flip (words
// plain SECDED cannot correct).
func (h FlipHistogram) MultiBit() int { return h.TotalFlipped() - h.PerCount[0] }

// Undetectable returns the number of words with more than two flips, which
// SECDED can neither correct nor reliably detect.
func (h FlipHistogram) Undetectable() int {
	n := h.Over7
	for _, c := range h.PerCount[2:] {
		n += c
	}
	return n
}

// AccumulateWordFlips folds the flip mask of one DRAM row into the
// histogram. The mask must be a whole number of 8-byte words.
func (h *FlipHistogram) AccumulateWordFlips(mask []byte) error {
	if len(mask)%WordBytes != 0 {
		return fmt.Errorf("ecc: mask length %d is not a multiple of %d", len(mask), WordBytes)
	}
	for off := 0; off < len(mask); off += WordBytes {
		flips := 0
		for _, b := range mask[off : off+WordBytes] {
			flips += bits.OnesCount8(b)
		}
		switch {
		case flips == 0:
			h.Clean++
		case flips <= 7:
			h.PerCount[flips-1]++
		default:
			h.Over7++
		}
		if flips > h.MaxFlips {
			h.MaxFlips = flips
		}
	}
	return nil
}

// SECDEDOutcome summarizes what SECDED hardware would do with a set of
// flipped words.
type SECDEDOutcome struct {
	Corrected  int // single-bit words: silently fixed
	Detected   int // double-bit words: flagged uncorrectable
	Escaped    int // 3+ bit words: silently escape or miscorrect
	TotalWords int
}

// ClassifySECDED derives the SECDED outcome from a flip histogram,
// following the paper's §8 argument: one flip per word is correctable, two
// are detectable, three or more can neither be corrected nor reliably
// detected.
func ClassifySECDED(h FlipHistogram) SECDEDOutcome {
	return SECDEDOutcome{
		Corrected:  h.PerCount[0],
		Detected:   h.PerCount[1],
		Escaped:    h.Undetectable(),
		TotalWords: h.TotalFlipped() + h.Clean,
	}
}
