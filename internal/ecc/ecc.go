// Package ecc implements the error-correcting codes the paper's §8 analysis
// discusses: the SECDED (72,64) code typical of HBM/DDR ECC, and the short
// Hamming(7,4) code whose 75% storage overhead the paper uses to argue that
// ECC alone is an impractically expensive RowHammer defense.
//
// It also provides the word-level bitflip analysis behind Fig 17: a
// histogram of how many non-overlapping 64-bit words contain 1, 2, ... >7
// bitflips, and the classification of those words under SECDED (corrected /
// detected / silently escaping).
package ecc

import (
	"fmt"
	"math/bits"
)

// SECDED(72,64): an extended Hamming code. 64 data bits are spread over
// codeword positions 1..71 that are not powers of two; positions 1, 2, 4,
// 8, 16, 32, 64 hold Hamming parity; position 0 holds the overall parity
// bit that upgrades single-error-correcting to double-error-detecting.
const (
	// DataBits is the number of data bits per SECDED codeword.
	DataBits = 64
	// CheckBits is the number of redundant bits per SECDED codeword.
	CheckBits = 8
	// CodeBits is the total SECDED codeword length.
	CodeBits = DataBits + CheckBits
)

// dataPositions[i] is the codeword position (1..71) of data bit i.
var dataPositions = func() [DataBits]int {
	var pos [DataBits]int
	i := 0
	for p := 1; p < CodeBits && i < DataBits; p++ {
		if p&(p-1) == 0 {
			continue // power of two: Hamming parity position
		}
		pos[i] = p
		i++
	}
	if i != DataBits {
		panic("ecc: not enough non-parity positions")
	}
	return pos
}()

// Codeword is one SECDED-protected 64-bit word: the data and its 8 check
// bits (7 Hamming + 1 overall parity).
type Codeword struct {
	Data  uint64
	Check uint8
}

// Encode computes the SECDED codeword for 64 bits of data.
func Encode(data uint64) Codeword {
	var syndrome int
	ones := 0
	for i := 0; i < DataBits; i++ {
		if data>>i&1 == 1 {
			syndrome ^= dataPositions[i]
			ones++
		}
	}
	var check uint8
	// Hamming parity bits at positions 2^k cover positions with bit k set.
	for k := 0; k < 7; k++ {
		if syndrome>>k&1 == 1 {
			check |= 1 << k
			ones++
		}
	}
	// Overall parity (stored in check bit 7) makes total weight even.
	if ones%2 == 1 {
		check |= 1 << 7
	}
	return Codeword{Data: data, Check: check}
}

// DecodeResult classifies the outcome of a SECDED decode.
type DecodeResult int

// Decode outcomes.
const (
	// OK means the codeword was clean.
	OK DecodeResult = iota
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Detected means an uncorrectable (double-bit) error was detected.
	Detected
	// Miscorrected is only reported by analysis helpers that know the
	// original data: three or more flips can masquerade as a single-bit
	// error and be "corrected" into the wrong word.
	Miscorrected
)

// String implements fmt.Stringer.
func (r DecodeResult) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Miscorrected:
		return "miscorrected"
	default:
		return fmt.Sprintf("DecodeResult(%d)", int(r))
	}
}

// Decode inspects a possibly corrupted codeword and returns the corrected
// data plus the decode classification (OK, Corrected, or Detected). Like
// real SECDED hardware, triple errors may silently miscorrect; Decode
// reports what the hardware would believe.
func Decode(cw Codeword) (uint64, DecodeResult) {
	var syndrome int
	ones := 0
	for i := 0; i < DataBits; i++ {
		if cw.Data>>i&1 == 1 {
			syndrome ^= dataPositions[i]
			ones++
		}
	}
	for k := 0; k < 7; k++ {
		if cw.Check>>k&1 == 1 {
			syndrome ^= 1 << k
			ones++
		}
	}
	parityStored := int(cw.Check >> 7 & 1)
	parityComputed := ones % 2
	parityError := parityStored != parityComputed

	switch {
	case syndrome == 0 && !parityError:
		return cw.Data, OK
	case syndrome == 0 && parityError:
		// The overall parity bit itself flipped.
		return cw.Data, Corrected
	case parityError:
		// Odd number of flips with a Hamming syndrome: treat as a single
		// error at the syndrome position and correct it.
		return flipPosition(cw, syndrome).Data, Corrected
	default:
		// Non-zero syndrome with even parity: double error, uncorrectable.
		return cw.Data, Detected
	}
}

// flipPosition flips the codeword bit at Hamming position p (1..71).
func flipPosition(cw Codeword, p int) Codeword {
	for i, dp := range dataPositions {
		if dp == p {
			cw.Data ^= 1 << i
			return cw
		}
	}
	// Parity position 2^k.
	k := bits.TrailingZeros(uint(p))
	cw.Check ^= 1 << k
	return cw
}

// InjectDataErrors flips the data bits of cw selected by mask.
func InjectDataErrors(cw Codeword, mask uint64) Codeword {
	cw.Data ^= mask
	return cw
}

// Hamming74Overhead returns the storage overhead of the (7,4) Hamming code
// the paper invokes: 3 parity bits per 4 data bits, i.e. 75%.
func Hamming74Overhead() float64 { return 3.0 / 4.0 }

// EncodeHamming74 encodes a 4-bit nibble into a 7-bit Hamming codeword.
func EncodeHamming74(nibble uint8) uint8 {
	d := [4]uint8{nibble & 1, nibble >> 1 & 1, nibble >> 2 & 1, nibble >> 3 & 1}
	p1 := d[0] ^ d[1] ^ d[3]
	p2 := d[0] ^ d[2] ^ d[3]
	p3 := d[1] ^ d[2] ^ d[3]
	// Codeword layout (bit 0 = position 1): p1 p2 d0 p3 d1 d2 d3.
	return p1 | p2<<1 | d[0]<<2 | p3<<3 | d[1]<<4 | d[2]<<5 | d[3]<<6
}

// DecodeHamming74 decodes a 7-bit Hamming codeword, correcting up to one
// flipped bit, and returns the 4-bit nibble.
func DecodeHamming74(code uint8) uint8 {
	bit := func(p int) uint8 { return code >> (p - 1) & 1 }
	s1 := bit(1) ^ bit(3) ^ bit(5) ^ bit(7)
	s2 := bit(2) ^ bit(3) ^ bit(6) ^ bit(7)
	s3 := bit(4) ^ bit(5) ^ bit(6) ^ bit(7)
	syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
	if syndrome != 0 {
		code ^= 1 << (syndrome - 1)
	}
	return (code >> 2 & 1) | (code>>4&1)<<1 | (code>>5&1)<<2 | (code>>6&1)<<3
}
