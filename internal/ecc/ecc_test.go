package ecc

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE, 1 << 63} {
		cw := Encode(data)
		got, res := Decode(cw)
		if got != data || res != OK {
			t.Errorf("Decode(Encode(%#x)) = %#x, %v", data, got, res)
		}
	}
}

func TestSingleBitDataErrorsCorrected(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	for bit := 0; bit < DataBits; bit++ {
		cw := InjectDataErrors(Encode(data), 1<<bit)
		got, res := Decode(cw)
		if res != Corrected || got != data {
			t.Fatalf("bit %d: Decode = %#x, %v; want corrected %#x", bit, got, res, data)
		}
	}
}

func TestSingleCheckBitErrorsCorrected(t *testing.T) {
	data := uint64(0xA5A5A5A5A5A5A5A5)
	for bit := 0; bit < CheckBits; bit++ {
		cw := Encode(data)
		cw.Check ^= 1 << bit
		got, res := Decode(cw)
		if res != Corrected || got != data {
			t.Fatalf("check bit %d: Decode = %#x, %v", bit, got, res)
		}
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	data := uint64(0xFEEDFACE12345678)
	cases := [][2]int{{0, 1}, {5, 40}, {62, 63}, {0, 63}, {13, 14}}
	for _, c := range cases {
		cw := InjectDataErrors(Encode(data), 1<<c[0]|1<<c[1])
		_, res := Decode(cw)
		if res != Detected {
			t.Errorf("double error bits %v: result %v, want Detected", c, res)
		}
	}
}

func TestTripleBitErrorsEscapeOrMiscorrect(t *testing.T) {
	// The paper's point: 3+ flips defeat SECDED. The decoder must NOT
	// report Detected reliably; it believes it corrected a single error.
	data := uint64(0x1111222233334444)
	cw := InjectDataErrors(Encode(data), 1<<3|1<<17|1<<44)
	got, res := Decode(cw)
	if res == Detected {
		t.Skip("this particular triple produced a detectable syndrome; acceptable")
	}
	if got == data {
		t.Error("triple error silently produced the original data")
	}
}

func TestSECDEDPropertyRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, res := Decode(Encode(data))
		return got == data && res == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDPropertySingleErrorAlwaysCorrected(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		b := int(bit) % DataBits
		got, res := Decode(InjectDataErrors(Encode(data), 1<<b))
		return res == Corrected && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDPropertyDoubleErrorAlwaysDetected(t *testing.T) {
	f := func(data uint64, b1, b2 uint8) bool {
		x, y := int(b1)%DataBits, int(b2)%DataBits
		if x == y {
			return true
		}
		_, res := Decode(InjectDataErrors(Encode(data), 1<<x|1<<y))
		return res == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHamming74RoundTrip(t *testing.T) {
	for n := uint8(0); n < 16; n++ {
		if got := DecodeHamming74(EncodeHamming74(n)); got != n {
			t.Errorf("Hamming74 round trip %d -> %d", n, got)
		}
	}
}

func TestHamming74CorrectsSingleError(t *testing.T) {
	for n := uint8(0); n < 16; n++ {
		code := EncodeHamming74(n)
		for bit := 0; bit < 7; bit++ {
			if got := DecodeHamming74(code ^ 1<<bit); got != n {
				t.Errorf("nibble %d bit %d: decoded %d", n, bit, got)
			}
		}
	}
}

func TestHamming74Overhead(t *testing.T) {
	if Hamming74Overhead() != 0.75 {
		t.Errorf("overhead = %v, paper states 75%%", Hamming74Overhead())
	}
}

func TestFlipHistogramBuckets(t *testing.T) {
	var h FlipHistogram
	mask := make([]byte, 32) // 4 words
	mask[0] = 0x01           // word 0: 1 flip
	mask[8] = 0x03           // word 1: 2 flips
	mask[16] = 0xFF          // word 2: 8 flips (>7)
	// word 3: clean
	if err := h.AccumulateWordFlips(mask); err != nil {
		t.Fatal(err)
	}
	if h.PerCount[0] != 1 || h.PerCount[1] != 1 || h.Over7 != 1 || h.Clean != 1 {
		t.Errorf("histogram = %+v", h)
	}
	if h.MaxFlips != 8 {
		t.Errorf("MaxFlips = %d, want 8", h.MaxFlips)
	}
	if h.TotalFlipped() != 3 || h.MultiBit() != 2 || h.Undetectable() != 1 {
		t.Errorf("aggregates: flipped=%d multi=%d undet=%d", h.TotalFlipped(), h.MultiBit(), h.Undetectable())
	}
}

func TestFlipHistogramRejectsRaggedMask(t *testing.T) {
	var h FlipHistogram
	if err := h.AccumulateWordFlips(make([]byte, 13)); err == nil {
		t.Error("ragged mask accepted")
	}
}

func TestClassifySECDED(t *testing.T) {
	var h FlipHistogram
	h.PerCount = [7]int{10, 5, 3, 2, 0, 0, 1}
	h.Over7 = 4
	h.Clean = 100
	out := ClassifySECDED(h)
	if out.Corrected != 10 || out.Detected != 5 || out.Escaped != 10 {
		t.Errorf("outcome = %+v", out)
	}
	if out.TotalWords != 125 {
		t.Errorf("TotalWords = %d, want 125", out.TotalWords)
	}
}

func TestHistogramCountMatchesPopcountProperty(t *testing.T) {
	f := func(words [][8]byte) bool {
		var h FlipHistogram
		mask := make([]byte, 0, len(words)*8)
		totalBits := 0
		for _, w := range words {
			mask = append(mask, w[:]...)
			for _, b := range w {
				totalBits += bits.OnesCount8(b)
			}
		}
		if err := h.AccumulateWordFlips(mask); err != nil {
			return false
		}
		// Reconstruct a lower bound on total flips from the histogram.
		sum := 0
		for k, c := range h.PerCount {
			sum += (k + 1) * c
		}
		sum += h.Over7 * 8
		return h.Clean+h.TotalFlipped() == len(words) && sum <= totalBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		Detected.String() != "detected" || Miscorrected.String() != "miscorrected" {
		t.Error("DecodeResult strings wrong")
	}
	if DecodeResult(9).String() == "" {
		t.Error("unknown result should still render")
	}
}
