package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// shardSpec returns base with a shard range [start, end) spliced in.
func shardSpec(t *testing.T, base string, start, end int) string {
	t.Helper()
	s := specValue(t, base)
	s.Shard = &ShardSpec{Start: start, End: end}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runReference executes a resolved sweep locally, uninterrupted, and
// returns the spool bytes split into header line and payload.
func runReference(t *testing.T, sweep *Sweep) (header, payload []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Run(context.Background(), core.WithSink(core.NewJSONLFileSink(f))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		t.Fatal("reference run produced no header line")
	}
	return b[:i+1], b[i+1:]
}

// TestServiceShardSubmitAndMerge: shard specs run through the whole
// service flow - dedup under their sub-fingerprint, spool, store - and
// the concatenated shard payloads are byte-identical to the payload of
// an uninterrupted whole-sweep run.
func TestServiceShardSubmitAndMerge(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestService(t, dir)
	defer srv.Drain()

	parent, err := Resolve(specValue(t, tinySpec()))
	if err != nil {
		t.Fatal(err)
	}
	if !parent.Shardable() || parent.Cells != 2 {
		t.Fatalf("tiny ber sweep: shardable=%v cells=%d, want shardable with 2 cells", parent.Shardable(), parent.Cells)
	}
	_, wantPayload := runReference(t, parent)

	var merged []byte
	for _, r := range []ShardSpec{{0, 1}, {1, 2}} {
		got := postSpec(t, ts.URL, shardSpec(t, tinySpec(), r.Start, r.End))
		wantFP := core.ShardFingerprint(parent.Fingerprint, r.Start, r.End)
		if got.Fingerprint != wantFP {
			t.Fatalf("shard [%d:%d) fingerprint %s, want %s", r.Start, r.End, got.Fingerprint, wantFP)
		}
		waitForStatus(t, ts.URL, got.Fingerprint, "cached")

		// A resubmitted shard spec dedups like a whole sweep.
		if again := postSpec(t, ts.URL, shardSpec(t, tinySpec(), r.Start, r.End)); again.Status != "cached" {
			t.Errorf("shard resubmit status = %q, want cached", again.Status)
		}

		resp, err := http.Get(ts.URL + "/sweeps/" + got.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			t.Fatal("shard stream has no header line")
		}
		var h core.SweepHeader
		if err := json.Unmarshal(body[:i], &h); err != nil {
			t.Fatal(err)
		}
		if h.Parent != parent.Fingerprint || h.ShardStart != r.Start || h.ShardEnd != r.End || h.Fingerprint != wantFP {
			t.Errorf("shard header lineage = parent %s [%d:%d) fp %s", h.Parent, h.ShardStart, h.ShardEnd, h.Fingerprint)
		}
		merged = append(merged, body[i+1:]...)

		// The stored catalog entry carries the same lineage.
		_, meta, err := srv.store.Path(got.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Parent != parent.Fingerprint || meta.ShardStart != r.Start || meta.ShardEnd != r.End {
			t.Errorf("stored meta lineage = parent %s [%d:%d)", meta.Parent, meta.ShardStart, meta.ShardEnd)
		}
	}
	if !bytes.Equal(merged, wantPayload) {
		t.Errorf("merged shard payloads (%d bytes) diverge from the whole-sweep payload (%d bytes)", len(merged), len(wantPayload))
	}
}

// TestServiceRejectsBadShards: out-of-range shards and shards of
// unshardable kinds are client errors, not jobs.
func TestServiceRejectsBadShards(t *testing.T) {
	t.Parallel()
	srv, ts := newTestService(t, t.TempDir())
	defer srv.Drain()
	for _, spec := range []string{
		shardSpec(t, tinySpec(), 0, 9),  // beyond the 2-cell plan
		shardSpec(t, tinySpec(), 1, 1),  // empty
		shardSpec(t, tinySpec(), -1, 1), // negative
		`{"kind":"aging","chips":[2],"identity_mapping":true,"shard":{"start":0,"end":1},
			"config":{"BER":{"Channels":[0],"Rows":[2000],"Reps":1}}}`,
	} {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("shard spec %q: status %d, want 400", spec, resp.StatusCode)
		}
	}
}

// TestServiceHealthzShardLineage: healthz lists in-flight jobs with their
// shard lineage, so a coordinator can see which shards of which parent
// are already running or queued on a worker.
func TestServiceHealthzShardLineage(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestService(t, dir)
	defer srv.Drain()

	// Pin one whole sweep and one shard in flight (white box: neither is
	// enqueued, so neither can finish before the healthz read): both must
	// appear in healthz, the shard with lineage.
	parent, err := Resolve(specValue(t, tinySpec()))
	if err != nil {
		t.Fatal(err)
	}
	shard, err := Resolve(specValue(t, shardSpec(t, tinySpec(), 0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	for _, sw := range []*Sweep{parent, shard} {
		j := &job{sweep: sw, status: StatusRunning, done: make(chan struct{})}
		srv.jobs[sw.Fingerprint] = j
		defer close(j.done)
	}
	srv.mu.Unlock()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK       bool        `json:"ok"`
		LiveJobs int         `json:"live_jobs"`
		Jobs     []healthJob `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.LiveJobs != 2 || len(h.Jobs) != 2 {
		t.Fatalf("healthz = %+v, want 2 live jobs", h)
	}
	found := false
	for _, j := range h.Jobs {
		if j.Fingerprint != shard.Fingerprint {
			continue
		}
		found = true
		if j.Parent != parent.Fingerprint || j.ShardStart != 0 || j.ShardEnd != 2 {
			t.Errorf("shard job lineage = %+v, want parent %s [0:2)", j, parent.Fingerprint)
		}
	}
	if !found {
		t.Errorf("healthz jobs %+v omit the queued shard %s", h.Jobs, shard.Fingerprint)
	}
}

// TestServiceDistributeFallsBackToLocal: a failing Distribute hook must
// not fail the sweep - the server logs it and completes locally, and the
// hook is only ever offered shardable whole sweeps.
func TestServiceDistributeFallsBackToLocal(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var offered []string
	srv, err := New(Config{Store: st, Workers: 1, Jobs: 2, Log: telemetry.NewLogger(t.Logf),
		Distribute: func(_ context.Context, sw *Sweep, _ string) error {
			offered = append(offered, sw.Fingerprint)
			return errors.New("all peers are down")
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	whole := postSpec(t, ts.URL, tinySpec())
	waitForStatus(t, ts.URL, whole.Fingerprint, "cached")
	// A shard job is itself never re-distributed.
	other := `{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0],"Rows":[2000,3000,4000],"Patterns":["Rowstripe0"],"Reps":1}}`
	shard := postSpec(t, ts.URL, shardSpec(t, other, 0, 2))
	waitForStatus(t, ts.URL, shard.Fingerprint, "cached")

	if len(offered) != 1 || offered[0] != whole.Fingerprint {
		t.Errorf("Distribute saw %v, want exactly the whole sweep %s", offered, whole.Fingerprint)
	}
}

// TestServiceStreamClientDisconnect: a live-tail stream whose client goes
// away must release its handler instead of polling the spool forever.
func TestServiceStreamClientDisconnect(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newTestService(t, dir)
	defer srv.Drain()

	// A job pinned in the running state (white box: never enqueued, so it
	// never terminates during the test) keeps the tail loop polling its
	// not-yet-spooled file indefinitely.
	sweep, err := Resolve(specValue(t, tinySpec()))
	if err != nil {
		t.Fatal(err)
	}
	j := &job{sweep: sweep, status: StatusRunning, done: make(chan struct{})}
	srv.mu.Lock()
	srv.jobs[sweep.Fingerprint] = j
	srv.mu.Unlock()
	defer close(j.done)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/sweeps/"+sweep.Fingerprint, nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()

	select {
	case <-done:
		t.Fatal("live tail ended while the job was still running")
	case <-time.After(250 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler kept tailing after the client disconnected")
	}
}
