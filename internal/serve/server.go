package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/query"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// Job states, as reported by the status endpoint.
const (
	StatusQueued        = "queued"
	StatusRunning       = "running"
	StatusDone          = "done"
	StatusFailed        = "failed"
	StatusCheckpointed  = "checkpointed"
	statusQueueCapacity = 256
)

// job is one enqueued sweep execution. A fingerprint has at most one live
// job; repeated submissions of the same spec attach to it (or to the
// store, once finished).
type job struct {
	sweep *Sweep

	mu     sync.Mutex
	status string
	errMsg string
	// done is closed when the job reaches a terminal state for this
	// enqueue (done, failed, or checkpointed).
	done chan struct{}
}

func (j *job) state() (string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.errMsg
}

func (j *job) setState(status, errMsg string) {
	j.mu.Lock()
	j.status, j.errMsg = status, errMsg
	j.mu.Unlock()
}

// Server executes submitted sweeps on a bounded worker pool, spools their
// records to disk as they stream, finalizes finished spools into the
// content-addressed store, and serves results - finished or in flight -
// as NDJSON.
type Server struct {
	store      *store.Store
	queries    *query.Engine
	spoolDir   string
	workers    int
	jobsOpt    int
	log        *telemetry.Logger
	pprof      bool
	distribute func(ctx context.Context, sw *Sweep, spool string) error

	queue chan *job

	mu   sync.Mutex
	jobs map[string]*job

	runCtx context.Context
	drain  context.CancelFunc
	wg     sync.WaitGroup
}

// Config parameterizes a Server.
type Config struct {
	// Store is the result store (required).
	Store *store.Store
	// Workers bounds concurrently executing sweeps (default 1).
	Workers int
	// Jobs is the per-sweep engine worker bound (core.WithJobs; default
	// GOMAXPROCS).
	Jobs int
	// Log receives service log lines (default: log.Printf wrapped as a
	// telemetry.Logger; wrap any printf-shaped sink with
	// telemetry.NewLogger).
	Log *telemetry.Logger
	// Pprof, when true, mounts net/http/pprof under /debug/pprof/ on the
	// service handler (hbmrdd -pprof). Off by default: profiling
	// endpoints expose internals and cost CPU when scraped.
	Pprof bool
	// Distribute, when set, is offered every shardable sweep before local
	// execution (the fabric coordinator plugs in here). It must leave the
	// complete sweep - byte-identical to a local run - in spool, or at
	// least a valid checkpoint prefix: on error the server falls back to
	// executing locally, resuming whatever prefix was left behind.
	Distribute func(ctx context.Context, sw *Sweep, spool string) error
}

// New builds a Server and starts its workers. Stop with Drain.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: config needs a store")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	lg := cfg.Log
	if lg == nil {
		lg = telemetry.NewLogger(log.Printf)
	}
	spoolDir := filepath.Join(cfg.Store.Root(), "spool")
	if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queries := query.NewEngine(cfg.Store)
	queries.Log = lg
	s := &Server{
		store:      cfg.Store,
		queries:    queries,
		spoolDir:   spoolDir,
		workers:    workers,
		jobsOpt:    cfg.Jobs,
		log:        lg,
		pprof:      cfg.Pprof,
		distribute: cfg.Distribute,
		queue:      make(chan *job, statusQueueCapacity),
		jobs:       make(map[string]*job),
		runCtx:     ctx,
		drain:      cancel,
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// logf keeps the historical printf-style call sites; lines go through
// the unified telemetry.Logger at info level.
func (s *Server) logf(format string, args ...any) {
	s.log.Infof(format, args...)
}

// Drain stops the service gracefully: in-flight sweeps are cancelled,
// their sinks left as valid checkpoint prefixes on disk, and the workers
// joined. A restarted server resumes checkpointed spools from where they
// stopped when their specs are resubmitted.
func (s *Server) Drain() {
	s.drain()
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the service's HTTP interface:
//
//	POST /sweeps            submit a spec; replies with fingerprint+status
//	GET  /sweeps            catalog: jobs plus stored sweeps (?kind= filters)
//	GET  /sweeps/<fp>         stream the sweep's NDJSON (live or stored)
//	GET  /sweeps/<fp>/status  job/store status for the fingerprint
//	GET  /sweeps/<fp>/records typed decoded records of a stored sweep
//	POST /query             run an aggregation spec (?format=csv for CSV);
//	                        repeated identical specs hit the derived cache
//	GET  /healthz           liveness: store path, live jobs, catalog size,
//	                        plus a debug-vars style metrics snapshot
//	GET  /metrics           Prometheus text exposition of every metric
//
// With Config.Pprof, net/http/pprof additionally mounts under
// /debug/pprof/. Every route is wrapped with request count and latency
// metrics; the wrapping is out-of-band and changes no response bytes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/query", instrument("query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleQuery(w, r)
	}))
	mux.HandleFunc("/sweeps", instrument("sweeps", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleList(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}))
	mux.HandleFunc("/sweeps/", instrument("sweeps_fp", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/sweeps/")
		if fp, ok := strings.CutSuffix(rest, "/status"); ok {
			s.handleStatus(w, r, fp)
			return
		}
		if fp, ok := strings.CutSuffix(rest, "/records"); ok {
			s.handleRecords(w, r, fp)
			return
		}
		s.handleStream(w, r, rest)
	}))
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the process-wide registry in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Default.WritePrometheus(w)
}

// healthJob is one in-flight job in the healthz report. Shard lineage
// (parent fingerprint and cell range) lets a coordinator dedup in-flight
// shards across workers the way handleSubmit dedups whole sweeps.
type healthJob struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
	Parent      string `json:"parent,omitempty"`
	ShardStart  int    `json:"shard_start"`
	ShardEnd    int    `json:"shard_end"`
}

// handleHealthz reports liveness plus the operational gauges a deployment
// watches: where the store lives, which sweeps are queued or running
// (with shard lineage), and how many finished sweeps the catalog can
// serve.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	inflight := []healthJob{}
	s.mu.Lock()
	for fp, j := range s.jobs {
		status, _ := j.state()
		if status != StatusQueued && status != StatusRunning {
			continue
		}
		inflight = append(inflight, healthJob{
			Fingerprint: fp,
			Kind:        string(j.sweep.Kind),
			Status:      status,
			Parent:      j.sweep.Parent,
			ShardStart:  j.sweep.ShardStart,
			ShardEnd:    j.sweep.ShardEnd,
		})
	}
	s.mu.Unlock()
	catalogSize, _ := s.store.Count()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"store":         s.store.Root(),
		"live_jobs":     len(inflight),
		"jobs":          inflight,
		"stored_sweeps": catalogSize,
		// Debug-vars style snapshot of the metrics registry: the same
		// series /metrics exposes, as JSON for humans and scripts.
		"metrics": telemetry.Default.Snapshot(),
	})
}

// submitResponse is the reply to POST /sweeps.
type submitResponse struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad sweep spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	sweep, err := Resolve(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := sweep.Fingerprint
	resp := submitResponse{Fingerprint: fp, Kind: string(sweep.Kind)}

	// A finished identical sweep is served from the store, never re-run.
	if s.store.Has(fp) {
		resp.Status = "cached"
		writeJSON(w, http.StatusOK, resp)
		return
	}

	s.mu.Lock()
	j, exists := s.jobs[fp]
	if exists {
		status, _ := j.state()
		if status == StatusQueued || status == StatusRunning {
			s.mu.Unlock()
			resp.Status = status
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Terminal but not stored (failed or checkpointed): re-enqueue; a
		// checkpointed spool resumes from its valid prefix.
	}
	j = &job{sweep: sweep, status: StatusQueued, done: make(chan struct{})}
	select {
	case s.queue <- j:
		s.jobs[fp] = j
		s.mu.Unlock()
		resp.Status = StatusQueued
		writeJSON(w, http.StatusAccepted, resp)
	default:
		s.mu.Unlock()
		http.Error(w, "sweep queue full", http.StatusServiceUnavailable)
	}
}

// listResponse is the reply to GET /sweeps.
type listResponse struct {
	Jobs   []submitResponse `json:"jobs"`
	Stored []store.Meta     `json:"stored"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	kindFilter := r.URL.Query().Get("kind")
	var out listResponse
	s.mu.Lock()
	for fp, j := range s.jobs {
		if kindFilter != "" && string(j.sweep.Kind) != kindFilter {
			continue
		}
		status, errMsg := j.state()
		out.Jobs = append(out.Jobs, submitResponse{
			Fingerprint: fp, Kind: string(j.sweep.Kind), Status: status, Error: errMsg,
		})
	}
	s.mu.Unlock()
	cat, err := query.NewCatalog(s.store)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if kindFilter != "" {
		out.Stored = cat.Find(query.ByKind(kindFilter))
	} else {
		out.Stored = cat.List()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRecords serves a stored sweep's records as typed JSON - one
// document, header plus record array, decoded through the kind's
// concrete record type (proving it round-trips). The decoded slice is
// held in memory but the response encodes record by record, so the
// handler never buffers a second full copy of a large sweep.
func (s *Server) handleRecords(w http.ResponseWriter, _ *http.Request, fp string) {
	rc, meta, err := s.store.Get(fp)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			http.Error(w, "unknown sweep", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer rc.Close()
	h, recs, err := core.DecodeRecords(core.Kind(meta.Kind), rc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hb, err := json.Marshal(h)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = fmt.Fprintf(w, `{"header":%s,"records":[`, hb)
	v := reflect.ValueOf(recs)
	for i := 0; i < v.Len(); i++ {
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		rb, err := json.Marshal(v.Index(i).Interface())
		if err != nil {
			return // headers are sent; the truncated body signals the failure
		}
		_, _ = w.Write(rb)
	}
	_, _ = io.WriteString(w, "]}\n")
}

// handleQuery runs one aggregation spec against the store. The canonical
// aggregate JSON is content-addressed into the store's derived cache, so
// a repeated identical spec is answered without re-reading the raw
// records; the X-Hbmrd-Query-Cache header reports hit or miss, and
// X-Hbmrd-Query-Source which representation answered (cache, columnar,
// or jsonl).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec query.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad query spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.queries.Run(spec)
	if err != nil {
		switch {
		case errors.Is(err, query.ErrSpec):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, store.ErrNotFound):
			http.Error(w, "unknown sweep (only finished, stored sweeps can be queried)", http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	cache := "miss"
	if res.CacheHit {
		cache = "hit"
	}
	w.Header().Set("X-Hbmrd-Query-Cache", cache)
	w.Header().Set("X-Hbmrd-Query-Source", res.Source)
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		_, _ = io.WriteString(w, res.Aggregate.CSV())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(res.JSON)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, fp string) {
	if _, meta, err := s.store.Path(fp); err == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"fingerprint": fp, "status": "cached", "kind": meta.Kind,
			"cells": meta.Cells, "records": meta.Records, "bytes": meta.Bytes,
		})
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[fp]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	status, errMsg := j.state()
	writeJSON(w, http.StatusOK, submitResponse{
		Fingerprint: fp, Kind: string(j.sweep.Kind), Status: status, Error: errMsg,
	})
}

// handleStream serves a sweep's NDJSON: instantly from the store on a
// fingerprint hit, otherwise by tailing the live spool until the job
// reaches a terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, fp string) {
	if path, _, err := s.store.Path(fp); err == nil {
		w.Header().Set("Content-Type", "application/x-ndjson")
		f, err := os.Open(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		_, _ = io.Copy(w, f)
		return
	}

	s.mu.Lock()
	j, ok := s.jobs[fp]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	// Tail the spool: emit whatever is on disk, flush, wait for growth.
	// The writer emits whole lines per record, so the client always holds
	// a valid NDJSON prefix. The open descriptor stays readable even after
	// the finished spool is finalized into the store and unlinked.
	emit := func() error {
		if f == nil {
			var err error
			f, err = os.Open(s.spoolPath(fp))
			if err != nil {
				return nil // not spooled yet; keep waiting
			}
		}
		if _, err := io.Copy(w, f); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	for {
		if err := emit(); err != nil {
			return // client went away
		}
		select {
		case <-j.done:
			if err := emit(); err != nil { // drain the tail landed before done
				return
			}
			if f == nil {
				// The spool never became visible to this tailer: either the
				// job finished and was finalized (spool unlinked) before our
				// first poll - serve the store copy - or it never ran at all
				// (e.g. left queued by a drain).
				if path, _, err := s.store.Path(fp); err == nil {
					if sf, err := os.Open(path); err == nil {
						defer sf.Close()
						_, _ = io.Copy(w, sf)
						return
					}
				}
				http.Error(w, "sweep did not run", http.StatusServiceUnavailable)
			}
			return
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (s *Server) spoolPath(fp string) string {
	return filepath.Join(s.spoolDir, strings.TrimPrefix(fp, "sha256:")+".jsonl")
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.runCtx.Err() != nil {
			// Draining: leave the job queued; its spool (if any) already
			// holds a valid checkpoint for the next submission.
			close(j.done)
			continue
		}
		s.runJob(j)
		// A long-lived daemon must not pin every fleet it ever built:
		// finished jobs leave the map (status and streaming come from the
		// store now), and terminal jobs of any flavour drop their runner
		// closure - the only reference to the simulated chips.
		if status, _ := j.state(); status == StatusDone {
			s.mu.Lock()
			if s.jobs[j.sweep.Fingerprint] == j {
				delete(s.jobs, j.sweep.Fingerprint)
			}
			s.mu.Unlock()
		}
		j.sweep.release()
		close(j.done)
	}
}

// runJob executes one sweep into its spool file, resuming a previous
// checkpoint when one is on disk, and finalizes the finished spool into
// the store.
func (s *Server) runJob(j *job) {
	fp := j.sweep.Fingerprint
	j.setState(StatusRunning, "")
	mJobsRunning.Add(1)
	defer mJobsRunning.Add(-1)
	defer func() {
		switch status, _ := j.state(); status {
		case StatusDone:
			mSweepsDone.Inc()
		case StatusFailed:
			mSweepsFailed.Inc()
		case StatusCheckpointed:
			mSweepsCheckpt.Inc()
		}
	}()
	s.logf("serve: %s sweep %s running", j.sweep.Kind, fp)

	spool := s.spoolPath(fp)
	if s.distribute != nil && j.sweep.Shardable() {
		err := s.distribute(s.runCtx, j.sweep, spool)
		switch {
		case err == nil:
			if ferr := s.finalize(j, spool); ferr != nil {
				j.setState(StatusFailed, ferr.Error())
				s.logf("serve: sweep %s finalize failed: %v", fp, ferr)
				return
			}
			j.setState(StatusDone, "")
			s.logf("serve: sweep %s done (distributed)", fp)
			return
		case errors.Is(err, context.Canceled), s.runCtx.Err() != nil:
			j.setState(StatusCheckpointed, "")
			s.logf("serve: sweep %s checkpointed at %s", fp, spool)
			return
		default:
			// Whatever prefix distribution merged is a valid checkpoint;
			// the local run below resumes it.
			s.logf("serve: sweep %s distribution failed (%v); running locally", fp, err)
		}
	}
	runErr, resumed := s.execute(j, spool, true)
	if runErr != nil && resumed && !errors.Is(runErr, context.Canceled) && s.runCtx.Err() == nil {
		// The runner rejected the checkpoint (a kind that cannot resume,
		// or a spool from before a code-generation bump whose fingerprint
		// no longer matches). A stale spool must not poison its
		// fingerprint forever: restart the sweep from scratch.
		s.logf("serve: sweep %s checkpoint rejected (%v); restarting fresh", fp, runErr)
		runErr, _ = s.execute(j, spool, false)
	}
	switch {
	case runErr == nil:
		if err := s.finalize(j, spool); err != nil {
			j.setState(StatusFailed, err.Error())
			s.logf("serve: sweep %s finalize failed: %v", fp, err)
			return
		}
		j.setState(StatusDone, "")
		s.logf("serve: sweep %s done", fp)
	case errors.Is(runErr, context.Canceled):
		j.setState(StatusCheckpointed, "")
		s.logf("serve: sweep %s checkpointed at %s", fp, spool)
	default:
		j.setState(StatusFailed, runErr.Error())
		s.logf("serve: sweep %s failed: %v", fp, runErr)
	}
}

// execute performs one attempt at a job's sweep: open the spool, resume
// its checkpoint when allowed and present (otherwise start the file
// over), and run. It reports whether a checkpoint was attached, so the
// caller can distinguish "the checkpoint was rejected" from "the sweep
// failed".
func (s *Server) execute(j *job, spool string, allowResume bool) (runErr error, resumed bool) {
	f, err := os.OpenFile(spool, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err, false
	}
	opts := []core.RunOption{core.WithSink(core.NewJSONLFileSink(f))}
	if s.jobsOpt > 0 {
		opts = append(opts, core.WithJobs(s.jobsOpt))
	}
	if allowResume {
		if cp, err := core.ResumeFrom(f); err == nil {
			opts = append(opts, core.WithResume(cp))
			resumed = true
			mSpoolResumes.Inc()
			s.logf("serve: sweep %s resuming from %d checkpointed records", j.sweep.Fingerprint, cp.Records())
		}
	}
	if !resumed {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err, false
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err, resumed
	}
	runErr = j.sweep.Run(s.runCtx, opts...)
	if cerr := f.Close(); runErr == nil {
		runErr = cerr
	}
	return runErr, resumed
}

// finalize moves a completed spool into the store - stamped with the
// sweep's catalog metadata (geometry, chip set, raw config) so the query
// subsystem can filter on it - and removes the spool. Record and byte
// counts are computed by the store while staging the copy.
func (s *Server) finalize(j *job, spool string) error {
	header, err := spoolHeader(spool)
	if err != nil {
		return err
	}
	meta := store.Meta{
		Fingerprint:  j.sweep.Fingerprint,
		Kind:         string(j.sweep.Kind),
		Cells:        header.Cells,
		Generation:   header.Generation,
		Geometry:     j.sweep.Geometry,
		Ranks:        j.sweep.Ranks,
		DataRateMbps: j.sweep.DataRateMbps,
		Chips:        j.sweep.Chips,
		Parent:       j.sweep.Parent,
		ShardStart:   j.sweep.ShardStart,
		ShardEnd:     j.sweep.ShardEnd,
		Config:       j.sweep.Spec.Config,
	}
	if err := s.store.PutFile(meta, spool); err != nil {
		return err
	}
	return os.Remove(spool)
}

// spoolHeader reads a completed spool's header line.
func spoolHeader(path string) (core.SweepHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.SweepHeader{}, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return core.SweepHeader{}, fmt.Errorf("serve: empty spool %s", path)
	}
	var h core.SweepHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Format == 0 {
		return core.SweepHeader{}, fmt.Errorf("serve: spool %s has no sweep header", path)
	}
	return h, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
