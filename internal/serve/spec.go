// Package serve is the hbmrdd sweep service: sweeps are submitted as
// specs over HTTP, executed on the bounded sweep engine, streamed live as
// NDJSON, checkpointed on shutdown, and deduplicated through the
// content-addressed result store - a finished sweep with the same
// fingerprint is served from disk instead of re-executed. The read side
// rides the same store: the catalog lists finished sweeps with their
// spec metadata, stored records decode back to typed JSON, and POST
// /query runs internal/query aggregation specs whose results are
// content-addressed into the store's derived cache, so repeated
// identical queries never re-read the raw records.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

// SweepSpec is the wire form of one sweep request: which experiment to
// run, on which chips and geometry, with which runner config. Everything
// that feeds the fingerprint is in the spec, so identical specs hit the
// store.
type SweepSpec struct {
	// Kind selects the experiment ("ber", "hcfirst", "hcnth",
	// "variability", "rowpress-ber", "rowpress-hc", "bypass", "aging",
	// "vrd", "coldist").
	Kind string `json:"kind"`
	// Chips are the study chip indices (default: all six).
	Chips []int `json:"chips,omitempty"`
	// Geometry is a preset name (default: the paper's HBM2_8Gb).
	Geometry string `json:"geometry,omitempty"`
	// IdentityMapping disables the vendor row swizzle, as experiments that
	// reason in physical rows do.
	IdentityMapping bool `json:"identity_mapping,omitempty"`
	// Config is the runner config for Kind (core.BERConfig and friends),
	// with unset fields taking the runner's defaults. Unknown fields are
	// rejected so a typo cannot silently run the wrong sweep.
	Config json.RawMessage `json:"config,omitempty"`
	// Shard, when set, restricts execution to the contiguous cell range
	// [Start, End) of the sweep's plan. The job runs under the shard's
	// sub-fingerprint (core.ShardFingerprint of the parent sweep's), so
	// shards dedup, spool, checkpoint, and store exactly like whole
	// sweeps. Set by the distributed coordinator (internal/fabric);
	// rejected for aging sweeps, which cannot shard.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// ShardSpec is the wire form of a plan cell range [Start, End).
type ShardSpec struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Sweep is a resolved spec: the fleet is built, the config decoded and
// bound to its runner, and the fingerprint computed - ready to look up in
// the store or execute.
type Sweep struct {
	Spec        SweepSpec
	Kind        core.Kind
	Fingerprint string
	// Geometry is the resolved preset name and Chips the resolved chip
	// indices (the spec's fields with defaults applied) - the catalog
	// metadata recorded alongside the finished sweep in the store. Ranks
	// and DataRateMbps come from the resolved preset (rank count per
	// pseudo channel; per-pin data rate, 0 for hand-rolled presets).
	Geometry     string
	Ranks        int
	DataRateMbps int
	Chips        []int
	// Cells is the full plan's cell count (0 for aging, which has no
	// single plan) - the bound a coordinator shards against.
	Cells int
	// Parent, ShardStart and ShardEnd carry shard lineage when the spec
	// requested a shard: Parent is the full sweep's fingerprint and
	// Fingerprint the shard's sub-fingerprint.
	Parent     string
	ShardStart int
	ShardEnd   int

	run func(ctx context.Context, opts ...core.RunOption) error
}

// Shardable reports whether a coordinator can split this sweep: it must
// have a plan of more than one cell and not itself be a shard.
func (s *Sweep) Shardable() bool {
	return s.Parent == "" && s.Cells > 1
}

// Run executes the sweep. Records and progress flow exclusively through
// the caller's sink options; the in-memory result slice is discarded.
func (s *Sweep) Run(ctx context.Context, opts ...core.RunOption) error {
	if s.run == nil {
		return fmt.Errorf("serve: sweep %s was released after execution", s.Fingerprint)
	}
	return s.run(ctx, opts...)
}

// release drops the runner closure - and with it the built chip fleet -
// once the sweep has executed. Identity fields (Kind, Fingerprint, Spec)
// stay usable for status reporting.
func (s *Sweep) release() { s.run = nil }

// Resolve validates the spec and binds it to a runner.
func Resolve(spec SweepSpec) (*Sweep, error) {
	kind := core.Kind(spec.Kind)
	chips := spec.Chips
	if len(chips) == 0 {
		chips = core.AllChips()
	}
	var chipOpts []hbm.Option
	preset := hbm.DefaultPreset()
	if spec.Geometry != "" {
		p, err := hbm.LookupPreset(spec.Geometry)
		if err != nil {
			return nil, err
		}
		preset = p
		chipOpts = append(chipOpts, hbm.WithGeometry(preset))
	}
	g := preset.Geometry
	if spec.IdentityMapping {
		chipOpts = append(chipOpts, hbm.WithMapper(rowmap.Identity{NumRows: g.Rows}))
	}
	fleet, err := core.NewFleet(chips, chipOpts...)
	if err != nil {
		return nil, err
	}

	s := &Sweep{Spec: spec, Kind: kind, Geometry: preset.Name,
		Ranks: g.NumRanks(), DataRateMbps: preset.DataRateMbps, Chips: chips}
	var cfg any
	switch kind {
	case core.KindBER:
		c := core.BERConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunBERContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindHCFirst:
		c := core.HCFirstConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunHCFirstContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindHCNth:
		c := core.HCNthConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunHCNthContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindVariability:
		c := core.VariabilityConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunVariabilityContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindRowPressBER:
		c := core.RowPressBERConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunRowPressBERContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindRowPressHC:
		c := core.RowPressHCConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunRowPressHCContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindBypass:
		c := core.BypassConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunBypassContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindAging:
		c := core.AgingConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunAgingContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindVRD:
		c := core.VRDConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunVRDContext(ctx, fleet, c, opts...)
			return err
		}
	case core.KindColDisturb:
		c := core.ColDisturbConfig{}
		if err := decodeConfig(spec.Config, &c); err != nil {
			return nil, err
		}
		cfg = c
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			_, err := core.RunColDisturbContext(ctx, fleet, c, opts...)
			return err
		}
	default:
		return nil, fmt.Errorf("serve: unknown sweep kind %q (have: %v)", spec.Kind, core.Kinds())
	}

	fp, err := core.FingerprintFor(kind, fleet, cfg)
	if err != nil {
		return nil, err
	}
	s.Fingerprint = fp
	if cells, err := core.PlanSize(kind, fleet, cfg); err == nil {
		s.Cells = cells
	}
	if spec.Shard != nil {
		sh := *spec.Shard
		if s.Cells == 0 {
			return nil, fmt.Errorf("serve: %s sweeps cannot be sharded", kind)
		}
		if sh.Start < 0 || sh.End > s.Cells || sh.Start >= sh.End {
			return nil, fmt.Errorf("serve: shard range [%d:%d) invalid for a plan of %d cells", sh.Start, sh.End, s.Cells)
		}
		s.Parent = fp
		s.ShardStart, s.ShardEnd = sh.Start, sh.End
		s.Fingerprint = core.ShardFingerprint(fp, sh.Start, sh.End)
		inner := s.run
		s.run = func(ctx context.Context, opts ...core.RunOption) error {
			return inner(ctx, append(opts, core.WithShard(core.ShardRange{Start: sh.Start, End: sh.End}))...)
		}
	}
	return s, nil
}

// decodeConfig decodes a spec's runner config strictly: unknown fields
// are errors, and trailing garbage is rejected.
func decodeConfig(raw json.RawMessage, into any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("serve: bad sweep config: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("serve: trailing data after sweep config")
	}
	return nil
}
