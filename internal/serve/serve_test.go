package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/query"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// tinySpec is a sweep small enough to finish in milliseconds: one chip,
// one channel, two rows, one pattern.
func tinySpec() string {
	return `{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0],"Rows":[2000,3000],"Patterns":["Rowstripe0"],"Reps":1}}`
}

func newTestService(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Workers: 1, Jobs: 2, Log: telemetry.NewLogger(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSpec(t *testing.T, url, spec string) submitResponse {
	t.Helper()
	resp, err := http.Post(url+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps: %d %s", resp.StatusCode, body)
	}
	var out submitResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("POST /sweeps response %q: %v", body, err)
	}
	return out
}

func waitForStatus(t *testing.T, url, fp string, want ...string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/sweeps/" + fp + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.Status == w {
				return st.Status
			}
		}
		if st.Status == StatusFailed {
			t.Fatalf("sweep failed: %s", st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %v", fp, want)
	return ""
}

// TestServiceSubmitStreamAndCacheHit is the service's aha flow: submit a
// spec, stream its NDJSON, resubmit the identical spec and get it served
// from the store without re-execution.
func TestServiceSubmitStreamAndCacheHit(t *testing.T) {
	srv, ts := newTestService(t, t.TempDir())
	defer srv.Drain()

	first := postSpec(t, ts.URL, tinySpec())
	if first.Fingerprint == "" || first.Kind != "ber" {
		t.Fatalf("submit response = %+v", first)
	}
	if first.Status != StatusQueued && first.Status != StatusRunning {
		t.Fatalf("first submit status = %q", first.Status)
	}

	// GET streams the sweep - tailing it live if still running - and ends
	// with the complete record set.
	resp, err := http.Get(ts.URL + "/sweeps/" + first.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: %d, %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	assertBERStream(t, body, first.Fingerprint)

	waitForStatus(t, ts.URL, first.Fingerprint, "cached")

	// The identical spec is a cache hit, not a new job.
	second := postSpec(t, ts.URL, tinySpec())
	if second.Status != "cached" {
		t.Errorf("identical resubmit status = %q, want cached", second.Status)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("identical specs fingerprint differently: %s vs %s", first.Fingerprint, second.Fingerprint)
	}

	// The cache-hit stream is byte-identical to the live one.
	resp, err = http.Get(ts.URL + "/sweeps/" + first.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached, body) {
		t.Error("stored stream diverges from the live stream")
	}

	// A different spec is a different sweep.
	other := postSpec(t, ts.URL, `{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0],"Rows":[2000],"Patterns":["Rowstripe0"],"Reps":1}}`)
	if other.Fingerprint == first.Fingerprint {
		t.Error("different specs share a fingerprint")
	}
	waitForStatus(t, ts.URL, other.Fingerprint, "cached")
}

// assertBERStream checks an NDJSON body: header first with the right
// fingerprint, then the sweep's records.
func assertBERStream(t *testing.T, body []byte, fp string) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	if !sc.Scan() {
		t.Fatal("empty stream")
	}
	var h core.SweepHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Format == 0 {
		t.Fatalf("first line is not a sweep header: %s", sc.Bytes())
	}
	if h.Fingerprint != fp || h.Kind != "ber" {
		t.Errorf("header = %+v, want fingerprint %s", h, fp)
	}
	records := 0
	for sc.Scan() {
		var rec core.BERRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		records++
	}
	// Two rows x (one pattern + WCDP).
	if records != 4 {
		t.Errorf("streamed %d records, want 4", records)
	}
}

func TestServiceRejectsBadSpecs(t *testing.T) {
	srv, ts := newTestService(t, t.TempDir())
	defer srv.Drain()
	for _, spec := range []string{
		`{"kind":"nope"}`,
		`{"kind":"ber","config":{"Rowz":[1]}}`,
		`{"kind":"ber","geometry":"HBM9"}`,
		`{"kind":"ber","chips":[99]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d, want 400", spec, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/sweeps/sha256:aabbccddeeff/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint status: %d, want 404", resp.StatusCode)
	}
}

// TestServiceDrainCheckpointsAndResumes: SIGTERM-style drain cancels the
// in-flight sweep leaving a valid checkpoint spool; a restarted service
// resumes it on resubmission and the final stream is byte-identical to
// an uninterrupted run of the same spec.
func TestServiceDrainCheckpointsAndResumes(t *testing.T) {
	dir := t.TempDir()
	// Enough cells that a drain lands mid-sweep: 4 channels x 24 rows.
	spec := `{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0,1,2,3],"Rows":` + intsJSON(sampleRows24()) + `,"Patterns":["Rowstripe0","Checkered0"],"Reps":2}}`

	srv, ts := newTestService(t, dir)
	first := postSpec(t, ts.URL, spec)
	fp := first.Fingerprint

	// Wait until records are actually spooling, then drain.
	spool := srv.spoolPath(fp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(spool); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never started spooling")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Drain()
	ts.Close()

	finished := srv.store.Has(fp)
	if !finished {
		// The expected path: a checkpoint spool with a valid prefix.
		f, err := os.Open(spool)
		if err != nil {
			t.Fatalf("drained service left no spool: %v", err)
		}
		cp, err := core.ResumeFrom(f)
		f.Close()
		if err != nil {
			t.Fatalf("drained spool is not a valid checkpoint: %v", err)
		}
		t.Logf("drained with %d checkpointed records", cp.Records())
	} else {
		t.Log("sweep finished before the drain; resubmission still must hit the store")
	}

	// Restart on the same store and resubmit: the sweep resumes (or hits
	// the store) and completes.
	srv2, ts2 := newTestService(t, dir)
	defer srv2.Drain()
	postSpec(t, ts2.URL, spec)
	waitForStatus(t, ts2.URL, fp, "cached")
	resp, err := http.Get(ts2.URL + "/sweeps/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same spec executed uninterrupted, straight through
	// the resolved runner.
	sweep, err := Resolve(specValue(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Run(context.Background(), core.WithSink(core.NewJSONLFileSink(rf))); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed service stream (%d bytes) diverges from uninterrupted run (%d bytes)", len(got), len(want))
	}
}

// TestServiceRecoversFromRejectedCheckpoint: a spool whose checkpoint the
// runner refuses (aging cannot resume; the same happens for spools from
// an older code generation) must not poison its fingerprint - the
// service restarts the sweep from scratch and completes it.
func TestServiceRecoversFromRejectedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind":"aging","chips":[2],"identity_mapping":true,
		"config":{"BER":{"Channels":[0],"Rows":[2000,3000],"Reps":1}}}`
	sweep, err := Resolve(specValue(t, spec))
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the drained state: a spool holding only the sweep's
	// header, exactly what a SIGTERM during an aging run leaves behind.
	spoolDir := filepath.Join(dir, "spool")
	if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf(`{"hbmrd_sweep":1,"kind":"aging","fingerprint":"%s","cells":4,"generation":%d}`+"\n",
		sweep.Fingerprint, core.CodeGeneration)
	spool := filepath.Join(spoolDir, strings.TrimPrefix(sweep.Fingerprint, "sha256:")+".jsonl")
	if err := os.WriteFile(spool, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestService(t, dir)
	defer srv.Drain()
	got := postSpec(t, ts.URL, spec)
	if got.Fingerprint != sweep.Fingerprint {
		t.Fatalf("fingerprint %s, want %s", got.Fingerprint, sweep.Fingerprint)
	}
	waitForStatus(t, ts.URL, sweep.Fingerprint, "cached")
}

func specValue(t *testing.T, spec string) SweepSpec {
	t.Helper()
	var s SweepSpec
	if err := json.Unmarshal([]byte(spec), &s); err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleRows24() []int {
	return core.SampleRows(24)
}

func intsJSON(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TestServiceHealthz: the health endpoint reports the operational gauges
// a deployment watches - store path, live jobs, catalog size.
func TestServiceHealthz(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, ts := newTestService(t, dir)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK           bool   `json:"ok"`
		Store        string `json:"store"`
		LiveJobs     int    `json:"live_jobs"`
		StoredSweeps int    `json:"stored_sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Store != dir {
		t.Errorf("healthz = %+v, want ok with store %s", h, dir)
	}
	if h.LiveJobs != 0 || h.StoredSweeps != 0 {
		t.Errorf("fresh service healthz = %+v, want zero jobs and sweeps", h)
	}
}

// ingestTinySweep runs the -out flow into the server's store and returns
// the stored fingerprint: the acceptance path where a CLI-produced sweep
// is finalized into the store the service queries.
func ingestTinySweep(t *testing.T, dir string) string {
	t.Helper()
	fleet, err := core.NewFleet([]int{0}, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := core.NewJSONLFileSink(f)
	if _, err := core.RunHCFirstContext(context.Background(), fleet, core.HCFirstConfig{
		Channels: []int{0, 1}, Rows: core.SampleRows(2), Reps: 1,
	}, core.WithSink(sink)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := query.Ingest(st, path)
	if err != nil {
		t.Fatal(err)
	}
	return meta.Fingerprint
}

// TestServiceQueryFig5CacheHit is the acceptance criterion end to end: a
// sweep produced by the -out file sink and finalized into the store
// reproduces the Fig 5 HCfirst distribution via POST /query; the hbmrd
// query CLI path (a query.Engine over the same store) returns
// byte-identical aggregate output; and the second identical POST /query
// is served from the derived-result cache without re-reading the raw
// records.
func TestServiceQueryFig5CacheHit(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv, ts := newTestService(t, dir)
	fp := ingestTinySweep(t, dir)

	spec, err := query.FigureSpec("fig5", fp)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	post := func() (string, []byte) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(specJSON))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query: %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Hbmrd-Query-Cache"), body
	}

	cache1, body1 := post()
	if cache1 != "miss" {
		t.Errorf("first query cache = %q, want miss", cache1)
	}
	var agg query.Aggregate
	if err := json.Unmarshal(body1, &agg); err != nil {
		t.Fatalf("aggregate JSON: %v", err)
	}
	if agg.Kind != "hcfirst" || len(agg.Groups) == 0 {
		t.Fatalf("fig5 aggregate = kind %q, %d groups", agg.Kind, len(agg.Groups))
	}
	rawAfterFirst := srv.queries.RawReads()
	if rawAfterFirst != 1 {
		t.Errorf("first query made %d raw reads, want 1", rawAfterFirst)
	}

	// The CLI path: an independent engine over the same store.
	cliStore, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cli := query.NewEngine(cliStore)
	res, err := cli.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.JSON, body1) {
		t.Error("hbmrd query aggregate bytes differ from POST /query bytes")
	}

	cache2, body2 := post()
	if cache2 != "hit" {
		t.Errorf("second query cache = %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit returned different bytes")
	}
	if got := srv.queries.RawReads(); got != rawAfterFirst {
		t.Errorf("cache hit re-read the raw records (%d raw reads)", got)
	}

	// CSV form is derived from the same aggregate deterministically.
	resp, err := http.Post(ts.URL+"/query?format=csv", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	csvBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(csvBody), "chip,pattern_label,count,") {
		t.Errorf("CSV query: %d %q", resp.StatusCode, csvBody)
	}

	// Bad specs are client errors; unknown sweeps are 404s.
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sweep":"`+fp+`","metric":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad metric: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sweep":"sha256:`+strings.Repeat("ef", 32)+`","metric":"hcfirst"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: %d, want 404", resp.StatusCode)
	}
}

// TestServiceRecordsAndCatalog: GET /sweeps/<fp>/records serves typed
// decoded records, and GET /sweeps?kind= filters the catalog.
func TestServiceRecordsAndCatalog(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, ts := newTestService(t, dir)
	fp := ingestTinySweep(t, dir)

	resp, err := http.Get(ts.URL + "/sweeps/" + fp + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET records: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		Header  core.SweepHeader     `json:"header"`
		Records []core.HCFirstRecord `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Header.Fingerprint != fp || len(doc.Records) == 0 {
		t.Fatalf("records doc: header %+v, %d records", doc.Header, len(doc.Records))
	}
	for _, r := range doc.Records {
		if r.Chip != 0 {
			t.Fatalf("decoded record has chip %d, want 0", r.Chip)
		}
	}

	for _, tc := range []struct {
		kind string
		want int
	}{{"hcfirst", 1}, {"ber", 0}} {
		resp, err := http.Get(ts.URL + "/sweeps?kind=" + tc.kind)
		if err != nil {
			t.Fatal(err)
		}
		var list listResponse
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Stored) != tc.want {
			t.Errorf("GET /sweeps?kind=%s: %d stored, want %d", tc.kind, len(list.Stored), tc.want)
		}
	}

	if resp, err := http.Get(ts.URL + "/sweeps/sha256:" + strings.Repeat("99", 32) + "/records"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("records of unknown sweep: %d, want 404", resp.StatusCode)
		}
	}
}
