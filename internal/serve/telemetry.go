package serve

import (
	"net/http"
	"strconv"
	"time"

	"hbmrd/internal/telemetry"
)

// Service metrics. Out-of-band like everything in telemetry: request
// bodies, sweep records, and store bytes are never touched.
var (
	mJobsRunning   = telemetry.Default.Gauge("hbmrd_serve_jobs_running")
	mSweepsDone    = telemetry.Default.Counter("hbmrd_serve_sweeps_completed_total", telemetry.L("status", StatusDone))
	mSweepsFailed  = telemetry.Default.Counter("hbmrd_serve_sweeps_completed_total", telemetry.L("status", StatusFailed))
	mSweepsCheckpt = telemetry.Default.Counter("hbmrd_serve_sweeps_completed_total", telemetry.L("status", StatusCheckpointed))
	mSpoolResumes  = telemetry.Default.Counter("hbmrd_serve_spool_resumes_total")
)

func init() {
	telemetry.Default.Help("hbmrd_serve_jobs_running", "Sweep jobs currently executing on the service worker pool.")
	telemetry.Default.Help("hbmrd_serve_sweeps_completed_total", "Sweep jobs reaching a terminal state, by outcome.")
	telemetry.Default.Help("hbmrd_serve_spool_resumes_total", "Sweep executions that resumed a checkpointed spool.")
	telemetry.Default.Help("hbmrd_http_requests_total", "HTTP requests served, by route and status code.")
	telemetry.Default.Help("hbmrd_http_request_seconds", "HTTP request wall time, by route.")
}

// statusRecorder captures the response status for the request
// counter. It forwards Flush so the NDJSON live-stream handler keeps
// flushing through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the request counter and latency
// histogram. The histogram handle resolves once per route at Handler
// build; the per-request counter lookup keys on the response code.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	seconds := telemetry.Default.Histogram("hbmrd_http_request_seconds",
		telemetry.DurationBuckets, telemetry.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		telemetry.Default.Counter("hbmrd_http_requests_total",
			telemetry.L("route", route), telemetry.L("code", strconv.Itoa(rec.code))).Inc()
		seconds.Observe(time.Since(start).Seconds())
	}
}
