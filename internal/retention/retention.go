// Package retention implements the data-retention profiling the paper uses
// both to filter retention failures out of long RowPress experiments (§6)
// and as the side channel of the U-TRR methodology (§7): a DRAM row is
// deemed to have retention time T when T is the smallest multiple of the
// profiling step at which any of the row's cells loses its data without
// refresh.
package retention

import (
	"fmt"

	"hbmrd/internal/hbm"
)

// DefaultStep is the paper's profiling granularity (64 ms increments).
const DefaultStep = 64 * hbm.MS

// Profiler measures per-row retention times on one bank through the
// command interface (write, wait unrefreshed, read back).
type Profiler struct {
	// Chan is the channel to drive.
	Chan *hbm.Channel
	// PC and Bank select the profiled bank.
	PC, Bank int
	// Fill is the data pattern byte used during profiling.
	Fill byte
	// Step is the profiling increment (DefaultStep if zero).
	Step hbm.TimePS
}

func (p *Profiler) step() hbm.TimePS {
	if p.Step > 0 {
		return p.Step
	}
	return DefaultStep
}

// RowRetention returns the smallest tested retention time at which the row
// exhibits at least one retention bitflip, scanning from one step up to
// maxT. It returns 0 if the row retains data at every tested time.
func (p *Profiler) RowRetention(row int, maxT hbm.TimePS) (hbm.TimePS, error) {
	if p.Chan == nil {
		return 0, fmt.Errorf("retention: profiler has no channel")
	}
	buf := make([]byte, p.Chan.Geometry().RowBytes)
	for t := p.step(); t <= maxT; t += p.step() {
		flips, err := p.probe(row, t, buf)
		if err != nil {
			return 0, err
		}
		if flips > 0 {
			return t, nil
		}
	}
	return 0, nil
}

// FailsAt reports whether the row exhibits any retention bitflip after
// being left unrefreshed for t.
func (p *Profiler) FailsAt(row int, t hbm.TimePS) (bool, error) {
	buf := make([]byte, p.Chan.Geometry().RowBytes)
	flips, err := p.probe(row, t, buf)
	return flips > 0, err
}

func (p *Profiler) probe(row int, t hbm.TimePS, buf []byte) (int, error) {
	if err := p.Chan.FillRow(p.PC, p.Bank, row, p.Fill); err != nil {
		return 0, fmt.Errorf("retention: init row %d: %w", row, err)
	}
	p.Chan.Wait(t)
	if err := p.Chan.ReadRow(p.PC, p.Bank, row, buf); err != nil {
		return 0, fmt.Errorf("retention: read row %d: %w", row, err)
	}
	flips := 0
	for _, b := range buf {
		x := b ^ p.Fill
		for x != 0 {
			x &= x - 1
			flips++
		}
	}
	// Leave the row restored to its pattern for the caller.
	if flips > 0 {
		if err := p.Chan.FillRow(p.PC, p.Bank, row, p.Fill); err != nil {
			return flips, err
		}
	}
	return flips, nil
}

// FindSideChannelRows scans candidate rows and returns those whose
// retention time T satisfies minT <= T <= maxT, together with their
// retention times. Such rows serve as U-TRR side channels: initialized and
// left unrefreshed for T/2 + T/2, they flip unless something (TRR)
// refreshed them in between; minT must be at least twice the profiling
// step so that T/2 is safely below the row's true failure time.
func (p *Profiler) FindSideChannelRows(candidates []int, minT, maxT hbm.TimePS) (rows []int, times []hbm.TimePS, err error) {
	if minT < 2*p.step() {
		return nil, nil, fmt.Errorf("retention: minT %d below twice the profiling step", minT)
	}
	for _, row := range candidates {
		t, err := p.RowRetention(row, maxT)
		if err != nil {
			return nil, nil, err
		}
		if t >= minT && t <= maxT {
			rows = append(rows, row)
			times = append(times, t)
		}
	}
	return rows, times, nil
}

// MeasureRetentionBER initializes count rows starting at startRow, waits t
// unrefreshed, and returns the aggregate retention BER (flipped bits over
// all tested bits). This is the measurement the paper uses to subtract
// retention failures from RowPress BER (§6: 0%, 0.013%, 0.134% at 34.8 ms,
// 1.17 s, 10.53 s).
func (p *Profiler) MeasureRetentionBER(startRow, count int, t hbm.TimePS) (float64, error) {
	for r := startRow; r < startRow+count; r++ {
		if err := p.Chan.FillRow(p.PC, p.Bank, r, p.Fill); err != nil {
			return 0, err
		}
	}
	p.Chan.Wait(t)
	g := p.Chan.Geometry()
	buf := make([]byte, g.RowBytes)
	flips := 0
	for r := startRow; r < startRow+count; r++ {
		if err := p.Chan.ReadRow(p.PC, p.Bank, r, buf); err != nil {
			return 0, err
		}
		for _, b := range buf {
			x := b ^ p.Fill
			for x != 0 {
				x &= x - 1
				flips++
			}
		}
	}
	return float64(flips) / float64(count*g.RowBits()), nil
}

// RetentionMask returns the per-bit retention-failure mask of a row after
// time t unrefreshed (used to filter retention flips out of read-disturb
// measurements exactly as the paper does: a cell counts as a retention
// failure if it fails in any of `reps` repetitions).
func (p *Profiler) RetentionMask(row int, t hbm.TimePS, reps int) ([]byte, error) {
	g := p.Chan.Geometry()
	mask := make([]byte, g.RowBytes)
	buf := make([]byte, g.RowBytes)
	for rep := 0; rep < reps; rep++ {
		if err := p.Chan.FillRow(p.PC, p.Bank, row, p.Fill); err != nil {
			return nil, err
		}
		p.Chan.Wait(t)
		if err := p.Chan.ReadRow(p.PC, p.Bank, row, buf); err != nil {
			return nil, err
		}
		for i := range buf {
			mask[i] |= buf[i] ^ p.Fill
		}
	}
	return mask, nil
}
