package retention

import (
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

func newProfiler(t *testing.T, chip int) *Profiler {
	t.Helper()
	c, err := hbm.NewBuiltin(chip, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	return &Profiler{Chan: ch, PC: 0, Bank: 0, Fill: 0x55}
}

func TestRowRetentionFindsFailures(t *testing.T) {
	p := newProfiler(t, 0) // Chip 0 at 82C: weakest retention
	found := 0
	for row := 1000; row < 1040; row++ {
		tRet, err := p.RowRetention(row, 4*hbm.SEC)
		if err != nil {
			t.Fatal(err)
		}
		if tRet > 0 {
			found++
			if tRet%DefaultStep != 0 {
				t.Errorf("row %d: retention %d not a step multiple", row, tRet)
			}
			// The row must actually fail at its reported time and hold at
			// one step less.
			fails, err := p.FailsAt(row, tRet)
			if err != nil || !fails {
				t.Errorf("row %d: does not fail at reported retention %d (err=%v)", row, tRet, err)
			}
			if tRet > DefaultStep {
				fails, err = p.FailsAt(row, tRet-DefaultStep)
				if err != nil || fails {
					t.Errorf("row %d: fails below reported retention (err=%v)", row, err)
				}
			}
		}
	}
	if found == 0 {
		t.Error("no rows with measurable retention below 4 s at 82C")
	}
}

func TestFindSideChannelRows(t *testing.T) {
	p := newProfiler(t, 0)
	candidates := make([]int, 60)
	for i := range candidates {
		candidates[i] = 2000 + i
	}
	rows, times, err := p.FindSideChannelRows(candidates, 2*DefaultStep, 4*hbm.SEC)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no side-channel rows found")
	}
	for i, r := range rows {
		if times[i] < 2*DefaultStep || times[i] > 4*hbm.SEC {
			t.Errorf("row %d: time %d outside requested window", r, times[i])
		}
	}
	if _, _, err := p.FindSideChannelRows(candidates, DefaultStep, hbm.SEC); err == nil {
		t.Error("minT below 2 steps accepted")
	}
}

func TestMeasureRetentionBERGrowsWithTime(t *testing.T) {
	p := newProfiler(t, 0)
	short, err := p.MeasureRetentionBER(5000, 24, 40*hbm.MS)
	if err != nil {
		t.Fatal(err)
	}
	long, err := p.MeasureRetentionBER(5000, 24, 20*hbm.SEC)
	if err != nil {
		t.Fatal(err)
	}
	if long <= short {
		t.Errorf("retention BER did not grow: %v at 40ms vs %v at 20s", short, long)
	}
	if short > 1e-4 {
		t.Errorf("retention BER %v at 40 ms; paper measures ~0%% at 34.8 ms", short)
	}
}

func TestRetentionMaskUnionAcrossReps(t *testing.T) {
	p := newProfiler(t, 0)
	mask, err := p.RetentionMask(6000, 10*hbm.SEC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mask) != hbm.RowBytes {
		t.Fatalf("mask length %d", len(mask))
	}
}

func TestProfilerWithoutChannel(t *testing.T) {
	p := &Profiler{}
	if _, err := p.RowRetention(0, hbm.SEC); err == nil {
		t.Error("profiler without channel accepted")
	}
}
