package bender

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hbmrd/internal/hbm"
)

// Parse assembles a MemBender text program. The format is line-oriented;
// '#' starts a comment. Mnemonics (case-insensitive):
//
//	ACT <pc> <bank> <row>
//	PRE <pc> <bank>
//	RD <pc> <bank> <col>
//	WR <pc> <bank> <col> <byte>          byte as 0xNN or decimal
//	REF
//	SLEEP <dur>                          dur like 29ns, 3.9us, 16ms, 2s, 1200 (ps)
//	HAMMER <pc> <bank> <rowA> <rowB> <count> <tOn>
//	HAMMER1 <pc> <bank> <row> <count> <tOn>
//	FILLROW <pc> <bank> <row> <byte>
//	READROW <pc> <bank> <row>
//	LOOP <count> ... ENDLOOP             loops may nest
func Parse(r io.Reader) (*Program, error) {
	var stack []*Program
	top := &Program{}
	stack = append(stack, top)

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cur := stack[len(stack)-1]
		mnemonic := strings.ToUpper(fields[0])
		args := fields[1:]
		fail := func(err error) (*Program, error) {
			return nil, fmt.Errorf("bender: line %d: %s: %w", lineNo, mnemonic, err)
		}
		switch mnemonic {
		case "ACT":
			v, err := ints(args, 3)
			if err != nil {
				return fail(err)
			}
			cur.Act(v[0], v[1], v[2])
		case "PRE":
			v, err := ints(args, 2)
			if err != nil {
				return fail(err)
			}
			cur.Pre(v[0], v[1])
		case "RD":
			v, err := ints(args, 3)
			if err != nil {
				return fail(err)
			}
			cur.Rd(v[0], v[1], v[2])
		case "WR":
			if len(args) != 4 {
				return fail(fmt.Errorf("want 4 args, got %d", len(args)))
			}
			v, err := ints(args[:3], 3)
			if err != nil {
				return fail(err)
			}
			b, err := parseByte(args[3])
			if err != nil {
				return fail(err)
			}
			cur.Wr(v[0], v[1], v[2], b)
		case "REF":
			cur.Ref()
		case "SLEEP":
			if len(args) != 1 {
				return fail(fmt.Errorf("want 1 arg, got %d", len(args)))
			}
			d, err := ParseDuration(args[0])
			if err != nil {
				return fail(err)
			}
			cur.Sleep(d)
		case "HAMMER":
			if len(args) != 6 {
				return fail(fmt.Errorf("want 6 args, got %d", len(args)))
			}
			v, err := ints(args[:5], 5)
			if err != nil {
				return fail(err)
			}
			d, err := ParseDuration(args[5])
			if err != nil {
				return fail(err)
			}
			cur.Hammer(v[0], v[1], v[2], v[3], v[4], d)
		case "HAMMER1":
			if len(args) != 5 {
				return fail(fmt.Errorf("want 5 args, got %d", len(args)))
			}
			v, err := ints(args[:4], 4)
			if err != nil {
				return fail(err)
			}
			d, err := ParseDuration(args[4])
			if err != nil {
				return fail(err)
			}
			cur.HammerSingle(v[0], v[1], v[2], v[3], d)
		case "FILLROW":
			if len(args) != 4 {
				return fail(fmt.Errorf("want 4 args, got %d", len(args)))
			}
			v, err := ints(args[:3], 3)
			if err != nil {
				return fail(err)
			}
			b, err := parseByte(args[3])
			if err != nil {
				return fail(err)
			}
			cur.FillRow(v[0], v[1], v[2], b)
		case "READROW":
			v, err := ints(args, 3)
			if err != nil {
				return fail(err)
			}
			cur.ReadRow(v[0], v[1], v[2])
		case "LOOP":
			v, err := ints(args, 1)
			if err != nil {
				return fail(err)
			}
			body := &Program{}
			// Record the loop header; the body is patched at ENDLOOP.
			cur.instrs = append(cur.instrs, Instr{Op: OpLoop, Count: v[0]})
			stack = append(stack, body)
		case "ENDLOOP":
			if len(stack) < 2 {
				return fail(fmt.Errorf("ENDLOOP without LOOP"))
			}
			body := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parent := stack[len(stack)-1]
			parent.instrs[len(parent.instrs)-1].Body = body.instrs
		default:
			return fail(fmt.Errorf("unknown mnemonic"))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bender: reading program: %w", err)
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("bender: %d unclosed LOOP(s)", len(stack)-1)
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return top, nil
}

// ParseDuration parses a time span with an optional unit suffix (ps, ns,
// us, ms, s); a bare number means picoseconds. Fractions are allowed
// ("3.9us").
func ParseDuration(s string) (hbm.TimePS, error) {
	unit := hbm.TimePS(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ps"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		num, unit = s[:len(s)-2], hbm.NS
	case strings.HasSuffix(s, "us"):
		num, unit = s[:len(s)-2], hbm.US
	case strings.HasSuffix(s, "ms"):
		num, unit = s[:len(s)-2], hbm.MS
	case strings.HasSuffix(s, "s"):
		num, unit = s[:len(s)-1], hbm.SEC
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return hbm.TimePS(f * float64(unit)), nil
}

func ints(args []string, n int) ([]int, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d args, got %d", n, len(args))
	}
	out := make([]int, n)
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", a, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseByte(s string) (byte, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), hexOrDec(s), 9)
	if err != nil || v > 0xFF {
		return 0, fmt.Errorf("bad byte %q", s)
	}
	return byte(v), nil
}

func hexOrDec(s string) int {
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		return 16
	}
	return 10
}
