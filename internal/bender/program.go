// Package bender implements "MemBender", the software stand-in for the
// modified DRAM Bender FPGA infrastructure the paper uses (§3). Test
// programs are sequences of DRAM commands with explicit timing control at
// interface-clock granularity; the platform executes them against a
// simulated HBM2 chip, collects read-back data, and (in strict mode)
// reports timing violations exactly where the real platform's constraints
// would bite.
//
// Like the real DRAM Bender ISA, programs support hardware-looped hammer
// bursts (HAMMER), generic loops, sleeps, and per-command addressing. A
// small text assembler (Parse) makes programs scriptable from files.
package bender

import (
	"fmt"

	"hbmrd/internal/hbm"
)

// Op is a MemBender instruction opcode.
type Op int

// Instruction opcodes.
const (
	// OpAct issues ACT <pc> <bank> <row>.
	OpAct Op = iota + 1
	// OpPre issues PRE <pc> <bank>.
	OpPre
	// OpRd issues RD <pc> <bank> <col> and records the column data.
	OpRd
	// OpWr issues WR <pc> <bank> <col> with a fill byte.
	OpWr
	// OpRef issues an all-bank REF.
	OpRef
	// OpSleep advances the channel clock by Dur picoseconds.
	OpSleep
	// OpHammer is the hardware-looped double-sided hammer burst: Count
	// activations of Row and Row2 each, every activation open for Dur.
	OpHammer
	// OpHammerSingle is the single-sided variant (Row only).
	OpHammerSingle
	// OpLoop repeats Body Count times.
	OpLoop
	// OpFillRow is a macro: ACT + 32 WRs of Fill + PRE.
	OpFillRow
	// OpReadRow is a macro: ACT + 32 RDs + PRE; records the whole row.
	OpReadRow
)

// opNames maps opcodes to their assembler mnemonics.
var opNames = map[Op]string{
	OpAct: "ACT", OpPre: "PRE", OpRd: "RD", OpWr: "WR", OpRef: "REF",
	OpSleep: "SLEEP", OpHammer: "HAMMER", OpHammerSingle: "HAMMER1",
	OpLoop: "LOOP", OpFillRow: "FILLROW", OpReadRow: "READROW",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one MemBender instruction.
type Instr struct {
	Op    Op
	PC    int
	Bank  int
	Row   int
	Row2  int // second aggressor for OpHammer
	Col   int
	Count int        // loop iterations / hammer count
	Fill  byte       // WR/FILLROW data byte
	Dur   hbm.TimePS // SLEEP duration / hammer tAggON
	Body  []Instr    // OpLoop body
}

// Program is a buildable MemBender test program.
type Program struct {
	instrs []Instr
}

// Instrs returns the program's instructions.
func (p *Program) Instrs() []Instr { return p.instrs }

// Len returns the number of top-level instructions.
func (p *Program) Len() int { return len(p.instrs) }

// Act appends an ACT.
func (p *Program) Act(pc, bank, row int) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpAct, PC: pc, Bank: bank, Row: row})
	return p
}

// Pre appends a PRE.
func (p *Program) Pre(pc, bank int) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpPre, PC: pc, Bank: bank})
	return p
}

// Rd appends a RD of one column.
func (p *Program) Rd(pc, bank, col int) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpRd, PC: pc, Bank: bank, Col: col})
	return p
}

// Wr appends a WR of one column with a fill byte.
func (p *Program) Wr(pc, bank, col int, fill byte) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpWr, PC: pc, Bank: bank, Col: col, Fill: fill})
	return p
}

// Ref appends an all-bank REF.
func (p *Program) Ref() *Program {
	p.instrs = append(p.instrs, Instr{Op: OpRef})
	return p
}

// Sleep appends a clock advance.
func (p *Program) Sleep(d hbm.TimePS) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpSleep, Dur: d})
	return p
}

// Hammer appends a double-sided hammer burst.
func (p *Program) Hammer(pc, bank, rowA, rowB, count int, tOn hbm.TimePS) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpHammer, PC: pc, Bank: bank, Row: rowA, Row2: rowB, Count: count, Dur: tOn})
	return p
}

// HammerSingle appends a single-sided hammer burst.
func (p *Program) HammerSingle(pc, bank, row, count int, tOn hbm.TimePS) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpHammerSingle, PC: pc, Bank: bank, Row: row, Count: count, Dur: tOn})
	return p
}

// Loop appends a loop of count iterations whose body is built by fn.
func (p *Program) Loop(count int, fn func(*Program)) *Program {
	var body Program
	fn(&body)
	p.instrs = append(p.instrs, Instr{Op: OpLoop, Count: count, Body: body.instrs})
	return p
}

// FillRow appends the fill-row macro.
func (p *Program) FillRow(pc, bank, row int, fill byte) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpFillRow, PC: pc, Bank: bank, Row: row, Fill: fill})
	return p
}

// ReadRow appends the read-row macro.
func (p *Program) ReadRow(pc, bank, row int) *Program {
	p.instrs = append(p.instrs, Instr{Op: OpReadRow, PC: pc, Bank: bank, Row: row})
	return p
}

// Validate checks instruction operands against the default (paper HBM2)
// chip geometry. Platform.Run validates against the attached chip's actual
// geometry instead; use ValidateFor to do the same standalone.
func (p *Program) Validate() error { return p.ValidateFor(hbm.DefaultGeometry()) }

// ValidateFor checks instruction operands against a specific geometry.
func (p *Program) ValidateFor(g hbm.Geometry) error { return validateInstrs(p.instrs, g, 0) }

func validateInstrs(instrs []Instr, g hbm.Geometry, depth int) error {
	if depth > 8 {
		return fmt.Errorf("bender: loop nesting deeper than 8")
	}
	for i, in := range instrs {
		if err := validateInstr(in, g, depth); err != nil {
			return fmt.Errorf("bender: instruction %d (%s): %w", i, in.Op, err)
		}
	}
	return nil
}

func validateInstr(in Instr, g hbm.Geometry, depth int) error {
	checkAddr := func(row int) error {
		if in.PC < 0 || in.PC >= g.PseudoChannels {
			return fmt.Errorf("pseudo channel %d out of range", in.PC)
		}
		if in.Bank < 0 || in.Bank >= g.Banks {
			return fmt.Errorf("bank %d out of range", in.Bank)
		}
		if row < 0 || row >= g.Rows {
			return fmt.Errorf("row %d out of range", row)
		}
		return nil
	}
	switch in.Op {
	case OpAct, OpFillRow, OpReadRow, OpHammerSingle:
		if err := checkAddr(in.Row); err != nil {
			return err
		}
		if in.Op == OpHammerSingle && in.Count < 0 {
			return fmt.Errorf("negative hammer count %d", in.Count)
		}
	case OpHammer:
		if err := checkAddr(in.Row); err != nil {
			return err
		}
		if err := checkAddr(in.Row2); err != nil {
			return err
		}
		if in.Count < 0 {
			return fmt.Errorf("negative hammer count %d", in.Count)
		}
	case OpPre:
		if err := checkAddr(0); err != nil {
			return err
		}
	case OpRd, OpWr:
		if err := checkAddr(0); err != nil {
			return err
		}
		if in.Col < 0 || in.Col >= g.Cols() {
			return fmt.Errorf("column %d out of range", in.Col)
		}
	case OpRef:
		// No operands.
	case OpSleep:
		if in.Dur < 0 {
			return fmt.Errorf("negative sleep %d", in.Dur)
		}
	case OpLoop:
		if in.Count < 0 {
			return fmt.Errorf("negative loop count %d", in.Count)
		}
		return validateInstrs(in.Body, g, depth+1)
	default:
		return fmt.Errorf("unknown opcode %d", int(in.Op))
	}
	return nil
}
