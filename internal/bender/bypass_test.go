package bender

import (
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

// TestBypassPatternAsProgram expresses the paper's §7 TRR bypass as a
// MemBender program - the form an attacker would actually ship to the
// FPGA platform - and verifies the dummy-row threshold end to end: the
// program flips victim bits with 4 dummy rows and is fully countered with
// 2.
func TestBypassPatternAsProgram(t *testing.T) {
	run := func(dummies int) int {
		chip, err := hbm.NewBuiltin(0, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
		if err != nil {
			t.Fatal(err)
		}
		plat := NewPlatform(chip)
		tm := chip.Timing()

		const victim = 6000
		budget := tm.ActBudgetPerREFI() // 78
		aggActs := 26
		dummyActs := (budget - 2*aggActs) / dummies
		windows := int(tm.TREFW / tm.TREFI) // one refresh window

		p := &Program{}
		p.FillRow(0, 0, victim-2, 0x55).
			FillRow(0, 0, victim-1, 0xAA).
			FillRow(0, 0, victim, 0x55).
			FillRow(0, 0, victim+1, 0xAA).
			FillRow(0, 0, victim+2, 0x55)
		p.Loop(windows, func(body *Program) {
			for d := 0; d < dummies; d++ {
				body.HammerSingle(0, 0, 9000+4*d, dummyActs, 0)
			}
			body.Hammer(0, 0, victim-1, victim+1, aggActs, 0)
			body.Ref()
		})
		p.ReadRow(0, 0, victim)

		res, err := plat.Run(0, p)
		if err != nil {
			t.Fatal(err)
		}
		flips := 0
		for _, b := range res.Reads[0].Data {
			for x := b ^ 0x55; x != 0; x &= x - 1 {
				flips++
			}
		}
		return flips
	}

	if got := run(2); got != 0 {
		t.Errorf("2-dummy program flipped %d bits; TRR should counter it", got)
	}
	if got := run(4); got == 0 {
		t.Error("4-dummy program flipped nothing; the bypass should work")
	}
}
