package bender

import (
	"fmt"

	"hbmrd/internal/hbm"
)

// ReadRecord is one piece of read-back data (32 bytes for RD, a whole row
// for READROW) in program order.
type ReadRecord struct {
	PC, Bank, Col, Row int
	Data               []byte
}

// Result summarizes one program execution.
type Result struct {
	// Reads holds the read-back data in program order.
	Reads []ReadRecord
	// Start and End bracket the execution on the channel clock.
	Start, End hbm.TimePS
	// Commands counts executed device commands (loops expanded; a hammer
	// burst counts its constituent ACT/PRE pairs).
	Commands int
}

// Duration returns the simulated execution time.
func (r *Result) Duration() hbm.TimePS { return r.End - r.Start }

// Platform drives one simulated HBM2 chip, playing the role of the
// FPGA-based DRAM Bender host: it executes test programs channel by
// channel and returns read-back buffers. Distinct channels may be driven
// concurrently from different goroutines.
type Platform struct {
	chip *hbm.Chip
}

// NewPlatform attaches a platform to a chip.
func NewPlatform(chip *hbm.Chip) *Platform {
	return &Platform{chip: chip}
}

// Chip returns the attached chip.
func (p *Platform) Chip() *hbm.Chip { return p.chip }

// Run validates and executes prog on the given channel. Execution uses the
// channel's current timing mode: auto (commands wait for legality) or
// strict (early commands fail with *hbm.TimingError).
func (p *Platform) Run(channel int, prog *Program) (*Result, error) {
	if err := prog.ValidateFor(p.chip.Geometry()); err != nil {
		return nil, err
	}
	ch, err := p.chip.Channel(channel)
	if err != nil {
		return nil, err
	}
	res := &Result{Start: ch.Now()}
	if err := p.exec(ch, prog.Instrs(), res); err != nil {
		return nil, err
	}
	res.End = ch.Now()
	return res, nil
}

func (p *Platform) exec(ch *hbm.Channel, instrs []Instr, res *Result) error {
	g := ch.Geometry()
	for i := range instrs {
		in := &instrs[i]
		var err error
		switch in.Op {
		case OpAct:
			err = ch.Activate(in.PC, in.Bank, in.Row)
			res.Commands++
		case OpPre:
			err = ch.Precharge(in.PC, in.Bank)
			res.Commands++
		case OpRd:
			buf := make([]byte, g.ColBytes)
			if err = ch.Read(in.PC, in.Bank, in.Col, buf); err == nil {
				res.Reads = append(res.Reads, ReadRecord{PC: in.PC, Bank: in.Bank, Col: in.Col, Row: -1, Data: buf})
			}
			res.Commands++
		case OpWr:
			buf := make([]byte, g.ColBytes)
			for j := range buf {
				buf[j] = in.Fill
			}
			err = ch.Write(in.PC, in.Bank, in.Col, buf)
			res.Commands++
		case OpRef:
			err = ch.Refresh()
			res.Commands++
		case OpSleep:
			ch.Wait(in.Dur)
		case OpHammer:
			err = ch.HammerDoubleSided(in.PC, in.Bank, in.Row, in.Row2, in.Count, in.Dur)
			res.Commands += 4 * in.Count // ACT+PRE per aggressor per iteration
		case OpHammerSingle:
			err = ch.HammerSingleSided(in.PC, in.Bank, in.Row, in.Count, in.Dur)
			res.Commands += 2 * in.Count
		case OpLoop:
			for k := 0; k < in.Count; k++ {
				if err = p.exec(ch, in.Body, res); err != nil {
					break
				}
			}
		case OpFillRow:
			err = ch.FillRow(in.PC, in.Bank, in.Row, in.Fill)
			res.Commands += g.Cols() + 2
		case OpReadRow:
			buf := make([]byte, g.RowBytes)
			if err = ch.ReadRow(in.PC, in.Bank, in.Row, buf); err == nil {
				res.Reads = append(res.Reads, ReadRecord{PC: in.PC, Bank: in.Bank, Col: -1, Row: in.Row, Data: buf})
			}
			res.Commands += g.Cols() + 2
		default:
			err = fmt.Errorf("bender: unknown opcode %d", int(in.Op))
		}
		if err != nil {
			return fmt.Errorf("bender: %s: %w", in.Op, err)
		}
	}
	return nil
}
