package bender

import (
	"bytes"
	"strings"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	chip, err := hbm.NewBuiltin(0, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	return NewPlatform(chip)
}

func TestProgramBuilderRoundTrip(t *testing.T) {
	p := &Program{}
	p.FillRow(0, 0, 100, 0x55).
		Act(0, 0, 100).
		Rd(0, 0, 0).
		Pre(0, 0).
		Sleep(10 * hbm.NS).
		Ref()
	if p.Len() != 6 {
		t.Fatalf("program has %d instructions, want 6", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWriteReadProgram(t *testing.T) {
	plat := newPlatform(t)
	p := &Program{}
	p.FillRow(0, 2, 500, 0xA5).ReadRow(0, 2, 500)
	res, err := plat.Run(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 {
		t.Fatalf("got %d read records, want 1", len(res.Reads))
	}
	rec := res.Reads[0]
	if rec.Row != 500 || len(rec.Data) != hbm.RowBytes {
		t.Fatalf("record = row %d, %d bytes", rec.Row, len(rec.Data))
	}
	for _, b := range rec.Data {
		if b != 0xA5 {
			t.Fatal("read-back data mismatch")
		}
	}
	if res.Duration() <= 0 {
		t.Error("program consumed no simulated time")
	}
	if res.Commands == 0 {
		t.Error("no commands counted")
	}
}

func TestHammerProgramFlipsBits(t *testing.T) {
	plat := newPlatform(t)
	const victim = 3000
	p := &Program{}
	p.FillRow(0, 0, victim-2, 0x55).
		FillRow(0, 0, victim-1, 0xAA).
		FillRow(0, 0, victim, 0x55).
		FillRow(0, 0, victim+1, 0xAA).
		FillRow(0, 0, victim+2, 0x55).
		Hammer(0, 0, victim-1, victim+1, 300_000, 0).
		ReadRow(0, 0, victim)
	res, err := plat.Run(0, p)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x55}, hbm.RowBytes)
	if bytes.Equal(res.Reads[0].Data, want) {
		t.Error("hammer program induced no bitflips")
	}
}

func TestLoopExpansion(t *testing.T) {
	plat := newPlatform(t)
	p := &Program{}
	p.Loop(3, func(body *Program) {
		body.Act(0, 1, 7).Pre(0, 1)
	})
	res, err := plat.Run(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 6 {
		t.Errorf("loop executed %d commands, want 6", res.Commands)
	}
}

func TestStrictModeSurfacesTimingViolation(t *testing.T) {
	chip, err := hbm.NewBuiltin(0, hbm.WithStrictTiming(), hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	plat := NewPlatform(chip)
	p := &Program{}
	p.Act(0, 0, 10).Pre(0, 0) // PRE violates tRAS
	if _, err := plat.Run(0, p); err == nil {
		t.Fatal("strict mode accepted an early PRE")
	}
	// With an adequate SLEEP the program is legal (different bank: the
	// failed program above left bank 0 open, as real hardware would).
	p2 := &Program{}
	p2.Act(0, 1, 10).Sleep(hbm.DefaultTiming().TRAS).Pre(0, 1)
	if _, err := plat.Run(0, p2); err != nil {
		t.Fatalf("legal strict program rejected: %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []*Program{
		(&Program{}).Act(0, 0, hbm.NumRows),
		(&Program{}).Act(0, hbm.NumBanks, 0),
		(&Program{}).Act(hbm.NumPseudoChannels, 0, 0),
		(&Program{}).Rd(0, 0, hbm.NumCols),
		(&Program{}).Sleep(-1),
		(&Program{}).Hammer(0, 0, 1, 2, -1, 0),
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestRunRejectsBadChannel(t *testing.T) {
	plat := newPlatform(t)
	if _, err := plat.Run(99, &Program{}); err == nil {
		t.Error("channel 99 accepted")
	}
}

func TestParseFullProgram(t *testing.T) {
	src := `
# TRR-style probe
FILLROW 0 0 100 0x55
FILLROW 0 0 101 0xAA
LOOP 2
  ACT 0 0 101
  SLEEP 29ns
  PRE 0 0
ENDLOOP
HAMMER 0 0 99 101 1000 29ns
HAMMER1 0 0 99 500 3.9us
REF
READROW 0 0 100
RD 0 0 5
WR 0 0 5 0xFF
SLEEP 16ms
`
	// RD/WR need an open bank; wrap into a valid sequence for execution.
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("parsed %d top-level instructions, want 10", p.Len())
	}
	if p.Instrs()[2].Op != OpLoop || len(p.Instrs()[2].Body) != 3 {
		t.Errorf("loop structure wrong: %+v", p.Instrs()[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"BOGUS 1 2 3",
		"ACT 0 0",           // too few args
		"ACT 0 0 x",         // bad int
		"SLEEP -5ns",        // negative
		"WR 0 0 0 0x1FF",    // byte overflow
		"LOOP 2\nACT 0 0 1", // unclosed loop
		"ENDLOOP",
		"ACT 0 0 999999", // out of range (validation)
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("source %q parsed without error", src)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want hbm.TimePS
	}{
		{"29ns", 29 * hbm.NS},
		{"3.9us", 3_900_000},
		{"16ms", 16 * hbm.MS},
		{"2s", 2 * hbm.SEC},
		{"1200", 1200},
		{"0.5ns", 500},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDuration(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "ns", "-4ns", "abc"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParsedProgramExecutes(t *testing.T) {
	src := `
FILLROW 0 0 2000 0x55
FILLROW 0 0 1999 0xAA
FILLROW 0 0 2001 0xAA
HAMMER 0 0 1999 2001 250000 29ns
READROW 0 0 2000
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	plat := newPlatform(t)
	res, err := plat.Run(2, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 {
		t.Fatalf("%d reads", len(res.Reads))
	}
	flips := 0
	for _, b := range res.Reads[0].Data {
		x := b ^ 0x55
		for x != 0 {
			x &= x - 1
			flips++
		}
	}
	if flips == 0 {
		t.Error("parsed hammer program induced no flips")
	}
}

func TestOpString(t *testing.T) {
	if OpAct.String() != "ACT" || OpHammer.String() != "HAMMER" {
		t.Error("op mnemonics wrong")
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op should render numerically")
	}
}
