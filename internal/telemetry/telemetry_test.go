package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGoldenFormat pins the exposition output for a fixed
// registry: families sorted, series sorted, histograms expanded into
// cumulative buckets + sum + count. Operators' scrape configs and the
// metrics-smoke CI step both depend on these exact shapes.
func TestPrometheusGoldenFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("test_requests_total", "Requests by route.")
	r.Counter("test_requests_total", L("route", "query")).Add(3)
	r.Counter("test_requests_total", L("route", "healthz")).Add(7)
	r.Gauge("test_jobs_running").Set(2)
	h := r.Histogram("test_latency_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE test_jobs_running gauge
test_jobs_running 2
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_requests_total Requests by route.
# TYPE test_requests_total counter
test_requests_total{route="healthz"} 7
test_requests_total{route="query"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusParseable walks every line of a populated scrape and
// checks the minimal grammar: comments are # HELP/# TYPE, samples are
// `name{labels} value` with a float-parseable value.
func TestPrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("k", `weird "quoted" \ value`)).Inc()
	r.Histogram("b_seconds", nil).Observe(0.25)
	r.Gauge("c").Set(-4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		if !validName(name) {
			t.Fatalf("invalid metric name in %q", line)
		}
		if _, err := parseFloat(line[sp+1:]); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples++
	}
	// counter + 16 default buckets + Inf + sum + count + gauge
	if want := 1 + len(DurationBuckets) + 1 + 2 + 1; samples != want {
		t.Fatalf("got %d samples, want %d", samples, want)
	}
}

func parseFloat(s string) (float64, error) {
	var f float64
	err := json.Unmarshal([]byte(s), &f)
	return f, err
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// handle lookups, hot-path ops, and scrapes interleaved — and then
// checks the totals. Run under -race this is the data-race gate for
// the whole package.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("cc_total", L("w", string(rune('a'+w%2))))
			g := r.Gauge("cc_gauge")
			h := r.Histogram("cc_seconds", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	total := r.Counter("cc_total", L("w", "a")).Value() + r.Counter("cc_total", L("w", "b")).Value()
	if total != workers*perWorker {
		t.Errorf("counter total = %d, want %d", total, workers*perWorker)
	}
	if got := r.Gauge("cc_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("cc_seconds", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if want := 0.25 * workers * perWorker; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestHotPathZeroAlloc pins the per-event cost of every instrumented
// operation at 0 allocs: counter/gauge/histogram updates, disabled
// logging, and the nil-tracer span lifecycle. The engine and fault
// model rely on this to keep their own 0 allocs/op guarantees with
// telemetry compiled in.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("za_total")
	g := r.Gauge("za_gauge")
	h := r.Histogram("za_seconds", nil)
	var nilLog *Logger
	var nilTr *Tracer
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Add(2) }},
		{"gauge", func() { g.Set(7) }},
		{"histogram", func() { h.Observe(0.125) }},
		// No-arg form: with args the variadic []any itself allocates
		// at the call site, which is inherent to printf-shaped APIs —
		// loggers are kept off per-cell hot paths for that reason.
		{"nil_logger", func() { nilLog.Infof("dropped") }},
		{"nil_span", func() { sp := nilTr.Start("t", "s"); sp.Annotate("k", 1); sp.End() }},
		{"enabled_check", func() { _ = Enabled() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestTracerSpans checks the JSONL schema and nil safety.
func TestTracerSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("fp123", "cells", "kind", "ber")
	sp.Annotate("cells", 12)
	time.Sleep(time.Millisecond)
	sp.End("err", "")
	tr.Emit("fp123", "plan", time.Now().Add(-time.Millisecond), "cells", 12)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var got struct {
		Trace string         `json:"trace"`
		Span  string         `json:"span"`
		Start time.Time      `json:"start"`
		DurUS float64        `json:"dur_us"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(lines[0], &got); err != nil {
		t.Fatalf("span line is not JSON: %v", err)
	}
	if got.Trace != "fp123" || got.Span != "cells" {
		t.Errorf("trace/span = %q/%q", got.Trace, got.Span)
	}
	if got.DurUS < 900 {
		t.Errorf("dur_us = %v, want >= ~1000 (slept 1ms)", got.DurUS)
	}
	if got.Start.IsZero() {
		t.Error("start timestamp missing")
	}
	if got.Attrs["kind"] != "ber" || got.Attrs["cells"] != float64(12) || got.Attrs["err"] != "" {
		t.Errorf("attrs = %v", got.Attrs)
	}
}

// TestLogger covers printf passthrough, levels, structured lines, and
// nil safety.
func TestLogger(t *testing.T) {
	var lines []string
	l := NewLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l.Infof("serve: sweep %s done", "abc")
	l.SetLevel(LevelWarn)
	l.Infof("suppressed")
	l.Warnf("kept %d", 1)
	l.Log(LevelError, "shard failed", "shard", 3, "err", "timeout")
	want := []string{"serve: sweep abc done", "kept 1", "error shard failed shard=3 err=timeout"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	var nilL *Logger
	nilL.Errorf("must not panic")
	nilL.Log(LevelError, "must not panic")
	nilL.SetLevel(LevelDebug)
	if nilL.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) should return nil (discard)")
	}
}
