// Package telemetry is the repo's stdlib-only observability layer:
// an atomic metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight span tracing, and a leveled structured
// logger. Everything here is strictly out-of-band of the sweep record
// stream — no instrumented code path may alter the bytes a sink
// writes, the fingerprints in a header, or any golden digest.
//
// Design constraints, in order:
//
//  1. Zero allocations on the hot path. Handle lookup (Counter,
//     Gauge, Histogram) takes a lock and may allocate, so call sites
//     resolve handles once (package var or per-sweep) and the
//     per-event operations (Add, Set, Observe) are pure atomics.
//  2. Safe under -race with concurrent writers and scrapers.
//  3. No dependencies beyond the standard library.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates the *optional* instrumentation — per-cell timing in
// the engine and anything else that pays more than a single atomic
// add. Counters stay live regardless; they are too cheap to gate.
// Default on: the overhead budget is pinned by
// BenchmarkTelemetryOverhead* and TestTelemetryOverheadBudget.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles optional (timing) instrumentation globally.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether optional instrumentation is on. Hot loops
// should read it once per batch (per sweep, per request), not per
// event.
func Enabled() bool { return enabled.Load() }

// Label is one dimension of a metric series. Keep cardinality tiny
// and bounded (sweep kinds, HTTP routes, outcome enums) — every
// distinct label set is a live series held for the process lifetime.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0; negative deltas
// are silently dropped to keep the series monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: atomic per-bucket counts
// plus a CAS-maintained float64 sum. Observe is lock-free and
// allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets builds n exponentially spaced upper bounds starting at
// start, each factor apart — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets spans 1µs to ~1000s in x4 steps — wide enough for
// both per-cell fault-model timing (µs–ms) and whole-sweep or HTTP
// request latencies (ms–minutes) without per-family tuning.
var DurationBuckets = ExpBuckets(1e-6, 4, 16)

// series kinds, also the Prometheus TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric name: a type, optional help, shared histogram
// bounds, and the live series keyed by their serialized label sets.
type family struct {
	name   string
	kind   string
	help   string
	bounds []float64
	series map[string]any // serialized labels -> *Counter | *Gauge | *Histogram
}

// Registry is a mutex-guarded name->family map. The lock is only
// taken on handle lookup and scrape; the handles themselves are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default;
// fresh registries are for tests that need isolation.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry that /metrics and healthz
// expose.
var Default = NewRegistry()

// validName enforces the Prometheus metric/label-name charset. Names
// are registered at init time, so a bad one is a programmer error and
// panics.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey serializes a label set into its canonical exposition form,
// `k1="v1",k2="v2"` with keys sorted. It doubles as the series map
// key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition-format escapes for label values.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup get-or-creates the family and series, enforcing that one
// name keeps one type (and one bucket layout for histograms). The
// make closure runs with the registry lock held and receives the
// family so histograms can share its bucket layout.
func (r *Registry) lookup(name, kind string, bounds []float64, labels []Label, mk func(*family) any) any {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, series: map[string]any{}}
		r.families[name] = f
	} else if f.kind == "" {
		// Created by Help() before first use; adopt the type now.
		f.kind, f.bounds = kind, bounds
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = mk(f)
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name+labels, creating it on
// first use. Resolve once and keep the handle; do not call per event.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, nil, labels, func(*family) any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, nil, labels, func(*family) any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram series for name+labels with the
// given upper bounds (ignored after the first registration of the
// family — all series of one name share a bucket layout).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not strictly ascending", name))
		}
	}
	return r.lookup(name, kindHistogram, bounds, labels, func(f *family) any {
		h := &Histogram{bounds: f.bounds}
		h.buckets = make([]atomic.Int64, len(f.bounds)+1)
		return h
	}).(*Histogram)
}

// Help attaches (or replaces) the HELP text for a metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: map[string]any{}}
	}
}
