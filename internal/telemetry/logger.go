package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger is the repo's one logging type, replacing the ad-hoc
// `Logf func(string, ...any)` fields that used to live on serve,
// query, and fabric configs. It is leveled, printf-compatible (the
// old call sites keep their exact output), and supports structured
// key=val lines for new code. A nil *Logger discards everything, so
// every component treats its logger field as optional.
type Logger struct {
	min    atomic.Int32
	printf func(format string, args ...any)
}

// NewLogger wraps any printf-shaped sink (log.Printf, t.Logf, a
// buffer-writing closure) as a Logger. The minimum level starts at
// Debug — everything through, matching the unleveled behavior the
// Logf fields had.
func NewLogger(printf func(format string, args ...any)) *Logger {
	if printf == nil {
		return nil
	}
	l := &Logger{printf: printf}
	l.min.Store(int32(LevelDebug))
	return l
}

// SetLevel raises or lowers the minimum level that gets emitted.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.printf != nil && int32(lv) >= l.min.Load()
}

// Logf emits a printf-style line at lv.
func (l *Logger) Logf(lv Level, format string, args ...any) {
	if l.Enabled(lv) {
		l.printf(format, args...)
	}
}

// Debugf emits at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }

// Infof emits at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.Logf(LevelInfo, format, args...) }

// Warnf emits at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.Logf(LevelWarn, format, args...) }

// Errorf emits at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }

// Log emits a structured line: `msg k=v k=v ...` with a level
// prefix. kv is alternating key, value pairs; a trailing odd key is
// dropped.
func (l *Logger) Log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	l.printf("%s", b.String())
}
