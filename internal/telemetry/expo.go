package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// formatFloat renders a sample value the way the exposition format
// expects: integral values without an exponent, everything else in
// the shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label set, histograms expanded into cumulative _bucket
// series plus _sum and _count. The scrape takes the registry lock, so
// it never observes a half-registered family, and reads every sample
// atomically (though not as one consistent cut — standard for
// Prometheus clients).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, f, k); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, key string) error {
	switch s := f.series[key].(type) {
	case *Counter:
		return writeSample(w, f.name, key, "", float64(s.Value()))
	case *Gauge:
		return writeSample(w, f.name, key, "", float64(s.Value()))
	case *Histogram:
		cum := int64(0)
		for i, b := range s.bounds {
			cum += s.buckets[i].Load()
			le := L("le", formatFloat(b))
			if err := writeSample(w, f.name+"_bucket", mergeKey(key, le), "", float64(cum)); err != nil {
				return err
			}
		}
		cum += s.buckets[len(s.bounds)].Load()
		if err := writeSample(w, f.name+"_bucket", mergeKey(key, L("le", "+Inf")), "", float64(cum)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", key, "", s.Sum()); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", key, "", float64(s.Count()))
	}
	return nil
}

// mergeKey appends one label to an already-serialized label set. The
// `le` label lands last, which the format permits (labels need not be
// sorted in the output line).
func mergeKey(key string, l Label) string {
	extra := l.Key + `="` + escapeLabel(l.Value) + `"`
	if key == "" {
		return extra
	}
	return key + "," + extra
}

func writeSample(w io.Writer, name, key, suffix string, v float64) error {
	if key == "" {
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, key, formatFloat(v))
	return err
}

// HistogramSnapshot is the JSON form of a histogram sample.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// Snapshot returns every series as a flat map keyed by
// `name{labels}` (expvar/debug-vars style): counters and gauges map
// to their value, histograms to {count, sum}. The serve healthz
// handler embeds this under a "metrics" key.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range r.families {
		for key, s := range f.series {
			id := f.name
			if key != "" {
				id += "{" + key + "}"
			}
			switch s := s.(type) {
			case *Counter:
				out[id] = s.Value()
			case *Gauge:
				out[id] = s.Value()
			case *Histogram:
				out[id] = HistogramSnapshot{Count: s.Count(), Sum: s.Sum()}
			}
		}
	}
	return out
}
