package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer emits spans as JSONL, one object per completed span:
//
//	{"trace":"<id>","span":"<name>","start":"<RFC3339Nano>",
//	 "dur_us":123.45,"attrs":{"k":"v",...}}
//
// The trace id groups the spans of one logical operation — the sweep
// fingerprint for engine traces, the parent fingerprint for fabric
// shard traces, the canonical spec key for query traces. Spans are
// written when they End, so a trace's lines appear in completion
// order, not start order; readers sort by start.
//
// A nil *Tracer is valid everywhere and costs nothing: Start on a
// nil tracer returns a nil *Span, and every Span method is nil-safe.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing JSONL spans to w. The caller
// owns w (the tracer never closes it).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Err returns the first write or encode error, if any. Trace output
// is best-effort: a failed write disables nothing and loses only
// trace lines, never records.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one timed region within a trace.
type Span struct {
	t     *Tracer
	trace string
	name  string
	start time.Time
	attrs map[string]any
}

// Start opens a span. kv is alternating key, value pairs attached as
// attrs (a trailing odd key is dropped).
func (t *Tracer) Start(trace, name string, kv ...any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, trace: trace, name: name, start: time.Now()}
	s.Annotate(kv...)
	return s
}

// Emit records an already-measured span in one call — for call sites
// that only learn the trace id (e.g. the fingerprint) after the timed
// region began.
func (t *Tracer) Emit(trace, name string, start time.Time, kv ...any) {
	if t == nil {
		return
	}
	s := &Span{t: t, trace: trace, name: name, start: start}
	s.Annotate(kv...)
	s.End()
}

// Annotate attaches alternating key, value pairs to the span.
func (s *Span) Annotate(kv ...any) {
	if s == nil {
		return
	}
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		if s.attrs == nil {
			s.attrs = make(map[string]any, len(kv)/2)
		}
		s.attrs[k] = kv[i+1]
	}
}

// spanLine is the wire form of one span.
type spanLine struct {
	Trace string         `json:"trace"`
	Span  string         `json:"span"`
	Start string         `json:"start"`
	DurUS float64        `json:"dur_us"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// End closes the span, attaches any final kv pairs, and writes its
// JSONL line.
func (s *Span) End(kv ...any) {
	if s == nil {
		return
	}
	s.Annotate(kv...)
	dur := time.Since(s.start)
	line := spanLine{
		Trace: s.trace,
		Span:  s.name,
		Start: s.start.UTC().Format(time.RFC3339Nano),
		DurUS: float64(dur.Microseconds()) + float64(dur.Nanoseconds()%1e3)/1e3,
		Attrs: s.attrs,
	}
	b, err := json.Marshal(line)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}
