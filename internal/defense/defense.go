// Package defense quantifies the paper's §8.2 implication for read
// disturbance defenses: a mitigation mechanism that adapts to the
// heterogeneous distribution of vulnerability across channels and
// subarrays (Takeaways 2 and 3) prevents bitflips at a lower preventive-
// refresh cost than one provisioned uniformly for the worst row anywhere.
//
// The cost model follows counter-based mitigations (Graphene/TWiCe-style):
// a region protected with aggressor threshold T must issue a preventive
// victim refresh whenever any row accumulates T/2 activations within a
// refresh window, so the worst-case mitigation rate per bank is
// maxACTs/(T/2), where maxACTs is the activation budget of one window.
// A uniform design must set T from the most vulnerable row of the whole
// chip; an adaptive design sets each region's T from that region's own
// minimum HCfirst.
package defense

import (
	"fmt"
	"math"
	"sort"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
)

// Region is one independently provisioned protection domain (a channel, a
// die, or a subarray) with its measured vulnerability.
type Region struct {
	// Label names the region ("CH3", "SA10", ...).
	Label string
	// MinHCFirst is the smallest HCfirst measured in the region.
	MinHCFirst float64
	// Rows is the number of rows the region covers (cost weighting).
	Rows int
}

// Config parameterizes the cost model.
type Config struct {
	// Timing supplies the activation budget per refresh window.
	Timing hbm.Timing
	// SafetyDivisor derates measured HCfirst into the defense threshold
	// (threshold = MinHCFirst / SafetyDivisor); real deployments divide by
	// 2 or more to absorb variation and aging (Fig 13 / Fig 10). Default 2.
	SafetyDivisor float64
}

func (c *Config) fill() {
	if c.Timing.TRC == 0 {
		c.Timing = hbm.DefaultTiming()
	}
	if c.SafetyDivisor == 0 {
		c.SafetyDivisor = 2
	}
}

// maxActsPerWindow is the per-bank activation budget of one refresh window.
func maxActsPerWindow(t hbm.Timing) float64 {
	return float64(t.TREFW) / float64(t.TRC)
}

// mitigationRate returns worst-case preventive refreshes per refresh
// window for one region protected at the given aggressor threshold.
func mitigationRate(t hbm.Timing, threshold float64) float64 {
	if threshold < 2 {
		threshold = 2
	}
	return maxActsPerWindow(t) / (threshold / 2)
}

// CostReport compares uniform and adaptive provisioning.
type CostReport struct {
	// UniformRate and AdaptiveRate are worst-case preventive refreshes
	// per refresh window, summed across regions.
	UniformRate, AdaptiveRate float64
	// SavingsPercent is the adaptive design's cost reduction.
	SavingsPercent float64
	// GlobalThreshold is the uniform design's aggressor threshold.
	GlobalThreshold float64
	// Regions echoes the per-region thresholds of the adaptive design.
	Regions []RegionCost
}

// RegionCost is one region's adaptive provisioning.
type RegionCost struct {
	Label     string
	Threshold float64
	Rate      float64
}

// Compare computes the uniform-vs-adaptive mitigation cost over the given
// regions. It returns an error when no region carries a measurement.
func Compare(regions []Region, cfg Config) (CostReport, error) {
	cfg.fill()
	if len(regions) == 0 {
		return CostReport{}, fmt.Errorf("defense: no regions")
	}
	globalMin := math.Inf(1)
	for _, r := range regions {
		if r.MinHCFirst <= 0 {
			return CostReport{}, fmt.Errorf("defense: region %s has no HCfirst measurement", r.Label)
		}
		if r.MinHCFirst < globalMin {
			globalMin = r.MinHCFirst
		}
	}
	rep := CostReport{GlobalThreshold: globalMin / cfg.SafetyDivisor}
	for _, r := range regions {
		threshold := r.MinHCFirst / cfg.SafetyDivisor
		rate := mitigationRate(cfg.Timing, threshold)
		rep.Regions = append(rep.Regions, RegionCost{Label: r.Label, Threshold: threshold, Rate: rate})
		rep.AdaptiveRate += rate
		rep.UniformRate += mitigationRate(cfg.Timing, rep.GlobalThreshold)
	}
	if rep.UniformRate > 0 {
		rep.SavingsPercent = (1 - rep.AdaptiveRate/rep.UniformRate) * 100
	}
	return rep, nil
}

// ProfileChannels builds per-channel regions from HCfirst experiment
// records (the Fig 7 measurement feeds straight into the defense model).
func ProfileChannels(recs []core.HCFirstRecord) []Region {
	minByCh := map[int]float64{}
	rowsByCh := map[int]int{}
	for _, r := range recs {
		if !r.Found || r.WCDP {
			continue
		}
		hc := float64(r.HCFirst)
		if cur, ok := minByCh[r.Channel]; !ok || hc < cur {
			minByCh[r.Channel] = hc
		}
		rowsByCh[r.Channel]++
	}
	chs := make([]int, 0, len(minByCh))
	for ch := range minByCh {
		chs = append(chs, ch)
	}
	sort.Ints(chs)
	regions := make([]Region, 0, len(chs))
	for _, ch := range chs {
		regions = append(regions, Region{
			Label:      fmt.Sprintf("CH%d", ch),
			MinHCFirst: minByCh[ch],
			Rows:       rowsByCh[ch],
		})
	}
	return regions
}

// ProfileSubarrays builds per-subarray regions from HCfirst records using
// discovered subarray boundaries (ascending physical rows where a new
// subarray starts; the implicit first boundary is row 0).
func ProfileSubarrays(recs []core.HCFirstRecord, boundaries []int) []Region {
	starts := append([]int{0}, boundaries...)
	sort.Ints(starts)
	idxOf := func(row int) int {
		i := sort.SearchInts(starts, row+1) - 1
		if i < 0 {
			i = 0
		}
		return i
	}
	minBySA := map[int]float64{}
	rowsBySA := map[int]int{}
	for _, r := range recs {
		if !r.Found || r.WCDP {
			continue
		}
		sa := idxOf(r.Row)
		hc := float64(r.HCFirst)
		if cur, ok := minBySA[sa]; !ok || hc < cur {
			minBySA[sa] = hc
		}
		rowsBySA[sa]++
	}
	sas := make([]int, 0, len(minBySA))
	for sa := range minBySA {
		sas = append(sas, sa)
	}
	sort.Ints(sas)
	regions := make([]Region, 0, len(sas))
	for _, sa := range sas {
		regions = append(regions, Region{
			Label:      fmt.Sprintf("SA%d", sa),
			MinHCFirst: minBySA[sa],
			Rows:       rowsBySA[sa],
		})
	}
	return regions
}
