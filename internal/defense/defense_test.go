package defense

import (
	"math"
	"testing"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
)

func TestCompareAdaptiveNeverCostsMore(t *testing.T) {
	regions := []Region{
		{Label: "CH0", MinHCFirst: 15000, Rows: 16384},
		{Label: "CH3", MinHCFirst: 45000, Rows: 16384},
		{Label: "CH7", MinHCFirst: 16000, Rows: 16384},
	}
	rep, err := Compare(regions, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdaptiveRate > rep.UniformRate {
		t.Errorf("adaptive rate %.0f exceeds uniform %.0f", rep.AdaptiveRate, rep.UniformRate)
	}
	if rep.SavingsPercent <= 0 {
		t.Errorf("heterogeneous regions should yield savings, got %.1f%%", rep.SavingsPercent)
	}
	if rep.GlobalThreshold != 7500 {
		t.Errorf("global threshold %.0f, want 15000/2", rep.GlobalThreshold)
	}
}

func TestCompareHomogeneousNoSavings(t *testing.T) {
	regions := []Region{
		{Label: "A", MinHCFirst: 20000},
		{Label: "B", MinHCFirst: 20000},
	}
	rep, err := Compare(regions, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SavingsPercent) > 1e-9 {
		t.Errorf("homogeneous regions should save nothing, got %.3f%%", rep.SavingsPercent)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(nil, Config{}); err == nil {
		t.Error("empty regions accepted")
	}
	if _, err := Compare([]Region{{Label: "X"}}, Config{}); err == nil {
		t.Error("region without measurement accepted")
	}
}

func TestMitigationRateScalesInverselyWithThreshold(t *testing.T) {
	tm := hbm.DefaultTiming()
	loose := mitigationRate(tm, 40000)
	tight := mitigationRate(tm, 10000)
	if tight <= loose {
		t.Error("tighter threshold must cost more")
	}
	if r := tight / loose; math.Abs(r-4) > 1e-9 {
		t.Errorf("cost ratio %.3f, want 4 (threshold ratio)", r)
	}
}

func TestProfileChannels(t *testing.T) {
	recs := []core.HCFirstRecord{
		{Channel: 0, HCFirst: 20000, Found: true},
		{Channel: 0, HCFirst: 18000, Found: true},
		{Channel: 3, HCFirst: 52000, Found: true},
		{Channel: 3, HCFirst: 0, Found: false},               // ignored
		{Channel: 3, HCFirst: 9000, Found: true, WCDP: true}, // derived record ignored
	}
	regions := ProfileChannels(recs)
	if len(regions) != 2 {
		t.Fatalf("%d regions", len(regions))
	}
	if regions[0].Label != "CH0" || regions[0].MinHCFirst != 18000 || regions[0].Rows != 2 {
		t.Errorf("CH0 region = %+v", regions[0])
	}
	if regions[1].Label != "CH3" || regions[1].MinHCFirst != 52000 {
		t.Errorf("CH3 region = %+v", regions[1])
	}
}

func TestProfileSubarrays(t *testing.T) {
	recs := []core.HCFirstRecord{
		{Row: 10, HCFirst: 20000, Found: true},
		{Row: 900, HCFirst: 60000, Found: true},
		{Row: 831, HCFirst: 30000, Found: true}, // last row of SA0
	}
	regions := ProfileSubarrays(recs, []int{832})
	if len(regions) != 2 {
		t.Fatalf("%d regions: %+v", len(regions), regions)
	}
	if regions[0].Label != "SA0" || regions[0].MinHCFirst != 20000 || regions[0].Rows != 2 {
		t.Errorf("SA0 = %+v", regions[0])
	}
	if regions[1].Label != "SA1" || regions[1].MinHCFirst != 60000 {
		t.Errorf("SA1 = %+v", regions[1])
	}
}

// TestEndToEndChannelAdaptiveSavings runs a real (small) HCfirst experiment
// on the chip with the widest die spread and confirms the adaptive design
// saves mitigation cost, reproducing the §8.2 argument quantitatively.
func TestEndToEndChannelAdaptiveSavings(t *testing.T) {
	fleet, err := core.NewFleet([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := core.RunHCFirst(fleet, core.HCFirstConfig{
		Rows:     core.SampleRows(6),
		Patterns: nil, // all four
		Reps:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := ProfileChannels(recs)
	if len(regions) != hbm.NumChannels {
		t.Fatalf("%d channel regions", len(regions))
	}
	rep, err := Compare(regions, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavingsPercent <= 5 {
		t.Errorf("chip 4's channel heterogeneity should save >5%% mitigation cost, got %.1f%%", rep.SavingsPercent)
	}
	t.Logf("adaptive defense saves %.1f%% of preventive refreshes on Chip 4", rep.SavingsPercent)
}
