package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const testFP = "sha256:0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func testContent() string {
	return `{"hbmrd_sweep":1,"kind":"ber","fingerprint":"` + testFP + `","cells":2,"generation":1}` + "\n" +
		`{"Chip":0}` + "\n" + `{"Chip":1}` + "\n"
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGet(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)

	if s.Has(testFP) {
		t.Error("empty store claims the fingerprint")
	}
	if _, _, err := s.Get(testFP); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty store: err = %v, want ErrNotFound", err)
	}

	meta := Meta{Fingerprint: testFP, Kind: "ber", Cells: 2, Records: 2}
	if err := s.Put(meta, strings.NewReader(testContent())); err != nil {
		t.Fatal(err)
	}
	if !s.Has(testFP) {
		t.Error("stored sweep not found")
	}
	rc, got, err := s.Get(testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != testContent() {
		t.Error("stored content diverges")
	}
	if got.Kind != "ber" || got.Cells != 2 || got.Records != 2 || got.Bytes != int64(len(testContent())) {
		t.Errorf("meta = %+v", got)
	}

	path, _, err := s.Path(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != testContent() {
		t.Errorf("Path read: %v", err)
	}

	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Fingerprint != testFP {
		t.Errorf("List = %+v", list)
	}
}

func TestStorePutFileLeavesSource(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	src := filepath.Join(t.TempDir(), "spool.jsonl")
	if err := os.WriteFile(src, []byte(testContent()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFile(Meta{Fingerprint: testFP, Kind: "ber"}, src); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Errorf("PutFile consumed the source: %v", err)
	}
	if !s.Has(testFP) {
		t.Error("stored sweep not found")
	}
}

// TestStorePutRace: concurrent finalizes of the same fingerprint all
// succeed, and exactly one object survives with the full content (losing
// a rename race is success - the content is identical by construction).
func TestStorePutRace(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(Meta{Fingerprint: testFP, Kind: "ber", Cells: 2, Records: 2},
				strings.NewReader(testContent()))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("putter %d: %v", i, err)
		}
	}
	rc, _, err := s.Get(testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if b, _ := io.ReadAll(rc); string(b) != testContent() {
		t.Error("raced store content diverges")
	}
	// No staging debris left behind.
	ents, err := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d staging directories left in tmp", len(ents))
	}
}

func TestStoreRejectsMalformedFingerprints(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	for _, fp := range []string{"", "sha256:", "sha256:xyz", "md5:aabbccdd", "sha256:AABBCCDD11223344", "sha256:../../../etc/passwd"} {
		if err := s.Put(Meta{Fingerprint: fp, Kind: "ber"}, strings.NewReader("x")); err == nil {
			t.Errorf("Put accepted fingerprint %q", fp)
		}
		if s.Has(fp) {
			t.Errorf("Has accepted fingerprint %q", fp)
		}
	}
	if err := s.Put(Meta{Fingerprint: testFP}, strings.NewReader("x")); err == nil {
		t.Error("Put accepted meta without a kind")
	}
}
