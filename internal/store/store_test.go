package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hbmrd/internal/core"
)

const testFP = "sha256:0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func testContent() string {
	return `{"hbmrd_sweep":1,"kind":"ber","fingerprint":"` + testFP + `","cells":2,"generation":1}` + "\n" +
		`{"Chip":0}` + "\n" + `{"Chip":1}` + "\n"
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGet(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)

	if s.Has(testFP) {
		t.Error("empty store claims the fingerprint")
	}
	if _, _, err := s.Get(testFP); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty store: err = %v, want ErrNotFound", err)
	}

	meta := Meta{Fingerprint: testFP, Kind: "ber", Cells: 2, Records: 2}
	if err := s.Put(meta, strings.NewReader(testContent())); err != nil {
		t.Fatal(err)
	}
	if !s.Has(testFP) {
		t.Error("stored sweep not found")
	}
	rc, got, err := s.Get(testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != testContent() {
		t.Error("stored content diverges")
	}
	if got.Kind != "ber" || got.Cells != 2 || got.Records != 2 || got.Bytes != int64(len(testContent())) {
		t.Errorf("meta = %+v", got)
	}

	path, _, err := s.Path(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != testContent() {
		t.Errorf("Path read: %v", err)
	}

	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Fingerprint != testFP {
		t.Errorf("List = %+v", list)
	}
}

func TestStorePutFileLeavesSource(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	src := filepath.Join(t.TempDir(), "spool.jsonl")
	if err := os.WriteFile(src, []byte(testContent()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFile(Meta{Fingerprint: testFP, Kind: "ber"}, src); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Errorf("PutFile consumed the source: %v", err)
	}
	if !s.Has(testFP) {
		t.Error("stored sweep not found")
	}
}

// TestStorePutRace: concurrent finalizes of the same fingerprint all
// succeed, and exactly one object survives with the full content (losing
// a rename race is success - the content is identical by construction).
func TestStorePutRace(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(Meta{Fingerprint: testFP, Kind: "ber", Cells: 2, Records: 2},
				strings.NewReader(testContent()))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("putter %d: %v", i, err)
		}
	}
	rc, _, err := s.Get(testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if b, _ := io.ReadAll(rc); string(b) != testContent() {
		t.Error("raced store content diverges")
	}
	// No staging debris left behind.
	ents, err := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d staging directories left in tmp", len(ents))
	}
}

func TestStoreRejectsMalformedFingerprints(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	for _, fp := range []string{"", "sha256:", "sha256:xyz", "md5:aabbccdd", "sha256:AABBCCDD11223344", "sha256:../../../etc/passwd"} {
		if err := s.Put(Meta{Fingerprint: fp, Kind: "ber"}, strings.NewReader("x")); err == nil {
			t.Errorf("Put accepted fingerprint %q", fp)
		}
		if s.Has(fp) {
			t.Errorf("Has accepted fingerprint %q", fp)
		}
	}
	if err := s.Put(Meta{Fingerprint: testFP}, strings.NewReader("x")); err == nil {
		t.Error("Put accepted meta without a kind")
	}
}

// TestStorePutCountsRecords: Put sizes the sweep itself - record count
// and byte size come from the staged stream, not from the caller - so no
// consumer ever re-scans the JSONL to size a sweep.
func TestStorePutCountsRecords(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	// Deliberately wrong counts from the caller: Put must correct both.
	meta := Meta{Fingerprint: testFP, Kind: "ber", Cells: 2, Records: 99, Bytes: 1}
	if err := s.Put(meta, strings.NewReader(testContent())); err != nil {
		t.Fatal(err)
	}
	_, got, err := s.Path(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != 2 {
		t.Errorf("Records = %d, want 2 (header excluded)", got.Records)
	}
	if got.Bytes != int64(len(testContent())) {
		t.Errorf("Bytes = %d, want %d", got.Bytes, len(testContent()))
	}
}

// TestStoreCatalogMetaRoundTrips: the optional catalog fields (geometry,
// chips, generation, raw config) persist through Put and List.
func TestStoreCatalogMetaRoundTrips(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	meta := Meta{
		Fingerprint: testFP, Kind: "ber", Cells: 2, Generation: 1,
		Geometry: "HBM2_8Gb", Chips: []int{0, 5}, Config: []byte(`{"Reps":1}`),
	}
	if err := s.Put(meta, strings.NewReader(testContent())); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil || len(list) != 1 {
		t.Fatalf("List: %v (%d entries)", err, len(list))
	}
	got := list[0]
	if got.Geometry != "HBM2_8Gb" || got.Generation != 1 ||
		len(got.Chips) != 2 || got.Chips[0] != 0 || got.Chips[1] != 5 ||
		string(got.Config) != `{"Reps":1}` {
		t.Errorf("catalog meta = %+v", got)
	}
}

// TestStoreDerived: derived results round-trip under their content key,
// miss with ErrNotFound, and reject malformed keys.
func TestStoreDerived(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	key := "sha256:aaaa567890abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, err := s.GetDerived(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetDerived on empty store: %v, want ErrNotFound", err)
	}
	if err := s.PutDerived(key, []byte(`{"groups":[]}`+"\n")); err != nil {
		t.Fatal(err)
	}
	b, err := s.GetDerived(key)
	if err != nil || string(b) != `{"groups":[]}`+"\n" {
		t.Errorf("GetDerived = %q, %v", b, err)
	}
	if err := s.PutDerived("not-an-address", nil); err == nil {
		t.Error("malformed derived key accepted")
	}
}

// TestStorePruneLRU: Prune evicts least-recently-accessed entries - sweep
// objects (with their columnar twins) and derived results alike - until
// the payload fits the budget, and a Get or GetColumnar refreshes recency
// so hot sweeps survive. The object mix is deliberately old/new: one
// stale sweep has its twin stripped (an object finalized before the
// columnar format existed) and must still be sized and evicted correctly.
func TestStorePruneLRU(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	fps := []string{
		"sha256:1111111111111111111111111111111111111111111111111111111111111111",
		"sha256:2222222222222222222222222222222222222222222222222222222222222222",
		"sha256:3333333333333333333333333333333333333333333333333333333333333333",
	}
	for _, fp := range fps {
		content := strings.Replace(testContent(), testFP, fp, 1)
		if err := s.Put(Meta{Fingerprint: fp, Kind: "ber", Cells: 2}, strings.NewReader(content)); err != nil {
			t.Fatal(err)
		}
	}
	// fps[1] predates the columnar format: strip its twin.
	oldDir, err := s.objectDir(fps[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(oldDir, "results.hbmc")); err != nil {
		t.Fatal(err)
	}
	dkey := "sha256:4444444444444444444444444444444444444444444444444444444444444444"
	if err := s.PutDerived(dkey, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}

	// Age the access stamps explicitly: fps[0] oldest, then the derived
	// result, then fps[1]; fps[2] stays newest.
	base := time.Now().Add(-time.Hour)
	stamp := func(addr string, age time.Duration, derived bool) {
		var path string
		var err error
		if derived {
			path, err = s.derivedPath(addr)
		} else {
			var dir string
			dir, err = s.objectDir(addr)
			path = filepath.Join(dir, "meta.json")
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, base.Add(age), base.Add(age)); err != nil {
			t.Fatal(err)
		}
	}
	stamp(fps[0], 0, false)
	stamp(dkey, time.Minute, true)
	stamp(fps[1], 2*time.Minute, false)
	stamp(fps[2], 3*time.Minute, false)

	// A columnar read on the oldest sweep refreshes it past everything
	// else, exactly as a raw Get would.
	rc, _, err := s.GetColumnar(fps[0])
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()

	// Budget for exactly one sweep object - results.jsonl plus its
	// columnar twin plus meta.json; the twin counts toward the budget -
	// so the derived result and the two stale sweeps go, the refreshed
	// one stays.
	dir, err := s.objectDir(fps[0])
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keep int64
	sawTwin := false
	for _, f := range files {
		fi, err := f.Info()
		if err != nil {
			t.Fatal(err)
		}
		keep += fi.Size()
		sawTwin = sawTwin || f.Name() == "results.hbmc"
	}
	if !sawTwin {
		t.Fatal("finalized object has no columnar twin to account for")
	}
	removed, err := s.Prune(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Errorf("Prune removed %d entries, want 3", removed)
	}
	if !s.Has(fps[0]) {
		t.Error("recently accessed sweep was evicted")
	}
	if s.Has(fps[1]) || s.Has(fps[2]) {
		t.Error("stale sweep survived the budget")
	}
	if _, err := s.GetDerived(dkey); !errors.Is(err, ErrNotFound) {
		t.Error("stale derived result survived the budget")
	}

	// A later identical Put restores a pruned address.
	content := strings.Replace(testContent(), testFP, fps[1], 1)
	if err := s.Put(Meta{Fingerprint: fps[1], Kind: "ber", Cells: 2}, strings.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(fps[1]) {
		t.Error("re-put after prune not visible")
	}
}

// TestStoreColumnarTwin: Put transcodes the finalized stream into a
// columnar twin under the same fingerprint; GetColumnar serves it and
// decodes back to the exact records of the JSONL; a junk stream (not a
// sweep) finalizes without a twin and GetColumnar reports ErrNoColumnar.
func TestStoreColumnarTwin(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	// Byte-identity through the twin only holds for streams in canonical
	// EncodeRecords form (the only form the pipeline ever finalizes), so
	// normalize the shorthand test content first.
	raw := strings.ReplaceAll(testContent(), `{"Chip":0}`, `{"Chip":0,"Pattern":"Rowstripe0"}`)
	raw = strings.ReplaceAll(raw, `{"Chip":1}`, `{"Chip":1,"Pattern":"Checkered1"}`)
	hdr, recs, err := core.DecodeRecords("", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	if err := core.EncodeRecords(&canon, hdr, recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Meta{Fingerprint: testFP, Kind: "ber", Cells: 2}, bytes.NewReader(canon.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !s.HasColumnar(testFP) {
		t.Fatal("finalized sweep has no columnar twin")
	}
	rc, meta, err := s.GetColumnar(testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if meta.Kind != "ber" {
		t.Errorf("columnar meta kind = %q", meta.Kind)
	}
	cs, err := core.DecodeColumnar(rc)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Header.Fingerprint != testFP || cs.Len() != 2 {
		t.Fatalf("columnar twin header %+v, %d rows", cs.Header, cs.Len())
	}
	back, err := cs.Records()
	if err != nil {
		t.Fatal(err)
	}
	var re bytes.Buffer
	if err := core.EncodeRecords(&re, cs.Header, back); err != nil {
		t.Fatal(err)
	}
	if re.String() != canon.String() {
		t.Error("columnar twin does not re-encode to the stored JSONL")
	}

	// Junk content finalizes (the store is format-agnostic about its
	// payload) but gets no twin.
	junkFP := "sha256:9999999999999999999999999999999999999999999999999999999999999999"
	if err := s.Put(Meta{Fingerprint: junkFP, Kind: "mystery", Cells: 1}, strings.NewReader("not a sweep\n")); err != nil {
		t.Fatal(err)
	}
	if s.HasColumnar(junkFP) {
		t.Error("junk stream grew a columnar twin")
	}
	if _, _, err := s.GetColumnar(junkFP); !errors.Is(err, ErrNoColumnar) {
		t.Errorf("GetColumnar on twin-less object: %v, want ErrNoColumnar", err)
	}
	if _, _, err := s.GetColumnar("sha256:" + strings.Repeat("ab", 32)); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetColumnar on absent object: %v, want ErrNotFound", err)
	}
}

// TestEnsureColumnarBackfill: an object finalized without a twin (a store
// populated before the format existed) is backfilled in place, and the
// call is idempotent.
func TestEnsureColumnarBackfill(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	if err := s.Put(Meta{Fingerprint: testFP, Kind: "ber", Cells: 2}, strings.NewReader(testContent())); err != nil {
		t.Fatal(err)
	}
	dir, err := s.objectDir(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "results.hbmc")); err != nil {
		t.Fatal(err)
	}
	if s.HasColumnar(testFP) {
		t.Fatal("twin still present after strip")
	}
	if err := s.EnsureColumnar(testFP); err != nil {
		t.Fatal(err)
	}
	if !s.HasColumnar(testFP) {
		t.Fatal("EnsureColumnar left no twin")
	}
	before, err := os.Stat(filepath.Join(dir, "results.hbmc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureColumnar(testFP); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, "results.hbmc"))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("idempotent EnsureColumnar rewrote the twin")
	}
	if err := s.EnsureColumnar("sha256:" + strings.Repeat("cd", 32)); !errors.Is(err, ErrNotFound) {
		t.Errorf("EnsureColumnar on absent object: %v, want ErrNotFound", err)
	}
}

// TestStoreCount: the cheap catalog-size probe matches List without
// reading metadata.
func TestStoreCount(t *testing.T) {
	t.Parallel()
	s := openTestStore(t)
	if n, err := s.Count(); err != nil || n != 0 {
		t.Errorf("empty Count = %d, %v", n, err)
	}
	for _, fp := range []string{
		"sha256:5555555555555555555555555555555555555555555555555555555555555555",
		"sha256:6666666666666666666666666666666666666666666666666666666666666666",
	} {
		content := strings.Replace(testContent(), testFP, fp, 1)
		if err := s.Put(Meta{Fingerprint: fp, Kind: "ber", Cells: 2}, strings.NewReader(content)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Count(); err != nil || n != 2 {
		t.Errorf("Count = %d, %v, want 2", n, err)
	}
}
