package store

import "hbmrd/internal/telemetry"

// Store metrics. All out-of-band: counters observe completed
// operations and never touch the bytes flowing through them.
var (
	mPuts          = telemetry.Default.Counter("hbmrd_store_puts_total")
	mPutBytes      = telemetry.Default.Counter("hbmrd_store_put_bytes_total")
	mReadsJSONL    = telemetry.Default.Counter("hbmrd_store_reads_total", telemetry.L("repr", "jsonl"))
	mReadsColumnar = telemetry.Default.Counter("hbmrd_store_reads_total", telemetry.L("repr", "columnar"))
	mBackfills     = telemetry.Default.Counter("hbmrd_store_columnar_backfills_total")
	mDrops         = telemetry.Default.Counter("hbmrd_store_columnar_drops_total")
	mPruneRuns     = telemetry.Default.Counter("hbmrd_store_prune_runs_total")
	mPruneEvicted  = telemetry.Default.Counter("hbmrd_store_prune_evicted_total")
	mDerivedGets   = telemetry.Default.Counter("hbmrd_store_derived_gets_total")
	mDerivedPuts   = telemetry.Default.Counter("hbmrd_store_derived_puts_total")
)

func init() {
	telemetry.Default.Help("hbmrd_store_puts_total", "Sweeps finalized into the content-addressed store.")
	telemetry.Default.Help("hbmrd_store_put_bytes_total", "Record-stream bytes finalized into the store.")
	telemetry.Default.Help("hbmrd_store_reads_total", "Stored-sweep opens, by representation served.")
	telemetry.Default.Help("hbmrd_store_columnar_backfills_total", "Columnar twins backfilled by EnsureColumnar.")
	telemetry.Default.Help("hbmrd_store_columnar_drops_total", "Columnar twins dropped by DropColumnar.")
	telemetry.Default.Help("hbmrd_store_prune_runs_total", "LRU prune passes over the store.")
	telemetry.Default.Help("hbmrd_store_prune_evicted_total", "Entries (objects or derived results) evicted by pruning.")
	telemetry.Default.Help("hbmrd_store_derived_gets_total", "Derived-cache hits served from disk.")
	telemetry.Default.Help("hbmrd_store_derived_puts_total", "Derived results cached to disk.")
}
