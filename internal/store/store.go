// Package store is a content-addressed, on-disk result store for finished
// sweeps: the sweep fingerprint (see internal/core) is the address, the
// value is the completed JSONL record stream plus a small metadata
// document. Because equal fingerprints mean byte-identical record
// streams, a hit can be served instantly in place of re-running the sweep
// - the durability layer under hbmrdd and any future batch tooling.
//
// Layout under the root:
//
//	objects/<aa>/<rest-of-fingerprint>/results.jsonl
//	objects/<aa>/<rest-of-fingerprint>/results.hbmc  (columnar twin)
//	objects/<aa>/<rest-of-fingerprint>/meta.json
//	derived/<aa>/<rest-of-key>.json  (cached query results)
//	tmp/  (staging for atomic finalize)
//
// Finalize is atomic: an object is staged under tmp/ and renamed into
// objects/ in one step, so a crashed writer can never leave a half-object
// at an address. Losing a race to another writer is success - the content
// is identical by construction.
//
// # Columnar twin
//
// JSONL is the interchange contract - fingerprints, golden digests,
// resume and the HTTP streaming surface are all defined over it - but it
// is a slow read: every query miss pays one reflective JSON parse per
// record. At finalize, Put therefore transcodes the stream into a compact
// columnar twin (results.hbmc, see core.EncodeColumnar: per-field typed
// arrays behind a self-describing header) stored beside the JSONL under
// the same fingerprint. The twin is derived data, best-effort by design:
// a stream the transcoder cannot decode finalizes without one, readers
// fall back to the JSONL via Get, and EnsureColumnar backfills the twin
// lazily for objects finalized before the format existed. GetColumnar
// refreshes the object's LRU recency exactly as raw reads do, and Prune
// evicts and accounts the twin together with its object.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hbmrd/internal/core"
)

// ErrNotFound reports a fingerprint with no finished sweep in the store.
var ErrNotFound = errors.New("store: sweep not found")

// ErrNoColumnar reports a stored sweep without a columnar twin (finalized
// before the format existed, or from a stream the transcoder could not
// decode). The JSONL via Get still serves it; EnsureColumnar backfills.
var ErrNoColumnar = errors.New("store: sweep has no columnar artifact")

// Meta describes one stored sweep. Fingerprint, Kind and Cells identify
// the sweep; Records and Bytes size it (Put computes both from the stream
// itself, so callers never re-scan the JSONL); the remaining fields are
// optional catalog metadata a submitting service fills from its sweep
// spec - sweeps ingested from bare JSONL files leave them empty.
type Meta struct {
	// Fingerprint is the sweep's content address.
	Fingerprint string `json:"fingerprint"`
	// Kind is the experiment kind ("ber", "hcfirst", ...).
	Kind string `json:"kind"`
	// Cells is the sweep's plan cell count.
	Cells int `json:"cells"`
	// Records is the number of record lines (excluding the header).
	// Computed by Put while staging the stream.
	Records int `json:"records"`
	// Bytes is the size of results.jsonl. Computed by Put.
	Bytes int64 `json:"bytes"`
	// Generation is the producer's core.CodeGeneration (from the header).
	Generation int `json:"generation,omitempty"`
	// Geometry is the chip organization preset name the sweep ran on.
	Geometry string `json:"geometry,omitempty"`
	// Ranks is the geometry's rank count per pseudo channel (0 on sweeps
	// stored before the rank dimension existed; read it as 1).
	Ranks int `json:"ranks,omitempty"`
	// DataRateMbps is the preset's per-pin data rate, when the geometry
	// preset carries one (the ported Ramulator2 matrix; legacy hand-rolled
	// presets leave it 0).
	DataRateMbps int `json:"data_rate_mbps,omitempty"`
	// Chips are the study chip indices of the sweep's fleet.
	Chips []int `json:"chips,omitempty"`
	// Parent is the full sweep's fingerprint when this object is a shard
	// produced by the distributed fabric; empty for whole sweeps.
	Parent string `json:"parent,omitempty"`
	// ShardStart and ShardEnd bound the parent-plan cell range
	// [ShardStart, ShardEnd) a shard object covers.
	ShardStart int `json:"shard_start,omitempty"`
	ShardEnd   int `json:"shard_end,omitempty"`
	// Config is the sweep's raw runner config as submitted (canonical
	// identity lives in the fingerprint; this copy exists so catalog
	// queries can filter on config fields without re-deriving them).
	Config json.RawMessage `json:"config,omitempty"`
}

// Store is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use across goroutines and
// processes; atomicity comes from staged writes and rename.
type Store struct {
	root string
}

// Open prepares a store rooted at dir, creating the layout if needed.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "derived", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// shardedHex validates a "sha256:<hex>" address and returns its hex
// portion, which keys the two-level sharded layout.
func shardedHex(addr string) (string, error) {
	hex := strings.TrimPrefix(addr, "sha256:")
	if hex == addr || len(hex) < 8 {
		return "", fmt.Errorf("store: malformed fingerprint %q", addr)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: malformed fingerprint %q", addr)
		}
	}
	return hex, nil
}

// objectDir maps a fingerprint to its object directory, two-level sharded
// so no single directory grows unbounded. The "sha256:" scheme prefix is
// folded into the hex portion's directory name.
func (s *Store) objectDir(fingerprint string) (string, error) {
	hex, err := shardedHex(fingerprint)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, "objects", hex[:2], hex[2:]), nil
}

// Has reports whether a finished sweep is stored at the fingerprint.
func (s *Store) Has(fingerprint string) bool {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, "meta.json"))
	return err == nil
}

// Get opens the stored record stream (header line first) and its
// metadata. The caller closes the reader. Returns ErrNotFound when the
// fingerprint has no finished sweep.
func (s *Store) Get(fingerprint string) (io.ReadCloser, *Meta, error) {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return nil, nil, err
	}
	meta, err := readMeta(filepath.Join(dir, "meta.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	f, err := os.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	touch(filepath.Join(dir, "meta.json"))
	mReadsJSONL.Inc()
	return f, meta, nil
}

// Path returns the on-disk path of the stored record stream, for callers
// that serve the file directly (http.ServeFile). Returns ErrNotFound when
// absent.
func (s *Store) Path(fingerprint string) (string, *Meta, error) {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return "", nil, err
	}
	meta, err := readMeta(filepath.Join(dir, "meta.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil, ErrNotFound
		}
		return "", nil, err
	}
	touch(filepath.Join(dir, "meta.json"))
	mReadsJSONL.Inc()
	return filepath.Join(dir, "results.jsonl"), meta, nil
}

// touch stamps a path's modification time to now - the access clock
// Prune's LRU eviction runs on. Best-effort: a read-only store still
// serves hits, it just stops refreshing recency.
func touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// PutFile finalizes the completed sweep file at path into the store by
// copying it into a staging object and atomically renaming the object
// into place. The source file is left untouched. If the fingerprint is
// already stored, the existing object wins (identical content) and the
// staged copy is discarded.
func (s *Store) PutFile(meta Meta, path string) error {
	src, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer src.Close()
	return s.put(meta, src)
}

// Put finalizes a completed sweep read from r, as PutFile does for files.
func (s *Store) Put(meta Meta, r io.Reader) error {
	return s.put(meta, r)
}

func (s *Store) put(meta Meta, r io.Reader) error {
	dir, err := s.objectDir(meta.Fingerprint)
	if err != nil {
		return err
	}
	if meta.Kind == "" {
		return fmt.Errorf("store: meta has no kind")
	}

	stage, err := os.MkdirTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(stage)

	dst, err := os.Create(filepath.Join(stage, "results.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Size the sweep while staging it: every line past the header is one
	// record, so callers never have to re-scan the stored JSONL.
	var lc lineCounter
	n, err := io.Copy(dst, io.TeeReader(r, &lc))
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: staging %s: %w", meta.Fingerprint, err)
	}
	meta.Bytes = n
	meta.Records = 0
	if lc.lines > 0 {
		meta.Records = lc.lines - 1
	}

	// Transcode the staged stream into its columnar twin. Best-effort: a
	// stream the decoder rejects (not a sweep, unknown kind) finalizes
	// without one and readers stay on the JSONL path.
	_ = transcodeColumnar(filepath.Join(stage, "results.jsonl"), filepath.Join(stage, "results.hbmc"))

	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(stage, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(stage, dir); err != nil {
		if s.Has(meta.Fingerprint) {
			// Lost a finalize race; the winner's content is identical.
			return nil
		}
		return fmt.Errorf("store: finalizing %s: %w", meta.Fingerprint, err)
	}
	mPuts.Inc()
	mPutBytes.Add(n)
	return nil
}

// transcodeColumnar decodes the sweep JSONL at src and writes its
// columnar twin to dst (written whole, then synced - callers either stage
// inside a not-yet-visible object or rename into place themselves).
func transcodeColumnar(src, dst string) error {
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	h, recs, err := core.DecodeRecords("", f)
	if err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	err = core.EncodeColumnar(out, h, recs)
	if serr := out.Sync(); err == nil {
		err = serr
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
	}
	return err
}

// GetColumnar opens the stored sweep's columnar twin and its metadata.
// The caller closes the reader. Returns ErrNotFound when the fingerprint
// has no finished sweep, and ErrNoColumnar when the sweep is stored but
// carries no twin (readers should fall back to Get and may backfill via
// EnsureColumnar). A columnar hit refreshes the object's LRU recency just
// like a raw read.
func (s *Store) GetColumnar(fingerprint string) (io.ReadCloser, *Meta, error) {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return nil, nil, err
	}
	meta, err := readMeta(filepath.Join(dir, "meta.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	f, err := os.Open(filepath.Join(dir, "results.hbmc"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoColumnar, fingerprint)
		}
		return nil, nil, err
	}
	touch(filepath.Join(dir, "meta.json"))
	mReadsColumnar.Inc()
	return f, meta, nil
}

// HasColumnar reports whether the stored sweep carries a columnar twin.
func (s *Store) HasColumnar(fingerprint string) bool {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, "results.hbmc"))
	return err == nil
}

// EnsureColumnar backfills the columnar twin of an already-finalized
// sweep - the lazy migration path for stores populated before the format
// existed. Idempotent: a present twin is left untouched. The twin is
// staged under tmp/ and renamed into the object, so concurrent callers
// race safely (identical content by construction) and a crash leaves no
// half-written artifact. Returns ErrNotFound when the fingerprint has no
// finished sweep.
func (s *Store) EnsureColumnar(fingerprint string) error {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); err != nil {
		if os.IsNotExist(err) {
			return ErrNotFound
		}
		return err
	}
	dst := filepath.Join(dir, "results.hbmc")
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	stage, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "columnar-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	stagePath := stage.Name()
	stage.Close()
	if err := transcodeColumnar(filepath.Join(dir, "results.jsonl"), stagePath); err != nil {
		os.Remove(stagePath)
		return fmt.Errorf("store: transcoding %s: %w", fingerprint, err)
	}
	if err := os.Rename(stagePath, dst); err != nil {
		os.Remove(stagePath)
		return fmt.Errorf("store: backfilling %s: %w", fingerprint, err)
	}
	mBackfills.Inc()
	return nil
}

// DropColumnar removes the stored sweep's columnar twin, leaving the
// JSONL and metadata in place. The recovery path for a twin that no
// longer decodes (disk corruption): readers fall back to the JSONL and
// EnsureColumnar re-transcodes a fresh twin from it. A missing twin is
// success; returns ErrNotFound when the fingerprint has no finished
// sweep at all.
func (s *Store) DropColumnar(fingerprint string) error {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); err != nil {
		if os.IsNotExist(err) {
			return ErrNotFound
		}
		return err
	}
	if err := os.Remove(filepath.Join(dir, "results.hbmc")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: dropping columnar twin of %s: %w", fingerprint, err)
	}
	mDrops.Inc()
	return nil
}

// List returns the metadata of every stored sweep, sorted by fingerprint.
func (s *Store) List() ([]Meta, error) {
	var out []Meta
	shards, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", shard.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, obj := range objs {
			meta, err := readMeta(filepath.Join(s.root, "objects", shard.Name(), obj.Name(), "meta.json"))
			if err != nil {
				continue // half-visible entry; skip rather than fail the listing
			}
			out = append(out, *meta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

// Count reports how many finished sweeps the store holds, by counting
// object directories without opening any metadata - cheap enough for a
// liveness probe to call on every poll.
func (s *Store) Count() (int, error) {
	shards, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", shard.Name()))
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		n += len(objs)
	}
	return n, nil
}

// lineCounter counts newline-terminated lines flowing through a write.
type lineCounter struct{ lines int }

func (c *lineCounter) Write(p []byte) (int, error) {
	c.lines += bytes.Count(p, []byte{'\n'})
	return len(p), nil
}

// GetDerived returns a cached derived result (an aggregate computed from a
// stored sweep) by its content key, "sha256:<hex>" like a fingerprint.
// Returns ErrNotFound when the key has never been put or was pruned.
func (s *Store) GetDerived(key string) ([]byte, error) {
	path, err := s.derivedPath(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	touch(path)
	mDerivedGets.Inc()
	return b, nil
}

// PutDerived caches a derived result under its content key, atomically
// (staged write + rename). Losing a race to another writer is success: the
// key is a content address over (sweep fingerprint, canonical query spec),
// so concurrent writers stage identical bytes.
func (s *Store) PutDerived(key string, data []byte) error {
	path, err := s.derivedPath(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	stage, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "derived-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := stage.Write(data)
	if serr := stage.Sync(); werr == nil {
		werr = serr
	}
	if cerr := stage.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(stage.Name())
		return fmt.Errorf("store: staging derived %s: %w", key, werr)
	}
	if err := os.Rename(stage.Name(), path); err != nil {
		os.Remove(stage.Name())
		return fmt.Errorf("store: finalizing derived %s: %w", key, err)
	}
	mDerivedPuts.Inc()
	return nil
}

func (s *Store) derivedPath(key string) (string, error) {
	hex, err := shardedHex(key)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, "derived", hex[:2], hex[2:]+".json"), nil
}

// pruneEntry is one evictable unit: a whole sweep object or one derived
// result, with the payload bytes it frees and the recency stamp it is
// ranked by.
type pruneEntry struct {
	path     string // object dir, or derived file
	isObject bool
	bytes    int64
	accessed time.Time
}

// Prune evicts least-recently-accessed content - stored sweeps and cached
// derived results alike - until the store's payload is at most keepBytes,
// and reports how many entries it removed. Recency is the meta.json (or
// derived file) modification time, which Get, Path and GetDerived refresh
// on every hit, so the store behaves as an LRU cache of bounded size.
// Safe to run concurrently with readers: an open descriptor keeps serving
// after its object is unlinked, and a later identical Put simply restores
// the address.
func (s *Store) Prune(keepBytes int64) (removed int, err error) {
	mPruneRuns.Inc()
	defer func() { mPruneEvicted.Add(int64(removed)) }()
	var entries []pruneEntry
	var total int64

	shards, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		shardDir := filepath.Join(s.root, "objects", shard.Name())
		objs, err := os.ReadDir(shardDir)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		for _, obj := range objs {
			dir := filepath.Join(shardDir, obj.Name())
			metaInfo, err := os.Stat(filepath.Join(dir, "meta.json"))
			if err != nil {
				continue // half-visible entry; skip, as List does
			}
			var size int64
			if files, err := os.ReadDir(dir); err == nil {
				for _, f := range files {
					if fi, err := f.Info(); err == nil {
						size += fi.Size()
					}
				}
			}
			entries = append(entries, pruneEntry{path: dir, isObject: true, bytes: size, accessed: metaInfo.ModTime()})
			total += size
		}
	}

	derivedShards, err := os.ReadDir(filepath.Join(s.root, "derived"))
	if err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("store: %w", err)
	}
	for _, shard := range derivedShards {
		if !shard.IsDir() {
			continue
		}
		shardDir := filepath.Join(s.root, "derived", shard.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			fi, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, pruneEntry{path: filepath.Join(shardDir, f.Name()), bytes: fi.Size(), accessed: fi.ModTime()})
			total += fi.Size()
		}
	}

	// Oldest access first; ties break on path so eviction is deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].accessed.Equal(entries[j].accessed) {
			return entries[i].accessed.Before(entries[j].accessed)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= keepBytes {
			break
		}
		if e.isObject {
			err = os.RemoveAll(e.path)
		} else {
			err = os.Remove(e.path)
		}
		if err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("store: pruning %s: %w", e.path, err)
		}
		removed++
		total -= e.bytes
	}
	return removed, nil
}

func readMeta(path string) (*Meta, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt meta %s: %w", path, err)
	}
	// The meta document is stored indented; hand the raw config back
	// compact so catalog consumers see one canonical byte form.
	if len(m.Config) > 0 {
		var cb bytes.Buffer
		if json.Compact(&cb, m.Config) == nil {
			m.Config = append(json.RawMessage(nil), cb.Bytes()...)
		}
	}
	return &m, nil
}
