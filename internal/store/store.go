// Package store is a content-addressed, on-disk result store for finished
// sweeps: the sweep fingerprint (see internal/core) is the address, the
// value is the completed JSONL record stream plus a small metadata
// document. Because equal fingerprints mean byte-identical record
// streams, a hit can be served instantly in place of re-running the sweep
// - the durability layer under hbmrdd and any future batch tooling.
//
// Layout under the root:
//
//	objects/<aa>/<rest-of-fingerprint>/results.jsonl
//	objects/<aa>/<rest-of-fingerprint>/meta.json
//	tmp/  (staging for atomic finalize)
//
// Finalize is atomic: an object is staged under tmp/ and renamed into
// objects/ in one step, so a crashed writer can never leave a half-object
// at an address. Losing a race to another writer is success - the content
// is identical by construction.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotFound reports a fingerprint with no finished sweep in the store.
var ErrNotFound = errors.New("store: sweep not found")

// Meta describes one stored sweep.
type Meta struct {
	// Fingerprint is the sweep's content address.
	Fingerprint string `json:"fingerprint"`
	// Kind is the experiment kind ("ber", "hcfirst", ...).
	Kind string `json:"kind"`
	// Cells is the sweep's plan cell count.
	Cells int `json:"cells"`
	// Records is the number of record lines (excluding the header).
	Records int `json:"records"`
	// Bytes is the size of results.jsonl.
	Bytes int64 `json:"bytes"`
}

// Store is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use across goroutines and
// processes; atomicity comes from staged writes and rename.
type Store struct {
	root string
}

// Open prepares a store rooted at dir, creating the layout if needed.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// objectDir maps a fingerprint to its object directory, two-level sharded
// so no single directory grows unbounded. The "sha256:" scheme prefix is
// folded into the hex portion's directory name.
func (s *Store) objectDir(fingerprint string) (string, error) {
	hex := strings.TrimPrefix(fingerprint, "sha256:")
	if hex == fingerprint || len(hex) < 8 {
		return "", fmt.Errorf("store: malformed fingerprint %q", fingerprint)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: malformed fingerprint %q", fingerprint)
		}
	}
	return filepath.Join(s.root, "objects", hex[:2], hex[2:]), nil
}

// Has reports whether a finished sweep is stored at the fingerprint.
func (s *Store) Has(fingerprint string) bool {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, "meta.json"))
	return err == nil
}

// Get opens the stored record stream (header line first) and its
// metadata. The caller closes the reader. Returns ErrNotFound when the
// fingerprint has no finished sweep.
func (s *Store) Get(fingerprint string) (io.ReadCloser, *Meta, error) {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return nil, nil, err
	}
	meta, err := readMeta(filepath.Join(dir, "meta.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	f, err := os.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	return f, meta, nil
}

// Path returns the on-disk path of the stored record stream, for callers
// that serve the file directly (http.ServeFile). Returns ErrNotFound when
// absent.
func (s *Store) Path(fingerprint string) (string, *Meta, error) {
	dir, err := s.objectDir(fingerprint)
	if err != nil {
		return "", nil, err
	}
	meta, err := readMeta(filepath.Join(dir, "meta.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil, ErrNotFound
		}
		return "", nil, err
	}
	return filepath.Join(dir, "results.jsonl"), meta, nil
}

// PutFile finalizes the completed sweep file at path into the store by
// copying it into a staging object and atomically renaming the object
// into place. The source file is left untouched. If the fingerprint is
// already stored, the existing object wins (identical content) and the
// staged copy is discarded.
func (s *Store) PutFile(meta Meta, path string) error {
	src, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer src.Close()
	return s.put(meta, src)
}

// Put finalizes a completed sweep read from r, as PutFile does for files.
func (s *Store) Put(meta Meta, r io.Reader) error {
	return s.put(meta, r)
}

func (s *Store) put(meta Meta, r io.Reader) error {
	dir, err := s.objectDir(meta.Fingerprint)
	if err != nil {
		return err
	}
	if meta.Kind == "" {
		return fmt.Errorf("store: meta has no kind")
	}

	stage, err := os.MkdirTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(stage)

	dst, err := os.Create(filepath.Join(stage, "results.jsonl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n, err := io.Copy(dst, r)
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: staging %s: %w", meta.Fingerprint, err)
	}
	meta.Bytes = n

	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(stage, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(stage, dir); err != nil {
		if s.Has(meta.Fingerprint) {
			// Lost a finalize race; the winner's content is identical.
			return nil
		}
		return fmt.Errorf("store: finalizing %s: %w", meta.Fingerprint, err)
	}
	return nil
}

// List returns the metadata of every stored sweep, sorted by fingerprint.
func (s *Store) List() ([]Meta, error) {
	var out []Meta
	shards, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", shard.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, obj := range objs {
			meta, err := readMeta(filepath.Join(s.root, "objects", shard.Name(), obj.Name(), "meta.json"))
			if err != nil {
				continue // half-visible entry; skip rather than fail the listing
			}
			out = append(out, *meta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out, nil
}

func readMeta(path string) (*Meta, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt meta %s: %w", path, err)
	}
	return &m, nil
}
