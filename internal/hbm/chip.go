package hbm

import (
	"fmt"

	"hbmrd/internal/disturb"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/trr"
)

// Chip is one simulated HBM stack. Its channels operate (and may be
// driven) independently; chip-level configuration (mode registers,
// temperature, age) must not be changed while channels are being driven.
type Chip struct {
	geom     Geometry
	prof     disturb.Profile
	model    *disturb.Model
	mapper   rowmap.Mapper
	timing   Timing
	gates    gateTable // timing rules compiled once from timing (gates.go)
	modeRegs ModeRegisters
	channels []*Channel
}

// config collects the functional options of New.
type config struct {
	geom        Geometry
	timing      Timing
	timingSet   bool
	mapper      rowmap.Mapper
	identityMap bool
	trrCfg      trr.Config
	autoTiming  bool
}

// Option configures a Chip at construction time.
type Option func(*config)

// WithGeometry builds the chip with a preset's organization and timing
// table (see Presets). An explicit WithTiming still wins over the preset's
// timing, regardless of option order.
func WithGeometry(p Preset) Option {
	return func(c *config) {
		c.geom = p.Geometry
		if !c.timingSet {
			c.timing = p.Timing
		}
	}
}

// WithTiming overrides the default timing parameters.
func WithTiming(t Timing) Option {
	return func(c *config) {
		c.timing = t
		c.timingSet = true
	}
}

// WithMapper overrides the chip's internal logical-to-physical row mapping.
// The mapper must cover exactly the chip geometry's row count.
func WithMapper(m rowmap.Mapper) Option {
	return func(c *config) {
		c.mapper = m
		c.identityMap = false
	}
}

// WithIdentityMapping disables the vendor row swizzle: logical adjacency
// equals physical adjacency. Unlike WithMapper, it adapts to whatever row
// count the chip's geometry ends up with.
func WithIdentityMapping() Option {
	return func(c *config) {
		c.mapper = nil
		c.identityMap = true
	}
}

// WithTRRConfig overrides the undocumented TRR mechanism's configuration
// (e.g. to disable it, or for the ablation benchmarks that sweep its
// tracker size).
func WithTRRConfig(cfg trr.Config) Option {
	return func(c *config) { c.trrCfg = cfg }
}

// WithStrictTiming starts all channels in strict-timing mode, where
// commands issued before their earliest legal time fail with *TimingError
// instead of being delayed.
func WithStrictTiming() Option {
	return func(c *config) { c.autoTiming = false }
}

// New builds a chip from a fault-model profile. By default the chip uses
// the paper's HBM2 geometry and timing (the HBM2_8Gb preset), a
// salt-derived BitSwizzle row mapping (like real chips, the mapping
// differs per specimen), the paper's TRR configuration when the profile
// enables TRR, and auto-delayed command timing.
func New(prof disturb.Profile, opts ...Option) (*Chip, error) {
	cfg := config{
		geom:       DefaultGeometry(),
		timing:     DefaultTiming(),
		autoTiming: true,
	}
	if prof.HasTRR {
		cfg.trrCfg = trr.DefaultConfig()
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.geom.Validate(); err != nil {
		return nil, err
	}
	model, err := disturb.NewModelFor(prof, disturb.Org{
		Channels:    cfg.geom.Channels,
		Ranks:       cfg.geom.NumRanks(),
		RowsPerBank: cfg.geom.Rows,
		RowBytes:    cfg.geom.RowBytes,
	})
	if err != nil {
		return nil, err
	}
	switch {
	case cfg.identityMap:
		cfg.mapper = rowmap.Identity{NumRows: cfg.geom.Rows}
	case cfg.mapper == nil:
		cfg.mapper = rowmap.BitSwizzle{NumRows: cfg.geom.Rows, Salt: prof.Seed}
	}
	if err := cfg.timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.mapper.Rows() != cfg.geom.Rows {
		return nil, fmt.Errorf("hbm: mapper covers %d rows, want %d", cfg.mapper.Rows(), cfg.geom.Rows)
	}
	if err := cfg.trrCfg.Validate(); err != nil {
		return nil, err
	}

	c := &Chip{
		geom:     cfg.geom,
		prof:     prof,
		model:    model,
		mapper:   cfg.mapper,
		timing:   cfg.timing,
		gates:    buildGateTable(cfg.timing),
		channels: make([]*Channel, cfg.geom.Channels),
	}
	banksPerPC := cfg.geom.BanksPerPC()
	for i := 0; i < cfg.geom.Channels; i++ {
		ch := &Channel{
			chip:       c,
			geom:       cfg.geom,
			fp:         model.Floorplan(),
			index:      i,
			autoTiming: cfg.autoTiming,
			banks:      make([][]*bank, cfg.geom.PseudoChannels),
		}
		for pc := 0; pc < cfg.geom.PseudoChannels; pc++ {
			ch.banks[pc] = make([]*bank, banksPerPC)
			for bi := 0; bi < banksPerPC; bi++ {
				b, err := newBank(ch, pc, bi, cfg.trrCfg)
				if err != nil {
					return nil, err
				}
				ch.banks[pc][bi] = b
			}
		}
		c.channels[i] = ch
	}
	return c, nil
}

// NewBuiltin builds one of the six chips the paper tests (index 0-5).
func NewBuiltin(index int, opts ...Option) (*Chip, error) {
	prof, err := disturb.BuiltinProfile(index)
	if err != nil {
		return nil, err
	}
	return New(prof, opts...)
}

// Channel returns channel i (0 .. Geometry().Channels-1).
func (c *Chip) Channel(i int) (*Channel, error) {
	if i < 0 || i >= len(c.channels) {
		return nil, fmt.Errorf("hbm: channel %d out of [0,%d)", i, len(c.channels))
	}
	return c.channels[i], nil
}

// Geometry returns the chip's organization.
func (c *Chip) Geometry() Geometry { return c.geom }

// Profile returns the fault-model profile the chip was built from.
func (c *Chip) Profile() disturb.Profile { return c.prof }

// Model exposes the chip's fault model for environment control
// (temperature, aging). Do not call its Set* methods while channels are
// being driven.
func (c *Chip) Model() *disturb.Model { return c.model }

// Mapper returns the chip's logical-to-physical row mapping. Experiments
// that follow the paper's methodology should *reverse-engineer* the mapping
// through hammering instead (see internal/rowmap); this accessor is the
// shortcut for experiment harnesses that have already done so.
func (c *Chip) Mapper() rowmap.Mapper { return c.mapper }

// Timing returns the chip's timing parameters.
func (c *Chip) Timing() Timing { return c.timing }

// ModeRegisters returns the current mode-register state.
func (c *Chip) ModeRegisters() ModeRegisters { return c.modeRegs }

// SetECC enables or disables the on-die ECC path (mode-register write,
// §3.1). Not safe while channels are being driven.
func (c *Chip) SetECC(enabled bool) { c.modeRegs.ECCEnabled = enabled }

// SetTRRMode records the documented JEDEC TRR Mode state (bookkeeping
// only; see ModeRegisters).
func (c *Chip) SetTRRMode(enabled bool) { c.modeRegs.TRRModeEnabled = enabled }

// ReadTemperatureSensor models the IEEE 1500 test-port temperature readout
// the paper uses for Chips 1-5: the true chip temperature plus bounded,
// deterministic sensor noise that varies with the sampling time.
func (c *Chip) ReadTemperatureSensor(at TimePS) float64 {
	h := (uint64(at)/uint64(5*SEC) + 1) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	noise := (float64(h&0xFFFF)/0xFFFF - 0.5) * 0.8 // +-0.4 C
	return c.model.TempC() + noise
}
