package hbm

import (
	"fmt"

	"hbmrd/internal/ecc"
)

// This file provides the row-level convenience operations experiments use:
// whole-row writes and reads (composed of JEDEC commands with automatic
// timing) and the batched hammer paths that make paper-scale hammer counts
// tractable. The batched paths are exactly equivalent to issuing the
// corresponding ACT/PRE sequences one by one (a property the test suite
// verifies) but run in O(1) per burst, mirroring the hardware loop
// instructions of the real DRAM Bender platform.

// WriteRow activates a logical row, writes all its columns from data
// (Geometry().RowBytes bytes), and precharges.
func (ch *Channel) WriteRow(pc, bankIdx, row int, data []byte) error {
	if len(data) < ch.geom.RowBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.RowBytes)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.writeRowLocked(pc, bankIdx, row, data)
}

func (ch *Channel) writeRowLocked(pc, bankIdx, row int, data []byte) error {
	if err := ch.activateLocked(pc, bankIdx, row); err != nil {
		return err
	}
	if err := ch.writeColumnsLocked(pc, bankIdx, data); err != nil {
		return err
	}
	return ch.prechargeLocked(pc, bankIdx, true)
}

// writeColumnsLocked writes every column of the open row in one burst:
// the bounds, bank and timing checks of the per-column loop are hoisted
// out (tRCD and tCCD_L gate the first WR, every later WR lands exactly
// max(tCK, tCCD_L) after its predecessor — the same schedule the
// per-command loop converges to), and the data moves with one copy. The
// burst is the only column path: composites gate their opening ACT under
// the channel's timing mode, and their interior commands always run at
// this earliest-legal cadence (see gateLocked), so strict mode shares the
// bulk fast path instead of falling back to per-command issue.
func (ch *Channel) writeColumnsLocked(pc, bankIdx int, data []byte) error {
	b, step, err := ch.burstGateLocked(cmdWR, pc, bankIdx)
	if err != nil {
		return err
	}
	rs := b.row(b.openPhys, ch.now)
	if rs.data == nil {
		rs.data = make([]byte, ch.geom.RowBytes)
	}
	copy(rs.data, data[:ch.geom.RowBytes])
	if ch.chip.modeRegs.ECCEnabled {
		if rs.parity == nil {
			rs.parity = make([]byte, ch.geom.RowBytes/ecc.WordBytes)
		}
		cb := ch.geom.ColBytes
		for col := 0; col < ch.geom.Cols(); col++ {
			updateParityColumn(rs.data, rs.parity, col*cb, cb)
		}
	}
	b.ts[tsLastRW] = ch.now + TimePS(ch.geom.Cols()-1)*step
	b.ts[tsWrRW] = b.ts[tsLastRW]
	ch.now = b.ts[tsLastRW] + ch.chip.timing.TCK
	return nil
}

// burstGateLocked runs the shared preamble of a bulk column burst: bank
// lookup, open-row check, one gate-table probe covering the burst's first
// command (tRCD and tCCD_L), and the per-column step the per-command loop
// converges to (each command advances the clock by tCK, the next is gated
// on tCCD_L). Interior commands of a composite always run at the
// earliest-legal cadence, so the probe forces auto mode.
func (ch *Channel) burstGateLocked(cmd command, pc, bankIdx int) (*bank, TimePS, error) {
	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return nil, 0, err
	}
	if !b.open {
		return nil, 0, ErrBankClosed
	}
	if err := ch.gateLocked(cmd, &b.ts, true); err != nil {
		return nil, 0, err
	}
	t := ch.chip.timing
	step := t.TCK
	if t.TCCDL > step {
		step = t.TCCDL
	}
	return b, step, nil
}

// FillRow writes the same byte to every cell of a logical row. The fill
// data is staged in a per-channel buffer reused across calls (and kept
// when consecutive fills use the same byte), so hot loops (pattern
// initialization before every hammer) do not allocate.
func (ch *Channel) FillRow(pc, bankIdx, row int, fill byte) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.fillBuf == nil {
		ch.fillBuf = make([]byte, ch.geom.RowBytes)
		ch.fillOK = false
	}
	if !ch.fillOK || ch.fillByte != fill {
		for i := range ch.fillBuf {
			ch.fillBuf[i] = fill
		}
		ch.fillByte, ch.fillOK = fill, true
	}
	return ch.writeRowLocked(pc, bankIdx, row, ch.fillBuf)
}

// ReadRow activates a logical row, reads all its columns into buf
// (Geometry().RowBytes bytes), and precharges. Activation materializes any
// pending disturbance first, so this is how experiments observe bitflips.
func (ch *Channel) ReadRow(pc, bankIdx, row int, buf []byte) error {
	if len(buf) < ch.geom.RowBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.RowBytes)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if err := ch.activateLocked(pc, bankIdx, row); err != nil {
		return err
	}
	if err := ch.readColumnsLocked(pc, bankIdx, buf); err != nil {
		return err
	}
	return ch.prechargeLocked(pc, bankIdx, true)
}

// readColumnsLocked is the read half of the bulk column path; see
// writeColumnsLocked for the timing reasoning.
func (ch *Channel) readColumnsLocked(pc, bankIdx int, buf []byte) error {
	b, step, err := ch.burstGateLocked(cmdRD, pc, bankIdx)
	if err != nil {
		return err
	}
	n := ch.geom.RowBytes
	rs := b.peek(b.openPhys)
	if rs == nil || rs.data == nil {
		for i := 0; i < n; i++ {
			buf[i] = 0
		}
	} else {
		copy(buf[:n], rs.data[:n])
		if ch.chip.modeRegs.ECCEnabled && rs.parity != nil {
			cb := ch.geom.ColBytes
			for col := 0; col < ch.geom.Cols(); col++ {
				correctColumn(buf[col*cb:(col+1)*cb], rs.parity, col*cb, cb)
			}
		}
	}
	b.ts[tsLastRW] = ch.now + TimePS(ch.geom.Cols()-1)*step
	if b.ts[tsWrRW] != tsFloor {
		b.ts[tsWrRW] = b.ts[tsLastRW]
	}
	ch.now = b.ts[tsLastRW] + ch.chip.timing.TCK
	return nil
}

// ColumnRead opens a logical row and streams `reads` back-to-back column
// reads through it before precharging - the ColumnDisturb access pattern
// (arXiv 2510.14750). Unlike hammering, the disturbance is carried by the
// bitlines: every materialized row sharing the aggressor's subarray
// within the blast radius accrues a pending column dose, scaled by the
// read count and the data pattern, on top of the ordinary long-open
// (RowPress) wordline dose on the immediate neighbours. Equivalent to
// ACT + reads*RD + PRE, in O(1).
func (ch *Channel) ColumnRead(pc, bankIdx, row, reads int) error {
	if row < 0 || row >= ch.geom.Rows {
		return fmt.Errorf("hbm: row %d out of range", row)
	}
	if reads < 0 {
		return fmt.Errorf("hbm: negative column read count %d", reads)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()

	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if b.open {
		return fmt.Errorf("%w: %s", ErrBankOpen, Addr{ch.index, pc, bankIdx, b.openLogical})
	}
	if reads == 0 {
		return nil
	}

	// The row stays open for the whole read burst at the bulk column
	// cadence (see burstGateLocked), never less than tRAS.
	t := ch.chip.timing
	step := t.TCK
	if t.TCCDL > step {
		step = t.TCCDL
	}
	onTime := TimePS(reads) * step
	if onTime < t.TRAS {
		onTime = t.TRAS
	}
	perAct := t.TRC
	if onTime+t.TRP > perAct {
		perAct = onTime + t.TRP
	}

	phys := ch.chip.mapper.ToPhysical(row)
	rs := b.row(phys, ch.now)
	ch.restoreLocked(pc, bankIdx, b, phys, rs)
	b.trr.OnActivateN(phys, 1)
	ch.applyDoseLocked(pc, bankIdx, b, phys, 1, onTime, nil)
	ch.applyColDisturbLocked(b, phys, rs, reads)

	ch.now += perAct
	b.ts[tsLastAct] = ch.now
	b.ts[tsLastPre] = ch.now
	return nil
}

// HammerDoubleSided performs the paper's double-sided access pattern: it
// alternately activates the two aggressor rows `count` times each, keeping
// each activation open for tOn (clamped up to tRAS). Equivalent to the
// explicit ACT/wait/PRE loop, in O(1).
func (ch *Channel) HammerDoubleSided(pc, bankIdx, rowA, rowB, count int, tOn TimePS) error {
	rows := [2]int{rowA, rowB}
	counts := [2]int{count, count}
	return ch.hammer(pc, bankIdx, rows[:], counts[:], tOn, true)
}

// HammerSingleSided activates one aggressor row `count` times. Single-sided
// hammering is the paper's tool for discovering subarray boundaries and
// physical adjacency.
func (ch *Channel) HammerSingleSided(pc, bankIdx, row, count int, tOn TimePS) error {
	rows := [1]int{row}
	counts := [1]int{count}
	return ch.hammer(pc, bankIdx, rows[:], counts[:], tOn, true)
}

// HammerRows activates each rows[i] counts[i] times in order (rows[0]
// first). Unlike the double-sided helpers, rows in the burst are NOT
// excluded from each other's disturbance, matching access patterns - like
// the TRR bypass pattern - whose rows are far apart or re-restored every
// burst anyway.
func (ch *Channel) HammerRows(pc, bankIdx int, rows, counts []int, tOn TimePS) error {
	return ch.hammer(pc, bankIdx, rows, counts, tOn, false)
}

func (ch *Channel) hammer(pc, bankIdx int, rows, counts []int, tOn TimePS, excludeSelf bool) error {
	if len(rows) != len(counts) {
		return fmt.Errorf("hbm: %d rows but %d counts", len(rows), len(counts))
	}
	for i, r := range rows {
		if r < 0 || r >= ch.geom.Rows {
			return fmt.Errorf("hbm: row %d out of range", r)
		}
		if counts[i] < 0 {
			return fmt.Errorf("hbm: negative hammer count %d", counts[i])
		}
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()

	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if b.open {
		return fmt.Errorf("%w: %s", ErrBankOpen, Addr{ch.index, pc, bankIdx, b.openLogical})
	}

	t := ch.chip.timing
	if tOn < t.TRAS {
		tOn = t.TRAS
	}
	perAct := t.TRC
	if tOn+t.TRP > perAct {
		perAct = tOn + t.TRP
	}

	// Translate to physical rows; each hammered row's own charge restores
	// at its first activation of the burst. Both scratch slices live on
	// the channel so paper-scale hammer loops never allocate.
	phys := ch.physBuf[:0]
	for _, r := range rows {
		phys = append(phys, ch.chip.mapper.ToPhysical(r))
	}
	ch.physBuf = phys
	var exclude []int
	if excludeSelf {
		exclude = append(ch.exclBuf[:0], phys...)
		ch.exclBuf = exclude
	}
	for _, p := range phys {
		rs := b.row(p, ch.now)
		ch.restoreLocked(pc, bankIdx, b, p, rs)
	}

	// TRR sees the first occurrence of each row in order, then the bulk.
	for i, p := range phys {
		if counts[i] > 0 {
			b.trr.OnActivateN(p, 1)
		}
	}
	totalActs := 0
	for i, p := range phys {
		if counts[i] > 1 {
			b.trr.OnActivateN(p, counts[i]-1)
		}
		totalActs += counts[i]
	}

	// Dose application (O(1) per row).
	for i, p := range phys {
		if counts[i] > 0 {
			ch.applyDoseLocked(pc, bankIdx, b, p, counts[i], tOn, exclude)
		}
	}

	ch.now += TimePS(totalActs) * perAct
	b.ts[tsLastAct] = ch.now
	b.ts[tsLastPre] = ch.now
	return nil
}
