package hbm

import "fmt"

// This file provides the row-level convenience operations experiments use:
// whole-row writes and reads (composed of JEDEC commands with automatic
// timing) and the batched hammer paths that make paper-scale hammer counts
// tractable. The batched paths are exactly equivalent to issuing the
// corresponding ACT/PRE sequences one by one (a property the test suite
// verifies) but run in O(1) per burst, mirroring the hardware loop
// instructions of the real DRAM Bender platform.

// WriteRow activates a logical row, writes all its columns from data
// (Geometry().RowBytes bytes), and precharges.
func (ch *Channel) WriteRow(pc, bankIdx, row int, data []byte) error {
	if len(data) < ch.geom.RowBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.RowBytes)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.writeRowLocked(pc, bankIdx, row, data)
}

func (ch *Channel) writeRowLocked(pc, bankIdx, row int, data []byte) error {
	if err := ch.activateLocked(pc, bankIdx, row); err != nil {
		return err
	}
	for col := 0; col < ch.geom.Cols(); col++ {
		if err := ch.writeLocked(pc, bankIdx, col, data[col*ch.geom.ColBytes:]); err != nil {
			return err
		}
	}
	return ch.prechargeLocked(pc, bankIdx)
}

// FillRow writes the same byte to every cell of a logical row. The fill
// data is staged in a per-channel buffer reused across calls, so hot loops
// (pattern initialization before every hammer) do not allocate.
func (ch *Channel) FillRow(pc, bankIdx, row int, fill byte) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.fillBuf == nil {
		ch.fillBuf = make([]byte, ch.geom.RowBytes)
	}
	for i := range ch.fillBuf {
		ch.fillBuf[i] = fill
	}
	return ch.writeRowLocked(pc, bankIdx, row, ch.fillBuf)
}

// ReadRow activates a logical row, reads all its columns into buf
// (Geometry().RowBytes bytes), and precharges. Activation materializes any
// pending disturbance first, so this is how experiments observe bitflips.
func (ch *Channel) ReadRow(pc, bankIdx, row int, buf []byte) error {
	if len(buf) < ch.geom.RowBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.RowBytes)
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if err := ch.activateLocked(pc, bankIdx, row); err != nil {
		return err
	}
	for col := 0; col < ch.geom.Cols(); col++ {
		if err := ch.readLocked(pc, bankIdx, col, buf[col*ch.geom.ColBytes:]); err != nil {
			return err
		}
	}
	return ch.prechargeLocked(pc, bankIdx)
}

// HammerDoubleSided performs the paper's double-sided access pattern: it
// alternately activates the two aggressor rows `count` times each, keeping
// each activation open for tOn (clamped up to tRAS). Equivalent to the
// explicit ACT/wait/PRE loop, in O(1).
func (ch *Channel) HammerDoubleSided(pc, bankIdx, rowA, rowB, count int, tOn TimePS) error {
	return ch.hammer(pc, bankIdx, []int{rowA, rowB}, []int{count, count}, tOn, true)
}

// HammerSingleSided activates one aggressor row `count` times. Single-sided
// hammering is the paper's tool for discovering subarray boundaries and
// physical adjacency.
func (ch *Channel) HammerSingleSided(pc, bankIdx, row, count int, tOn TimePS) error {
	return ch.hammer(pc, bankIdx, []int{row}, []int{count}, tOn, true)
}

// HammerRows activates each rows[i] counts[i] times in order (rows[0]
// first). Unlike the double-sided helpers, rows in the burst are NOT
// excluded from each other's disturbance, matching access patterns - like
// the TRR bypass pattern - whose rows are far apart or re-restored every
// burst anyway.
func (ch *Channel) HammerRows(pc, bankIdx int, rows, counts []int, tOn TimePS) error {
	return ch.hammer(pc, bankIdx, rows, counts, tOn, false)
}

func (ch *Channel) hammer(pc, bankIdx int, rows, counts []int, tOn TimePS, excludeSelf bool) error {
	if len(rows) != len(counts) {
		return fmt.Errorf("hbm: %d rows but %d counts", len(rows), len(counts))
	}
	for i, r := range rows {
		if r < 0 || r >= ch.geom.Rows {
			return fmt.Errorf("hbm: row %d out of range", r)
		}
		if counts[i] < 0 {
			return fmt.Errorf("hbm: negative hammer count %d", counts[i])
		}
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()

	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if b.open {
		return fmt.Errorf("%w: %s", ErrBankOpen, Addr{ch.index, pc, bankIdx, b.openLogical})
	}

	t := ch.chip.timing
	if tOn < t.TRAS {
		tOn = t.TRAS
	}
	perAct := t.TRC
	if tOn+t.TRP > perAct {
		perAct = tOn + t.TRP
	}

	// Translate to physical rows; each hammered row's own charge restores
	// at its first activation of the burst.
	phys := make([]int, len(rows))
	var exclude map[int]bool
	if excludeSelf {
		exclude = make(map[int]bool, len(rows))
	}
	for i, r := range rows {
		phys[i] = ch.chip.mapper.ToPhysical(r)
		if excludeSelf {
			exclude[phys[i]] = true
		}
		rs := b.row(phys[i], ch.now, ch.jitterFn(pc, bankIdx))
		ch.restoreLocked(pc, bankIdx, b, phys[i], rs)
	}

	// TRR sees the first occurrence of each row in order, then the bulk.
	for i, p := range phys {
		if counts[i] > 0 {
			b.trr.OnActivateN(p, 1)
		}
	}
	totalActs := 0
	for i, p := range phys {
		if counts[i] > 1 {
			b.trr.OnActivateN(p, counts[i]-1)
		}
		totalActs += counts[i]
	}

	// Dose application (O(1) per row).
	for i, p := range phys {
		if counts[i] > 0 {
			ch.applyDoseLocked(pc, bankIdx, b, p, counts[i], tOn, exclude)
		}
	}

	ch.now += TimePS(totalActs) * perAct
	b.lastAct = ch.now
	b.lastPre = ch.now
	return nil
}
