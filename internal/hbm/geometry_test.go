package hbm

import (
	"bytes"
	"strings"
	"testing"

	"hbmrd/internal/rowmap"
)

// TestHBM2PresetPinsPaperConstants is the regression pin: the HBM2_8Gb
// preset must stay byte-for-byte identical to the paper's part (§3), which
// the package constants and DefaultTiming encode.
func TestHBM2PresetPinsPaperConstants(t *testing.T) {
	t.Parallel()
	p, err := LookupPreset(PresetHBM2)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Geometry
	pins := []struct {
		name string
		got  int
		want int
	}{
		{"Channels", g.Channels, 8},
		{"PseudoChannels", g.PseudoChannels, 2},
		{"Banks", g.Banks, 16},
		{"Rows", g.Rows, 16384},
		{"RowBytes", g.RowBytes, 1024},
		{"ColBytes", g.ColBytes, 32},
		{"RowBits", g.RowBits(), RowBits},
		{"Cols", g.Cols(), NumCols},
	}
	for _, pin := range pins {
		if pin.got != pin.want {
			t.Errorf("HBM2_8Gb %s = %d, want %d", pin.name, pin.got, pin.want)
		}
	}
	if g != DefaultGeometry() {
		t.Errorf("HBM2_8Gb geometry %+v differs from DefaultGeometry", g)
	}
	if p.Timing != DefaultTiming() {
		t.Errorf("HBM2_8Gb timing %+v differs from DefaultTiming", p.Timing)
	}
}

func TestPresetRegistry(t *testing.T) {
	t.Parallel()
	ps := Presets()
	if len(ps) < 3 {
		t.Fatalf("only %d presets registered, want at least 3", len(ps))
	}
	if ps[0].Name != PresetHBM2 {
		t.Errorf("first preset is %q, want the default %q", ps[0].Name, PresetHBM2)
	}
	for _, p := range ps {
		if err := p.Geometry.Validate(); err != nil {
			t.Errorf("preset %s: invalid geometry: %v", p.Name, err)
		}
		if err := p.Timing.Validate(); err != nil {
			t.Errorf("preset %s: invalid timing: %v", p.Name, err)
		}
		if p.Description == "" {
			t.Errorf("preset %s: empty description", p.Name)
		}
		if p.Geometry.Name != p.Name {
			t.Errorf("preset %s: geometry labelled %q", p.Name, p.Geometry.Name)
		}
		// Lookup is case-insensitive and returns the same preset.
		got, err := LookupPreset(strings.ToLower(p.Name))
		if err != nil {
			t.Errorf("LookupPreset(%q): %v", strings.ToLower(p.Name), err)
		} else if got.Name != p.Name {
			t.Errorf("LookupPreset(%q) = %s", strings.ToLower(p.Name), got.Name)
		}
	}
	if _, err := LookupPreset("DDR5_who_knows"); err == nil {
		t.Error("unknown preset accepted")
	}
	if names := PresetNames(); len(names) != len(ps) || names[0] != PresetHBM2 {
		t.Errorf("PresetNames() = %v", names)
	}
}

// TestPresetMatrix pins the shape of the ported Ramulator2 registry: the
// HBM3 matrix carries at least the twelve JESD238 rank variants, every
// family rate row is reachable, and PresetAtRate rebinds timing without
// touching the organization.
func TestPresetMatrix(t *testing.T) {
	t.Parallel()
	rankVariants := 0
	byRanks := map[int]int{}
	for _, p := range PresetsByFamily(FamilyHBM3) {
		if r := p.Geometry.NumRanks(); r > 0 && p.DataRateMbps > 0 {
			rankVariants++
			byRanks[r]++
		}
	}
	if rankVariants < 12 {
		t.Errorf("HBM3 matrix has %d rank-variant presets, want >= 12", rankVariants)
	}
	for r := 1; r <= 4; r++ {
		if byRanks[r] < 3 {
			t.Errorf("HBM3 matrix has %d presets with %d ranks, want >= 3 (2Gb-32Gb per JESD238)", byRanks[r], r)
		}
	}

	// Every rate of every family builds a valid timing for its presets.
	for _, family := range []string{FamilyHBM2, FamilyHBM2E, FamilyHBM3} {
		rates := FamilyRates(family)
		if len(rates) == 0 {
			t.Fatalf("family %s has no rate rows", family)
		}
		for _, p := range PresetsByFamily(family) {
			if p.DataRateMbps == 0 {
				continue // legacy hand-rolled presets carry no matrix row
			}
			for _, rate := range rates {
				got, err := PresetAtRate(p.Name, rate)
				if err != nil {
					t.Fatalf("PresetAtRate(%s, %d): %v", p.Name, rate, err)
				}
				if got.Geometry != p.Geometry {
					t.Errorf("PresetAtRate(%s, %d) changed the organization", p.Name, rate)
				}
				if got.DataRateMbps != rate {
					t.Errorf("PresetAtRate(%s, %d) reports %d Mbps", p.Name, rate, got.DataRateMbps)
				}
				if err := got.Timing.Validate(); err != nil {
					t.Errorf("PresetAtRate(%s, %d): invalid timing: %v", p.Name, rate, err)
				}
			}
		}
	}

	// Faster rows must not slow the device down: within a family, tRC at
	// the highest rate stays within a few cycles of the lowest rate's (the
	// analog core barely changes; only the command clock quantizes it).
	for _, name := range []string{"HBM3_16Gb_4R", "HBM2E_16Gb_3.2Gbps"} {
		p, err := LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		rates := FamilyRates(p.Family)
		lo, err := PresetAtRate(name, rates[0])
		if err != nil {
			t.Fatal(err)
		}
		hi, err := PresetAtRate(name, rates[len(rates)-1])
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(hi.Timing.TRC) / float64(lo.Timing.TRC); ratio > 1.5 || ratio < 0.6 {
			t.Errorf("%s: tRC swings %.2fx between %d and %d Mbps", name, ratio, rates[0], rates[len(rates)-1])
		}
	}

	// The legacy presets are deliberately outside the rate matrix.
	if _, err := PresetAtRate(PresetHBM2, 2000); err == nil {
		t.Errorf("PresetAtRate(%s) accepted a hand-rolled preset", PresetHBM2)
	}
	if _, err := PresetAtRate("HBM3_16Gb_4R", 9999); err == nil {
		t.Error("PresetAtRate accepted a rate with no timing row")
	}
}

// TestGeometryRankHelpers covers the flat bank addressing of multi-rank
// organizations.
func TestGeometryRankHelpers(t *testing.T) {
	t.Parallel()
	g := Geometry{Name: "x", Channels: 2, PseudoChannels: 2, Ranks: 3, Banks: 16,
		Rows: 8192, RowBytes: 1024, ColBytes: 32}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.BanksPerPC() != 48 {
		t.Errorf("BanksPerPC = %d, want 48", g.BanksPerPC())
	}
	if g.BanksPerStack() != 2*2*48 {
		t.Errorf("BanksPerStack = %d", g.BanksPerStack())
	}
	for _, tc := range []struct{ flat, rank, inRank int }{
		{0, 0, 0}, {15, 0, 15}, {16, 1, 0}, {33, 2, 1}, {47, 2, 15},
	} {
		if r := g.RankOfBank(tc.flat); r != tc.rank {
			t.Errorf("RankOfBank(%d) = %d, want %d", tc.flat, r, tc.rank)
		}
		if b := g.BankInRank(tc.flat); b != tc.inRank {
			t.Errorf("BankInRank(%d) = %d, want %d", tc.flat, b, tc.inRank)
		}
		if f := g.BankIndex(tc.rank, tc.inRank); f != tc.flat {
			t.Errorf("BankIndex(%d,%d) = %d, want %d", tc.rank, tc.inRank, f, tc.flat)
		}
	}
	// The zero value means single-rank, so pre-rank literals keep meaning.
	var zero Geometry
	if zero.NumRanks() != 1 {
		t.Errorf("zero-value NumRanks = %d, want 1", zero.NumRanks())
	}
	bad := g
	bad.Ranks = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative Ranks validated")
	}
}

func TestGeometryValidateErrors(t *testing.T) {
	t.Parallel()
	base := DefaultGeometry()
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero channels", func(g *Geometry) { g.Channels = 0 }},
		{"negative pseudo", func(g *Geometry) { g.PseudoChannels = -1 }},
		{"zero banks", func(g *Geometry) { g.Banks = 0 }},
		{"zero rows", func(g *Geometry) { g.Rows = 0 }},
		{"zero row bytes", func(g *Geometry) { g.RowBytes = 0 }},
		{"zero col bytes", func(g *Geometry) { g.ColBytes = 0 }},
		{"row not multiple of col", func(g *Geometry) { g.ColBytes = 33 }},
		{"row bytes not ecc-word aligned", func(g *Geometry) { g.RowBytes = 1028; g.ColBytes = 4 }},
		{"rows not swizzle-block aligned", func(g *Geometry) { g.Rows = 16381 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := base
			tc.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Errorf("geometry %+v validated", g)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default geometry invalid: %v", err)
	}
}

// TestGeometryContains validates addresses against every preset, including
// addresses that are legal in one organization and out of range in another.
func TestGeometryContains(t *testing.T) {
	t.Parallel()
	for _, p := range Presets() {
		g := p.Geometry
		good := []Addr{
			{0, 0, 0, 0},
			{g.Channels - 1, g.PseudoChannels - 1, g.BanksPerPC() - 1, g.Rows - 1},
			{g.Channels / 2, 0, g.BanksPerPC() / 2, g.Rows / 2},
		}
		for _, a := range good {
			if err := g.Contains(a); err != nil {
				t.Errorf("%s: %v should be valid: %v", p.Name, a, err)
			}
		}
		bad := []Addr{
			{-1, 0, 0, 0},
			{g.Channels, 0, 0, 0},
			{0, g.PseudoChannels, 0, 0},
			{0, 0, g.BanksPerPC(), 0},
			{0, 0, 0, g.Rows},
			{0, 0, 0, -1},
		}
		for _, a := range bad {
			if err := g.Contains(a); err == nil {
				t.Errorf("%s: %v should be rejected", p.Name, a)
			}
		}
	}
	// The HBM3 preset has channels the HBM2 organization does not.
	h3, err := LookupPreset(PresetHBM3)
	if err != nil {
		t.Fatal(err)
	}
	wide := Addr{Channel: 12}
	if err := h3.Geometry.Contains(wide); err != nil {
		t.Errorf("channel 12 should exist on %s: %v", PresetHBM3, err)
	}
	if err := wide.Validate(); err == nil {
		t.Error("channel 12 should be out of range for the default geometry")
	}
	// The HBM2E preset has rows the others do not.
	h2e, err := LookupPreset(PresetHBM2E)
	if err != nil {
		t.Fatal(err)
	}
	deep := Addr{Row: 20000}
	if err := h2e.Geometry.Contains(deep); err != nil {
		t.Errorf("row 20000 should exist on %s: %v", PresetHBM2E, err)
	}
	if err := DefaultGeometry().Contains(deep); err == nil {
		t.Error("row 20000 should be out of range for the default geometry")
	}
}

// TestPresetMappingRoundTrips checks the logical<->physical row mapping per
// preset: the default BitSwizzle mapper of a chip built with each preset
// must be a verified bijection over that preset's row count, with exact
// round-trips.
func TestPresetMappingRoundTrips(t *testing.T) {
	t.Parallel()
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			chip, err := NewBuiltin(1, WithGeometry(p))
			if err != nil {
				t.Fatal(err)
			}
			m := chip.Mapper()
			if m.Rows() != p.Geometry.Rows {
				t.Fatalf("mapper covers %d rows, want %d", m.Rows(), p.Geometry.Rows)
			}
			if err := rowmap.Verify(m); err != nil {
				t.Fatal(err)
			}
			for _, l := range []int{0, 1, p.Geometry.Rows / 2, p.Geometry.Rows - 1} {
				phys := m.ToPhysical(l)
				if back := m.ToLogical(phys); back != l {
					t.Errorf("row %d -> %d -> %d", l, phys, back)
				}
			}
		})
	}
}

// TestPresetChipsTakeBitflips drives a double-sided hammer on a chip built
// from every preset: each organization must produce disturbance bitflips
// end to end (this guards the whole geometry plumbing; a row-size buffer
// bug, for example, silently suppresses all flips).
func TestPresetChipsTakeBitflips(t *testing.T) {
	t.Parallel()
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			chip, err := NewBuiltin(0, WithGeometry(p), WithIdentityMapping())
			if err != nil {
				t.Fatal(err)
			}
			g := chip.Geometry()
			ch, err := chip.Channel(g.Channels - 1) // also exercises non-HBM2 channel indices
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []int{999, 1000, 1001} {
				fill := byte(0xAA)
				if r != 1000 {
					fill = 0x55
				}
				if err := ch.FillRow(0, g.Banks-1, r, fill); err != nil {
					t.Fatal(err)
				}
			}
			if err := ch.HammerDoubleSided(0, g.Banks-1, 999, 1001, 300_000, 0); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, g.RowBytes)
			if err := ch.ReadRow(0, g.Banks-1, 1000, buf); err != nil {
				t.Fatal(err)
			}
			flips := 0
			for _, b := range buf {
				for x := b ^ byte(0xAA); x != 0; x &= x - 1 {
					flips++
				}
			}
			if flips == 0 {
				t.Errorf("%s: no bitflips after 300K double-sided hammers", p.Name)
			}
			t.Logf("%s: %d flips", p.Name, flips)
		})
	}
}

// TestDefaultChipIdenticalToHBM2Preset verifies the refactor is
// behavior-preserving: a chip built with no geometry options and one built
// with the explicit HBM2_8Gb preset produce bit-identical hammer results.
func TestDefaultChipIdenticalToHBM2Preset(t *testing.T) {
	t.Parallel()
	run := func(opts ...Option) []byte {
		chip, err := NewBuiltin(3, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := chip.Channel(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{511, 512, 513} {
			fill := byte(0x55)
			if r != 512 {
				fill = 0xAA
			}
			if err := ch.FillRow(1, 3, r, fill); err != nil {
				t.Fatal(err)
			}
		}
		if err := ch.HammerDoubleSided(1, 3, 511, 513, 280_000, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, RowBytes)
		if err := ch.ReadRow(1, 3, 512, buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	plain := run()
	preset := run(WithGeometry(DefaultPreset()))
	if !bytes.Equal(plain, preset) {
		t.Error("default chip and explicit HBM2_8Gb preset chip disagree")
	}
}

// TestWithGeometryTimingPrecedence: an explicit WithTiming wins over the
// preset's timing table regardless of option order.
func TestWithGeometryTimingPrecedence(t *testing.T) {
	t.Parallel()
	h3, err := LookupPreset(PresetHBM3)
	if err != nil {
		t.Fatal(err)
	}
	custom := DefaultTiming()
	custom.TRC = 50_000

	before, err := NewBuiltin(0, WithTiming(custom), WithGeometry(h3))
	if err != nil {
		t.Fatal(err)
	}
	if got := before.Timing(); got != custom {
		t.Errorf("WithTiming before WithGeometry lost: %+v", got)
	}
	after, err := NewBuiltin(0, WithGeometry(h3), WithTiming(custom))
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Timing(); got != custom {
		t.Errorf("WithTiming after WithGeometry lost: %+v", got)
	}
	bare, err := NewBuiltin(0, WithGeometry(h3))
	if err != nil {
		t.Fatal(err)
	}
	if got := bare.Timing(); got != h3.Timing {
		t.Errorf("preset timing not applied: %+v", got)
	}
}

// TestChipGeometryAccessors: channels and geometry exposed by a non-default
// chip are consistent.
func TestChipGeometryAccessors(t *testing.T) {
	t.Parallel()
	h3, err := LookupPreset(PresetHBM3)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewBuiltin(0, WithGeometry(h3))
	if err != nil {
		t.Fatal(err)
	}
	g := chip.Geometry()
	if g.Channels != 16 {
		t.Fatalf("geometry channels = %d", g.Channels)
	}
	if _, err := chip.Channel(15); err != nil {
		t.Errorf("channel 15: %v", err)
	}
	if _, err := chip.Channel(16); err == nil {
		t.Error("channel 16 accepted on a 16-channel stack")
	}
	ch, err := chip.Channel(9)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Geometry() != g {
		t.Error("channel geometry differs from chip geometry")
	}
	// A mapper sized for the wrong row count is rejected.
	if _, err := NewBuiltin(0, WithGeometry(h3), WithMapper(rowmap.Identity{NumRows: 8})); err == nil {
		t.Error("wrong-size mapper accepted")
	}
	// An invalid geometry is rejected at construction.
	bad := h3
	bad.Geometry.Rows = 0
	if _, err := NewBuiltin(0, WithGeometry(bad)); err == nil {
		t.Error("invalid geometry accepted")
	}
}
