package hbm

// ModeRegisters models the subset of HBM2 mode-register state the study
// touches. The paper disables on-die ECC by clearing the corresponding mode
// register bit (§3.1) and notes that the documented TRR Mode is entered via
// a well-defined mode-register sequence - while the *undocumented* TRR
// mechanism (internal/trr) operates regardless of this state.
type ModeRegisters struct {
	// ECCEnabled enables the on-die SECDED path: writes store check bits,
	// reads correct single-bit errors per 64-bit word. The paper runs all
	// experiments with ECC disabled so raw bitflips are observable.
	ECCEnabled bool
	// TRRModeEnabled records whether the host enabled the documented
	// JEDEC TRR Mode. It is bookkeeping only: the undocumented mechanism
	// the paper uncovers functions even when this is false (§7 fn. 2).
	TRRModeEnabled bool
}
