package hbm

import (
	"bytes"
	"testing"
	"testing/quick"

	"hbmrd/internal/rowmap"
)

// TestDataIntegrityUnderRandomCommandsProperty: arbitrary legal command
// sequences (activations, reads, waits below the retention window, and
// light hammering far away) never corrupt written data. Only disturbance
// above threshold or long unrefreshed waits may flip bits.
func TestDataIntegrityUnderRandomCommandsProperty(t *testing.T) {
	f := func(ops []uint8, fillByte byte) bool {
		chip, err := NewBuiltin(2, WithMapper(rowmap.Identity{NumRows: NumRows}))
		if err != nil {
			return false
		}
		ch, err := chip.Channel(0)
		if err != nil {
			return false
		}
		const guarded = 5000
		want := bytes.Repeat([]byte{fillByte}, RowBytes)
		if err := ch.WriteRow(0, 0, guarded, want); err != nil {
			return false
		}
		for _, op := range ops {
			switch op % 5 {
			case 0: // benign activation of a distant row
				if err := ch.Activate(0, 1, int(op)*7%NumRows); err != nil {
					return false
				}
				if err := ch.Precharge(0, 1); err != nil {
					return false
				}
			case 1: // short wait (well under the retention window)
				ch.Wait(TimePS(op) * US)
			case 2: // light hammering far from the guarded row
				if err := ch.HammerSingleSided(0, 0, 100+int(op)%50, 200, 0); err != nil {
					return false
				}
			case 3: // read the guarded row (also restores it)
				buf := make([]byte, RowBytes)
				if err := ch.ReadRow(0, 0, guarded, buf); err != nil {
					return false
				}
				if !bytes.Equal(buf, want) {
					return false
				}
			case 4: // refresh
				if err := ch.Refresh(); err != nil {
					return false
				}
			}
		}
		buf := make([]byte, RowBytes)
		if err := ch.ReadRow(0, 0, guarded, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHammerCountAdditivityProperty: two consecutive hammer bursts without
// an intervening victim restore are equivalent to one burst of the summed
// count.
func TestHammerCountAdditivityProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw)%120_000 + 1
		b := int(bRaw)%120_000 + 1
		const victim = 7000

		run := func(counts []int) []byte {
			chip, err := NewBuiltin(4, WithMapper(rowmap.Identity{NumRows: NumRows}))
			if err != nil {
				return nil
			}
			ch, err := chip.Channel(0)
			if err != nil {
				return nil
			}
			for d := -2; d <= 2; d++ {
				fill := byte(0x55)
				if d == -1 || d == 1 {
					fill = 0xAA
				}
				if err := ch.FillRow(0, 0, victim+d, fill); err != nil {
					return nil
				}
			}
			for _, c := range counts {
				if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, c, 0); err != nil {
					return nil
				}
			}
			buf := make([]byte, RowBytes)
			if err := ch.ReadRow(0, 0, victim, buf); err != nil {
				return nil
			}
			return buf
		}

		split := run([]int{a, b})
		joined := run([]int{a + b})
		return split != nil && bytes.Equal(split, joined)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
