package hbm

import "math"

// This file is the precomputed timing-gate layer. The JEDEC rules the
// channel used to re-derive per call through string-keyed timingGate
// checks (tRC, tRP, tRAS, ...) are compiled once per chip, at
// construction, into a [command][bankState] delta table: each bank keeps
// the handful of timestamps the rules reference in a flat array, and a
// gate check is one row scan — index, add, compare — with no branching on
// rule identity. Auto and strict timing share the same scan; they differ
// only in whether an early command jumps the clock forward or reports the
// binding rule as a *TimingError.

// command enumerates the JEDEC commands the gate table covers.
type command uint8

const (
	cmdACT command = iota
	cmdPRE
	cmdRD
	cmdWR
	cmdREF
	numCommands
)

// cmdNames are the display names *TimingError carries.
var cmdNames = [numCommands]string{"ACT", "PRE", "RD", "WR", "REF"}

// Bank-state slots: the timestamps a bank records as commands execute.
// Gate deltas are added to these, so together one bank row and one table
// row decide a command's earliest legal issue time.
const (
	// tsActAt is the ACT time of the current open interval (tRAS, tRCD).
	tsActAt = iota
	// tsLastAct is the previous ACT (tRC).
	tsLastAct
	// tsLastPre is the previous PRE issue time (tRP).
	tsLastPre
	// tsLastRW is the last RD or WR (tCCD_L, tRTP).
	tsLastRW
	// tsWrRW tracks write recovery: the last RD/WR time while the open
	// interval has seen a WR, tsFloor otherwise. This reproduces the
	// historical contract exactly — tWR was gated on the last RW of any
	// kind, but only once a write had happened since the ACT.
	tsWrRW
	// tsRefEnd is when the last REF cycle completes (tRFC); the channel
	// mirrors it into every bank so ACT and REF gate on it by table.
	tsRefEnd
	numStates
)

// tsFloor is the initial value of every bank timestamp: far enough in the
// past that no rule gates, far enough from MinInt64 that adding a gate
// delta cannot overflow.
const tsFloor TimePS = math.MinInt64 / 2

// gateUnused marks table entries whose (command, state) pair carries no
// rule. It is negative enough that floor/now-scale timestamps plus it
// never win the max, and its sum with tsFloor does not overflow.
const gateUnused TimePS = math.MinInt64 / 4

// gateTable holds, for each command, the delay each bank-state timestamp
// imposes on it. earliest(cmd) = max over states s of ts[s] + table[cmd][s].
type gateTable [numCommands][numStates]TimePS

// gateRules names the JEDEC rule behind each (command, state) entry, for
// strict-mode errors.
var gateRules = [numCommands][numStates]string{
	cmdACT: {tsLastAct: "tRC", tsLastPre: "tRP", tsRefEnd: "tRFC"},
	cmdPRE: {tsActAt: "tRAS", tsLastRW: "tRTP", tsWrRW: "tWR"},
	cmdRD:  {tsActAt: "tRCD", tsLastRW: "tCCD_L"},
	cmdWR:  {tsActAt: "tRCD", tsLastRW: "tCCD_L"},
	cmdREF: {tsRefEnd: "tRFC"},
}

// buildGateTable compiles a validated Timing into the per-chip gate table.
func buildGateTable(t Timing) gateTable {
	var g gateTable
	for c := command(0); c < numCommands; c++ {
		for s := 0; s < numStates; s++ {
			g[c][s] = gateUnused
		}
	}
	g[cmdACT][tsLastAct] = t.TRC
	g[cmdACT][tsLastPre] = t.TRP
	g[cmdACT][tsRefEnd] = 0
	g[cmdPRE][tsActAt] = t.TRAS
	g[cmdPRE][tsLastRW] = t.TRTP
	g[cmdPRE][tsWrRW] = t.TWR
	g[cmdRD][tsActAt] = t.TRCD
	g[cmdRD][tsLastRW] = t.TCCDL
	g[cmdWR][tsActAt] = t.TRCD
	g[cmdWR][tsLastRW] = t.TCCDL
	g[cmdREF][tsRefEnd] = 0
	return g
}

// gateLocked resolves cmd's earliest legal issue time against one bank's
// timestamps and advances the channel clock to it or, in strict mode,
// reports the binding rule. forceAuto selects auto behaviour regardless of
// the channel mode: the interior commands of row-level composites
// (WriteRow, ReadRow, FillRow) run at the earliest-legal cadence like the
// hardware loop instructions they model, while their first command still
// answers to strict mode.
func (ch *Channel) gateLocked(cmd command, ts *[numStates]TimePS, forceAuto bool) error {
	row := &ch.chip.gates[cmd]
	earliest := ts[0] + row[0]
	binding := 0
	for s := 1; s < numStates; s++ {
		if e := ts[s] + row[s]; e > earliest {
			earliest, binding = e, s
		}
	}
	if ch.now >= earliest {
		return nil
	}
	if forceAuto || ch.autoTiming {
		ch.now = earliest
		return nil
	}
	return &TimingError{Cmd: cmdNames[cmd], Rule: gateRules[cmd][binding], At: ch.now, Earliest: earliest}
}
