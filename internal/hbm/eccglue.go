package hbm

import (
	"encoding/binary"

	"hbmrd/internal/ecc"
)

// updateParityColumn recomputes the SECDED check bytes for the 64-bit words
// covered by a colBytes-wide column write at byte offset off.
func updateParityColumn(data, parity []byte, off, colBytes int) {
	for w := off / ecc.WordBytes; w < (off+colBytes)/ecc.WordBytes; w++ {
		word := binary.LittleEndian.Uint64(data[w*ecc.WordBytes:])
		parity[w] = ecc.Encode(word).Check
	}
}

// correctColumn applies SECDED correction to the words of a just-read
// column. buf holds the raw column data; off is its byte offset within the
// row (used to find the matching parity bytes). Single-bit errors are
// corrected in place; double-bit errors are left as read (real hardware
// would raise an uncorrectable-error signal to the host).
func correctColumn(buf, parity []byte, off, colBytes int) {
	if colBytes > len(buf) {
		colBytes = len(buf)
	}
	for i := 0; i+ecc.WordBytes <= colBytes; i += ecc.WordBytes {
		w := (off + i) / ecc.WordBytes
		cw := ecc.Codeword{
			Data:  binary.LittleEndian.Uint64(buf[i:]),
			Check: parity[w],
		}
		if data, res := ecc.Decode(cw); res == ecc.Corrected {
			binary.LittleEndian.PutUint64(buf[i:], data)
		}
	}
}
