package hbm

import (
	"bytes"
	"testing"

	"hbmrd/internal/rowmap"
)

// Additional failure-injection and mode-register coverage for the device.

func TestECCPartialColumnWriteKeepsParityConsistent(t *testing.T) {
	c := newTestChip(t, 0)
	c.SetECC(true)
	ch := channelOf(t, c, 0)

	// Write a full row, then overwrite one column; the read back must be
	// exact (parity recomputed for the touched words only).
	full := make([]byte, RowBytes)
	for i := range full {
		full[i] = byte(i)
	}
	if err := ch.WriteRow(0, 0, 300, full); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xEE}, ColBytes)
	if err := ch.Activate(0, 0, 300); err != nil {
		t.Fatal(err)
	}
	if err := ch.Write(0, 0, 7, patch); err != nil {
		t.Fatal(err)
	}
	if err := ch.Precharge(0, 0); err != nil {
		t.Fatal(err)
	}
	copy(full[7*ColBytes:], patch)
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, 300, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Error("partial write with ECC corrupted the row image")
	}
}

func TestModeRegisterAccessors(t *testing.T) {
	c := newTestChip(t, 2)
	if c.ModeRegisters().ECCEnabled {
		t.Error("ECC should default off")
	}
	c.SetECC(true)
	c.SetTRRMode(true)
	mr := c.ModeRegisters()
	if !mr.ECCEnabled || !mr.TRRModeEnabled {
		t.Errorf("mode registers not updated: %+v", mr)
	}
	c.SetECC(false)
	if c.ModeRegisters().ECCEnabled {
		t.Error("ECC did not clear")
	}
}

func TestWaitAdvancesClockMonotonically(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 5)
	t0 := ch.Now()
	ch.Wait(123 * NS)
	if ch.Now() != t0+123*NS {
		t.Error("Wait did not advance by the requested span")
	}
	ch.Wait(-5) // negative waits are ignored
	if ch.Now() != t0+123*NS {
		t.Error("negative Wait moved the clock")
	}
}

func TestShortBuffersRejected(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	if err := ch.WriteRow(0, 0, 5, make([]byte, 10)); err == nil {
		t.Error("short WriteRow buffer accepted")
	}
	if err := ch.ReadRow(0, 0, 5, make([]byte, 10)); err == nil {
		t.Error("short ReadRow buffer accepted")
	}
	if err := ch.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := ch.Read(0, 0, 0, make([]byte, 4)); err == nil {
		t.Error("short Read buffer accepted")
	}
	if err := ch.Write(0, 0, 0, make([]byte, 4)); err == nil {
		t.Error("short Write buffer accepted")
	}
}

func TestColumnRangeValidation(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	if err := ch.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ColBytes)
	if err := ch.Read(0, 0, NumCols, buf); err == nil {
		t.Error("column out of range accepted by Read")
	}
	if err := ch.Write(0, 0, -1, buf); err == nil {
		t.Error("negative column accepted by Write")
	}
}

func TestHammerRowsTRRSeesFirstComeOrder(t *testing.T) {
	t.Parallel()
	// The batched HammerRows must present rows to the TRR tracker in
	// first-occurrence order: with a 4-entry tracker, the first four rows
	// of the burst are the tracked ones. We observe this behaviourally:
	// a victim adjacent to the FIFTH row of the burst is not protected.
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	const victim = 6000
	initNeighborhood(t, ch, 0, 0, victim, 0x55)

	// Burst: four decoys first (fill the tracker), then the aggressors.
	rows := []int{100, 200, 300, 400, victim - 1, victim + 1}
	counts := []int{10, 10, 10, 9, 14, 14} // 77 of the 78-ACT budget
	windows := int(c.Timing().TREFW / c.Timing().TREFI)
	for w := 0; w < windows; w++ {
		if err := ch.HammerRows(0, 0, rows, counts, 0); err != nil {
			t.Fatal(err)
		}
		if err := ch.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, victim, got); err != nil {
		t.Fatal(err)
	}
	if countDiff(got, fill(0x55)) == 0 {
		t.Skip("row too strong at this budget; ordering unobservable here")
	}
	// Counter-test: aggressors first -> tracked -> protected.
	c2 := newTestChip(t, 0)
	ch2 := channelOf(t, c2, 0)
	initNeighborhood(t, ch2, 0, 0, victim, 0x55)
	rows2 := []int{victim - 1, victim + 1, 100, 200, 300, 400}
	counts2 := []int{14, 14, 10, 10, 10, 9}
	for w := 0; w < windows; w++ {
		if err := ch2.HammerRows(0, 0, rows2, counts2, 0); err != nil {
			t.Fatal(err)
		}
		if err := ch2.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch2.ReadRow(0, 0, victim, got); err != nil {
		t.Fatal(err)
	}
	if n := countDiff(got, fill(0x55)); n != 0 {
		t.Errorf("aggressors-first burst flipped %d bits; tracker should have protected the victim", n)
	}
}

func TestDefaultMapperDiffersAcrossChips(t *testing.T) {
	c0, err := NewBuiltin(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewBuiltin(1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 256; r++ {
		if c0.Mapper().ToPhysical(r) != c1.Mapper().ToPhysical(r) {
			same = false
			break
		}
	}
	if same {
		t.Error("different chips share a row mapping; real specimens differ")
	}
	if err := rowmap.Verify(c1.Mapper()); err != nil {
		t.Error(err)
	}
}
