package hbm

import (
	"fmt"
	"slices"
	"sync"

	"hbmrd/internal/disturb"
	"hbmrd/internal/ecc"
)

// Channel is one independently operating HBM2 channel: two pseudo channels
// of sixteen banks each, a command clock, and a refresh engine. Channels of
// the same chip can be driven concurrently (the paper's platform tests
// channels in parallel); all methods of one Channel are serialized by an
// internal mutex.
type Channel struct {
	mu sync.Mutex

	chip  *Chip
	geom  Geometry
	fp    *disturb.Floorplan
	index int

	now        TimePS
	refCounter int // internal refresh row counter, shared by all banks

	banks [][]*bank

	// autoTiming makes every command wait for its earliest legal issue
	// time instead of failing. The platform's interpreter turns this off
	// to validate hand-written programs.
	autoTiming bool

	// Per-channel scratch reused across calls so the row-op and hammer hot
	// paths stay allocation-free. All guarded by mu.
	scratch  []byte // flip-mask scratch buffer
	fillBuf  []byte // FillRow data buffer
	fillByte byte   // current fillBuf content (valid when fillOK)
	fillOK   bool
	physBuf  []int // hammer: translated physical rows
	exclBuf  []int // hammer: self-excluded victims
}

// SetAutoTiming selects between auto-delayed commands (true, default) and
// strict checking where early commands return *TimingError (false).
func (ch *Channel) SetAutoTiming(auto bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.autoTiming = auto
}

// Index returns the channel number (0 .. Geometry().Channels-1).
func (ch *Channel) Index() int { return ch.index }

// Geometry returns the organization of the chip the channel belongs to.
func (ch *Channel) Geometry() Geometry { return ch.geom }

// Now returns the channel's current simulated time.
func (ch *Channel) Now() TimePS {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.now
}

// Wait advances the channel clock by d picoseconds (issuing nothing).
func (ch *Channel) Wait(d TimePS) {
	if d <= 0 {
		return
	}
	ch.mu.Lock()
	ch.now += d
	ch.mu.Unlock()
}

func (ch *Channel) bank(pc, b int) (*bank, error) {
	if pc < 0 || pc >= ch.geom.PseudoChannels {
		return nil, fmt.Errorf("hbm: pseudo channel %d out of range", pc)
	}
	if b < 0 || b >= ch.geom.BanksPerPC() {
		return nil, fmt.Errorf("hbm: bank %d out of range", b)
	}
	return ch.banks[pc][b], nil
}

func (ch *Channel) rowLoc(pc, bankIdx, phys int) disturb.RowLoc {
	return disturb.RowLoc{Channel: ch.index, Pseudo: pc, Bank: bankIdx, Row: phys}
}

// Activate opens a logical row: earliest-legal timing, logical-to-physical
// translation, materialization of pending disturbance into the row, charge
// restore, and TRR tracker update.
func (ch *Channel) Activate(pc, bankIdx, logicalRow int) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.activateLocked(pc, bankIdx, logicalRow)
}

func (ch *Channel) activateLocked(pc, bankIdx, logicalRow int) error {
	if logicalRow < 0 || logicalRow >= ch.geom.Rows {
		return fmt.Errorf("hbm: row %d out of range", logicalRow)
	}
	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if b.open {
		return fmt.Errorf("%w: %s", ErrBankOpen, Addr{ch.index, pc, bankIdx, b.openLogical})
	}
	if err := ch.gateLocked(cmdACT, &b.ts, false); err != nil {
		return err
	}

	phys := ch.chip.mapper.ToPhysical(logicalRow)
	rs := b.row(phys, ch.now)
	ch.restoreLocked(pc, bankIdx, b, phys, rs)

	b.open = true
	b.openLogical = logicalRow
	b.openPhys = phys
	b.ts[tsActAt] = ch.now
	b.ts[tsLastAct] = ch.now
	b.ts[tsWrRW] = tsFloor // no write recovery pending in the new interval
	b.trr.OnActivate(phys)

	ch.now += ch.chip.timing.TCK
	return nil
}

// Precharge closes the bank's open row (a PRE to an idle bank is a legal
// no-op). Closing applies the row's disturbance dose to its physical
// neighbours, scaled by how long the row stayed open (RowPress).
func (ch *Channel) Precharge(pc, bankIdx int) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.prechargeLocked(pc, bankIdx, false)
}

// prechargeLocked closes the bank. With forceAuto the PRE is the closing
// command of a row-level composite and runs at its earliest legal time
// even in strict mode (see gateLocked).
func (ch *Channel) prechargeLocked(pc, bankIdx int, forceAuto bool) error {
	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	t := ch.chip.timing
	if !b.open {
		b.ts[tsLastPre] = ch.now
		ch.now += t.TCK
		return nil
	}
	if err := ch.gateLocked(cmdPRE, &b.ts, forceAuto); err != nil {
		return err
	}

	onTime := ch.now - b.ts[tsActAt]
	ch.applyDoseLocked(pc, bankIdx, b, b.openPhys, 1, onTime, nil)

	b.open = false
	b.ts[tsLastPre] = ch.now
	ch.now += t.TCK
	return nil
}

// applyDoseLocked distributes count activations' worth of disturbance from
// aggressor physRow to its physical neighbours. Rows listed in exclude
// receive no dose (used by the batched hammer path for rows that are
// themselves re-activated every iteration, which continually resets their
// accumulation; at most a handful of rows, so a slice scan beats a map).
func (ch *Channel) applyDoseLocked(pc, bankIdx int, b *bank, physRow, count int, onTime TimePS, exclude []int) {
	amp := disturb.AggOnAmp(float64(onTime) / float64(NS))
	base := float64(count) * amp
	for _, d := range [...]struct {
		dist   int
		weight float64
	}{{1, coupleDist1}, {2, coupleDist2}} {
		for _, sign := range [...]int{+1, -1} {
			victim := physRow + sign*d.dist
			if victim < 0 || victim >= ch.geom.Rows || slices.Contains(exclude, victim) {
				continue
			}
			if !ch.fp.SameSubarray(physRow, victim) {
				continue
			}
			vrs := b.row(victim, ch.now)
			dose := base * d.weight * vrs.jitter
			if sign > 0 {
				// Aggressor is above... no: victim = physRow + dist means
				// the aggressor sits below the victim.
				vrs.doseBelow += dose
			} else {
				vrs.doseAbove += dose
			}
		}
	}
}

// restoreLocked materializes pending disturbance (wordline dose, column
// doses, retention) and flips into the row's stored data, then restores
// full charge (dose and retention clock reset, epoch advance).
func (ch *Channel) restoreLocked(pc, bankIdx int, b *bank, phys int, rs *rowState) {
	rowPending := rs.doseAbove > 0 || rs.doseBelow > 0 || ch.now-rs.lastRestore > 30*MS
	if rs.data != nil && (rowPending || len(rs.colDoses) > 0) {
		if ch.scratch == nil {
			ch.scratch = make([]byte, ch.geom.RowBytes)
		}
		mask := ch.scratch
		for i := range mask {
			mask[i] = 0
		}
		flips := 0
		if rowPending {
			var above, below []byte
			if n := b.peek(phys + 1); n != nil {
				above = n.data
			}
			if n := b.peek(phys - 1); n != nil {
				below = n.data
			}
			retSec := float64(ch.now-rs.lastRestore) / float64(SEC)
			n, err := ch.chip.model.FlipMask(
				ch.rowLoc(pc, bankIdx, phys),
				rs.data, above, below,
				disturb.Dose{Above: rs.doseAbove, Below: rs.doseBelow},
				retSec, mask,
			)
			if err == nil {
				flips += n
			}
		}
		for _, cd := range rs.colDoses {
			n, err := ch.chip.model.ColFlipMask(
				ch.rowLoc(pc, bankIdx, phys),
				rs.data, cd.agg, cd.dist, cd.reads, mask,
			)
			if err == nil {
				flips += n
			}
		}
		if flips > 0 {
			for i := range rs.data {
				rs.data[i] ^= mask[i]
			}
		}
	}
	rs.doseAbove = 0
	rs.doseBelow = 0
	rs.colDoses = nil
	rs.lastRestore = ch.now
	rs.epoch++
	rs.jitter = ch.chip.model.TrialJitter(ch.rowLoc(pc, bankIdx, phys), rs.epoch)
}

// applyColDisturbLocked queues one column-read burst's bitline
// disturbance against every materialized row of the bank that shares the
// aggressor's subarray within the blast radius. The aggressor's image is
// snapshotted once (flip eligibility depends on the data pattern on the
// shared bitlines at burst time, not whatever is stored when the victim
// eventually restores). Map iteration order does not matter: each
// victim's dose list is independent and ColFlipMask's outcome is a pure
// per-cell function, so the materialized flips are order-invariant.
func (ch *Channel) applyColDisturbLocked(b *bank, aggPhys int, aggRS *rowState, reads int) {
	var snap []byte
	snapped := false
	for phys, vrs := range b.rows {
		if phys == aggPhys || vrs.data == nil {
			continue
		}
		if d := phys - aggPhys; d >= -maxColDisturbDist && d <= maxColDisturbDist &&
			ch.fp.SameSubarray(aggPhys, phys) {
			if !snapped {
				if aggRS.data != nil {
					snap = append([]byte(nil), aggRS.data...)
				}
				snapped = true
			}
			vrs.colDoses = append(vrs.colDoses, colDose{dist: d, reads: reads, agg: snap})
		}
	}
}

// Read issues a RD for one column (ColBytes bytes) of the open row into buf.
// With ECC enabled, single-bit errors per 64-bit word are corrected on the
// fly when the row carries check bits.
func (ch *Channel) Read(pc, bankIdx, col int, buf []byte) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.readLocked(pc, bankIdx, col, buf)
}

func (ch *Channel) readLocked(pc, bankIdx, col int, buf []byte) error {
	if col < 0 || col >= ch.geom.Cols() {
		return fmt.Errorf("hbm: column %d out of range", col)
	}
	if len(buf) < ch.geom.ColBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.ColBytes)
	}
	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if !b.open {
		return ErrBankClosed
	}
	if err := ch.gateLocked(cmdRD, &b.ts, false); err != nil {
		return err
	}

	rs := b.peek(b.openPhys)
	cb := ch.geom.ColBytes
	off := col * cb
	if rs == nil || rs.data == nil {
		for i := 0; i < cb; i++ {
			buf[i] = 0
		}
	} else {
		copy(buf[:cb], rs.data[off:off+cb])
		if ch.chip.modeRegs.ECCEnabled && rs.parity != nil {
			correctColumn(buf[:cb], rs.parity, off, cb)
		}
	}
	b.ts[tsLastRW] = ch.now
	if b.ts[tsWrRW] != tsFloor {
		// Write recovery tracks the last RW of any kind once the open
		// interval has seen a WR.
		b.ts[tsWrRW] = ch.now
	}
	ch.now += ch.chip.timing.TCK
	return nil
}

// Write issues a WR for one column of the open row.
func (ch *Channel) Write(pc, bankIdx, col int, data []byte) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.writeLocked(pc, bankIdx, col, data)
}

func (ch *Channel) writeLocked(pc, bankIdx, col int, data []byte) error {
	if col < 0 || col >= ch.geom.Cols() {
		return fmt.Errorf("hbm: column %d out of range", col)
	}
	if len(data) < ch.geom.ColBytes {
		return fmt.Errorf("%w: need %d bytes", ErrShortBuffer, ch.geom.ColBytes)
	}
	b, err := ch.bank(pc, bankIdx)
	if err != nil {
		return err
	}
	if !b.open {
		return ErrBankClosed
	}
	if err := ch.gateLocked(cmdWR, &b.ts, false); err != nil {
		return err
	}

	rs := b.row(b.openPhys, ch.now)
	if rs.data == nil {
		rs.data = make([]byte, ch.geom.RowBytes)
	}
	cb := ch.geom.ColBytes
	off := col * cb
	copy(rs.data[off:off+cb], data[:cb])
	if ch.chip.modeRegs.ECCEnabled {
		if rs.parity == nil {
			rs.parity = make([]byte, ch.geom.RowBytes/ecc.WordBytes)
		}
		updateParityColumn(rs.data, rs.parity, off, cb)
	}
	b.ts[tsLastRW] = ch.now
	b.ts[tsWrRW] = ch.now
	ch.now += ch.chip.timing.TCK
	return nil
}

// Refresh issues an all-bank REF: every bank must be precharged; the
// internal refresh counter restores the next rows of every bank, and each
// bank's TRR engine may piggyback victim refreshes (every 17th REF).
func (ch *Channel) Refresh() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.refreshLocked()
}

func (ch *Channel) refreshLocked() error {
	banksPerPC := ch.geom.BanksPerPC()
	for pc := 0; pc < ch.geom.PseudoChannels; pc++ {
		for bi := 0; bi < banksPerPC; bi++ {
			if ch.banks[pc][bi].open {
				return fmt.Errorf("%w: %s open", ErrBanksNotIdle, Addr{ch.index, pc, bi, ch.banks[pc][bi].openLogical})
			}
		}
	}
	// All banks carry the same mirrored REF-cycle end, so any one of them
	// can answer for the channel-level tRFC gate.
	if err := ch.gateLocked(cmdREF, &ch.banks[0][0].ts, false); err != nil {
		return err
	}

	t := ch.chip.timing
	refEnd := ch.now + t.TRFC
	rowsPerRef := t.RowsPerREF(ch.geom.Rows)
	for pc := 0; pc < ch.geom.PseudoChannels; pc++ {
		for bi := 0; bi < banksPerPC; bi++ {
			b := ch.banks[pc][bi]
			for k := 0; k < rowsPerRef; k++ {
				phys := (ch.refCounter + k) % ch.geom.Rows
				if rs := b.peek(phys); rs != nil {
					ch.restoreLocked(pc, bi, b, phys, rs)
				}
			}
			for _, victim := range b.trr.OnRefresh() {
				if victim < 0 || victim >= ch.geom.Rows {
					continue
				}
				if rs := b.peek(victim); rs != nil {
					ch.restoreLocked(pc, bi, b, victim, rs)
				}
			}
			b.ts[tsRefEnd] = refEnd
		}
	}
	ch.refCounter = (ch.refCounter + rowsPerRef) % ch.geom.Rows

	ch.now = refEnd
	return nil
}
