package hbm

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"hbmrd/internal/rowmap"
	"hbmrd/internal/trr"
)

func newTestChip(t *testing.T, index int, opts ...Option) *Chip {
	t.Helper()
	opts = append([]Option{WithMapper(rowmap.Identity{NumRows: NumRows})}, opts...)
	c, err := NewBuiltin(index, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func channelOf(t *testing.T, c *Chip, i int) *Channel {
	t.Helper()
	ch, err := c.Channel(i)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func fill(b byte) []byte {
	buf := make([]byte, RowBytes)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func countDiff(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			x &= x - 1
			n++
		}
	}
	return n
}

// initNeighborhood writes the Table 1 style pattern around a victim row:
// victim and V+-2 get victimByte, V+-1 get the complement.
func initNeighborhood(t *testing.T, ch *Channel, pc, bank, victim int, victimByte byte) {
	t.Helper()
	for _, r := range []int{victim - 2, victim - 1, victim, victim + 1, victim + 2} {
		b := victimByte
		if r == victim-1 || r == victim+1 {
			b = ^victimByte
		}
		if err := ch.FillRow(pc, bank, r, b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddrValidate(t *testing.T) {
	if err := (Addr{0, 0, 0, 0}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Addr{{-1, 0, 0, 0}, {8, 0, 0, 0}, {0, 2, 0, 0}, {0, 0, 16, 0}, {0, 0, 0, NumRows}}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%v validated", a)
		}
	}
	if (Addr{1, 0, 2, 3}).String() != "ch1.pc0.ba2.row3" {
		t.Error("Addr.String format changed")
	}
}

func TestTimingDefaults(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tm.ActBudgetPerREFI(); got != 78 {
		t.Errorf("ACT budget per tREFI = %d, paper computes 78", got)
	}
	if got := tm.RowsPerREF(NumRows); got != 2 {
		t.Errorf("rows per REF = %d, want 2 (16384 rows / 8205 REFs per window)", got)
	}
	if tm.MaxOpen != 9*tm.TREFI {
		t.Errorf("MaxOpen = %d, want 9*tREFI", tm.MaxOpen)
	}
}

func TestTimingValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Timing)
	}{
		{"zero TCK", func(tm *Timing) { tm.TCK = 0 }},
		{"TRC below TRAS+TRP", func(tm *Timing) { tm.TRC = tm.TRAS }},
		{"TREFI not above TRFC", func(tm *Timing) { tm.TREFI = tm.TRFC }},
		{"TREFW not above TREFI", func(tm *Timing) { tm.TREFW = tm.TREFI }},
		{"zero MaxOpen", func(tm *Timing) { tm.MaxOpen = 0 }},
		{"negative MaxOpen", func(tm *Timing) { tm.MaxOpen = -1 }},
		{"TRTP at TRAS", func(tm *Timing) { tm.TRTP = tm.TRAS }},
		{"TRTP above TRAS", func(tm *Timing) { tm.TRTP = tm.TRAS + 1 }},
		{"TWR at TRAS", func(tm *Timing) { tm.TWR = tm.TRAS }},
		{"TWR above TRAS", func(tm *Timing) { tm.TWR = tm.TRAS + 1 }},
		{"MaxOpen below TRAS", func(tm *Timing) { tm.MaxOpen = tm.TRAS - 1 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tm := DefaultTiming()
			tc.mutate(&tm)
			if err := tm.Validate(); err == nil {
				t.Errorf("%s passed validation", tc.name)
			}
		})
	}
	// Every registered preset's timing table must itself validate.
	for _, p := range Presets() {
		if err := p.Timing.Validate(); err != nil {
			t.Errorf("preset %s timing invalid: %v", p.Name, err)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	want := make([]byte, RowBytes)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := ch.WriteRow(0, 3, 1000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 3, 1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data differs from written data")
	}
}

func TestUnwrittenRowsReadZero(t *testing.T) {
	c := newTestChip(t, 1)
	ch := channelOf(t, c, 2)
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(1, 5, 42, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d of unwritten row = %#x", i, b)
		}
	}
}

func TestCommandStateMachineErrors(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	buf := make([]byte, ColBytes)
	if err := ch.Read(0, 0, 0, buf); !errors.Is(err, ErrBankClosed) {
		t.Errorf("RD on closed bank: %v", err)
	}
	if err := ch.Write(0, 0, 0, buf); !errors.Is(err, ErrBankClosed) {
		t.Errorf("WR on closed bank: %v", err)
	}
	if err := ch.Activate(0, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := ch.Activate(0, 0, 11); !errors.Is(err, ErrBankOpen) {
		t.Errorf("double ACT: %v", err)
	}
	if err := ch.Refresh(); !errors.Is(err, ErrBanksNotIdle) {
		t.Errorf("REF with open bank: %v", err)
	}
	if err := ch.Precharge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ch.Refresh(); err != nil {
		t.Errorf("REF with all banks idle: %v", err)
	}
}

func TestStrictTimingViolations(t *testing.T) {
	c := newTestChip(t, 0, WithStrictTiming())
	ch := channelOf(t, c, 0)
	if err := ch.Activate(0, 0, 100); err != nil {
		t.Fatal(err)
	}
	// PRE immediately after ACT violates tRAS.
	err := ch.Precharge(0, 0)
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("early PRE returned %v, want *TimingError", err)
	}
	if te.Rule != "tRAS" {
		t.Errorf("violated rule = %q, want tRAS", te.Rule)
	}
	// After waiting out tRAS the PRE is legal.
	ch.Wait(c.Timing().TRAS)
	if err := ch.Precharge(0, 0); err != nil {
		t.Errorf("PRE after tRAS: %v", err)
	}
	// Immediate re-ACT violates tRP (and tRC).
	if err := ch.Activate(0, 0, 100); err == nil {
		t.Error("ACT immediately after PRE should violate timing")
	}
	ch.Wait(c.Timing().TRC)
	if err := ch.Activate(0, 0, 100); err != nil {
		t.Errorf("ACT after tRC: %v", err)
	}
}

func TestAutoTimingNeverViolates(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 1)
	if err := ch.Activate(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := ch.Precharge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ch.Activate(0, 0, 6); err != nil {
		t.Fatal(err)
	}
	if err := ch.Precharge(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSidedHammerInducesBitflips(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	const victim = 2000
	initNeighborhood(t, ch, 0, 0, victim, 0x55)
	if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, 300_000, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, victim, got); err != nil {
		t.Fatal(err)
	}
	flips := countDiff(got, fill(0x55))
	if flips == 0 {
		t.Error("300K double-sided hammers induced no bitflips")
	}
	t.Logf("victim flips at 300K hammers: %d (BER %.3f%%)", flips, float64(flips)/float64(RowBytes*8)*100)
}

func TestHammerRestoreSemantics(t *testing.T) {
	// Splitting the hammer count across a victim restore (read) must not
	// accumulate: two half-doses with a read between produce no flips when
	// one full dose does.
	c := newTestChip(t, 2)
	ch := channelOf(t, c, 0)
	const victim = 3000
	initNeighborhood(t, ch, 0, 1, victim, 0xAA)
	full := 400_000
	if err := ch.HammerDoubleSided(0, 1, victim-1, victim+1, full, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 1, victim, got); err != nil {
		t.Fatal(err)
	}
	fullFlips := countDiff(got, fill(0xAA))
	if fullFlips == 0 {
		t.Skip("row too strong at this hammer count; semantics untestable here")
	}

	const victim2 = 3100
	initNeighborhood(t, ch, 0, 1, victim2, 0xAA)
	buf := make([]byte, RowBytes)
	if err := ch.HammerDoubleSided(0, 1, victim2-1, victim2+1, full/4, 0); err != nil {
		t.Fatal(err)
	}
	if err := ch.ReadRow(0, 1, victim2, buf); err != nil { // restores victim2
		t.Fatal(err)
	}
	if err := ch.WriteRow(0, 1, victim2, fill(0xAA)); err != nil { // re-init
		t.Fatal(err)
	}
	if err := ch.HammerDoubleSided(0, 1, victim2-1, victim2+1, full/4, 0); err != nil {
		t.Fatal(err)
	}
	if err := ch.ReadRow(0, 1, victim2, buf); err != nil {
		t.Fatal(err)
	}
	splitFlips := countDiff(buf, fill(0xAA))
	if splitFlips >= fullFlips && splitFlips > 0 {
		t.Errorf("split hammering (%d flips) should disturb less than uninterrupted hammering (%d flips)", splitFlips, fullFlips)
	}
}

func TestBatchedHammerMatchesExplicitLoop(t *testing.T) {
	t.Parallel()
	// The O(1) hammer path must produce the exact same victim bitflips as
	// the command-by-command loop.
	const (
		victim = 5200
		count  = 3000
	)
	tOn := 9 * DefaultTiming().TREFI // large tAggON so 3000 hammers flip

	run := func(batch bool) []byte {
		c := newTestChip(t, 3)
		ch := channelOf(t, c, 4)
		initNeighborhood(t, ch, 1, 2, victim, 0x55)
		if batch {
			if err := ch.HammerDoubleSided(1, 2, victim-1, victim+1, count, tOn); err != nil {
				t.Fatal(err)
			}
		} else {
			tck := c.Timing().TCK
			for i := 0; i < count; i++ {
				for _, agg := range []int{victim - 1, victim + 1} {
					if err := ch.Activate(1, 2, agg); err != nil {
						t.Fatal(err)
					}
					ch.Wait(tOn - tck)
					if err := ch.Precharge(1, 2); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		got := make([]byte, RowBytes)
		if err := ch.ReadRow(1, 2, victim, got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	batched := run(true)
	explicit := run(false)
	if !bytes.Equal(batched, explicit) {
		t.Errorf("batched hammer diverges from explicit loop: %d differing bits", countDiff(batched, explicit))
	}
	if countDiff(batched, fill(0x55)) == 0 {
		t.Error("equivalence test vacuous: no bitflips at all")
	}
}

func TestRowPressSingleActivation16ms(t *testing.T) {
	// Paper: every chip exhibits bitflips from a single activation kept
	// open for 16 ms.
	c := newTestChip(t, 5)
	ch := channelOf(t, c, 0)
	const victim = 4000
	initNeighborhood(t, ch, 0, 0, victim, 0x55)
	if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, 1, 16*MS); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, victim, got); err != nil {
		t.Fatal(err)
	}
	if countDiff(got, fill(0x55)) == 0 {
		t.Error("single 16 ms activation induced no bitflips")
	}
}

func TestSubarrayBoundaryBlocksCoupling(t *testing.T) {
	// Single-sided hammering of the row at a subarray edge must flip bits
	// only in the same-subarray neighbour - the paper's boundary-discovery
	// methodology depends on this.
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 3)
	const edge = 831 // last row of the first 832-row subarray
	for _, r := range []int{edge - 1, edge, edge + 1} {
		if err := ch.FillRow(0, 0, r, 0x55); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.HammerSingleSided(0, 0, edge, 1500, 9*DefaultTiming().TREFI); err != nil {
		t.Fatal(err)
	}
	inside := make([]byte, RowBytes)
	outside := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, edge-1, inside); err != nil {
		t.Fatal(err)
	}
	if err := ch.ReadRow(0, 0, edge+1, outside); err != nil {
		t.Fatal(err)
	}
	if countDiff(outside, fill(0x55)) != 0 {
		t.Error("bitflips crossed the subarray boundary")
	}
	if countDiff(inside, fill(0x55)) == 0 {
		t.Error("no bitflips on the same-subarray side (hammer too weak for the test)")
	}
}

func TestRetentionFailuresAfterLongWait(t *testing.T) {
	t.Parallel()
	c := newTestChip(t, 0) // 82C chip
	ch := channelOf(t, c, 0)
	if err := ch.FillRow(0, 0, 123, 0xAA); err != nil {
		t.Fatal(err)
	}
	ch.Wait(600 * SEC)
	got := make([]byte, RowBytes)
	if err := ch.ReadRow(0, 0, 123, got); err != nil {
		t.Fatal(err)
	}
	if countDiff(got, fill(0xAA)) == 0 {
		// One row can be strong; scan a few more before declaring failure.
		total := 0
		for r := 200; r < 800; r++ {
			if err := ch.FillRow(0, 0, r, 0xAA); err != nil {
				t.Fatal(err)
			}
		}
		ch.Wait(600 * SEC)
		for r := 200; r < 800; r++ {
			if err := ch.ReadRow(0, 0, r, got); err != nil {
				t.Fatal(err)
			}
			total += countDiff(got, fill(0xAA))
		}
		if total == 0 {
			t.Error("no retention failures after 600 s unrefreshed at 82C")
		}
	}
}

func TestECCModeCorrectsSingleBitWords(t *testing.T) {
	t.Parallel()
	hammerAndRead := func(eccOn bool) int {
		c := newTestChip(t, 4)
		c.SetECC(eccOn)
		ch := channelOf(t, c, 0)
		const victim = 7000
		initNeighborhood(t, ch, 0, 0, victim, 0x55)
		if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, 220_000, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, RowBytes)
		if err := ch.ReadRow(0, 0, victim, got); err != nil {
			t.Fatal(err)
		}
		return countDiff(got, fill(0x55))
	}
	raw := hammerAndRead(false)
	corrected := hammerAndRead(true)
	if raw == 0 {
		t.Skip("no flips at this hammer count")
	}
	if corrected >= raw {
		t.Errorf("ECC on: %d observed flips, ECC off: %d; correction had no effect", corrected, raw)
	}
	t.Logf("flips observed: ECC off %d, ECC on %d", raw, corrected)
}

func TestTRRProtectsPlainDoubleSidedHammering(t *testing.T) {
	t.Parallel()
	// With periodic refresh running and no dummy rows, the undocumented
	// TRR identifies the aggressors and protects the victim; with the TRR
	// engine disabled the same pattern flips bits.
	run := func(trrEnabled bool) int {
		opts := []Option{}
		if !trrEnabled {
			opts = append(opts, WithTRRConfig(trr.Config{Enabled: false}))
		}
		c := newTestChip(t, 0, opts...)
		ch := channelOf(t, c, 0)
		const victim = 6000
		initNeighborhood(t, ch, 0, 0, victim, 0x55)

		budget := c.Timing().ActBudgetPerREFI()
		agg := budget / 2 // 39 ACTs per aggressor per tREFI
		windows := 2 * int(c.Timing().TREFW/c.Timing().TREFI)
		if testing.Short() {
			// One refresh window still accumulates ~200K activations after
			// the victim's periodic-refresh slot: enough to flip unprotected
			// rows while TRR-protected rows stay clean.
			windows /= 2
		}
		for w := 0; w < windows; w++ {
			if err := ch.HammerRows(0, 0, []int{victim - 1, victim + 1}, []int{agg, agg - 1}, 0); err != nil {
				t.Fatal(err)
			}
			if err := ch.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]byte, RowBytes)
		if err := ch.ReadRow(0, 0, victim, got); err != nil {
			t.Fatal(err)
		}
		return countDiff(got, fill(0x55))
	}
	protected := run(true)
	unprotected := run(false)
	if unprotected == 0 {
		t.Skip("row too strong for in-window hammering; cannot observe protection")
	}
	if protected != 0 {
		t.Errorf("TRR enabled: %d flips (want 0); TRR disabled: %d", protected, unprotected)
	}
}

func TestChannelsOperateConcurrently(t *testing.T) {
	c := newTestChip(t, 0)
	var wg sync.WaitGroup
	errs := make([]error, NumChannels)
	for i := 0; i < NumChannels; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := channelOf(t, c, i)
			victim := 1000 + 100*i
			for _, r := range []int{victim - 1, victim, victim + 1} {
				b := byte(0x55)
				if r != victim {
					b = 0xAA
				}
				if err := ch.FillRow(0, 0, r, b); err != nil {
					errs[i] = err
					return
				}
			}
			if err := ch.HammerDoubleSided(0, 0, victim-1, victim+1, 256*1024, 0); err != nil {
				errs[i] = err
				return
			}
			buf := make([]byte, RowBytes)
			errs[i] = ch.ReadRow(0, 0, victim, buf)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("channel %d: %v", i, err)
		}
	}
}

func TestChipConstructionErrors(t *testing.T) {
	if _, err := NewBuiltin(9); err == nil {
		t.Error("chip index 9 accepted")
	}
	badTiming := DefaultTiming()
	badTiming.TCK = 0
	if _, err := NewBuiltin(0, WithTiming(badTiming)); err == nil {
		t.Error("invalid timing accepted")
	}
	if _, err := NewBuiltin(0, WithMapper(rowmap.Identity{NumRows: 8})); err == nil {
		t.Error("undersized mapper accepted")
	}
	if _, err := NewBuiltin(0, WithTRRConfig(trr.Config{Enabled: true})); err == nil {
		t.Error("invalid TRR config accepted")
	}
	c := newTestChip(t, 0)
	if _, err := c.Channel(-1); err == nil {
		t.Error("channel -1 accepted")
	}
}

func TestTemperatureSensor(t *testing.T) {
	c := newTestChip(t, 0)
	want := c.Model().TempC()
	for _, at := range []TimePS{0, 5 * SEC, 3600 * SEC} {
		got := c.ReadTemperatureSensor(at)
		if got < want-0.5 || got > want+0.5 {
			t.Errorf("sensor at %d = %v, true temp %v", at, got, want)
		}
	}
	// Deterministic for a given time.
	if c.ReadTemperatureSensor(5*SEC) != c.ReadTemperatureSensor(5*SEC) {
		t.Error("sensor readout not deterministic")
	}
}

func TestLogicalPhysicalMappingAffectsAdjacency(t *testing.T) {
	// With the default (swizzled) mapping, hammering logical neighbours of
	// a victim in a scrambled block is NOT the same as hammering physical
	// neighbours; this is why the paper reverse-engineers the mapping.
	c, err := NewBuiltin(0) // default swizzle mapper
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mapper()
	swizzled := 0
	for r := 0; r < 64; r++ {
		if m.ToPhysical(r) != r {
			swizzled++
		}
	}
	if swizzled == 0 {
		t.Error("default mapper is the identity; reverse engineering would be moot")
	}
	if err := rowmap.Verify(m); err != nil {
		t.Errorf("default mapper is not a bijection: %v", err)
	}
}

func TestHammerInputValidation(t *testing.T) {
	c := newTestChip(t, 0)
	ch := channelOf(t, c, 0)
	if err := ch.HammerDoubleSided(0, 0, -1, 1, 10, 0); err == nil {
		t.Error("negative row accepted")
	}
	if err := ch.HammerRows(0, 0, []int{1, 2}, []int{3}, 0); err == nil {
		t.Error("mismatched rows/counts accepted")
	}
	if err := ch.HammerRows(0, 0, []int{1}, []int{-3}, 0); err == nil {
		t.Error("negative count accepted")
	}
	if err := ch.Activate(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := ch.HammerSingleSided(0, 0, 5, 10, 0); !errors.Is(err, ErrBankOpen) {
		t.Errorf("hammer with open bank: %v, want ErrBankOpen", err)
	}
}
