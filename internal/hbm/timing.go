package hbm

import "fmt"

// TimePS is a point in (or span of) simulated time, in picoseconds. The
// paper's test platform controls command timing at 1.67 ns granularity
// (600 MHz interface clock); picoseconds represent that exactly enough
// while spanning ~106 simulated days in an int64.
type TimePS = int64

// Time unit helpers.
const (
	PS  TimePS = 1
	NS  TimePS = 1_000
	US  TimePS = 1_000_000
	MS  TimePS = 1_000_000_000
	SEC TimePS = 1_000_000_000_000
)

// Timing holds the JEDEC timing parameters the device enforces. All values
// in picoseconds.
type Timing struct {
	// TCK is the command-clock period (~600 MHz interface).
	TCK TimePS
	// TRCD is the ACT-to-RD/WR delay.
	TRCD TimePS
	// TRAS is the minimum row-open time before PRE (29.0 ns in the paper;
	// the minimum tAggON of the RowPress sweep).
	TRAS TimePS
	// TRP is the PRE-to-ACT delay.
	TRP TimePS
	// TRC is the ACT-to-ACT delay for the same bank.
	TRC TimePS
	// TRFC is the REF cycle time.
	TRFC TimePS
	// TREFI is the average periodic-refresh interval (3.9 us).
	TREFI TimePS
	// TREFW is the refresh window in which every cell is refreshed once
	// (32 ms).
	TREFW TimePS
	// TCCDL is the column-to-column delay (tCCD_L; 32 of these stream
	// through a row in the paper's 128 ns estimate).
	TCCDL TimePS
	// TRTP is the read-to-precharge delay.
	TRTP TimePS
	// TWR is the write-recovery time before PRE.
	TWR TimePS
	// MaxOpen is the longest a row may stay open per the HBM2 standard
	// (9*TREFI = 35.1 us). The device does not enforce it - the paper's
	// RowPress sweep deliberately exceeds it - but exposes it so the
	// platform can flag standard violations.
	MaxOpen TimePS
}

// DefaultTiming returns the timing set used throughout the study. TREFI,
// TRFC and TRC are chosen so the activation-count budget per refresh
// interval comes out at the paper's 78: floor((3.9us - 350ns) / 45.5ns).
func DefaultTiming() Timing {
	return Timing{
		TCK:     1_667,
		TRCD:    14_000,
		TRAS:    29_000,
		TRP:     16_500,
		TRC:     45_500, // TRAS + TRP
		TRFC:    350_000,
		TREFI:   3_900_000,
		TREFW:   32 * MS,
		TCCDL:   4_000,
		TRTP:    7_500,
		TWR:     15_000,
		MaxOpen: 9 * 3_900_000,
	}
}

// Validate reports inconsistent timing parameters.
func (t Timing) Validate() error {
	type check struct {
		name string
		v    TimePS
	}
	for _, c := range []check{
		{"TCK", t.TCK}, {"TRCD", t.TRCD}, {"TRAS", t.TRAS}, {"TRP", t.TRP},
		{"TRC", t.TRC}, {"TRFC", t.TRFC}, {"TREFI", t.TREFI}, {"TREFW", t.TREFW},
		{"TCCDL", t.TCCDL}, {"TRTP", t.TRTP}, {"TWR", t.TWR}, {"MaxOpen", t.MaxOpen},
	} {
		if c.v <= 0 {
			return fmt.Errorf("hbm: timing %s must be positive, got %d", c.name, c.v)
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("hbm: TRC (%d) below TRAS+TRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TREFI <= t.TRFC {
		return fmt.Errorf("hbm: TREFI (%d) must exceed TRFC (%d)", t.TREFI, t.TRFC)
	}
	if t.TREFW <= t.TREFI {
		return fmt.Errorf("hbm: TREFW (%d) must exceed TREFI (%d)", t.TREFW, t.TREFI)
	}
	// The recovery windows must fit inside the minimum row-open time:
	// otherwise a single-column row cycle is gated by read-to-precharge or
	// write recovery rather than tRAS, and the ActBudgetPerREFI arithmetic
	// (tRC-paced activations) silently stops describing the device.
	if t.TRTP >= t.TRAS {
		return fmt.Errorf("hbm: TRTP (%d) must be below TRAS (%d)", t.TRTP, t.TRAS)
	}
	if t.TWR >= t.TRAS {
		return fmt.Errorf("hbm: TWR (%d) must be below TRAS (%d)", t.TWR, t.TRAS)
	}
	if t.MaxOpen < t.TRAS {
		return fmt.Errorf("hbm: MaxOpen (%d) below TRAS (%d)", t.MaxOpen, t.TRAS)
	}
	return nil
}

// ActBudgetPerREFI is the maximum number of ACT commands between two REFs,
// the quantity the paper computes as floor((tREFI - tRFC)/tRC) = 78 when
// crafting the TRR bypass pattern.
func (t Timing) ActBudgetPerREFI() int {
	return int((t.TREFI - t.TRFC) / t.TRC)
}

// RowsPerREF is how many rows of each numRows-row bank one REF command
// refreshes from the internal refresh counter, so that a full bank is
// covered once per refresh window.
func (t Timing) RowsPerREF(numRows int) int {
	refsPerWindow := t.TREFW / t.TREFI
	if refsPerWindow <= 0 {
		return numRows
	}
	n := (numRows + int(refsPerWindow) - 1) / int(refsPerWindow)
	if n < 1 {
		n = 1
	}
	return n
}
