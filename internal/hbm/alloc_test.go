package hbm

import "testing"

// TestRowOpsZeroAlloc pins the allocation-freedom of the per-trial device
// hot path: after warm-up (row states, per-channel scratch, model cell
// cache), pattern init (FillRow), batched hammering (the former per-call
// phys slice and exclude map now live on the channel), and victim
// read-back must not allocate at all.
func TestRowOpsZeroAlloc(t *testing.T) {
	chip, err := NewBuiltin(0, WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chip.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chip.Geometry().RowBytes)
	warm := func() {
		for d := -2; d <= 2; d++ {
			fill := byte(0x55)
			if d == -1 || d == 1 {
				fill = 0xAA
			}
			if err := ch.FillRow(0, 0, 1000+d, fill); err != nil {
				t.Fatal(err)
			}
		}
		if err := ch.HammerDoubleSided(0, 0, 999, 1001, 4096, 0); err != nil {
			t.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
			t.Fatal(err)
		}
	}
	warm()

	if allocs := testing.AllocsPerRun(20, func() {
		if err := ch.FillRow(0, 0, 1000, 0x55); err != nil {
			t.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("FillRow+ReadRow allocates %.1f times per op, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(20, func() {
		if err := ch.HammerDoubleSided(0, 0, 999, 1001, 4096, 0); err != nil {
			t.Fatal(err)
		}
		if err := ch.ReadRow(0, 0, 1000, buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("HammerDoubleSided+ReadRow allocates %.1f times per op, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(20, func() {
		rows := [3]int{800, 1800, 2800}
		counts := [3]int{64, 64, 64}
		if err := ch.HammerRows(0, 0, rows[:], counts[:], 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("HammerRows allocates %.1f times per op, want 0", allocs)
	}
}
