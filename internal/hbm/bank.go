package hbm

import (
	"hbmrd/internal/trr"
)

// Disturbance coupling weights by physical distance from the aggressor.
// Distance-1 neighbours take full dose; distance-2 neighbours a small
// fraction (the "blast radius" beyond immediate neighbours observed for
// real DRAM). Coupling never crosses subarray boundaries, which is what
// makes the paper's single-sided subarray-boundary discovery work.
const (
	coupleDist1 = 1.0
	coupleDist2 = 0.015
)

// maxColDisturbDist bounds the bitline blast radius of a column-read
// burst: victims further than this many rows from the open aggressor
// (still within the same subarray) take no column disturbance. Far
// beyond the distances the sweep runner probes, and it keeps the
// per-burst victim scan bounded.
const maxColDisturbDist = 16

// colDose records one column-read burst's worth of bitline disturbance
// pending against a victim row: the signed row distance from the
// aggressor to the victim, the read count, and a snapshot of the
// aggressor's image at burst time (nil = never written, reads as
// zeros). Like doseAbove/doseBelow, it materializes into flips at the
// victim's next restore.
type colDose struct {
	dist  int
	reads int
	agg   []byte
}

// rowState is the device-side state of one physical row. Rows materialize
// lazily: a bank only holds state for rows that an experiment has touched.
type rowState struct {
	// data is the stored image (RowBytes) or nil if never written; unwritten
	// rows read as zeros and take no disturbance flips.
	data []byte
	// parity holds one SECDED check byte per 8-byte word, present only if
	// the row was written while ECC was enabled.
	parity []byte
	// doseAbove/doseBelow accumulate disturbance from the physical
	// neighbours above (row+1 side) and below, in reference activations,
	// already amplification- and jitter-scaled.
	doseAbove, doseBelow float64
	// colDoses accumulates column-read (bitline) disturbance bursts from
	// aggressor rows in the same subarray (ColumnRead).
	colDoses []colDose
	// epoch counts restores (activate/refresh/write cycles); it seeds the
	// per-trial dose jitter.
	epoch uint64
	// jitter is the cached trial-jitter multiplier for the current epoch.
	jitter float64
	// lastRestore is when the row's cells last had full charge.
	lastRestore TimePS
}

// bank models one DRAM bank: a row-state store, the open-row state machine,
// per-bank timing history, and the in-DRAM TRR engine.
type bank struct {
	ch            *Channel
	pseudo, index int

	open        bool
	openLogical int
	openPhys    int

	// ts holds the timing history the gate table indexes (see gates.go):
	// ACT time of the open interval, previous ACT/PRE, last RD/WR, the
	// write-recovery mark, and the channel's mirrored REF-cycle end.
	ts [numStates]TimePS

	rows map[int]*rowState
	trr  *trr.Engine
}

func newBank(ch *Channel, pseudo, index int, trrCfg trr.Config) (*bank, error) {
	eng, err := trr.NewEngine(trrCfg)
	if err != nil {
		return nil, err
	}
	b := &bank{
		ch:     ch,
		pseudo: pseudo,
		index:  index,
		rows:   make(map[int]*rowState),
		trr:    eng,
	}
	for s := range b.ts {
		b.ts[s] = tsFloor
	}
	return b, nil
}

// row returns the state for a physical row, creating it on first touch. A
// freshly created row is considered refreshed "now" (its content is
// undefined until written, so there is nothing older to corrupt).
func (b *bank) row(phys int, now TimePS) *rowState {
	if rs, ok := b.rows[phys]; ok {
		return rs
	}
	rs := &rowState{
		lastRestore: now,
		jitter:      b.ch.chip.model.TrialJitter(b.ch.rowLoc(b.pseudo, b.index, phys), 0),
	}
	b.rows[phys] = rs
	return rs
}

// peek returns the state for a physical row without creating it.
func (b *bank) peek(phys int) *rowState { return b.rows[phys] }
