package hbm

import (
	"errors"
	"fmt"
)

// Sentinel errors for command-sequence violations (distinct from timing
// violations, which carry detail in TimingError).
var (
	// ErrBankOpen is returned when ACT hits a bank with an open row.
	ErrBankOpen = errors.New("hbm: bank already has an open row")
	// ErrBankClosed is returned when RD/WR hits a precharged bank.
	ErrBankClosed = errors.New("hbm: bank has no open row")
	// ErrBanksNotIdle is returned when REF is issued while rows are open.
	ErrBanksNotIdle = errors.New("hbm: REF requires all banks precharged")
	// ErrShortBuffer is returned when a data buffer is smaller than the
	// command's transfer size.
	ErrShortBuffer = errors.New("hbm: buffer too small")
)

// TimingError reports a command issued before its earliest legal time while
// the channel is in strict-timing mode.
type TimingError struct {
	// Cmd is the violating command mnemonic ("ACT", "PRE", ...).
	Cmd string
	// Rule names the violated parameter ("tRC", "tRP", ...).
	Rule string
	// At is when the command was issued; Earliest is the first legal time.
	At, Earliest TimePS
}

// Error implements error.
func (e *TimingError) Error() string {
	return fmt.Sprintf("hbm: %s at %d ps violates %s (earliest legal %d ps, short by %d ps)",
		e.Cmd, e.At, e.Rule, e.Earliest, e.Earliest-e.At)
}
