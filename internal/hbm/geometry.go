// Package hbm implements a command-level device model of the HBM2 DRAM
// chips the paper characterizes: 8 channels x 2 pseudo channels x 16 banks
// x 16384 rows of 1 KiB (§3). The chip is driven exclusively through the
// JEDEC command interface (ACT/PRE/RD/WR/REF) with picosecond timestamps,
// exactly as the paper's FPGA-based DRAM Bender platform drives real
// silicon. Read-disturbance behaviour comes from the calibrated fault model
// in internal/disturb; the undocumented TRR engine from internal/trr runs
// inside every bank.
package hbm

import "fmt"

// Geometry of the tested HBM2 chips (identical across all six).
const (
	// NumChannels is the number of independent HBM2 channels per stack.
	NumChannels = 8
	// NumPseudoChannels is the number of pseudo channels per channel.
	NumPseudoChannels = 2
	// NumBanks is the number of banks per pseudo channel.
	NumBanks = 16
	// NumRows is the number of rows per bank.
	NumRows = 16384
	// RowBytes is the size of one row.
	RowBytes = 1024
	// RowBits is the number of cells (bits) in one row.
	RowBits = RowBytes * 8
	// ColBytes is the data transferred by one RD/WR command (one column).
	ColBytes = 32
	// NumCols is the number of columns per row.
	NumCols = RowBytes / ColBytes
)

// Addr identifies a row through the command interface. Row is a logical
// (memory-controller-visible) row number; the chip applies its internal
// logical-to-physical mapping.
type Addr struct {
	Channel int
	Pseudo  int
	Bank    int
	Row     int
}

// Validate reports whether the address is within the chip's geometry.
func (a Addr) Validate() error {
	switch {
	case a.Channel < 0 || a.Channel >= NumChannels:
		return fmt.Errorf("hbm: channel %d out of [0,%d)", a.Channel, NumChannels)
	case a.Pseudo < 0 || a.Pseudo >= NumPseudoChannels:
		return fmt.Errorf("hbm: pseudo channel %d out of [0,%d)", a.Pseudo, NumPseudoChannels)
	case a.Bank < 0 || a.Bank >= NumBanks:
		return fmt.Errorf("hbm: bank %d out of [0,%d)", a.Bank, NumBanks)
	case a.Row < 0 || a.Row >= NumRows:
		return fmt.Errorf("hbm: row %d out of [0,%d)", a.Row, NumRows)
	}
	return nil
}

// String implements fmt.Stringer.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d.pc%d.ba%d.row%d", a.Channel, a.Pseudo, a.Bank, a.Row)
}
