// Package hbm implements a command-level device model of the HBM DRAM
// chips the paper characterizes. The default organization is the paper's
// HBM2 part: 8 channels x 2 pseudo channels x 16 banks x 16384 rows of
// 1 KiB (§3); other organizations come from the preset registry (see
// preset.go), which ports Ramulator2's HBM2/HBM2E/HBM3 device tables —
// including the twelve JESD238 HBM3 rank-variant stacks (2Gb–32Gb across
// 1R/2R/3R/4R) and the per-data-rate timing rows that parameterize them.
// Multi-rank organizations flatten rank into the bank address (Addr.Bank
// spans Ranks*Banks; see Geometry.RankOfBank).
//
// The chip is driven exclusively through the JEDEC command interface
// (ACT/PRE/RD/WR/REF) with picosecond timestamps, exactly as the paper's
// FPGA-based DRAM Bender platform drives real silicon. Command timing is
// enforced by a per-chip gate table precomputed from the Timing at
// construction (see gates.go): a gate check reads a handful of bank
// timestamps through a [command][bankState] delta array instead of
// re-deriving JEDEC rules per call. In auto-timing mode (the default)
// early commands are delayed to their earliest legal time; in strict mode
// they fail with *TimingError. Row-level composite operations (WriteRow,
// ReadRow, FillRow, the hammer helpers) gate their first command under
// the channel's timing mode and then run their interior commands at the
// earliest-legal cadence in both modes, like the hardware loop
// instructions of the real platform — so strict mode shares the bulk
// column fast path instead of falling back to per-command issue.
//
// Read-disturbance behaviour comes from the calibrated fault model in
// internal/disturb; the undocumented TRR engine from internal/trr runs
// inside every bank.
package hbm

import "fmt"

// Geometry of the paper's tested HBM2 chips (identical across all six).
// These constants define the default organization; chips built with a
// non-default preset carry their own Geometry instead (see Chip.Geometry).
const (
	// NumChannels is the number of independent HBM2 channels per stack.
	NumChannels = 8
	// NumPseudoChannels is the number of pseudo channels per channel.
	NumPseudoChannels = 2
	// NumBanks is the number of banks per pseudo channel.
	NumBanks = 16
	// NumRows is the number of rows per bank.
	NumRows = 16384
	// RowBytes is the size of one row.
	RowBytes = 1024
	// RowBits is the number of cells (bits) in one row.
	RowBits = RowBytes * 8
	// ColBytes is the data transferred by one RD/WR command (one column).
	ColBytes = 32
	// NumCols is the number of columns per row.
	NumCols = RowBytes / ColBytes
)

// Geometry describes one chip organization: how many channels, pseudo
// channels, ranks, banks and rows a stack has, and how large a row is.
// Every Chip carries a Geometry; the zero value is invalid — use
// DefaultGeometry or a preset from Presets.
type Geometry struct {
	// Name labels the organization (e.g. "HBM2_8Gb").
	Name string
	// Channels is the number of independent channels per stack.
	Channels int
	// PseudoChannels is the number of pseudo channels per channel.
	PseudoChannels int
	// Ranks is the number of ranks per pseudo channel (JESD238 maps
	// 4/8/12/16-high stacks to 1/2/3/4 ranks). Each rank contributes Banks
	// banks to the pseudo channel's flat bank address space: bank index
	// rank*Banks+b addresses bank b of that rank (see RankOfBank). A zero
	// value means single-rank, so pre-rank Geometry literals keep their
	// meaning.
	Ranks int
	// Banks is the number of banks per rank (per pseudo channel).
	Banks int
	// Rows is the number of rows per bank.
	Rows int
	// RowBytes is the size of one row in bytes.
	RowBytes int
	// ColBytes is the data transferred by one RD/WR command (one column).
	ColBytes int
}

// DefaultGeometry returns the paper's HBM2 organization (the HBM2_8Gb
// preset's geometry), matching the package constants exactly.
func DefaultGeometry() Geometry {
	return Geometry{
		Name:           "HBM2_8Gb",
		Channels:       NumChannels,
		PseudoChannels: NumPseudoChannels,
		Ranks:          1,
		Banks:          NumBanks,
		Rows:           NumRows,
		RowBytes:       RowBytes,
		ColBytes:       ColBytes,
	}
}

// RowBits returns the number of cells (bits) in one row.
func (g Geometry) RowBits() int { return g.RowBytes * 8 }

// Cols returns the number of columns per row.
func (g Geometry) Cols() int { return g.RowBytes / g.ColBytes }

// NumRanks returns the rank count, treating the zero value as single-rank.
func (g Geometry) NumRanks() int {
	if g.Ranks <= 0 {
		return 1
	}
	return g.Ranks
}

// BanksPerPC returns the flat bank count of one pseudo channel: every rank
// contributes Banks banks, addressed as rank*Banks+b. This is the bound on
// Addr.Bank and the size of a channel's per-pseudo-channel bank array.
func (g Geometry) BanksPerPC() int { return g.NumRanks() * g.Banks }

// RankOfBank returns the rank a flat bank index addresses.
func (g Geometry) RankOfBank(bank int) int { return bank / g.Banks }

// BankInRank returns a flat bank index's bank number within its rank.
func (g Geometry) BankInRank(bank int) int { return bank % g.Banks }

// BankIndex flattens (rank, bank-in-rank) into the pseudo channel's bank
// address space.
func (g Geometry) BankIndex(rank, bank int) int { return rank*g.Banks + bank }

// BanksPerStack returns the total bank count across the whole stack.
func (g Geometry) BanksPerStack() int { return g.Channels * g.PseudoChannels * g.BanksPerPC() }

// TotalBytes returns the stack's total capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.BanksPerStack()) * int64(g.Rows) * int64(g.RowBytes)
}

// Validate reports an inconsistent geometry.
func (g Geometry) Validate() error {
	type check struct {
		name string
		v    int
	}
	for _, c := range []check{
		{"Channels", g.Channels}, {"PseudoChannels", g.PseudoChannels},
		{"Banks", g.Banks}, {"Rows", g.Rows},
		{"RowBytes", g.RowBytes}, {"ColBytes", g.ColBytes},
	} {
		if c.v <= 0 {
			return fmt.Errorf("hbm: geometry %s must be positive, got %d", c.name, c.v)
		}
	}
	if g.Ranks < 0 {
		return fmt.Errorf("hbm: geometry Ranks must be non-negative (0 means 1), got %d", g.Ranks)
	}
	if g.RowBytes%g.ColBytes != 0 {
		return fmt.Errorf("hbm: RowBytes (%d) not a multiple of ColBytes (%d)", g.RowBytes, g.ColBytes)
	}
	if g.RowBytes%8 != 0 {
		return fmt.Errorf("hbm: RowBytes (%d) must be a multiple of 8 (ECC words)", g.RowBytes)
	}
	if g.Rows%8 != 0 {
		return fmt.Errorf("hbm: Rows (%d) must be a multiple of 8 (row swizzle blocks)", g.Rows)
	}
	return nil
}

// Contains reports whether the address is within this geometry.
func (g Geometry) Contains(a Addr) error {
	switch {
	case a.Channel < 0 || a.Channel >= g.Channels:
		return fmt.Errorf("hbm: channel %d out of [0,%d)", a.Channel, g.Channels)
	case a.Pseudo < 0 || a.Pseudo >= g.PseudoChannels:
		return fmt.Errorf("hbm: pseudo channel %d out of [0,%d)", a.Pseudo, g.PseudoChannels)
	case a.Bank < 0 || a.Bank >= g.BanksPerPC():
		return fmt.Errorf("hbm: bank %d out of [0,%d)", a.Bank, g.BanksPerPC())
	case a.Row < 0 || a.Row >= g.Rows:
		return fmt.Errorf("hbm: row %d out of [0,%d)", a.Row, g.Rows)
	}
	return nil
}

// Addr identifies a row through the command interface. Row is a logical
// (memory-controller-visible) row number; the chip applies its internal
// logical-to-physical mapping. Bank is the flat per-pseudo-channel bank
// index: on multi-rank organizations it spans [0, Ranks*Banks) with rank
// r's banks at r*Banks .. (r+1)*Banks-1 (see Geometry.RankOfBank).
type Addr struct {
	Channel int
	Pseudo  int
	Bank    int
	Row     int
}

// Validate reports whether the address is within the default (paper HBM2)
// geometry. Use Geometry.Contains to validate against another organization.
func (a Addr) Validate() error { return DefaultGeometry().Contains(a) }

// String implements fmt.Stringer.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d.pc%d.ba%d.row%d", a.Channel, a.Pseudo, a.Bank, a.Row)
}
