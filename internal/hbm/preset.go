package hbm

import (
	"fmt"
	"sort"
	"strings"
)

// Preset bundles a chip organization with the timing table that matches it,
// in the style of Ramulator's device presets. The HBM2_8Gb preset is the
// paper's tested part; the HBM2E and HBM3 presets model plausible
// next-generation organizations so experiments can sweep read-disturbance
// behaviour across device generations.
type Preset struct {
	// Name is the registry key (e.g. "HBM2_8Gb").
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Geometry is the preset's organization.
	Geometry Geometry
	// Timing is the preset's default timing table (overridable per chip
	// with WithTiming).
	Timing Timing
}

// PresetHBM2 is the name of the paper's HBM2 part (the default).
const PresetHBM2 = "HBM2_8Gb"

// PresetHBM2E is the name of the HBM2E-like preset: a 16 Gb die with twice
// the rows per bank and a faster interface clock.
const PresetHBM2E = "HBM2E_16Gb"

// PresetHBM3 is the name of the HBM3-like preset: twice the channels (each
// half as wide, so rows as seen by one pseudo channel are smaller) at a
// higher command clock.
const PresetHBM3 = "HBM3_16Gb"

// builtinPresets constructs the preset registry. A fresh value is built on
// every call so callers can mutate their copy freely.
func builtinPresets() []Preset {
	return []Preset{
		{
			Name:        PresetHBM2,
			Description: "the paper's HBM2 part: 8ch x 2pc x 16 banks x 16384 rows of 1 KiB",
			Geometry:    DefaultGeometry(),
			Timing:      DefaultTiming(),
		},
		{
			Name:        PresetHBM2E,
			Description: "HBM2E-like 16 Gb die: 32768 rows per bank, ~800 MHz command clock",
			Geometry: Geometry{
				Name:           PresetHBM2E,
				Channels:       8,
				PseudoChannels: 2,
				Banks:          16,
				Rows:           32768,
				RowBytes:       1024,
				ColBytes:       32,
			},
			Timing: Timing{
				TCK:     1_250,
				TRCD:    14_000,
				TRAS:    28_000,
				TRP:     15_000,
				TRC:     43_000,
				TRFC:    450_000, // 16 Gb die: longer refresh cycle
				TREFI:   3_900_000,
				TREFW:   32 * MS,
				TCCDL:   3_750,
				TRTP:    7_500,
				TWR:     15_000,
				MaxOpen: 9 * 3_900_000,
			},
		},
		{
			Name:        PresetHBM3,
			Description: "HBM3-like stack: 16 narrower channels, 512 B rows, ~1.6 GHz command clock",
			Geometry: Geometry{
				Name:           PresetHBM3,
				Channels:       16,
				PseudoChannels: 2,
				Banks:          16,
				Rows:           16384,
				RowBytes:       512,
				ColBytes:       32,
			},
			Timing: Timing{
				TCK:     625,
				TRCD:    13_000,
				TRAS:    27_000,
				TRP:     14_000,
				TRC:     41_000,
				TRFC:    410_000,
				TREFI:   3_900_000,
				TREFW:   32 * MS,
				TCCDL:   2_500,
				TRTP:    5_000,
				TWR:     14_000,
				MaxOpen: 9 * 3_900_000,
			},
		},
	}
}

// Presets returns the built-in preset registry, sorted by name with the
// default (HBM2_8Gb) first.
func Presets() []Preset {
	ps := builtinPresets()
	sort.Slice(ps, func(i, j int) bool {
		if (ps[i].Name == PresetHBM2) != (ps[j].Name == PresetHBM2) {
			return ps[i].Name == PresetHBM2
		}
		return ps[i].Name < ps[j].Name
	})
	return ps
}

// PresetNames returns the registered preset names in Presets order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// LookupPreset finds a preset by name (case-insensitive).
func LookupPreset(name string) (Preset, error) {
	for _, p := range builtinPresets() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("hbm: unknown geometry preset %q (have: %s)",
		name, strings.Join(PresetNames(), ", "))
}

// DefaultPreset returns the paper's HBM2 preset.
func DefaultPreset() Preset {
	p, err := LookupPreset(PresetHBM2)
	if err != nil {
		panic(err) // unreachable: the default preset is always registered
	}
	return p
}
