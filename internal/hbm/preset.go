package hbm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Preset bundles a chip organization with the timing table that matches
// it, in the style of Ramulator2's device presets. The HBM2_8Gb preset is
// the paper's tested part; the rest of the registry is ported from
// Ramulator2's HBM2/HBM2E/HBM3 device tables (org rows plus per-data-rate
// timing rows), including the twelve JESD238 HBM3 rank-variant stacks, so
// generation-scaling experiments sweep real organizations instead of
// hand-rolled ones.
type Preset struct {
	// Name is the registry key (e.g. "HBM2_8Gb", "HBM3_16Gb_4R").
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Family is the device generation ("HBM2", "HBM2E", "HBM3").
	Family string
	// DataRateMbps is the per-pin data rate of the preset's timing row
	// (e.g. 5600 for the HBM3 5.6 Gbps row). Zero on the hand-rolled
	// legacy presets, whose timing predates the ported rate matrix.
	DataRateMbps int
	// Geometry is the preset's organization.
	Geometry Geometry
	// Timing is the preset's default timing table (overridable per chip
	// with WithTiming, or rebound to another rate with PresetAtRate).
	Timing Timing
}

// Device families of the preset registry.
const (
	FamilyHBM2  = "HBM2"
	FamilyHBM2E = "HBM2E"
	FamilyHBM3  = "HBM3"
)

// PresetHBM2 is the name of the paper's HBM2 part (the default).
const PresetHBM2 = "HBM2_8Gb"

// PresetHBM2E is the name of the legacy HBM2E-like preset: a 16 Gb die
// with twice the rows per bank and a faster interface clock.
const PresetHBM2E = "HBM2E_16Gb"

// PresetHBM3 is the name of the legacy HBM3-like preset: twice the
// channels (each half as wide, so rows as seen by one pseudo channel are
// smaller) at a higher command clock.
const PresetHBM3 = "HBM3_16Gb"

// orgSpec is one organization row of the ported device tables
// (Ramulator2 org_presets: density, channel/pseudo-channel/rank/bank
// structure, rows per bank). rateMbps selects the family timing row the
// registry binds the organization to by default.
type orgSpec struct {
	name      string
	family    string
	densityMb int
	channels  int
	pseudo    int
	ranks     int
	banks     int // per rank, per pseudo channel (bank groups folded in)
	rows      int
	rowBytes  int
	colBytes  int
	rateMbps  int
	desc      string
}

// timingSpec is one per-data-rate timing row in command-clock cycles at
// tCKps (Ramulator2 timing_presets; tRFC comes from the organization's
// density, not the rate row).
type timingSpec struct {
	rateMbps int
	tCKps    int
	nRCD     int
	nRAS     int
	nRP      int
	nRC      int
	nWR      int
	nRTP     int // long read-to-precharge (nRTPL)
	nCCDL    int
	nREFI    int
}

// familyTimings holds the ported per-data-rate timing rows. The HBM2 row
// and the HBM3 4.8/5.2/5.6 rows are Ramulator2's tables verbatim; the
// HBM3 6.0/6.4 rows extend the matrix along its own progression, and the
// HBM2E rows scale the HBM2E-generation analog values to each rate's
// clock.
var familyTimings = map[string][]timingSpec{
	FamilyHBM2: {
		{rateMbps: 2000, tCKps: 1000, nRCD: 7, nRAS: 17, nRP: 7, nRC: 19, nWR: 8, nRTP: 3, nCCDL: 2, nREFI: 3900},
	},
	FamilyHBM2E: {
		{rateMbps: 2400, tCKps: 833, nRCD: 17, nRAS: 34, nRP: 18, nRC: 52, nWR: 18, nRTP: 9, nCCDL: 5, nREFI: 4681},
		{rateMbps: 2800, tCKps: 714, nRCD: 20, nRAS: 40, nRP: 21, nRC: 61, nWR: 21, nRTP: 11, nCCDL: 5, nREFI: 5462},
		{rateMbps: 3200, tCKps: 625, nRCD: 23, nRAS: 45, nRP: 24, nRC: 69, nWR: 24, nRTP: 12, nCCDL: 6, nREFI: 6240},
		{rateMbps: 3600, tCKps: 555, nRCD: 26, nRAS: 51, nRP: 27, nRC: 78, nWR: 27, nRTP: 14, nCCDL: 7, nREFI: 7027},
	},
	FamilyHBM3: {
		// HBM3 clocks commands at a quarter of the data rate (CK at
		// rate/4, DDR strobes carry the data), so tCK = 4e6/rate ps and
		// the cycle counts grow with rate while the analog core stays put
		// (nRC x tCK is ~48.5 ns on every row).
		{rateMbps: 4800, tCKps: 833, nRCD: 17, nRAS: 41, nRP: 17, nRC: 58, nWR: 20, nRTP: 8, nCCDL: 4, nREFI: 4680},
		{rateMbps: 5200, tCKps: 769, nRCD: 19, nRAS: 45, nRP: 19, nRC: 63, nWR: 21, nRTP: 8, nCCDL: 4, nREFI: 5070},
		{rateMbps: 5600, tCKps: 714, nRCD: 20, nRAS: 48, nRP: 20, nRC: 68, nWR: 23, nRTP: 9, nCCDL: 4, nREFI: 5460},
		{rateMbps: 6000, tCKps: 667, nRCD: 21, nRAS: 52, nRP: 21, nRC: 73, nWR: 24, nRTP: 10, nCCDL: 4, nREFI: 5850},
		{rateMbps: 6400, tCKps: 625, nRCD: 23, nRAS: 55, nRP: 23, nRC: 78, nWR: 26, nRTP: 10, nCCDL: 4, nREFI: 6240},
	},
}

// trfcByDensityMb maps die density to the refresh cycle time, which the
// rate rows do not carry (it tracks capacity, not clock).
var trfcByDensityMb = map[int]TimePS{
	2048:  160 * NS,
	4096:  260 * NS,
	6144:  310 * NS,
	8192:  350 * NS,
	12288: 410 * NS,
	16384: 450 * NS,
	24576: 550 * NS,
	32768: 650 * NS,
}

// portedOrgs lists the organizations of the ported matrix. The HBM2 rows
// and the twelve HBM3 rank variants follow Ramulator2's org tables (HBM3
// per JESD238A: 1/2/3/4 ranks for 4/8/12/16-high stacks); the HBM2E rows
// extend the HBM2 organization to HBM2E densities and data rates. The
// three legacy presets (HBM2_8Gb, HBM2E_16Gb, HBM3_16Gb) are hand-rolled
// in legacyPresets and deliberately not regenerated here, so their sweep
// output stays byte-identical across the registry port.
var portedOrgs = []orgSpec{
	// HBM2: 8-channel stacks, 2 pseudo channels, single rank.
	{name: "HBM2_2Gb", family: FamilyHBM2, densityMb: 2048, channels: 8, pseudo: 2, ranks: 1, banks: 8, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 2000,
		desc: "HBM2 2 Gb die: 8 banks per pseudo channel, 2.0 Gbps"},
	{name: "HBM2_4Gb", family: FamilyHBM2, densityMb: 4096, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 2000,
		desc: "HBM2 4 Gb die: 16 banks per pseudo channel, 2.0 Gbps"},

	// HBM2E: the HBM2 organization at HBM2E densities and data rates.
	{name: "HBM2E_8Gb", family: FamilyHBM2E, densityMb: 8192, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 3200,
		desc: "HBM2E 8 Gb die at 3.2 Gbps"},
	{name: "HBM2E_16Gb_2.4Gbps", family: FamilyHBM2E, densityMb: 16384, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 2400,
		desc: "HBM2E 16 Gb die at 2.4 Gbps"},
	{name: "HBM2E_16Gb_2.8Gbps", family: FamilyHBM2E, densityMb: 16384, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 2800,
		desc: "HBM2E 16 Gb die at 2.8 Gbps"},
	{name: "HBM2E_16Gb_3.2Gbps", family: FamilyHBM2E, densityMb: 16384, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 3200,
		desc: "HBM2E 16 Gb die at 3.2 Gbps"},
	{name: "HBM2E_16Gb_3.6Gbps", family: FamilyHBM2E, densityMb: 16384, channels: 8, pseudo: 2, ranks: 1, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 3600,
		desc: "HBM2E 16 Gb die at 3.6 Gbps"},

	// HBM3: 16-channel stacks, 2 pseudo channels, 1R/2R/3R/4R rank
	// variants (4/8/12/16-high), default-bound to the 5.6 Gbps row.
	{name: "HBM3_2Gb_1R", family: FamilyHBM3, densityMb: 2048, channels: 16, pseudo: 2, ranks: 1, banks: 16, rows: 8192, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 2 Gb die, 4-high stack (1 rank)"},
	{name: "HBM3_4Gb_1R", family: FamilyHBM3, densityMb: 4096, channels: 16, pseudo: 2, ranks: 1, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 4 Gb die, 4-high stack (1 rank)"},
	{name: "HBM3_8Gb_1R", family: FamilyHBM3, densityMb: 8192, channels: 16, pseudo: 2, ranks: 1, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 8 Gb die, 4-high stack (1 rank)"},
	{name: "HBM3_4Gb_2R", family: FamilyHBM3, densityMb: 4096, channels: 16, pseudo: 2, ranks: 2, banks: 16, rows: 8192, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 4 Gb die, 8-high stack (2 ranks)"},
	{name: "HBM3_8Gb_2R", family: FamilyHBM3, densityMb: 8192, channels: 16, pseudo: 2, ranks: 2, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 8 Gb die, 8-high stack (2 ranks)"},
	{name: "HBM3_16Gb_2R", family: FamilyHBM3, densityMb: 16384, channels: 16, pseudo: 2, ranks: 2, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 16 Gb die, 8-high stack (2 ranks)"},
	{name: "HBM3_6Gb_3R", family: FamilyHBM3, densityMb: 6144, channels: 16, pseudo: 2, ranks: 3, banks: 16, rows: 8192, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 6 Gb die, 12-high stack (3 ranks)"},
	{name: "HBM3_12Gb_3R", family: FamilyHBM3, densityMb: 12288, channels: 16, pseudo: 2, ranks: 3, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 12 Gb die, 12-high stack (3 ranks)"},
	{name: "HBM3_24Gb_3R", family: FamilyHBM3, densityMb: 24576, channels: 16, pseudo: 2, ranks: 3, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 24 Gb die, 12-high stack (3 ranks)"},
	{name: "HBM3_8Gb_4R", family: FamilyHBM3, densityMb: 8192, channels: 16, pseudo: 2, ranks: 4, banks: 16, rows: 8192, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 8 Gb die, 16-high stack (4 ranks)"},
	{name: "HBM3_16Gb_4R", family: FamilyHBM3, densityMb: 16384, channels: 16, pseudo: 2, ranks: 4, banks: 16, rows: 16384, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 16 Gb die, 16-high stack (4 ranks)"},
	{name: "HBM3_32Gb_4R", family: FamilyHBM3, densityMb: 32768, channels: 16, pseudo: 2, ranks: 4, banks: 16, rows: 32768, rowBytes: 1024, colBytes: 32, rateMbps: 5600,
		desc: "HBM3 32 Gb die, 16-high stack (4 ranks)"},
}

// timingRowFor returns the family's timing row at rateMbps.
func timingRowFor(family string, rateMbps int) (timingSpec, error) {
	for _, ts := range familyTimings[family] {
		if ts.rateMbps == rateMbps {
			return ts, nil
		}
	}
	return timingSpec{}, fmt.Errorf("hbm: family %s has no %d Mbps timing row (have: %v)",
		family, rateMbps, FamilyRates(family))
}

// portTiming converts one cycle-count timing row to the picosecond Timing
// the device enforces. tRFC comes from the die density. Ramulator2's HBM2
// row lists nRC below nRAS+nRP; the port clamps tRC up to that sum so the
// result satisfies the same-bank ACT-to-ACT identity Timing.Validate
// enforces.
func portTiming(ts timingSpec, densityMb int) Timing {
	ck := TimePS(ts.tCKps)
	tras := ck * TimePS(ts.nRAS)
	trp := ck * TimePS(ts.nRP)
	trc := ck * TimePS(ts.nRC)
	if trc < tras+trp {
		trc = tras + trp
	}
	trfc, ok := trfcByDensityMb[densityMb]
	if !ok {
		trfc = 350 * NS
	}
	refi := ck * TimePS(ts.nREFI)
	return Timing{
		TCK:     ck,
		TRCD:    ck * TimePS(ts.nRCD),
		TRAS:    tras,
		TRP:     trp,
		TRC:     trc,
		TRFC:    trfc,
		TREFI:   refi,
		TREFW:   32 * MS,
		TCCDL:   ck * TimePS(ts.nCCDL),
		TRTP:    ck * TimePS(ts.nRTP),
		TWR:     ck * TimePS(ts.nWR),
		MaxOpen: 9 * refi,
	}
}

func (o orgSpec) geometry() Geometry {
	return Geometry{
		Name:           o.name,
		Channels:       o.channels,
		PseudoChannels: o.pseudo,
		Ranks:          o.ranks,
		Banks:          o.banks,
		Rows:           o.rows,
		RowBytes:       o.rowBytes,
		ColBytes:       o.colBytes,
	}
}

func (o orgSpec) preset() Preset {
	ts, err := timingRowFor(o.family, o.rateMbps)
	if err != nil {
		panic(err) // unreachable: every org's default rate has a row (registry test)
	}
	return Preset{
		Name:         o.name,
		Description:  o.desc,
		Family:       o.family,
		DataRateMbps: o.rateMbps,
		Geometry:     o.geometry(),
		Timing:       portTiming(ts, o.densityMb),
	}
}

// legacyPresets returns the three pre-port presets exactly as they have
// always been. Their geometry and timing are frozen: the golden sweep
// digests pin their byte-level behaviour, so the registry port must not
// regenerate them from the tables.
func legacyPresets() []Preset {
	return []Preset{
		{
			Name:        PresetHBM2,
			Description: "the paper's HBM2 part: 8ch x 2pc x 16 banks x 16384 rows of 1 KiB",
			Family:      FamilyHBM2,
			Geometry:    DefaultGeometry(),
			Timing:      DefaultTiming(),
		},
		{
			Name:        PresetHBM2E,
			Description: "HBM2E-like 16 Gb die: 32768 rows per bank, ~800 MHz command clock",
			Family:      FamilyHBM2E,
			Geometry: Geometry{
				Name:           PresetHBM2E,
				Channels:       8,
				PseudoChannels: 2,
				Ranks:          1,
				Banks:          16,
				Rows:           32768,
				RowBytes:       1024,
				ColBytes:       32,
			},
			Timing: Timing{
				TCK:     1_250,
				TRCD:    14_000,
				TRAS:    28_000,
				TRP:     15_000,
				TRC:     43_000,
				TRFC:    450_000, // 16 Gb die: longer refresh cycle
				TREFI:   3_900_000,
				TREFW:   32 * MS,
				TCCDL:   3_750,
				TRTP:    7_500,
				TWR:     15_000,
				MaxOpen: 9 * 3_900_000,
			},
		},
		{
			Name:        PresetHBM3,
			Description: "HBM3-like stack: 16 narrower channels, 512 B rows, ~1.6 GHz command clock",
			Family:      FamilyHBM3,
			Geometry: Geometry{
				Name:           PresetHBM3,
				Channels:       16,
				PseudoChannels: 2,
				Ranks:          1,
				Banks:          16,
				Rows:           16384,
				RowBytes:       512,
				ColBytes:       32,
			},
			Timing: Timing{
				TCK:     625,
				TRCD:    13_000,
				TRAS:    27_000,
				TRP:     14_000,
				TRC:     41_000,
				TRFC:    410_000,
				TREFI:   3_900_000,
				TREFW:   32 * MS,
				TCCDL:   2_500,
				TRTP:    5_000,
				TWR:     14_000,
				MaxOpen: 9 * 3_900_000,
			},
		},
	}
}

// The registry is built once, on first use: a slice sorted by folded name
// for O(log n) lookup, a presentation-ordered copy for Presets, the name
// list, and the org index PresetAtRate rebinds rates through. With 20+
// ported presets, rebuilding per lookup (and twice more on the error
// path) is no longer acceptable.
var (
	registryOnce  sync.Once
	registByFold  []Preset // sorted by strings.ToLower(Name)
	registDisplay []Preset // default preset first, then by name
	registNames   []string // names in registDisplay order
	registOrgs    map[string]orgSpec
)

func buildRegistry() {
	ps := legacyPresets()
	registOrgs = make(map[string]orgSpec, len(portedOrgs))
	for _, o := range portedOrgs {
		ps = append(ps, o.preset())
		registOrgs[o.name] = o
	}

	registByFold = append([]Preset(nil), ps...)
	sort.Slice(registByFold, func(i, j int) bool {
		return strings.ToLower(registByFold[i].Name) < strings.ToLower(registByFold[j].Name)
	})

	registDisplay = append([]Preset(nil), ps...)
	sort.Slice(registDisplay, func(i, j int) bool {
		if (registDisplay[i].Name == PresetHBM2) != (registDisplay[j].Name == PresetHBM2) {
			return registDisplay[i].Name == PresetHBM2
		}
		return registDisplay[i].Name < registDisplay[j].Name
	})
	registNames = make([]string, len(registDisplay))
	for i, p := range registDisplay {
		registNames[i] = p.Name
	}
}

// Presets returns the preset registry, sorted by name with the default
// (HBM2_8Gb) first. The returned slice is a fresh copy; callers can
// mutate it freely.
func Presets() []Preset {
	registryOnce.Do(buildRegistry)
	return append([]Preset(nil), registDisplay...)
}

// PresetNames returns the registered preset names in Presets order.
func PresetNames() []string {
	registryOnce.Do(buildRegistry)
	return append([]string(nil), registNames...)
}

// PresetsByFamily returns the registered presets of one device family
// ("HBM2", "HBM2E", "HBM3"), in Presets order.
func PresetsByFamily(family string) []Preset {
	registryOnce.Do(buildRegistry)
	var out []Preset
	for _, p := range registDisplay {
		if strings.EqualFold(p.Family, family) {
			out = append(out, p)
		}
	}
	return out
}

// FamilyRates returns the data rates (Mbps, ascending) a family's ported
// timing matrix covers. Empty for unknown families.
func FamilyRates(family string) []int {
	rows := familyTimings[family]
	rates := make([]int, len(rows))
	for i, ts := range rows {
		rates[i] = ts.rateMbps
	}
	sort.Ints(rates)
	return rates
}

// LookupPreset finds a preset by name (case-insensitive) with a binary
// search over the lazily-built registry.
func LookupPreset(name string) (Preset, error) {
	registryOnce.Do(buildRegistry)
	fold := strings.ToLower(name)
	i := sort.Search(len(registByFold), func(i int) bool {
		return strings.ToLower(registByFold[i].Name) >= fold
	})
	if i < len(registByFold) && strings.EqualFold(registByFold[i].Name, name) {
		return registByFold[i], nil
	}
	return Preset{}, fmt.Errorf("hbm: unknown geometry preset %q (have: %s)",
		name, strings.Join(registNames, ", "))
}

// PresetAtRate returns a ported preset rebound to another data rate of
// its family's timing matrix: the same organization with the timing row
// (and DataRateMbps) swapped, e.g. HBM3_16Gb_4R at each of 4.8–6.4 Gbps
// for a data-rate sensitivity sweep. The three hand-rolled legacy presets
// carry no matrix row and are rejected.
func PresetAtRate(name string, rateMbps int) (Preset, error) {
	p, err := LookupPreset(name)
	if err != nil {
		return Preset{}, err
	}
	o, ok := registOrgs[p.Name]
	if !ok {
		return Preset{}, fmt.Errorf("hbm: preset %s is hand-rolled, not part of the ported rate matrix", p.Name)
	}
	ts, err := timingRowFor(o.family, rateMbps)
	if err != nil {
		return Preset{}, err
	}
	p.DataRateMbps = rateMbps
	p.Timing = portTiming(ts, o.densityMb)
	return p, nil
}

// DefaultPreset returns the paper's HBM2 preset.
func DefaultPreset() Preset {
	p, err := LookupPreset(PresetHBM2)
	if err != nil {
		panic(err) // unreachable: the default preset is always registered
	}
	return p
}
