package hbm

import (
	"errors"
	"math/rand"
	"testing"
)

// refTiming is the retained per-call reference for the gate table: a
// re-implementation of the string-keyed sequential checks the channel
// used before gates.go (gate tRC, then tRP, then tRFC, each jumping the
// clock in auto mode), kept as an independent oracle. The property test
// below drives random command sequences through a real chip and this
// reference in lockstep, for every preset's timing table, and requires
// clock-identical auto behaviour and violation-identical strict
// behaviour — the scalar-reference pattern the FlipMask kernel uses.
type refTiming struct {
	t    Timing
	auto bool

	now        TimePS
	lastRefEnd TimePS
	banks      map[[2]int]*refBank
}

type refBank struct {
	open                            bool
	actAt, lastAct, lastPre, lastRW TimePS
	wrote                           bool
}

func newRefTiming(t Timing, auto bool) *refTiming {
	return &refTiming{t: t, auto: auto, lastRefEnd: tsFloor, banks: map[[2]int]*refBank{}}
}

func (r *refTiming) bank(pc, b int) *refBank {
	k := [2]int{pc, b}
	if r.banks[k] == nil {
		r.banks[k] = &refBank{actAt: tsFloor, lastAct: tsFloor, lastPre: tsFloor, lastRW: tsFloor}
	}
	return r.banks[k]
}

// gate applies one rule: in auto mode the clock jumps, in strict mode a
// violation is recorded. Returns whether the command may proceed.
func (r *refTiming) gate(earliest TimePS, violated *bool, worst *TimePS) bool {
	if earliest > *worst {
		*worst = earliest
	}
	if r.now >= earliest {
		return true
	}
	if r.auto {
		r.now = earliest
		return true
	}
	*violated = true
	return false
}

// Each command returns (violated, earliest-legal-time-if-violated).

func (r *refTiming) act(pc, bi int) (bool, TimePS) {
	b := r.bank(pc, bi)
	violated, worst := false, tsFloor
	ok := r.gate(b.lastAct+r.t.TRC, &violated, &worst) &&
		r.gate(b.lastPre+r.t.TRP, &violated, &worst) &&
		r.gate(r.lastRefEnd, &violated, &worst)
	// In strict mode every rule contributes to the binding earliest even
	// after the first violation.
	if !ok {
		r.gate(b.lastPre+r.t.TRP, &violated, &worst)
		r.gate(r.lastRefEnd, &violated, &worst)
		return true, worst
	}
	b.open = true
	b.actAt, b.lastAct, b.wrote = r.now, r.now, false
	r.now += r.t.TCK
	return false, 0
}

func (r *refTiming) pre(pc, bi int) (bool, TimePS) {
	b := r.bank(pc, bi)
	if !b.open {
		b.lastPre = r.now
		r.now += r.t.TCK
		return false, 0
	}
	violated, worst := false, tsFloor
	ok := r.gate(b.actAt+r.t.TRAS, &violated, &worst) &&
		r.gate(b.lastRW+r.t.TRTP, &violated, &worst) &&
		(!b.wrote || r.gate(b.lastRW+r.t.TWR, &violated, &worst))
	if !ok {
		r.gate(b.lastRW+r.t.TRTP, &violated, &worst)
		if b.wrote {
			r.gate(b.lastRW+r.t.TWR, &violated, &worst)
		}
		return true, worst
	}
	b.open = false
	b.lastPre = r.now
	r.now += r.t.TCK
	return false, 0
}

func (r *refTiming) rw(pc, bi int, write bool) (bool, TimePS) {
	b := r.bank(pc, bi)
	violated, worst := false, tsFloor
	ok := r.gate(b.actAt+r.t.TRCD, &violated, &worst) &&
		r.gate(b.lastRW+r.t.TCCDL, &violated, &worst)
	if !ok {
		r.gate(b.lastRW+r.t.TCCDL, &violated, &worst)
		return true, worst
	}
	b.lastRW = r.now
	if write {
		b.wrote = true
	}
	r.now += r.t.TCK
	return false, 0
}

func (r *refTiming) ref() (bool, TimePS) {
	violated, worst := false, tsFloor
	if !r.gate(r.lastRefEnd, &violated, &worst) {
		return true, worst
	}
	r.lastRefEnd = r.now + r.t.TRFC
	r.now = r.lastRefEnd
	return false, 0
}

func (r *refTiming) wait(d TimePS) { r.now += d }

// TestGateTableMatchesReference drives random explicit-command sequences
// through a real channel and the per-call reference in lockstep, across
// every preset's timing table. Auto mode must stay clock-identical after
// every command; strict mode must agree on whether each command violates
// timing and on the binding earliest-legal time.
func TestGateTableMatchesReference(t *testing.T) {
	t.Parallel()
	for pi, p := range Presets() {
		p, pi := p, pi
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, strict := range []bool{false, true} {
				opts := []Option{WithGeometry(p), WithIdentityMapping()}
				if strict {
					opts = append(opts, WithStrictTiming())
				}
				chip, err := NewBuiltin(0, opts...)
				if err != nil {
					t.Fatal(err)
				}
				ch, err := chip.Channel(0)
				if err != nil {
					t.Fatal(err)
				}
				ref := newRefTiming(chip.Timing(), !strict)
				rng := rand.New(rand.NewSource(int64(0xC0FFEE + 977*pi)))

				type slot struct{ pc, bank int }
				slots := []slot{{0, 0}, {0, 1}, {1, 0}, {1, p.Geometry.BanksPerPC() - 1}}
				colBuf := make([]byte, p.Geometry.ColBytes)
				openCount := 0

				for step := 0; step < 1500; step++ {
					s := slots[rng.Intn(len(slots))]
					rb := ref.bank(s.pc, s.bank)
					var gotErr error
					var wantViolate bool
					var wantEarliest TimePS
					switch op := rng.Intn(10); {
					case op < 3: // ACT (only on a closed bank: state errors are not timing)
						if rb.open {
							continue
						}
						gotErr = ch.Activate(s.pc, s.bank, 100+rng.Intn(64))
						wantViolate, wantEarliest = ref.act(s.pc, s.bank)
						if gotErr == nil && !wantViolate && rb.open {
							openCount++
						}
					case op < 5: // PRE (legal no-op on a closed bank)
						wasOpen := rb.open
						gotErr = ch.Precharge(s.pc, s.bank)
						wantViolate, wantEarliest = ref.pre(s.pc, s.bank)
						if gotErr == nil && !wantViolate && wasOpen {
							openCount--
						}
					case op < 7: // RD / WR on an open bank
						if !rb.open {
							continue
						}
						write := rng.Intn(2) == 0
						if write {
							gotErr = ch.Write(s.pc, s.bank, rng.Intn(p.Geometry.Cols()), colBuf)
						} else {
							gotErr = ch.Read(s.pc, s.bank, rng.Intn(p.Geometry.Cols()), colBuf)
						}
						wantViolate, wantEarliest = ref.rw(s.pc, s.bank, write)
					case op < 8: // REF (requires all banks idle)
						if openCount != 0 {
							continue
						}
						gotErr = ch.Refresh()
						wantViolate, wantEarliest = ref.ref()
					default: // advance the clock by a random fraction of tRC
						d := TimePS(rng.Int63n(int64(chip.Timing().TRC * 2)))
						ch.Wait(d)
						ref.wait(d)
					}

					var te *TimingError
					switch {
					case wantViolate && !errors.As(gotErr, &te):
						t.Fatalf("strict=%v step %d: reference violates (earliest %d) but channel returned %v",
							strict, step, wantEarliest, gotErr)
					case !wantViolate && gotErr != nil:
						t.Fatalf("strict=%v step %d: reference passes but channel returned %v", strict, step, gotErr)
					case wantViolate && te.Earliest != wantEarliest:
						t.Fatalf("strict=%v step %d: binding earliest %d, reference %d (%s %s)",
							strict, step, te.Earliest, wantEarliest, te.Cmd, te.Rule)
					}
					if got := ch.Now(); got != ref.now {
						t.Fatalf("strict=%v step %d: channel clock %d, reference %d", strict, step, got, ref.now)
					}
				}
			}
		})
	}
}

// TestGateTableEntries pins the compiled table's shape: every rule entry
// carries its timing parameter and everything else is unused.
func TestGateTableEntries(t *testing.T) {
	t.Parallel()
	tm := DefaultTiming()
	g := buildGateTable(tm)
	want := map[[2]int]TimePS{
		{int(cmdACT), tsLastAct}: tm.TRC,
		{int(cmdACT), tsLastPre}: tm.TRP,
		{int(cmdACT), tsRefEnd}:  0,
		{int(cmdPRE), tsActAt}:   tm.TRAS,
		{int(cmdPRE), tsLastRW}:  tm.TRTP,
		{int(cmdPRE), tsWrRW}:    tm.TWR,
		{int(cmdRD), tsActAt}:    tm.TRCD,
		{int(cmdRD), tsLastRW}:   tm.TCCDL,
		{int(cmdWR), tsActAt}:    tm.TRCD,
		{int(cmdWR), tsLastRW}:   tm.TCCDL,
		{int(cmdREF), tsRefEnd}:  0,
	}
	for c := 0; c < int(numCommands); c++ {
		for s := 0; s < numStates; s++ {
			if delta, ok := want[[2]int{c, s}]; ok {
				if g[c][s] != delta {
					t.Errorf("gate[%s][%d] = %d, want %d", cmdNames[c], s, g[c][s], delta)
				}
				if gateRules[c][s] == "" {
					t.Errorf("gate[%s][%d] has no rule name", cmdNames[c], s)
				}
			} else if g[c][s] != gateUnused {
				t.Errorf("gate[%s][%d] = %d, want unused", cmdNames[c], s, g[c][s])
			}
		}
	}
}
