package fabric

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"hbmrd/internal/serve"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// BenchmarkFabricOverhead prices the coordinator's control plane - the
// PR 8 follow-on measurement. Beyond ns/op it reports polls/sweep (how
// many shard status polls one distributed sweep costs) and poll_wait_%
// (the share of wall time spent sleeping between polls), both read from
// the hbmrd_fabric_poll_wait_seconds histogram the poll loop feeds. The
// adaptive poll interval - base interval for the first two polls, then
// 1.5x growth per poll toward PollMaxInterval, with subtractive jitter
// - is what keeps polls/sweep flat as shards get longer.
func BenchmarkFabricOverhead(b *testing.B) {
	newOverheadWorker := func(b *testing.B) string {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := serve.New(serve.Config{Store: st, Workers: 2, Jobs: 2, Log: telemetry.NewLogger(func(string, ...any) {})})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() { ts.Close(); srv.Drain() })
		return ts.URL
	}

	c, err := New(Config{Peers: []string{newOverheadWorker(b), newOverheadWorker(b)}, Shards: 4,
		PollInterval: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()

	polls0, wait0 := mPollWait.Count(), mPollWait.Sum()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := serve.Resolve(benchSpec(b, i))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Distribute(context.Background(), sw, filepath.Join(dir, "merged.jsonl")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := time.Since(start)

	b.ReportMetric(float64(mPollWait.Count()-polls0)/float64(b.N), "polls/sweep")
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric((mPollWait.Sum()-wait0)/secs*100, "poll_wait_%")
	}
}
