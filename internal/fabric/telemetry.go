package fabric

import (
	"hbmrd/internal/telemetry"
)

// Coordinator metrics. Handles resolve once at init; every update on
// the dispatch/poll path is a plain atomic. All of it is out-of-band:
// nothing here touches shard payloads, headers, or the merged spool.
var (
	mShardsDispatched = telemetry.Default.Counter("hbmrd_fabric_shards_dispatched_total")
	mShardAttempts    = telemetry.Default.Counter("hbmrd_fabric_shard_attempts_total")
	mShardRetries     = telemetry.Default.Counter("hbmrd_fabric_shard_retries_total")
	mShardReattaches  = telemetry.Default.Counter("hbmrd_fabric_shard_reattaches_total")
	mShardFailures    = telemetry.Default.Counter("hbmrd_fabric_shard_failures_total")
	mQuarantines      = telemetry.Default.Counter("hbmrd_fabric_peer_quarantines_total")
	mReinstates       = telemetry.Default.Counter("hbmrd_fabric_peer_reinstates_total")
	mFetchBytes       = telemetry.Default.Counter("hbmrd_fabric_shard_fetch_bytes_total")
	mMergeBytes       = telemetry.Default.Counter("hbmrd_fabric_merge_bytes_total")
	mMergeFull        = telemetry.Default.Counter("hbmrd_fabric_merges_total", telemetry.L("outcome", "full"))
	mMergePartial     = telemetry.Default.Counter("hbmrd_fabric_merges_total", telemetry.L("outcome", "partial"))
	mMergeNone        = telemetry.Default.Counter("hbmrd_fabric_merges_total", telemetry.L("outcome", "none"))

	// mPollWait's count is the number of status polls issued and its sum
	// the total wall time spent waiting between them — together they are
	// the dispatch-overhead measurement BenchmarkFabricOverhead reports
	// as polls/sweep and poll-wait share (the PR 8 follow-on).
	mPollWait = telemetry.Default.Histogram("hbmrd_fabric_poll_wait_seconds", telemetry.DurationBuckets)
)

func init() {
	telemetry.Default.Help("hbmrd_fabric_shards_dispatched_total", "Shards handed to the dispatch loop.")
	telemetry.Default.Help("hbmrd_fabric_shard_attempts_total", "Per-shard dispatch attempts, including the first.")
	telemetry.Default.Help("hbmrd_fabric_shard_retries_total", "Dispatch attempts after the first (attempt >= 2).")
	telemetry.Default.Help("hbmrd_fabric_shard_reattaches_total", "Retries that reattached to a shard already in flight on a worker.")
	telemetry.Default.Help("hbmrd_fabric_shard_failures_total", "Shards that exhausted their retry budget.")
	telemetry.Default.Help("hbmrd_fabric_peer_quarantines_total", "Workers quarantined after consecutive failures.")
	telemetry.Default.Help("hbmrd_fabric_peer_reinstates_total", "Quarantined workers reinstated by a healthz probe.")
	telemetry.Default.Help("hbmrd_fabric_shard_fetch_bytes_total", "Bytes downloaded from workers' stored shard streams.")
	telemetry.Default.Help("hbmrd_fabric_merge_bytes_total", "Bytes written to merged spool files.")
	telemetry.Default.Help("hbmrd_fabric_merges_total", "Merge outcomes: full prefix, partial prefix (local resume), or none.")
	telemetry.Default.Help("hbmrd_fabric_poll_wait_seconds", "Wall time spent sleeping between shard status polls (count = polls issued).")
}
