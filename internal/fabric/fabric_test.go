package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/serve"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// testSpec is a sweep with enough plan cells (12) to shard meaningfully
// on the given preset.
func testSpec(t *testing.T, geometry string) serve.SweepSpec {
	t.Helper()
	raw := `{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0,1],"Rows":` + intsJSON(core.SampleRows(6)) + `,"Patterns":["Rowstripe0"],"Reps":1}}`
	var s serve.SweepSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	s.Geometry = geometry
	return s
}

func intsJSON(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// referenceRun executes the spec locally, uninterrupted, and returns the
// sweep file bytes - the byte-identity yardstick for every fabric path.
func referenceRun(t *testing.T, spec serve.SweepSpec) []byte {
	t.Helper()
	sw, err := serve.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Run(context.Background(), core.WithSink(core.NewJSONLFileSink(f))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newWorker starts one hbmrdd worker on its own store and returns its
// base URL plus the store directory (for spool inspection).
func newWorker(t *testing.T, jobs int) (url, dir string) {
	t.Helper()
	dir = t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: 2, Jobs: jobs, Log: telemetry.NewLogger(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Drain() })
	return ts.URL, dir
}

func testPolicy() Policy {
	return Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
}

// newKindSpecs are the two post-legacy sweep kinds on the paper preset:
// the fabric contract must hold for them with zero fabric changes.
func newKindSpecs(t *testing.T) []serve.SweepSpec {
	t.Helper()
	rows := intsJSON(core.SampleRows(6))
	// SampleRows leaves only two rows of edge clearance; drop the last of
	// seven samples so every aggressor has a victim at distance 3.
	aggRows := intsJSON(core.SampleRows(7)[:6])
	var specs []serve.SweepSpec
	for _, raw := range []string{
		`{"kind":"vrd","chips":[0],"identity_mapping":true,
			"config":{"Rows":` + rows + `,"Trials":3}}`,
		`{"kind":"coldist","chips":[0],"identity_mapping":true,
			"config":{"AggRows":` + aggRows + `,"Distances":[1,3],"Stripes":[2],"Reads":8000,"MaxReads":131072}}`,
	} {
		var s serve.SweepSpec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// assertShardedIdentity distributes spec across two workers and demands
// the merged spool match the uninterrupted local run byte for byte.
func assertShardedIdentity(t *testing.T, spec serve.SweepSpec) {
	t.Helper()
	want := referenceRun(t, spec)

	w1, _ := newWorker(t, 2)
	w2, _ := newWorker(t, 2)
	c, err := New(Config{Peers: []string{w1, w2}, Shards: 4, Retry: testPolicy(), Log: telemetry.NewLogger(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := serve.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	spool := filepath.Join(t.TempDir(), "merged.jsonl")
	if err := c.Distribute(context.Background(), sw, spool); err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	got, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged sweep (%d bytes) diverges from uninterrupted local run (%d bytes)", len(got), len(want))
	}
}

// TestGoldenShardedByteIdentity is the fabric's contract on every legacy
// preset plus both post-legacy sweep kinds: a sweep split across two
// workers merges to the exact bytes of an uninterrupted local run.
func TestGoldenShardedByteIdentity(t *testing.T) {
	for _, preset := range []string{"HBM2_8Gb", "HBM2E_16Gb", "HBM3_16Gb"} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			assertShardedIdentity(t, testSpec(t, preset))
		})
	}
	for _, spec := range newKindSpecs(t) {
		spec := spec
		t.Run(spec.Kind, func(t *testing.T) {
			t.Parallel()
			assertShardedIdentity(t, spec)
		})
	}
}

// frontService stands up the coordinator-fronted service: a server whose
// Distribute hook shards submissions across the peers through client.
func frontService(t *testing.T, peers []string, client *http.Client, retry Policy) (*serve.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Peers: peers, Shards: 4, Retry: retry, Client: client,
		ShardTimeout: 30 * time.Second, Log: telemetry.NewLogger(t.Logf)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: 1, Jobs: 2, Log: telemetry.NewLogger(t.Logf), Distribute: c.Distribute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Drain() })
	return srv, ts
}

// submitAndFetch pushes spec through the front service and returns the
// finished stream bytes.
func submitAndFetch(t *testing.T, url string, spec serve.SweepSpec) []byte {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Fingerprint string `json:"fingerprint"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url + "/sweeps/" + sub.Fingerprint + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "cached" {
			break
		}
		if st.Status == serve.StatusFailed {
			t.Fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(url + "/sweeps/" + sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestChaosConvergence injects every failure mode the fabric hardens
// against - dropped connections, 5xx answers, torn shard streams, and
// workers slower than the attempt deadline - and demands the final
// stream still match an uninterrupted local run byte for byte.
func TestChaosConvergence(t *testing.T) {
	scenarios := []struct {
		name   string
		retry  Policy
		faults []*Fault
	}{
		{"drop", testPolicy(), []*Fault{
			{Match: "/sweeps", Method: http.MethodPost, Mode: FaultDrop, Count: 3},
		}},
		{"5xx", testPolicy(), []*Fault{
			{Match: "/sweeps", Method: http.MethodPost, Mode: Fault5xx, Count: 3},
		}},
		{"torn-stream", testPolicy(), []*Fault{
			{Match: "/sweeps/sha256:", Method: http.MethodGet, Mode: FaultTruncate, TruncateTo: 40, Count: 3},
		}},
		{"slow-worker", func() Policy {
			p := testPolicy()
			p.AttemptTimeout = 250 * time.Millisecond
			return p
		}(), []*Fault{
			{Match: "/sweeps", Method: http.MethodPost, Mode: FaultDelay, Delay: 2 * time.Second, Count: 2},
		}},
		{"mixed", testPolicy(), []*Fault{
			{Match: "/sweeps", Method: http.MethodPost, Mode: FaultDrop, Count: 1},
			{Match: "/sweeps", Method: http.MethodPost, Mode: Fault5xx, Count: 1},
			{Match: "/sweeps/sha256:", Method: http.MethodGet, Mode: FaultTruncate, TruncateTo: 40, Count: 1},
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			spec := testSpec(t, "")
			want := referenceRun(t, spec)
			w1, _ := newWorker(t, 2)
			w2, _ := newWorker(t, 2)
			inj := NewFaultInjector(nil, sc.faults...)
			_, front := frontService(t, []string{w1, w2}, &http.Client{Transport: inj}, sc.retry)
			got := submitAndFetch(t, front.URL, spec)
			if !bytes.Equal(got, want) {
				t.Errorf("stream under %s faults (%d bytes) diverges from local run (%d bytes)", sc.name, len(got), len(want))
			}
			if inj.Injected() == 0 {
				t.Errorf("scenario %s injected no faults; the chaos path was not exercised", sc.name)
			}
		})
	}
}

// TestAllWorkersDeadFallsBackLocal: with every peer unreachable the
// coordinator quarantines the whole pool and the serving layer degrades
// to ordinary local execution - same bytes, no distribution.
func TestAllWorkersDeadFallsBackLocal(t *testing.T) {
	t.Parallel()
	spec := testSpec(t, "")
	want := referenceRun(t, spec)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "gone", http.StatusServiceUnavailable)
	}))
	deadURL := dead.URL
	dead.Close()
	_, front := frontService(t, []string{deadURL}, nil, testPolicy())
	got := submitAndFetch(t, front.URL, spec)
	if !bytes.Equal(got, want) {
		t.Error("local-fallback stream diverges from the reference run")
	}
}

// swapHandler lets a worker die and be replaced behind a stable URL.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// TestWorkerDrainResumesOnRestart is the SIGTERM-under-load drill: a
// worker is drained mid-shard, its spool keeps the valid record prefix,
// and a restarted worker on the same store resumes that prefix when the
// coordinator's retry resubmits - converging to the reference bytes.
// Exercised at engine parallelism 1, 2, and 8.
func TestWorkerDrainResumesOnRestart(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			t.Parallel()
			// Big enough that the drain reliably lands mid-shard: 4 channels
			// x 48 rows x 2 patterns x 4 reps.
			raw := `{"kind":"ber","chips":[0],"identity_mapping":true,
				"config":{"Channels":[0,1,2,3],"Rows":` + intsJSON(core.SampleRows(48)) + `,"Patterns":["Rowstripe0","Checkered0"],"Reps":4}}`
			var spec serve.SweepSpec
			if err := json.Unmarshal([]byte(raw), &spec); err != nil {
				t.Fatal(err)
			}
			want := referenceRun(t, spec)

			dir := t.TempDir()
			newServer := func() *serve.Server {
				st, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				srv, err := serve.New(serve.Config{Store: st, Workers: 2, Jobs: jobs, Log: telemetry.NewLogger(t.Logf)})
				if err != nil {
					t.Fatal(err)
				}
				return srv
			}
			sh := &swapHandler{}
			first := newServer()
			sh.set(first.Handler())
			ts := httptest.NewServer(sh)
			defer ts.Close()

			_, front := frontService(t, []string{ts.URL}, nil, Policy{
				MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond})

			fetched := make(chan []byte, 1)
			go func() { fetched <- submitAndFetch(t, front.URL, spec) }()

			// Kill the worker once shard records are actually spooling.
			spoolGlob := filepath.Join(dir, "spool", "*.jsonl")
			deadline := time.Now().Add(30 * time.Second)
			var spools []string
			for {
				spools, _ = filepath.Glob(spoolGlob)
				if grown(spools) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no shard ever started spooling on the worker")
				}
				time.Sleep(2 * time.Millisecond)
			}
			sh.set(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				http.Error(w, "worker restarting", http.StatusServiceUnavailable)
			}))
			first.Drain()

			// The drained spool must be a valid checkpoint prefix.
			resumable := 0
			for _, sp := range spools {
				f, err := os.Open(sp)
				if err != nil {
					continue
				}
				cp, err := core.ResumeFrom(f)
				f.Close()
				if err == nil && cp.Records() > 0 {
					resumable++
				}
			}
			if resumable == 0 {
				t.Log("drain landed before any complete record; resume covers the header only")
			}

			// Restart on the same store: the resubmitted shard resumes.
			second := newServer()
			defer second.Drain()
			sh.set(second.Handler())

			select {
			case got := <-fetched:
				if !bytes.Equal(got, want) {
					t.Errorf("post-restart stream (%d bytes) diverges from local run (%d bytes)", len(got), len(want))
				}
			case <-time.After(90 * time.Second):
				t.Fatal("sweep never completed after the worker restart")
			}
		})
	}
}

// grown reports whether any spool file holds bytes yet.
func grown(paths []string) bool {
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}

// TestSplitPlan pins the shard arithmetic: contiguous, exhaustive,
// near-equal ranges.
func TestSplitPlan(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		cells, n int
		want     []serve.ShardSpec
	}{
		{12, 4, []serve.ShardSpec{{Start: 0, End: 3}, {Start: 3, End: 6}, {Start: 6, End: 9}, {Start: 9, End: 12}}},
		{5, 2, []serve.ShardSpec{{Start: 0, End: 3}, {Start: 3, End: 5}}},
		{2, 8, []serve.ShardSpec{{Start: 0, End: 1}, {Start: 1, End: 2}}},
		{3, 1, []serve.ShardSpec{{Start: 0, End: 3}}},
	} {
		got := splitPlan(tc.cells, tc.n)
		if len(got) != len(tc.want) {
			t.Errorf("splitPlan(%d, %d) = %v, want %v", tc.cells, tc.n, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitPlan(%d, %d)[%d] = %v, want %v", tc.cells, tc.n, i, got[i], tc.want[i])
			}
		}
	}
}
