package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy is the shared retry/backoff discipline every fabric network
// operation runs under: capped exponential backoff with jitter, a
// per-attempt deadline, and a bounded attempt count. The zero value takes
// the defaults below.
type Policy struct {
	// MaxAttempts bounds tries per operation (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms); each subsequent
	// backoff multiplies by Multiplier (default 2) and caps at MaxDelay
	// (default 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each backoff randomized away (default
	// 0.2): a delay d sleeps in [d*(1-Jitter), d], so a fleet of
	// coordinators retrying the same dead worker does not stampede it.
	Jitter float64
	// AttemptTimeout is the per-attempt deadline (0 = none): each attempt
	// runs under a context that expires after this long, so one hung
	// worker cannot absorb the whole operation's budget.
	AttemptTimeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// permanentError marks an error no retry can fix (a rejected spec, a
// cancelled context): Do returns it immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do stops retrying and returns it as is.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs fn until it succeeds, returns a Permanent error, the parent
// context ends, or MaxAttempts is exhausted. Each attempt receives a
// context bounded by AttemptTimeout; backoffs respect the parent context.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	p = p.withDefaults()
	delay := p.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("fabric: %d attempts exhausted: %w", p.MaxAttempts, lastErr)
		}
		d := delay
		if p.Jitter > 0 {
			d -= time.Duration(rand.Float64() * p.Jitter * float64(delay))
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
