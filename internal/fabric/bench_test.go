package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/hbm"
	"hbmrd/internal/serve"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

// benchSpec is the fabric benchmark workload: 12 plan cells, with each
// iteration's rows offset so every iteration is a distinct fingerprint
// (otherwise iteration two would measure the dedup cache, not sweep
// throughput).
func benchSpec(b *testing.B, iter int) serve.SweepSpec {
	b.Helper()
	// Keep rows well inside the bank (hammering needs neighbours on both
	// sides) while still giving every iteration a distinct row set.
	rows := core.SampleRows(6)
	for i := range rows {
		rows[i] = 64 + (rows[i]+iter*7)%(hbm.NumRows-128)
	}
	raw := fmt.Sprintf(`{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0,1],"Rows":%s,"Patterns":["Rowstripe0"],"Reps":1}}`, intsJSON(rows))
	var s serve.SweepSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkShardMerge measures the coordinator's merge path in
// isolation: reconstructing the parent header from a shard header and
// assembling the shard payloads into the final spool file.
func BenchmarkShardMerge(b *testing.B) {
	spec := benchSpec(b, 0)
	sw, err := serve.Resolve(spec)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(filepath.Join(b.TempDir(), "ref.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Run(context.Background(), core.WithSink(core.NewJSONLFileSink(f))); err != nil {
		b.Fatal(err)
	}
	f.Close()
	full, err := os.ReadFile(f.Name())
	if err != nil {
		b.Fatal(err)
	}
	// Carve the reference into 4 shard payloads and synthesize each
	// shard's header, exactly what fetchShard hands the merge.
	nl := bytes.IndexByte(full, '\n')
	var parentHeader core.SweepHeader
	if err := json.Unmarshal(full[:nl], &parentHeader); err != nil {
		b.Fatal(err)
	}
	lines := bytes.SplitAfter(full[nl+1:], []byte("\n"))
	lines = lines[:len(lines)-1] // trailing empty split
	ranges := splitPlan(sw.Cells, 4)
	perCell := len(lines) / sw.Cells
	shards := make([]shardResult, len(ranges))
	for i, r := range ranges {
		h := parentHeader
		h.Parent = sw.Fingerprint
		h.ShardStart, h.ShardEnd = r.Start, r.End
		h.Fingerprint = core.ShardFingerprint(sw.Fingerprint, r.Start, r.End)
		h.Cells = r.End - r.Start
		shards[i] = shardResult{header: h,
			payload: bytes.Join(lines[r.Start*perCell:r.End*perCell], nil)}
	}
	spool := filepath.Join(b.TempDir(), "merged.jsonl")

	b.SetBytes(int64(len(full)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		header, err := parentHeaderBytes(shards[0].header, sw)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.Write(header)
		for _, s := range shards {
			buf.Write(s.payload)
		}
		if err := os.WriteFile(spool, buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	got, err := os.ReadFile(spool)
	if err != nil || !bytes.Equal(got, full) {
		b.Fatalf("merged bytes diverge from the reference (err %v)", err)
	}
}

// fullBenchSpec is the -full-scale fabric workload: 96 plan cells (four
// channels x 24 rows) against the demo spec's 12 - the scale at which
// distribution has to amortize its dispatch, polling, and merge overhead.
func fullBenchSpec(b *testing.B, iter int) serve.SweepSpec {
	b.Helper()
	rows := core.SampleRows(24)
	for i := range rows {
		rows[i] = 64 + (rows[i]+iter*7)%(hbm.NumRows-128)
	}
	raw := fmt.Sprintf(`{"kind":"ber","chips":[0],"identity_mapping":true,
		"config":{"Channels":[0,1,2,3],"Rows":%s,"Patterns":["Rowstripe0"],"Reps":1}}`, intsJSON(rows))
	var s serve.SweepSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFabricSweep compares sweep throughput local vs distributed
// across two in-process workers - the fabric's dispatch, polling, and
// merge overhead against the sweeps it parallelizes - at the demo scale
// (12 cells) and at -full scale (96 cells, under full/).
func BenchmarkFabricSweep(b *testing.B) {
	newBenchWorker := func(b *testing.B) string {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := serve.New(serve.Config{Store: st, Workers: 2, Jobs: 2, Log: telemetry.NewLogger(func(string, ...any) {})})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() { ts.Close(); srv.Drain() })
		return ts.URL
	}

	runLocal := func(b *testing.B, spec func(*testing.B, int) serve.SweepSpec) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			sw, err := serve.Resolve(spec(b, i))
			if err != nil {
				b.Fatal(err)
			}
			f, err := os.Create(filepath.Join(dir, "out.jsonl"))
			if err != nil {
				b.Fatal(err)
			}
			if err := sw.Run(context.Background(), core.WithSink(core.NewJSONLFileSink(f))); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	}
	runFabric := func(b *testing.B, spec func(*testing.B, int) serve.SweepSpec, shards int) {
		c, err := New(Config{Peers: []string{newBenchWorker(b), newBenchWorker(b)}, Shards: shards,
			PollInterval: 2 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		dir := b.TempDir()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sw, err := serve.Resolve(spec(b, i))
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Distribute(context.Background(), sw, filepath.Join(dir, "merged.jsonl")); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) { runLocal(b, benchSpec) })
	b.Run("workers=2", func(b *testing.B) { runFabric(b, benchSpec, 4) })
	b.Run("full/local", func(b *testing.B) { runLocal(b, fullBenchSpec) })
	b.Run("full/workers=2", func(b *testing.B) { runFabric(b, fullBenchSpec, 8) })
}
