package fabric

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRetryDoBacksOffAndSucceeds(t *testing.T) {
	t.Parallel()
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryDoExhaustsAttempts(t *testing.T) {
	t.Parallel()
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	calls := 0
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return sentinel })
	if calls != 3 || !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("Do = %v after %d calls, want wrapped sentinel after 3", err, calls)
	}
}

func TestRetryDoStopsOnPermanent(t *testing.T) {
	t.Parallel()
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	sentinel := errors.New("bad spec")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return Permanent(sentinel) })
	if calls != 1 || !errors.Is(err, sentinel) {
		t.Errorf("Do = %v after %d calls, want sentinel after 1", err, calls)
	}
}

func TestRetryDoRespectsContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Errorf("Do = %v after %d calls, want context.Canceled after 1", err, calls)
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	t.Parallel()
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, AttemptTimeout: 10 * time.Millisecond}
	slow := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		slow++
		if slow == 1 {
			<-ctx.Done() // a hung worker: only the attempt deadline frees us
			return ctx.Err()
		}
		return nil
	})
	if err != nil || slow != 2 {
		t.Errorf("Do = %v after %d calls, want nil after the timed-out attempt retries", err, slow)
	}
}
