package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// peer is one hbmrdd worker in the pool, with its quarantine state:
// consecutive failures quarantine it, and a successful /healthz probe
// reinstates it.
type peer struct {
	url string

	mu          sync.Mutex
	fails       int
	quarantined bool
}

// fail records one failure and reports whether this call newly
// quarantined the peer (so the caller counts each transition once).
func (p *peer) fail(after int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	if p.fails >= after && !p.quarantined {
		p.quarantined = true
		return true
	}
	return false
}

func (p *peer) ok() {
	p.mu.Lock()
	p.fails = 0
	p.quarantined = false
	p.mu.Unlock()
}

func (p *peer) isQuarantined() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantined
}

// healthzReply mirrors the worker's /healthz document: liveness plus the
// in-flight jobs with their shard lineage.
type healthzReply struct {
	OK   bool `json:"ok"`
	Jobs []struct {
		Fingerprint string `json:"fingerprint"`
		Parent      string `json:"parent"`
		ShardStart  int    `json:"shard_start"`
		ShardEnd    int    `json:"shard_end"`
	} `json:"jobs"`
}

// probe asks a peer's /healthz whether it is alive, returning its reply.
func (c *Coordinator) probe(ctx context.Context, p *peer) (healthzReply, error) {
	pctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return healthzReply{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return healthzReply{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return healthzReply{}, fmt.Errorf("fabric: %s healthz: %s", p.url, resp.Status)
	}
	var h healthzReply
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return healthzReply{}, err
	}
	if !h.OK {
		return healthzReply{}, fmt.Errorf("fabric: %s reports not ok", p.url)
	}
	return h, nil
}

func (c *Coordinator) probeTimeout() time.Duration {
	if c.cfg.ProbeTimeout > 0 {
		return c.cfg.ProbeTimeout
	}
	return 2 * time.Second
}

// acquire picks the next worker for a dispatch, round-robin over healthy
// peers. Quarantined peers are probed as they come up in rotation and
// reinstated when /healthz answers again; with every peer quarantined and
// unresponsive it returns an error, which cascades into the caller's
// local-execution fallback.
func (c *Coordinator) acquire(ctx context.Context) (*peer, error) {
	for range c.peers {
		c.mu.Lock()
		p := c.peers[c.next%len(c.peers)]
		c.next++
		c.mu.Unlock()
		if !p.isQuarantined() {
			return p, nil
		}
		if _, err := c.probe(ctx, p); err == nil {
			p.ok()
			mReinstates.Inc()
			c.logf("fabric: worker %s reinstated", p.url)
			return p, nil
		}
	}
	return nil, fmt.Errorf("fabric: all %d workers are quarantined", len(c.peers))
}

// findInFlight scans healthy peers' /healthz job lineage for a shard
// already queued or running under fp, so a retried dispatch reattaches to
// the worker that owns it instead of running the shard twice elsewhere.
func (c *Coordinator) findInFlight(ctx context.Context, fp string) *peer {
	for _, p := range c.peers {
		if p.isQuarantined() {
			continue
		}
		h, err := c.probe(ctx, p)
		if err != nil {
			continue
		}
		for _, j := range h.Jobs {
			if j.Fingerprint == fp {
				return p
			}
		}
	}
	return nil
}
