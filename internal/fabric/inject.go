package fabric

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultMode selects what a Fault does to a matched request.
type FaultMode string

const (
	// FaultDrop fails the request before it reaches the worker, like a
	// severed connection.
	FaultDrop FaultMode = "drop"
	// FaultDelay stalls the request (respecting its context, so attempt
	// deadlines fire) before passing it through - a slow worker.
	FaultDelay FaultMode = "delay"
	// FaultTruncate performs the request but cuts the response body short
	// - a torn stream.
	FaultTruncate FaultMode = "truncate"
	// Fault5xx answers 500 without reaching the worker.
	Fault5xx FaultMode = "5xx"
)

// Fault is one failure rule: requests whose URL path contains Match (and
// method equals Method, when set) suffer Mode, at most Count times.
type Fault struct {
	Match      string
	Method     string
	Mode       FaultMode
	Count      int
	Delay      time.Duration // FaultDelay stall
	TruncateTo int           // FaultTruncate: response bytes kept
}

// FaultInjector is an http.RoundTripper that wraps a real transport and
// injects failures per its rules - the chaos seam the fabric tests drive.
// It is safe for concurrent use.
type FaultInjector struct {
	Transport http.RoundTripper

	mu       sync.Mutex
	faults   []*Fault
	injected int
}

// NewFaultInjector wraps transport (nil = http.DefaultTransport).
func NewFaultInjector(transport http.RoundTripper, faults ...*Fault) *FaultInjector {
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &FaultInjector{Transport: transport, faults: faults}
}

// Injected reports how many requests were failure-injected.
func (fi *FaultInjector) Injected() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.injected
}

// match consumes one count of the first applicable fault, if any.
func (fi *FaultInjector) match(req *http.Request) *Fault {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for _, f := range fi.faults {
		if f.Count <= 0 {
			continue
		}
		if !strings.Contains(req.URL.Path, f.Match) {
			continue
		}
		if f.Method != "" && f.Method != req.Method {
			continue
		}
		f.Count--
		fi.injected++
		return f
	}
	return nil
}

func (fi *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	f := fi.match(req)
	if f == nil {
		return fi.Transport.RoundTrip(req)
	}
	switch f.Mode {
	case FaultDrop:
		return nil, fmt.Errorf("fabric: injected connection drop on %s %s", req.Method, req.URL.Path)
	case Fault5xx:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 injected",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(strings.NewReader("injected worker failure\n")),
			Request: req,
		}, nil
	case FaultDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.Delay):
		}
		return fi.Transport.RoundTrip(req)
	case FaultTruncate:
		resp, err := fi.Transport.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if f.TruncateTo < len(body) {
			body = body[:f.TruncateTo]
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	default:
		return fi.Transport.RoundTrip(req)
	}
}
