package fabric

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"hbmrd/internal/query"
	"hbmrd/internal/telemetry"
)

// TestMetricsEndToEnd is the observability acceptance test: a sharded
// sweep through the coordinator-fronted service followed by a repeated
// aggregation query must move the counters of every instrumented layer
// - engine, fabric, store, query, HTTP - and the deltas must be visible
// through the front service's /metrics exposition. Deliberately not
// parallel: it reads the process-wide registry before and after.
func TestMetricsEndToEnd(t *testing.T) {
	cells := telemetry.Default.Counter("hbmrd_sweep_cells_total", telemetry.L("kind", "ber"))
	dispatched := telemetry.Default.Counter("hbmrd_fabric_shards_dispatched_total")
	mergesFull := telemetry.Default.Counter("hbmrd_fabric_merges_total", telemetry.L("outcome", "full"))
	puts := telemetry.Default.Counter("hbmrd_store_puts_total")
	runs := telemetry.Default.Counter("hbmrd_query_runs_total")
	hits := telemetry.Default.Counter("hbmrd_query_cache_hits_total")
	misses := telemetry.Default.Counter("hbmrd_query_cache_misses_total")

	before := map[string]int64{
		"cells":      cells.Value(),
		"dispatched": dispatched.Value(),
		"merges":     mergesFull.Value(),
		"puts":       puts.Value(),
		"runs":       runs.Value(),
		"hits":       hits.Value(),
		"misses":     misses.Value(),
	}

	w1, _ := newWorker(t, 2)
	w2, _ := newWorker(t, 2)
	_, ts := frontService(t, []string{w1, w2}, nil, testPolicy())

	spec := testSpec(t, "")
	stream := submitAndFetch(t, ts.URL, spec)
	nl := bytes.IndexByte(stream, '\n')
	var header struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(stream[:nl], &header); err != nil {
		t.Fatal(err)
	}

	qspec, err := query.FigureSpec("fig4", header.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	qJSON, err := json.Marshal(qspec)
	if err != nil {
		t.Fatal(err)
	}
	post := func() string {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(qJSON))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /query: %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Hbmrd-Query-Cache")
	}
	if c := post(); c != "miss" {
		t.Errorf("first query cache = %q, want miss", c)
	}
	if c := post(); c != "hit" {
		t.Errorf("second query cache = %q, want hit", c)
	}

	// Engine: 12 plan cells executed across the worker shards (all peers
	// share this process, and so this registry). Fabric: 4 shards, one
	// full merge. Store: each worker finalizes its shards and the front
	// service finalizes the merged sweep. Query: exactly one miss then
	// one hit. (Poll-wait stays unasserted: shards this small can finish
	// before the first status-poll sleep.)
	deltas := []struct {
		name string
		got  int64
		min  int64
	}{
		{"cells", cells.Value() - before["cells"], 12},
		{"dispatched", dispatched.Value() - before["dispatched"], 4},
		{"merges_full", mergesFull.Value() - before["merges"], 1},
		{"puts", puts.Value() - before["puts"], 3},
		{"runs", runs.Value() - before["runs"], 2},
		{"hits", hits.Value() - before["hits"], 1},
		{"misses", misses.Value() - before["misses"], 1},
	}
	for _, d := range deltas {
		if d.got < d.min {
			t.Errorf("%s delta = %d, want >= %d", d.name, d.got, d.min)
		}
	}

	// The same state is scrapeable from the front service.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	expo := string(body)
	for _, want := range []string{
		"# TYPE hbmrd_sweep_cells_total counter",
		`hbmrd_sweep_cells_total{kind="ber"}`,
		"hbmrd_fabric_shards_dispatched_total",
		`hbmrd_fabric_merges_total{outcome="full"}`,
		"# TYPE hbmrd_fabric_poll_wait_seconds histogram",
		"hbmrd_fabric_poll_wait_seconds_count",
		"hbmrd_store_puts_total",
		"hbmrd_query_cache_hits_total",
		`hbmrd_http_requests_total{code="200",route="query"}`,
		`hbmrd_serve_sweeps_completed_total{status="done"}`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}
