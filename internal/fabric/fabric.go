// Package fabric is the distributed sweep coordinator: it splits one
// sweep's plan into contiguous cell-range shards, dispatches them to a
// pool of hbmrdd workers over the service's ordinary HTTP surface, and
// merges the shard streams back into the single-sweep spool file.
//
// The byte-identity contract: a sweep distributed across any number of
// workers - including workers that crash, hang, answer 5xx, or tear
// their streams mid-body - produces a final JSONL file byte-identical to
// the same sweep executed locally and uninterrupted. The mechanism is
// the engine's own determinism: a shard is the deterministic
// sub-fingerprint of its parent range (core.ShardFingerprint), its
// payload is exactly the parent's record lines for that range, and the
// merged file is the parent header plus the contiguous successful shard
// payloads - a valid checkpoint the engine's Checkpoint/WithResume
// machinery extends locally to heal any gap. Failure never costs
// correctness, only the locality of the remaining work.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"hbmrd/internal/core"
	"hbmrd/internal/serve"
	"hbmrd/internal/telemetry"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Peers are the base URLs of the hbmrdd workers (required).
	Peers []string
	// Shards is the target shard count per sweep (default 2 per peer),
	// clamped to the sweep's plan size.
	Shards int
	// Retry is the backoff discipline for per-shard dispatch.
	Retry Policy
	// ShardTimeout bounds one shard end to end - submit, poll, fetch,
	// across all retries (default 2m).
	ShardTimeout time.Duration
	// PollInterval paces shard status polling (default 25ms). The first
	// polls of a shard run at this interval; once a shard has survived a
	// couple of polls the interval grows geometrically (with jitter) up
	// to PollMaxInterval, so long shards stop burning a request every
	// 25ms while tiny shards keep their fast completion detection - the
	// poll-overhead follow-on the hbmrd_fabric_poll_wait_seconds metric
	// and BenchmarkFabricOverhead measure.
	PollInterval time.Duration
	// PollMaxInterval caps the grown poll interval (default 20x
	// PollInterval).
	PollMaxInterval time.Duration
	// QuarantineAfter is the consecutive-failure count that quarantines a
	// worker (default 2); a quarantined worker rejoins when its /healthz
	// answers again.
	QuarantineAfter int
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// Client issues all worker requests (default http.DefaultClient); the
	// chaos tests plug a FaultInjector transport in here.
	Client *http.Client
	// Log receives coordinator log lines (default: discard; wrap any
	// printf-shaped sink with telemetry.NewLogger).
	Log *telemetry.Logger
	// Tracer, when set, receives per-shard spans (dispatch through
	// fetch) and the merge span for every distributed sweep, keyed by
	// the parent fingerprint.
	Tracer *telemetry.Tracer
}

// Coordinator distributes sweeps over a worker pool. Plug its Distribute
// method into serve.Config.Distribute (or call it directly).
type Coordinator struct {
	cfg    Config
	client *http.Client
	peers  []*peer

	mu   sync.Mutex
	next int
}

// New builds a Coordinator over cfg.Peers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("fabric: config needs at least one peer")
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	c := &Coordinator{cfg: cfg, client: client}
	for _, u := range cfg.Peers {
		c.peers = append(c.peers, &peer{url: u})
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	c.cfg.Log.Infof(format, args...)
}

func (c *Coordinator) quarantineAfter() int {
	if c.cfg.QuarantineAfter > 0 {
		return c.cfg.QuarantineAfter
	}
	return 2
}

func (c *Coordinator) pollInterval() time.Duration {
	if c.cfg.PollInterval > 0 {
		return c.cfg.PollInterval
	}
	return 25 * time.Millisecond
}

func (c *Coordinator) pollMaxInterval() time.Duration {
	if c.cfg.PollMaxInterval > 0 {
		return c.cfg.PollMaxInterval
	}
	return 20 * c.pollInterval()
}

// splitPlan cuts cells into n contiguous near-equal ranges.
func splitPlan(cells, n int) []serve.ShardSpec {
	if n > cells {
		n = cells
	}
	if n < 1 {
		n = 1
	}
	base, rem := cells/n, cells%n
	ranges := make([]serve.ShardSpec, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		ranges = append(ranges, serve.ShardSpec{Start: start, End: start + size})
		start += size
	}
	return ranges
}

func (c *Coordinator) shardCount() int {
	if c.cfg.Shards > 0 {
		return c.cfg.Shards
	}
	return 2 * len(c.peers)
}

// shardResult is one dispatched shard's outcome.
type shardResult struct {
	header  core.SweepHeader
	payload []byte
	err     error
}

// Distribute executes sw across the worker pool and assembles the merged
// stream at spool. On full success the spool holds the complete sweep,
// byte-identical to a local run, and Distribute returns nil. On partial
// success it holds the parent header plus the contiguous successful
// shard prefix - a valid checkpoint - and Distribute returns an error,
// which tells the serving layer to finish the remainder locally through
// its ordinary resume path. Matches the serve.Config.Distribute contract.
func (c *Coordinator) Distribute(ctx context.Context, sw *serve.Sweep, spool string) error {
	if !sw.Shardable() {
		return fmt.Errorf("fabric: sweep %s is not shardable", sw.Fingerprint)
	}
	distSpan := c.cfg.Tracer.Start(sw.Fingerprint, "distribute", "cells", sw.Cells, "peers", len(c.peers))
	ranges := splitPlan(sw.Cells, c.shardCount())
	c.logf("fabric: sweep %s: %d cells across %d shards on %d workers",
		sw.Fingerprint, sw.Cells, len(ranges), len(c.peers))

	results := make([]shardResult, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r serve.ShardSpec) {
			defer wg.Done()
			results[i] = c.dispatch(ctx, sw, r)
		}(i, r)
	}
	wg.Wait()

	// Merge the contiguous successful prefix. A later shard with an
	// earlier gap cannot be used: record replay is strictly plan-ordered,
	// so only an unbroken prefix is a valid checkpoint.
	k := len(ranges)
	for i := range results {
		if results[i].err != nil {
			c.logf("fabric: sweep %s shard [%d:%d) failed: %v",
				sw.Fingerprint, ranges[i].Start, ranges[i].End, results[i].err)
			if i < k {
				k = i
			}
		}
	}
	if k == 0 {
		mMergeNone.Inc()
		err := fmt.Errorf("fabric: no usable shard prefix for %s (first shard: %w)", sw.Fingerprint, results[0].err)
		distSpan.End("merged_shards", 0, "shards", len(ranges), "err", err.Error())
		return err
	}

	mergeSpan := c.cfg.Tracer.Start(sw.Fingerprint, "merge", "shards", k)
	header, err := parentHeaderBytes(results[0].header, sw)
	if err != nil {
		mMergeNone.Inc()
		mergeSpan.End("err", err.Error())
		distSpan.End("merged_shards", 0, "shards", len(ranges), "err", err.Error())
		return err
	}
	var buf bytes.Buffer
	buf.Write(header)
	for _, res := range results[:k] {
		buf.Write(res.payload)
	}
	// A previous attempt may have left a longer local checkpoint at the
	// spool; keep whichever prefix is further along.
	if fi, err := os.Stat(spool); err == nil && k < len(ranges) && fi.Size() >= int64(buf.Len()) {
		mMergeNone.Inc()
		err := fmt.Errorf("fabric: merged %d of %d shards for %s, but the existing spool is further along; resuming it locally",
			k, len(ranges), sw.Fingerprint)
		mergeSpan.End("err", err.Error())
		distSpan.End("merged_shards", k, "shards", len(ranges), "err", err.Error())
		return err
	}
	if err := os.WriteFile(spool, buf.Bytes(), 0o644); err != nil {
		mMergeNone.Inc()
		err = fmt.Errorf("fabric: writing merged spool: %w", err)
		mergeSpan.End("err", err.Error())
		distSpan.End("merged_shards", k, "shards", len(ranges), "err", err.Error())
		return err
	}
	mMergeBytes.Add(int64(buf.Len()))
	mergeSpan.End("bytes", buf.Len())
	if k < len(ranges) {
		mMergePartial.Inc()
		err := fmt.Errorf("fabric: merged %d of %d shards for %s; finishing cells %d.. locally",
			k, len(ranges), sw.Fingerprint, ranges[k].Start)
		distSpan.End("merged_shards", k, "shards", len(ranges), "err", err.Error())
		return err
	}
	mMergeFull.Inc()
	c.logf("fabric: sweep %s merged from %d shards (%d bytes)", sw.Fingerprint, len(ranges), buf.Len())
	distSpan.End("merged_shards", k, "shards", len(ranges), "bytes", buf.Len())
	return nil
}

// parentHeaderBytes reconstructs the parent sweep's exact header line
// from a shard's header: same fields, shard lineage cleared. The sink
// writes headers with json.Encoder, so a marshal of the restored struct
// is byte-identical to what a local run would have written.
func parentHeaderBytes(shard core.SweepHeader, sw *serve.Sweep) ([]byte, error) {
	if shard.Parent != sw.Fingerprint {
		return nil, fmt.Errorf("fabric: shard header parent %s does not match sweep %s", shard.Parent, sw.Fingerprint)
	}
	h := shard
	h.Fingerprint = sw.Fingerprint
	h.Cells = sw.Cells
	h.Parent, h.ShardStart, h.ShardEnd = "", 0, 0
	b, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// dispatch runs one shard to completion on some healthy worker, retrying
// per the policy, under the per-shard deadline.
func (c *Coordinator) dispatch(ctx context.Context, sw *serve.Sweep, r serve.ShardSpec) shardResult {
	fp := core.ShardFingerprint(sw.Fingerprint, r.Start, r.End)
	mShardsDispatched.Inc()
	span := c.cfg.Tracer.Start(sw.Fingerprint, "shard", "start", r.Start, "end", r.End, "shard_fp", fp)
	spec := sw.Spec
	spec.Shard = &serve.ShardSpec{Start: r.Start, End: r.End}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		span.End("err", err.Error())
		return shardResult{err: err}
	}
	if c.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.ShardTimeout)
		defer cancel()
	}
	var res shardResult
	attempt := 0
	var lastPeer string
	err = c.cfg.Retry.Do(ctx, func(actx context.Context) error {
		attempt++
		mShardAttempts.Inc()
		if attempt > 1 {
			mShardRetries.Inc()
		}
		// On a retry, a previous attempt's shard may still be in flight on
		// a worker we merely lost patience with: reattach via the healthz
		// shard lineage instead of starting it again elsewhere.
		var p *peer
		if attempt > 1 {
			if p = c.findInFlight(actx, fp); p != nil {
				mShardReattaches.Inc()
				c.logf("fabric: shard %s already in flight on %s; reattaching", fp, p.url)
			}
		}
		if p == nil {
			var aerr error
			if p, aerr = c.acquire(actx); aerr != nil {
				return Permanent(aerr)
			}
		}
		lastPeer = p.url
		h, payload, rerr := c.runShard(actx, p, fp, specJSON)
		if rerr != nil {
			if p.fail(c.quarantineAfter()) {
				mQuarantines.Inc()
				c.logf("fabric: worker %s quarantined after consecutive failures", p.url)
			}
			return fmt.Errorf("%s: %w", p.url, rerr)
		}
		p.ok()
		res.header, res.payload = h, payload
		return nil
	})
	if err != nil {
		mShardFailures.Inc()
		span.End("attempts", attempt, "peer", lastPeer, "err", err.Error())
		return shardResult{err: err}
	}
	span.End("attempts", attempt, "peer", lastPeer, "bytes", len(res.payload))
	return res
}

// statusReply covers both shapes of /sweeps/<fp>/status: a live job
// (status, error) and a stored sweep (status "cached" plus counters).
type statusReply struct {
	Status  string `json:"status"`
	Error   string `json:"error"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

// runShard performs one attempt: submit the shard spec, poll it to the
// store, fetch the stream, and validate it against the worker's own
// record and byte counts (a short body is a torn stream, not a result).
func (c *Coordinator) runShard(ctx context.Context, p *peer, fp string, specJSON []byte) (core.SweepHeader, []byte, error) {
	var zero core.SweepHeader
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/sweeps", bytes.NewReader(specJSON))
	if err != nil {
		return zero, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return zero, nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return zero, nil, err
	}
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		// The spec itself is broken; no worker will ever accept it.
		return zero, nil, Permanent(fmt.Errorf("fabric: shard spec rejected: %s", bytes.TrimSpace(body)))
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		return zero, nil, fmt.Errorf("fabric: submit: %s: %s", resp.Status, bytes.TrimSpace(body))
	}

	st, err := c.pollStatus(ctx, p, fp)
	if err != nil {
		return zero, nil, err
	}
	return c.fetchShard(ctx, p, fp, st)
}

// pollStatus waits for the shard to reach the worker's store. The
// wait between polls starts at PollInterval and, once the shard has
// survived two polls (so tiny shards still complete at full speed),
// grows 1.5x per poll up to PollMaxInterval with subtractive jitter —
// the hbmrd_fabric_poll_wait_seconds metric showed fixed-interval
// polling dominating the fabric's overhead on small sweeps (PR 8
// follow-on; see BenchmarkFabricOverhead).
func (c *Coordinator) pollStatus(ctx context.Context, p *peer, fp string) (statusReply, error) {
	interval, maxInterval := c.pollInterval(), c.pollMaxInterval()
	polls := 0
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/sweeps/"+fp+"/status", nil)
		if err != nil {
			return statusReply{}, err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return statusReply{}, err
		}
		var st statusReply
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return statusReply{}, fmt.Errorf("fabric: status: %s", resp.Status)
		}
		if derr != nil {
			return statusReply{}, derr
		}
		switch st.Status {
		case "cached":
			return st, nil
		case serve.StatusFailed:
			return statusReply{}, fmt.Errorf("fabric: shard failed on worker: %s", st.Error)
		case serve.StatusCheckpointed:
			// The worker drained mid-shard; its spool keeps the valid
			// prefix, and a resubmission (this retry or a later one)
			// resumes it.
			return statusReply{}, fmt.Errorf("fabric: worker checkpointed the shard mid-run")
		}
		polls++
		wait := interval
		if wait > 0 {
			wait -= time.Duration(rand.Float64() * 0.2 * float64(wait))
		}
		mPollWait.Observe(wait.Seconds())
		select {
		case <-ctx.Done():
			return statusReply{}, ctx.Err()
		case <-time.After(wait):
		}
		if polls >= 2 {
			interval = interval * 3 / 2
			if interval > maxInterval {
				interval = maxInterval
			}
		}
	}
}

// fetchShard downloads a stored shard stream and validates it.
func (c *Coordinator) fetchShard(ctx context.Context, p *peer, fp string, st statusReply) (core.SweepHeader, []byte, error) {
	var zero core.SweepHeader
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/sweeps/"+fp, nil)
	if err != nil {
		return zero, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return zero, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return zero, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return zero, nil, fmt.Errorf("fabric: fetch: %s", resp.Status)
	}
	mFetchBytes.Add(int64(len(body)))
	if int64(len(body)) != st.Bytes {
		return zero, nil, fmt.Errorf("fabric: torn shard stream: got %d bytes, worker stored %d", len(body), st.Bytes)
	}
	i := bytes.IndexByte(body, '\n')
	if i < 0 {
		return zero, nil, fmt.Errorf("fabric: shard stream has no header line")
	}
	var h core.SweepHeader
	if err := json.Unmarshal(body[:i], &h); err != nil || h.Format == 0 {
		return zero, nil, fmt.Errorf("fabric: shard stream header is invalid: %v", err)
	}
	if h.Fingerprint != fp {
		return zero, nil, fmt.Errorf("fabric: shard stream fingerprint %s, want %s", h.Fingerprint, fp)
	}
	payload := body[i+1:]
	if got := bytes.Count(payload, []byte("\n")); got != st.Records {
		return zero, nil, fmt.Errorf("fabric: shard stream holds %d records, worker stored %d", got, st.Records)
	}
	return h, payload, nil
}
