package core

import (
	"reflect"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/rowmap"
)

func smallFleet(t *testing.T, indices ...int) []*TestChip {
	t.Helper()
	fleet, err := NewFleet(indices, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestSampleRows(t *testing.T) {
	rows := SampleRows(16)
	if len(rows) != 16 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r < 2 || r > hbm.NumRows-3 {
			t.Errorf("row %d out of safe range", r)
		}
		if i > 0 && rows[i-1] >= r {
			t.Error("rows not strictly increasing")
		}
	}
	if rows[0] != 2 || rows[len(rows)-1] != hbm.NumRows-3 {
		t.Error("sample does not span the bank")
	}
	if got := SampleRows(1); len(got) != 1 {
		t.Error("n=1 broken")
	}
	if SampleRows(0) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestRegionRows(t *testing.T) {
	rows := RegionRows(4)
	hasLow, hasMid, hasHigh := false, false, false
	for _, r := range rows {
		switch {
		case r < 100:
			hasLow = true
		case r > hbm.NumRows/2-100 && r < hbm.NumRows/2+100:
			hasMid = true
		case r > hbm.NumRows-100:
			hasHigh = true
		}
	}
	if !hasLow || !hasMid || !hasHigh {
		t.Errorf("regions not covered: %v", rows)
	}
}

// TestRegionRowsInGeometries pins RegionRowsIn across organizations, down
// to geometries so small that the beginning/middle/end windows collide or
// would (without clamping) leave the valid victim range [2, Rows-3].
func TestRegionRowsInGeometries(t *testing.T) {
	cases := []struct {
		name  string
		rows  int
		count int
		want  []int // nil means "only check the invariants"
	}{
		{name: "paper-hbm2", rows: hbm.NumRows, count: 4},
		{name: "paper-hbm2-large-count", rows: hbm.NumRows, count: 128},
		{name: "mid", rows: 1024, count: 8},
		{name: "windows-collide", rows: 24, count: 8},
		{name: "tiny", rows: 10, count: 8, want: []int{2, 3, 4, 5, 6, 7}},
		{name: "one-victim", rows: 5, count: 3, want: []int{2}},
		{name: "no-victims", rows: 4, count: 2, want: nil},
		{name: "zero-count", rows: 1024, count: 0, want: nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := hbm.Geometry{Rows: tc.rows}
			got := RegionRowsIn(g, tc.count)
			if tc.want != nil || tc.rows < 5 || tc.count <= 0 {
				if !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("RegionRowsIn(%d rows, %d) = %v, want %v", tc.rows, tc.count, got, tc.want)
				}
				return
			}
			if len(got) == 0 {
				t.Fatalf("RegionRowsIn(%d rows, %d) returned no rows", tc.rows, tc.count)
			}
			for i, r := range got {
				if r < 2 || r > tc.rows-3 {
					t.Errorf("row %d outside the valid victim range [2, %d]", r, tc.rows-3)
				}
				if i > 0 && got[i-1] >= r {
					t.Error("rows not strictly increasing")
				}
			}
			if got[0] != 2 {
				t.Errorf("first window does not start at row 2: %v", got[0])
			}
		})
	}
}

// TestSampleRowsInTinyGeometry: a geometry with no valid victim rows must
// yield nil, not out-of-range rows.
func TestSampleRowsInTinyGeometry(t *testing.T) {
	if got := SampleRowsIn(hbm.Geometry{Rows: 4}, 8); got != nil {
		t.Errorf("SampleRowsIn on a 4-row bank = %v, want nil", got)
	}
	for _, r := range SampleRowsIn(hbm.Geometry{Rows: 8}, 8) {
		if r < 2 || r > 5 {
			t.Errorf("row %d outside [2, 5]", r)
		}
	}
}

func TestNewFleetErrors(t *testing.T) {
	if _, err := NewFleet(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewFleet([]int{7}); err == nil {
		t.Error("chip 7 accepted")
	}
}

func TestRunBERBasics(t *testing.T) {
	fleet := smallFleet(t, 0)
	cfg := BERConfig{
		Channels: []int{0, 3},
		Rows:     SampleRows(6),
		Patterns: []pattern.Pattern{pattern.Checkered0, pattern.Rowstripe0},
		Reps:     2,
	}
	recs, err := RunBER(fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 chip x 2 channels x 1 pc x 1 bank x 6 rows x (2 patterns + WCDP).
	want := 2 * 6 * 3
	if len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	wcdp := 0
	for _, r := range recs {
		if r.BERPercent < 0 || r.BERPercent > 7 {
			t.Errorf("BER %.3f%% out of plausible range", r.BERPercent)
		}
		if r.WCDP {
			wcdp++
		}
	}
	if wcdp != 2*6 {
		t.Errorf("%d WCDP records, want %d", wcdp, 2*6)
	}
	// Mean BER across rows should be in the chip's calibrated ballpark.
	mean := 0.0
	n := 0
	for _, r := range recs {
		if r.WCDP {
			mean += r.BERPercent
			n++
		}
	}
	mean /= float64(n)
	if mean < 0.2 || mean > 3.5 {
		t.Errorf("mean WCDP BER %.3f%% far from Chip 0's ~1.3%%", mean)
	}
}

func TestRunBERDeterministic(t *testing.T) {
	cfg := BERConfig{Channels: []int{1}, Rows: []int{5000, 9000}, Patterns: []pattern.Pattern{pattern.Checkered1}, Reps: 1}
	a, err := RunBER(smallFleet(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBER(smallFleet(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical experiments on fresh chips diverged")
	}
}

func TestRunBERMasksForFig17(t *testing.T) {
	fleet := smallFleet(t, 4)
	recs, err := RunBER(fleet, BERConfig{
		Channels: []int{0}, Rows: SampleRows(4),
		Patterns: []pattern.Pattern{pattern.Checkered0}, Reps: 2, CollectMasks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	withMask := 0
	for _, r := range recs {
		if r.Mask != nil {
			withMask++
			flips := 0
			for _, b := range r.Mask {
				for x := b; x != 0; x &= x - 1 {
					flips++
				}
			}
			if r.BERPercent > 0 && flips == 0 {
				t.Error("nonzero BER but empty mask")
			}
		}
	}
	if withMask == 0 {
		t.Error("no masks collected")
	}
}

func TestRunHCFirstNearFloor(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 5)
	recs, err := RunHCFirst(fleet, HCFirstConfig{
		Channels: []int{0, 2, 4, 6},
		Rows:     SampleRows(12),
		Patterns: []pattern.Pattern{pattern.Checkered0},
		Reps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	minHC := 1 << 30
	found := 0
	for _, r := range recs {
		if r.WCDP || !r.Found {
			continue
		}
		found++
		if r.HCFirst < minHC {
			minHC = r.HCFirst
		}
	}
	if found == 0 {
		t.Fatal("no HCfirst found anywhere")
	}
	floor := fleet[0].Chip.Profile().HCFloor
	if float64(minHC) < floor*0.4 || float64(minHC) > floor*4 {
		t.Errorf("min HCfirst %d far from Chip 5 floor %.0f", minHC, floor)
	}
}

func TestWCDPPicksSmallestHCFirst(t *testing.T) {
	fleet := smallFleet(t, 0)
	recs, err := RunHCFirst(fleet, HCFirstConfig{
		Channels: []int{0},
		Rows:     []int{4096, 8000},
		Reps:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRow := map[int][]HCFirstRecord{}
	for _, r := range recs {
		byRow[r.Row] = append(byRow[r.Row], r)
	}
	for row, rs := range byRow {
		var wcdp *HCFirstRecord
		minHC := 1 << 30
		for i := range rs {
			if rs[i].WCDP {
				wcdp = &rs[i]
			} else if rs[i].Found && rs[i].HCFirst < minHC {
				minHC = rs[i].HCFirst
			}
		}
		if wcdp == nil {
			t.Fatalf("row %d has no WCDP record", row)
		}
		if wcdp.HCFirst != minHC {
			t.Errorf("row %d: WCDP HCfirst %d != min %d", row, wcdp.HCFirst, minHC)
		}
	}
}

func TestRunHCNthMonotoneAndFig12(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 1)
	recs, err := RunHCNth(fleet, HCNthConfig{
		Channels: []int{0},
		Rows:     SampleRows(20),
		Patterns: []pattern.Pattern{pattern.Checkered0},
		MaxFlips: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	okRecs := 0
	for _, r := range recs {
		if !r.Found {
			continue
		}
		okRecs++
		if len(r.HC) != 10 {
			t.Fatalf("row %d: %d hammer counts", r.Row, len(r.HC))
		}
		for k := 1; k < len(r.HC); k++ {
			if r.HC[k] < r.HC[k-1] {
				t.Errorf("row %d: HC%d (%d) < HC%d (%d)", r.Row, k+1, r.HC[k], k, r.HC[k-1])
			}
		}
		norm := r.Normalized()
		if norm[0] != 1 {
			t.Error("normalized HC1 must be 1")
		}
		if norm[9] < 1.0 || norm[9] > 9 {
			t.Errorf("row %d: HC10/HC1 = %.2f out of plausible range", r.Row, norm[9])
		}
	}
	if okRecs < 10 {
		t.Fatalf("only %d complete rows", okRecs)
	}
	stats12, err := ComputeFig12(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats12) != 1 || stats12[0].Chip != 1 {
		t.Fatalf("fig12 stats: %+v", stats12)
	}
	if stats12[0].Pearson > 0.2 {
		t.Errorf("Pearson %.2f strongly positive; paper reports -0.34..-0.45", stats12[0].Pearson)
	}
}

func TestRunVariabilityRanges(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 0)
	recs, err := RunVariability(fleet, VariabilityConfig{
		Rows:       SampleRows(8),
		Iterations: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, r := range recs {
		if !r.MeasuredRatios {
			continue
		}
		measured++
		if r.Ratio() < 1 {
			t.Errorf("row %d: max/min ratio %.3f below 1", r.Row, r.Ratio())
		}
		if r.Ratio() > 3 {
			t.Errorf("row %d: ratio %.3f beyond paper's ~2.23 max", r.Row, r.Ratio())
		}
	}
	if measured == 0 {
		t.Fatal("no measurable rows")
	}
}

func TestRowPressBERGrowsWithTAggON(t *testing.T) {
	fleet := smallFleet(t, 3)
	recs, err := RunRowPressBER(fleet, RowPressBERConfig{
		Channels: []int{0},
		Rows:     RegionRows(3),
		TAggONs:  []hbm.TimePS{29 * hbm.NS, 116 * hbm.NS, 3_900 * hbm.NS, 35_100 * hbm.NS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("%d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].BERPercent < recs[i-1].BERPercent {
			t.Errorf("BER fell from %.3f%% to %.3f%% as tAggON grew to %d",
				recs[i-1].BERPercent, recs[i].BERPercent, recs[i].TAggON)
		}
	}
	last := recs[len(recs)-1]
	if last.BERPercent < 20 {
		t.Errorf("BER at 35.1us = %.2f%%, paper sees ~50%%", last.BERPercent)
	}
	if last.RetentionBERPercent <= 0 {
		t.Error("long RowPress run reported no retention baseline")
	}
	if last.RetentionBERPercent > 1 {
		t.Errorf("retention BER %.3f%% too high (paper: 0.134%% at 10.53 s)", last.RetentionBERPercent)
	}
}

func TestRowPressHCFirstShrinksWithTAggON(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 2)
	recs, err := RunRowPressHC(fleet, RowPressHCConfig{
		Channels: []int{0},
		Rows:     SampleRows(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	byRow := map[int][]RowPressHCRecord{}
	for _, r := range recs {
		byRow[r.Row] = append(byRow[r.Row], r)
	}
	for row, rs := range byRow {
		for i := 1; i < len(rs); i++ {
			if rs[i].Found && rs[i-1].Found && rs[i].HCFirst > rs[i-1].HCFirst {
				t.Errorf("row %d: HCfirst grew from %d to %d with larger tAggON", row, rs[i-1].HCFirst, rs[i].HCFirst)
			}
		}
		final := rs[len(rs)-1] // 16 ms
		if final.Found && final.HCFirst != 1 {
			t.Errorf("row %d: HCfirst at 16 ms = %d, paper observes 1", row, final.HCFirst)
		}
		// The paper picked 16 ms so one activation per aggressor fits the
		// 32 ms refresh window exactly; the eligibility filter must agree.
		if final.Found && final.HCFirst == 1 && !final.WithinWindow {
			t.Errorf("row %d: single 16 ms activation flagged outside the refresh window", row)
		}
	}
}

func TestRunBypassDummyThreshold(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 0)
	cfg := BypassConfig{
		Victims:     []int{6000, 9000},
		DummyCounts: []int{2, 3, 4, 6},
		AggActs:     []int{26},
		Windows:     8205,
	}
	protected, bypassed := []int{2, 3}, []int{4, 6}
	if testing.Short() {
		// One victim and the two decisive dummy counts around the paper's
		// ">=4 dummies" threshold; the full run keeps the whole sweep.
		cfg.Victims = []int{6000}
		cfg.DummyCounts = []int{2, 4}
		protected, bypassed = []int{2}, []int{4}
	}
	recs, err := RunBypass(fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	berByDummies := map[int]float64{}
	for _, r := range recs {
		berByDummies[r.Dummies] += r.BERPercent
	}
	for _, d := range protected {
		if berByDummies[d] != 0 {
			t.Errorf("%d dummies: BER %.4f%%, paper observes 0 (TRR protects)", d, berByDummies[d])
		}
	}
	for _, d := range bypassed {
		if berByDummies[d] == 0 {
			t.Errorf("%d dummies: BER 0, paper's bypass induces flips", d)
		}
	}
}

func TestScanSubarrayBoundaries(t *testing.T) {
	fleet := smallFleet(t, 0)
	bounds, err := ScanSubarrayBoundaries(fleet[0], SubarrayScanConfig{
		FromRow: 800, ToRow: 864,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 1 || bounds[0] != 832 {
		t.Errorf("discovered boundaries %v, want [832]", bounds)
	}
}

func TestReverseEngineerMappingOnSwizzledChip(t *testing.T) {
	t.Parallel()
	fleet, err := NewFleet([]int{0}) // default vendor swizzle mapping
	if err != nil {
		t.Fatal(err)
	}
	tc := fleet[0]
	logical := make([]int, 48)
	for i := range logical {
		logical[i] = i
	}
	paths, err := ReverseEngineerMapping(tc, SubarrayScanConfig{}, logical)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths recovered")
	}
	m := tc.Chip.Mapper()
	covered := 0
	for _, p := range paths {
		covered += len(p)
		for i := 1; i < len(p); i++ {
			a, b := m.ToPhysical(p[i-1]), m.ToPhysical(p[i])
			if a-b != 1 && b-a != 1 {
				t.Fatalf("path entries %d,%d map to non-adjacent physical rows %d,%d", p[i-1], p[i], a, b)
			}
		}
	}
	if covered < 40 {
		t.Errorf("paths cover only %d of 48 probed rows", covered)
	}
}

func TestRunAgingSkewsUp(t *testing.T) {
	fleet := smallFleet(t, 4)
	recs, err := RunAging(fleet, AgingConfig{
		BER: BERConfig{Channels: []int{0}, Rows: SampleRows(40), Reps: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeAging(recs)
	if s.RowsUp+s.RowsDown+s.RowsEqual != len(recs) {
		t.Error("summary counts do not add up")
	}
	if s.RowsUp == 0 {
		t.Error("no rows increased in BER after aging")
	}
	for _, p := range s.UpRatioPercentiles {
		if p < 1 {
			t.Errorf("up-ratio percentile %v below 1", p)
		}
	}
	// Age restored afterwards.
	if got := fleet[0].Chip.Model().AgeMonths(); got != fleet[0].Chip.Profile().AgeMonthsAtStart {
		t.Errorf("chip age not restored: %v", got)
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if len(t1) != 3 {
		t.Fatalf("Table 1 has %d rows", len(t1))
	}
	if t1[0].Bytes != [4]byte{0x00, 0xFF, 0x55, 0xAA} {
		t.Errorf("victim bytes %v", t1[0].Bytes)
	}
	if t1[1].Bytes != [4]byte{0xFF, 0x00, 0xAA, 0x55} {
		t.Errorf("aggressor bytes %v", t1[1].Bytes)
	}
	t2 := Table2()
	if len(t2) != 4 || t2[0].RowsPerBank != 16384 || t2[1].RowsPerBank != 3072 || t2[2].Channels != 3 {
		t.Errorf("Table 2 mismatch: %+v", t2)
	}
}

func TestFilterHelpers(t *testing.T) {
	recs := []BERRecord{{Chip: 0, BERPercent: 1}, {Chip: 1, BERPercent: 2}}
	got := FilterBER(recs, func(r BERRecord) bool { return r.Chip == 1 })
	if len(got) != 1 || got[0].BERPercent != 2 {
		t.Error("FilterBER broken")
	}
	if vs := BERValues(recs); len(vs) != 2 || vs[1] != 2 {
		t.Error("BERValues broken")
	}
	hres := []HCFirstRecord{{HCFirst: 5, Found: true}, {HCFirst: 9, Found: false}}
	if vs := HCValues(hres); len(vs) != 1 || vs[0] != 5 {
		t.Error("HCValues broken")
	}
	if got := FilterHCFirst(hres, func(r HCFirstRecord) bool { return r.Found }); len(got) != 1 {
		t.Error("FilterHCFirst broken")
	}
}
