package core

import (
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/trr"
)

// Ablation tests: vary the design parameters DESIGN.md calls out and check
// the system-level consequences move the way the mechanism predicts. These
// double as regression tests for the causal link between the TRR tracker
// design and the Fig 16 bypass threshold.

func ablationFleet(t *testing.T, trrCfg trr.Config) []*TestChip {
	t.Helper()
	fleet, err := NewFleet([]int{0},
		hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}),
		hbm.WithTRRConfig(trrCfg))
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// TestAblationTrackerSizeMovesBypassThreshold: the paper's ">=4 dummy rows"
// threshold is exactly the tracker's table size. Shrinking the table to 2
// entries must move the bypass threshold to 2 dummies.
func TestAblationTrackerSizeMovesBypassThreshold(t *testing.T) {
	t.Parallel()
	cfg := trr.DefaultConfig()
	cfg.TableSize = 2
	fleet := ablationFleet(t, cfg)

	dummyCounts, bypassed := []int{1, 2, 3}, []int{2, 3}
	if testing.Short() {
		dummyCounts, bypassed = []int{1, 2}, []int{2}
	}
	recs, err := RunBypass(fleet, BypassConfig{
		Victims:     []int{6000},
		DummyCounts: dummyCounts,
		AggActs:     []int{26},
		Windows:     8205,
	})
	if err != nil {
		t.Fatal(err)
	}
	ber := map[int]float64{}
	for _, r := range recs {
		ber[r.Dummies] = r.BERPercent
	}
	if ber[1] != 0 {
		t.Errorf("1 dummy vs 2-entry tracker: BER %.4f%%, want 0 (aggressor tracked)", ber[1])
	}
	for _, d := range bypassed {
		if ber[d] == 0 {
			t.Errorf("%d dummies vs 2-entry tracker: BER 0, want bypass", d)
		}
	}
}

// TestAblationTRRPeriodVisibleToSideChannel is covered in internal/utrr
// (DiscoverPeriod against an 11-REF engine); here we check the system-level
// effect: a *more frequent* TRR (period 2) still cannot stop the bypass
// pattern, because the tracker never sees the aggressors at all.
func TestAblationFrequentTRRStillBypassed(t *testing.T) {
	t.Parallel()
	cfg := trr.DefaultConfig()
	cfg.Period = 2
	fleet := ablationFleet(t, cfg)
	recs, err := RunBypass(fleet, BypassConfig{
		Victims:     []int{6000},
		DummyCounts: []int{6},
		AggActs:     []int{30},
		Windows:     8205,
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].BERPercent == 0 {
		t.Error("bypass defeated by a frequent TRR; the tracker design, not the cadence, should gate it")
	}
}

// TestAblationNoTRRMakesPlainHammeringWork: with the engine disabled, even
// the plain double-sided pattern (no dummies) flips bits under refresh.
func TestAblationNoTRRMakesPlainHammeringWork(t *testing.T) {
	t.Parallel()
	fleet := ablationFleet(t, trr.Config{Enabled: false})
	ch, err := fleet[0].Chip.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	ref := newBankRef(fleet[0], ch, 0, 0)
	const victim = 6000
	if err := ref.initPattern(victim, 3 /* Checkered0 */); err != nil {
		t.Fatal(err)
	}
	budget := fleet[0].Chip.Timing().ActBudgetPerREFI()
	agg := budget / 2
	for w := 0; w < 8205; w++ {
		if err := ch.HammerRows(0, 0,
			[]int{victim - 1, victim + 1}, []int{agg, budget - agg}, 0); err != nil {
			t.Fatal(err)
		}
		if err := ch.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	flips, err := ref.readFlips(victim, 0x55, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flips == 0 {
		t.Error("no bitflips without TRR; the protection ablation is vacuous")
	}
}

// TestAblationIdentifyThresholdGatesProtection: raising the identification
// threshold above the aggressor count disables rule (ii); with dummies
// absorbing rule (i)'s first-ACT slot, the victim flips even with only one
// dummy row.
func TestAblationIdentifyThresholdGatesProtection(t *testing.T) {
	t.Parallel()
	cfg := trr.DefaultConfig()
	cfg.IdentifyThreshold = 100 // far above any per-window count
	fleet := ablationFleet(t, cfg)
	recs, err := RunBypass(fleet, BypassConfig{
		Victims:     []int{6000},
		DummyCounts: []int{1},
		AggActs:     []int{30},
		Windows:     8205,
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].BERPercent == 0 {
		t.Error("victim protected although the count rule cannot fire and the first ACT is a dummy")
	}
}
