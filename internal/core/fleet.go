package core

import (
	"fmt"
	"sort"

	"hbmrd/internal/hbm"
)

// TestChip couples a chip with its identity in the study (Chip 0-5).
type TestChip struct {
	// Index is the paper's chip label (0-5).
	Index int
	// Chip is the device under test.
	Chip *hbm.Chip
}

// NewFleet builds the requested subset of the paper's six chips. ECC is
// disabled on every chip, as in all of the paper's experiments (§3.1).
func NewFleet(indices []int, opts ...hbm.Option) ([]*TestChip, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("core: empty fleet")
	}
	fleet := make([]*TestChip, 0, len(indices))
	for _, idx := range indices {
		chip, err := hbm.NewBuiltin(idx, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: building chip %d: %w", idx, err)
		}
		chip.SetECC(false)
		fleet = append(fleet, &TestChip{Index: idx, Chip: chip})
	}
	return fleet, nil
}

// AllChips lists the paper's six chip indices.
func AllChips() []int { return []int{0, 1, 2, 3, 4, 5} }

// NewFullFleet builds all six chips.
func NewFullFleet(opts ...hbm.Option) ([]*TestChip, error) {
	return NewFleet(AllChips(), opts...)
}

// SampleRows returns n physical victim rows spread evenly across a bank of
// the default (paper HBM2) geometry; see SampleRowsIn.
func SampleRows(n int) []int { return SampleRowsIn(hbm.DefaultGeometry(), n) }

// SampleRowsIn returns n physical victim rows spread evenly across a bank
// of geometry g, clamped away from the bank edges (victims need two
// physical neighbours on each side). The first, middle, and last regions of
// the bank are always represented, matching how the paper samples rows.
// Geometries too small to hold even one valid victim yield nil.
func SampleRowsIn(g hbm.Geometry, n int) []int {
	lo, hi := 2, g.Rows-3
	if n <= 0 || hi < lo {
		return nil
	}
	if n == 1 {
		return []int{g.Rows / 2}
	}
	rows := make([]int, 0, n)
	span := hi - lo
	for i := 0; i < n; i++ {
		rows = append(rows, lo+span*i/(n-1))
	}
	return dedupSorted(rows)
}

// RegionRows returns count physical rows from each of the beginning,
// middle, and end of a bank of the default (paper HBM2) geometry; see
// RegionRowsIn.
func RegionRows(count int) []int { return RegionRowsIn(hbm.DefaultGeometry(), count) }

// RegionRowsIn returns count physical rows from each of the beginning,
// middle, and end of a bank of geometry g (the paper's "first, middle, and
// last N rows" sampling for Figs 9, 11, and 14). Every returned row lies in
// the valid victim range [2, Rows-3]; on geometries too small to hold three
// disjoint windows the count is clamped and colliding windows merge (the
// result is then shorter than 3*count but never empty, unless no valid
// victim row exists at all).
func RegionRowsIn(g hbm.Geometry, count int) []int {
	lo, hi := 2, g.Rows-3
	if count <= 0 || hi < lo {
		return nil
	}
	if avail := hi - lo + 1; count > avail {
		count = avail
	}
	starts := []int{lo, g.Rows/2 - count/2, g.Rows - 3 - count}
	rows := make([]int, 0, 3*count)
	for _, s := range starts {
		if s < lo {
			s = lo
		}
		if s > hi-count+1 {
			s = hi - count + 1
		}
		for i := 0; i < count; i++ {
			rows = append(rows, s+i)
		}
	}
	return dedupSorted(rows)
}

// fleetGeometry returns the organization shared by the fleet's chips
// (experiment defaults derive from the first chip; mixed-geometry fleets
// should set explicit Channels/Rows in the experiment config).
func fleetGeometry(fleet []*TestChip) hbm.Geometry {
	if len(fleet) > 0 {
		return fleet[0].Chip.Geometry()
	}
	return hbm.DefaultGeometry()
}

// fleetTiming returns the timing table experiment defaults derive from
// (the first chip's; mixed-timing fleets should set explicit config
// fields).
func fleetTiming(fleet []*TestChip) hbm.Timing {
	if len(fleet) > 0 {
		return fleet[0].Chip.Timing()
	}
	return hbm.DefaultTiming()
}

func dedupSorted(rows []int) []int {
	sort.Ints(rows)
	out := rows[:0]
	prev := -1
	for _, r := range rows {
		if r != prev {
			out = append(out, r)
			prev = r
		}
	}
	return out
}

// Channels returns channel indices 0..n-1.
func Channels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
