// Package core is the characterization engine: it reproduces every
// experiment in the paper's evaluation (Figs 3-17, Tables 1-2) by driving
// simulated HBM2 chips through their command interface, exactly following
// the methodology of §3 (double-sided patterns, disabled refresh and ECC,
// per-row repetition policy, retention filtering, WCDP selection).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hbmrd/internal/hbm"
)

// TestChip couples a chip with its identity in the study (Chip 0-5).
type TestChip struct {
	// Index is the paper's chip label (0-5).
	Index int
	// Chip is the device under test.
	Chip *hbm.Chip
}

// NewFleet builds the requested subset of the paper's six chips. ECC is
// disabled on every chip, as in all of the paper's experiments (§3.1).
func NewFleet(indices []int, opts ...hbm.Option) ([]*TestChip, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("core: empty fleet")
	}
	fleet := make([]*TestChip, 0, len(indices))
	for _, idx := range indices {
		chip, err := hbm.NewBuiltin(idx, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: building chip %d: %w", idx, err)
		}
		chip.SetECC(false)
		fleet = append(fleet, &TestChip{Index: idx, Chip: chip})
	}
	return fleet, nil
}

// AllChips lists the paper's six chip indices.
func AllChips() []int { return []int{0, 1, 2, 3, 4, 5} }

// NewFullFleet builds all six chips.
func NewFullFleet(opts ...hbm.Option) ([]*TestChip, error) {
	return NewFleet(AllChips(), opts...)
}

// chanJob is one unit of parallel work: everything a job touches lives on
// one channel of one chip, so jobs never contend on device locks.
type chanJob struct {
	tc      *TestChip
	channel int
	run     func(tc *TestChip, ch *hbm.Channel) error
}

// runJobs executes channel jobs on a bounded worker pool and returns the
// first error (after all workers drain).
func runJobs(jobs []chanJob) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan chanJob)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range next {
				ch, err := job.tc.Chip.Channel(job.channel)
				if err == nil {
					err = job.run(job.tc, ch)
				}
				if err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("core: chip %d channel %d: %w", job.tc.Index, job.channel, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()
	return first
}

// SampleRows returns n physical victim rows spread evenly across a bank of
// the default (paper HBM2) geometry; see SampleRowsIn.
func SampleRows(n int) []int { return SampleRowsIn(hbm.DefaultGeometry(), n) }

// SampleRowsIn returns n physical victim rows spread evenly across a bank
// of geometry g, clamped away from the bank edges (victims need two
// physical neighbours on each side). The first, middle, and last regions of
// the bank are always represented, matching how the paper samples rows.
func SampleRowsIn(g hbm.Geometry, n int) []int {
	lo, hi := 2, g.Rows-3
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []int{g.Rows / 2}
	}
	rows := make([]int, 0, n)
	span := hi - lo
	for i := 0; i < n; i++ {
		rows = append(rows, lo+span*i/(n-1))
	}
	return dedupSorted(rows)
}

// RegionRows returns count physical rows from each of the beginning,
// middle, and end of a bank of the default (paper HBM2) geometry; see
// RegionRowsIn.
func RegionRows(count int) []int { return RegionRowsIn(hbm.DefaultGeometry(), count) }

// RegionRowsIn returns count physical rows from each of the beginning,
// middle, and end of a bank of geometry g (the paper's "first, middle, and
// last N rows" sampling for Figs 9, 11, and 14).
func RegionRowsIn(g hbm.Geometry, count int) []int {
	rows := make([]int, 0, 3*count)
	for i := 0; i < count; i++ {
		rows = append(rows, 2+i)
		rows = append(rows, g.Rows/2-count/2+i)
		rows = append(rows, g.Rows-3-count+i)
	}
	return dedupSorted(rows)
}

// fleetGeometry returns the organization shared by the fleet's chips
// (experiment defaults derive from the first chip; mixed-geometry fleets
// should set explicit Channels/Rows in the experiment config).
func fleetGeometry(fleet []*TestChip) hbm.Geometry {
	if len(fleet) > 0 {
		return fleet[0].Chip.Geometry()
	}
	return hbm.DefaultGeometry()
}

func dedupSorted(rows []int) []int {
	sort.Ints(rows)
	out := rows[:0]
	prev := -1
	for _, r := range rows {
		if r != prev {
			out = append(out, r)
			prev = r
		}
	}
	return out
}

// Channels returns channel indices 0..n-1.
func Channels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
