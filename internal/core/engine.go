package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hbmrd/internal/hbm"
	"hbmrd/internal/telemetry"
)

// Cell is one schedulable unit of a sweep. Everything a cell touches lives
// on one channel of one chip, so cells on different channels execute in
// parallel while cells sharing a channel execute serially in plan order.
type Cell struct {
	// TC is the chip under test.
	TC *TestChip
	// Channel, Pseudo and Bank locate the cell's bank.
	Channel, Pseudo, Bank int
	// Point indexes the runner-specific inner dimension(s): a victim row,
	// a (row, pattern) pair, a tAggON, a (dummies, aggActs, victim)
	// triple. The runner's measure closure decodes it against its config.
	Point int
}

// plan is an explicit, ordered enumeration of cells. The record order of a
// sweep is exactly the plan order, so building the plan fixes the output
// layout before any work runs: results are deterministic by construction,
// with no result mutex and no post-hoc sort.
type plan struct {
	cells []Cell
}

// newPlan enumerates chip x channel x pseudo x bank x point in that
// nesting order (the coordinate order every runner used to sort by).
func newPlan(fleet []*TestChip, channels, pseudos, banks []int, points int) plan {
	cells := make([]Cell, 0, len(fleet)*len(channels)*len(pseudos)*len(banks)*points)
	for _, tc := range fleet {
		for _, ch := range channels {
			for _, pc := range pseudos {
				for _, bnk := range banks {
					for pt := 0; pt < points; pt++ {
						cells = append(cells, Cell{TC: tc, Channel: ch, Pseudo: pc, Bank: bnk, Point: pt})
					}
				}
			}
		}
	}
	return plan{cells: cells}
}

// runOpts collects the execution tuning shared by every runner.
type runOpts struct {
	jobs   int
	sink   Sink
	resume *Checkpoint
	shard  *ShardRange
	tracer *telemetry.Tracer
}

// RunOption tunes how a runner executes its sweep. Every Run*Context entry
// point accepts options.
type RunOption func(*runOpts)

// WithJobs bounds the worker pool at n concurrently executing channel
// groups (default: GOMAXPROCS). n=1 yields fully serial execution.
func WithJobs(n int) RunOption { return func(o *runOpts) { o.jobs = n } }

// WithSink streams progress and records to s while the sweep runs.
func WithSink(s Sink) RunOption { return func(o *runOpts) { o.sink = s } }

// WithResume warm-starts the sweep from a checkpoint read by ResumeFrom:
// the runner validates the checkpoint's fingerprint against its own
// config, pre-fills the result slots of every plan cell the checkpoint
// already covers, and executes only the remainder. A sink implementing
// ResumableSink is first truncated to the end of the last complete cell,
// so the resumed stream continues byte-identically to an uninterrupted
// run. The returned record slice is always the complete result set,
// checkpointed and fresh cells alike.
func WithResume(cp *Checkpoint) RunOption { return func(o *runOpts) { o.resume = cp } }

func applyOpts(opts []RunOption) runOpts {
	var o runOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// cellEnv is the per-group execution environment: the chip, its open
// channel, and a scratch row buffer reused across the group's cells so
// per-cell allocations stay off the hot path.
type cellEnv struct {
	tc  *TestChip
	ch  *hbm.Channel
	buf []byte
}

// bank builds a bankRef that shares the group's scratch buffer.
func (e *cellEnv) bank(pc, bnk int) bankRef {
	return bankRef{tc: e.tc, ch: e.ch, pc: pc, bnk: bnk, geom: e.tc.Chip.Geometry(), buf: e.buf}
}

// runSweep executes a plan's cells on a bounded worker pool and collects
// each cell's records into its own preallocated, plan-indexed slot. The
// returned slice is the concatenation of slots in plan order.
//
// Cells are grouped by (chip, channel) - the unit of device-lock freedom -
// and each group's cells run serially in plan order, so a sweep never
// contends on a channel.
//
// Cancellation is honored at cell granularity (long-running measure
// closures additionally poll ctx themselves): once ctx is done, queued
// cells and queued groups are dropped instead of drained, and the sweep
// returns ctx.Err(). On any error the partial results are discarded from
// the return value, but everything already streamed to the sink remains
// valid: the sink receives records strictly in plan order, so a truncated
// stream is a prefix of the full result set.
func runSweep[R any](ctx context.Context, p plan, o runOpts, st *sweepState[R], measure func(ctx context.Context, env *cellEnv, c Cell) ([]R, error)) ([]R, error) {
	if st == nil {
		st = &sweepState[R]{}
	}
	// Telemetry is resolved once per sweep (handle lookup takes a lock)
	// and is strictly out-of-band: nothing below touches the sink, the
	// records, or the header. With telemetry disabled obs is nil and the
	// per-cell cost is two nil checks.
	obs := newSweepObs(st.header.Kind)
	obs.begin(st.skip)
	var sweepStart time.Time
	if obs != nil || o.tracer != nil {
		sweepStart = time.Now()
	}
	cells := p.cells
	// Progress reports live cells only: a resumed sweep's checkpointed
	// cells are already done and must appear in neither the numerator nor
	// the denominator (counting them in both made -resume -progress start
	// at a false percentage over an inflated total).
	liveTotal := len(cells) - st.skip
	if o.sink != nil {
		o.sink.Start(liveTotal)
		// Stamp fresh streams with the sweep's identity; position resumed
		// ones at the end of their last complete cell (cutting off any torn
		// tail) so appended records continue the stream byte-identically.
		if st.resumed {
			if rs, ok := o.sink.(ResumableSink); ok {
				if err := rs.ResumeAt(st.truncAt); err != nil {
					err = fmt.Errorf("core: positioning resumed sink: %w", err)
					o.sink.Finish(err)
					return nil, err
				}
			}
		} else if hs, ok := o.sink.(HeaderSink); ok && st.header.Fingerprint != "" {
			hs.Header(st.header)
		}
	}
	if len(cells) == 0 {
		err := ctx.Err()
		if o.sink != nil {
			o.sink.Finish(err)
		}
		return nil, err
	}

	// Group consecutive same-(chip, channel) cells; plan enumeration nests
	// the channel outside pseudo/bank/point, so groups are contiguous runs.
	// Cells the checkpoint already covers are never grouped, so a resumed
	// sweep spends no worker time before its first incomplete cell.
	type group struct{ start, end int } // cells[start:end)
	var groups []group
	for i := st.skip; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j].TC == cells[i].TC && cells[j].Channel == cells[i].Channel {
			j++
		}
		groups = append(groups, group{i, j})
		i = j
	}

	workers := o.jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	slots := make([][]R, len(cells))
	copy(slots, st.prefill)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			first = err
			cancel()
		})
	}

	// Sink bookkeeping: progress fires in completion order; records are
	// replayed in plan order by advancing a frontier over completed slots.
	// A sink that reports persistent write failure (Err) aborts the sweep
	// instead of letting a -full run compute for hours into a dead stream.
	var (
		sinkMu    sync.Mutex
		completed []bool
		doneCells int
		frontier  int
	)
	sinkErr, _ := o.sink.(interface{ Err() error })
	if o.sink != nil {
		completed = make([]bool, len(cells))
		// Checkpointed cells are done for record-replay purposes: the
		// frontier starts past them, so their records are never re-emitted
		// to the sink. They stay out of the progress counters, which track
		// only the cells this run executes.
		for i := 0; i < st.skip; i++ {
			completed[i] = true
		}
		frontier = st.skip
	}
	cellDone := func(i int) {
		if o.sink == nil {
			return
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		completed[i] = true
		doneCells++
		o.sink.Progress(doneCells, liveTotal)
		for frontier < len(cells) && completed[frontier] {
			for _, r := range slots[frontier] {
				o.sink.Record(r)
			}
			frontier++
		}
		if sinkErr != nil {
			if err := sinkErr.Err(); err != nil {
				fail(fmt.Errorf("core: streaming records: %w", err))
			}
		}
	}

	var cellsStart time.Time
	if o.tracer != nil {
		cellsStart = time.Now()
	}
	next := make(chan group)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range next {
				if cctx.Err() != nil {
					continue // drop, don't drain
				}
				c0 := cells[g.start]
				ch, err := c0.TC.Chip.Channel(c0.Channel)
				if err != nil {
					fail(fmt.Errorf("core: chip %d channel %d: %w", c0.TC.Index, c0.Channel, err))
					continue
				}
				env := &cellEnv{tc: c0.TC, ch: ch, buf: make([]byte, c0.TC.Chip.Geometry().RowBytes)}
				for i := g.start; i < g.end; i++ {
					if cctx.Err() != nil {
						break
					}
					var cellStart time.Time
					if obs != nil {
						cellStart = time.Now()
					}
					recs, err := measure(cctx, env, cells[i])
					if err != nil {
						fail(fmt.Errorf("core: chip %d channel %d: %w", c0.TC.Index, c0.Channel, err))
						break
					}
					obs.cell(cellStart, len(recs))
					slots[i] = recs
					cellDone(i)
				}
			}
		}()
	}
	for _, g := range groups {
		next <- g
	}
	close(next)
	wg.Wait()

	// External cancellation wins: a measure closure that noticed cctx was
	// done may have wrapped the context error, but the caller should see
	// the plain ctx.Err() it caused.
	err := ctx.Err()
	if err == nil {
		err = first
	}
	fp := st.header.Fingerprint
	var finStart time.Time
	if o.tracer != nil {
		o.tracer.Emit(fp, "cells", cellsStart, "cells", liveTotal, "workers", workers, "err", errAttr(err))
		finStart = time.Now()
	}
	if o.sink != nil {
		o.sink.Finish(err)
	}
	if err != nil {
		if o.tracer != nil {
			o.tracer.Emit(fp, "finalize", finStart, "err", errAttr(err))
			o.tracer.Emit(fp, "sweep", sweepStart, "kind", st.header.Kind,
				"cells", len(cells), "prefilled", st.skip, "err", errAttr(err))
		}
		return nil, err
	}

	n := 0
	for _, s := range slots {
		n += len(s)
	}
	out := make([]R, 0, n)
	for _, s := range slots {
		out = append(out, s...)
	}
	if o.tracer != nil {
		o.tracer.Emit(fp, "finalize", finStart, "records", n)
		o.tracer.Emit(fp, "sweep", sweepStart, "kind", st.header.Kind,
			"cells", len(cells), "prefilled", st.skip, "records", n)
	}
	return out, nil
}
