package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hbmrd/internal/hbm"
)

// Kind identifies one experiment runner. It appears in sweep fingerprints,
// in the header line of streamed JSONL files, and in hbmrdd sweep specs.
type Kind string

// The experiment kinds, one per sweep-shaped runner.
const (
	KindBER         Kind = "ber"
	KindHCFirst     Kind = "hcfirst"
	KindHCNth       Kind = "hcnth"
	KindVariability Kind = "variability"
	KindRowPressBER Kind = "rowpress-ber"
	KindRowPressHC  Kind = "rowpress-hc"
	KindBypass      Kind = "bypass"
	KindAging       Kind = "aging"
	KindVRD         Kind = "vrd"
	KindColDisturb  Kind = "coldist"
)

// Kinds lists every experiment kind, in a stable order.
func Kinds() []Kind {
	return []Kind{KindBER, KindHCFirst, KindHCNth, KindVariability,
		KindRowPressBER, KindRowPressHC, KindBypass, KindAging,
		KindVRD, KindColDisturb}
}

// CodeGeneration is the fault-model behaviour generation baked into every
// sweep fingerprint. The golden sweep digests (golden_test.go at the repo
// root) pin the model's byte-level behaviour; whenever those digests are
// deliberately re-pinned, bump this constant in the same commit so stored
// and checkpointed results from the old behaviour stop matching new runs
// instead of being silently resumed or served from cache.
// Generation 2: Geometry grew the rank dimension of the Ramulator2 preset
// port, so canonical geometry JSON (and with it every fingerprint)
// changed shape; record streams of the legacy rank=1 presets are
// unchanged (their golden digests did not move).
const CodeGeneration = 2

// chipIdentity is the per-chip component of a fingerprint: the study index
// plus the row-mapping in effect (identity vs. the vendor swizzle changes
// every physical-row measurement).
type chipIdentity struct {
	Index  int
	Mapper string
}

// fingerprintSweep computes the stable content hash identifying one sweep:
// the experiment kind, the canonical (defaults-resolved) config, the
// fleet's geometry and timing, the chip set with its row mappings, and the
// code-determinism generation. Two runs with equal fingerprints produce
// byte-identical record streams; anything that could change a record must
// feed the hash. cfg must already be filled - struct JSON encoding is
// canonical (declaration-order fields), so filled configs that would run
// identical plans hash identically.
func fingerprintSweep(kind Kind, fleet []*TestChip, cfg any) (string, error) {
	chips := make([]chipIdentity, 0, len(fleet))
	for _, tc := range fleet {
		m := tc.Chip.Mapper()
		chips = append(chips, chipIdentity{Index: tc.Index, Mapper: fmt.Sprintf("%T%+v", m, m)})
	}
	in := struct {
		Format     int
		Kind       Kind
		Generation int
		Geometry   hbm.Geometry
		Timing     hbm.Timing
		Chips      []chipIdentity
		Config     any
	}{sweepFormat, kind, CodeGeneration, fleetGeometry(fleet), fleetTiming(fleet), chips, cfg}
	b, err := json.Marshal(in)
	if err != nil {
		return "", fmt.Errorf("core: fingerprinting %s sweep: %w", kind, err)
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// FingerprintFor computes the fingerprint a Run*Context call with this
// kind, fleet and config would stamp into its sweep header, without
// running anything. It resolves the config's defaults on a copy, exactly
// as the runner would, so a caller (the hbmrdd service, a store lookup)
// can decide whether an identical sweep already finished. cfg must be the
// kind's config type, passed by value.
func FingerprintFor(kind Kind, fleet []*TestChip, cfg any) (string, error) {
	g := fleetGeometry(fleet)
	bad := func() (string, error) {
		return "", fmt.Errorf("core: kind %s wants %s, got %T", kind, configTypeName(kind), cfg)
	}
	switch kind {
	case KindBER:
		c, ok := cfg.(BERConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindHCFirst:
		c, ok := cfg.(HCFirstConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindHCNth:
		c, ok := cfg.(HCNthConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindVariability:
		c, ok := cfg.(VariabilityConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindRowPressBER:
		c, ok := cfg.(RowPressBERConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindRowPressHC:
		c, ok := cfg.(RowPressHCConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindBypass:
		c, ok := cfg.(BypassConfig)
		if !ok {
			return bad()
		}
		c.fill(g, fleetTiming(fleet))
		return fingerprintSweep(kind, fleet, c)
	case KindAging:
		c, ok := cfg.(AgingConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindVRD:
		c, ok := cfg.(VRDConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	case KindColDisturb:
		c, ok := cfg.(ColDisturbConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return fingerprintSweep(kind, fleet, c)
	}
	return "", fmt.Errorf("core: unknown experiment kind %q", kind)
}

func configTypeName(kind Kind) string {
	switch kind {
	case KindBER:
		return "BERConfig"
	case KindHCFirst:
		return "HCFirstConfig"
	case KindHCNth:
		return "HCNthConfig"
	case KindVariability:
		return "VariabilityConfig"
	case KindRowPressBER:
		return "RowPressBERConfig"
	case KindRowPressHC:
		return "RowPressHCConfig"
	case KindBypass:
		return "BypassConfig"
	case KindAging:
		return "AgingConfig"
	case KindVRD:
		return "VRDConfig"
	case KindColDisturb:
		return "ColDisturbConfig"
	}
	return "unknown config"
}
