package core

import (
	"fmt"
	"sort"
	"sync"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// BypassConfig parameterizes the Fig 16 experiment: the specialized access
// pattern that defeats the undocumented TRR mechanism. Per tREFI the
// pattern spends the full 78-ACT budget: first the dummy rows, then the
// double-sided aggressor pair; a REF closes every interval. The paper
// repeats the pattern for two refresh windows (8205*2 intervals) per
// victim and sweeps the number of dummy rows (x-axis) and the aggressor
// activation count (boxes).
type BypassConfig struct {
	Channel int
	Pseudo  int
	Bank    int
	// Victims are physical victim rows (default SampleRows(6)).
	Victims []int
	// DummyCounts sweeps the number of dummy rows (default 1..10).
	DummyCounts []int
	// AggActs sweeps per-aggressor activations per tREFI (default
	// 18..34 step 4; must keep 2*AggAct <= budget).
	AggActs []int
	// Windows is the number of tREFI intervals to run (default
	// 2*tREFW/tREFI = 16410, the paper's 8205*2).
	Windows int
	// Pattern selects the victim data pattern (default Checkered0).
	Pattern pattern.Pattern
}

func (c *BypassConfig) fill(g hbm.Geometry, t hbm.Timing) {
	if len(c.Victims) == 0 {
		c.Victims = SampleRowsIn(g, 6)
	}
	if len(c.DummyCounts) == 0 {
		c.DummyCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(c.AggActs) == 0 {
		c.AggActs = []int{18, 22, 26, 30, 34}
	}
	if c.Windows == 0 {
		c.Windows = 2 * int(t.TREFW/t.TREFI)
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Checkered0
	}
}

// BypassRecord is the outcome of one (dummies, aggAct, victim) run.
type BypassRecord struct {
	Chip, Row        int
	Dummies, AggActs int
	BERPercent       float64
}

// RunBypass executes the TRR bypass sweep on each chip of the fleet
// (the paper runs it on Chip 0). Victim rows are processed in parallel
// across configurations only per chip-channel, to keep device access
// serialized.
func RunBypass(fleet []*TestChip, cfg BypassConfig) ([]BypassRecord, error) {
	var (
		mu  sync.Mutex
		out []BypassRecord
	)
	var jobs []chanJob
	for _, tc := range fleet {
		jobs = append(jobs, chanJob{tc: tc, channel: cfg.Channel, run: func(tc *TestChip, ch *hbm.Channel) error {
			c := cfg
			c.fill(tc.Chip.Geometry(), tc.Chip.Timing())
			budget := tc.Chip.Timing().ActBudgetPerREFI()
			var local []BypassRecord
			for _, aggActs := range c.AggActs {
				if 2*aggActs > budget {
					return fmt.Errorf("core: aggressor activations %d exceed the %d-ACT budget", aggActs, budget)
				}
				for _, dummies := range c.DummyCounts {
					for _, victim := range c.Victims {
						ber, err := runBypassPattern(tc, ch, c, victim, dummies, aggActs, budget)
						if err != nil {
							return err
						}
						local = append(local, BypassRecord{
							Chip: tc.Index, Row: victim, Dummies: dummies, AggActs: aggActs,
							BERPercent: ber,
						})
					}
				}
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
			return nil
		}})
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Chip != b.Chip:
			return a.Chip < b.Chip
		case a.Dummies != b.Dummies:
			return a.Dummies < b.Dummies
		case a.AggActs != b.AggActs:
			return a.AggActs < b.AggActs
		default:
			return a.Row < b.Row
		}
	})
	return out, nil
}

func runBypassPattern(tc *TestChip, ch *hbm.Channel, cfg BypassConfig, victim, dummies, aggActs, budget int) (float64, error) {
	ref := newBankRef(tc, ch, cfg.Pseudo, cfg.Bank)
	if err := ref.initPattern(victim, cfg.Pattern); err != nil {
		return 0, err
	}

	// Dummy rows sit far from the victim, spaced apart so they do not
	// disturb each other or anything we measure.
	dummyBase := victim + 2000
	if dummyBase+4*dummies >= ref.geom.Rows {
		dummyBase = victim - 2000 - 4*dummies
	}
	if dummyBase < 0 {
		return 0, fmt.Errorf("core: no room for %d dummy rows near victim %d", dummies, victim)
	}

	// Per tREFI: dummies first (the paper's pattern), then the
	// double-sided pair, then REF.
	dummyActsTotal := budget - 2*aggActs
	rows := make([]int, 0, dummies+2)
	counts := make([]int, 0, dummies+2)
	for d := 0; d < dummies; d++ {
		rows = append(rows, ref.logical(dummyBase+4*d))
		counts = append(counts, dummyActsTotal/dummies)
	}
	rows = append(rows, ref.logical(victim-1), ref.logical(victim+1))
	counts = append(counts, aggActs, aggActs)

	for w := 0; w < cfg.Windows; w++ {
		if err := ch.HammerRows(cfg.Pseudo, cfg.Bank, rows, counts, 0); err != nil {
			return 0, err
		}
		if err := ch.Refresh(); err != nil {
			return 0, err
		}
	}

	flips, err := ref.readFlips(victim, cfg.Pattern.VictimByte(), nil)
	if err != nil {
		return 0, err
	}
	return float64(flips) / float64(ref.geom.RowBits()) * 100, nil
}
