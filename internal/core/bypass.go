package core

import (
	"context"
	"fmt"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// BypassConfig parameterizes the Fig 16 experiment: the specialized access
// pattern that defeats the undocumented TRR mechanism. Per tREFI the
// pattern spends the full 78-ACT budget: first the dummy rows, then the
// double-sided aggressor pair; a REF closes every interval. The paper
// repeats the pattern for two refresh windows (8205*2 intervals) per
// victim and sweeps the number of dummy rows (x-axis) and the aggressor
// activation count (boxes).
type BypassConfig struct {
	Channel int
	Pseudo  int
	Bank    int
	// Victims are physical victim rows (default SampleRows(6)).
	Victims []int
	// DummyCounts sweeps the number of dummy rows (default 1..10).
	DummyCounts []int
	// AggActs sweeps per-aggressor activations per tREFI (default
	// 18..34 step 4; must keep 2*AggAct <= budget).
	AggActs []int
	// Windows is the number of tREFI intervals to run (default
	// 2*tREFW/tREFI = 16410, the paper's 8205*2).
	Windows int
	// Pattern selects the victim data pattern (default Checkered0).
	Pattern pattern.Pattern
}

func (c *BypassConfig) fill(g hbm.Geometry, t hbm.Timing) {
	if len(c.Victims) == 0 {
		c.Victims = SampleRowsIn(g, 6)
	}
	if len(c.DummyCounts) == 0 {
		c.DummyCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(c.AggActs) == 0 {
		c.AggActs = []int{18, 22, 26, 30, 34}
	}
	if c.Windows == 0 {
		c.Windows = 2 * int(t.TREFW/t.TREFI)
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Checkered0
	}
}

// BypassRecord is the outcome of one (dummies, aggAct, victim) run.
type BypassRecord struct {
	Chip, Row        int
	Dummies, AggActs int
	BERPercent       float64
}

// RunBypass executes the TRR bypass sweep on each chip of the fleet
// (the paper runs it on Chip 0). Chips run in parallel; the sweep on each
// chip-channel is serialized to keep device access single-threaded.
func RunBypass(fleet []*TestChip, cfg BypassConfig) ([]BypassRecord, error) {
	return RunBypassContext(context.Background(), fleet, cfg)
}

// RunBypassContext is RunBypass with cancellation and execution options.
// Records are in plan order: (chip, dummies, aggActs, victim). Defaults
// derive from the first chip's geometry and timing; mixed fleets should
// set Victims and Windows explicitly.
func RunBypassContext(ctx context.Context, fleet []*TestChip, cfg BypassConfig, opts ...RunOption) ([]BypassRecord, error) {
	cfg.fill(fleetGeometry(fleet), fleetTiming(fleet))
	p := newPlan(fleet, []int{cfg.Channel}, []int{cfg.Pseudo}, []int{cfg.Bank},
		len(cfg.DummyCounts)*len(cfg.AggActs)*len(cfg.Victims))
	o := applyOpts(opts)
	p, st, err := prepareSweep[BypassRecord](KindBypass, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(ctx context.Context, env *cellEnv, c Cell) ([]BypassRecord, error) {
		pt := c.Point
		victim := cfg.Victims[pt%len(cfg.Victims)]
		pt /= len(cfg.Victims)
		aggActs := cfg.AggActs[pt%len(cfg.AggActs)]
		dummies := cfg.DummyCounts[pt/len(cfg.AggActs)]

		budget := env.tc.Chip.Timing().ActBudgetPerREFI()
		if 2*aggActs > budget {
			return nil, fmt.Errorf("core: aggressor activations %d exceed the %d-ACT budget", aggActs, budget)
		}
		ber, err := runBypassPattern(ctx, env, cfg, victim, dummies, aggActs, budget)
		if err != nil {
			return nil, err
		}
		return []BypassRecord{{
			Chip: env.tc.Index, Row: victim, Dummies: dummies, AggActs: aggActs,
			BERPercent: ber,
		}}, nil
	})
}

func runBypassPattern(ctx context.Context, env *cellEnv, cfg BypassConfig, victim, dummies, aggActs, budget int) (float64, error) {
	ch := env.ch
	ref := env.bank(cfg.Pseudo, cfg.Bank)
	if err := ref.initPattern(victim, cfg.Pattern); err != nil {
		return 0, err
	}

	// Dummy rows sit far from the victim, spaced apart so they do not
	// disturb each other or anything we measure.
	dummyBase := victim + 2000
	if dummyBase+4*dummies >= ref.geom.Rows {
		dummyBase = victim - 2000 - 4*dummies
	}
	if dummyBase < 0 {
		return 0, fmt.Errorf("core: no room for %d dummy rows near victim %d", dummies, victim)
	}

	// Per tREFI: dummies first (the paper's pattern), then the
	// double-sided pair, then REF.
	dummyActsTotal := budget - 2*aggActs
	rows := make([]int, 0, dummies+2)
	counts := make([]int, 0, dummies+2)
	for d := 0; d < dummies; d++ {
		rows = append(rows, ref.logical(dummyBase+4*d))
		counts = append(counts, dummyActsTotal/dummies)
	}
	rows = append(rows, ref.logical(victim-1), ref.logical(victim+1))
	counts = append(counts, aggActs, aggActs)

	// One cell spans up to 2*tREFW/tREFI intervals, so this loop is the
	// longest uninterruptible stretch of any experiment; poll ctx to keep
	// cancellation prompt.
	for w := 0; w < cfg.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := ch.HammerRows(cfg.Pseudo, cfg.Bank, rows, counts, 0); err != nil {
			return 0, err
		}
		if err := ch.Refresh(); err != nil {
			return 0, err
		}
	}

	flips, err := ref.readFlips(victim, cfg.Pattern.VictimByte(), nil)
	if err != nil {
		return 0, err
	}
	return float64(flips) / float64(ref.geom.RowBits()) * 100, nil
}
