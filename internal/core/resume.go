package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// sweepFormat versions the streamed sweep file format (header line shape
// and resume semantics). It is independent of CodeGeneration, which
// versions the fault model's behaviour.
const sweepFormat = 1

// SweepHeader is the first line of every streamed sweep file: a JSON
// object identifying the sweep that produced the records that follow. The
// "hbmrd_sweep" key doubles as the magic marker distinguishing a header
// from a record line.
type SweepHeader struct {
	// Format is the sweep file format version.
	Format int `json:"hbmrd_sweep"`
	// Kind is the experiment kind ("ber", "hcfirst", ...).
	Kind string `json:"kind"`
	// Fingerprint is the content hash of (kind, canonical config, geometry,
	// timing, chip set and row mappings, code generation). Equal
	// fingerprints mean byte-identical record streams. For a shard it is
	// the shard's sub-fingerprint (see ShardFingerprint).
	Fingerprint string `json:"fingerprint"`
	// Cells is the stream's plan cell count: the whole sweep's, or - for a
	// shard - only the shard range's.
	Cells int `json:"cells"`
	// Generation is the CodeGeneration the producer was built at (also part
	// of the fingerprint; duplicated here for human readers).
	Generation int `json:"generation"`
	// Parent is the full sweep's fingerprint when this stream is a shard
	// produced under WithShard; empty (and omitted, so whole-sweep header
	// bytes are unchanged) otherwise.
	Parent string `json:"parent,omitempty"`
	// ShardStart and ShardEnd bound the parent-plan cell range
	// [ShardStart, ShardEnd) a shard stream covers.
	ShardStart int `json:"shard_start,omitempty"`
	ShardEnd   int `json:"shard_end,omitempty"`
}

// rawLine is one complete record line of a checkpoint file plus the byte
// offset just past its terminating newline.
type rawLine struct {
	data []byte
	end  int64
}

// Checkpoint is the validated prefix of a partially written sweep file:
// the header plus every complete, syntactically valid record line before
// the truncation point. Obtain one with ResumeFrom and pass it to a
// runner via WithResume; the runner validates the fingerprint against its
// own config and skips the plan cells the prefix already covers. A
// Checkpoint is consumed by the run that resumes it (decoded record bytes
// are released as they are absorbed, so a large prefix is not held in
// memory twice); read the file again to build a fresh one.
type Checkpoint struct {
	// Header is the file's sweep header.
	Header SweepHeader

	headerEnd int64
	lines     []rawLine
}

// Records reports how many complete record lines the valid prefix holds.
func (cp *Checkpoint) Records() int { return len(cp.lines) }

// ValidBytes reports the byte offset of the end of the valid prefix (the
// header plus every complete record line). Bytes past it are a torn tail
// from the interrupted writer.
func (cp *Checkpoint) ValidBytes() int64 {
	if n := len(cp.lines); n > 0 {
		return cp.lines[n-1].end
	}
	return cp.headerEnd
}

// ErrNoHeader reports that a stream does not begin with a sweep header
// (it predates checkpointing, or is not a sweep file at all).
var ErrNoHeader = errors.New("core: stream has no sweep header")

// readSweepHeader reads and validates the header line of a sweep stream,
// returning it plus the byte offset just past its terminating newline.
// Shared by ResumeFrom (checkpoint parsing) and DecodeRecords (typed
// decode of finished sweeps), so the two readers cannot drift.
func readSweepHeader(br *bufio.Reader) (SweepHeader, int64, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if err == io.EOF {
			return SweepHeader{}, 0, ErrNoHeader
		}
		return SweepHeader{}, 0, fmt.Errorf("core: reading sweep header: %w", err)
	}
	var h SweepHeader
	if err := json.Unmarshal(line, &h); err != nil || h.Format == 0 {
		return SweepHeader{}, 0, ErrNoHeader
	}
	if h.Format != sweepFormat {
		return SweepHeader{}, 0, fmt.Errorf("core: sweep file format %d, this build reads %d", h.Format, sweepFormat)
	}
	if h.Fingerprint == "" {
		return SweepHeader{}, 0, fmt.Errorf("core: sweep header has no fingerprint")
	}
	return h, int64(len(line)), nil
}

// ResumeFrom reads a partially written sweep stream - typically the JSONL
// file left behind by a cancelled run - validates its header, and counts
// the valid record prefix: every complete line of syntactically valid
// JSON before the first torn or malformed one. The returned Checkpoint
// feeds WithResume. Files holding more than one sweep (e.g. from
// `hbmrd all -out`) are rejected: a multi-sweep file has no single plan
// to resume.
func ResumeFrom(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	h, offset, err := readSweepHeader(br)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{Header: h, headerEnd: offset}

	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// A tail without a terminating newline is a torn write; drop it.
			break
		}
		offset += int64(len(line))
		if !json.Valid(line) {
			break
		}
		var probe struct {
			Format int `json:"hbmrd_sweep"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Format != 0 {
			return nil, fmt.Errorf("core: stream holds more than one sweep; only single-sweep files can be resumed")
		}
		cp.lines = append(cp.lines, rawLine{data: line, end: offset})
	}
	return cp, nil
}

// spanFunc decides, for the next plan cell, how many of the remaining
// prefix record lines belong to it and whether they cover the cell
// completely. Most runners emit a fixed record count per cell; HCFirst's
// count depends on measurement outcome, which the prefix records
// themselves encode.
type spanFunc func(lines []rawLine) (n int, complete bool, err error)

// fixedSpan covers runners emitting exactly n records per cell.
func fixedSpan(n int) spanFunc {
	return func(lines []rawLine) (int, bool, error) {
		if len(lines) < n {
			return 0, false, nil
		}
		return n, true, nil
	}
}

// hcFirstSpan covers RunHCFirst: one record per pattern, plus a derived
// WCDP record whenever any pattern found a flip. Which case applies is
// read back from the prefix's own Found flags.
func hcFirstSpan(patterns int) spanFunc {
	return func(lines []rawLine) (int, bool, error) {
		if len(lines) < patterns {
			return 0, false, nil
		}
		anyFound := false
		for _, l := range lines[:patterns] {
			var probe struct{ Found bool }
			if err := json.Unmarshal(l.data, &probe); err != nil {
				return 0, false, fmt.Errorf("core: corrupt checkpoint record: %w", err)
			}
			if probe.Found {
				anyFound = true
				break
			}
		}
		if !anyFound {
			return patterns, true, nil
		}
		if len(lines) < patterns+1 {
			return 0, false, nil
		}
		return patterns + 1, true, nil
	}
}

// sweepState is the per-run identity and resume plan runSweep executes
// under: the header to stamp on fresh streams, and - when resuming - the
// plan-prefix of cells whose records the checkpoint already holds.
type sweepState[R any] struct {
	header SweepHeader
	// skip is how many leading plan cells are already complete.
	skip int
	// prefill holds the decoded records of the skipped cells, one slice
	// per cell, so the returned result set is whole.
	prefill [][]R
	// truncAt is the byte offset the destination must be truncated to
	// before appending: the end of the last complete cell's records.
	truncAt int64
	resumed bool
}

// prepareSweep computes the sweep's fingerprint, narrows the plan to the
// shard range when the caller passed WithShard, and, when the caller
// passed WithResume, validates the checkpoint against the (shard)
// fingerprint and resolves the resume plan: walk the plan in order,
// consume each cell's records from the prefix via span, and stop at the
// first cell the prefix does not fully cover. Records of a partially
// covered cell are cut off by truncAt so the re-run cell appends exactly
// once. The returned plan is the one to execute (the shard slice under
// WithShard, the input plan otherwise).
func prepareSweep[R any](kind Kind, fleet []*TestChip, cfg any, p plan, o runOpts, span spanFunc) (plan, *sweepState[R], error) {
	var planStart time.Time
	if o.tracer != nil {
		planStart = time.Now()
	}
	fp, err := fingerprintSweep(kind, fleet, cfg)
	if err != nil {
		return p, nil, err
	}
	h := SweepHeader{
		Format: sweepFormat, Kind: string(kind), Fingerprint: fp,
		Cells: len(p.cells), Generation: CodeGeneration,
	}
	if o.shard != nil {
		sr := *o.shard
		if err := sr.validate(len(p.cells)); err != nil {
			return p, nil, err
		}
		h.Parent = fp
		h.ShardStart, h.ShardEnd = sr.Start, sr.End
		h.Fingerprint = ShardFingerprint(fp, sr.Start, sr.End)
		h.Cells = sr.End - sr.Start
		p = plan{cells: p.cells[sr.Start:sr.End]}
	}
	st := &sweepState[R]{header: h}
	cp := o.resume
	if cp == nil {
		if o.tracer != nil {
			o.tracer.Emit(h.Fingerprint, "plan", planStart,
				"kind", string(kind), "cells", len(p.cells))
		}
		return p, st, nil
	}
	if cp.Header.Kind != string(kind) {
		return p, nil, fmt.Errorf("core: checkpoint is a %s sweep, not %s", cp.Header.Kind, kind)
	}
	if cp.Header.Fingerprint != h.Fingerprint {
		return p, nil, fmt.Errorf("core: checkpoint fingerprint %s does not match this sweep (%s): "+
			"the config, chip set, geometry, shard range, or code generation changed", cp.Header.Fingerprint, h.Fingerprint)
	}
	st.resumed = true
	st.truncAt = cp.headerEnd
	rec := 0
	for ci := range p.cells {
		n, complete, err := span(cp.lines[rec:])
		if err != nil {
			return p, nil, err
		}
		if !complete {
			break
		}
		cellRecs := make([]R, 0, n)
		for j := 0; j < n; j++ {
			var r R
			if err := json.Unmarshal(cp.lines[rec+j].data, &r); err != nil {
				return p, nil, fmt.Errorf("core: decoding checkpoint record %d: %w", rec+j, err)
			}
			cellRecs = append(cellRecs, r)
			// Absorbed into prefill; release the raw bytes so a resumed
			// -full run does not hold its whole prefix in memory twice
			// (the end offset stays - truncAt and ValidBytes need it).
			cp.lines[rec+j].data = nil
		}
		st.prefill = append(st.prefill, cellRecs)
		rec += n
		st.skip = ci + 1
		st.truncAt = cp.lines[rec-1].end
	}
	if o.tracer != nil {
		o.tracer.Emit(h.Fingerprint, "plan", planStart,
			"kind", string(kind), "cells", len(p.cells), "resumed", true, "prefilled", st.skip)
	}
	return p, st, nil
}
