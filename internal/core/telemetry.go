package core

import (
	"time"

	"hbmrd/internal/telemetry"
)

// WithTracer streams sweep-lifecycle spans (plan → cells → finalize,
// plus a root sweep span) to t as JSONL, keyed by the sweep's
// fingerprint. Tracing is strictly out-of-band: it never touches the
// sink, the records, or the fingerprint. `hbmrd -trace-out` wires
// this up for CLI sweeps.
func WithTracer(t *telemetry.Tracer) RunOption { return func(o *runOpts) { o.tracer = t } }

// sweepObs bundles the engine's per-sweep metric handles, resolved
// once per runSweep so the per-cell path is pure atomics. A nil
// *sweepObs (telemetry disabled) makes every method a no-op — the
// worker loop pays two nil checks and nothing else.
type sweepObs struct {
	cells     *telemetry.Counter
	records   *telemetry.Counter
	cellSecs  *telemetry.Histogram
	sweeps    *telemetry.Counter
	prefilled *telemetry.Counter
}

func newSweepObs(kind string) *sweepObs {
	if !telemetry.Enabled() {
		return nil
	}
	k := telemetry.L("kind", kind)
	return &sweepObs{
		cells:     telemetry.Default.Counter("hbmrd_sweep_cells_total", k),
		records:   telemetry.Default.Counter("hbmrd_sweep_records_total", k),
		cellSecs:  telemetry.Default.Histogram("hbmrd_sweep_cell_seconds", telemetry.DurationBuckets, k),
		sweeps:    telemetry.Default.Counter("hbmrd_sweeps_total", k),
		prefilled: telemetry.Default.Counter("hbmrd_sweep_resume_prefilled_cells_total", k),
	}
}

// begin records the sweep start and how many plan cells the resume
// checkpoint prefilled.
func (o *sweepObs) begin(skip int) {
	if o == nil {
		return
	}
	o.sweeps.Inc()
	o.prefilled.Add(int64(skip))
}

// cell records one executed plan cell: its wall time and record count.
func (o *sweepObs) cell(start time.Time, nrecs int) {
	if o == nil {
		return
	}
	o.cellSecs.Observe(time.Since(start).Seconds())
	o.cells.Inc()
	o.records.Add(int64(nrecs))
}

func init() {
	telemetry.Default.Help("hbmrd_sweep_cells_total", "Plan cells executed by the sweep engine, by sweep kind.")
	telemetry.Default.Help("hbmrd_sweep_records_total", "Records produced by executed plan cells, by sweep kind.")
	telemetry.Default.Help("hbmrd_sweep_cell_seconds", "Wall time per executed plan cell, by sweep kind.")
	telemetry.Default.Help("hbmrd_sweeps_total", "Sweeps started on the engine, by kind.")
	telemetry.Default.Help("hbmrd_sweep_resume_prefilled_cells_total", "Plan cells skipped because a resume checkpoint already covered them.")
}

// errAttr renders err for a span attribute ("" on success).
func errAttr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
