package core

import (
	"context"
	"fmt"
	"sort"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/stats"
)

// HCNthConfig parameterizes the §5 experiment: the hammer counts needed to
// induce the first 10 bitflips in a row (Figs 11 and 12). The paper tests
// 32 rows from each of the beginning, middle, and end of one bank in the
// two channels with the smallest HCfirst of every chip.
type HCNthConfig struct {
	Channels []int // default {0, 1}
	Pseudo   int
	Bank     int
	// Rows are physical victim rows (default RegionRows(8)).
	Rows     []int
	Patterns []pattern.Pattern
	// MaxFlips is how many bitflips to chase (default 10).
	MaxFlips int
	// MinHammer/MaxHammer bound the searches.
	MinHammer, MaxHammer int
	TOn                  hbm.TimePS
}

func (c *HCNthConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = []int{0, 1}
	}
	if len(c.Rows) == 0 {
		c.Rows = RegionRowsIn(g, 8)
	}
	if len(c.Patterns) == 0 {
		c.Patterns = pattern.All()
	}
	if c.MaxFlips == 0 {
		c.MaxFlips = 10
	}
	if c.MinHammer == 0 {
		c.MinHammer = 1000
	}
	if c.MaxHammer == 0 {
		c.MaxHammer = 1024 * 1024
	}
}

// HCNthRecord holds the hammer counts HC[k-1] inducing the k-th bitflip of
// one row under one pattern. Found is false if even MaxHammer could not
// produce MaxFlips bitflips.
type HCNthRecord struct {
	Chip, Channel, Row int
	Pattern            pattern.Pattern
	HC                 []int
	Found              bool
}

// Normalized returns HC[k]/HC[0] for each k (Fig 11's y-axis).
func (r HCNthRecord) Normalized() []float64 {
	if len(r.HC) == 0 || r.HC[0] == 0 {
		return nil
	}
	out := make([]float64, len(r.HC))
	for i, hc := range r.HC {
		out[i] = float64(hc) / float64(r.HC[0])
	}
	return out
}

// Additional returns HC[last]-HC[0], the additional hammers over HCfirst
// to the 10th bitflip (Fig 12's y-axis).
func (r HCNthRecord) Additional() int {
	if len(r.HC) == 0 {
		return 0
	}
	return r.HC[len(r.HC)-1] - r.HC[0]
}

// RunHCNth measures the hammer counts for the first MaxFlips bitflips.
// Searches for successive k reuse the k-1 result as the lower bound
// (HC_k is monotonically non-decreasing in k).
func RunHCNth(fleet []*TestChip, cfg HCNthConfig) ([]HCNthRecord, error) {
	return RunHCNthContext(context.Background(), fleet, cfg)
}

// RunHCNthContext is RunHCNth with cancellation and execution options.
// Records are in plan order: (chip, channel, row, pattern).
func RunHCNthContext(ctx context.Context, fleet []*TestChip, cfg HCNthConfig, opts ...RunOption) ([]HCNthRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, []int{cfg.Pseudo}, []int{cfg.Bank}, len(cfg.Rows)*len(cfg.Patterns))
	o := applyOpts(opts)
	p, st, err := prepareSweep[HCNthRecord](KindHCNth, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(_ context.Context, env *cellEnv, c Cell) ([]HCNthRecord, error) {
		row := cfg.Rows[c.Point/len(cfg.Patterns)]
		pat := cfg.Patterns[c.Point%len(cfg.Patterns)]
		ref := env.bank(c.Pseudo, c.Bank)
		rec, err := hcNthForRow(ref, c.Channel, row, pat, cfg)
		if err != nil {
			return nil, err
		}
		return []HCNthRecord{rec}, nil
	})
}

func hcNthForRow(ref bankRef, chIdx, row int, p pattern.Pattern, cfg HCNthConfig) (HCNthRecord, error) {
	rec := HCNthRecord{Chip: ref.tc.Index, Channel: chIdx, Row: row, Pattern: p}
	lo := cfg.MinHammer
	for k := 1; k <= cfg.MaxFlips; k++ {
		hc, found, err := ref.hcSearch(row, p, k, lo, cfg.MaxHammer, cfg.TOn)
		if err != nil {
			return rec, fmt.Errorf("row %d pattern %s flip %d: %w", row, p, k, err)
		}
		if !found {
			return rec, nil
		}
		rec.HC = append(rec.HC, hc)
		lo = hc
	}
	rec.Found = true
	return rec, nil
}

// Fig12Stats computes, per chip, the Pearson correlation between HCfirst
// and the additional hammers to the 10th bitflip, plus a quadratic trend
// fit (the paper's orange curve).
type Fig12Stats struct {
	Chip    int
	Pearson float64
	// PolyCoef are the quadratic least-squares coefficients (c0+c1*x+c2*x^2).
	PolyCoef []float64
	N        int
}

// ComputeFig12 derives the Fig 12 statistics from HCNth records.
func ComputeFig12(recs []HCNthRecord) ([]Fig12Stats, error) {
	byChip := map[int][][2]float64{}
	for _, r := range recs {
		if !r.Found {
			continue
		}
		byChip[r.Chip] = append(byChip[r.Chip], [2]float64{float64(r.HC[0]), float64(r.Additional())})
	}
	chips := make([]int, 0, len(byChip))
	for c := range byChip {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	out := make([]Fig12Stats, 0, len(chips))
	for _, c := range chips {
		pts := byChip[c]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		r, err := stats.Pearson(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("core: fig12 chip %d: %w", c, err)
		}
		coef, err := stats.PolyFit(xs, ys, 2)
		if err != nil {
			coef = nil // degenerate sample; correlation still reported
		}
		out = append(out, Fig12Stats{Chip: c, Pearson: r, PolyCoef: coef, N: len(pts)})
	}
	return out, nil
}
