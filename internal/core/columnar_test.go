package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// TestColumnarRoundTripByteIdentity is the columnar codec's contract:
// for every experiment kind, the streamed JSONL of a sweep survives
// columnar encode → decode → Records → EncodeRecords byte-identically -
// on the three legacy presets and a multi-rank HBM3 matrix entry - so
// the columnar twin can never drift from the JSONL interchange format
// without CI noticing. Wired into the golden-digest CI job (make
// golden) alongside TestSweepRoundTripByteIdentity.
func TestColumnarRoundTripByteIdentity(t *testing.T) {
	t.Parallel()
	var presets []hbm.Preset
	for _, name := range []string{hbm.PresetHBM2, hbm.PresetHBM2E, hbm.PresetHBM3, "HBM3_16Gb_4R"} {
		p, err := hbm.LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		presets = append(presets, p)
	}
	if testing.Short() {
		presets = presets[:1]
	}
	for _, preset := range presets {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			for kind, runSweep := range roundTripSweeps(t, preset) {
				kind, runSweep := kind, runSweep
				t.Run(string(kind), func(t *testing.T) {
					t.Parallel()
					var buf bytes.Buffer
					sink := NewJSONLSink(&buf)
					if _, err := runSweep(WithSink(sink)); err != nil {
						t.Fatal(err)
					}
					if err := sink.Err(); err != nil {
						t.Fatal(err)
					}
					streamed := buf.Bytes()

					h, decoded, err := DecodeRecords(kind, bytes.NewReader(streamed))
					if err != nil {
						t.Fatalf("DecodeRecords: %v", err)
					}
					var col bytes.Buffer
					if err := EncodeColumnar(&col, h, decoded); err != nil {
						t.Fatalf("EncodeColumnar: %v", err)
					}
					cs, err := DecodeColumnar(bytes.NewReader(col.Bytes()))
					if err != nil {
						t.Fatalf("DecodeColumnar: %v", err)
					}
					if cs.Header != h {
						t.Fatalf("columnar header %+v, want %+v", cs.Header, h)
					}
					back, err := cs.Records()
					if err != nil {
						t.Fatalf("Records: %v", err)
					}
					if !reflect.DeepEqual(back, decoded) {
						t.Fatal("columnar records differ from the decoded JSONL records")
					}
					var re bytes.Buffer
					if err := EncodeRecords(&re, cs.Header, back); err != nil {
						t.Fatalf("EncodeRecords: %v", err)
					}
					if !bytes.Equal(re.Bytes(), streamed) {
						t.Fatalf("columnar round trip is not byte-identical: %d bytes vs %d",
							re.Len(), len(streamed))
					}
				})
			}
		})
	}
}

// TestColumnarPreservesSliceIdentity: the nil-vs-empty distinction JSON
// makes visible (`null` vs `""`/`[]`) survives the columnar round trip
// for masks, hammer-count lists, and measured ratios.
func TestColumnarPreservesSliceIdentity(t *testing.T) {
	t.Parallel()
	h := SweepHeader{Format: 1, Kind: string(KindBER), Fingerprint: "sha256:" + strings.Repeat("ab", 32), Cells: 4, Generation: 1}
	recs := []BERRecord{
		{Chip: 0, Pattern: pattern.Rowstripe0, Mask: nil},
		{Chip: 1, Pattern: pattern.Rowstripe0, Mask: []byte{}},
		{Chip: 2, Pattern: pattern.Checkered1, Mask: []byte{0x80, 0x00, 0x01}},
	}
	var col bytes.Buffer
	if err := EncodeColumnar(&col, h, recs); err != nil {
		t.Fatal(err)
	}
	cs, err := DecodeColumnar(bytes.NewReader(col.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := cs.Records()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.([]BERRecord)
	if !ok || len(got) != 3 {
		t.Fatalf("Records = %T (%d)", back, len(got))
	}
	if got[0].Mask != nil {
		t.Error("nil mask came back non-nil")
	}
	if got[1].Mask == nil || len(got[1].Mask) != 0 {
		t.Errorf("empty mask came back as %v", got[1].Mask)
	}
	if !bytes.Equal(got[2].Mask, []byte{0x80, 0x00, 0x01}) {
		t.Errorf("mask payload = %v", got[2].Mask)
	}

	hn := h
	hn.Kind = string(KindHCNth)
	nth := []HCNthRecord{
		{Chip: 0, Pattern: pattern.Rowstripe0, HC: nil},
		{Chip: 1, Pattern: pattern.Rowstripe0, HC: []int{}},
		{Chip: 2, Pattern: pattern.Rowstripe0, HC: []int{10_000, 10_250, 11_000}},
	}
	col.Reset()
	if err := EncodeColumnar(&col, hn, nth); err != nil {
		t.Fatal(err)
	}
	cs, err = DecodeColumnar(bytes.NewReader(col.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back, err = cs.Records()
	if err != nil {
		t.Fatal(err)
	}
	gotN := back.([]HCNthRecord)
	if gotN[0].HC != nil || gotN[1].HC == nil || !reflect.DeepEqual(gotN[2].HC, []int{10_000, 10_250, 11_000}) {
		t.Errorf("HC lists = %v %v %v", gotN[0].HC, gotN[1].HC, gotN[2].HC)
	}
}

// TestColumnarRejectsMalformed: truncated, corrupted, or mislabeled
// artifacts fail decode loudly instead of yielding wrong records - the
// engine treats any decode error as "fall back to JSONL".
func TestColumnarRejectsMalformed(t *testing.T) {
	t.Parallel()
	h := SweepHeader{Format: 1, Kind: string(KindHCFirst), Fingerprint: "sha256:" + strings.Repeat("cd", 32), Cells: 2, Generation: 1}
	recs := []HCFirstRecord{
		{Chip: 0, Row: 4, Pattern: pattern.Rowstripe0, HCFirst: 14_000, Found: true},
		{Chip: 5, Row: 9, Pattern: pattern.Checkered0, HCFirst: 0, Found: false},
	}
	var col bytes.Buffer
	if err := EncodeColumnar(&col, h, recs); err != nil {
		t.Fatal(err)
	}
	good := col.Bytes()

	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("nope"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0x00),
	}
	for name, data := range cases {
		if _, err := DecodeColumnar(bytes.NewReader(data)); err == nil {
			t.Errorf("%s artifact decoded without error", name)
		}
	}

	// A kind/schema mismatch inside an otherwise valid artifact is
	// rejected at Records time.
	cs, err := DecodeColumnar(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	cs.Header.Kind = string(KindBER)
	if _, err := cs.Records(); err == nil {
		t.Error("kind/schema mismatch produced records")
	}
}
