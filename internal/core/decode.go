package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
)

// DecodeRecords parses a stored sweep stream - the JSONL a JSONLSink
// produced: one header line, then one record per line in plan order - back
// into the concrete record type of its kind. It is the exact inverse of
// the sink encoding: EncodeRecords over the returned header and records
// reproduces the input byte for byte (the round-trip contract the golden
// CI job enforces for every record type on every preset).
//
// kind names the expected experiment; pass "" to accept whatever the
// header declares. The returned records value is a typed slice -
// []BERRecord for KindBER, []HCFirstRecord for KindHCFirst, and so on for
// all ten kinds. Record lines are decoded strictly (unknown fields and
// trailing garbage are errors), so drift between the sink encoding and
// the record structs cannot pass silently.
func DecodeRecords(kind Kind, r io.Reader) (SweepHeader, any, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	h, _, err := readSweepHeader(br)
	if err != nil {
		return SweepHeader{}, nil, err
	}
	if kind == "" {
		kind = Kind(h.Kind)
	}
	if h.Kind != string(kind) {
		return SweepHeader{}, nil, fmt.Errorf("core: stream holds a %s sweep, not %s", h.Kind, kind)
	}
	var recs any
	switch kind {
	case KindBER:
		recs, err = decodeAll[BERRecord](br)
	case KindHCFirst:
		recs, err = decodeAll[HCFirstRecord](br)
	case KindHCNth:
		recs, err = decodeAll[HCNthRecord](br)
	case KindVariability:
		recs, err = decodeAll[VariabilityRecord](br)
	case KindRowPressBER:
		recs, err = decodeAll[RowPressBERRecord](br)
	case KindRowPressHC:
		recs, err = decodeAll[RowPressHCRecord](br)
	case KindBypass:
		recs, err = decodeAll[BypassRecord](br)
	case KindAging:
		recs, err = decodeAll[AgingRecord](br)
	case KindVRD:
		recs, err = decodeAll[VRDRecord](br)
	case KindColDisturb:
		recs, err = decodeAll[ColDisturbRecord](br)
	default:
		return SweepHeader{}, nil, fmt.Errorf("core: unknown experiment kind %q", kind)
	}
	if err != nil {
		return SweepHeader{}, nil, err
	}
	return h, recs, nil
}

// decodeAll decodes every remaining line of the stream into R, strictly:
// each line must be one complete JSON object with no unknown fields and no
// trailing data, and the final line must be newline-terminated (a missing
// newline is the signature of a torn write - such files are checkpoints to
// resume, not finished sweeps to decode).
func decodeAll[R any](br *bufio.Reader) ([]R, error) {
	var out []R
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) == 0 {
				return out, nil
			}
			return nil, fmt.Errorf("core: record %d is a torn final line; resume the sweep instead of decoding it", len(out)+1)
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading record %d: %w", len(out)+1, err)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var rec R
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("core: decoding record %d: %w", len(out)+1, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("core: record %d has trailing data", len(out)+1)
		}
		out = append(out, rec)
	}
}

// EncodeRecords writes a sweep stream - header line, then one record per
// line - exactly as a JSONLSink would during the live run. records must be
// a slice of one of the ten record types (the shape DecodeRecords
// returns); EncodeRecords(w, DecodeRecords(kind, r)) reproduces r byte for
// byte.
func EncodeRecords(w io.Writer, h SweepHeader, records any) error {
	v := reflect.ValueOf(records)
	if !v.IsValid() || v.Kind() != reflect.Slice {
		return fmt.Errorf("core: EncodeRecords wants a record slice, got %T", records)
	}
	sink := NewJSONLSink(w)
	sink.Header(h)
	for i := 0; i < v.Len(); i++ {
		sink.Record(v.Index(i).Interface())
	}
	return sink.Err()
}

// RecordCount reports the length of a typed record slice as returned by
// DecodeRecords, without the caller having to type-switch.
func RecordCount(records any) int {
	v := reflect.ValueOf(records)
	if !v.IsValid() || v.Kind() != reflect.Slice {
		return 0
	}
	return v.Len()
}

// VerifyComplete checks that a decoded record stream covers its header's
// whole plan - the gate that keeps an interrupted sweep (a clean-prefix
// checkpoint) from being mistaken for a finished one. It needs no config:
// plan cells appear in the stream as runs of records sharing one cell
// identity, so coverage is countable from the records themselves, and the
// two kinds with multi-record cells (BER, HCFirst) carry enough structure
// to validate the final run too - every complete cell's records end with
// its derived WCDP record (BER always; HCFirst whenever a pattern
// flipped), and all cells of one sweep share one per-cell pattern count.
//
// Aging streams no per-cell records (the joined records flush only after
// both passes), so its completeness cannot be established from the file;
// VerifyComplete rejects it, and aging results should enter a store only
// through a path that witnessed the run finish (as hbmrdd's finalize
// does).
func VerifyComplete(h SweepHeader, records any) error {
	incomplete := func(covered int) error {
		return fmt.Errorf("core: incomplete sweep: records cover %d of %d plan cells", covered, h.Cells)
	}
	switch recs := records.(type) {
	case []BERRecord:
		return verifyWCDPRuns(h, len(recs), func(i int) (key [5]int, wcdp, found bool) {
			r := recs[i]
			return [5]int{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}, r.WCDP, true
		})
	case []HCFirstRecord:
		return verifyWCDPRuns(h, len(recs), func(i int) (key [5]int, wcdp, found bool) {
			r := recs[i]
			return [5]int{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}, r.WCDP, r.Found
		})
	case []HCNthRecord, []VariabilityRecord, []RowPressBERRecord, []RowPressHCRecord, []BypassRecord, []VRDRecord:
		// One record per plan cell.
		if n := RecordCount(records); n != h.Cells {
			return incomplete(n)
		}
		return nil
	case []ColDisturbRecord:
		// One run of (distance, stripe) records per plan cell; runs group
		// by aggressor-cell identity and all runs share one length.
		runs, span := 0, -1
		i := 0
		for i < len(recs) {
			key := [5]int{recs[i].Chip, recs[i].Channel, recs[i].Pseudo, recs[i].Bank, recs[i].Row}
			j := i
			for ; j < len(recs); j++ {
				if [5]int{recs[j].Chip, recs[j].Channel, recs[j].Pseudo, recs[j].Bank, recs[j].Row} != key {
					break
				}
			}
			runs++
			if span == -1 {
				span = j - i
			} else if j-i != span {
				return fmt.Errorf("core: incomplete sweep: cell %v has %d of %d probe records", key, j-i, span)
			}
			i = j
		}
		if runs != h.Cells {
			return incomplete(runs)
		}
		return nil
	case []AgingRecord:
		return fmt.Errorf("core: aging sweeps stream their records only on completion; a file alone cannot prove the run finished")
	}
	return fmt.Errorf("core: unsupported record slice %T", records)
}

// verifyWCDPRuns validates the BER/HCFirst cell structure: records group
// into runs by cell identity; a run whose measurements found a flip must
// end with exactly one WCDP record (the derived worst-case row, always
// emitted last); every run carries the same number of measurement
// (non-WCDP) records, one per configured pattern; and the run count must
// equal the header's plan cell count.
func verifyWCDPRuns(h SweepHeader, n int, at func(i int) (key [5]int, wcdp, found bool)) error {
	runs := 0
	patterns := -1
	i := 0
	for i < n {
		key, _, _ := at(i)
		runs++
		measured, anyFound, sawWCDP := 0, false, false
		j := i
		for ; j < n; j++ {
			k, wcdp, found := at(j)
			if k != key {
				break
			}
			if sawWCDP {
				return fmt.Errorf("core: malformed sweep: records after cell %v's WCDP record", key)
			}
			if wcdp {
				sawWCDP = true
				continue
			}
			measured++
			if found {
				anyFound = found
			}
		}
		if anyFound && !sawWCDP {
			return fmt.Errorf("core: incomplete sweep: cell %v is missing its WCDP record", key)
		}
		if patterns == -1 {
			patterns = measured
		} else if measured != patterns {
			return fmt.Errorf("core: incomplete sweep: cell %v has %d of %d pattern records", key, measured, patterns)
		}
		i = j
	}
	if runs != h.Cells {
		return fmt.Errorf("core: incomplete sweep: records cover %d of %d plan cells", runs, h.Cells)
	}
	return nil
}
