package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hbmrd/internal/pattern"
)

// engineBERConfig is the shared workload for the engine tests: multiple
// channels and rows so the sweep has enough cells to shuffle across
// workers, plus masks so "byte-identical" covers byte-slice payloads.
func engineBERConfig() BERConfig {
	return BERConfig{
		Channels:     []int{0, 1, 2, 3},
		Rows:         SampleRows(6),
		Patterns:     []pattern.Pattern{pattern.Rowstripe0, pattern.Checkered0},
		Reps:         1,
		CollectMasks: true,
	}
}

// TestSweepDeterministicAcrossJobs: the same config must produce
// byte-identical record slices no matter how many workers execute it.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	t.Parallel()
	base, err := RunBERContext(context.Background(), smallFleet(t, 0, 1), engineBERConfig(), WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no records")
	}
	for _, jobs := range []int{2, 8} {
		got, err := RunBERContext(context.Background(), smallFleet(t, 0, 1), engineBERConfig(), WithJobs(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("-jobs %d diverged from -jobs 1", jobs)
		}
	}
}

// cancelSink cancels a context after a fixed number of completed cells.
type cancelSink struct {
	cancel   context.CancelFunc
	after    int
	seen     int
	total    int
	finished error
	records  []any
}

func (s *cancelSink) Start(total int) { s.total = total }
func (s *cancelSink) Progress(done, total int) {
	s.seen = done
	if done == s.after {
		s.cancel()
	}
}
func (s *cancelSink) Record(rec any)   { s.records = append(s.records, rec) }
func (s *cancelSink) Finish(err error) { s.finished = err }

// TestSweepCancellation: a cancelled sweep returns ctx.Err() promptly
// (queued cells are dropped, not drained), the sink keeps the plan-order
// prefix it already received, and a fresh context afterwards re-runs the
// same config to byte-identical results.
func TestSweepCancellation(t *testing.T) {
	t.Parallel()
	cfg := engineBERConfig()
	cfg.Rows = SampleRows(24)
	cfg.Reps = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelSink{cancel: cancel, after: 2}
	start := time.Now()
	recs, err := RunBERContext(ctx, smallFleet(t, 0), cfg, WithJobs(2), WithSink(sink))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if recs != nil {
		t.Error("cancelled sweep returned records")
	}
	if !errors.Is(sink.finished, context.Canceled) {
		t.Errorf("sink.Finish got %v, want context.Canceled", sink.finished)
	}
	// Promptness, twice over: well under any full-run duration, and with
	// most of the plan's cells never executed (2 in-flight cells may
	// still finish after the cancel fires).
	if deadline := 20 * time.Second; elapsed > deadline {
		t.Errorf("cancellation took %v, deadline %v", elapsed, deadline)
	}
	if sink.total == 0 || sink.seen > sink.after+2 {
		t.Errorf("completed %d of %d cells after cancelling at %d", sink.seen, sink.total, sink.after)
	}

	// Resumed: the identical config on a fresh context must complete and
	// match a serial baseline exactly.
	baseline, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithJobs(4))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(baseline, resumed) {
		t.Error("resumed run diverged from baseline")
	}
	// The partial stream is a strict plan-order prefix of the full set.
	for i, r := range sink.records {
		if !reflect.DeepEqual(r, baseline[i]) {
			t.Fatalf("streamed record %d is not the plan-order prefix", i)
		}
	}
}

// TestSweepPreCancelled: an already-done context runs nothing.
func TestSweepPreCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &cancelSink{cancel: func() {}}
	recs, err := RunBERContext(ctx, smallFleet(t, 0), engineBERConfig(), WithSink(sink))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if recs != nil || len(sink.records) != 0 || sink.seen != 0 {
		t.Errorf("pre-cancelled sweep did work: %d recs, %d streamed, %d cells", len(recs), len(sink.records), sink.seen)
	}
}

// recordSink collects the record stream and progress bookkeeping.
type recordSink struct {
	started   int
	total     int
	progress  int
	lastDone  int
	records   []any
	finishes  int
	finishErr error
}

func (s *recordSink) Start(total int) { s.started++; s.total = total }
func (s *recordSink) Progress(done, total int) {
	s.progress++
	s.lastDone = done
}
func (s *recordSink) Record(rec any)   { s.records = append(s.records, rec) }
func (s *recordSink) Finish(err error) { s.finishes++; s.finishErr = err }

// TestSweepSinkStreamsPlanOrder: with maximum worker interleaving, the
// sink still receives every record in exactly the order of the returned
// slice, and the lifecycle callbacks fire once each.
func TestSweepSinkStreamsPlanOrder(t *testing.T) {
	t.Parallel()
	sink := &recordSink{}
	recs, err := RunHCFirstContext(context.Background(), smallFleet(t, 0), HCFirstConfig{
		Channels: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Rows:     SampleRows(3),
		Patterns: []pattern.Pattern{pattern.Checkered0},
		Reps:     1,
	}, WithJobs(8), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if sink.started != 1 || sink.finishes != 1 || sink.finishErr != nil {
		t.Fatalf("lifecycle: %d starts, %d finishes (err %v)", sink.started, sink.finishes, sink.finishErr)
	}
	if sink.total != 8*3 || sink.lastDone != sink.total || sink.progress != sink.total {
		t.Errorf("progress: total %d, last %d, callbacks %d", sink.total, sink.lastDone, sink.progress)
	}
	if len(sink.records) != len(recs) {
		t.Fatalf("streamed %d records, returned %d", len(sink.records), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(sink.records[i], recs[i]) {
			t.Fatalf("streamed record %d out of plan order", i)
		}
	}
}

// TestSweepErrorStopsQueuedCells: a failing cell aborts the sweep with a
// wrapped error instead of draining the remaining plan.
func TestSweepErrorStopsQueuedCells(t *testing.T) {
	t.Parallel()
	sink := &recordSink{}
	cfg := engineBERConfig()
	cfg.Rows = []int{0} // victim at the bank edge: initPattern must fail
	_, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithSink(sink))
	if err == nil {
		t.Fatal("edge-row sweep succeeded")
	}
	if !errors.Is(sink.finishErr, err) {
		t.Errorf("sink.Finish got %v, want %v", sink.finishErr, err)
	}
}

// failingSink reports a write failure after it has seen one record.
type failingSink struct {
	recordSink
	err error
}

func (s *failingSink) Err() error {
	if len(s.records) > 0 {
		return s.err
	}
	return nil
}

// TestSweepAbortsOnSinkFailure: a sink that reports a persistent write
// error (disk full) stops the sweep early instead of computing the whole
// plan into a dead stream.
func TestSweepAbortsOnSinkFailure(t *testing.T) {
	t.Parallel()
	sink := &failingSink{err: errors.New("no space left on device")}
	cfg := engineBERConfig()
	cfg.Rows = SampleRows(16)
	recs, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithJobs(2), WithSink(sink))
	if err == nil || !strings.Contains(err.Error(), "no space left") {
		t.Fatalf("err = %v, want the sink's write failure", err)
	}
	if recs != nil {
		t.Error("failed sweep returned records")
	}
	if total := len(cfg.Channels) * len(cfg.Rows); sink.lastDone >= total {
		t.Errorf("sweep ran all %d cells despite the dead sink", total)
	}
}

// TestRunnersAcceptContext smoke-tests every remaining Run*Context entry
// point under a background context at tiny scale, pinning determinism
// across worker counts for each record type.
func TestRunnersAcceptContext(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("covers every runner; slow at any scale")
	}
	ctx := context.Background()

	t.Run("hcnth", func(t *testing.T) {
		t.Parallel()
		cfg := HCNthConfig{Channels: []int{0}, Rows: SampleRows(3), Patterns: []pattern.Pattern{pattern.Checkered0}, MaxFlips: 3}
		a, err := RunHCNthContext(ctx, smallFleet(t, 1), cfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunHCNthContext(ctx, smallFleet(t, 1), cfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("HCNth diverged across worker counts")
		}
	})

	t.Run("variability", func(t *testing.T) {
		t.Parallel()
		cfg := VariabilityConfig{Rows: SampleRows(2), Iterations: 4}
		a, err := RunVariabilityContext(ctx, smallFleet(t, 0, 1), cfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunVariabilityContext(ctx, smallFleet(t, 0, 1), cfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("Variability diverged across worker counts")
		}
	})

	t.Run("rowpress", func(t *testing.T) {
		t.Parallel()
		berCfg := RowPressBERConfig{Channels: []int{0, 1}, Rows: RegionRows(1)}
		a, err := RunRowPressBERContext(ctx, smallFleet(t, 3), berCfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunRowPressBERContext(ctx, smallFleet(t, 3), berCfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("RowPressBER diverged across worker counts")
		}
		hcCfg := RowPressHCConfig{Channels: []int{0, 1}, Rows: SampleRows(2)}
		c, err := RunRowPressHCContext(ctx, smallFleet(t, 2), hcCfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		d, err := RunRowPressHCContext(ctx, smallFleet(t, 2), hcCfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, d) {
			t.Error("RowPressHC diverged across worker counts")
		}
	})

	t.Run("bypass", func(t *testing.T) {
		t.Parallel()
		cfg := BypassConfig{Victims: []int{6000}, DummyCounts: []int{4}, AggActs: []int{26}, Windows: 2048}
		a, err := RunBypassContext(ctx, smallFleet(t, 0), cfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunBypassContext(ctx, smallFleet(t, 0), cfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("Bypass diverged across worker counts")
		}
	})

	t.Run("aging", func(t *testing.T) {
		t.Parallel()
		cfg := AgingConfig{BER: BERConfig{Channels: []int{0}, Rows: SampleRows(4), Reps: 1}}
		a, err := RunAgingContext(ctx, smallFleet(t, 4), cfg, WithJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunAgingContext(ctx, smallFleet(t, 4), cfg, WithJobs(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Error("Aging diverged across worker counts")
		}
	})
}
