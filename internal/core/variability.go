package core

import (
	"context"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// VariabilityConfig parameterizes the Fig 13 experiment: how much a row's
// HCfirst moves across repeated measurements (the paper runs 50 iterations
// on 768 rows of channel 0 per chip with Rowstripe0).
type VariabilityConfig struct {
	Channel int
	Pseudo  int
	Bank    int
	Rows    []int // default SampleRows(16)
	Pattern pattern.Pattern
	// Iterations is the number of repeated HCfirst measurements (default 50).
	Iterations           int
	MinHammer, MaxHammer int
	TOn                  hbm.TimePS
}

func (c *VariabilityConfig) fill(g hbm.Geometry) {
	if len(c.Rows) == 0 {
		c.Rows = SampleRowsIn(g, 16)
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Rowstripe0
	}
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.MinHammer == 0 {
		c.MinHammer = 1000
	}
	if c.MaxHammer == 0 {
		c.MaxHammer = 300 * 1024
	}
}

// VariabilityRecord reports one row's HCfirst range across iterations.
type VariabilityRecord struct {
	Chip, Row      int
	MinHC, MaxHC   int
	Iterations     int
	MeasuredRatios bool // false when the row never flipped
}

// Ratio returns MaxHC/MinHC, the Fig 13 metric.
func (r VariabilityRecord) Ratio() float64 {
	if r.MinHC == 0 {
		return 0
	}
	return float64(r.MaxHC) / float64(r.MinHC)
}

// RunVariability measures HCfirst Iterations times per row and records the
// extremes.
func RunVariability(fleet []*TestChip, cfg VariabilityConfig) ([]VariabilityRecord, error) {
	return RunVariabilityContext(context.Background(), fleet, cfg)
}

// RunVariabilityContext is RunVariability with cancellation and execution
// options. Records are in plan order: (chip, row).
func RunVariabilityContext(ctx context.Context, fleet []*TestChip, cfg VariabilityConfig, opts ...RunOption) ([]VariabilityRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, []int{cfg.Channel}, []int{cfg.Pseudo}, []int{cfg.Bank}, len(cfg.Rows))
	o := applyOpts(opts)
	p, st, err := prepareSweep[VariabilityRecord](KindVariability, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(ctx context.Context, env *cellEnv, c Cell) ([]VariabilityRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		row := cfg.Rows[c.Point]
		rec := VariabilityRecord{Chip: env.tc.Index, Row: row, Iterations: cfg.Iterations}
		for it := 0; it < cfg.Iterations; it++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hc, found, err := ref.hcSearch(row, cfg.Pattern, 1, cfg.MinHammer, cfg.MaxHammer, cfg.TOn)
			if err != nil {
				return nil, err
			}
			if !found {
				continue
			}
			if !rec.MeasuredRatios || hc < rec.MinHC {
				rec.MinHC = hc
			}
			if hc > rec.MaxHC {
				rec.MaxHC = hc
			}
			rec.MeasuredRatios = true
		}
		return []VariabilityRecord{rec}, nil
	})
}
