package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// roundTripFleet builds a small two-chip fleet on one preset with the
// identity mapping (matching the golden-digest workload's construction).
func roundTripFleet(t *testing.T, preset hbm.Preset) []*TestChip {
	t.Helper()
	fleet, err := NewFleet([]int{0, 5}, hbm.WithGeometry(preset), hbm.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// roundTripSweeps enumerates one tiny sweep per experiment kind - every
// record type the sink can emit. Each closure runs its sweep with the
// given options and returns the in-memory record slice as `any`, the
// same shape DecodeRecords returns.
func roundTripSweeps(t *testing.T, preset hbm.Preset) map[Kind]func(opts ...RunOption) (any, error) {
	t.Helper()
	ctx := context.Background()
	g := preset.Geometry
	rows := SampleRowsIn(g, 2)
	pats := []pattern.Pattern{pattern.Rowstripe0, pattern.Checkered0}
	return map[Kind]func(opts ...RunOption) (any, error){
		KindBER: func(opts ...RunOption) (any, error) {
			return RunBERContext(ctx, roundTripFleet(t, preset), BERConfig{
				Channels: []int{0}, Rows: rows, Patterns: pats,
				HammerCount: 30_000, Reps: 1, CollectMasks: true,
			}, opts...)
		},
		KindHCFirst: func(opts ...RunOption) (any, error) {
			return RunHCFirstContext(ctx, roundTripFleet(t, preset), HCFirstConfig{
				Channels: []int{0}, Rows: rows[:1], Patterns: pats, Reps: 1,
			}, opts...)
		},
		KindHCNth: func(opts ...RunOption) (any, error) {
			return RunHCNthContext(ctx, roundTripFleet(t, preset), HCNthConfig{
				Channels: []int{0}, Rows: rows[:1], Patterns: pats[:1], MaxFlips: 3,
			}, opts...)
		},
		KindVariability: func(opts ...RunOption) (any, error) {
			return RunVariabilityContext(ctx, roundTripFleet(t, preset), VariabilityConfig{
				Rows: rows[:1], Iterations: 3,
			}, opts...)
		},
		KindRowPressBER: func(opts ...RunOption) (any, error) {
			return RunRowPressBERContext(ctx, roundTripFleet(t, preset), RowPressBERConfig{
				Channels: []int{0}, Rows: rows,
				TAggONs:     []hbm.TimePS{29 * hbm.NS, 3_900 * hbm.NS},
				HammerCount: 2_000, RetentionReps: 1,
			}, opts...)
		},
		KindRowPressHC: func(opts ...RunOption) (any, error) {
			return RunRowPressHCContext(ctx, roundTripFleet(t, preset), RowPressHCConfig{
				Channels: []int{0}, Rows: rows[:1],
				TAggONs:   []hbm.TimePS{29 * hbm.NS, 3_900 * hbm.NS},
				MaxHammer: 60_000,
			}, opts...)
		},
		KindBypass: func(opts ...RunOption) (any, error) {
			return RunBypassContext(ctx, roundTripFleet(t, preset), BypassConfig{
				Victims: rows[:1], DummyCounts: []int{1}, AggActs: []int{18}, Windows: 32,
			}, opts...)
		},
		KindAging: func(opts ...RunOption) (any, error) {
			return RunAgingContext(ctx, roundTripFleet(t, preset), AgingConfig{
				BER: BERConfig{Channels: []int{0}, Rows: rows, Patterns: pats[:1], Reps: 1},
			}, opts...)
		},
		KindVRD: func(opts ...RunOption) (any, error) {
			return RunVRDContext(ctx, roundTripFleet(t, preset), VRDConfig{
				Rows: rows, Trials: 3,
			}, opts...)
		},
		KindColDisturb: func(opts ...RunOption) (any, error) {
			return RunColDisturbContext(ctx, roundTripFleet(t, preset), ColDisturbConfig{
				AggRows: rows[:1], Distances: []int{1, 3}, Stripes: []int{2},
				Reads: 8_000, MaxReads: 1 << 17,
			}, opts...)
		},
	}
}

// TestSweepRoundTripByteIdentity is the decode layer's contract: for
// every experiment kind, the streamed JSONL of a sweep decodes into the
// kind's concrete record type and re-encodes byte-identically - on every
// preset - so the decode layer cannot drift from the sink encoding
// without CI noticing. Wired into the golden-digest CI job (make golden)
// alongside the sweep digests and the resume byte-identity tests.
func TestSweepRoundTripByteIdentity(t *testing.T) {
	t.Parallel()
	// The encoding depends on the record schema, not the organization, so
	// the three legacy presets plus one multi-rank matrix entry cover the
	// contract without sweeping all ~20 registry organizations.
	var presets []hbm.Preset
	for _, name := range []string{hbm.PresetHBM2, hbm.PresetHBM2E, hbm.PresetHBM3, "HBM3_16Gb_4R"} {
		p, err := hbm.LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		presets = append(presets, p)
	}
	if testing.Short() {
		presets = presets[:1]
	}
	for _, preset := range presets {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			for kind, runSweep := range roundTripSweeps(t, preset) {
				kind, runSweep := kind, runSweep
				t.Run(string(kind), func(t *testing.T) {
					t.Parallel()
					var buf bytes.Buffer
					sink := NewJSONLSink(&buf)
					recs, err := runSweep(WithSink(sink))
					if err != nil {
						t.Fatal(err)
					}
					if err := sink.Err(); err != nil {
						t.Fatal(err)
					}
					streamed := buf.Bytes()
					if len(streamed) == 0 {
						t.Fatal("sweep streamed no bytes")
					}

					h, decoded, err := DecodeRecords(kind, bytes.NewReader(streamed))
					if err != nil {
						t.Fatalf("DecodeRecords: %v", err)
					}
					if h.Kind != string(kind) {
						t.Fatalf("decoded header kind %q", h.Kind)
					}
					if !reflect.DeepEqual(decoded, recs) {
						t.Fatalf("decoded records differ from the runner's in-memory records")
					}

					var re bytes.Buffer
					if err := EncodeRecords(&re, h, decoded); err != nil {
						t.Fatalf("EncodeRecords: %v", err)
					}
					if !bytes.Equal(re.Bytes(), streamed) {
						t.Fatalf("re-encoded stream is not byte-identical: %d bytes vs %d",
							re.Len(), len(streamed))
					}

					// Kind mismatch must be rejected, not mis-typed.
					wrong := KindBER
					if kind == KindBER {
						wrong = KindHCFirst
					}
					if _, _, err := DecodeRecords(wrong, bytes.NewReader(streamed)); err == nil ||
						!strings.Contains(err.Error(), "sweep") {
						t.Fatalf("DecodeRecords(%s) on a %s stream: %v", wrong, kind, err)
					}
				})
			}
		})
	}
}

// TestDecodeRejectsTornTail: a stream whose final line lacks its newline
// is an interrupted write and must not decode as a finished sweep.
func TestDecodeRejectsTornTail(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	recs, err := RunBERContext(context.Background(), smallFleet(t, 0), BERConfig{
		Channels: []int{0}, Rows: SampleRows(1),
		Patterns: []pattern.Pattern{pattern.Rowstripe0}, Reps: 1,
	}, WithSink(sink))
	if err != nil || len(recs) == 0 {
		t.Fatalf("sweep: %v (%d records)", err, len(recs))
	}
	torn := buf.Bytes()[:buf.Len()-1]
	if _, _, err := DecodeRecords(KindBER, bytes.NewReader(torn)); err == nil ||
		!strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn tail decoded: %v", err)
	}
}
