package core

import (
	"fmt"
	"sort"

	"hbmrd/internal/pattern"
	"hbmrd/internal/stats"
)

// AgingConfig parameterizes the Fig 10 experiment: the paper re-measures
// BER on Chips 2-5 after keeping them powered for 7 more months (3072
// rows, 3 channels, Checkered1).
type AgingConfig struct {
	// BER is the underlying measurement configuration; the pattern
	// defaults to Checkered1 and channels to {0,1,2}.
	BER BERConfig
	// AdditionalMonths is the powered-on time between the two
	// measurements (default 7).
	AdditionalMonths float64
}

// AgingRecord pairs one row's BER before and after aging.
type AgingRecord struct {
	Chip, Channel, Row int
	OldBERPercent      float64
	NewBERPercent      float64
}

// RunAging measures BER, advances each chip's powered-on age, and measures
// again. The chips' ages are restored afterwards.
func RunAging(fleet []*TestChip, cfg AgingConfig) ([]AgingRecord, error) {
	if cfg.AdditionalMonths == 0 {
		cfg.AdditionalMonths = 7
	}
	if len(cfg.BER.Patterns) == 0 {
		cfg.BER.Patterns = []pattern.Pattern{pattern.Checkered1}
	}
	if len(cfg.BER.Channels) == 0 {
		cfg.BER.Channels = []int{0, 1, 2}
	}

	before, err := RunBER(fleet, cfg.BER)
	if err != nil {
		return nil, fmt.Errorf("core: aging baseline: %w", err)
	}
	for _, tc := range fleet {
		m := tc.Chip.Model()
		m.SetAgeMonths(m.AgeMonths() + cfg.AdditionalMonths)
	}
	after, err := RunBER(fleet, cfg.BER)
	for _, tc := range fleet {
		m := tc.Chip.Model()
		m.SetAgeMonths(m.AgeMonths() - cfg.AdditionalMonths)
	}
	if err != nil {
		return nil, fmt.Errorf("core: aged measurement: %w", err)
	}

	type key struct{ chip, ch, pc, bank, row int }
	oldBER := make(map[key]float64, len(before))
	for _, r := range before {
		if r.WCDP {
			continue
		}
		oldBER[key{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}] = r.BERPercent
	}
	var out []AgingRecord
	for _, r := range after {
		if r.WCDP {
			continue
		}
		old, ok := oldBER[key{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}]
		if !ok {
			continue
		}
		out = append(out, AgingRecord{
			Chip: r.Chip, Channel: r.Channel, Row: r.Row,
			OldBERPercent: old, NewBERPercent: r.BERPercent,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Chip != b.Chip:
			return a.Chip < b.Chip
		case a.Channel != b.Channel:
			return a.Channel < b.Channel
		default:
			return a.Row < b.Row
		}
	})
	return out, nil
}

// AgingSummary aggregates Fig 10's two panels: the distribution of
// New/Old for rows whose BER rose and Old/New for the rest, plus the
// up/down row counts the paper quotes (18713 vs 17973).
type AgingSummary struct {
	RowsUp, RowsDown, RowsEqual int
	// UpRatioPercentiles and DownRatioPercentiles hold P1..P99 of the
	// respective ratio distributions at the paper's percentile marks.
	Percentiles          []float64
	UpRatioPercentiles   []float64
	DownRatioPercentiles []float64
}

// SummarizeAging computes the Fig 10 statistics. Rows with a zero BER on
// the shrinking side are excluded from ratio distributions (as outliers,
// like the paper's 178 omitted rows).
func SummarizeAging(recs []AgingRecord) AgingSummary {
	ps := []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}
	var up, down []float64
	s := AgingSummary{Percentiles: ps}
	for _, r := range recs {
		switch {
		case r.NewBERPercent > r.OldBERPercent:
			s.RowsUp++
			if r.OldBERPercent > 0 {
				up = append(up, r.NewBERPercent/r.OldBERPercent)
			}
		case r.NewBERPercent < r.OldBERPercent:
			s.RowsDown++
			if r.NewBERPercent > 0 {
				down = append(down, r.OldBERPercent/r.NewBERPercent)
			}
		default:
			s.RowsEqual++
		}
	}
	s.UpRatioPercentiles = stats.Percentiles(up, ps)
	s.DownRatioPercentiles = stats.Percentiles(down, ps)
	return s
}
