package core

import (
	"context"
	"fmt"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/stats"
)

// AgingConfig parameterizes the Fig 10 experiment: the paper re-measures
// BER on Chips 2-5 after keeping them powered for 7 more months (3072
// rows, 3 channels, Checkered1).
type AgingConfig struct {
	// BER is the underlying measurement configuration; the pattern
	// defaults to Checkered1 and channels to {0,1,2}.
	BER BERConfig
	// AdditionalMonths is the powered-on time between the two
	// measurements (default 7).
	AdditionalMonths float64
}

// fill resolves the aging defaults and the inner BER sweep's, so the
// config is canonical before fingerprinting.
func (c *AgingConfig) fill(g hbm.Geometry) {
	if c.AdditionalMonths == 0 {
		c.AdditionalMonths = 7
	}
	if len(c.BER.Patterns) == 0 {
		c.BER.Patterns = []pattern.Pattern{pattern.Checkered1}
	}
	if len(c.BER.Channels) == 0 {
		c.BER.Channels = []int{0, 1, 2}
	}
	c.BER.fill(g)
}

// AgingRecord pairs one row's BER before and after aging.
type AgingRecord struct {
	Chip, Channel, Row int
	OldBERPercent      float64
	NewBERPercent      float64
}

// RunAging measures BER, advances each chip's powered-on age, and measures
// again. The chips' ages are restored afterwards.
func RunAging(fleet []*TestChip, cfg AgingConfig) ([]AgingRecord, error) {
	return RunAgingContext(context.Background(), fleet, cfg)
}

// RunAgingContext is RunAging with cancellation and execution options: it
// composes two RunBERContext sweeps. A caller's sink sees one combined
// lifecycle - Start once with both sweeps' cell total, progress spanning
// both, and exactly the returned AgingRecords streamed at the end (the
// intermediate BER records of the two passes are not emitted, since the
// joined record only exists once both passes finish) - honoring the Sink
// contract that a stream mirrors the returned slice.
func RunAgingContext(ctx context.Context, fleet []*TestChip, cfg AgingConfig, opts ...RunOption) ([]AgingRecord, error) {
	cfg.fill(fleetGeometry(fleet))

	o := applyOpts(opts)
	// Aging streams its joined records only once both passes finish, so a
	// truncated aging file holds no per-cell progress worth warm-starting.
	if o.resume != nil {
		return nil, fmt.Errorf("core: aging sweeps stream no resumable prefix; re-run from scratch")
	}
	// Joined records are emitted only once both inner sweeps finish, so no
	// cell range of a single plan maps to a slice of the output stream.
	if o.shard != nil {
		return nil, fmt.Errorf("core: aging sweeps compose two inner sweeps and cannot be sharded")
	}
	var innerOpts []RunOption
	if o.jobs > 0 {
		innerOpts = append(innerOpts, WithJobs(o.jobs))
	}
	var agg *agingSink
	if o.sink != nil {
		fp, err := fingerprintSweep(KindAging, fleet, cfg)
		if err != nil {
			return nil, err
		}
		perSweep := len(newPlan(fleet, cfg.BER.Channels, cfg.BER.Pseudos, cfg.BER.Banks, len(cfg.BER.Rows)).cells)
		agg = &agingSink{inner: o.sink, total: 2 * perSweep}
		innerOpts = append(innerOpts, WithSink(agg))
		o.sink.Start(agg.total)
		// The combined stream carries the aging fingerprint; the inner BER
		// sweeps' headers are absorbed by the adapter below.
		if hs, ok := o.sink.(HeaderSink); ok {
			hs.Header(SweepHeader{Format: sweepFormat, Kind: string(KindAging), Fingerprint: fp,
				Cells: agg.total, Generation: CodeGeneration})
		}
	}
	finish := func(err error) {
		if agg != nil {
			agg.inner.Finish(err)
		}
	}

	before, err := RunBERContext(ctx, fleet, cfg.BER, innerOpts...)
	if err != nil {
		err = fmt.Errorf("core: aging baseline: %w", err)
		finish(err)
		return nil, err
	}
	if agg != nil {
		agg.offset = agg.total / 2
	}
	for _, tc := range fleet {
		m := tc.Chip.Model()
		m.SetAgeMonths(m.AgeMonths() + cfg.AdditionalMonths)
	}
	after, err := RunBERContext(ctx, fleet, cfg.BER, innerOpts...)
	for _, tc := range fleet {
		m := tc.Chip.Model()
		m.SetAgeMonths(m.AgeMonths() - cfg.AdditionalMonths)
	}
	if err != nil {
		err = fmt.Errorf("core: aged measurement: %w", err)
		finish(err)
		return nil, err
	}

	type key struct{ chip, ch, pc, bank, row int }
	oldBER := make(map[key]float64, len(before))
	for _, r := range before {
		if r.WCDP {
			continue
		}
		oldBER[key{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}] = r.BERPercent
	}
	// The join iterates the aged sweep, which the engine already returns
	// in plan order, so the paired records inherit that determinism.
	var out []AgingRecord
	for _, r := range after {
		if r.WCDP {
			continue
		}
		old, ok := oldBER[key{r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row}]
		if !ok {
			continue
		}
		out = append(out, AgingRecord{
			Chip: r.Chip, Channel: r.Channel, Row: r.Row,
			OldBERPercent: old, NewBERPercent: r.BERPercent,
		})
	}
	if agg != nil {
		for _, r := range out {
			agg.inner.Record(r)
		}
		agg.inner.Finish(nil)
	}
	return out, nil
}

// agingSink adapts the caller's sink to the aging experiment's two inner
// BER sweeps: inner lifecycle calls and intermediate records are absorbed
// (RunAgingContext owns Start/Record/Finish on the real sink), and
// progress is re-based so the two passes read as one 0..total sweep.
type agingSink struct {
	inner  Sink
	total  int
	offset int
}

func (s *agingSink) Start(int) {}

func (s *agingSink) Progress(done, _ int) { s.inner.Progress(s.offset+done, s.total) }

func (s *agingSink) Record(any) {}

func (s *agingSink) Finish(error) {}

// Err forwards the real sink's write-failure state so the engine's
// abort-on-dead-stream poll still works through the adapter.
func (s *agingSink) Err() error {
	if f, ok := s.inner.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// AgingSummary aggregates Fig 10's two panels: the distribution of
// New/Old for rows whose BER rose and Old/New for the rest, plus the
// up/down row counts the paper quotes (18713 vs 17973).
type AgingSummary struct {
	RowsUp, RowsDown, RowsEqual int
	// UpRatioPercentiles and DownRatioPercentiles hold P1..P99 of the
	// respective ratio distributions at the paper's percentile marks.
	Percentiles          []float64
	UpRatioPercentiles   []float64
	DownRatioPercentiles []float64
}

// SummarizeAging computes the Fig 10 statistics. Rows with a zero BER on
// the shrinking side are excluded from ratio distributions (as outliers,
// like the paper's 178 omitted rows).
func SummarizeAging(recs []AgingRecord) AgingSummary {
	ps := []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}
	var up, down []float64
	s := AgingSummary{Percentiles: ps}
	for _, r := range recs {
		switch {
		case r.NewBERPercent > r.OldBERPercent:
			s.RowsUp++
			if r.OldBERPercent > 0 {
				up = append(up, r.NewBERPercent/r.OldBERPercent)
			}
		case r.NewBERPercent < r.OldBERPercent:
			s.RowsDown++
			if r.NewBERPercent > 0 {
				down = append(down, r.OldBERPercent/r.NewBERPercent)
			}
		default:
			s.RowsEqual++
		}
	}
	s.UpRatioPercentiles = stats.Percentiles(up, ps)
	s.DownRatioPercentiles = stats.Percentiles(down, ps)
	return s
}
