// Package core is the characterization engine: it reproduces every
// experiment in the paper's evaluation (Figs 3-17, Tables 1-2) by driving
// simulated HBM2 chips through their command interface, exactly following
// the methodology of §3 (double-sided patterns, disabled refresh and ECC,
// per-row repetition policy, retention filtering, WCDP selection).
//
// Every experiment is the same shape - fan out over chip x channel x
// pseudo channel x bank x inner point, measure, collect deterministically -
// so all runners execute on one generic sweep engine (engine.go):
//
//   - A runner builds an explicit plan of Cells up front; the plan order is
//     the record order, so results are deterministic by construction (each
//     cell writes into its own preallocated slot - no result mutex, no
//     post-hoc sort).
//   - Cells are grouped by (chip, channel), the unit of device-lock
//     freedom: groups run concurrently on a bounded worker pool (WithJobs)
//     while cells within a group run serially in plan order.
//   - Each Run*Context entry point threads a context.Context through the
//     sweep; cancellation drops queued work promptly and returns ctx.Err().
//     The Run* forms are thin Background-context wrappers.
//   - A Sink (WithSink) observes the sweep live: progress per completed
//     cell and records streamed strictly in plan order, so partial output
//     (e.g. a JSON Lines file from a cancelled -full run) is a valid prefix
//     of the complete result set.
//   - Every sweep carries a fingerprint (fingerprint.go): a stable content
//     hash of (kind, canonical config, geometry, timing, chip set,
//     CodeGeneration), stamped as the header line of streamed files. Equal
//     fingerprints mean byte-identical record streams, which makes
//     truncated files resumable (ResumeFrom + WithResume warm-start the
//     identical sweep from its valid prefix, finishing byte-identically)
//     and finished files content-addressable (internal/store serves a
//     repeat sweep from disk instead of re-running it).
//   - Repeated measurements of one cell (the vrd sweep's per-trial HCfirst
//     bisections, the coldist sweep's per-distance probes) are
//     deterministic through the device's restore epochs: every restore of
//     a row advances its epoch, which reseeds the fault model's
//     TrialJitter deterministically, so trial K of a cell sees the same
//     jitter in every run. Because all of a cell's repeated measurements
//     execute inside that one plan cell, a sharded run replays the
//     identical epoch sequence a local run does (see vrd.go and
//     coldisturb.go for the two sides of this contract).
//
// Adding a new sweep-shaped experiment therefore costs a config struct, a
// plan, a record-span rule for resume, and a measurement closure rather
// than a hand-rolled worker pool.
package core
