package core
