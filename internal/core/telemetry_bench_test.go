package core

import (
	"context"
	"testing"
	"time"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/telemetry"
)

// BenchmarkTelemetryOverheadEngineCell measures what per-cell telemetry
// adds to the engine's collection loop, with the measurement closure
// synthetic (as in BenchmarkSweepCollect) so the numbers isolate the
// loop itself. Disabled is the no-op path the acceptance budget pins at
// zero allocations; enabled pays one time.Now plus a handful of atomic
// updates per cell. Note this synthetic cell is far cheaper than any
// real one - against device cells the relative overhead shrinks by
// orders of magnitude (TestTelemetryOverheadBudget asserts that).
func BenchmarkTelemetryOverheadEngineCell(b *testing.B) {
	fleet, err := NewFleet([]int{0}, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		p := newPlan(fleet, Channels(8), []int{0, 1}, []int{0, 1, 2, 3}, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := runSweep(context.Background(), p, runOpts{}, nil,
				func(_ context.Context, env *cellEnv, c Cell) ([]BERRecord, error) {
					return synthRecords(env.tc.Index, c.Channel, c.Pseudo, c.Bank, c.Point), nil
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("enabled", run)
	b.Run("disabled", func(b *testing.B) {
		telemetry.SetEnabled(false)
		defer telemetry.SetEnabled(true)
		run(b)
	})
}

// TestTelemetryOverheadBudget enforces the observability acceptance
// budget on the engine cell loop: the per-cell instrumentation performs
// zero allocations, and enabling telemetry moves a real sweep's wall
// time by less than 5%. Timing uses min-of-k on a device-backed sweep -
// the minimum strips scheduler noise, and against real cell cost the
// true overhead (one time.Now plus a few atomics per cell) is well
// under the budget line.
func TestTelemetryOverheadBudget(t *testing.T) {
	obs := newSweepObs("ber")
	if obs == nil {
		t.Fatal("telemetry disabled at test entry")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		start := time.Now()
		obs.cell(start, 4)
	}); allocs != 0 {
		t.Errorf("per-cell instrumentation allocates %.0f times per cell, want 0", allocs)
	}

	cfg := BERConfig{
		Channels: []int{0},
		Rows:     SampleRows(2),
		Patterns: engineBERConfig().Patterns[:1],
		Reps:     1,
	}
	oneRun := func() time.Duration {
		start := time.Now()
		if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithJobs(1)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up both states, then interleave the timed pairs so heap
	// growth, page faults, and frequency ramp hit both sides equally.
	// Packages test concurrently, so a single measurement round can
	// still land on a contended scheduler slice; the budget only has to
	// hold on the quietest of a few attempts - a real regression (an
	// allocation or lock on the cell path) fails every one.
	defer telemetry.SetEnabled(true)
	for _, on := range []bool{true, false} {
		telemetry.SetEnabled(on)
		oneRun()
	}
	var delta float64
	for attempt := 0; attempt < 4; attempt++ {
		enabled, disabled := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < 7; i++ {
			telemetry.SetEnabled(true)
			if d := oneRun(); d < enabled {
				enabled = d
			}
			telemetry.SetEnabled(false)
			if d := oneRun(); d < disabled {
				disabled = d
			}
		}
		telemetry.SetEnabled(true)
		delta = float64(enabled-disabled) / float64(disabled) * 100
		t.Logf("cell loop attempt %d: enabled %v, disabled %v, delta %+.2f%%", attempt, enabled, disabled, delta)
		if delta <= 5 {
			return
		}
	}
	t.Errorf("telemetry adds %.2f%% to the engine cell loop on every attempt, budget is 5%%", delta)
}
