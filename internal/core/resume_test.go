package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hbmrd/internal/pattern"
)

// resumeBERConfig is the shared workload for resume tests: two spannable
// dimensions (channels, rows) and two patterns, so each cell emits three
// records (two patterns + WCDP) and mid-cell truncation points exist.
func resumeBERConfig() BERConfig {
	return BERConfig{
		Channels: []int{0, 1, 2},
		Rows:     SampleRows(4),
		Patterns: []pattern.Pattern{pattern.Rowstripe0, pattern.Checkered0},
		Reps:     1,
	}
}

// runToFile executes one sweep into path with a file sink, returning the
// records. A nil cancelAfter runs to completion.
func runBERToFile(t *testing.T, path string, cfg BERConfig, jobs int, cancelAfter int) ([]BERRecord, error) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()
	sink := Sink(NewJSONLFileSink(f))
	if cancelAfter > 0 {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ctx = cctx
		sink = MultiSink(sink, &cancelSink{cancel: cancel, after: cancelAfter})
	}
	return RunBERContext(ctx, smallFleet(t, 0), cfg, WithJobs(jobs), WithSink(sink))
}

// TestSweepResumeByteIdentity is the crash/resume contract: interrupt a
// streamed sweep at any byte offset - cancelled mid-run, torn mid-line,
// cut mid-cell - resume from the truncated JSONL, and the finished file
// must be byte-identical to an uninterrupted run, at every worker count.
func TestSweepResumeByteIdentity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := resumeBERConfig()

	fullPath := filepath.Join(dir, "full.jsonl")
	fullRecs, err := runBERToFile(t, fullPath, cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := bytes.IndexByte(full, '\n') + 1
	if headerEnd <= 0 {
		t.Fatal("full file has no header line")
	}

	// Truncation points: right after the header, mid-line in the first
	// record, a few spots spread through the file (record and cell
	// boundaries and everything between), and one byte short of complete.
	cuts := []int{headerEnd, headerEnd + 10}
	for _, frac := range []int{4, 3, 2} {
		cuts = append(cuts, headerEnd+(len(full)-headerEnd)/frac)
	}
	cuts = append(cuts, len(full)-1)

	for _, jobs := range []int{1, 2, 8} {
		for _, cut := range cuts {
			t.Run(fmt.Sprintf("jobs%d-cut%d", jobs, cut), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "part.jsonl")
				if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				cp, err := ResumeFrom(f)
				if err != nil {
					t.Fatalf("ResumeFrom: %v", err)
				}
				recs, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
					WithJobs(jobs), WithSink(NewJSONLFileSink(f)), WithResume(cp))
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if !reflect.DeepEqual(recs, fullRecs) {
					t.Error("resumed records diverge from the uninterrupted run's")
				}
				got, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, full) {
					t.Errorf("resumed file is not byte-identical: %d bytes vs %d", len(got), len(full))
				}
			})
		}
	}
}

// TestSweepCancelThenResumeFile is the end-to-end flow the CLI performs:
// a sweep cancelled mid-run leaves a valid prefix; resuming that file
// completes it byte-identically.
func TestSweepCancelThenResumeFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := resumeBERConfig()

	fullPath := filepath.Join(dir, "full.jsonl")
	if _, err := runBERToFile(t, fullPath, cfg, 2, 0); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	partPath := filepath.Join(dir, "part.jsonl")
	if _, err := runBERToFile(t, partPath, cfg, 2, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	part, err := os.ReadFile(partPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) == 0 || len(part) >= len(full) || !bytes.HasPrefix(full, part) {
		t.Fatalf("cancelled file (%d bytes) is not a proper prefix of the full file (%d bytes)", len(part), len(full))
	}

	f, err := os.OpenFile(partPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cp, err := ResumeFrom(f)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Records() == 0 {
		t.Fatal("cancelled run checkpointed no records")
	}
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
		WithJobs(8), WithSink(NewJSONLFileSink(f)), WithResume(cp)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(partPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Error("resumed file is not byte-identical to the uninterrupted run")
	}
}

// TestSweepResumeHCFirstDynamicSpan covers the runner whose per-cell
// record count depends on measurement outcome (the WCDP record exists
// only when a pattern flipped): resume must re-derive cell boundaries
// from the prefix's own Found flags.
func TestSweepResumeHCFirstDynamicSpan(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := HCFirstConfig{
		Channels: []int{0, 1},
		Rows:     SampleRows(3),
		Patterns: []pattern.Pattern{pattern.Checkered0, pattern.Rowstripe0},
		Reps:     1,
	}

	fullPath := filepath.Join(dir, "full.jsonl")
	f, err := os.Create(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	fullRecs, err := RunHCFirstContext(context.Background(), smallFleet(t, 0), cfg,
		WithJobs(1), WithSink(NewJSONLFileSink(f)))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Cut mid-file (landing inside some cell's record group for most
	// offsets) and resume.
	cut := len(full) / 2
	partPath := filepath.Join(dir, "part.jsonl")
	if err := os.WriteFile(partPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := os.OpenFile(partPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	cp, err := ResumeFrom(pf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := RunHCFirstContext(context.Background(), smallFleet(t, 0), cfg,
		WithJobs(4), WithSink(NewJSONLFileSink(pf)), WithResume(cp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, fullRecs) {
		t.Error("resumed HCFirst records diverge")
	}
	got, err := os.ReadFile(partPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Error("resumed HCFirst file is not byte-identical")
	}
}

// TestSweepResumeCompleteFileSkipsAllWork: resuming an already-finished
// file executes nothing and returns the full result set.
func TestSweepResumeCompleteFileSkipsAllWork(t *testing.T) {
	t.Parallel()
	cfg := resumeBERConfig()
	path := filepath.Join(t.TempDir(), "full.jsonl")
	fullRecs, err := runBERToFile(t, path, cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cp, err := ResumeFrom(f)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordSink{}
	recs, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
		WithSink(MultiSink(NewJSONLFileSink(f), sink)), WithResume(cp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, fullRecs) {
		t.Error("records diverge from the original run's")
	}
	if sink.progress != 0 || len(sink.records) != 0 {
		t.Errorf("complete-file resume executed work: %d progress callbacks, %d records", sink.progress, len(sink.records))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("complete-file resume rewrote the file")
	}
}

// TestResumeRejectsMismatch: a checkpoint only resumes the identical
// sweep - config drift and kind drift are both detected.
func TestResumeRejectsMismatch(t *testing.T) {
	t.Parallel()
	cfg := resumeBERConfig()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := runBERToFile(t, path, cfg, 1, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ResumeFrom(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	drifted := cfg
	drifted.HammerCount = 111_111
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0), drifted, WithResume(cp)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("drifted config resumed: err = %v", err)
	}
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0, 1), cfg, WithResume(cp)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("drifted chip set resumed: err = %v", err)
	}
	if _, err := RunHCFirstContext(context.Background(), smallFleet(t, 0), HCFirstConfig{}, WithResume(cp)); err == nil ||
		!strings.Contains(err.Error(), "not hcfirst") {
		t.Errorf("wrong kind resumed: err = %v", err)
	}
	if _, err := RunAgingContext(context.Background(), smallFleet(t, 0), AgingConfig{}, WithResume(cp)); err == nil {
		t.Error("aging accepted a resume checkpoint")
	}
}

// TestResumeFromParsing covers the checkpoint reader itself: missing
// headers, torn tails, and multi-sweep files.
func TestResumeFromParsing(t *testing.T) {
	t.Parallel()
	header := `{"hbmrd_sweep":1,"kind":"ber","fingerprint":"sha256:aabbccdd","cells":4,"generation":1}` + "\n"

	if _, err := ResumeFrom(strings.NewReader("")); !errors.Is(err, ErrNoHeader) {
		t.Errorf("empty stream: err = %v, want ErrNoHeader", err)
	}
	if _, err := ResumeFrom(strings.NewReader(`{"Chip":0}` + "\n")); !errors.Is(err, ErrNoHeader) {
		t.Errorf("headerless records: err = %v, want ErrNoHeader", err)
	}

	cp, err := ResumeFrom(strings.NewReader(header + `{"Chip":0}` + "\n" + `{"Chip":1}` + "\n" + `{"Chi`))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Records() != 2 {
		t.Errorf("Records() = %d, want 2 (torn tail dropped)", cp.Records())
	}
	if want := int64(len(header) + 22); cp.ValidBytes() != want {
		t.Errorf("ValidBytes() = %d, want %d", cp.ValidBytes(), want)
	}

	cp, err = ResumeFrom(strings.NewReader(header + `{"Chip":0}` + "\n" + `{"Chip":1,` + "\n" + `{"Chip":2}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Records() != 1 {
		t.Errorf("Records() = %d, want 1 (everything past a malformed line dropped)", cp.Records())
	}

	if _, err := ResumeFrom(strings.NewReader(header + `{"Chip":0}` + "\n" + header)); err == nil ||
		!strings.Contains(err.Error(), "more than one sweep") {
		t.Errorf("multi-sweep file: err = %v", err)
	}
}

// TestZeroCellSweepProgress is the regression test for the
// ProgressSink divide-by-zero on zero-cell plans: an empty fleet yields a
// zero-cell plan whose lifecycle (and any external progress report
// against it) must not panic.
func TestZeroCellSweepProgress(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	sink := NewProgressSink(&buf, "empty")
	recs, err := RunBERContext(context.Background(), nil, resumeBERConfig(), WithSink(sink))
	if err != nil || recs != nil {
		t.Fatalf("zero-cell sweep: recs=%v err=%v", recs, err)
	}
	// A driver reporting completion of an empty sweep must not divide by
	// its zero cell count.
	sink.Progress(0, 0)
	if !strings.Contains(buf.String(), "100%") {
		t.Errorf("empty sweep progress = %q, want a 100%% line", buf.String())
	}
}

// progressSink records the Start total and every Progress pair.
type progressSink struct {
	total    int
	progress [][2]int
}

func (s *progressSink) Start(total int) { s.total = total }
func (s *progressSink) Progress(done, total int) {
	s.progress = append(s.progress, [2]int{done, total})
}
func (s *progressSink) Record(any)   {}
func (s *progressSink) Finish(error) {}

// TestResumeProgressCountsLiveCellsOnly is the regression test for the
// -resume -progress double count: checkpointed cells used to inflate both
// the Start total and the running done count, so a resumed run opened at
// a false percentage over the full plan. Progress must cover only the
// cells the resumed run actually executes.
func TestResumeProgressCountsLiveCellsOnly(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := resumeBERConfig()
	path := filepath.Join(dir, "part.jsonl")

	// Cancel after 2 completed cells (jobs=1 makes completion order plan
	// order), leaving a checkpoint covering exactly those cells.
	if _, err := runBERToFile(t, path, cfg, 1, 2); err == nil {
		t.Fatal("cancelled run reported success")
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cp, err := ResumeFrom(f)
	if err != nil {
		t.Fatal(err)
	}
	// Each BER cell spans len(Patterns)+1 records.
	covered := cp.Records() / (len(cfg.Patterns) + 1)
	if covered == 0 {
		t.Fatal("checkpoint covers no cells")
	}
	totalCells := len(cfg.Channels) * len(cfg.Rows)

	sink := &progressSink{}
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
		WithJobs(1), WithSink(MultiSink(NewJSONLFileSink(f), sink)), WithResume(cp)); err != nil {
		t.Fatal(err)
	}
	live := totalCells - covered
	if sink.total != live {
		t.Errorf("Start total = %d, want %d live cells (%d total - %d checkpointed)",
			sink.total, live, totalCells, covered)
	}
	if len(sink.progress) != live {
		t.Fatalf("%d Progress calls, want %d", len(sink.progress), live)
	}
	for i, p := range sink.progress {
		if p[1] != live {
			t.Fatalf("Progress denominator %d, want %d", p[1], live)
		}
		if p[0] != i+1 {
			t.Fatalf("Progress numerator %d at call %d, want %d", p[0], i, i+1)
		}
	}
}

// TestFingerprintStability: fingerprints are equal exactly when the sweep
// is; each input dimension moves the hash.
func TestFingerprintFor(t *testing.T) {
	t.Parallel()
	fleet := smallFleet(t, 0)
	base, err := FingerprintFor(KindBER, fleet, resumeBERConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := FingerprintFor(KindBER, fleet, resumeBERConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Error("identical sweeps fingerprint differently")
	}
	// An explicitly-default field and the default are the same canonical
	// config.
	explicit := resumeBERConfig()
	explicit.HammerCount = 256 * 1024
	if fp, _ := FingerprintFor(KindBER, fleet, explicit); fp != base {
		t.Error("explicit default changed the fingerprint")
	}
	drift := resumeBERConfig()
	drift.Reps = 2
	if fp, _ := FingerprintFor(KindBER, fleet, drift); fp == base {
		t.Error("config change kept the fingerprint")
	}
	if fp, _ := FingerprintFor(KindBER, smallFleet(t, 0, 1), resumeBERConfig()); fp == base {
		t.Error("chip-set change kept the fingerprint")
	}
	if fp, _ := FingerprintFor(KindHCFirst, fleet, HCFirstConfig{}); fp == base {
		t.Error("kind change kept the fingerprint")
	}
	if _, err := FingerprintFor(KindBER, fleet, HCFirstConfig{}); err == nil {
		t.Error("mismatched config type accepted")
	}
	if _, err := FingerprintFor(Kind("nope"), fleet, resumeBERConfig()); err == nil {
		t.Error("unknown kind accepted")
	}
}
