package core

import (
	"context"
	"fmt"

	"hbmrd/internal/hbm"
)

// ColDisturbConfig parameterizes the ColumnDisturb experiment
// (arXiv 2510.14750): read disturbance carried by the bitlines instead of
// the wordlines. Keeping one aggressor row open while streaming column
// reads through it disturbs rows many positions away in the same
// subarray - no repeated activations involved. The sweep opens each
// aggressor row for a long column-read burst and measures a victim row
// at each configured distance, for each column-stripe data pattern
// written into the aggressor (the effect is strongest on bitlines whose
// aggressor cell stores the opposite value, so stripes shape the flips
// along the row).
//
// All (distance, stripe) probes of one aggressor row run inside a single
// plan cell: they share the aggressor's device state (restore epochs),
// so splitting them across shards would change flip outcomes. One cell
// per aggressor row keeps sharded runs byte-identical to local ones.
type ColDisturbConfig struct {
	Channel int
	Pseudo  int
	Bank    int
	// AggRows lists the aggressor physical rows (default SampleRowsIn(g, 4)).
	AggRows []int
	// Distances are the signed victim offsets from the aggressor row
	// (default {1, 2, 3, 4, 6, 8}).
	Distances []int
	// Stripes are the column-stripe widths, in columns, of the data
	// pattern written into the aggressor row (default {1, 2, 8}).
	Stripes []int
	// Reads is the column-read count of the flip measurement (default 10000).
	Reads int
	// MinReads/MaxReads bound the first-disturb threshold search
	// (defaults 1000 and 1<<20).
	MinReads, MaxReads int
}

func (c *ColDisturbConfig) fill(g hbm.Geometry) {
	if len(c.Distances) == 0 {
		c.Distances = []int{1, 2, 3, 4, 6, 8}
	}
	if len(c.AggRows) == 0 {
		// SampleRowsIn only guarantees two neighbours of edge clearance;
		// clamp the samples so every configured distance has an in-range
		// victim.
		maxd := 0
		for _, d := range c.Distances {
			if d < 0 {
				d = -d
			}
			if d > maxd {
				maxd = d
			}
		}
		rows := SampleRowsIn(g, 4)
		for i, r := range rows {
			if r < maxd {
				r = maxd
			}
			if r > g.Rows-1-maxd {
				r = g.Rows - 1 - maxd
			}
			rows[i] = r
		}
		c.AggRows = dedupSorted(rows)
	}
	if len(c.Stripes) == 0 {
		c.Stripes = []int{1, 2, 8}
	}
	if c.Reads == 0 {
		c.Reads = 10_000
	}
	if c.MinReads == 0 {
		c.MinReads = 1_000
	}
	if c.MaxReads == 0 {
		c.MaxReads = 1 << 20
	}
}

// ColDisturbRecord reports one (aggressor row, distance, stripe) probe:
// the victim's flips after the configured read burst, their per-column
// layout, and the smallest read count that disturbs at all.
type ColDisturbRecord struct {
	Chip, Channel, Pseudo, Bank int
	// Row is the aggressor physical row; the victim is Row + Distance.
	Row      int
	Distance int
	// Stripe is the aggressor's column-stripe width in columns.
	Stripe int
	// Reads is the read count Flips was measured at.
	Reads int
	Flips int
	// ColFlips counts the victim's flips per column at Reads.
	ColFlips []int
	// FirstDisturb is the smallest read count inducing at least one flip
	// (within ~1% tolerance); Found is false when even MaxReads does not.
	FirstDisturb int
	Found        bool
}

// RunColDisturb measures column-read disturbance at each configured
// distance and stripe pattern around every aggressor row.
func RunColDisturb(fleet []*TestChip, cfg ColDisturbConfig) ([]ColDisturbRecord, error) {
	return RunColDisturbContext(context.Background(), fleet, cfg)
}

// RunColDisturbContext is RunColDisturb with cancellation and execution
// options. Records are in plan order: (chip, aggressor row, distance,
// stripe).
func RunColDisturbContext(ctx context.Context, fleet []*TestChip, cfg ColDisturbConfig, opts ...RunOption) ([]ColDisturbRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, []int{cfg.Channel}, []int{cfg.Pseudo}, []int{cfg.Bank}, len(cfg.AggRows))
	o := applyOpts(opts)
	span := len(cfg.Distances) * len(cfg.Stripes)
	p, st, err := prepareSweep[ColDisturbRecord](KindColDisturb, fleet, cfg, p, o, fixedSpan(span))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(ctx context.Context, env *cellEnv, c Cell) ([]ColDisturbRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		agg := cfg.AggRows[c.Point]
		cb := ref.geom.ColBytes
		stripeBuf := make([]byte, ref.geom.RowBytes)
		mask := make([]byte, ref.geom.RowBytes)
		recs := make([]ColDisturbRecord, 0, span)
		for _, dist := range cfg.Distances {
			victim := agg + dist
			if dist == 0 || victim < 0 || victim >= ref.geom.Rows {
				return nil, fmt.Errorf("core: aggressor %d has no victim at distance %d", agg, dist)
			}
			for _, stripe := range cfg.Stripes {
				if stripe <= 0 {
					return nil, fmt.Errorf("core: stripe width %d out of range", stripe)
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sb := stripe * cb
				for i := range stripeBuf {
					if (i/sb)%2 == 0 {
						stripeBuf[i] = 0xFF
					} else {
						stripeBuf[i] = 0x00
					}
				}
				probe := func(reads int, mask []byte) (int, error) {
					if err := ref.ch.FillRow(ref.pc, ref.bnk, ref.logical(victim), 0xFF); err != nil {
						return 0, err
					}
					if err := ref.ch.WriteRow(ref.pc, ref.bnk, ref.logical(agg), stripeBuf); err != nil {
						return 0, err
					}
					if err := ref.ch.ColumnRead(ref.pc, ref.bnk, ref.logical(agg), reads); err != nil {
						return 0, err
					}
					return ref.readFlips(victim, 0xFF, mask)
				}

				for i := range mask {
					mask[i] = 0
				}
				flips, err := probe(cfg.Reads, mask)
				if err != nil {
					return nil, err
				}
				rec := ColDisturbRecord{
					Chip: env.tc.Index, Channel: c.Channel, Pseudo: c.Pseudo, Bank: c.Bank,
					Row: agg, Distance: dist, Stripe: stripe, Reads: cfg.Reads, Flips: flips,
					ColFlips: columnCounts(mask, cb),
				}

				// First-disturb threshold: same geometric bisection and
				// termination rules as hcSearch, with reads as the dose.
				lo, hi := cfg.MinReads, cfg.MaxReads
				if lo < 1 {
					lo = 1
				}
				n, err := probe(hi, nil)
				if err != nil {
					return nil, err
				}
				if n >= 1 {
					n, err = probe(lo, nil)
					if err != nil {
						return nil, err
					}
					if n >= 1 {
						hi = lo
					} else {
						for hi-lo > 1 && float64(hi)/float64(lo) > 1.01 {
							if err := ctx.Err(); err != nil {
								return nil, err
							}
							mid := intSqrt(lo, hi)
							n, err = probe(mid, nil)
							if err != nil {
								return nil, err
							}
							if n >= 1 {
								hi = mid
							} else {
								lo = mid
							}
						}
					}
					rec.FirstDisturb, rec.Found = hi, true
				}
				recs = append(recs, rec)
			}
		}
		return recs, nil
	})
}

// columnCounts folds a row-sized flip mask into per-column flip counts.
func columnCounts(mask []byte, colBytes int) []int {
	counts := make([]int, len(mask)/colBytes)
	for i, b := range mask {
		for ; b != 0; b &= b - 1 {
			counts[i/colBytes]++
		}
	}
	return counts
}
