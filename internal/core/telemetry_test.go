package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hbmrd/internal/telemetry"
)

// sweepBytes runs the shared engine workload into a JSONL sink and
// returns the full stream - header line plus records - as bytes.
func sweepBytes(t *testing.T, opts ...RunOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts = append([]RunOption{WithJobs(4), WithSink(NewJSONLSink(&buf))}, opts...)
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0, 1), engineBERConfig(), opts...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryIsOutOfBand is the byte-identity regression gate for the
// whole telemetry layer: the record stream of a sweep must be identical
// with metrics enabled (the default), with metrics disabled, and with a
// span tracer attached. Telemetry observes the sweep; it must never be
// able to alter it.
func TestTelemetryIsOutOfBand(t *testing.T) {
	cells := telemetry.Default.Counter("hbmrd_sweep_cells_total", telemetry.L("kind", "ber"))
	sweeps := telemetry.Default.Counter("hbmrd_sweeps_total", telemetry.L("kind", "ber"))

	c0, s0 := cells.Value(), sweeps.Value()
	base := sweepBytes(t)
	if cells.Value() <= c0 || sweeps.Value() != s0+1 {
		t.Errorf("enabled run moved cells %d->%d, sweeps %d->%d",
			c0, cells.Value(), s0, sweeps.Value())
	}

	telemetry.SetEnabled(false)
	c1 := cells.Value()
	disabled := sweepBytes(t)
	telemetry.SetEnabled(true)
	if cells.Value() != c1 {
		t.Errorf("disabled run still moved the cell counter: %d -> %d", c1, cells.Value())
	}
	if !bytes.Equal(base, disabled) {
		t.Error("record stream changed when telemetry was disabled")
	}

	var spans bytes.Buffer
	traced := sweepBytes(t, WithTracer(telemetry.NewTracer(&spans)))
	if !bytes.Equal(base, traced) {
		t.Error("record stream changed when a span tracer was attached")
	}
	got := spans.String()
	for _, span := range []string{`"span":"plan"`, `"span":"cells"`, `"span":"finalize"`, `"span":"sweep"`} {
		if !strings.Contains(got, span) {
			t.Errorf("trace output is missing %s:\n%s", span, got)
		}
	}
}
