package core

import (
	"context"
	"math"
	"sort"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// VRDConfig parameterizes the Variable Read Disturbance experiment
// (arXiv 2502.13075): HCfirst is not a constant of a cell but a
// distribution over repeated trials, so a safe mitigation threshold must
// be picked from the distribution's tail, not a single measurement. The
// sweep repeats the HCfirst bisection Trials times per victim row and
// records the full per-row distribution.
//
// Trial-to-trial variation needs no extra knob: every hammer trial
// restores the victim row, which advances the device's restore epoch and
// reseeds the disturb model's TrialJitter multiplier for the next trial
// (see internal/disturb), so repeated measurements of one row walk a
// deterministic jitter sequence exactly as the engine's per-cell
// determinism contract requires.
type VRDConfig struct {
	Channels []int // default {0}
	Pseudos  []int // default {0}
	Banks    []int // default {0}
	Rows     []int // default SampleRowsIn(g, 8)
	Pattern  pattern.Pattern
	// Trials is the number of repeated HCfirst measurements per row
	// (default 10).
	Trials int
	// Percentile selects the summary quantile PHC reports, in percent
	// (default 90). Nearest-rank over the found trials.
	Percentile           float64
	MinHammer, MaxHammer int
	TOn                  hbm.TimePS
}

func (c *VRDConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = []int{0}
	}
	if len(c.Pseudos) == 0 {
		c.Pseudos = []int{0}
	}
	if len(c.Banks) == 0 {
		c.Banks = []int{0}
	}
	if len(c.Rows) == 0 {
		c.Rows = SampleRowsIn(g, 8)
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Rowstripe0
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Percentile == 0 {
		c.Percentile = 90
	}
	if c.MinHammer == 0 {
		c.MinHammer = 1000
	}
	if c.MaxHammer == 0 {
		c.MaxHammer = 300 * 1024
	}
}

// VRDRecord reports one row's HCfirst distribution across Trials repeated
// measurements. The summary fields (MinHC/MaxHC/MeanHC/PHC) cover only
// the trials where a first flip was found; HCs keeps every trial in
// order, with 0 marking a trial that never flipped.
type VRDRecord struct {
	Chip, Channel, Pseudo, Bank, Row int
	Pattern                          pattern.Pattern
	Trials                           int
	// Found is the number of trials with a measured HCfirst.
	Found        int
	MinHC, MaxHC int
	MeanHC       float64
	// PHC is the config's Percentile of the found trials (nearest rank).
	PHC int
	// HCs holds the raw per-trial HCfirst values in trial order (0 =
	// not found), always Trials long.
	HCs []int
}

// Ratio returns MaxHC/MinHC, the trial-to-trial spread of the row (0
// when no trial found a flip).
func (r VRDRecord) Ratio() float64 {
	if r.MinHC == 0 {
		return 0
	}
	return float64(r.MaxHC) / float64(r.MinHC)
}

// RunVRD measures the per-row HCfirst distribution across repeated
// trials.
func RunVRD(fleet []*TestChip, cfg VRDConfig) ([]VRDRecord, error) {
	return RunVRDContext(context.Background(), fleet, cfg)
}

// RunVRDContext is RunVRD with cancellation and execution options.
// Records are in plan order: (chip, channel, pseudo, bank, row).
func RunVRDContext(ctx context.Context, fleet []*TestChip, cfg VRDConfig, opts ...RunOption) ([]VRDRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, cfg.Pseudos, cfg.Banks, len(cfg.Rows))
	o := applyOpts(opts)
	p, st, err := prepareSweep[VRDRecord](KindVRD, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(ctx context.Context, env *cellEnv, c Cell) ([]VRDRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		row := cfg.Rows[c.Point]
		rec := VRDRecord{
			Chip: env.tc.Index, Channel: c.Channel, Pseudo: c.Pseudo, Bank: c.Bank,
			Row: row, Pattern: cfg.Pattern, Trials: cfg.Trials,
			HCs: make([]int, cfg.Trials),
		}
		sum := 0
		for t := 0; t < cfg.Trials; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hc, found, err := ref.hcSearch(row, cfg.Pattern, 1, cfg.MinHammer, cfg.MaxHammer, cfg.TOn)
			if err != nil {
				return nil, err
			}
			if !found {
				continue
			}
			rec.HCs[t] = hc
			if rec.Found == 0 || hc < rec.MinHC {
				rec.MinHC = hc
			}
			if hc > rec.MaxHC {
				rec.MaxHC = hc
			}
			rec.Found++
			sum += hc
		}
		if rec.Found > 0 {
			rec.MeanHC = float64(sum) / float64(rec.Found)
			found := make([]int, 0, rec.Found)
			for _, hc := range rec.HCs {
				if hc > 0 {
					found = append(found, hc)
				}
			}
			sort.Ints(found)
			rec.PHC = found[percentileRank(cfg.Percentile, len(found))]
		}
		return []VRDRecord{rec}, nil
	})
}

// percentileRank converts a percentile (0..100] into a nearest-rank index
// for a sorted slice of n found values.
func percentileRank(p float64, n int) int {
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
