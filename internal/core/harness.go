package core

import (
	"fmt"
	"math/bits"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// bankRef addresses one bank on one channel, with the chip's
// logical-to-physical mapping applied so experiments can think in physical
// rows (spatial analyses are physical) while the device only ever sees
// logical addresses.
type bankRef struct {
	tc      *TestChip
	ch      *hbm.Channel
	pc, bnk int
	geom    hbm.Geometry
	// buf is a scratch row reused by readFlips so per-read allocations stay
	// off the hot path. A bankRef (and hence the buffer) is only ever used
	// by one experiment job at a time.
	buf []byte
}

// newBankRef builds a bank reference with its scratch row allocated once.
func newBankRef(tc *TestChip, ch *hbm.Channel, pc, bnk int) bankRef {
	g := tc.Chip.Geometry()
	return bankRef{tc: tc, ch: ch, pc: pc, bnk: bnk, geom: g, buf: make([]byte, g.RowBytes)}
}

func (b bankRef) logical(phys int) int { return b.tc.Chip.Mapper().ToLogical(phys) }

// initPattern writes the Table 1 data layout around a physical victim row:
// the victim and V+-2 take the victim byte, the aggressors V+-1 the
// complement.
func (b bankRef) initPattern(victimPhys int, p pattern.Pattern) error {
	for d := -2; d <= 2; d++ {
		phys := victimPhys + d
		if phys < 0 || phys >= b.geom.Rows {
			return fmt.Errorf("core: victim %d too close to the bank edge", victimPhys)
		}
		fillByte := p.VictimByte()
		if d == -1 || d == 1 {
			fillByte = p.AggressorByte()
		}
		if err := b.ch.FillRow(b.pc, b.bnk, b.logical(phys), fillByte); err != nil {
			return err
		}
	}
	return nil
}

// hammerAndCount initializes the pattern, performs a double-sided hammer
// of `count` activations per aggressor with the given row-on time, reads
// the victim back, and returns the number of bitflips. If mask is
// non-nil (RowBytes), the victim's flip mask is OR-ed into it.
func (b bankRef) hammerAndCount(victimPhys int, p pattern.Pattern, count int, tOn hbm.TimePS, mask []byte) (int, error) {
	if err := b.initPattern(victimPhys, p); err != nil {
		return 0, err
	}
	if err := b.ch.HammerDoubleSided(b.pc, b.bnk,
		b.logical(victimPhys-1), b.logical(victimPhys+1), count, tOn); err != nil {
		return 0, err
	}
	return b.readFlips(victimPhys, p.VictimByte(), mask)
}

// readFlips reads the victim row and counts bits differing from the
// expected fill byte.
func (b bankRef) readFlips(victimPhys int, expect byte, mask []byte) (int, error) {
	buf := b.buf
	if buf == nil {
		buf = make([]byte, b.geom.RowBytes)
	}
	if err := b.ch.ReadRow(b.pc, b.bnk, b.logical(victimPhys), buf); err != nil {
		return 0, err
	}
	flips := 0
	for i, v := range buf {
		x := v ^ expect
		flips += bits.OnesCount8(x)
		if mask != nil {
			mask[i] |= x
		}
	}
	return flips, nil
}

// hcSearch finds the smallest hammer count in [lo, hi] inducing at least
// minFlips bitflips, within ~1% multiplicative tolerance, for one trial.
// found is false when even hi does not reach minFlips.
func (b bankRef) hcSearch(victimPhys int, p pattern.Pattern, minFlips, lo, hi int, tOn hbm.TimePS) (hc int, found bool, err error) {
	if lo < 1 {
		lo = 1
	}
	n, err := b.hammerAndCount(victimPhys, p, hi, tOn, nil)
	if err != nil {
		return 0, false, err
	}
	if n < minFlips {
		return 0, false, nil
	}
	n, err = b.hammerAndCount(victimPhys, p, lo, tOn, nil)
	if err != nil {
		return 0, false, err
	}
	if n >= minFlips {
		return lo, true, nil
	}
	// Terminate on either a 1% multiplicative tolerance or an exhausted
	// integer interval (hi-lo == 1 has no midpoint: without the second
	// bound, rows whose first flip needs exactly lo+1 activations - which
	// happens at extreme tAggON values - would spin forever).
	for hi-lo > 1 && float64(hi)/float64(lo) > 1.01 {
		mid := intSqrt(lo, hi)
		n, err := b.hammerAndCount(victimPhys, p, mid, tOn, nil)
		if err != nil {
			return 0, false, err
		}
		if n >= minFlips {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// hcSearchMin runs hcSearch reps times and returns the minimum observed
// hammer count, the paper's repetition policy for HCfirst experiments
// (§3.1: minimum across five repetitions).
func (b bankRef) hcSearchMin(victimPhys int, p pattern.Pattern, minFlips, lo, hi, reps int, tOn hbm.TimePS) (int, bool, error) {
	best := 0
	found := false
	for r := 0; r < reps; r++ {
		hc, ok, err := b.hcSearch(victimPhys, p, minFlips, lo, hi, tOn)
		if err != nil {
			return 0, false, err
		}
		if ok && (!found || hc < best) {
			best, found = hc, true
		}
	}
	return best, found, nil
}

// intSqrt returns the integer geometric mean of lo and hi, strictly
// between them (callers guarantee hi-lo > 1).
func intSqrt(lo, hi int) int {
	m := int(isqrt(uint64(lo) * uint64(hi)))
	if m <= lo {
		m = lo + 1
	}
	if m >= hi {
		m = hi - 1
	}
	return m
}

func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << ((bits.Len64(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return r
		}
		r = nr
	}
}
