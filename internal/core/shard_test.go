package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// headerCaptureSink records the sweep header a run stamps.
type headerCaptureSink struct {
	h   SweepHeader
	got bool
}

func (s *headerCaptureSink) Start(int)            {}
func (s *headerCaptureSink) Progress(int, int)    {}
func (s *headerCaptureSink) Record(any)           {}
func (s *headerCaptureSink) Finish(error)         {}
func (s *headerCaptureSink) Header(h SweepHeader) { s.h, s.got = h, true }

// sweepLines splits a streamed sweep file into its header line and record
// lines (each line includes its terminating newline).
func sweepLines(t *testing.T, b []byte) (header []byte, records [][]byte) {
	t.Helper()
	end := bytes.IndexByte(b, '\n') + 1
	if end <= 0 {
		t.Fatal("sweep file has no header line")
	}
	header = b[:end]
	for rest := b[end:]; len(rest) > 0; {
		i := bytes.IndexByte(rest, '\n') + 1
		if i <= 0 {
			t.Fatal("sweep file has a torn tail")
		}
		records = append(records, rest[:i])
		rest = rest[i:]
	}
	return header, records
}

// TestShardedSweepByteIdentity is the sharding contract at the engine
// level: each shard's record payload is exactly the corresponding slice of
// the parent stream's record lines, shard headers carry the lineage, and
// concatenating the parent header with the shard payloads in range order
// reproduces the uninterrupted single-run file byte for byte.
func TestShardedSweepByteIdentity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := resumeBERConfig()

	fullPath := filepath.Join(dir, "full.jsonl")
	fullRecs, err := runBERToFile(t, fullPath, cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	parentHeader, lines := sweepLines(t, full)
	cells := len(cfg.Channels) * len(cfg.Rows) // one chip
	perCell := len(cfg.Patterns) + 1
	if len(lines) != cells*perCell {
		t.Fatalf("%d record lines, want %d", len(lines), cells*perCell)
	}
	parentFP, err := FingerprintFor(KindBER, smallFleet(t, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Uneven split exercising interior boundaries, a single-cell shard,
	// and ranges crossing (chip, channel) group boundaries.
	ranges := []ShardRange{{0, 5}, {5, 6}, {6, cells}}
	merged := append([]byte(nil), parentHeader...)
	for _, sr := range ranges {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d-%d.jsonl", sr.Start, sr.End))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		hs := &headerCaptureSink{}
		recs, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
			WithJobs(2), WithSink(MultiSink(NewJSONLFileSink(f), hs)), WithShard(sr))
		f.Close()
		if err != nil {
			t.Fatalf("shard [%d:%d): %v", sr.Start, sr.End, err)
		}
		if !reflect.DeepEqual(recs, fullRecs[sr.Start*perCell:sr.End*perCell]) {
			t.Errorf("shard [%d:%d) records diverge from the parent slice", sr.Start, sr.End)
		}
		if !hs.got {
			t.Fatalf("shard [%d:%d) stamped no header", sr.Start, sr.End)
		}
		h := hs.h
		if h.Parent != parentFP || h.ShardStart != sr.Start || h.ShardEnd != sr.End ||
			h.Cells != sr.End-sr.Start || h.Fingerprint != ShardFingerprint(parentFP, sr.Start, sr.End) {
			t.Errorf("shard [%d:%d) header lineage wrong: %+v", sr.Start, sr.End, h)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, shardLines := sweepLines(t, b)
		want := bytes.Join(lines[sr.Start*perCell:sr.End*perCell], nil)
		got := bytes.Join(shardLines, nil)
		if !bytes.Equal(got, want) {
			t.Errorf("shard [%d:%d) payload is not the parent slice", sr.Start, sr.End)
		}
		merged = append(merged, got...)
	}
	if !bytes.Equal(merged, full) {
		t.Error("merged shard payloads are not byte-identical to the uninterrupted run")
	}
}

// TestShardResumeByteIdentity: a shard interrupted mid-stream resumes
// through the ordinary checkpoint machinery (the checkpoint carries the
// shard's own fingerprint) and finishes byte-identical.
func TestShardResumeByteIdentity(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := resumeBERConfig()
	sr := ShardRange{3, 9}

	run := func(path string, opts ...RunOption) error {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = RunBERContext(context.Background(), smallFleet(t, 0), cfg,
			append([]RunOption{WithJobs(1), WithSink(NewJSONLFileSink(f)), WithShard(sr)}, opts...)...)
		return err
	}
	fullPath := filepath.Join(dir, "shard.jsonl")
	if err := run(fullPath); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	partPath := filepath.Join(dir, "part.jsonl")
	if err := os.WriteFile(partPath, full[:2*len(full)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := os.Open(partPath)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ResumeFrom(pf)
	pf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run(partPath, WithResume(cp)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(partPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Error("resumed shard is not byte-identical to the uninterrupted shard run")
	}

	// A parent-sweep checkpoint must not resume a shard run (and vice
	// versa): the fingerprints differ by construction.
	wholePath := filepath.Join(dir, "whole.jsonl")
	wf, err := os.Create(wholePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
		WithJobs(1), WithSink(NewJSONLFileSink(wf))); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	rf, err := os.Open(wholePath)
	if err != nil {
		t.Fatal(err)
	}
	wcp, err := ResumeFrom(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg,
		WithShard(sr), WithResume(wcp)); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("parent checkpoint resumed a shard run: err = %v", err)
	}
}

// TestShardValidation: out-of-range and empty shard ranges are rejected,
// and aging refuses sharding outright.
func TestShardValidation(t *testing.T) {
	t.Parallel()
	cfg := resumeBERConfig()
	cells := len(cfg.Channels) * len(cfg.Rows)
	for _, sr := range []ShardRange{{-1, 2}, {0, cells + 1}, {4, 4}, {5, 3}} {
		if _, err := RunBERContext(context.Background(), smallFleet(t, 0), cfg, WithShard(sr)); err == nil ||
			!strings.Contains(err.Error(), "shard range") {
			t.Errorf("shard %+v accepted: err = %v", sr, err)
		}
	}
	if _, err := RunAgingContext(context.Background(), smallFleet(t, 0), AgingConfig{},
		WithShard(ShardRange{0, 1})); err == nil || !strings.Contains(err.Error(), "cannot be sharded") {
		t.Errorf("aging accepted a shard: err = %v", err)
	}
}

// TestShardFingerprint: the sub-fingerprint moves with the parent and with
// each range bound, and never collides with the parent itself.
func TestShardFingerprint(t *testing.T) {
	t.Parallel()
	base := ShardFingerprint("sha256:aa", 0, 10)
	if base == ShardFingerprint("sha256:bb", 0, 10) ||
		base == ShardFingerprint("sha256:aa", 1, 10) ||
		base == ShardFingerprint("sha256:aa", 0, 9) ||
		base == "sha256:aa" {
		t.Error("shard fingerprint does not separate parent/range inputs")
	}
	if base != ShardFingerprint("sha256:aa", 0, 10) {
		t.Error("shard fingerprint is not deterministic")
	}
}

// TestPlanSizeMatchesRunners pins PlanSize's arithmetic against the plans
// the runners actually build: for every shardable kind, the header.Cells a
// tiny sweep stamps must equal PlanSize for the same fleet and config.
func TestPlanSizeMatchesRunners(t *testing.T) {
	t.Parallel()
	preset, err := hbm.LookupPreset(hbm.PresetHBM2)
	if err != nil {
		t.Fatal(err)
	}
	g := preset.Geometry
	rows := SampleRowsIn(g, 2)
	pats := []pattern.Pattern{pattern.Rowstripe0, pattern.Checkered0}
	ctx := context.Background()
	cases := []struct {
		kind Kind
		cfg  any
		run  func(fleet []*TestChip, opts ...RunOption) error
	}{
		{KindBER, BERConfig{Channels: []int{0}, Rows: rows, Patterns: pats, HammerCount: 30_000, Reps: 1},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunBERContext(ctx, fleet, BERConfig{Channels: []int{0}, Rows: rows, Patterns: pats, HammerCount: 30_000, Reps: 1}, opts...)
				return err
			}},
		{KindHCFirst, HCFirstConfig{Channels: []int{0}, Rows: rows[:1], Patterns: pats, Reps: 1},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunHCFirstContext(ctx, fleet, HCFirstConfig{Channels: []int{0}, Rows: rows[:1], Patterns: pats, Reps: 1}, opts...)
				return err
			}},
		{KindHCNth, HCNthConfig{Channels: []int{0}, Rows: rows[:1], Patterns: pats[:1], MaxFlips: 3},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunHCNthContext(ctx, fleet, HCNthConfig{Channels: []int{0}, Rows: rows[:1], Patterns: pats[:1], MaxFlips: 3}, opts...)
				return err
			}},
		{KindVariability, VariabilityConfig{Rows: rows[:1], Iterations: 3},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunVariabilityContext(ctx, fleet, VariabilityConfig{Rows: rows[:1], Iterations: 3}, opts...)
				return err
			}},
		{KindRowPressBER, RowPressBERConfig{Channels: []int{0}, Rows: rows, TAggONs: []hbm.TimePS{29 * hbm.NS}, HammerCount: 2_000, RetentionReps: 1},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunRowPressBERContext(ctx, fleet, RowPressBERConfig{Channels: []int{0}, Rows: rows, TAggONs: []hbm.TimePS{29 * hbm.NS}, HammerCount: 2_000, RetentionReps: 1}, opts...)
				return err
			}},
		{KindRowPressHC, RowPressHCConfig{Channels: []int{0}, Rows: rows[:1], TAggONs: []hbm.TimePS{29 * hbm.NS}, MaxHammer: 60_000},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunRowPressHCContext(ctx, fleet, RowPressHCConfig{Channels: []int{0}, Rows: rows[:1], TAggONs: []hbm.TimePS{29 * hbm.NS}, MaxHammer: 60_000}, opts...)
				return err
			}},
		{KindBypass, BypassConfig{Victims: rows[:1], DummyCounts: []int{1, 2}, AggActs: []int{18}, Windows: 32},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunBypassContext(ctx, fleet, BypassConfig{Victims: rows[:1], DummyCounts: []int{1, 2}, AggActs: []int{18}, Windows: 32}, opts...)
				return err
			}},
		{KindVRD, VRDConfig{Rows: rows, Trials: 2},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunVRDContext(ctx, fleet, VRDConfig{Rows: rows, Trials: 2}, opts...)
				return err
			}},
		{KindColDisturb, ColDisturbConfig{AggRows: rows, Distances: []int{1, 2}, Stripes: []int{2}, Reads: 4_000, MaxReads: 1 << 16},
			func(fleet []*TestChip, opts ...RunOption) error {
				_, err := RunColDisturbContext(ctx, fleet, ColDisturbConfig{AggRows: rows, Distances: []int{1, 2}, Stripes: []int{2}, Reads: 4_000, MaxReads: 1 << 16}, opts...)
				return err
			}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			fleet := roundTripFleet(t, preset)
			want, err := PlanSize(tc.kind, fleet, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			hs := &headerCaptureSink{}
			if err := tc.run(fleet, WithJobs(1), WithSink(hs)); err != nil {
				t.Fatal(err)
			}
			if !hs.got {
				t.Fatal("run stamped no header")
			}
			if hs.h.Cells != want {
				t.Errorf("PlanSize = %d, runner plan = %d cells", want, hs.h.Cells)
			}
		})
	}
	if _, err := PlanSize(KindAging, roundTripFleet(t, preset), AgingConfig{}); err == nil {
		t.Error("PlanSize accepted aging")
	}
	if _, err := PlanSize(KindBER, roundTripFleet(t, preset), HCFirstConfig{}); err == nil {
		t.Error("PlanSize accepted a mismatched config type")
	}
}

// TestShardHeaderBytesLegacyUnchanged guards the omitempty contract: a
// whole-sweep header must serialize without any shard field, so existing
// stored sweeps, checkpoints, and golden digests are untouched.
func TestShardHeaderBytesLegacyUnchanged(t *testing.T) {
	t.Parallel()
	h := SweepHeader{Format: 1, Kind: "ber", Fingerprint: "sha256:aa", Cells: 4, Generation: CodeGeneration}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "shard") || strings.Contains(string(b), "parent") {
		t.Errorf("whole-sweep header leaks shard fields: %s", b)
	}
}
