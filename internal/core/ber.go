package core

import (
	"context"
	"fmt"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// BERConfig parameterizes a RowHammer BER experiment (the measurement
// behind Figs 4, 6, 8, 9, 10 and 17). Zero-valued fields take the
// defaults noted on each.
type BERConfig struct {
	// Channels, Pseudos and Banks select the tested components (Table 2:
	// the BER experiment tests 8 channels, 1 pseudo channel, 1 bank).
	Channels []int // default {0..7}
	Pseudos  []int // default {0}
	Banks    []int // default {0}
	// Rows are the physical victim rows per bank (default SampleRows(64)).
	Rows []int
	// Patterns to test (default all four of Table 1).
	Patterns []pattern.Pattern
	// HammerCount per aggressor (default 256K, the paper's BER and WCDP
	// reference count).
	HammerCount int
	// TOn is the aggressor row-on time (default minimum tRAS).
	TOn hbm.TimePS
	// Reps averages the BER across repetitions (default 5, §3.1).
	Reps int
	// CollectMasks retains the OR-ed flip mask per record (Fig 17).
	CollectMasks bool
}

func (c *BERConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = Channels(g.Channels)
	}
	if len(c.Pseudos) == 0 {
		c.Pseudos = []int{0}
	}
	if len(c.Banks) == 0 {
		c.Banks = []int{0}
	}
	if len(c.Rows) == 0 {
		c.Rows = SampleRowsIn(g, 64)
	}
	if len(c.Patterns) == 0 {
		c.Patterns = pattern.All()
	}
	if c.HammerCount == 0 {
		c.HammerCount = 256 * 1024
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
}

// BERRecord is one (row, pattern) BER measurement. WCDP marks the derived
// worst-case-data-pattern record of a row (§3.1: the pattern with the
// smallest HCfirst, ties broken by the largest BER at 256K; RunBER derives
// it from BER alone - the tie-break criterion - while RunHCFirst performs
// the full HCfirst-based selection).
type BERRecord struct {
	Chip, Channel, Pseudo, Bank, Row int
	Pattern                          pattern.Pattern
	WCDP                             bool
	// BERPercent is the mean percentage of the row's 8192 bits flipped,
	// across repetitions.
	BERPercent float64
	// Mask is the OR of the flip masks across repetitions (nil unless
	// CollectMasks).
	Mask []byte
}

// RunBER executes the BER experiment across the fleet, parallelized per
// channel on the shared sweep engine. Results are deterministic.
func RunBER(fleet []*TestChip, cfg BERConfig) ([]BERRecord, error) {
	return RunBERContext(context.Background(), fleet, cfg)
}

// RunBERContext is RunBER with cancellation and execution options. Records
// are in plan order - (chip, channel, pseudo, bank, row), each row
// contributing its patterns in config order with the derived WCDP record
// last - deterministically, independent of worker count.
func RunBERContext(ctx context.Context, fleet []*TestChip, cfg BERConfig, opts ...RunOption) ([]BERRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, cfg.Pseudos, cfg.Banks, len(cfg.Rows))
	o := applyOpts(opts)
	// Every cell emits one record per pattern plus the derived WCDP record.
	p, st, err := prepareSweep[BERRecord](KindBER, fleet, cfg, p, o, fixedSpan(len(cfg.Patterns)+1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(_ context.Context, env *cellEnv, c Cell) ([]BERRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		return berForRow(ref, c.Channel, cfg.Rows[c.Point], cfg)
	})
}

func berForRow(ref bankRef, chIdx, row int, cfg BERConfig) ([]BERRecord, error) {
	recs := make([]BERRecord, 0, len(cfg.Patterns)+1)
	bestIdx, bestBER := -1, -1.0
	for _, p := range cfg.Patterns {
		var mask []byte
		if cfg.CollectMasks {
			mask = make([]byte, ref.geom.RowBytes)
		}
		total := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			n, err := ref.hammerAndCount(row, p, cfg.HammerCount, cfg.TOn, mask)
			if err != nil {
				return nil, fmt.Errorf("row %d pattern %s: %w", row, p, err)
			}
			total += n
		}
		ber := float64(total) / float64(cfg.Reps) / float64(ref.geom.RowBits()) * 100
		recs = append(recs, BERRecord{
			Chip: ref.tc.Index, Channel: chIdx, Pseudo: ref.pc, Bank: ref.bnk, Row: row,
			Pattern: p, BERPercent: ber, Mask: mask,
		})
		if ber > bestBER {
			bestBER, bestIdx = ber, len(recs)-1
		}
	}
	if bestIdx >= 0 {
		w := recs[bestIdx]
		w.WCDP = true
		recs = append(recs, w)
	}
	return recs, nil
}

// FilterBER returns the records matching the predicate.
func FilterBER(recs []BERRecord, keep func(BERRecord) bool) []BERRecord {
	var out []BERRecord
	for _, r := range recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// BERValues extracts BERPercent from records.
func BERValues(recs []BERRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.BERPercent
	}
	return out
}
