package core

import (
	"context"
	"fmt"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
)

// HCFirstConfig parameterizes the HCfirst experiments behind Figs 5 and 7
// (Table 2: 3072 rows, 3 banks, 2 pseudo channels, 8 channels at paper
// scale).
type HCFirstConfig struct {
	Channels []int // default {0..7}
	Pseudos  []int // default {0}
	Banks    []int // default {0}
	// Rows are physical victim rows per bank (default SampleRows(24)).
	Rows     []int
	Patterns []pattern.Pattern
	// MinHammer and MaxHammer bound the search (defaults 1000 and 300K).
	MinHammer, MaxHammer int
	// Reps takes the minimum HCfirst across repetitions (default 5, §3.1).
	Reps int
	// TOn is the aggressor row-on time (default tRAS).
	TOn hbm.TimePS
}

func (c *HCFirstConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = Channels(g.Channels)
	}
	if len(c.Pseudos) == 0 {
		c.Pseudos = []int{0}
	}
	if len(c.Banks) == 0 {
		c.Banks = []int{0}
	}
	if len(c.Rows) == 0 {
		c.Rows = SampleRowsIn(g, 24)
	}
	if len(c.Patterns) == 0 {
		c.Patterns = pattern.All()
	}
	if c.MinHammer == 0 {
		c.MinHammer = 1000
	}
	if c.MaxHammer == 0 {
		c.MaxHammer = 300 * 1024
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
}

// HCFirstRecord is one (row, pattern) HCfirst measurement. WCDP marks the
// derived worst-case record: the pattern with the smallest HCfirst (ties:
// the larger BER at 256K, measured on demand).
type HCFirstRecord struct {
	Chip, Channel, Pseudo, Bank, Row int
	Pattern                          pattern.Pattern
	WCDP                             bool
	// HCFirst is the minimum hammer count that induced the first bitflip
	// (minimum across repetitions). Valid only when Found.
	HCFirst int
	// Found is false when no bitflip occurred up to MaxHammer.
	Found bool
}

// RunHCFirst executes the HCfirst experiment across the fleet.
func RunHCFirst(fleet []*TestChip, cfg HCFirstConfig) ([]HCFirstRecord, error) {
	return RunHCFirstContext(context.Background(), fleet, cfg)
}

// RunHCFirstContext is RunHCFirst with cancellation and execution options.
// Records are in plan order - (chip, channel, pseudo, bank, row), each row
// contributing its patterns in config order with the derived WCDP record
// last - deterministically, independent of worker count.
func RunHCFirstContext(ctx context.Context, fleet []*TestChip, cfg HCFirstConfig, opts ...RunOption) ([]HCFirstRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, cfg.Pseudos, cfg.Banks, len(cfg.Rows))
	o := applyOpts(opts)
	p, st, err := prepareSweep[HCFirstRecord](KindHCFirst, fleet, cfg, p, o, hcFirstSpan(len(cfg.Patterns)))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(_ context.Context, env *cellEnv, c Cell) ([]HCFirstRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		return hcFirstForRow(ref, c.Channel, cfg.Rows[c.Point], cfg)
	})
}

func hcFirstForRow(ref bankRef, chIdx, row int, cfg HCFirstConfig) ([]HCFirstRecord, error) {
	recs := make([]HCFirstRecord, 0, len(cfg.Patterns)+1)
	bestIdx := -1
	for _, p := range cfg.Patterns {
		hc, found, err := ref.hcSearchMin(row, p, 1, cfg.MinHammer, cfg.MaxHammer, cfg.Reps, cfg.TOn)
		if err != nil {
			return nil, fmt.Errorf("row %d pattern %s: %w", row, p, err)
		}
		recs = append(recs, HCFirstRecord{
			Chip: ref.tc.Index, Channel: chIdx, Pseudo: ref.pc, Bank: ref.bnk, Row: row,
			Pattern: p, HCFirst: hc, Found: found,
		})
		if found && (bestIdx < 0 || hc < recs[bestIdx].HCFirst) {
			bestIdx = len(recs) - 1
		}
	}
	if bestIdx >= 0 {
		w := recs[bestIdx]
		w.WCDP = true
		recs = append(recs, w)
	}
	return recs, nil
}

// FilterHCFirst returns records matching the predicate.
func FilterHCFirst(recs []HCFirstRecord, keep func(HCFirstRecord) bool) []HCFirstRecord {
	var out []HCFirstRecord
	for _, r := range recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// HCValues extracts HCFirst (as float64) from found records.
func HCValues(recs []HCFirstRecord) []float64 {
	var out []float64
	for _, r := range recs {
		if r.Found {
			out = append(out, float64(r.HCFirst))
		}
	}
	return out
}
