package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Sink observes a sweep while it runs: Start once with the cell count,
// Progress after every completed cell (in completion order), Record for
// every emitted record (strictly in plan order - the same order as the
// runner's returned slice), and Finish exactly once with the sweep's
// outcome. On a resumed sweep, Start and Progress cover only the live
// cells this run executes - checkpointed cells are already paid for and
// appear in neither count - while Record still replays the full
// plan-order stream from the first fresh cell onward. The engine serializes all calls, so implementations need no
// locking. A sweep that is cancelled or fails still emits the plan-order
// prefix of records it completed, which is what makes streamed output
// usable as a partial result.
//
// A sink may additionally implement Err() error (as JSONLSink does): the
// engine polls it after each completed cell and aborts the sweep on the
// first reported failure, so a long run does not keep computing into a
// dead stream.
type Sink interface {
	Start(totalCells int)
	Progress(doneCells, totalCells int)
	Record(rec any)
	Finish(err error)
}

// HeaderSink is implemented by sinks that persist the sweep's identity.
// The engine calls Header once per fresh (non-resumed) sweep, before any
// Record, with the fingerprint header that makes the stream resumable and
// content-addressable.
type HeaderSink interface {
	Header(h SweepHeader)
}

// ResumableSink is implemented by sinks whose destination can be cut back
// to a checkpoint: on a resumed sweep the engine calls ResumeAt once,
// before any Record, with the byte offset ending the last complete cell.
// The sink must discard everything past it and append from there.
type ResumableSink interface {
	ResumeAt(offset int64) error
}

// JSONLSink streams every record as one JSON object per line (JSON Lines),
// preceded by the sweep's fingerprint header. Because the engine emits
// records in plan order, a truncated file is a valid prefix of the full
// result set - and, with the header, a resumable checkpoint.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink writes records to w, one JSON object per line.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

func (s *JSONLSink) Start(int)         {}
func (s *JSONLSink) Progress(int, int) {}

// Header writes the sweep's fingerprint header line.
func (s *JSONLSink) Header(h SweepHeader) {
	if s.err == nil {
		s.err = s.enc.Encode(h)
	}
}

func (s *JSONLSink) Record(rec any) {
	if s.err == nil {
		s.err = s.enc.Encode(rec)
	}
}

func (s *JSONLSink) Finish(error) {}

// Err reports the first encode/write error, if any occurred.
func (s *JSONLSink) Err() error { return s.err }

// JSONLFileSink is JSONLSink over an *os.File, plus the resume contract:
// on a resumed sweep it truncates the file to the checkpoint boundary and
// appends from there, so the finished file is byte-identical to one from
// an uninterrupted run. Writes are unbuffered - every record is one
// complete line on disk the moment it is emitted - which is what lets a
// crashed or killed run leave nothing worse than one torn final line, and
// lets hbmrdd tail the file live. The caller keeps ownership of the file
// and closes it after checking Err.
type JSONLFileSink struct {
	JSONLSink
	f *os.File
}

// NewJSONLFileSink streams records (and the sweep header) to f.
func NewJSONLFileSink(f *os.File) *JSONLFileSink {
	return &JSONLFileSink{JSONLSink: JSONLSink{enc: json.NewEncoder(f)}, f: f}
}

// ResumeAt truncates the file to the checkpoint boundary and positions
// the writer there.
func (s *JSONLFileSink) ResumeAt(offset int64) error {
	if err := s.f.Truncate(offset); err != nil {
		return err
	}
	_, err := s.f.Seek(offset, io.SeekStart)
	return err
}

// ProgressSink prints a progress line to W whenever the sweep crosses a
// whole-percent boundary (at most ~100 lines per sweep, plus start and
// finish lines).
type ProgressSink struct {
	W     io.Writer
	Label string

	lastPct int
}

// NewProgressSink reports progress of the labelled sweep to w.
func NewProgressSink(w io.Writer, label string) *ProgressSink {
	return &ProgressSink{W: w, Label: label, lastPct: -1}
}

func (s *ProgressSink) Start(total int) {
	s.lastPct = -1
	fmt.Fprintf(s.W, "%s: sweeping %d cells\n", s.Label, total)
}

func (s *ProgressSink) Progress(done, total int) {
	// A zero-cell plan still has a lifecycle (Start/Finish), and external
	// drivers may report against it; an empty sweep is 100% done.
	pct := 100
	if total > 0 {
		pct = done * 100 / total
	}
	if pct == s.lastPct {
		return
	}
	s.lastPct = pct
	fmt.Fprintf(s.W, "%s: %3d%% (%d/%d cells)\n", s.Label, pct, done, total)
}

func (s *ProgressSink) Record(any) {}

func (s *ProgressSink) Finish(err error) {
	if err != nil {
		fmt.Fprintf(s.W, "%s: stopped: %v\n", s.Label, err)
	}
}

// MultiSink fans every callback out to each sink in order.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Start(total int) {
	for _, s := range m {
		s.Start(total)
	}
}

func (m multiSink) Progress(done, total int) {
	for _, s := range m {
		s.Progress(done, total)
	}
}

func (m multiSink) Record(rec any) {
	for _, s := range m {
		s.Record(rec)
	}
}

// Header forwards the sweep header to every member that persists one.
func (m multiSink) Header(h SweepHeader) {
	for _, s := range m {
		if hs, ok := s.(HeaderSink); ok {
			hs.Header(h)
		}
	}
}

// ResumeAt forwards the resume point to every member whose destination
// needs truncating, failing on the first error.
func (m multiSink) ResumeAt(offset int64) error {
	for _, s := range m {
		if rs, ok := s.(ResumableSink); ok {
			if err := rs.ResumeAt(offset); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m multiSink) Finish(err error) {
	for _, s := range m {
		s.Finish(err)
	}
}

// Err surfaces the first failure of any member sink that tracks one.
func (m multiSink) Err() error {
	for _, s := range m {
		if f, ok := s.(interface{ Err() error }); ok {
			if err := f.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
