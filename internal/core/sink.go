package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sink observes a sweep while it runs: Start once with the cell count,
// Progress after every completed cell (in completion order), Record for
// every emitted record (strictly in plan order - the same order as the
// runner's returned slice), and Finish exactly once with the sweep's
// outcome. The engine serializes all calls, so implementations need no
// locking. A sweep that is cancelled or fails still emits the plan-order
// prefix of records it completed, which is what makes streamed output
// usable as a partial result.
//
// A sink may additionally implement Err() error (as JSONLSink does): the
// engine polls it after each completed cell and aborts the sweep on the
// first reported failure, so a long run does not keep computing into a
// dead stream.
type Sink interface {
	Start(totalCells int)
	Progress(doneCells, totalCells int)
	Record(rec any)
	Finish(err error)
}

// JSONLSink streams every record as one JSON object per line (JSON Lines).
// Because the engine emits records in plan order, a truncated file is a
// valid prefix of the full result set.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink writes records to w, one JSON object per line.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

func (s *JSONLSink) Start(int)         {}
func (s *JSONLSink) Progress(int, int) {}

func (s *JSONLSink) Record(rec any) {
	if s.err == nil {
		s.err = s.enc.Encode(rec)
	}
}

func (s *JSONLSink) Finish(error) {}

// Err reports the first encode/write error, if any occurred.
func (s *JSONLSink) Err() error { return s.err }

// ProgressSink prints a progress line to W whenever the sweep crosses a
// whole-percent boundary (at most ~100 lines per sweep, plus start and
// finish lines).
type ProgressSink struct {
	W     io.Writer
	Label string

	lastPct int
}

// NewProgressSink reports progress of the labelled sweep to w.
func NewProgressSink(w io.Writer, label string) *ProgressSink {
	return &ProgressSink{W: w, Label: label, lastPct: -1}
}

func (s *ProgressSink) Start(total int) {
	s.lastPct = -1
	fmt.Fprintf(s.W, "%s: sweeping %d cells\n", s.Label, total)
}

func (s *ProgressSink) Progress(done, total int) {
	pct := done * 100 / total
	if pct == s.lastPct {
		return
	}
	s.lastPct = pct
	fmt.Fprintf(s.W, "%s: %3d%% (%d/%d cells)\n", s.Label, pct, done, total)
}

func (s *ProgressSink) Record(any) {}

func (s *ProgressSink) Finish(err error) {
	if err != nil {
		fmt.Fprintf(s.W, "%s: stopped: %v\n", s.Label, err)
	}
}

// MultiSink fans every callback out to each sink in order.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Start(total int) {
	for _, s := range m {
		s.Start(total)
	}
}

func (m multiSink) Progress(done, total int) {
	for _, s := range m {
		s.Progress(done, total)
	}
}

func (m multiSink) Record(rec any) {
	for _, s := range m {
		s.Record(rec)
	}
}

func (m multiSink) Finish(err error) {
	for _, s := range m {
		s.Finish(err)
	}
}

// Err surfaces the first failure of any member sink that tracks one.
func (m multiSink) Err() error {
	for _, s := range m {
		if f, ok := s.(interface{ Err() error }); ok {
			if err := f.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
