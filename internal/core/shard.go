package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Sharding: a sweep's plan is an explicit ordered cell list, so any
// contiguous cell range [Start, End) is itself a well-defined sub-sweep
// whose record stream is exactly the corresponding slice of the parent's.
// A shard carries its own fingerprint - ShardFingerprint(parent, start,
// end) - derived from the parent's, so shards dedup, store, checkpoint,
// and resume through every existing fingerprint-keyed path unchanged. The
// distributed coordinator (internal/fabric) splits a plan into shard
// ranges, runs them on separate workers, and reassembles the parent
// stream by concatenating shard payloads in range order.

// ShardRange selects the contiguous plan cell range [Start, End) of a
// sweep. Ranges are half-open over the parent plan's cell indexes.
type ShardRange struct {
	Start, End int
}

// validate checks the range against a plan of the given cell count.
func (sr ShardRange) validate(cells int) error {
	if sr.Start < 0 || sr.End > cells || sr.Start >= sr.End {
		return fmt.Errorf("core: shard range [%d:%d) invalid for a plan of %d cells", sr.Start, sr.End, cells)
	}
	return nil
}

// WithShard restricts a run to the plan cells in r. The run executes only
// that slice of the plan, emits exactly the parent stream's record slice
// for those cells, and stamps a shard header: Fingerprint becomes the
// shard's sub-fingerprint, Parent records the full sweep's fingerprint,
// and ShardStart/ShardEnd bound the covered range. WithResume composes
// with WithShard (the checkpoint must carry the shard's fingerprint).
// Aging sweeps cannot be sharded: they compose two inner sweeps and emit
// joined records only at the end.
func WithShard(r ShardRange) RunOption { return func(o *runOpts) { o.shard = &r } }

// ShardFingerprint derives the deterministic sub-fingerprint identifying
// the [start, end) cell shard of the sweep with the given parent
// fingerprint. Equal shard fingerprints mean byte-identical shard record
// streams, the same contract parent fingerprints carry.
func ShardFingerprint(parent string, start, end int) string {
	in := struct {
		Format int
		Parent string
		Start  int
		End    int
	}{sweepFormat, parent, start, end}
	b, _ := json.Marshal(in)
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// PlanSize reports the plan cell count a Run*Context call with this kind,
// fleet and config would enumerate, without running anything - the bound
// a coordinator needs to split the plan into shard ranges. It resolves
// config defaults on a copy exactly as the runner would. Aging has no
// single shardable plan (it composes two inner sweeps) and returns an
// error. TestPlanSizeMatchesRunners pins this arithmetic against the
// runners' actual plans.
func PlanSize(kind Kind, fleet []*TestChip, cfg any) (int, error) {
	g := fleetGeometry(fleet)
	bad := func() (int, error) {
		return 0, fmt.Errorf("core: kind %s wants %s, got %T", kind, configTypeName(kind), cfg)
	}
	switch kind {
	case KindBER:
		c, ok := cfg.(BERConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.Pseudos) * len(c.Banks) * len(c.Rows), nil
	case KindHCFirst:
		c, ok := cfg.(HCFirstConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.Pseudos) * len(c.Banks) * len(c.Rows), nil
	case KindHCNth:
		c, ok := cfg.(HCNthConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.Rows) * len(c.Patterns), nil
	case KindVariability:
		c, ok := cfg.(VariabilityConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Rows), nil
	case KindRowPressBER:
		c, ok := cfg.(RowPressBERConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.TAggONs), nil
	case KindRowPressHC:
		c, ok := cfg.(RowPressHCConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.Rows) * len(c.TAggONs), nil
	case KindBypass:
		c, ok := cfg.(BypassConfig)
		if !ok {
			return bad()
		}
		c.fill(g, fleetTiming(fleet))
		return len(fleet) * len(c.DummyCounts) * len(c.AggActs) * len(c.Victims), nil
	case KindAging:
		return 0, fmt.Errorf("core: aging sweeps compose two inner sweeps and have no single shardable plan")
	case KindVRD:
		c, ok := cfg.(VRDConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.Channels) * len(c.Pseudos) * len(c.Banks) * len(c.Rows), nil
	case KindColDisturb:
		c, ok := cfg.(ColDisturbConfig)
		if !ok {
			return bad()
		}
		c.fill(g)
		return len(fleet) * len(c.AggRows), nil
	}
	return 0, fmt.Errorf("core: unknown experiment kind %q", kind)
}
