package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hbmrd/internal/pattern"
)

// Columnar sweep encoding: the compact binary artifact the store writes
// alongside a finished sweep's JSONL. Records are transposed into
// per-field typed arrays - delta/varint integers, raw float64 columns,
// dictionary-encoded pattern labels, bitset booleans - behind a
// self-describing header (kind, column schema, row count). JSONL stays
// the interchange contract: EncodeColumnar(DecodeRecords(jsonl)) followed
// by DecodeColumnar and EncodeRecords reproduces the original JSONL byte
// for byte, for all eight record kinds (the columnar round-trip contract
// the golden CI job enforces), so golden digests and fingerprints are
// untouched by the artifact's existence. The win is on the read side: a
// column decode is a handful of array scans instead of one reflective
// JSON parse per record, and aggregation pipelines can filter and reduce
// straight over the arrays without materializing records at all (see
// internal/query).

// columnarMagic opens every columnar artifact; columnarVersion is bumped
// on incompatible layout changes (decoders reject unknown versions).
var columnarMagic = [4]byte{'h', 'b', 'm', 'c'}

const columnarVersion = 1

// Column element types. The payload layout per type:
//
//	ColInt:     one zigzag varint per row, delta-coded against the
//	            previous row (plan-ordered dimensions are near-sorted, so
//	            deltas are tiny).
//	ColFloat:   8 bytes per row, IEEE 754 little-endian. Floats must
//	            round-trip exactly, so no lossy packing.
//	ColBool:    a bitset, one bit per row, LSB-first within each byte.
//	ColDict:    a string dictionary (count, then len-prefixed entries)
//	            followed by one varint dictionary index per row. Used for
//	            pattern labels, which draw from a four-entry vocabulary.
//	ColIntList: per row, a varint length+1 (0 encodes a nil slice) then
//	            that many zigzag varints, delta-coded within the row
//	            (HCNth's HC lists are monotonically non-decreasing).
//	ColBytes:   per row, a varint length+1 (0 encodes nil) then raw
//	            bytes. Used for BER flip masks, preserving nil vs empty.
const (
	ColInt uint8 = iota + 1
	ColFloat
	ColBool
	ColDict
	ColIntList
	ColBytes
)

// Column is one decoded typed array plus its schema entry. Exactly one of
// the value slices is populated, per Type; Labels accompanies Ints for
// ColDict (Ints holds dictionary indexes).
type Column struct {
	Name string
	Type uint8

	Ints     []int64
	Floats   []float64
	Bools    []bool
	Labels   []string // ColDict dictionary, indexed by Ints
	IntLists [][]int
	Bytes    [][]byte
}

// Int returns row i of an integer column.
func (c *Column) Int(i int) int64 { return c.Ints[i] }

// Float returns row i of a float column.
func (c *Column) Float(i int) float64 { return c.Floats[i] }

// Bool returns row i of a boolean column.
func (c *Column) Bool(i int) bool { return c.Bools[i] }

// Label returns row i of a dictionary column.
func (c *Column) Label(i int) string { return c.Labels[c.Ints[i]] }

// ColumnSet is one decoded columnar sweep: the sweep header, the row
// (record) count, and the typed columns in schema order.
type ColumnSet struct {
	Header SweepHeader
	N      int
	Cols   []Column

	byName map[string]*Column
}

// Len reports the record count.
func (cs *ColumnSet) Len() int { return cs.N }

// Col returns the named column, or nil when the schema has none.
func (cs *ColumnSet) Col(name string) *Column {
	if cs.byName == nil {
		cs.byName = make(map[string]*Column, len(cs.Cols))
		for i := range cs.Cols {
			cs.byName[cs.Cols[i].Name] = &cs.Cols[i]
		}
	}
	return cs.byName[name]
}

// colSpec is one schema entry of a kind's columnar layout.
type colSpec struct {
	name string
	typ  uint8
}

// columnarSchema returns a kind's column schema, in the record struct's
// field order (which is also the JSONL field order). Column names are the
// record field names, so the artifact is self-describing against the
// interchange format.
func columnarSchema(kind Kind) ([]colSpec, error) {
	switch kind {
	case KindBER:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Pseudo", ColInt}, {"Bank", ColInt}, {"Row", ColInt},
			{"Pattern", ColDict}, {"WCDP", ColBool}, {"BERPercent", ColFloat}, {"Mask", ColBytes}}, nil
	case KindHCFirst:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Pseudo", ColInt}, {"Bank", ColInt}, {"Row", ColInt},
			{"Pattern", ColDict}, {"WCDP", ColBool}, {"HCFirst", ColInt}, {"Found", ColBool}}, nil
	case KindHCNth:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Row", ColInt},
			{"Pattern", ColDict}, {"HC", ColIntList}, {"Found", ColBool}}, nil
	case KindVariability:
		return []colSpec{{"Chip", ColInt}, {"Row", ColInt}, {"MinHC", ColInt}, {"MaxHC", ColInt},
			{"Iterations", ColInt}, {"MeasuredRatios", ColBool}}, nil
	case KindRowPressBER:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"TAggON", ColInt},
			{"BERPercent", ColFloat}, {"RetentionBERPercent", ColFloat}, {"Rows", ColInt}}, nil
	case KindRowPressHC:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Row", ColInt}, {"TAggON", ColInt},
			{"HCFirst", ColInt}, {"Found", ColBool}, {"WithinWindow", ColBool}}, nil
	case KindBypass:
		return []colSpec{{"Chip", ColInt}, {"Row", ColInt}, {"Dummies", ColInt}, {"AggActs", ColInt},
			{"BERPercent", ColFloat}}, nil
	case KindAging:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Row", ColInt},
			{"OldBERPercent", ColFloat}, {"NewBERPercent", ColFloat}}, nil
	case KindVRD:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Pseudo", ColInt}, {"Bank", ColInt}, {"Row", ColInt},
			{"Pattern", ColDict}, {"Trials", ColInt}, {"Found", ColInt}, {"MinHC", ColInt}, {"MaxHC", ColInt},
			{"MeanHC", ColFloat}, {"PHC", ColInt}, {"HCs", ColIntList}}, nil
	case KindColDisturb:
		return []colSpec{{"Chip", ColInt}, {"Channel", ColInt}, {"Pseudo", ColInt}, {"Bank", ColInt}, {"Row", ColInt},
			{"Distance", ColInt}, {"Stripe", ColInt}, {"Reads", ColInt}, {"Flips", ColInt},
			{"ColFlips", ColIntList}, {"FirstDisturb", ColInt}, {"Found", ColBool}}, nil
	}
	return nil, fmt.Errorf("core: no columnar schema for kind %q", kind)
}

// ExtractColumns transposes a kind's typed record slice (the shape
// DecodeRecords returns and the runners produce) into its columnar form.
func ExtractColumns(kind Kind, records any) (*ColumnSet, error) {
	specs, err := columnarSchema(kind)
	if err != nil {
		return nil, err
	}
	n := RecordCount(records)
	cs := &ColumnSet{N: n, Cols: make([]Column, len(specs))}
	for i, sp := range specs {
		cs.Cols[i] = Column{Name: sp.name, Type: sp.typ}
		switch sp.typ {
		case ColInt, ColDict:
			cs.Cols[i].Ints = make([]int64, 0, n)
		case ColFloat:
			cs.Cols[i].Floats = make([]float64, 0, n)
		case ColBool:
			cs.Cols[i].Bools = make([]bool, 0, n)
		case ColIntList:
			cs.Cols[i].IntLists = make([][]int, 0, n)
		case ColBytes:
			cs.Cols[i].Bytes = make([][]byte, 0, n)
		}
	}
	col := func(i int) *Column { return &cs.Cols[i] }
	pat := func(i int, p pattern.Pattern) {
		c := col(i)
		label := p.String()
		for j, l := range c.Labels {
			if l == label {
				c.Ints = append(c.Ints, int64(j))
				return
			}
		}
		c.Labels = append(c.Labels, label)
		c.Ints = append(c.Ints, int64(len(c.Labels)-1))
	}
	switch recs := records.(type) {
	case []BERRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Pseudo))
			col(3).Ints = append(col(3).Ints, int64(r.Bank))
			col(4).Ints = append(col(4).Ints, int64(r.Row))
			pat(5, r.Pattern)
			col(6).Bools = append(col(6).Bools, r.WCDP)
			col(7).Floats = append(col(7).Floats, r.BERPercent)
			col(8).Bytes = append(col(8).Bytes, r.Mask)
		}
	case []HCFirstRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Pseudo))
			col(3).Ints = append(col(3).Ints, int64(r.Bank))
			col(4).Ints = append(col(4).Ints, int64(r.Row))
			pat(5, r.Pattern)
			col(6).Bools = append(col(6).Bools, r.WCDP)
			col(7).Ints = append(col(7).Ints, int64(r.HCFirst))
			col(8).Bools = append(col(8).Bools, r.Found)
		}
	case []HCNthRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Row))
			pat(3, r.Pattern)
			col(4).IntLists = append(col(4).IntLists, r.HC)
			col(5).Bools = append(col(5).Bools, r.Found)
		}
	case []VariabilityRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Row))
			col(2).Ints = append(col(2).Ints, int64(r.MinHC))
			col(3).Ints = append(col(3).Ints, int64(r.MaxHC))
			col(4).Ints = append(col(4).Ints, int64(r.Iterations))
			col(5).Bools = append(col(5).Bools, r.MeasuredRatios)
		}
	case []RowPressBERRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.TAggON))
			col(3).Floats = append(col(3).Floats, r.BERPercent)
			col(4).Floats = append(col(4).Floats, r.RetentionBERPercent)
			col(5).Ints = append(col(5).Ints, int64(r.Rows))
		}
	case []RowPressHCRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Row))
			col(3).Ints = append(col(3).Ints, int64(r.TAggON))
			col(4).Ints = append(col(4).Ints, int64(r.HCFirst))
			col(5).Bools = append(col(5).Bools, r.Found)
			col(6).Bools = append(col(6).Bools, r.WithinWindow)
		}
	case []BypassRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Row))
			col(2).Ints = append(col(2).Ints, int64(r.Dummies))
			col(3).Ints = append(col(3).Ints, int64(r.AggActs))
			col(4).Floats = append(col(4).Floats, r.BERPercent)
		}
	case []AgingRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Row))
			col(3).Floats = append(col(3).Floats, r.OldBERPercent)
			col(4).Floats = append(col(4).Floats, r.NewBERPercent)
		}
	case []VRDRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Pseudo))
			col(3).Ints = append(col(3).Ints, int64(r.Bank))
			col(4).Ints = append(col(4).Ints, int64(r.Row))
			pat(5, r.Pattern)
			col(6).Ints = append(col(6).Ints, int64(r.Trials))
			col(7).Ints = append(col(7).Ints, int64(r.Found))
			col(8).Ints = append(col(8).Ints, int64(r.MinHC))
			col(9).Ints = append(col(9).Ints, int64(r.MaxHC))
			col(10).Floats = append(col(10).Floats, r.MeanHC)
			col(11).Ints = append(col(11).Ints, int64(r.PHC))
			col(12).IntLists = append(col(12).IntLists, r.HCs)
		}
	case []ColDisturbRecord:
		for _, r := range recs {
			col(0).Ints = append(col(0).Ints, int64(r.Chip))
			col(1).Ints = append(col(1).Ints, int64(r.Channel))
			col(2).Ints = append(col(2).Ints, int64(r.Pseudo))
			col(3).Ints = append(col(3).Ints, int64(r.Bank))
			col(4).Ints = append(col(4).Ints, int64(r.Row))
			col(5).Ints = append(col(5).Ints, int64(r.Distance))
			col(6).Ints = append(col(6).Ints, int64(r.Stripe))
			col(7).Ints = append(col(7).Ints, int64(r.Reads))
			col(8).Ints = append(col(8).Ints, int64(r.Flips))
			col(9).IntLists = append(col(9).IntLists, r.ColFlips)
			col(10).Ints = append(col(10).Ints, int64(r.FirstDisturb))
			col(11).Bools = append(col(11).Bools, r.Found)
		}
	default:
		return nil, fmt.Errorf("core: unsupported record slice %T for kind %s", records, kind)
	}
	return cs, nil
}

// parsePatternLabel inverts Pattern.String for any value, including the
// out-of-vocabulary "Pattern(N)" form, so encode -> decode is total.
func parsePatternLabel(label string) (pattern.Pattern, error) {
	for _, p := range pattern.All() {
		if p.String() == label {
			return p, nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(label, "Pattern(%d)", &n); err == nil {
		return pattern.Pattern(n), nil
	}
	return 0, fmt.Errorf("core: unknown pattern label %q", label)
}

// Records rebuilds the typed record slice - the exact shape DecodeRecords
// returns - from the column set. It is the inverse of ExtractColumns.
func (cs *ColumnSet) Records() (any, error) {
	kind := Kind(cs.Header.Kind)
	specs, err := columnarSchema(kind)
	if err != nil {
		return nil, err
	}
	if len(cs.Cols) != len(specs) {
		return nil, fmt.Errorf("core: columnar %s sweep has %d columns, schema wants %d", kind, len(cs.Cols), len(specs))
	}
	for i, sp := range specs {
		if cs.Cols[i].Name != sp.name || cs.Cols[i].Type != sp.typ {
			return nil, fmt.Errorf("core: columnar %s sweep column %d is %s/%d, schema wants %s/%d",
				kind, i, cs.Cols[i].Name, cs.Cols[i].Type, sp.name, sp.typ)
		}
	}
	n := cs.N
	col := func(i int) *Column { return &cs.Cols[i] }
	pat := func(ci, i int) (pattern.Pattern, error) { return parsePatternLabel(col(ci).Label(i)) }
	switch kind {
	case KindBER:
		out := make([]BERRecord, n)
		for i := range out {
			p, err := pat(5, i)
			if err != nil {
				return nil, err
			}
			out[i] = BERRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Pseudo: int(col(2).Int(i)),
				Bank: int(col(3).Int(i)), Row: int(col(4).Int(i)),
				Pattern: p, WCDP: col(6).Bool(i), BERPercent: col(7).Float(i), Mask: col(8).Bytes[i],
			}
		}
		return out, nil
	case KindHCFirst:
		out := make([]HCFirstRecord, n)
		for i := range out {
			p, err := pat(5, i)
			if err != nil {
				return nil, err
			}
			out[i] = HCFirstRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Pseudo: int(col(2).Int(i)),
				Bank: int(col(3).Int(i)), Row: int(col(4).Int(i)),
				Pattern: p, WCDP: col(6).Bool(i), HCFirst: int(col(7).Int(i)), Found: col(8).Bool(i),
			}
		}
		return out, nil
	case KindHCNth:
		out := make([]HCNthRecord, n)
		for i := range out {
			p, err := pat(3, i)
			if err != nil {
				return nil, err
			}
			out[i] = HCNthRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Row: int(col(2).Int(i)),
				Pattern: p, HC: col(4).IntLists[i], Found: col(5).Bool(i),
			}
		}
		return out, nil
	case KindVariability:
		out := make([]VariabilityRecord, n)
		for i := range out {
			out[i] = VariabilityRecord{
				Chip: int(col(0).Int(i)), Row: int(col(1).Int(i)),
				MinHC: int(col(2).Int(i)), MaxHC: int(col(3).Int(i)),
				Iterations: int(col(4).Int(i)), MeasuredRatios: col(5).Bool(i),
			}
		}
		return out, nil
	case KindRowPressBER:
		out := make([]RowPressBERRecord, n)
		for i := range out {
			out[i] = RowPressBERRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), TAggON: col(2).Int(i),
				BERPercent: col(3).Float(i), RetentionBERPercent: col(4).Float(i), Rows: int(col(5).Int(i)),
			}
		}
		return out, nil
	case KindRowPressHC:
		out := make([]RowPressHCRecord, n)
		for i := range out {
			out[i] = RowPressHCRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Row: int(col(2).Int(i)),
				TAggON: col(3).Int(i), HCFirst: int(col(4).Int(i)),
				Found: col(5).Bool(i), WithinWindow: col(6).Bool(i),
			}
		}
		return out, nil
	case KindBypass:
		out := make([]BypassRecord, n)
		for i := range out {
			out[i] = BypassRecord{
				Chip: int(col(0).Int(i)), Row: int(col(1).Int(i)),
				Dummies: int(col(2).Int(i)), AggActs: int(col(3).Int(i)), BERPercent: col(4).Float(i),
			}
		}
		return out, nil
	case KindAging:
		out := make([]AgingRecord, n)
		for i := range out {
			out[i] = AgingRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Row: int(col(2).Int(i)),
				OldBERPercent: col(3).Float(i), NewBERPercent: col(4).Float(i),
			}
		}
		return out, nil
	case KindVRD:
		out := make([]VRDRecord, n)
		for i := range out {
			p, err := pat(5, i)
			if err != nil {
				return nil, err
			}
			out[i] = VRDRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Pseudo: int(col(2).Int(i)),
				Bank: int(col(3).Int(i)), Row: int(col(4).Int(i)),
				Pattern: p, Trials: int(col(6).Int(i)), Found: int(col(7).Int(i)),
				MinHC: int(col(8).Int(i)), MaxHC: int(col(9).Int(i)),
				MeanHC: col(10).Float(i), PHC: int(col(11).Int(i)), HCs: col(12).IntLists[i],
			}
		}
		return out, nil
	case KindColDisturb:
		out := make([]ColDisturbRecord, n)
		for i := range out {
			out[i] = ColDisturbRecord{
				Chip: int(col(0).Int(i)), Channel: int(col(1).Int(i)), Pseudo: int(col(2).Int(i)),
				Bank: int(col(3).Int(i)), Row: int(col(4).Int(i)),
				Distance: int(col(5).Int(i)), Stripe: int(col(6).Int(i)), Reads: int(col(7).Int(i)),
				Flips: int(col(8).Int(i)), ColFlips: col(9).IntLists[i],
				FirstDisturb: int(col(10).Int(i)), Found: col(11).Bool(i),
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown experiment kind %q", kind)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeColumn serializes one column's payload per the type layouts
// documented on the type constants.
func encodeColumn(c *Column, n int) []byte {
	var b []byte
	switch c.Type {
	case ColInt:
		prev := int64(0)
		for _, v := range c.Ints {
			b = appendUvarint(b, zigzag(v-prev))
			prev = v
		}
	case ColFloat:
		b = make([]byte, 0, 8*len(c.Floats))
		for _, v := range c.Floats {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case ColBool:
		b = make([]byte, (n+7)/8)
		for i, v := range c.Bools {
			if v {
				b[i/8] |= 1 << (i % 8)
			}
		}
	case ColDict:
		b = appendUvarint(b, uint64(len(c.Labels)))
		for _, l := range c.Labels {
			b = appendString(b, l)
		}
		for _, v := range c.Ints {
			b = appendUvarint(b, uint64(v))
		}
	case ColIntList:
		for _, list := range c.IntLists {
			if list == nil {
				b = appendUvarint(b, 0)
				continue
			}
			b = appendUvarint(b, uint64(len(list)+1))
			prev := 0
			for _, v := range list {
				b = appendUvarint(b, zigzag(int64(v-prev)))
				prev = v
			}
		}
	case ColBytes:
		for _, p := range c.Bytes {
			if p == nil {
				b = appendUvarint(b, 0)
				continue
			}
			b = appendUvarint(b, uint64(len(p)+1))
			b = append(b, p...)
		}
	}
	return b
}

// byteReader tracks a decode position over one in-memory payload.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("core: truncated columnar varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, fmt.Errorf("core: truncated columnar payload at offset %d", r.pos)
	}
	p := r.b[r.pos : r.pos+n]
	r.pos += n
	return p, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	p, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// decodeColumn parses one column payload of n rows.
func decodeColumn(c *Column, payload []byte, n int) error {
	r := &byteReader{b: payload}
	switch c.Type {
	case ColInt:
		c.Ints = make([]int64, n)
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, err := r.uvarint()
			if err != nil {
				return err
			}
			prev += unzigzag(u)
			c.Ints[i] = prev
		}
	case ColFloat:
		raw, err := r.take(8 * n)
		if err != nil {
			return err
		}
		c.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			c.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	case ColBool:
		raw, err := r.take((n + 7) / 8)
		if err != nil {
			return err
		}
		c.Bools = make([]bool, n)
		for i := 0; i < n; i++ {
			c.Bools[i] = raw[i/8]&(1<<(i%8)) != 0
		}
	case ColDict:
		nl, err := r.uvarint()
		if err != nil {
			return err
		}
		if nl > uint64(len(payload)) {
			return fmt.Errorf("core: columnar dictionary of %d entries exceeds payload", nl)
		}
		c.Labels = make([]string, nl)
		for i := range c.Labels {
			if c.Labels[i], err = r.str(); err != nil {
				return err
			}
		}
		c.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			u, err := r.uvarint()
			if err != nil {
				return err
			}
			if u >= nl {
				return fmt.Errorf("core: columnar dictionary index %d out of %d", u, nl)
			}
			c.Ints[i] = int64(u)
		}
	case ColIntList:
		c.IntLists = make([][]int, n)
		for i := 0; i < n; i++ {
			l, err := r.uvarint()
			if err != nil {
				return err
			}
			if l == 0 {
				continue // nil slice
			}
			length := int(l - 1)
			if length > len(payload) {
				return fmt.Errorf("core: columnar int list of %d elements exceeds payload", length)
			}
			list := make([]int, length)
			prev := 0
			for j := 0; j < length; j++ {
				u, err := r.uvarint()
				if err != nil {
					return err
				}
				prev += int(unzigzag(u))
				list[j] = prev
			}
			c.IntLists[i] = list
		}
	case ColBytes:
		c.Bytes = make([][]byte, n)
		for i := 0; i < n; i++ {
			l, err := r.uvarint()
			if err != nil {
				return err
			}
			if l == 0 {
				continue // nil slice
			}
			p, err := r.take(int(l - 1))
			if err != nil {
				return err
			}
			buf := make([]byte, len(p))
			copy(buf, p)
			c.Bytes[i] = buf
		}
	default:
		return fmt.Errorf("core: unknown columnar column type %d", c.Type)
	}
	if r.pos != len(payload) {
		return fmt.Errorf("core: columnar column %s has %d trailing payload bytes", c.Name, len(payload)-r.pos)
	}
	return nil
}

// EncodeColumnar writes a sweep's columnar artifact: magic and version,
// the JSON sweep header, the row count, and one typed column per record
// field. records must be the typed slice DecodeRecords returns for the
// header's kind.
func EncodeColumnar(w io.Writer, h SweepHeader, records any) error {
	cs, err := ExtractColumns(Kind(h.Kind), records)
	if err != nil {
		return err
	}
	hj, err := json.Marshal(h)
	if err != nil {
		return err
	}
	out := make([]byte, 0, 4096)
	out = append(out, columnarMagic[:]...)
	out = append(out, columnarVersion)
	out = appendUvarint(out, uint64(len(hj)))
	out = append(out, hj...)
	out = appendUvarint(out, uint64(cs.N))
	out = appendUvarint(out, uint64(len(cs.Cols)))
	for i := range cs.Cols {
		c := &cs.Cols[i]
		payload := encodeColumn(c, cs.N)
		out = appendString(out, c.Name)
		out = append(out, c.Type)
		out = appendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	_, err = w.Write(out)
	return err
}

// DecodeColumnar parses a columnar artifact back into its column set.
// Call Records on the result to rebuild the typed record slice; feeding
// that to EncodeRecords reproduces the original JSONL byte for byte.
func DecodeColumnar(rd io.Reader) (*ColumnSet, error) {
	b, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(b) < 5 || [4]byte(b[:4]) != columnarMagic {
		return nil, fmt.Errorf("core: not a columnar sweep artifact")
	}
	if b[4] != columnarVersion {
		return nil, fmt.Errorf("core: columnar artifact version %d, decoder speaks %d", b[4], columnarVersion)
	}
	r := &byteReader{b: b, pos: 5}
	hl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	hj, err := r.take(int(hl))
	if err != nil {
		return nil, err
	}
	cs := &ColumnSet{}
	if err := json.Unmarshal(hj, &cs.Header); err != nil {
		return nil, fmt.Errorf("core: columnar artifact header: %w", err)
	}
	rows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rows > uint64(len(b)) {
		return nil, fmt.Errorf("core: columnar row count %d exceeds artifact size", rows)
	}
	cs.N = int(rows)
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > 64 {
		return nil, fmt.Errorf("core: columnar artifact declares %d columns", ncols)
	}
	cs.Cols = make([]Column, ncols)
	for i := range cs.Cols {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		tb, err := r.take(1)
		if err != nil {
			return nil, err
		}
		pl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		payload, err := r.take(int(pl))
		if err != nil {
			return nil, err
		}
		cs.Cols[i] = Column{Name: name, Type: tb[0]}
		if err := decodeColumn(&cs.Cols[i], payload, cs.N); err != nil {
			return nil, err
		}
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("core: columnar artifact has %d trailing bytes", len(b)-r.pos)
	}
	return cs, nil
}
