package core

import (
	"hbmrd/internal/pattern"
)

// Table1Row is one row of the paper's Table 1 (the data patterns).
type Table1Row struct {
	Addresses string
	Bytes     [4]byte // Rowstripe0, Rowstripe1, Checkered0, Checkered1
}

// Table1 returns the paper's Table 1 verbatim, derived from the pattern
// package so the table and the implementation cannot drift apart.
func Table1() []Table1Row {
	pats := pattern.All()
	var victim, aggr, outer [4]byte
	for i, p := range pats {
		victim[i] = p.VictimByte()
		aggr[i] = p.AggressorByte()
		outer[i] = p.VictimByte()
	}
	return []Table1Row{
		{Addresses: "Victim (V)", Bytes: victim},
		{Addresses: "Aggressors (V±1)", Bytes: aggr},
		{Addresses: "V±[2:8]", Bytes: outer},
	}
}

// Table2Row is one row of the paper's Table 2 (tested components per
// experiment type).
type Table2Row struct {
	Experiment     string
	RowsPerBank    int
	Banks          int
	PseudoChannels int
	Channels       int
}

// Table2 returns the paper's Table 2: the component counts of each
// experiment type at paper scale.
func Table2() []Table2Row {
	return []Table2Row{
		{Experiment: "RowHammer BER", RowsPerBank: 16384, Banks: 1, PseudoChannels: 1, Channels: 8},
		{Experiment: "RowHammer HCfirst", RowsPerBank: 3072, Banks: 3, PseudoChannels: 2, Channels: 8},
		{Experiment: "RowPress BER", RowsPerBank: 384, Banks: 1, PseudoChannels: 1, Channels: 3},
		{Experiment: "RowPress HCfirst", RowsPerBank: 384, Banks: 1, PseudoChannels: 1, Channels: 3},
	}
}
