package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/rowmap"
)

// synthRecords fabricates a row's worth of records without touching the
// device, so the benchmark isolates the collection machinery itself.
func synthRecords(chip, ch, pc, bnk, pt int) []BERRecord {
	recs := make([]BERRecord, 4)
	for i := range recs {
		recs[i] = BERRecord{
			Chip: chip, Channel: ch, Pseudo: pc, Bank: bnk, Row: pt,
			Pattern: pattern.Pattern(i + 1), BERPercent: float64(pt * i),
		}
	}
	return recs
}

// BenchmarkSweepCollect pits the engine's slot-based, sort-free result
// collection against the pre-engine skeleton every runner used to carry
// (per-channel goroutines, a global mutex-guarded append, and a full
// post-hoc sort). The measurement closure is synthetic so the difference
// is purely the fan-out/collection overhead that multiplies at -full
// scale (hundreds of thousands of cells).
func BenchmarkSweepCollect(b *testing.B) {
	fleet, err := NewFleet([]int{0}, hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows}))
	if err != nil {
		b.Fatal(err)
	}
	channels := Channels(8)
	pseudos := []int{0, 1}
	banks := []int{0, 1, 2, 3}
	const points = 64
	wantRecs := len(channels) * len(pseudos) * len(banks) * points * 4

	b.Run("engine-slots", func(b *testing.B) {
		p := newPlan(fleet, channels, pseudos, banks, points)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := runSweep(context.Background(), p, runOpts{}, nil,
				func(_ context.Context, env *cellEnv, c Cell) ([]BERRecord, error) {
					return synthRecords(env.tc.Index, c.Channel, c.Pseudo, c.Bank, c.Point), nil
				})
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != wantRecs {
				b.Fatalf("%d records, want %d", len(out), wantRecs)
			}
		}
	})

	b.Run("mutex-sort-baseline", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var (
				mu  sync.Mutex
				out []BERRecord
				wg  sync.WaitGroup
			)
			next := make(chan int)
			workers := runtime.GOMAXPROCS(0)
			if workers > len(channels) {
				workers = len(channels)
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for chIdx := range next {
						var local []BERRecord
						for _, pc := range pseudos {
							for _, bnk := range banks {
								for pt := 0; pt < points; pt++ {
									local = append(local, synthRecords(fleet[0].Index, chIdx, pc, bnk, pt)...)
								}
							}
						}
						mu.Lock()
						out = append(out, local...)
						mu.Unlock()
					}
				}()
			}
			for _, chIdx := range channels {
				next <- chIdx
			}
			close(next)
			wg.Wait()
			baselineSortBER(out)
			if len(out) != wantRecs {
				b.Fatalf("%d records, want %d", len(out), wantRecs)
			}
		}
	})
}

// baselineSortBER is the global sort the runners performed before the
// sweep engine made record order deterministic by construction.
func baselineSortBER(recs []BERRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		switch {
		case a.Chip != b.Chip:
			return a.Chip < b.Chip
		case a.Channel != b.Channel:
			return a.Channel < b.Channel
		case a.Pseudo != b.Pseudo:
			return a.Pseudo < b.Pseudo
		case a.Bank != b.Bank:
			return a.Bank < b.Bank
		case a.Row != b.Row:
			return a.Row < b.Row
		case a.WCDP != b.WCDP:
			return !a.WCDP
		default:
			return a.Pattern < b.Pattern
		}
	})
}
