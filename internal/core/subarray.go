package core

import (
	"fmt"
	"sort"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
)

// SubarrayScanConfig parameterizes the single-sided boundary discovery of
// §4.2 (footnote 4): hammering a row at a subarray edge disturbs only its
// same-subarray neighbour, so boundaries show up as rows whose single-sided
// hammering leaves one neighbour clean.
type SubarrayScanConfig struct {
	Channel int
	Pseudo  int
	Bank    int
	// FromRow and ToRow bound the scanned physical range (inclusive,
	// exclusive).
	FromRow, ToRow int
	// HammerCount and TOn size the probe; the defaults (4000 activations
	// held open for 9*tREFI) exceed every row's threshold.
	HammerCount int
	TOn         hbm.TimePS
	// Fill is the probe data pattern byte.
	Fill byte
}

func (c *SubarrayScanConfig) fill() {
	if c.HammerCount == 0 {
		c.HammerCount = 4000
	}
	if c.TOn == 0 {
		c.TOn = 9 * 3_900_000
	}
	if c.Fill == 0 {
		c.Fill = 0x55
	}
}

// ScanSubarrayBoundaries probes [FromRow, ToRow) and returns the physical
// rows B such that B-1 and B lie in different subarrays.
func ScanSubarrayBoundaries(tc *TestChip, cfg SubarrayScanConfig) ([]int, error) {
	cfg.fill()
	g := tc.Chip.Geometry()
	if cfg.FromRow < 1 || cfg.ToRow > g.Rows-1 || cfg.FromRow >= cfg.ToRow {
		return nil, fmt.Errorf("core: bad scan range [%d, %d)", cfg.FromRow, cfg.ToRow)
	}
	ch, err := tc.Chip.Channel(cfg.Channel)
	if err != nil {
		return nil, err
	}
	ref := newBankRef(tc, ch, cfg.Pseudo, cfg.Bank)

	var boundaries []int
	for agg := cfg.FromRow; agg < cfg.ToRow; agg++ {
		coupleUp, err := singleSidedCouples(ref, agg, agg+1, cfg)
		if err != nil {
			return nil, err
		}
		if !coupleUp {
			boundaries = append(boundaries, agg+1)
		}
	}
	sort.Ints(boundaries)
	return boundaries, nil
}

// singleSidedCouples hammers aggressor agg single-sided and reports
// whether the neighbour row took any bitflips.
func singleSidedCouples(ref bankRef, agg, neighbor int, cfg SubarrayScanConfig) (bool, error) {
	if neighbor < 0 || neighbor >= ref.geom.Rows {
		return false, nil
	}
	if err := ref.ch.FillRow(ref.pc, ref.bnk, ref.logical(neighbor), cfg.Fill); err != nil {
		return false, err
	}
	if err := ref.ch.FillRow(ref.pc, ref.bnk, ref.logical(agg), ^cfg.Fill); err != nil {
		return false, err
	}
	if err := ref.ch.HammerSingleSided(ref.pc, ref.bnk, ref.logical(agg), cfg.HammerCount, cfg.TOn); err != nil {
		return false, err
	}
	flips, err := ref.readFlips(neighbor, cfg.Fill, nil)
	if err != nil {
		return false, err
	}
	return flips > 0, nil
}

// ReverseEngineerMapping runs the paper's §3.1 methodology on a window of
// logical rows: hammer each row single-sided, observe which logical rows
// take bitflips, and decompose the adjacency into physically ordered
// paths. It returns the discovered paths (each a run of logical rows in
// physical order).
func ReverseEngineerMapping(tc *TestChip, cfg SubarrayScanConfig, logicalRows []int) ([][]int, error) {
	cfg.fill()
	ch, err := tc.Chip.Channel(cfg.Channel)
	if err != nil {
		return nil, err
	}

	// Immediate physical neighbours take the full coupling dose (hundreds
	// of bitflips at probe strength) while distance-2 neighbours see only
	// ~1.5% of it (at most a few flips on the weakest rows), so a flip
	// threshold separates true adjacency from blast-radius noise.
	const adjacencyMinFlips = 8
	buf := make([]byte, tc.Chip.Geometry().RowBytes)
	probe := func(logical int) ([]int, error) {
		// Initialize a candidate, hammer `logical`, read the candidate.
		// For tractability the scan checks candidate logical rows within a
		// small logical distance (vendor mappings permute within small
		// blocks).
		var ns []int
		for _, cand := range logicalRows {
			if cand == logical {
				continue
			}
			if delta := cand - logical; delta < -8 || delta > 8 {
				continue
			}
			if err := ch.FillRow(cfg.Pseudo, cfg.Bank, cand, cfg.Fill); err != nil {
				return nil, err
			}
			if err := ch.FillRow(cfg.Pseudo, cfg.Bank, logical, ^cfg.Fill); err != nil {
				return nil, err
			}
			if err := ch.HammerSingleSided(cfg.Pseudo, cfg.Bank, logical, cfg.HammerCount, cfg.TOn); err != nil {
				return nil, err
			}
			if err := ch.ReadRow(cfg.Pseudo, cfg.Bank, cand, buf); err != nil {
				return nil, err
			}
			flips := 0
			for i, b := range buf {
				for x := b ^ cfg.Fill; x != 0; x &= x - 1 {
					flips++
				}
				if flips >= adjacencyMinFlips {
					break
				}
				_ = i
			}
			if flips >= adjacencyMinFlips {
				ns = append(ns, cand)
			}
		}
		return ns, nil
	}

	adj, err := rowmap.BuildAdjacency(probe, logicalRows)
	if err != nil {
		return nil, err
	}
	// Rows whose physical neighbours fall outside the probed window end up
	// with degree <= 2 naturally; decompose into paths.
	return rowmap.Paths(adj)
}
