package core

import (
	"context"

	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/retention"
)

// StandardTAggONs returns the six aggressor-row-on times of Fig 14: tRAS
// (29 ns), 58 ns, 87 ns, 116 ns, tREFI (3.9 us) and 9*tREFI (35.1 us).
func StandardTAggONs() []hbm.TimePS {
	return []hbm.TimePS{29 * hbm.NS, 58 * hbm.NS, 87 * hbm.NS, 116 * hbm.NS,
		3_900 * hbm.NS, 35_100 * hbm.NS}
}

// Fig15TAggONs returns the four on-times of Fig 15, including the extreme
// 16 ms at which a single activation suffices.
func Fig15TAggONs() []hbm.TimePS {
	return []hbm.TimePS{29 * hbm.NS, 3_900 * hbm.NS, 35_100 * hbm.NS, 16 * hbm.MS}
}

// RowPressBERConfig parameterizes the Fig 14 sweep: BER at a fixed hammer
// count across increasing tAggON (paper: 150K hammers, Checkered0, the
// first/middle/last 128 rows of one bank, 8 channels).
type RowPressBERConfig struct {
	Channels []int // default {0..7}
	Pseudo   int
	Bank     int
	Rows     []int // default RegionRows(8)
	TAggONs  []hbm.TimePS
	// HammerCount per aggressor (default 150K, Fig 14).
	HammerCount int
	Pattern     pattern.Pattern // default Checkered0
	// FilterRetention subtracts retention failures for experiments longer
	// than the 32 ms refresh window, as §6 does (default true; set
	// KeepRetention to disable).
	KeepRetention bool
	// RetentionReps is the union depth of the retention mask (default 5).
	RetentionReps int
}

func (c *RowPressBERConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = Channels(g.Channels)
	}
	if len(c.Rows) == 0 {
		c.Rows = RegionRowsIn(g, 8)
	}
	if len(c.TAggONs) == 0 {
		c.TAggONs = StandardTAggONs()
	}
	if c.HammerCount == 0 {
		c.HammerCount = 150_000
	}
	if c.Pattern == 0 {
		c.Pattern = pattern.Checkered0
	}
	if c.RetentionReps == 0 {
		c.RetentionReps = 5
	}
}

// RowPressBERRecord is one (chip, channel, tAggON) aggregate: the mean BER
// across the tested rows, with retention failures removed, plus the
// retention BER itself (the paper reports 0%, 0.013%, 0.134% for the three
// super-32ms experiment durations).
type RowPressBERRecord struct {
	Chip, Channel       int
	TAggON              hbm.TimePS
	BERPercent          float64
	RetentionBERPercent float64
	Rows                int
}

// RunRowPressBER executes the Fig 14 sweep.
func RunRowPressBER(fleet []*TestChip, cfg RowPressBERConfig) ([]RowPressBERRecord, error) {
	return RunRowPressBERContext(context.Background(), fleet, cfg)
}

// RunRowPressBERContext is RunRowPressBER with cancellation and execution
// options. Records are in plan order: (chip, channel, tAggON).
func RunRowPressBERContext(ctx context.Context, fleet []*TestChip, cfg RowPressBERConfig, opts ...RunOption) ([]RowPressBERRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, []int{cfg.Pseudo}, []int{cfg.Bank}, len(cfg.TAggONs))
	o := applyOpts(opts)
	p, st, err := prepareSweep[RowPressBERRecord](KindRowPressBER, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(ctx context.Context, env *cellEnv, c Cell) ([]RowPressBERRecord, error) {
		ref := env.bank(c.Pseudo, c.Bank)
		rec, err := rowPressBERPoint(ctx, ref, env.ch, c.Channel, cfg.TAggONs[c.Point], cfg)
		if err != nil {
			return nil, err
		}
		return []RowPressBERRecord{rec}, nil
	})
}

func rowPressBERPoint(ctx context.Context, ref bankRef, ch *hbm.Channel, chIdx int, tOn hbm.TimePS, cfg RowPressBERConfig) (RowPressBERRecord, error) {
	rec := RowPressBERRecord{Chip: ref.tc.Index, Channel: chIdx, TAggON: tOn, Rows: len(cfg.Rows)}

	// Experiment duration per row: 2*count activations of (tOn + tRP)-ish
	// each; beyond the 32 ms refresh window retention failures creep in
	// and must be measured and subtracted (§6).
	t := ref.tc.Chip.Timing()
	perAct := t.TRC
	if tOn+t.TRP > perAct {
		perAct = tOn + t.TRP
	}
	expDur := hbm.TimePS(2*cfg.HammerCount) * perAct
	needFilter := !cfg.KeepRetention && expDur > t.TREFW

	totalFlips, totalRetFlips := 0, 0
	mask := make([]byte, ref.geom.RowBytes)
	for _, row := range cfg.Rows {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		for i := range mask {
			mask[i] = 0
		}
		flips, err := ref.hammerAndCount(row, cfg.Pattern, cfg.HammerCount, tOn, mask)
		if err != nil {
			return rec, err
		}
		if needFilter {
			prof := &retention.Profiler{Chan: ch, PC: ref.pc, Bank: ref.bnk, Fill: cfg.Pattern.VictimByte()}
			retMask, err := prof.RetentionMask(ref.logical(row), expDur, cfg.RetentionReps)
			if err != nil {
				return rec, err
			}
			for i := range mask {
				both := mask[i] & retMask[i]
				flips -= popcountByte(both)
				totalRetFlips += popcountByte(retMask[i])
			}
		}
		totalFlips += flips
	}
	bits := float64(len(cfg.Rows) * ref.geom.RowBits())
	rec.BERPercent = float64(totalFlips) / bits * 100
	rec.RetentionBERPercent = float64(totalRetFlips) / bits * 100
	return rec, nil
}

func popcountByte(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// RowPressHCConfig parameterizes the Fig 15 sweep: HCfirst as tAggON
// grows (paper: 384 rows, 3 channels, 4 on-times).
type RowPressHCConfig struct {
	Channels []int // default {0, 1, 2}
	Pseudo   int
	Bank     int
	Rows     []int // default SampleRows(12)
	TAggONs  []hbm.TimePS
	// MaxHammer bounds the search at the smallest tAggON (default 300K).
	MaxHammer int
}

func (c *RowPressHCConfig) fill(g hbm.Geometry) {
	if len(c.Channels) == 0 {
		c.Channels = []int{0, 1, 2}
	}
	if len(c.Rows) == 0 {
		c.Rows = SampleRowsIn(g, 12)
	}
	if len(c.TAggONs) == 0 {
		c.TAggONs = Fig15TAggONs()
	}
	if c.MaxHammer == 0 {
		c.MaxHammer = 300 * 1024
	}
}

// RowPressHCRecord is one (row, tAggON) HCfirst measurement.
// WithinWindow reports whether inducing the first bitflip fits inside the
// 32 ms refresh window (the paper only plots rows that flip within the
// window at every tested tAggON).
type RowPressHCRecord struct {
	Chip, Channel, Row int
	TAggON             hbm.TimePS
	HCFirst            int
	Found              bool
	WithinWindow       bool
}

// RunRowPressHC executes the Fig 15 sweep.
func RunRowPressHC(fleet []*TestChip, cfg RowPressHCConfig) ([]RowPressHCRecord, error) {
	return RunRowPressHCContext(context.Background(), fleet, cfg)
}

// RunRowPressHCContext is RunRowPressHC with cancellation and execution
// options. Records are in plan order: (chip, channel, row, tAggON).
func RunRowPressHCContext(ctx context.Context, fleet []*TestChip, cfg RowPressHCConfig, opts ...RunOption) ([]RowPressHCRecord, error) {
	cfg.fill(fleetGeometry(fleet))
	p := newPlan(fleet, cfg.Channels, []int{cfg.Pseudo}, []int{cfg.Bank}, len(cfg.Rows)*len(cfg.TAggONs))
	o := applyOpts(opts)
	p, st, err := prepareSweep[RowPressHCRecord](KindRowPressHC, fleet, cfg, p, o, fixedSpan(1))
	if err != nil {
		return nil, err
	}
	return runSweep(ctx, p, o, st, func(_ context.Context, env *cellEnv, c Cell) ([]RowPressHCRecord, error) {
		row := cfg.Rows[c.Point/len(cfg.TAggONs)]
		tOn := cfg.TAggONs[c.Point%len(cfg.TAggONs)]
		ref := env.bank(c.Pseudo, c.Bank)
		t := env.tc.Chip.Timing()
		hc, found, err := ref.hcSearch(row, pattern.Checkered0, 1, 1, cfg.MaxHammer, tOn)
		if err != nil {
			return nil, err
		}
		// Window accounting uses the open time itself: the paper's extreme
		// 16 ms point is chosen so each aggressor activates exactly once
		// per tREFW (2 x 16 ms = the window).
		tOnEff := tOn
		if tOnEff < t.TRAS {
			tOnEff = t.TRAS
		}
		return []RowPressHCRecord{{
			Chip: env.tc.Index, Channel: c.Channel, Row: row, TAggON: tOn,
			HCFirst: hc, Found: found,
			WithinWindow: found && hbm.TimePS(2*hc)*tOnEff <= t.TREFW,
		}}, nil
	})
}
