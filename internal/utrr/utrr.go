// Package utrr implements the U-TRR methodology (Hassan et al., MICRO'21)
// the paper uses to uncover the undocumented TRR mechanism in its HBM2
// chip (§7). The key idea: rows with a known retention time T act as side
// channels. Initialize such a row, wait T/2, poke the chip (activations
// and REFs), wait T/2 again, and read the row: it comes back clean only if
// something refreshed it in the middle - i.e. only if the TRR mechanism
// identified one of its neighbours as an aggressor.
//
// Everything here observes the chip strictly through the command
// interface. The prober keeps a host-side count of the REF commands it has
// issued (as the real U-TRR host does); the TRR engine's internal state is
// never consulted.
package utrr

import (
	"fmt"

	"hbmrd/internal/hbm"
	"hbmrd/internal/retention"
	"hbmrd/internal/rowmap"
)

// Findings summarizes what the methodology uncovered, mirroring the
// paper's Observations 20-23.
type Findings struct {
	// Period is the TRR-capable REF cadence (paper: every 17th REF).
	Period int
	// PeriodOffset is the REF index (mod Period, counted from chip
	// power-up) at which TRR-capable REFs fire.
	PeriodOffset int
	// RefreshesBothNeighbors reports whether identifying aggressor R
	// refreshes both R-1 and R+1 (Obsv 21).
	RefreshesBothNeighbors bool
	// FirstActIdentified reports whether the first row activated after a
	// TRR-capable REF is always identified, even with a single activation
	// (Obsv 22).
	FirstActIdentified bool
	// IdentifyThreshold is the smallest per-window activation count at
	// which a non-first row is identified (the paper phrases this as
	// "more than half the activations" at its 10-ACT probe total; see
	// internal/trr for why an absolute threshold is the consistent
	// reading).
	IdentifyThreshold int
}

// Prober drives the U-TRR methodology against one bank of a chip. The
// chip must be freshly powered (no REFs issued yet) so the prober's
// host-side REF count matches the device's.
type Prober struct {
	// Chan is the channel under test.
	Chan *hbm.Channel
	// Mapper is the (reverse-engineered) logical-to-physical mapping of
	// the chip, used to address physically adjacent rows.
	Mapper rowmap.Mapper
	// PC and Bank select the bank.
	PC, Bank int
	// Fill is the side-channel data pattern.
	Fill byte
	// MaxProbeREFs bounds the search for the TRR period (default 60).
	MaxProbeREFs int

	refsIssued int
	rowBuf     []byte // scratch row for side-channel reads
}

func (p *Prober) refresh() error {
	if err := p.Chan.Refresh(); err != nil {
		return err
	}
	p.refsIssued++
	return nil
}

// actPhysicalN activates the physical row n times back to back.
func (p *Prober) actPhysicalN(phys, n int) error {
	logical := p.Mapper.ToLogical(phys)
	for i := 0; i < n; i++ {
		if err := p.Chan.Activate(p.PC, p.Bank, logical); err != nil {
			return err
		}
		if err := p.Chan.Precharge(p.PC, p.Bank); err != nil {
			return err
		}
	}
	return nil
}

// sideChannel is one retention side channel: a physical row and its
// profiled retention time.
type sideChannel struct {
	phys int
	t    hbm.TimePS
}

func (p *Prober) initSide(sc sideChannel) error {
	return p.Chan.FillRow(p.PC, p.Bank, p.Mapper.ToLogical(sc.phys), p.Fill)
}

func (p *Prober) readSideClean(sc sideChannel) (bool, error) {
	if p.rowBuf == nil {
		p.rowBuf = make([]byte, p.Chan.Geometry().RowBytes)
	}
	buf := p.rowBuf
	if err := p.Chan.ReadRow(p.PC, p.Bank, p.Mapper.ToLogical(sc.phys), buf); err != nil {
		return false, err
	}
	for _, b := range buf {
		if b != p.Fill {
			return false, nil
		}
	}
	return true, nil
}

// findSideChannels profiles physical rows from startPhys upward until it
// finds n usable side channels (retention in [minT, maxT]).
func (p *Prober) findSideChannels(startPhys, n int, minT, maxT hbm.TimePS) ([]sideChannel, error) {
	if minT < 2*retention.DefaultStep {
		return nil, fmt.Errorf("utrr: minT below twice the retention profiling step")
	}
	prof := &retention.Profiler{Chan: p.Chan, PC: p.PC, Bank: p.Bank, Fill: p.Fill}
	numRows := p.Chan.Geometry().Rows
	var out []sideChannel
	for phys := startPhys; phys < numRows && len(out) < n; phys++ {
		t, err := prof.RowRetention(p.Mapper.ToLogical(phys), maxT)
		if err != nil {
			return nil, err
		}
		if t >= minT && t <= maxT {
			out = append(out, sideChannel{phys: phys, t: t})
			phys += 4 // keep side channels apart so probes don't interact
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("utrr: found only %d of %d side-channel rows in [%d, %d)", len(out), n, startPhys, numRows)
	}
	return out, nil
}

// discoverPeriod repeats a simple trial - init side row, wait T/2, hammer
// its upper neighbour 10 times (enough to be identified), issue one REF,
// wait T/2, read - and finds the spacing of trials whose REF carried out a
// victim refresh.
func (p *Prober) discoverPeriod(sc sideChannel) (period, offset int, err error) {
	maxREFs := p.MaxProbeREFs
	if maxREFs <= 0 {
		maxREFs = 60
	}
	var cleanRefs []int
	for i := 0; i < maxREFs; i++ {
		if err := p.initSide(sc); err != nil {
			return 0, 0, err
		}
		p.Chan.Wait(sc.t / 2)
		if err := p.actPhysicalN(sc.phys+1, 10); err != nil {
			return 0, 0, err
		}
		if err := p.refresh(); err != nil {
			return 0, 0, err
		}
		refIdx := p.refsIssued // index of the REF just issued
		p.Chan.Wait(sc.t / 2)
		clean, err := p.readSideClean(sc)
		if err != nil {
			return 0, 0, err
		}
		if clean {
			cleanRefs = append(cleanRefs, refIdx)
			if len(cleanRefs) == 2 {
				period := cleanRefs[1] - cleanRefs[0]
				return period, cleanRefs[0] % period, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("utrr: no TRR-capable REF observed within %d REFs (chip may have no TRR)", maxREFs)
}

// alignToTRRBoundary issues idle REFs until the most recent REF was
// TRR-capable, so the next activation is "the first ACT after a
// TRR-capable REF". It always crosses at least one TRR-capable REF:
// activations issued since the last boundary (e.g. the previous probe's
// read-back) would otherwise still hold the first-ACT register.
func (p *Prober) alignToTRRBoundary(period, offset int) error {
	crossed := false
	for !crossed || p.refsIssued%period != offset {
		if err := p.refresh(); err != nil {
			return err
		}
		if p.refsIssued%period == offset {
			crossed = true
		}
	}
	return nil
}

// probeWindow runs one aligned probe: immediately after a TRR-capable REF
// it executes poke (the activations under test), initializes the side
// channel, waits T/2, issues one full period of REFs (the last being
// TRR-capable and able to carry out victim refreshes), waits T/2, and
// reports whether the side row was refreshed.
func (p *Prober) probeWindow(sc sideChannel, period, offset int, poke func() error) (bool, error) {
	if err := p.alignToTRRBoundary(period, offset); err != nil {
		return false, err
	}
	if poke != nil {
		if err := poke(); err != nil {
			return false, err
		}
	}
	if err := p.initSide(sc); err != nil {
		return false, err
	}
	p.Chan.Wait(sc.t / 2)
	for k := 0; k < period; k++ {
		if err := p.refresh(); err != nil {
			return false, err
		}
	}
	p.Chan.Wait(sc.t / 2)
	return p.readSideClean(sc)
}

// Uncover runs the full methodology and returns the findings. startPhys
// seeds the side-channel search; minT/maxT bound usable retention times
// (minT at least 128 ms so that half the retention time is a safe wait).
func (p *Prober) Uncover(startPhys int, minT, maxT hbm.TimePS) (Findings, error) {
	var f Findings

	scs, err := p.findSideChannels(startPhys, 5, minT, maxT)
	if err != nil {
		return f, err
	}

	// Obsv 20: the TRR-capable REF cadence.
	period, offset, err := p.discoverPeriod(scs[0])
	if err != nil {
		return f, err
	}
	f.Period = period
	f.PeriodOffset = offset

	// Obsv 21: both neighbours of an identified aggressor are refreshed.
	// Hammer the row *below* one side channel and the row *above* another
	// (10 ACTs: identified by count); if both side rows come back clean,
	// victims on both sides are refreshed.
	below, err := p.probeWindow(scs[1], period, offset, func() error {
		return p.actPhysicalN(scs[1].phys-1, 10)
	})
	if err != nil {
		return f, err
	}
	above, err := p.probeWindow(scs[2], period, offset, func() error {
		return p.actPhysicalN(scs[2].phys+1, 10)
	})
	if err != nil {
		return f, err
	}
	f.RefreshesBothNeighbors = below && above

	// Obsv 22: the first row activated after a TRR-capable REF is
	// identified even with a single activation, despite a decoy row
	// receiving many more.
	sc := scs[3]
	first, err := p.probeWindow(sc, period, offset, func() error {
		if err := p.actPhysicalN(sc.phys+1, 1); err != nil { // first ACT
			return err
		}
		return p.actPhysicalN(sc.phys+200, 20) // loud decoy
	})
	if err != nil {
		return f, err
	}
	f.FirstActIdentified = first

	// Obsv 23: sweep the activation count of a non-first row until it is
	// identified. A sacrificial row absorbs the first-ACT rule.
	sc = scs[4]
	for count := 2; count <= 10; count++ {
		clean, err := p.probeWindow(sc, period, offset, func() error {
			if err := p.actPhysicalN(sc.phys+300, 1); err != nil { // sacrificial first ACT
				return err
			}
			return p.actPhysicalN(sc.phys+1, count)
		})
		if err != nil {
			return f, err
		}
		if clean {
			f.IdentifyThreshold = count
			break
		}
	}
	if f.IdentifyThreshold == 0 {
		return f, fmt.Errorf("utrr: no identification threshold found up to 10 activations")
	}
	return f, nil
}
