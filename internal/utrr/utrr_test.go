package utrr

import (
	"testing"

	"hbmrd/internal/hbm"
	"hbmrd/internal/rowmap"
	"hbmrd/internal/trr"
)

func newProber(t *testing.T, opts ...hbm.Option) *Prober {
	t.Helper()
	opts = append([]hbm.Option{hbm.WithMapper(rowmap.Identity{NumRows: hbm.NumRows})}, opts...)
	c, err := hbm.NewBuiltin(0, opts...) // Chip 0: the chip the paper probes
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Channel(0)
	if err != nil {
		t.Fatal(err)
	}
	return &Prober{
		Chan:   ch,
		Mapper: c.Mapper(),
		PC:     0,
		Bank:   0,
		Fill:   0x55,
	}
}

// TestUncoverMatchesPaperFindings runs the full side-channel methodology
// and checks it rediscovers all of the paper's §7 observations without
// ever looking inside the TRR engine.
func TestUncoverMatchesPaperFindings(t *testing.T) {
	p := newProber(t)
	f, err := p.Uncover(3000, 2*128*hbm.MS/2, 4*hbm.SEC)
	if err != nil {
		t.Fatal(err)
	}
	if f.Period != 17 {
		t.Errorf("discovered TRR period %d, paper observes 17 (Obsv 20)", f.Period)
	}
	if !f.RefreshesBothNeighbors {
		t.Error("both-neighbour refresh not observed (Obsv 21)")
	}
	if !f.FirstActIdentified {
		t.Error("first-ACT identification not observed (Obsv 22)")
	}
	if f.IdentifyThreshold != 5 {
		t.Errorf("identification threshold %d, want 5 (Obsv 23 at the paper's 10-ACT probe: half)", f.IdentifyThreshold)
	}
	t.Logf("uncovered: %+v", f)
}

// TestUncoverFailsWithoutTRR: on a chip without the undocumented
// mechanism, the methodology correctly reports that no TRR period exists.
func TestUncoverFailsWithoutTRR(t *testing.T) {
	p := newProber(t, hbm.WithTRRConfig(trr.Config{Enabled: false}))
	p.MaxProbeREFs = 40
	if _, err := p.Uncover(3000, 128*hbm.MS, 4*hbm.SEC); err == nil {
		t.Error("methodology claimed to find TRR on a TRR-less chip")
	}
}

// TestDiscoverPeriodAgainstAblatedEngine checks the methodology tracks the
// mechanism, not hard-coded constants: with a modified TRR cadence the
// probe discovers the modified value.
func TestDiscoverPeriodAgainstAblatedEngine(t *testing.T) {
	cfg := trr.DefaultConfig()
	cfg.Period = 11
	p := newProber(t, hbm.WithTRRConfig(cfg))
	f, err := p.Uncover(3000, 128*hbm.MS, 4*hbm.SEC)
	if err != nil {
		t.Fatal(err)
	}
	if f.Period != 11 {
		t.Errorf("discovered period %d, engine configured with 11", f.Period)
	}
}
