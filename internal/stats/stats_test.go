package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CV(xs); !almostEq(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if !math.IsNaN(CV([]float64{0, 0})) {
		t.Error("CV of zero-mean sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilesBatchMatchesSingle(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8}
	ps := []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}
	batch := Percentiles(xs, ps)
	for i, p := range ps {
		if got := Percentile(xs, p); !almostEq(batch[i], got, 1e-12) {
			t.Errorf("Percentiles[%v] = %v, single = %v", p, batch[i], got)
		}
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1, nil", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want -1, nil", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("too-short samples should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance sample should error")
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.N != 5 {
		t.Errorf("Box = %+v", b)
	}
	empty := Box(nil)
	if !math.IsNaN(empty.Mean) || empty.N != 0 {
		t.Errorf("empty Box = %+v", empty)
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 1, 2, 3}
	xs := []float64{-0.5, 0, 0.5, 1, 1.5, 2.9, 3, 10}
	got := Histogram(xs, edges)
	want := []int{2, 2, 1} // [0,1): {0, 0.5}; [1,2): {1, 1.5}; [2,3): {2.9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Histogram = %v, want %v", got, want)
			break
		}
	}
	if Histogram(xs, []float64{1}) != nil {
		t.Error("degenerate edges should return nil")
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 2 - 3x + 0.5x^2 sampled exactly.
	want := []float64{2, -3, 0.5}
	var xs, ys []float64
	for x := -3.0; x <= 3; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, PolyEval(want, x))
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-8) {
			t.Errorf("coef[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 3); err == nil {
		t.Error("underdetermined fit should error")
	}
}

func TestProbitRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 1e-4, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9999} {
		z := Probit(p)
		back := NormalCDF(z)
		if !almostEq(back, p, 1e-6) {
			t.Errorf("NormalCDF(Probit(%v)) = %v", p, back)
		}
	}
}

func TestProbitKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134474, 1.0},
	}
	for _, c := range cases {
		if got := Probit(c.p); !almostEq(got, c.z, 1e-4) {
			t.Errorf("Probit(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(Probit(0), -1) || !math.IsInf(Probit(1), 1) {
		t.Error("Probit edges should be infinite")
	}
}

// TestProbitMonotoneProperty uses testing/quick to check monotonicity of the
// probit approximation across the unit interval.
func TestProbitMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		pa := (float64(a) + 1) / (float64(math.MaxUint32) + 2)
		pb := (float64(b) + 1) / (float64(math.MaxUint32) + 2)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Probit(pa) <= Probit(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPercentileWithinRangeProperty: any percentile lies within [min, max].
func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
