// Package stats provides the small set of statistics used by the
// characterization study: means, coefficients of variation, percentiles,
// Pearson correlation, histograms, five-number box summaries, and a least
// squares polynomial fit (used for the Fig 12 trend curve).
//
// All functions are pure and operate on float64 slices. Inputs are never
// mutated; functions that need ordering work on internal copies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned (or causes NaN results, where documented) when a
// computation is requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if xs is empty.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (standard deviation normalized to
// the mean), the bank-level dispersion metric used in Fig 9. It returns NaN
// for empty input or a zero mean.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks, or NaN if xs is empty.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs in one pass over a
// single sorted copy. The result has the same length and order as ps.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the slices differ in length, are shorter than two
// elements, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// BoxStat is a five-number summary plus the mean, the shape each box in the
// paper's box-and-whisker figures reports.
type BoxStat struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	N      int
}

// Box computes the five-number summary of xs. For empty input all fields are
// NaN and N is zero.
func Box(xs []float64) BoxStat {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxStat{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return BoxStat{
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// Histogram counts xs into len(edges)-1 bins delimited by the ascending bin
// edges. Values below edges[0] or at/above edges[len-1] are dropped, matching
// the fixed-axis histograms in the paper.
func Histogram(xs []float64, edges []float64) []int {
	if len(edges) < 2 {
		return nil
	}
	counts := make([]int, len(edges)-1)
	for _, x := range xs {
		if x < edges[0] || x >= edges[len(edges)-1] {
			continue
		}
		i := sort.SearchFloat64s(edges, x)
		// SearchFloat64s returns the insertion point; a value equal to an
		// edge belongs to the bin starting at that edge.
		if i < len(edges) && edges[i] == x {
			i++
		}
		counts[i-1]++
	}
	return counts
}

// PolyFit fits a least squares polynomial of the given degree to (xs, ys) and
// returns the coefficients c[0] + c[1]x + ... + c[degree]x^degree. It solves
// the normal equations by Gaussian elimination with partial pivoting, which
// is ample for the low-degree trend fits used in the figures.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("stats: mismatched sample lengths")
	}
	if degree < 0 {
		return nil, errors.New("stats: negative degree")
	}
	n := degree + 1
	if len(xs) < n {
		return nil, errors.New("stats: not enough points for degree")
	}
	// Build normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
	powSums := make([]float64, 2*degree+1)
	b := make([]float64, n)
	for k := range xs {
		xp := 1.0
		for i := 0; i <= 2*degree; i++ {
			powSums[i] += xp
			if i <= degree {
				b[i] += ys[k] * xp
			}
			xp *= xs[k]
		}
	}
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = powSums[i+j]
		}
	}
	if err := solveInPlace(a, b); err != nil {
		return nil, err
	}
	return b, nil
}

// PolyEval evaluates the polynomial with coefficients c (c[0] constant term)
// at x using Horner's method.
func PolyEval(c []float64, x float64) float64 {
	y := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// solveInPlace solves a*x = b by Gaussian elimination with partial pivoting,
// leaving the solution in b.
func solveInPlace(a [][]float64, b []float64) error {
	n := len(b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return errors.New("stats: singular system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * b[c]
		}
		b[r] = sum / a[r][r]
	}
	return nil
}
