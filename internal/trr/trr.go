// Package trr implements the undocumented in-DRAM Target Row Refresh
// mechanism the paper uncovers in an HBM2 chip (§7, Observations 20-23).
//
// The mechanism, as reverse-engineered through the U-TRR retention side
// channel, behaves as follows:
//
//   - Every 17th REF command is TRR-capable: only those REFs may carry out
//     victim-row refreshes (Obsv 20).
//   - When the mechanism identifies row R as an aggressor, it refreshes both
//     adjacent rows R-1 and R+1 (Obsv 21).
//   - The first row activated after a TRR-capable REF is always identified
//     as an aggressor (Obsv 22).
//   - The mechanism records per-REF-window activation counts for a small
//     first-come set of rows (four entries, resetting at every REF) and
//     identifies every tracked row whose count reaches an identification
//     threshold (Obsv 23).
//
// On the threshold: the paper phrases the counting rule as "a row whose
// activation count exceeds half of the total activations between two REFs",
// inferred from a probe that issued 10 activations and saw the 5-ACT row
// identified. That phrasing alone cannot explain the paper's own Fig 16
// result that the bypass pattern needs at least 4 dummy rows: with 1 dummy
// row the dummy receives 42 of 78 activations (the only row above half)
// yet the aggressors at 18 activations are still countered (BER stays 0).
// The one rule consistent with every reported outcome is an absolute
// identification threshold (five activations - which equals "half" at the
// probe's 10-ACT total) applied to the first-come tracked set: aggressors
// are protected against whenever they are *tracked*, and the bypass works
// exactly when four or more dummy rows fill the tracker first.
package trr

import "fmt"

// Config parameterizes the TRR engine. The zero value is a disabled engine;
// use DefaultConfig for the behaviour uncovered in the paper.
type Config struct {
	// TableSize is the number of rows the activation tracker can follow in
	// one REF-to-REF window (first-come). The paper's bypass experiment
	// pins this at 4.
	TableSize int
	// Period is the TRR-capable REF cadence: every Period-th REF may
	// perform victim refreshes. The paper observes 17.
	Period int
	// IdentifyThreshold is the per-window activation count at which a
	// tracked row is identified as an aggressor (see package comment).
	IdentifyThreshold int
	// PendingCap bounds the aggressor set accumulated between TRR-capable
	// REFs.
	PendingCap int
	// Enabled turns the engine on. A disabled engine tracks nothing and
	// never refreshes victims.
	Enabled bool
}

// DefaultConfig returns the configuration matching the mechanism the paper
// uncovered: a 4-entry tracker, a 17-REF TRR cadence, and a 5-ACT
// identification threshold.
func DefaultConfig() Config {
	return Config{TableSize: 4, Period: 17, IdentifyThreshold: 5, PendingCap: 8, Enabled: true}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.TableSize < 1 {
		return fmt.Errorf("trr: TableSize must be at least 1, got %d", c.TableSize)
	}
	if c.Period < 1 {
		return fmt.Errorf("trr: Period must be at least 1, got %d", c.Period)
	}
	if c.IdentifyThreshold < 2 {
		return fmt.Errorf("trr: IdentifyThreshold must be at least 2, got %d", c.IdentifyThreshold)
	}
	if c.PendingCap < 1 {
		return fmt.Errorf("trr: PendingCap must be at least 1, got %d", c.PendingCap)
	}
	return nil
}

// RowCount is one tracker-table entry.
type RowCount struct {
	Row   int
	Count int
}

// Engine tracks aggressor candidates for one DRAM bank. It is not safe for
// concurrent use; the owning bank serializes access.
type Engine struct {
	cfg Config

	refCount uint64 // total REFs observed

	// firstActRow is the first row activated since the last TRR-capable
	// REF (Obsv 22). -1 when unset.
	firstActRow int

	// table is the per-window activation tracker (reset at every REF).
	table []RowCount

	// pending accumulates identified aggressor rows between TRR-capable
	// REFs, in identification order, without duplicates.
	pending []int
}

// NewEngine builds a TRR engine. Invalid configurations degrade to a
// disabled engine together with the returned error.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return &Engine{cfg: Config{}}, err
	}
	e := &Engine{cfg: cfg}
	e.Reset()
	return e, nil
}

// Reset clears all tracker state (e.g. at power-up).
func (e *Engine) Reset() {
	e.refCount = 0
	e.firstActRow = -1
	if e.cfg.TableSize > 0 {
		e.table = make([]RowCount, 0, e.cfg.TableSize)
	} else {
		e.table = nil
	}
	e.pending = e.pending[:0]
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// RefCount returns the number of REF commands observed since reset.
func (e *Engine) RefCount() uint64 { return e.refCount }

// TrackedRows returns a copy of the current window's tracker table, in
// insertion order.
func (e *Engine) TrackedRows() []RowCount {
	out := make([]RowCount, len(e.table))
	copy(out, e.table)
	return out
}

// PendingAggressors returns a copy of the aggressor rows identified since
// the last TRR-capable REF.
func (e *Engine) PendingAggressors() []int {
	out := make([]int, len(e.pending))
	copy(out, e.pending)
	return out
}

// OnActivate informs the engine of an ACT to the given row.
func (e *Engine) OnActivate(row int) { e.OnActivateN(row, 1) }

// OnActivateN informs the engine of n consecutive ACTs to the same row. It
// is exactly equivalent to calling OnActivate(row) n times and exists so
// the device's batched hammer path stays O(1) per burst.
func (e *Engine) OnActivateN(row, n int) {
	if !e.cfg.Enabled || n <= 0 {
		return
	}
	if e.firstActRow < 0 {
		e.firstActRow = row
	}
	for i := range e.table {
		if e.table[i].Row == row {
			e.table[i].Count += n
			return
		}
	}
	if len(e.table) < e.cfg.TableSize {
		e.table = append(e.table, RowCount{Row: row, Count: n})
	}
	// Table full: additional distinct rows in this window go untracked.
}

// OnRefresh informs the engine of a REF command and returns the victim rows
// the TRR mechanism refreshes alongside this REF (empty unless the REF is
// TRR-capable). Victims may fall outside the bank's row range; the caller
// clamps.
func (e *Engine) OnRefresh() []int {
	if !e.cfg.Enabled {
		return nil
	}
	e.refCount++

	// Close the window: identify tracked rows at or above the threshold,
	// then reset the table.
	for _, rc := range e.table {
		if rc.Count >= e.cfg.IdentifyThreshold {
			e.addPending(rc.Row)
		}
	}
	e.table = e.table[:0]

	if e.refCount%uint64(e.cfg.Period) != 0 {
		return nil
	}

	// TRR-capable REF: refresh victims of the first-activated row and of
	// every identified aggressor.
	var victims []int
	if e.firstActRow >= 0 {
		victims = append(victims, e.firstActRow-1, e.firstActRow+1)
	}
	for _, row := range e.pending {
		if row == e.firstActRow {
			continue
		}
		victims = append(victims, row-1, row+1)
	}
	e.firstActRow = -1
	e.pending = e.pending[:0]
	return victims
}

func (e *Engine) addPending(row int) {
	for _, r := range e.pending {
		if r == row {
			return
		}
	}
	if len(e.pending) < e.cfg.PendingCap {
		e.pending = append(e.pending, row)
	}
}
