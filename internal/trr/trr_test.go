package trr

import (
	"testing"
	"testing/quick"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// refN issues n REFs and returns the victims of the last one.
func refN(e *Engine, n int) []int {
	var v []int
	for i := 0; i < n; i++ {
		v = e.OnRefresh()
	}
	return v
}

func TestOnlyEvery17thREFRefreshesVictims(t *testing.T) {
	// Obsv 20: every 17th REF can perform a TRR victim refresh.
	e := newEngine(t)
	for ref := 1; ref <= 70; ref++ {
		e.OnActivate(100) // keep a candidate alive in every window
		victims := e.OnRefresh()
		if ref%17 == 0 && len(victims) == 0 {
			t.Errorf("REF %d is TRR-capable but refreshed no victims", ref)
		}
		if ref%17 != 0 && len(victims) != 0 {
			t.Errorf("REF %d is not TRR-capable but refreshed %v", ref, victims)
		}
	}
}

func TestVictimsAreBothAdjacentRows(t *testing.T) {
	// Obsv 21: identifying row R refreshes R-1 and R+1.
	e := newEngine(t)
	e.OnActivate(500)
	victims := refN(e, 17)
	want := map[int]bool{499: false, 501: false}
	for _, v := range victims {
		if _, ok := want[v]; ok {
			want[v] = true
		}
	}
	for row, seen := range want {
		if !seen {
			t.Errorf("victim row %d not refreshed (got %v)", row, victims)
		}
	}
}

func TestFirstActivatedRowIdentified(t *testing.T) {
	// Obsv 22: the first row activated after a TRR-capable REF is always
	// identified, even if other rows are activated far more.
	e := newEngine(t)
	refN(e, 17) // pass one TRR-capable REF so the first-ACT register arms
	e.OnActivate(42)
	for i := 0; i < 50; i++ {
		e.OnActivate(1000)
	}
	victims := refN(e, 17)
	if !contains(victims, 41) || !contains(victims, 43) {
		t.Errorf("first-activated row 42's victims not refreshed: %v", victims)
	}
}

func TestMostActivatedTrackedRowIdentified(t *testing.T) {
	// Obsv 23: with 10 ACTs between two REFs, a row receiving 5 of them is
	// identified.
	e := newEngine(t)
	// Window: row 7 first (also tracked), row 9 gets 5 ACTs, filler rows.
	e.OnActivate(7)
	for i := 0; i < 5; i++ {
		e.OnActivate(9)
	}
	e.OnActivate(11)
	e.OnActivate(13)
	e.OnActivate(15) // untracked: table already holds 7,9,11,13
	e.OnActivate(7)
	victims := refN(e, 17)
	if !contains(victims, 8) || !contains(victims, 10) {
		t.Errorf("max-count row 9's victims not refreshed: %v", victims)
	}
}

func TestTrackerTableIsFirstCome(t *testing.T) {
	e := newEngine(t)
	for row := 0; row < 10; row++ {
		e.OnActivate(row)
	}
	tracked := e.TrackedRows()
	if len(tracked) != 4 {
		t.Fatalf("tracked %d rows, want 4", len(tracked))
	}
	for i, rc := range tracked {
		if rc.Row != i || rc.Count != 1 {
			t.Errorf("entry %d = %+v, want row %d count 1", i, rc, i)
		}
	}
	// A tracked row keeps counting even after the table fills.
	e.OnActivate(2)
	if got := e.TrackedRows()[2].Count; got != 2 {
		t.Errorf("tracked row 2 count = %d, want 2", got)
	}
}

func TestTableResetsAtEveryREF(t *testing.T) {
	e := newEngine(t)
	e.OnActivate(1)
	e.OnActivate(2)
	e.OnRefresh()
	if n := len(e.TrackedRows()); n != 0 {
		t.Errorf("table holds %d entries after REF, want 0", n)
	}
}

// TestBypassNeedsFourDummies reproduces the Fig 16 threshold: the paper's
// pattern activates dummy rows first, then double-side hammers two real
// aggressors. With >=4 dummies the tracker never sees the aggressors and
// the shared victim is never TRR-refreshed; with <=3 dummies one aggressor
// lands in the tracker, wins the count election, and the victim V (adjacent
// to both aggressors) is preventively refreshed.
func TestBypassNeedsFourDummies(t *testing.T) {
	const (
		victim = 5000
		aggLo  = victim - 1
		aggHi  = victim + 1
		budget = 78 // ACT budget per tREFI (paper: floor((tREFI-tRFC)/tRC))
		aggAct = 18
	)
	run := func(dummies int) (victimRefreshed bool) {
		e := newEngine(t)
		for ref := 1; ref <= 17*4; ref++ {
			// Dummy rows first (they arm the first-ACT register and fill
			// the tracker), then the double-sided aggressor pair.
			dummyActs := budget - 2*aggAct
			for d := 0; d < dummyActs; d++ {
				e.OnActivate(9000 + d%dummies)
			}
			for a := 0; a < aggAct; a++ {
				e.OnActivate(aggLo)
				e.OnActivate(aggHi)
			}
			for _, v := range e.OnRefresh() {
				if v == victim {
					return true
				}
			}
		}
		return false
	}
	for dummies := 1; dummies <= 3; dummies++ {
		if !run(dummies) {
			t.Errorf("%d dummy rows: TRR failed to protect the victim (paper: BER=0)", dummies)
		}
	}
	for dummies := 4; dummies <= 10; dummies++ {
		if run(dummies) {
			t.Errorf("%d dummy rows: TRR still protected the victim (paper: bypass succeeds)", dummies)
		}
	}
}

func TestDisabledEngineDoesNothing(t *testing.T) {
	e, err := NewEngine(Config{Enabled: false})
	if err != nil {
		t.Fatal(err)
	}
	e.OnActivate(5)
	for i := 0; i < 100; i++ {
		if v := e.OnRefresh(); len(v) != 0 {
			t.Fatalf("disabled engine refreshed victims %v", v)
		}
	}
	if e.RefCount() != 0 {
		t.Error("disabled engine should not count REFs")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TableSize: 0, Period: 17, IdentifyThreshold: 5, PendingCap: 8, Enabled: true},
		{TableSize: 4, Period: 0, IdentifyThreshold: 5, PendingCap: 8, Enabled: true},
		{TableSize: 4, Period: 17, IdentifyThreshold: 1, PendingCap: 8, Enabled: true},
		{TableSize: 4, Period: 17, IdentifyThreshold: 5, PendingCap: 0, Enabled: true},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config validated", i)
		}
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: NewEngine accepted invalid config", i)
		}
	}
	if err := (Config{Enabled: false}).Validate(); err != nil {
		t.Errorf("disabled config should validate: %v", err)
	}
}

func TestResetClearsState(t *testing.T) {
	e := newEngine(t)
	e.OnActivate(3)
	refN(e, 16)
	e.Reset()
	if e.RefCount() != 0 || len(e.TrackedRows()) != 0 {
		t.Error("Reset did not clear state")
	}
	// After reset the 17-REF cadence restarts.
	e.OnActivate(3)
	if v := refN(e, 16); len(v) != 0 {
		t.Errorf("REF 16 after reset refreshed %v", v)
	}
}

func TestCandidateSurvivesUntilTRRCapableREF(t *testing.T) {
	// A heavy hitter identified in an early window is remembered in the
	// pending set until the next TRR-capable REF (Obsv 23 operates per
	// window, but only every 17th REF acts).
	e := newEngine(t)
	refN(e, 17) // consume the power-up first-ACT register
	e.OnActivate(111)
	for i := 0; i < 9; i++ {
		e.OnActivate(777)
	}
	e.OnRefresh()          // window closes; 777 identified, 111 is first-ACT
	victims := refN(e, 16) // REF 34 fires TRR
	for _, want := range []int{776, 778, 110, 112} {
		if !contains(victims, want) {
			t.Errorf("victim row %d not refreshed at TRR-capable REF: %v", want, victims)
		}
	}
}

func TestBelowThresholdRowsNotIdentified(t *testing.T) {
	// A tracked row with fewer than IdentifyThreshold activations is not
	// treated as an aggressor (unless it was the first ACT).
	e := newEngine(t)
	refN(e, 17)
	e.OnActivate(50) // first ACT: identified by rule (i)
	for i := 0; i < 4; i++ {
		e.OnActivate(60) // 4 < threshold 5: not identified
	}
	victims := refN(e, 17)
	if contains(victims, 59) || contains(victims, 61) {
		t.Errorf("below-threshold row 60's victims were refreshed: %v", victims)
	}
	if !contains(victims, 49) || !contains(victims, 51) {
		t.Errorf("first-ACT row 50's victims missing: %v", victims)
	}
}

// TestTrackerInvariantsProperty drives the engine with arbitrary activation
// sequences and checks structural invariants.
func TestTrackerInvariantsProperty(t *testing.T) {
	f := func(rows []uint8, refEvery uint8) bool {
		e, err := NewEngine(DefaultConfig())
		if err != nil {
			return false
		}
		period := int(refEvery%13) + 1
		for i, r := range rows {
			e.OnActivate(int(r))
			tracked := e.TrackedRows()
			if len(tracked) > 4 {
				return false
			}
			seen := map[int]bool{}
			total := 0
			for _, rc := range tracked {
				if rc.Count < 1 || seen[rc.Row] {
					return false
				}
				seen[rc.Row] = true
				total += rc.Count
			}
			if total > i+1 {
				return false // cannot have tracked more ACTs than issued
			}
			if i%period == period-1 {
				for _, v := range e.OnRefresh() {
					// Victims are always +-1 of some activated row.
					if v < -1 || v > 256 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
