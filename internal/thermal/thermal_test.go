package thermal

import (
	"testing"
)

func TestPaperSetupsValid(t *testing.T) {
	setups := PaperSetups()
	if len(setups) != 6 {
		t.Fatalf("%d setups, want 6", len(setups))
	}
	for _, s := range setups {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if !setups[0].Controlled || setups[0].TargetC != 82 {
		t.Error("Chip 0 must be temperature-controlled at 82C")
	}
}

func TestControlledChipHoldsTarget(t *testing.T) {
	s, err := Simulate(PaperSetups()[0], 4*3600, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the warm-up hour, then the trace must hold 82 +- 2 C.
	warm := s[720:]
	st := Summarize(warm)
	if st.Mean < 80 || st.Mean > 84 {
		t.Errorf("controlled mean %.2fC, want ~82C", st.Mean)
	}
	if st.Max-st.Min > 5 {
		t.Errorf("controlled span %.2fC too wide", st.Max-st.Min)
	}
}

func TestPassiveChipsStayStable(t *testing.T) {
	for _, setup := range PaperSetups()[1:] {
		s, err := Simulate(setup, 2*3600, 5)
		if err != nil {
			t.Fatal(err)
		}
		st := Summarize(s)
		want := setup.AmbientC + setup.SelfHeatC
		if st.Mean < want-2 || st.Mean > want+2 {
			t.Errorf("%s: mean %.2fC, want ~%.1fC", setup.Name, st.Mean, want)
		}
		if st.MaxStep > 1.5 {
			t.Errorf("%s: max step %.2fC; paper observes stable temperatures", setup.Name, st.MaxStep)
		}
	}
}

func TestSampleCadence(t *testing.T) {
	s, err := Simulate(PaperSetups()[1], 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 21 { // samples at 0,5,...,100
		t.Errorf("%d samples over 100 s at 5 s cadence, want 21", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].AtSec-s[i-1].AtSec != 5 {
			t.Fatalf("irregular cadence at sample %d", i)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(PaperSetups()[2], 600, 5)
	b, _ := Simulate(PaperSetups()[2], 600, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(BoardSetup{Name: "x", TauSec: 0}, 10, 1); err == nil {
		t.Error("zero tau accepted")
	}
	ok := PaperSetups()[0]
	if _, err := Simulate(ok, 0, 5); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Simulate(ok, 10, 0); err == nil {
		t.Error("zero sample interval accepted")
	}
	bad := ok
	bad.TargetC = 10
	if _, err := Simulate(bad, 10, 5); err == nil {
		t.Error("target below ambient accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.N != 0 {
		t.Error("empty summary should be zero")
	}
}
